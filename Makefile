GO ?= go

.PHONY: all build test check fmt vet bench bench-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Full local gate: formatting, static checks, tests, and a one-shot campaign
# benchmark smoke so the Sec. IV engine is exercised end to end.
check: fmt vet test bench-smoke

bench-smoke:
	$(GO) test -run '^$$' -bench Campaign -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean ./...
