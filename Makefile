GO ?= go

.PHONY: all build test check check-imports lint fmt vet bench bench-smoke bench-json bench-diff bench-ci fuzz-smoke smoke-daemon chaos clean

# Where `make bench-json` records the benchmark suite (bumped per PR so the
# repo keeps its performance trajectory).
BENCH_OUT ?= BENCH_pr9.json
# The previous recording, for `make bench-diff`.
BENCH_PREV ?= BENCH_pr8.json

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The whole static story in one command: go vet plus the fpvalint suite
# (determinism, allocation-free annotations, context flow, API boundary,
# lostcancel, nilness). See DESIGN.md, "Static invariants".
lint:
	$(GO) run ./cmd/fpvalint ./...

# The public-API boundary: cmd/ and examples/ must import only repro/fpva.
# Kept as an alias; the rule lives in the fpva/apiboundary analyzer now.
check-imports:
	$(GO) run ./cmd/fpvalint -vet=false -only apiboundary ./...

# Full local gate: formatting, static analysis (vet + fpvalint), tests,
# and a one-shot campaign benchmark smoke so the Sec. IV engine is
# exercised end to end.
check: fmt lint test bench-smoke

bench-smoke:
	$(GO) test -run '^$$' -bench Campaign -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Record the whole benchmark suite as test2json lines so the repo carries
# its own performance trajectory (see EXPERIMENTS.md).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -json . > $(BENCH_OUT)

# Per-benchmark ns/op and allocs/op deltas between two recordings.
bench-diff:
	$(GO) run scripts/benchdiff.go $(BENCH_PREV) $(BENCH_OUT)

# CI regression gate: re-run a fast benchmark subset and fail on a >30%
# ns/op regression against the committed baseline recording. The baseline
# is machine-dependent, so this is a coarse tripwire for order-of-magnitude
# regressions, not a precision gate; re-record BENCH_OUT when the committed
# numbers drift from the CI runner class. Time-based -benchtime keeps the
# sub-millisecond campaign benchmarks from being sampled so few times that
# a single scheduler hiccup trips the gate, while the ILP benchmarks still
# finish in a couple of iterations.
bench-ci:
	$(GO) test -run '^$$' -bench 'Campaign_1Fault$$|Campaign_1Fault_PPSFP$$|Table1_5x5|Ablation_PathILPIterative$$|Ablation_CutILP$$' \
		-benchtime 0.3s -benchmem -json . > /tmp/bench-ci.json
	$(GO) run scripts/benchdiff.go -max-ns-regress 30 $(BENCH_OUT) /tmp/bench-ci.json

# Short fuzz runs of the solver-stack and wire-codec fuzz targets; the
# committed corpus under testdata/fuzz always runs as part of `go test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSolve -fuzztime 10s ./internal/lp
	$(GO) test -run '^$$' -fuzz FuzzModelSolve -fuzztime 10s ./internal/ilp
	$(GO) test -run '^$$' -fuzz FuzzDecodePlan -fuzztime 10s ./fpva
	$(GO) test -run '^$$' -fuzz FuzzDecodeDiagnosis -fuzztime 10s ./fpva

# End-to-end daemon smoke: boot fpvad, submit a 4x4 generate job, stream
# progress, fetch the plan, prove the upload round trip is bit-identical,
# kill -9 a -cache-dir daemon and prove the restart serves the same
# bytes, and exercise the admission controls (401/429).
smoke-daemon:
	./scripts/fpvad-smoke.sh

# Fault-injection suite under the race detector: the durable plan
# store's crash/corruption/EIO tests (including the kill -9 child-
# process rounds), plus the service-level store and admission tests.
chaos:
	$(GO) test -race -count 2 ./internal/store
	$(GO) test -race -run 'TestCacheDir|TestStoreDegraded|TestMaxPending|TestJobTimeout' ./fpva
	$(GO) test -race -run 'TestAuth|TestRateLimit|TestQueueFull|TestHealthz|TestConfig|TestValidate' ./cmd/fpvad

clean:
	$(GO) clean ./...
