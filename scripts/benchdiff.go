// Command benchdiff compares two benchmark recordings produced by
// `make bench-json` (go test -json streams) and reports per-benchmark
// ns/op and allocs/op deltas.
//
// Usage:
//
//	go run scripts/benchdiff.go [-max-ns-regress PCT] old.json new.json
//
// With -max-ns-regress > 0 the exit status is 1 when any benchmark present
// in both files regressed its ns/op by more than PCT percent — the CI
// gate against the committed baseline. Benchmarks present in only one
// file are listed but never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	nsOp     float64
	allocsOp float64
	hasAlloc bool
}

// benchLine matches one reconstructed benchmark result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)
var allocsRe = regexp.MustCompile(`([\d.]+) allocs/op`)

// load reads a test2json stream and reconstructs the benchmark result
// lines (test2json splits a benchmark's name and measurements across
// output events, so outputs are concatenated before line splitting).
func load(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerate plain `go test -bench` output for ad-hoc use.
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{nsOp: ns}
		if am := allocsRe.FindStringSubmatch(m[3]); am != nil {
			r.allocsOp, _ = strconv.ParseFloat(am[1], 64)
			r.hasAlloc = true
		}
		out[m[1]] = r
	}
	return out, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	maxRegress := flag.Float64("max-ns-regress", 0,
		"fail (exit 1) when any shared benchmark regresses ns/op by more than this percent; 0 disables")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-ns-regress PCT] old.json new.json")
		os.Exit(2)
	}
	oldSet, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSet, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var names []string
	for name := range oldSet {
		if _, ok := newSet[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-44s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns%", "old allocs", "new allocs", "Δalloc%")
	failed := false
	for _, name := range names {
		o, n := oldSet[name], newSet[name]
		dns := pct(o.nsOp, n.nsOp)
		mark := ""
		if *maxRegress > 0 && dns > *maxRegress {
			mark = "  << REGRESSION"
			failed = true
		}
		if o.hasAlloc && n.hasAlloc {
			fmt.Printf("%-44s %14.0f %14.0f %+7.1f%% %12.0f %12.0f %+7.1f%%%s\n",
				name, o.nsOp, n.nsOp, dns, o.allocsOp, n.allocsOp, pct(o.allocsOp, n.allocsOp), mark)
		} else {
			fmt.Printf("%-44s %14.0f %14.0f %+7.1f%%%s\n", name, o.nsOp, n.nsOp, dns, mark)
		}
	}
	for name := range oldSet {
		if _, ok := newSet[name]; !ok {
			fmt.Printf("%-44s only in %s\n", name, flag.Arg(0))
		}
	}
	for name := range newSet {
		if _, ok := oldSet[name]; !ok {
			fmt.Printf("%-44s only in %s\n", name, flag.Arg(1))
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no shared benchmarks between the two files")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op regression beyond %.0f%% against %s\n",
			*maxRegress, flag.Arg(0))
		os.Exit(1)
	}
}
