#!/bin/sh
# check-imports.sh enforces the public-API boundary: commands and examples
# are consumers of the repro/fpva package and must not reach into
# repro/internal directly. (Only production imports are checked; test files
# may use internal helpers such as repro/internal/testutil.)
set -eu
cd "$(dirname "$0")/.."
bad=$(go list -f '{{.ImportPath}}: {{join .Imports " "}}' ./cmd/... ./examples/... |
	grep 'repro/internal' || true)
if [ -n "$bad" ]; then
	echo "error: these packages must import only the public repro/fpva API," >&2
	echo "not repro/internal:" >&2
	echo "$bad" >&2
	exit 1
fi
echo "import boundary ok: cmd/ and examples/ use only the public API"
