#!/bin/sh
# fpvad-smoke.sh: end-to-end daemon smoke test, run by CI and `make
# smoke-daemon`. It boots fpvad on an ephemeral port, submits a 4x4
# generate job (once through the fpvatest -daemon client, once through raw
# curl), streams the NDJSON progress of both, fetches the plans, replays
# one with fpvasim, proves the upload round trip is bit-identical to
# local `fpvatest -o` output, and drives a diagnose job plus the
# closed-loop fpvasim -diagnose study against the same plan.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
sub_pid=""
dur_pid=""
auth_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	[ -n "$sub_pid" ] && kill "$sub_pid" 2>/dev/null || true
	[ -n "$dur_pid" ] && kill -9 "$dur_pid" 2>/dev/null || true
	[ -n "$auth_pid" ] && kill "$auth_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_base LOGFILE: print the daemon's base URL once it appears.
wait_base() {
	_wb_base=""
	_wb_i=0
	while [ $_wb_i -lt 100 ]; do
		_wb_base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$1")
		[ -n "$_wb_base" ] && break
		_wb_i=$((_wb_i + 1))
		sleep 0.1
	done
	if [ -z "$_wb_base" ]; then
		echo "error: fpvad did not start ($1)" >&2
		cat "$1" >&2
		exit 1
	fi
	printf '%s' "$_wb_base"
}

echo "== build"
go build -o "$tmp/fpvad" ./cmd/fpvad
go build -o "$tmp/fpvaworker" ./cmd/fpvaworker
go build -o "$tmp/fpvatest" ./cmd/fpvatest
go build -o "$tmp/fpvasim" ./cmd/fpvasim

echo "== boot fpvad"
"$tmp/fpvad" -addr 127.0.0.1:0 >"$tmp/fpvad.log" 2>&1 &
daemon_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
	base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$tmp/fpvad.log")
	[ -n "$base" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$base" ]; then
	echo "error: fpvad did not start" >&2
	cat "$tmp/fpvad.log" >&2
	exit 1
fi
curl -fsS "$base/healthz" >/dev/null
echo "   up at $base"

echo "== remote generate via fpvatest -daemon (submit + stream + fetch)"
"$tmp/fpvatest" -daemon "$base" -rows 4 -cols 4 -progress \
	-o "$tmp/remote-plan.json" 2>"$tmp/client-progress.log"
grep -q "phase" "$tmp/client-progress.log" || {
	echo "error: client saw no streamed progress" >&2
	exit 1
}

echo "== raw curl flow: submit a 4x4 generate job"
cat >"$tmp/mkarray.go" <<'EOF'
package main

import (
	"os"
	"strconv"

	"repro/fpva"
)

func main() {
	rows, cols := 4, 4
	if len(os.Args) == 3 {
		rows, _ = strconv.Atoi(os.Args[1])
		cols, _ = strconv.Atoi(os.Args[2])
	}
	a, err := fpva.NewArray(rows, cols)
	if err != nil {
		panic(err)
	}
	if err := fpva.EncodeArray(os.Stdout, a); err != nil {
		panic(err)
	}
}
EOF
go run "$tmp/mkarray.go" >"$tmp/array.json"
printf '{"kind":"generate","array":%s}' "$(cat "$tmp/array.json")" >"$tmp/gen-req.json"
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$base/v1/jobs" >"$tmp/submit.json"
id=$(tr -d ' \n' <"$tmp/submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "error: no job id in $(cat "$tmp/submit.json")" >&2; exit 1; }
echo "   job $id"

echo "== stream NDJSON progress until the job finishes"
curl -fsSN "$base/v1/jobs/$id/events" >"$tmp/events.ndjson"
grep -q '"event":"phase-started"' "$tmp/events.ndjson"
grep -q '"state":"done"' "$tmp/events.ndjson"

echo "== fetch the plan and replay it with fpvasim"
curl -fsS "$base/v1/jobs/$id/result" >"$tmp/curl-plan.json"
# Both 4x4 jobs hit the same cache entry, so the served bytes agree.
cmp "$tmp/remote-plan.json" "$tmp/curl-plan.json"
"$tmp/fpvasim" -plan "$tmp/curl-plan.json" -trials 200 -faults 2 | grep -q "faults"

echo "== plan upload round trip is bit-identical to fpvatest -o"
"$tmp/fpvatest" -rows 4 -cols 4 -o "$tmp/local-plan.json" >/dev/null
printf '{"kind":"campaign","plan":%s,"campaign":{"trials":500,"faults":2,"seed":7}}' \
	"$(cat "$tmp/local-plan.json")" >"$tmp/camp-req.json"
curl -fsS -X POST --data-binary @"$tmp/camp-req.json" "$base/v1/jobs" >"$tmp/camp-submit.json"
cid=$(tr -d ' \n' <"$tmp/camp-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
curl -fsS "$base/v1/jobs/$cid/plan" >"$tmp/roundtrip-plan.json"
cmp "$tmp/local-plan.json" "$tmp/roundtrip-plan.json"
curl -fsSN "$base/v1/jobs/$cid/events" >/dev/null # wait for the campaign
curl -fsS "$base/v1/jobs/$cid/result" | grep -q '"detected": 500'

echo "== diagnose job: submit, stream ticks, decode the wire diagnosis"
printf '{"kind":"diagnose","plan":%s,"diagnose":{"planner":"greedy"}}' \
	"$(cat "$tmp/local-plan.json")" >"$tmp/diag-req.json"
curl -fsS -X POST --data-binary @"$tmp/diag-req.json" "$base/v1/jobs" >"$tmp/diag-submit.json"
grep -q '"kind": "diagnose"' "$tmp/diag-submit.json"
did=$(tr -d ' \n' <"$tmp/diag-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$did" ] || { echo "error: no diagnose job id in $(cat "$tmp/diag-submit.json")" >&2; exit 1; }
curl -fsSN "$base/v1/jobs/$did/events" >"$tmp/diag-events.ndjson"
grep -q '"state":"done"' "$tmp/diag-events.ndjson"
curl -fsS "$base/v1/jobs/$did/result" >"$tmp/diagnosis.json"
grep -q '"format": "fpva.diagnosis"' "$tmp/diagnosis.json"
grep -q '"consistent": true' "$tmp/diagnosis.json"

echo "== closed-loop diagnosis study via fpvasim -diagnose"
"$tmp/fpvasim" -plan "$tmp/local-plan.json" -diagnose | grep -q "singleton"

echo "== service stats"
curl -fsS "$base/v1/stats" | tee "$tmp/stats.json" | grep -q '"solves": 1'
grep -q '"diagnoses": 1' "$tmp/stats.json"
grep -q '"diagnose"' "$tmp/stats.json"

echo "== subprocess solver mode: same request, byte-identical plan"
# A second daemon whose solves run in fpvaworker subprocesses. The plan it
# serves must match the in-process daemon's bytes exactly once the five
# timing fields (measurements, not content) are normalized.
"$tmp/fpvad" -addr 127.0.0.1:0 -solver-exec subprocess \
	-solver-worker-bin "$tmp/fpvaworker" -solver-workers 1 \
	>"$tmp/fpvad-sub.log" 2>&1 &
sub_pid=$!
sub_base=""
i=0
while [ $i -lt 100 ]; do
	sub_base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$tmp/fpvad-sub.log")
	[ -n "$sub_base" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$sub_base" ]; then
	echo "error: subprocess-mode fpvad did not start" >&2
	cat "$tmp/fpvad-sub.log" >&2
	exit 1
fi
grep -q "subprocess solver" "$tmp/fpvad-sub.log"
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$sub_base/v1/jobs" >"$tmp/sub-submit.json"
sid=$(tr -d ' \n' <"$tmp/sub-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "error: no job id in $(cat "$tmp/sub-submit.json")" >&2; exit 1; }
curl -fsSN "$sub_base/v1/jobs/$sid/events" >/dev/null # wait for the solve
curl -fsS "$sub_base/v1/jobs/$sid/plan" >"$tmp/sub-plan.json"
norm() {
	sed -E 's/"(tp_ns|tc_ns|tl_ns|t_ns|solver_wall_ns)": [0-9]+/"\1": 0/g' "$1"
}
norm "$tmp/sub-plan.json" >"$tmp/sub-plan.norm"
norm "$tmp/curl-plan.json" >"$tmp/in-plan.norm"
cmp "$tmp/sub-plan.norm" "$tmp/in-plan.norm" || {
	echo "error: subprocess-mode plan differs from in-process beyond timing" >&2
	exit 1
}
curl -fsS "$sub_base/v1/stats" | grep -q '"solverExecutor": "subprocess"'
echo "== subprocess daemon graceful shutdown"
kill "$sub_pid"
wait "$sub_pid" || { echo "error: subprocess-mode fpvad exited non-zero" >&2; cat "$tmp/fpvad-sub.log" >&2; exit 1; }
sub_pid=""
grep -q "shut down" "$tmp/fpvad-sub.log"

echo "== graceful shutdown"
kill "$daemon_pid"
wait "$daemon_pid" || { echo "error: fpvad exited non-zero" >&2; cat "$tmp/fpvad.log" >&2; exit 1; }
daemon_pid=""
grep -q "shut down" "$tmp/fpvad.log"

echo "== restart persistence: -cache-dir survives kill -9"
cache="$tmp/cache"
"$tmp/fpvad" -addr 127.0.0.1:0 -cache-dir "$cache" >"$tmp/fpvad-dur.log" 2>&1 &
dur_pid=$!
dur_base=$(wait_base "$tmp/fpvad-dur.log")
grep -q "durable plan store" "$tmp/fpvad-dur.log"
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$dur_base/v1/jobs" >"$tmp/dur-submit.json"
durid=$(tr -d ' \n' <"$tmp/dur-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
curl -fsSN "$dur_base/v1/jobs/$durid/events" >/dev/null # wait for the solve
curl -fsS "$dur_base/v1/jobs/$durid/plan" >"$tmp/dur-plan-1.json"
curl -fsS "$dur_base/v1/stats" | grep -q '"mode": "ok"'
# Fire another solve and SIGKILL the daemon mid-workload: no shutdown
# hooks run, so this is the crash-safety path, not the clean one.
go run "$tmp/mkarray.go" 5 5 >"$tmp/array5.json"
printf '{"kind":"generate","array":%s}' "$(cat "$tmp/array5.json")" >"$tmp/gen-req2.json"
curl -fsS -X POST --data-binary @"$tmp/gen-req2.json" "$dur_base/v1/jobs" >/dev/null
kill -9 "$dur_pid"
wait "$dur_pid" 2>/dev/null || true
dur_pid=""

"$tmp/fpvad" -addr 127.0.0.1:0 -cache-dir "$cache" >"$tmp/fpvad-dur2.log" 2>&1 &
dur_pid=$!
dur_base=$(wait_base "$tmp/fpvad-dur2.log")
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$dur_base/v1/jobs" >"$tmp/dur-submit2.json"
durid2=$(tr -d ' \n' <"$tmp/dur-submit2.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
curl -fsSN "$dur_base/v1/jobs/$durid2/events" >/dev/null
# The restarted daemon served the plan from disk: no solve, a store hit,
# and byte-identical plan output.
curl -fsS "$dur_base/v1/jobs/$durid2" | grep -q '"cacheHit": true'
curl -fsS "$dur_base/v1/jobs/$durid2/plan" >"$tmp/dur-plan-2.json"
cmp "$tmp/dur-plan-1.json" "$tmp/dur-plan-2.json"
curl -fsS "$dur_base/v1/stats" >"$tmp/dur-stats.json"
grep -q '"solves": 0' "$tmp/dur-stats.json"
grep -q '"hits": 1' "$tmp/dur-stats.json"
curl -fsS "$dur_base/healthz" | grep -q '"status": "ok"'
kill -9 "$dur_pid" 2>/dev/null || true
dur_pid=""

echo "== admission control: bearer auth and rate limits"
printf 'ci:smoke-secret-token\n' >"$tmp/tokens"
"$tmp/fpvad" -token-file "$tmp/tokens" -rate 1 -burst 1 -max-pending 4 -validate | grep -q "configuration ok"
"$tmp/fpvad" -addr 127.0.0.1:0 -token-file "$tmp/tokens" -rate 1 -burst 1 \
	>"$tmp/fpvad-auth.log" 2>&1 &
auth_pid=$!
auth_base=$(wait_base "$tmp/fpvad-auth.log")
code=$(curl -s -o /dev/null -w '%{http_code}' "$auth_base/v1/stats")
[ "$code" = "401" ] || { echo "error: unauthenticated request got $code, want 401" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$auth_base/healthz")
[ "$code" = "200" ] || { echo "error: healthz needs auth ($code)" >&2; exit 1; }
auth() {
	curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer smoke-secret-token" "$auth_base/v1/stats"
}
code=$(auth)
[ "$code" = "200" ] || { echo "error: authenticated request got $code, want 200" >&2; exit 1; }
# Burst spent: immediate repeats must hit the limiter.
limited=0
for _ in 1 2 3; do
	[ "$(auth)" = "429" ] && limited=1
done
[ "$limited" = "1" ] || { echo "error: rate limiter never returned 429" >&2; exit 1; }
kill "$auth_pid"
wait "$auth_pid" || { echo "error: auth-mode fpvad exited non-zero" >&2; cat "$tmp/fpvad-auth.log" >&2; exit 1; }
auth_pid=""

echo "fpvad smoke ok"
