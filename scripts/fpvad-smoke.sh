#!/bin/sh
# fpvad-smoke.sh: end-to-end daemon smoke test, run by CI and `make
# smoke-daemon`. It boots fpvad on an ephemeral port, submits a 4x4
# generate job (once through the fpvatest -daemon client, once through raw
# curl), streams the NDJSON progress of both, fetches the plans, replays
# one with fpvasim, proves the upload round trip is bit-identical to
# local `fpvatest -o` output, and drives a diagnose job plus the
# closed-loop fpvasim -diagnose study against the same plan.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
sub_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	[ -n "$sub_pid" ] && kill "$sub_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$tmp/fpvad" ./cmd/fpvad
go build -o "$tmp/fpvaworker" ./cmd/fpvaworker
go build -o "$tmp/fpvatest" ./cmd/fpvatest
go build -o "$tmp/fpvasim" ./cmd/fpvasim

echo "== boot fpvad"
"$tmp/fpvad" -addr 127.0.0.1:0 >"$tmp/fpvad.log" 2>&1 &
daemon_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
	base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$tmp/fpvad.log")
	[ -n "$base" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$base" ]; then
	echo "error: fpvad did not start" >&2
	cat "$tmp/fpvad.log" >&2
	exit 1
fi
curl -fsS "$base/healthz" >/dev/null
echo "   up at $base"

echo "== remote generate via fpvatest -daemon (submit + stream + fetch)"
"$tmp/fpvatest" -daemon "$base" -rows 4 -cols 4 -progress \
	-o "$tmp/remote-plan.json" 2>"$tmp/client-progress.log"
grep -q "phase" "$tmp/client-progress.log" || {
	echo "error: client saw no streamed progress" >&2
	exit 1
}

echo "== raw curl flow: submit a 4x4 generate job"
cat >"$tmp/mkarray.go" <<'EOF'
package main

import (
	"os"

	"repro/fpva"
)

func main() {
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		panic(err)
	}
	if err := fpva.EncodeArray(os.Stdout, a); err != nil {
		panic(err)
	}
}
EOF
go run "$tmp/mkarray.go" >"$tmp/array.json"
printf '{"kind":"generate","array":%s}' "$(cat "$tmp/array.json")" >"$tmp/gen-req.json"
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$base/v1/jobs" >"$tmp/submit.json"
id=$(tr -d ' \n' <"$tmp/submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "error: no job id in $(cat "$tmp/submit.json")" >&2; exit 1; }
echo "   job $id"

echo "== stream NDJSON progress until the job finishes"
curl -fsSN "$base/v1/jobs/$id/events" >"$tmp/events.ndjson"
grep -q '"event":"phase-started"' "$tmp/events.ndjson"
grep -q '"state":"done"' "$tmp/events.ndjson"

echo "== fetch the plan and replay it with fpvasim"
curl -fsS "$base/v1/jobs/$id/result" >"$tmp/curl-plan.json"
# Both 4x4 jobs hit the same cache entry, so the served bytes agree.
cmp "$tmp/remote-plan.json" "$tmp/curl-plan.json"
"$tmp/fpvasim" -plan "$tmp/curl-plan.json" -trials 200 -faults 2 | grep -q "faults"

echo "== plan upload round trip is bit-identical to fpvatest -o"
"$tmp/fpvatest" -rows 4 -cols 4 -o "$tmp/local-plan.json" >/dev/null
printf '{"kind":"campaign","plan":%s,"campaign":{"trials":500,"faults":2,"seed":7}}' \
	"$(cat "$tmp/local-plan.json")" >"$tmp/camp-req.json"
curl -fsS -X POST --data-binary @"$tmp/camp-req.json" "$base/v1/jobs" >"$tmp/camp-submit.json"
cid=$(tr -d ' \n' <"$tmp/camp-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
curl -fsS "$base/v1/jobs/$cid/plan" >"$tmp/roundtrip-plan.json"
cmp "$tmp/local-plan.json" "$tmp/roundtrip-plan.json"
curl -fsSN "$base/v1/jobs/$cid/events" >/dev/null # wait for the campaign
curl -fsS "$base/v1/jobs/$cid/result" | grep -q '"detected": 500'

echo "== diagnose job: submit, stream ticks, decode the wire diagnosis"
printf '{"kind":"diagnose","plan":%s,"diagnose":{"planner":"greedy"}}' \
	"$(cat "$tmp/local-plan.json")" >"$tmp/diag-req.json"
curl -fsS -X POST --data-binary @"$tmp/diag-req.json" "$base/v1/jobs" >"$tmp/diag-submit.json"
grep -q '"kind": "diagnose"' "$tmp/diag-submit.json"
did=$(tr -d ' \n' <"$tmp/diag-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$did" ] || { echo "error: no diagnose job id in $(cat "$tmp/diag-submit.json")" >&2; exit 1; }
curl -fsSN "$base/v1/jobs/$did/events" >"$tmp/diag-events.ndjson"
grep -q '"state":"done"' "$tmp/diag-events.ndjson"
curl -fsS "$base/v1/jobs/$did/result" >"$tmp/diagnosis.json"
grep -q '"format": "fpva.diagnosis"' "$tmp/diagnosis.json"
grep -q '"consistent": true' "$tmp/diagnosis.json"

echo "== closed-loop diagnosis study via fpvasim -diagnose"
"$tmp/fpvasim" -plan "$tmp/local-plan.json" -diagnose | grep -q "singleton"

echo "== service stats"
curl -fsS "$base/v1/stats" | tee "$tmp/stats.json" | grep -q '"solves": 1'
grep -q '"diagnoses": 1' "$tmp/stats.json"
grep -q '"diagnose"' "$tmp/stats.json"

echo "== subprocess solver mode: same request, byte-identical plan"
# A second daemon whose solves run in fpvaworker subprocesses. The plan it
# serves must match the in-process daemon's bytes exactly once the five
# timing fields (measurements, not content) are normalized.
"$tmp/fpvad" -addr 127.0.0.1:0 -solver-exec subprocess \
	-solver-worker-bin "$tmp/fpvaworker" -solver-workers 1 \
	>"$tmp/fpvad-sub.log" 2>&1 &
sub_pid=$!
sub_base=""
i=0
while [ $i -lt 100 ]; do
	sub_base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$tmp/fpvad-sub.log")
	[ -n "$sub_base" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$sub_base" ]; then
	echo "error: subprocess-mode fpvad did not start" >&2
	cat "$tmp/fpvad-sub.log" >&2
	exit 1
fi
grep -q "subprocess solver" "$tmp/fpvad-sub.log"
curl -fsS -X POST --data-binary @"$tmp/gen-req.json" "$sub_base/v1/jobs" >"$tmp/sub-submit.json"
sid=$(tr -d ' \n' <"$tmp/sub-submit.json" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "error: no job id in $(cat "$tmp/sub-submit.json")" >&2; exit 1; }
curl -fsSN "$sub_base/v1/jobs/$sid/events" >/dev/null # wait for the solve
curl -fsS "$sub_base/v1/jobs/$sid/plan" >"$tmp/sub-plan.json"
norm() {
	sed -E 's/"(tp_ns|tc_ns|tl_ns|t_ns|solver_wall_ns)": [0-9]+/"\1": 0/g' "$1"
}
norm "$tmp/sub-plan.json" >"$tmp/sub-plan.norm"
norm "$tmp/curl-plan.json" >"$tmp/in-plan.norm"
cmp "$tmp/sub-plan.norm" "$tmp/in-plan.norm" || {
	echo "error: subprocess-mode plan differs from in-process beyond timing" >&2
	exit 1
}
curl -fsS "$sub_base/v1/stats" | grep -q '"solverExecutor": "subprocess"'
echo "== subprocess daemon graceful shutdown"
kill "$sub_pid"
wait "$sub_pid" || { echo "error: subprocess-mode fpvad exited non-zero" >&2; cat "$tmp/fpvad-sub.log" >&2; exit 1; }
sub_pid=""
grep -q "shut down" "$tmp/fpvad-sub.log"

echo "== graceful shutdown"
kill "$daemon_pid"
wait "$daemon_pid" || { echo "error: fpvad exited non-zero" >&2; cat "$tmp/fpvad.log" >&2; exit 1; }
daemon_pid=""
grep -q "shut down" "$tmp/fpvad.log"

echo "fpvad smoke ok"
