package repro

// One benchmark per evaluation artifact of the paper:
//
//	BenchmarkTable1_*         Table I   (test-vector generation per array)
//	BenchmarkFig8_*           Fig. 8    (direct vs hierarchical flow paths)
//	BenchmarkFig9_Paths20x20  Fig. 9    (paths over the irregular 20x20)
//	BenchmarkCampaign_*       Sec. IV   (random fault injection, 1..5 faults)
//	BenchmarkBaseline_*       Sec. IV   (one-valve-at-a-time comparison)
//	BenchmarkTwoFaultExhaustive  Sec. III guarantee (exhaustive pairs)
//	BenchmarkDiagnose_*       adaptive fault diagnosis (signature compile
//	                          + closed-loop probes-to-isolation)
//	BenchmarkAblation_*       engine ablations called out in DESIGN.md
//
// Vector counts and detection rates are attached as custom metrics so the
// numbers the paper reports appear directly in the benchmark output.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cutset"
	"repro/internal/diagnose"
	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

func benchTable1(b *testing.B, name string) {
	c, err := bench.FindCase(name)
	if err != nil {
		b.Fatal(err)
	}
	var ts *core.TestSet
	for i := 0; i < b.N; i++ {
		ts, err = bench.Row(context.Background(), c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ts.Stats.NP), "np")
	b.ReportMetric(float64(ts.Stats.NC), "nc")
	b.ReportMetric(float64(ts.Stats.NL), "nl")
	b.ReportMetric(float64(ts.Stats.N), "N")
	b.ReportMetric(float64(c.PaperN), "N_paper")
}

func BenchmarkTable1_5x5(b *testing.B)   { benchTable1(b, "5x5") }
func BenchmarkTable1_10x10(b *testing.B) { benchTable1(b, "10x10") }
func BenchmarkTable1_15x15(b *testing.B) { benchTable1(b, "15x15") }
func BenchmarkTable1_20x20(b *testing.B) { benchTable1(b, "20x20") }
func BenchmarkTable1_30x30(b *testing.B) { benchTable1(b, "30x30") }

func benchFig8(b *testing.B, stripR, stripC int, paperPaths float64) {
	a := grid.MustNewStandard(10, 10)
	var res *flowpath.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = flowpath.Generate(context.Background(), a, flowpath.Options{StripRows: stripR, StripCols: stripC})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Paths)), "paths")
	b.ReportMetric(paperPaths, "paths_paper")
}

// Fig. 8(a): the direct model on a full 10x10 (paper: 2 paths).
func BenchmarkFig8_Direct(b *testing.B) { benchFig8(b, 0, 0, 2) }

// Fig. 8(b): the hierarchical model with 5x5 blocks (paper: 4 paths).
func BenchmarkFig8_Hierarchical(b *testing.B) { benchFig8(b, 5, 5, 4) }

// Fig. 9: flow paths over the 20x20 array with three channels and two
// obstacles (paper: 16 paths over 744 valves).
func BenchmarkFig9_Paths20x20(b *testing.B) {
	c, err := bench.FindCase("20x20")
	if err != nil {
		b.Fatal(err)
	}
	a, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	var res *flowpath.Result
	for i := 0; i < b.N; i++ {
		res, err = flowpath.Generate(context.Background(), a, flowpath.Options{StripRows: 5, StripCols: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Paths)), "paths")
	b.ReportMetric(16, "paths_paper")
	b.ReportMetric(float64(a.NumNormal()), "valves")
}

func benchCampaign(b *testing.B, faults, workers int) {
	benchCampaignEngine(b, faults, workers, sim.EngineAuto)
}

func benchCampaignEngine(b *testing.B, faults, workers int, engine sim.CampaignEngine) {
	c, err := bench.FindCase("5x5")
	if err != nil {
		b.Fatal(err)
	}
	ts, err := bench.Row(context.Background(), c)
	if err != nil {
		b.Fatal(err)
	}
	s := sim.MustNew(ts.Array)
	vecs := ts.AllVectors()
	var res sim.CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = s.RunCampaign(context.Background(), vecs, sim.CampaignConfig{
			Trials: 10000, NumFaults: faults, Seed: int64(faults), Workers: workers,
			Engine: engine,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DetectionRate(), "detection_rate")
}

// Sec. IV fault-injection study: 10 000 random injections per fault count
// (paper: all detected, for every k in 1..5). The base variants run
// single-worker; the _Parallel variants shard trials across all CPUs.
func BenchmarkCampaign_1Fault(b *testing.B)  { benchCampaign(b, 1, 1) }
func BenchmarkCampaign_2Faults(b *testing.B) { benchCampaign(b, 2, 1) }
func BenchmarkCampaign_3Faults(b *testing.B) { benchCampaign(b, 3, 1) }
func BenchmarkCampaign_4Faults(b *testing.B) { benchCampaign(b, 4, 1) }
func BenchmarkCampaign_5Faults(b *testing.B) { benchCampaign(b, 5, 1) }

func BenchmarkCampaign_1Fault_Parallel(b *testing.B)  { benchCampaign(b, 1, runtime.NumCPU()) }
func BenchmarkCampaign_2Faults_Parallel(b *testing.B) { benchCampaign(b, 2, runtime.NumCPU()) }
func BenchmarkCampaign_3Faults_Parallel(b *testing.B) { benchCampaign(b, 3, runtime.NumCPU()) }
func BenchmarkCampaign_4Faults_Parallel(b *testing.B) { benchCampaign(b, 4, runtime.NumCPU()) }
func BenchmarkCampaign_5Faults_Parallel(b *testing.B) { benchCampaign(b, 5, runtime.NumCPU()) }

// Engine ablation: the bit-parallel (PPSFP) engine — 64 fault universes
// per uint64 word, one BFS pass serving all of them — against the scalar
// one-universe-at-a-time reference, both single-worker so the ratio is pure
// bit-parallelism. The default Campaign_* variants above already run PPSFP
// via EngineAuto; the explicit names keep the comparison stable if the
// default ever changes.
func BenchmarkCampaign_1Fault_PPSFP(b *testing.B) {
	benchCampaignEngine(b, 1, 1, sim.EngineBitParallel)
}
func BenchmarkCampaign_3Faults_PPSFP(b *testing.B) {
	benchCampaignEngine(b, 3, 1, sim.EngineBitParallel)
}
func BenchmarkCampaign_5Faults_PPSFP(b *testing.B) {
	benchCampaignEngine(b, 5, 1, sim.EngineBitParallel)
}
func BenchmarkCampaign_1Fault_Scalar(b *testing.B) { benchCampaignEngine(b, 1, 1, sim.EngineScalar) }
func BenchmarkCampaign_5Faults_Scalar(b *testing.B) {
	benchCampaignEngine(b, 5, 1, sim.EngineScalar)
}

// Sec. III single-fault guarantee sweep: every stuck-at fault on every
// Normal valve of the 5x5 through the word-parallel DetectsBatch.
func BenchmarkVerifySingleFaults(b *testing.B) {
	c, err := bench.FindCase("5x5")
	if err != nil {
		b.Fatal(err)
	}
	ts, err := bench.Row(context.Background(), c)
	if err != nil {
		b.Fatal(err)
	}
	var escapes []sim.Fault
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		escapes, err = ts.VerifySingleFaults(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(escapes)), "escaped")
}

// The compiled fast path: reuse one CompiledVectors across campaigns, as
// CampaignSeries and fpvasim do — compile cost amortized away entirely.
func BenchmarkCampaign_5Faults_Compiled(b *testing.B) {
	c, err := bench.FindCase("5x5")
	if err != nil {
		b.Fatal(err)
	}
	ts, err := bench.Row(context.Background(), c)
	if err != nil {
		b.Fatal(err)
	}
	cv := sim.MustNew(ts.Array).Compile(ts.AllVectors())
	var res sim.CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = cv.RunCampaign(context.Background(), sim.CampaignConfig{Trials: 10000, NumFaults: 5, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DetectionRate(), "detection_rate")
}

func benchBaseline(b *testing.B, name string) {
	c, err := bench.FindCase(name)
	if err != nil {
		b.Fatal(err)
	}
	a, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	var vecs []*sim.Vector
	for i := 0; i < b.N; i++ {
		vecs, err = bench.BaselineVectors(a)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(vecs)), "vectors")
	b.ReportMetric(float64(bench.BaselineCount(a)), "vectors_2nv")
}

// Sec. IV baseline: one valve switched at a time, 2*nv vectors.
func BenchmarkBaseline_5x5(b *testing.B)   { benchBaseline(b, "5x5") }
func BenchmarkBaseline_10x10(b *testing.B) { benchBaseline(b, "10x10") }

// Sec. III guarantee: exhaustive detection of every stuck-at fault pair on
// a 4x4 array (paper: any two faults are guaranteed detected).
func BenchmarkTwoFaultExhaustive(b *testing.B) {
	a := grid.MustNewStandard(4, 4)
	ts, err := core.Generate(context.Background(), a, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var escapes [][2]sim.Fault
	for i := 0; i < b.N; i++ {
		escapes, err = ts.VerifyDoubleFaults(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(escapes)), "escaped_pairs")
}

// Adaptive diagnosis (DESIGN.md "Diagnosis architecture"): the signature
// table compile, and the closed loop — every single stuck-at fault played
// as the hidden defect, probes answered from the table itself.
func benchDiagnoseSetup(b *testing.B, name string) (*core.TestSet, *sim.CompiledVectors, diagnose.Options) {
	b.Helper()
	c, err := bench.FindCase(name)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := bench.Row(context.Background(), c)
	if err != nil {
		b.Fatal(err)
	}
	cv, err := ts.Compile()
	if err != nil {
		b.Fatal(err)
	}
	opt := diagnose.Options{Workers: 1}
	for _, lp := range ts.LeakPairs {
		opt.LeakPairs = append(opt.LeakPairs, [2]grid.ValveID{lp[0], lp[1]})
	}
	return ts, cv, opt
}

func benchDiagnoseCompile(b *testing.B, name string) {
	_, cv, opt := benchDiagnoseSetup(b, name)
	var sg *diagnose.Signatures
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg, err = diagnose.Compile(context.Background(), cv, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sg.NumCandidates()), "candidates")
}

func BenchmarkDiagnose_Compile_5x5(b *testing.B)   { benchDiagnoseCompile(b, "5x5") }
func BenchmarkDiagnose_Compile_10x10(b *testing.B) { benchDiagnoseCompile(b, "10x10") }

func benchDiagnoseClosedLoop(b *testing.B, name string, planner diagnose.Planner) {
	ts, cv, opt := benchDiagnoseSetup(b, name)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		b.Fatal(err)
	}
	nSingles := len(sim.AllSingleFaults(ts.Array))
	readings := make([]bool, sg.Sinks())
	totalProbes := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		totalProbes = 0
		// Candidate indices 1..nSingles are exactly the single stuck-at
		// faults; the table itself answers the probes.
		for c := 1; c <= nSingles; c++ {
			sess := diagnose.NewSession(sg, planner)
			for {
				v, err := sess.NextProbe(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if v < 0 {
					break
				}
				for j := range readings {
					readings[j] = sg.Expected(c, v, j)
				}
				if err := sess.Observe(v, readings); err != nil {
					b.Fatal(err)
				}
				totalProbes++
			}
			if !sess.Done() {
				b.Fatalf("candidate %d not isolated", c)
			}
		}
	}
	b.ReportMetric(float64(totalProbes)/float64(nSingles), "probes/fault")
}

func BenchmarkDiagnose_ClosedLoop_5x5(b *testing.B) {
	benchDiagnoseClosedLoop(b, "5x5", diagnose.PlannerGreedy)
}
func BenchmarkDiagnose_ClosedLoop_10x10(b *testing.B) {
	benchDiagnoseClosedLoop(b, "10x10", diagnose.PlannerGreedy)
}
func BenchmarkDiagnose_ClosedLoop_5x5_ILP(b *testing.B) {
	benchDiagnoseClosedLoop(b, "5x5", diagnose.PlannerILP)
}

// Ablation: the serpentine engine versus the paper's iterative ILP model on
// the same 4x4 array — same coverage, different path counts and runtime
// (the ILP is exact but orders of magnitude slower, which is the paper's
// motivation for the hierarchical decomposition).
func BenchmarkAblation_PathSerpentine(b *testing.B) {
	a := grid.MustNewStandard(4, 4)
	var res *flowpath.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = flowpath.Generate(context.Background(), a, flowpath.Options{Engine: flowpath.EngineSerpentine})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Paths)), "paths")
}

func BenchmarkAblation_PathILPIterative(b *testing.B) {
	benchPathILPIterative(b, 1)
}

// The warm-started branch-and-bound runs a worker pool; the returned
// solution (status, objective, vector) is bit-identical to the serial run
// for any worker count — only node accounting is schedule-dependent. The
// pool is pinned at 4 workers so the recorded speedups compare across
// machines.
func BenchmarkAblation_PathILPIterative_Parallel(b *testing.B) {
	benchPathILPIterative(b, 4)
}

func benchPathILPIterative(b *testing.B, workers int) {
	a := grid.MustNewStandard(4, 4)
	var res *flowpath.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = flowpath.Generate(context.Background(), a, flowpath.Options{
			Engine: flowpath.EngineILPIterative,
			ILP:    ilp.Options{Workers: workers},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Paths)), "paths")
	b.ReportMetric(float64(res.ILP.Nodes), "bb_nodes")
}

// Ablation: the paper's monolithic model (7)-(8) — all path blocks in one
// ILP — on a 3x3 array.
func BenchmarkAblation_PathILPMonolithic(b *testing.B) {
	a := grid.MustNewStandard(3, 3)
	var res *flowpath.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = flowpath.Generate(context.Background(), a, flowpath.Options{Engine: flowpath.EngineILPMonolithic})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Paths)), "paths")
	b.ReportMetric(float64(res.ILP.Nodes), "bb_nodes")
}

// Ablation: cut-set generation via the paper's complementary ILP over the
// dual graph (constraint (9) as model rows), one warm-started solve per
// target valve. The _Parallel variant runs the branch-and-bound on four
// workers; the cuts are bit-identical to the serial run.
func BenchmarkAblation_CutILP(b *testing.B) { benchCutILP(b, 1) }

func BenchmarkAblation_CutILP_Parallel(b *testing.B) { benchCutILP(b, 4) }

func benchCutILP(b *testing.B, workers int) {
	a := grid.MustNewStandard(5, 5)
	var res *cutset.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = cutset.Generate(context.Background(), a, cutset.Options{
			Engine: cutset.EngineILP,
			ILP:    ilp.Options{Workers: workers},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Cuts)), "cuts")
	b.ReportMetric(float64(res.ILP.Nodes), "bb_nodes")
}

// Ablation: cut generation with and without the constraint-(9) repair.
func BenchmarkAblation_CutRepairOn(b *testing.B) {
	benchCutRepair(b, false)
}

func BenchmarkAblation_CutRepairOff(b *testing.B) {
	benchCutRepair(b, true)
}

func benchCutRepair(b *testing.B, noRepair bool) {
	a := grid.MustNewStandard(8, 8)
	var res *cutset.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = cutset.Generate(context.Background(), a, cutset.Options{NoRepair: noRepair})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Cuts)), "cuts")
}
