package leakage

import (
	"context"
	"testing"

	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/sim"
)

func TestPairsFullArray(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	pairs := Pairs(a)
	// 3x3: each row has 2 interior H valves -> 1 in-row pair, 3 rows; same
	// for V by column. Total 6.
	if len(pairs) != 6 {
		t.Errorf("%d pairs, want 6", len(pairs))
	}
	seen := make(map[Pair]bool)
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("pair %v not normalized", p)
		}
		if a.Kind(p[0]) != grid.Normal || a.Kind(p[1]) != grid.Normal {
			t.Errorf("pair %v touches non-normal valve", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestPairsSkipChannelsAndObstacles(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	if _, err := a.SetObstacle(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelH(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	for _, p := range Pairs(a) {
		for _, v := range p {
			if a.Kind(v) != grid.Normal {
				t.Fatalf("pair %v includes %v valve", p, a.Kind(v))
			}
		}
	}
}

func TestGenerateCoversAllPairs(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	res, err := Generate(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uncovered) > 0 {
		t.Fatalf("uncovered pairs: %v", res.Uncovered)
	}
	s := sim.MustNew(a)
	for _, p := range res.Pairs {
		found := false
		for _, vec := range res.Vectors {
			if Covers(s, vec, p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pair %v not covered", p)
		}
	}
}

func TestGenerateReusesExistingVectors(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	fp, err := flowpath.Generate(context.Background(), a, flowpath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withPaths, err := Generate(context.Background(), a, fp.Vectors(a))
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := Generate(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(withPaths.Vectors) > len(standalone.Vectors) {
		t.Errorf("reuse produced more vectors (%d) than standalone (%d)",
			len(withPaths.Vectors), len(standalone.Vectors))
	}
}

func TestVectorsDetectInjectedLeaks(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	res, err := Generate(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.MustNew(a)
	for _, p := range res.Pairs {
		fault := []sim.Fault{{Kind: sim.ControlLeak, A: p[0], B: p[1]}}
		if !s.Detects(res.Vectors, fault) {
			t.Fatalf("injected leak %v escapes the vector set", p)
		}
	}
}

func TestVectorKindAndNames(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	res, err := Generate(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) == 0 {
		t.Fatal("no leak vectors generated")
	}
	for _, v := range res.Vectors {
		if v.Kind != sim.Leakage {
			t.Errorf("kind %v", v.Kind)
		}
		if v.Name == "" {
			t.Error("unnamed vector")
		}
	}
}

func TestGenerateRejectsPortlessArray(t *testing.T) {
	if _, err := Generate(context.Background(), grid.MustNew(3, 3), nil); err == nil {
		t.Error("want error")
	}
}

func TestVectorCountStaysSmall(t *testing.T) {
	// Table I reports nl in the single digits for 5x5 and 10x10; the
	// generator should stay in that ballpark.
	a := grid.MustNewStandard(5, 5)
	res, err := Generate(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) > 12 {
		t.Errorf("%d leak vectors for 5x5; expected a small set", len(res.Vectors))
	}
}
