// Package leakage generates test vectors for control-layer leakage
// (Sec. II and the nl column of Table I): a manufacturing defect that
// couples two control channels, so that pressurizing either channel closes
// both valves.
//
// Control-routing model. The paper does not publish the control routing of
// its arrays, so this package uses the standard multiplexed raster routing:
// every Normal valve owns a control channel routed to the chip edge next to
// the channels of its lattice neighbours of the same orientation. Leakage
// candidates are therefore pairs of same-orientation neighbouring valves —
// the pairs whose control channels run side by side.
//
// Detection. A leakage pair (a, b) is observable under a vector where one
// valve is commanded closed while the other sits open on a pressurized
// source-to-sink path: the leak then closes the observed valve too, and the
// sink goes dark. One simple path tests many pairs at once (every candidate
// pair with exactly one member on the path), so a handful of vectors covers
// all pairs — matching the small nl values of Table I.
package leakage

import (
	"context"
	"fmt"

	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Pair is a leakage candidate: two valves whose control channels are
// routed adjacently. Order is normalized with A < B.
type Pair [2]grid.ValveID

// Pairs enumerates the leakage candidates of the array under the raster
// control-routing model: consecutive same-orientation valves along the
// routing direction (H-valve control channels run along their row, V-valve
// channels along their column), both Normal. These are the pairs whose
// control channels share a wall over a long run — the defect site of
// Fig. 3(d).
func Pairs(a *grid.Array) []Pair {
	var out []Pair
	addIfNormal := func(x, y grid.ValveID) {
		if x == grid.NoValve || y == grid.NoValve {
			return
		}
		if a.Kind(x) != grid.Normal || a.Kind(y) != grid.Normal {
			return
		}
		if x > y {
			x, y = y, x
		}
		out = append(out, Pair{x, y})
	}
	for r := 0; r < a.NR(); r++ {
		for c := 0; c <= a.NC(); c++ {
			addIfNormal(a.HValve(r, c), a.HValve(r, c+1))
		}
	}
	for r := 0; r <= a.NR(); r++ {
		for c := 0; c < a.NC(); c++ {
			addIfNormal(a.VValve(r, c), a.VValve(r+1, c))
		}
	}
	return out
}

// Result is the outcome of leakage-vector generation.
type Result struct {
	Vectors []*sim.Vector
	Pairs   []Pair
	// Uncovered lists candidate pairs no vector could observe.
	Uncovered []Pair
}

// Covers reports whether the vector observes pair p: the vector must be
// pressurized at some sink fault-free, with exactly one pair member open on
// the pressurized portion — checked operationally: injecting the leak must
// change some sink reading.
func Covers(s *sim.Simulator, vec *sim.Vector, p Pair) bool {
	fault := []sim.Fault{{Kind: sim.ControlLeak, A: p[0], B: p[1]}}
	good := s.Readings(vec, nil)
	bad := s.Readings(vec, fault)
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}

// Generate builds dedicated leakage vectors covering every candidate pair.
// Existing vectors (typically the flow-path set) may be passed in; pairs
// they already observe are skipped, which is how the paper's combined test
// flow keeps nl small. Cancelling ctx (nil means context.Background())
// aborts between vectors and returns ctx.Err().
//
// Coverage probes run against compiled vectors: the fault-free state and
// golden readings of each vector are computed once, and a pair whose leak
// does not touch a vector's physical state is rejected without a
// simulation. One routing graph is shared by every per-pair fallback query.
// Together these drop the cost of the nl family from the dominant term of a
// Table I row to noise.
func Generate(ctx context.Context, a *grid.Array, existing []*sim.Vector) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	s, err := sim.New(a)
	if err != nil {
		return nil, err
	}
	res := &Result{Pairs: Pairs(a)}
	uncovered := make(map[Pair]bool, len(res.Pairs))
	for _, p := range res.Pairs {
		uncovered[p] = true
	}
	fault := make([]sim.Fault, 1)
	leak := func(p Pair) []sim.Fault {
		fault[0] = sim.Fault{Kind: sim.ControlLeak, A: p[0], B: p[1]}
		return fault
	}
	// covered collects the pairs a compiled vector set observes. Scanning
	// res.Pairs (filtered through the uncovered set) rather than the set
	// itself keeps the probe order — and with it every simulator-side
	// effect and tie-break downstream — independent of map iteration.
	var covered []Pair
	sweep := func(cv *sim.CompiledVectors) []Pair {
		covered = covered[:0]
		for _, p := range res.Pairs {
			if uncovered[p] && cv.Detects(leak(p)) {
				covered = append(covered, p)
			}
		}
		return covered
	}
	if len(existing) > 0 {
		cv := s.Compile(existing)
		for _, p := range sweep(cv) {
			delete(uncovered, p)
		}
	}
	// Comb vectors: a path zigzagging between two adjacent rows alternates
	// the rows of its horizontal valves, so every in-lane pair of those two
	// rows (and every vertical pair touching the lower row) has exactly one
	// member on the path. ceil(nr/2) combs split almost all pairs; the
	// per-pair loop below mops up the remainder (lead-in columns, pairs
	// displaced by obstacles or channels).
	single := make([]*sim.Vector, 1)
	for _, comb := range combPaths(a) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vec := comb.Vector(a, "leak")
		vec.Kind = sim.Leakage
		single[0] = vec
		cv := s.Compile(single)
		if len(sweep(cv)) == 0 {
			continue
		}
		vec.Name = fmt.Sprintf("leak%d", len(res.Vectors))
		res.Vectors = append(res.Vectors, vec)
		for _, p := range covered {
			delete(uncovered, p)
		}
	}
	rt := flowpath.NewRouter(a)
	for len(uncovered) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		target := minPair(uncovered)
		vec := vectorFor(a, s, rt, target, len(res.Vectors)+1)
		if vec == nil {
			res.Uncovered = append(res.Uncovered, target)
			delete(uncovered, target)
			continue
		}
		vec.Name = fmt.Sprintf("leak%d", len(res.Vectors))
		res.Vectors = append(res.Vectors, vec)
		single[0] = vec
		cv := s.Compile(single)
		for _, p := range sweep(cv) {
			delete(uncovered, p)
		}
	}
	return res, nil
}

// vectorFor builds one vector observing the pair: a path through one member
// avoiding the other (tried in both directions, with a few jittered
// reroutes — wiggly paths alternate orientation often and so split many
// other lane pairs at the same time).
func vectorFor(a *grid.Array, s *sim.Simulator, rt *flowpath.Router, p Pair, round int) *sim.Vector {
	banned := make(map[grid.ValveID]bool, 1)
	for jitter := round; jitter < round+3; jitter++ {
		for _, ends := range [][2]grid.ValveID{{p[0], p[1]}, {p[1], p[0]}} {
			observe, actuate := ends[0], ends[1]
			clear(banned)
			banned[actuate] = true
			path := rt.ThroughAvoidingJitter(observe, banned, jitter)
			if path == nil {
				continue
			}
			vec := path.Vector(a, "leak")
			vec.Kind = sim.Leakage
			if Covers(s, vec, p) {
				return vec
			}
		}
	}
	return nil
}

// combPaths builds the two-row zigzag paths: lead-in down column 0, comb
// across rows (r, r+1), lead-out down the last column to the sink. Combs
// that collide with obstacles or non-corner ports are skipped (the
// per-pair fallback covers their pairs).
func combPaths(a *grid.Array) []*flowpath.Path {
	srcs, sinks := a.Sources(), a.Sinks()
	if len(srcs) == 0 || len(sinks) == 0 {
		return nil
	}
	srcCell := a.InteriorCell(srcs[0].Valve)
	sinkCell := a.InteriorCell(sinks[0].Valve)
	sr, sc := a.CellCoords(srcCell)
	tr, tc := a.CellCoords(sinkCell)
	nr, nc := a.NR(), a.NC()
	if sr != 0 || sc != 0 || tr != nr-1 || tc != nc-1 || nr < 2 {
		return nil // comb geometry assumes the standard corner ports
	}
	rows := []int{}
	for r := 0; r+1 < nr; r += 2 {
		rows = append(rows, r)
	}
	if len(rows) == 0 || rows[len(rows)-1]+1 < nr-1 {
		rows = append(rows, nr-2)
	}
	var out []*flowpath.Path
	for _, r := range rows {
		cells := make([]grid.CellID, 0, 2*nc+nr)
		for i := 0; i < r; i++ {
			cells = append(cells, a.CellIndex(i, 0))
		}
		// Zigzag phase: the comb must leave the last column on row r+1 so
		// the lead-out can descend. With nc odd a full zigzag from column 0
		// does; with nc even the first down-move is skipped.
		enter := r
		for c := 0; c < nc; c++ {
			if c == 0 && nc%2 == 0 {
				cells = append(cells, a.CellIndex(r, 0))
				continue
			}
			cells = append(cells, a.CellIndex(enter, c), a.CellIndex(r+r+1-enter, c))
			enter = r + r + 1 - enter
		}
		for i := r + 2; i < nr; i++ {
			cells = append(cells, a.CellIndex(i, nc-1))
		}
		p, err := flowpath.Build(a, srcs[0].Valve, sinks[0].Valve, cells)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

func minPair(set map[Pair]bool) Pair {
	var best Pair
	first := true
	for p := range set {
		//lint:ignore fpva/detorder a minimum fold visits every key; the result is order-independent
		if first || less(p, best) {
			best = p
			first = false
		}
	}
	return best
}

func less(a, b Pair) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
