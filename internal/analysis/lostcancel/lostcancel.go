// Package lostcancel reimplements the x/tools lostcancel check on the
// standard library alone (the x/tools module is unavailable offline):
// the cancel function returned by context.WithCancel / WithTimeout /
// WithDeadline (and their ...Cause variants) must be used — called,
// deferred, returned or stored — or the derived context and its timer
// leak until the parent is canceled.
//
// This version is syntactic where the original is CFG-based: it flags a
// cancel assigned to the blank identifier, and a named cancel variable
// that is never referenced again in the enclosing function. It does not
// attempt path-sensitive "not used on this return path" reasoning.
package lostcancel

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc: "the cancel function returned by context.WithCancel/WithTimeout/WithDeadline " +
		"must be called, deferred, returned or stored (stdlib port of the x/tools check)",
	Run: run,
}

var cancelConstructors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		// Stay within this function; literals get their own checkBody.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name := constructorName(info, call)
		if name == "" {
			return true
		}
		cancel, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancel.Name == "_" {
			pass.Reportf(as.Pos(), "the cancel function returned by context.%s is discarded; the derived context leaks until its parent ends", name)
			return true
		}
		obj := info.Defs[cancel]
		if obj == nil {
			obj = info.Uses[cancel]
		}
		if obj == nil {
			return true
		}
		if !usedElsewhere(info, body, obj, cancel) {
			pass.Reportf(as.Pos(), "the cancel function %s returned by context.%s is never used; call it, defer it, or return it", cancel.Name, name)
		}
		return true
	})
}

func constructorName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelConstructors[fn.Name()] {
		return ""
	}
	return fn.Name()
}

// usedElsewhere reports whether obj is referenced anywhere in body other
// than its defining identifier (closures inside body count: a cancel
// captured by a deferred literal is used).
func usedElsewhere(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return !found
		}
		if info.Uses[id] == obj || (info.Defs[id] == obj && id != def) {
			found = true
		}
		return !found
	})
	return found
}
