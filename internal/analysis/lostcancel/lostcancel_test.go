package lostcancel_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lostcancel"
)

func TestLostCancel(t *testing.T) {
	analysistest.Run(t, ".", lostcancel.Analyzer, "cancelcase")
}
