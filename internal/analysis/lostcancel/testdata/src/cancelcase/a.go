// Package cancelcase is the golden corpus for fpva/lostcancel.
package cancelcase

import (
	"context"
	"time"
)

func Discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `the cancel function returned by context.WithCancel is discarded`
	return ctx
}

// stash keeps the Unused case compilable: a local `cancel := ...` that is
// never read is already a compile error, so the lost cancel has to hide in
// an outer-scope variable.
var stash context.CancelFunc

func Unused(parent context.Context) context.Context {
	var ctx context.Context
	ctx, stash = context.WithTimeout(parent, time.Second) // want `the cancel function stash returned by context.WithTimeout is never used`
	return ctx
}

func Deferred(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return ctx.Err()
}

func Captured(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	go func() {
		<-ctx.Done()
		cancel()
	}()
	return ctx.Err()
}

func Returned(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

func Suppressed(parent context.Context) context.Context {
	//lint:ignore fpva/lostcancel demo: lifetime managed by the caller registry
	ctx, _ := context.WithCancel(parent)
	return ctx
}
