// Package analysistest runs an analyzer over golden packages under
// testdata/src/<pkg> and checks its diagnostics against expectations
// written in the sources, mirroring the x/tools harness of the same name:
//
//	m[k] = append(m[k], v) // want `map iteration`
//
// The expectation is a regular expression inside backquotes or double
// quotes; one per line, matched against diagnostics reported on that
// line. Lines with no expectation must produce no diagnostic, and every
// expectation must be matched — both directions are errors.
//
// //lint:ignore suppression runs before matching, so golden files also
// exercise the suppression path: a flagged construct under a valid ignore
// directive carries no want comment.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

// Run loads each named package from dir/testdata/src and applies the
// analyzer, reporting mismatches through t. Packages are loaded in the
// given order with a shared fact set, so multi-package fact flows can be
// tested by listing the fact-exporting package first.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	loaded := make(map[string]*types.Package)

	var apkgs []*analysis.Package
	for _, name := range pkgs {
		pdir := filepath.Join(dir, "testdata", "src", name)
		entries, err := os.ReadDir(pdir)
		if err != nil {
			t.Fatalf("read %s: %v", pdir, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pdir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
			if p, ok := loaded[path]; ok {
				return p, nil
			}
			return std.Import(path)
		})}
		tpkg, err := conf.Check(name, fset, files, info)
		if err != nil {
			t.Fatalf("type-check %s: %v", name, err)
		}
		loaded[name] = tpkg
		apkgs = append(apkgs, &analysis.Package{
			PkgPath: name, Name: tpkg.Name(), Dir: pdir,
			Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
		})
	}

	diags, err := analysis.Run(apkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}
	want := make(map[key]string)
	for _, pkg := range apkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat := m[2]
					if pat == "" {
						pat = m[3]
					}
					pos := fset.Position(c.Pos())
					want[key{pos.Filename, pos.Line}] = pat
				}
			}
		}
	}

	var keys []key
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		msgs, pat := got[k], want[k]
		switch {
		case pat == "":
			for _, msg := range msgs {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		case len(msgs) == 0:
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
		default:
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
			}
			for _, msg := range msgs {
				if !re.MatchString(msg) {
					t.Errorf("%s:%d: diagnostic %q does not match %q", k.file, k.line, msg, pat)
				}
			}
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
