// Package nilcase is the golden corpus for fpva/nilness.
package nilcase

type node struct {
	val  int
	next *node
}

func GuardedDeref(n *node) int {
	if n == nil {
		return n.val // want `nil dereference: field access n.val`
	}
	return n.val
}

func InvertedGuard(n *node) int {
	if n != nil {
		return n.val
	} else {
		return n.val // want `nil dereference: field access n.val`
	}
}

func StarDeref(p *int) int {
	if p == nil {
		return *p // want `nil dereference: \*p`
	}
	return *p
}

func DeclaredNil() int {
	var p *node
	return p.val // want `nil dereference: field access p.val`
}

func AssignedNil(p *node) int {
	p = nil
	return p.val // want `nil dereference: field access p.val`
}

func ReassignedOK() int {
	var p *node
	p = &node{val: 3}
	return p.val
}

func GuardRepaired(n *node) int {
	if n == nil {
		n = &node{}
	}
	return n.val
}

// The errors.As shape: the address is taken in the if condition, which
// runs before the deref in the body — no finding.
func CondAlias(ok func(**node) bool) int {
	var p *node
	if ok(&p) {
		return p.val
	}
	return 0
}

func AliasEscapes() int {
	var p *node
	fill(&p)
	return p.val
}

func fill(pp **node) { *pp = &node{val: 9} }
