// Package nilness is a deliberately small, syntactic stand-in for the
// x/tools nilness analyzer, which needs SSA and cannot be vendored into
// this offline build. It reports the two shapes that are provably wrong
// without a control-flow graph:
//
//   - dereferencing a pointer inside the `if p == nil` branch that just
//     proved it nil (field access or *p);
//   - dereferencing a pointer declared `var p *T` (or assigned nil)
//     before any reassignment in the same block.
//
// Anything requiring path merging, aliasing or interprocedural reasoning
// is out of scope; the full analyzer can replace this one wholesale when
// x/tools is available, since the registration point in cmd/fpvalint is
// API-compatible.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc: "flags dereferences of pointers that are provably nil on the path " +
		"(conservative stdlib subset of the x/tools SSA-based check)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.IfStmt:
				checkNilGuard(pass, v)
			case *ast.BlockStmt:
				checkBlock(pass, v)
			}
			return true
		})
	}
	return nil
}

// checkNilGuard handles `if p == nil { ...deref p... }` and the inverted
// `if p != nil { } else { ...deref p... }`.
func checkNilGuard(pass *analysis.Pass, ifs *ast.IfStmt) {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var nilBranch ast.Stmt
	switch bin.Op {
	case token.EQL:
		nilBranch = ifs.Body
	case token.NEQ:
		nilBranch = ifs.Else
	default:
		return
	}
	if nilBranch == nil {
		return
	}
	obj := nilComparand(pass.TypesInfo, bin)
	if obj == nil {
		return
	}
	reportDerefs(pass, nilBranch, obj)
}

// nilComparand returns the pointer-typed object compared against nil.
func nilComparand(info *types.Info, bin *ast.BinaryExpr) types.Object {
	for x, y := range map[ast.Expr]ast.Expr{bin.X: bin.Y, bin.Y: bin.X} {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			continue
		}
		if yid, ok := ast.Unparen(y).(*ast.Ident); !ok || yid.Name != "nil" {
			continue
		}
		obj := info.Uses[id]
		if obj == nil {
			continue
		}
		if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
			return obj
		}
	}
	return nil
}

// checkBlock tracks `var p *T` / `p = nil` linearly through one block.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	nilObjs := make(map[types.Object]bool)
	for _, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
							nilObjs[obj] = true
						}
					}
				}
			}
			continue
		case *ast.AssignStmt:
			// p = nil re-arms; any other assignment or aliasing disarms.
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				isNil := false
				if len(s.Rhs) == len(s.Lhs) {
					if rid, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident); ok && rid.Name == "nil" {
						isNil = true
					}
				}
				if _, ptr := obj.Type().Underlying().(*types.Pointer); ptr && isNil {
					nilObjs[obj] = true
				} else {
					delete(nilObjs, obj)
				}
			}
		}
		if len(nilObjs) == 0 {
			continue
		}
		// Disarm before reporting: `if errors.As(err, &p) { use(p.F) }` takes
		// p's address in the condition, which runs before any deref in the
		// body — anything that could mutate through an alias or a nested
		// scope ends the tracking for objects it mentions.
		disarmMentioned(pass.TypesInfo, stmt, nilObjs, stmt)
		for obj := range nilObjs {
			reportDerefs(pass, stmt, obj)
		}
	}
}

// disarmMentioned drops tracking for objects whose address is taken or
// that are assigned anywhere inside stmt's subtree (nested ifs, loops).
func disarmMentioned(info *types.Info, n ast.Node, nilObjs map[types.Object]bool, top ast.Stmt) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						delete(nilObjs, obj)
					}
				}
			}
		case *ast.AssignStmt:
			if m != top {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							delete(nilObjs, obj)
						}
					}
				}
			}
		}
		return true
	})
}

// reportDerefs flags *p and p.field inside n while p is nil, stopping at
// reassignments of p and at nested function literals.
func reportDerefs(pass *analysis.Pass, n ast.Node, obj types.Object) {
	info := pass.TypesInfo
	disarmed := false
	ast.Inspect(n, func(m ast.Node) bool {
		if disarmed {
			return false
		}
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
					disarmed = true
					return false
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && info.Uses[id] == obj {
				pass.Reportf(v.Pos(), "nil dereference: *%s with %s nil on this path", id.Name, id.Name)
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(v.X).(*ast.Ident)
			if !ok || info.Uses[id] != obj {
				return true
			}
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(v.Pos(), "nil dereference: field access %s.%s with %s nil on this path", id.Name, v.Sel.Name, id.Name)
			}
		}
		return true
	})
}
