// Package detorder flags map iteration whose order can leak into
// observable output — the exact bug class PR 2 hit, where Go's randomized
// map order silently changed branch-and-bound node counts 2x run to run.
//
// Inside the deterministic packages (Packages), a `range` over a map is
// reported when its body lets the iteration order escape:
//
//   - appending to a slice that outlives the loop (unless the slice is
//     sorted after the loop);
//   - sending on a channel;
//   - returning a value derived from the iteration;
//   - writing through a loop-carried slice index (out[i] = ...; i++);
//   - calling a function or method with iteration-derived arguments
//     (calls happen in iteration order, so row/constraint emission — the
//     PR 2 bug — lands here).
//
// Commutative bodies are exempt by construction: counters and other
// compound assignments (x += ...), writes into another map (distinct keys
// commute), deletes, and guarded scalar selection (min/max/pick-one)
// produce no sink. A sorted post-pass also exempts: if the appended-to
// slice is passed to a sort call after the loop, order was laundered
// deterministically. Everything else needs a
// //lint:ignore fpva/detorder <reason>.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Packages limits the analyzer to packages whose import path matches one
// of these prefixes. Empty means every package (used by tests). The
// default list is the repo's determinism contract: everything that feeds
// plan generation, solving, simulation or the wire codec.
var Packages = []string{
	"repro/internal/lp",
	"repro/internal/ilp",
	"repro/internal/sim",
	"repro/internal/core",
	"repro/internal/flowpath",
	"repro/internal/cutset",
	"repro/internal/leakage",
	"repro/internal/graph",
	"repro/internal/grid",
	"repro/fpva",
}

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flags map iteration whose order reaches appends, sends, returns or calls " +
		"in the deterministic packages (bit-identical-results contract)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !enabled(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func enabled(path string) bool {
	if len(Packages) == 0 {
		return true
	}
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// checkFuncBody finds map ranges directly inside one function body
// (nested function literals are handled by their own call).
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

type sink struct {
	pos  token.Pos
	what string
	// dest is the object an append/index-write targets; a later sort of
	// dest exempts the sink.
	dest types.Object
}

func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	taint := taintedObjects(info, rs)
	var sinks []sink

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, sink{s.Pos(), "sends on a channel", nil})
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if refersTo(info, res, taint) {
					sinks = append(sinks, sink{s.Pos(), "returns an iteration-dependent value", nil})
					break
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, rs, s, taint, &sinks)
		case *ast.CallExpr:
			if dest := appendDest(info, s); dest != nil {
				// Handled via the enclosing assignment.
				return true
			}
			if callIsExempt(info, s) {
				return true
			}
			if callUsesTaint(info, s, taint) {
				sinks = append(sinks, sink{s.Pos(), "calls " + calleeName(s) + " with iteration-derived arguments (calls run in map order)", nil})
			}
		}
		return true
	})

	for _, sk := range sinks {
		if sk.dest != nil && sortedAfter(pass, funcBody, rs, sk.dest) {
			continue
		}
		pass.Reportf(sk.pos, "range over map %s: body %s; map iteration order is random — iterate sorted keys, sort the result, or //lint:ignore fpva/detorder <reason>",
			exprString(rs.X), sk.what)
	}
}

// taintedObjects computes the objects derived from the iteration: the key
// and value variables, plus anything assigned from them in the body
// (fixed point over simple assignments).
func taintedObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				taint[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				taint[obj] = true
			}
		}
	}
	if rs.Key != nil {
		add(rs.Key)
	}
	if rs.Value != nil {
		add(rs.Value)
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			tainted := false
			for _, r := range as.Rhs {
				if refersTo(info, r, taint) {
					tainted = true
					break
				}
			}
			if !tainted {
				return true
			}
			for _, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !taint[obj] {
					taint[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return taint
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, taint map[types.Object]bool, sinks *[]sink) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		// append into a slice that outlives the loop.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if dest := appendDest(info, call); dest != nil || isAppend(info, call) {
				obj := lhsObject(info, lhs)
				if obj != nil && obj.Pos() != token.NoPos &&
					(obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End()) {
					*sinks = append(*sinks, sink{as.Pos(), "appends to " + obj.Name() + ", which outlives the loop", obj})
				}
				continue
			}
		}
		// Write through a loop-carried slice index: out[i] = ... where i
		// is mutated inside the loop body.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			baseTV, ok := info.Types[ix.X]
			if !ok {
				continue
			}
			switch baseTV.Type.Underlying().(type) {
			case *types.Map:
				continue // map writes commute across distinct keys
			case *types.Slice, *types.Array, *types.Pointer:
				if obj := counterObject(info, rs.Body, ix.Index); obj != nil {
					*sinks = append(*sinks, sink{as.Pos(), "writes " + exprString(ix.X) + "[" + obj.Name() + "] through a loop-carried index", lhsObject(info, ix.X)})
				}
			}
		}
	}
}

// appendDest returns the object of append's first argument when call is
// `append(x, ...)`, else nil.
func appendDest(info *types.Info, call *ast.CallExpr) types.Object {
	if !isAppend(info, call) || len(call.Args) == 0 {
		return nil
	}
	return lhsObject(info, call.Args[0])
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// callIsExempt reports whether a call cannot make iteration order
// observable: type conversions, and the order-insensitive builtins.
func callIsExempt(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "delete", "min", "max", "append", "panic":
				return true
			}
		}
	}
	return false
}

func callUsesTaint(info *types.Info, call *ast.CallExpr, taint map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if refersTo(info, arg, taint) {
			return true
		}
	}
	// Method receiver: m[k].Do() or v.Do().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if refersTo(info, sel.X, taint) {
			return true
		}
	}
	return false
}

// sortedAfter reports whether dest is passed to a sort-like call
// (sort.*, slices.Sort*, or any callee whose name contains "Sort")
// after the range statement inside the same function body.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, dest types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !strings.Contains(calleeName(call), "Sort") && !strings.Contains(calleeName(call), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(pass.TypesInfo, arg, map[types.Object]bool{dest: true}) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// counterObject returns the object of a variable used in index that is
// declared outside the loop body and written inside it — the
// out[i]=...; i++ pattern.
func counterObject(info *types.Info, body *ast.BlockStmt, index ast.Expr) types.Object {
	var cand types.Object
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
			return true // per-iteration local (e.g. the range key): commutes
		}
		if writtenIn(info, body, obj) {
			cand = obj
			return false
		}
		return true
	})
	return cand
}

func writtenIn(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	written := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if lhsObject(info, s.X) == obj {
				written = true
			}
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if lhsObject(info, l) == obj {
					written = true
				}
			}
		}
		return !written
	})
	return written
}

// lhsObject resolves the root object of an assignable expression:
// x, x.f, x[i] all resolve to x.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func refersTo(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return exprString(fun.X) + "." + fun.Sel.Name
	default:
		return "function"
	}
}

// exprString renders small expressions for diagnostics.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return calleeName(v) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	default:
		return "expression"
	}
}
