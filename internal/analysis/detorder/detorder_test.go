package detorder

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestDetorder(t *testing.T) {
	defer func(old []string) { Packages = old }(Packages)
	Packages = nil // golden packages are outside the repro/ namespace
	analysistest.Run(t, ".", Analyzer, "detorder")
}
