// Package detorder is the golden corpus for the fpva/detorder analyzer:
// each `// want` comment pins a diagnostic, unannotated map loops pin the
// commutative exemptions.
package detorder

import "sort"

type model struct{ rows int }

func (m *model) addRow(id int, c float64) { m.rows++ }

// Flagged: the PR 2 bug class — emitting constraint rows in map order.
func emitRows(m *model, vars map[int]float64) {
	for id, c := range vars {
		m.addRow(id, c) // want `calls m.addRow with iteration-derived arguments`
	}
}

// Flagged: collecting keys without sorting.
func keysUnsorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k) // want `appends to out, which outlives the loop`
	}
	return out
}

// Exempt: the append is laundered through a sort after the loop.
func keysSorted(set map[string]bool) []string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Flagged: channel sends happen in map order.
func drain(set map[int]bool, ch chan int) {
	for k := range set {
		ch <- k // want `sends on a channel`
	}
}

// Flagged: which element is returned depends on iteration order.
func anyKey(set map[int]bool) int {
	for k := range set {
		return k // want `returns an iteration-dependent value`
	}
	return -1
}

// Flagged: a loop-carried index makes slot assignment order-dependent.
func fill(set map[int]bool, out []int) {
	i := 0
	for k := range set {
		out[i] = k // want `through a loop-carried index`
		i++
	}
}

// Exempt: pure accumulation commutes.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Exempt: writes into another map commute across distinct keys.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Exempt: guarded scalar selection (min over keys) commutes.
func minKey(m map[int]bool) int {
	best := -1
	for k := range m {
		if best == -1 || k < best {
			best = k
		}
	}
	return best
}

// Exempt: delete/len/conversions are order-insensitive.
func prune(m map[int]bool, dead map[int]bool) int {
	for k := range dead {
		delete(m, k)
	}
	return len(m)
}

// Exempt: per-iteration locals do not outlive the loop.
func localOnly(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var grown []int
		grown = append(grown, vs...)
		n += len(grown)
	}
	return n
}

// Suppressed: a deliberate, explained exception.
func suppressed(set map[int]bool, ch chan int) {
	for k := range set {
		//lint:ignore fpva/detorder the consumer resorts; pinned by golden test
		ch <- k
	}
}
