// Package pipedep provides module callees for the ctxflow golden corpus.
package pipedep

import "context"

// Work is a cancelable module entry point.
func Work(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Quick is module work without a context of its own.
func Quick(n int) int { return n + 1 }
