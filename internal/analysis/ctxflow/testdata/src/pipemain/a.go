// Package pipemain is the golden corpus for the fpva/ctxflow analyzer.
package pipemain

import (
	"context"

	"pipedep"
)

// Flagged twice: a context conjured below main, from a function that
// should have accepted one.
func Detach(n int) int { // want `exported Detach calls pipedep.Work, which takes a context, but has no ctx parameter`
	return pipedep.Work(context.Background(), n) // want `context.Background below main detaches cancellation`
}

// Exempt: the documented nil-default idiom only fills in an explicit nil.
func Defaulted(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return pipedep.Work(ctx, n)
}

// Flagged: the ctx parameter is dead — the chain silently breaks here.
func Dropped(ctx context.Context, n int) int { // want `takes a context.Context but never uses it`
	return n * 2
}

// Flagged: a single up-front check leaves the loop uncancelable.
func Sweep(ctx context.Context, xs []int) int { // want `no loop checks or forwards ctx`
	_ = ctx.Err()
	total := 0
	for _, x := range xs {
		total += pipedep.Quick(x)
	}
	return total
}

// Exempt: cancellation reaches the iteration via an in-loop check.
func SweepOK(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		if ctx.Err() != nil {
			return total
		}
		total += pipedep.Quick(x)
	}
	return total
}

// Exempt: forwarding ctx into the loop's callee is a check on some path.
func Forward(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += pipedep.Work(ctx, x)
	}
	return total
}

// Exempt: ctx is handed wholesale to the callee that does the real work;
// the function's own loop is cheap result conversion.
func ForwardOnce(ctx context.Context, xs []int) []int {
	n := pipedep.Work(ctx, len(xs))
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, pipedep.Quick(x+n))
	}
	return out
}

// Exempt: the worker closure captures ctx and checks it in its loop
// condition — the canonical sharded-worker shape.
func Spawn(ctx context.Context, xs []int) int {
	total := 0
	run := func() {
		for ctx.Err() == nil {
			total += pipedep.Quick(1)
			return
		}
	}
	for i := 0; i < len(xs); i++ {
		run()
	}
	return total
}

// Exempt: no module work in the loop, nothing to cancel.
func Pure(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Suppressed: a deliberately detached lifetime, with the reason.
func Flight(n int) func() {
	//lint:ignore fpva/ctxflow the flight outlives any one submitter by design
	ctx, cancel := context.WithCancel(context.Background())
	_ = ctx
	_ = n
	return cancel
}
