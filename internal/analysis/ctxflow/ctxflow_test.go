package ctxflow

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	defer func(oldScope []string, oldMod string) {
		ScopePackages, ModulePrefix = oldScope, oldMod
	}(ScopePackages, ModulePrefix)
	ScopePackages = nil // golden packages are outside the repro/ namespace
	ModulePrefix = "pipe"
	analysistest.Run(t, ".", Analyzer, "pipedep", "pipemain")
}
