// Package ctxflow machine-checks the repo's cancellation contract: since
// PR 3, context flows from the public fpva API down to every solver node
// and campaign block, and long work must stay cancelable.
//
// Rules:
//
//   - background: context.Background() / context.TODO() must not appear
//     outside package main (tests are never analyzed). The documented
//     nil-default idiom `if ctx == nil { ctx = context.Background() }` is
//     the one exemption — it only fills in a caller's explicit nil, it
//     does not detach an existing context.
//
//   - dropped: a function that takes a context.Context must use it —
//     check Err/Done/Deadline, pass it on, or store it. A ctx parameter
//     that is never referenced silently breaks the chain.
//
//   - loop: in the pipeline packages (ScopePackages), an exported
//     function that takes a context and loops over module work (a loop
//     body calling module functions) must let cancellation reach the
//     iteration: some loop must reference ctx (an Err/Done check in the
//     condition or body, or forwarding ctx into the loop's callees), or
//     the function must hand ctx off wholesale — as a call argument, a
//     composite-literal value, or a closure capture — to code that can
//     honor it. A lone up-front ctx.Err() check does not qualify.
//
//   - missing: in the pipeline packages, an exported function without a
//     context parameter must not call module functions that take one —
//     whatever context it would pass is either conjured below main
//     (caught by the background rule) or absent; the function should
//     accept and forward its caller's.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ScopePackages are the import-path prefixes where the loop and missing
// rules apply: the generation/solve/simulation pipeline plus the public
// API. Leaf compute packages (lp, graph, grid) are deliberately out of
// scope — their inner loops are the allocation-free warm paths, and
// cancellation is probed one level above them. Empty means every package
// (used by tests).
var ScopePackages = []string{
	"repro/internal/core",
	"repro/internal/flowpath",
	"repro/internal/cutset",
	"repro/internal/leakage",
	"repro/internal/sim",
	"repro/internal/ilp",
	"repro/fpva",
}

// ModulePrefix identifies in-module callees for the loop/missing rules.
var ModulePrefix = "repro/"

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context cancellation must flow end to end: no context.Background/TODO below main, " +
		"no dropped ctx parameters, and exported pipeline loops must be cancelable",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	inScope := scoped(pass.Pkg.Path())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObj := ctxParam(pass.TypesInfo, fd)
			if !isMain {
				checkBackground(pass, fd, ctxObj)
			}
			if ctxObj != nil {
				checkDropped(pass, fd, ctxObj)
				if inScope && fd.Name.IsExported() {
					checkLoop(pass, fd, ctxObj)
				}
			} else if inScope && fd.Name.IsExported() {
				checkMissing(pass, fd)
			}
		}
	}
	return nil
}

func scoped(path string) bool {
	if len(ScopePackages) == 0 {
		return true
	}
	for _, p := range ScopePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// ctxParam returns the object of the function's context.Context
// parameter, or nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			return info.Defs[name]
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBackground flags context.Background()/TODO() calls, excusing the
// nil-default idiom on the function's own ctx parameter.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := contextConstructor(pass.TypesInfo, call)
		if name == "" {
			return true
		}
		if nilDefaultIdiom(pass.TypesInfo, stack, call) {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s below main detaches cancellation; accept a ctx (nil-default idiom: if ctx == nil { ctx = context.Background() })", name)
		return true
	})
}

// contextConstructor returns "Background" or "TODO" when call is that
// context-package function.
func contextConstructor(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// nilDefaultIdiom reports whether, per the parent stack, call is the RHS
// of `X = context.Background()` guarded by `if X == nil`.
func nilDefaultIdiom(info *types.Info, stack []ast.Node, call *ast.CallExpr) bool {
	var target types.Object
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			if target != nil {
				continue
			}
			if len(p.Lhs) != 1 || len(p.Rhs) != 1 || p.Rhs[0] != call {
				return false
			}
			id, ok := p.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			target = info.Uses[id]
			if target == nil {
				target = info.Defs[id]
			}
			if target == nil {
				return false
			}
		case *ast.IfStmt:
			if target == nil {
				return false
			}
			if bin, ok := p.Cond.(*ast.BinaryExpr); ok && bin.Op == token.EQL {
				for _, side := range []ast.Expr{bin.X, bin.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && info.Uses[id] == target {
						return true
					}
				}
			}
			return false
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// checkDropped flags a ctx parameter that the body never references.
func checkDropped(pass *analysis.Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	if usesObj(pass.TypesInfo, fd.Body, ctxObj) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "%s takes a context.Context but never uses it; check ctx.Err, forward it, or drop the parameter", fd.Name.Name)
}

// checkLoop flags exported pipeline functions whose loops do module work
// but never see ctx.
func checkLoop(pass *analysis.Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	hasWorkLoop := false
	ctxInLoop := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		// The whole statement, not just the body: `for ctx.Err() == nil`
		// is the canonical cancelable worker loop.
		if usesObj(pass.TypesInfo, n, ctxObj) {
			ctxInLoop = true
		}
		if callsModuleFunc(pass, body) {
			hasWorkLoop = true
		}
		return true
	})
	if hasWorkLoop && !ctxInLoop && !forwardsCtx(pass.TypesInfo, fd.Body, ctxObj) {
		pass.Reportf(fd.Name.Pos(), "exported %s loops over module work but no loop checks or forwards ctx; cancellation cannot interrupt it", fd.Name.Name)
	}
}

// forwardsCtx reports whether ctx escapes the function's own frame — as a
// call argument, a composite-literal value (stored for later work), or a
// closure capture. Each hands cancellation to code that can honor it, so
// the function's own cheap loops (option processing, result conversion)
// need no per-iteration check. A bare receiver use like an up-front
// ctx.Err() is not forwarding.
func forwardsCtx(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			for _, arg := range v.Args {
				if usesObj(info, arg, obj) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if usesObj(info, elt, obj) {
					found = true
				}
			}
		case *ast.FuncLit:
			if usesObj(info, v.Body, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkMissing flags exported ctx-less pipeline functions that call
// module functions taking a context.
func checkMissing(pass *analysis.Pass, fd *ast.FuncDecl) {
	var reported bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		path := callee.Pkg().Path()
		if !strings.HasPrefix(path, ModulePrefix) && path != strings.TrimSuffix(ModulePrefix, "/") {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		reported = true
		pass.Reportf(fd.Name.Pos(), "exported %s calls %s.%s, which takes a context, but has no ctx parameter to forward; accept one", fd.Name.Name, path, callee.Name())
		return false
	})
}

func callsModuleFunc(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		pkg := callee.Pkg()
		if pkg == nil {
			return true
		}
		if pkg == pass.Pkg || strings.HasPrefix(pkg.Path(), ModulePrefix) || pkg.Path() == strings.TrimSuffix(ModulePrefix, "/") {
			found = true
			return false
		}
		return true
	})
	return found
}

func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
