// Package load type-checks the module's packages for the fpvalint
// analyzers. It is a minimal, offline stand-in for
// golang.org/x/tools/go/packages: package discovery is delegated to
// `go list -deps -json`, module sources are parsed and type-checked in
// dependency order (so cross-package facts are sound), and standard
// library imports resolve through the stdlib source importer — no module
// cache, no network, no compiled export data required.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	DepsErrors []*struct{ Err string }
	Error      *struct{ Err string }
}

// Packages loads the module packages matched by patterns (plus their
// in-module dependencies, which are type-checked but only returned when
// they match a pattern) rooted at dir. The returned slice is in
// dependency order and carries the set of packages to analyze.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One `go list` for the analysis targets, one with -deps so every
	// in-module dependency can be type-checked first.
	targets, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	all, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(targets))
	for _, p := range targets {
		if !p.Standard {
			want[p.ImportPath] = true
		}
	}
	byPath := make(map[string]*listPkg, len(all))
	var modPkgs []*listPkg
	for _, p := range all {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		byPath[p.ImportPath] = p
		modPkgs = append(modPkgs, p)
	}
	order, err := toposort(modPkgs, byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	loaded := make(map[string]*analysis.Package)
	imp := &moduleImporter{std: std, loaded: loaded}
	var out []*analysis.Package
	for _, lp := range order {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		loaded[lp.ImportPath] = pkg
		if want[lp.ImportPath] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

func goList(dir string, patterns []string, deps bool) ([]*listPkg, error) {
	args := []string{"list", "-e", "-json=ImportPath,Name,Dir,Standard,GoFiles,Imports,Error"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(outPipe)
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// toposort orders module packages dependencies-first, deterministically.
func toposort(pkgs []*listPkg, byPath map[string]*listPkg) ([]*listPkg, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*listPkg
	var visit func(p *listPkg) error
	visit = func(p *listPkg) error {
		switch state[p.ImportPath] {
		case gray:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		case black:
			return nil
		}
		state[p.ImportPath] = gray
		for _, dep := range p.Imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves in-module imports from already-loaded packages
// and everything else (the standard library) from source.
type moduleImporter struct {
	std    types.Importer
	loaded map[string]*analysis.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p.Types, nil
	}
	return m.std.Import(path)
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPkg) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, err)
	}
	return &analysis.Package{
		PkgPath:   lp.ImportPath,
		Name:      lp.Name,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		Imports:   lp.Imports,
	}, nil
}
