// Package fpva stands in for the public API surface.
package fpva

import "repro/internal/secret"

// Answer wraps the internal helper; the public package may use internal
// freely — the boundary binds only cmd/ and examples/.
func Answer() int { return secret.Hidden() }
