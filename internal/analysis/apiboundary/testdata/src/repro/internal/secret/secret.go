// Package secret stands in for the repro/internal tree.
package secret

// Hidden is an internal helper commands must not reach.
func Hidden() int { return 42 }
