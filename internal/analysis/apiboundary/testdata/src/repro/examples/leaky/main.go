// Command leaky shows the rule also binds examples/.
package main

import "repro/internal/secret" // want `package repro/examples/leaky must import only the public repro/fpva API, not repro/internal/secret`

func main() { _ = secret.Hidden() }
