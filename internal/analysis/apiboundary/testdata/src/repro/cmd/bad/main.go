// Command bad reaches into repro/internal: flagged at the import line.
package main

import (
	"repro/fpva"
	"repro/internal/secret" // want `package repro/cmd/bad must import only the public repro/fpva API, not repro/internal/secret`
)

func main() { _ = fpva.Answer() + secret.Hidden() }
