// Command fpvalint is the lint driver itself: exempt by name, since the
// analyzers it links live under repro/internal/analysis.
package main

import "repro/internal/secret"

func main() { _ = secret.Hidden() }
