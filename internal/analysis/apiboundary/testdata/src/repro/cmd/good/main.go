// Command good consumes only the public API: exempt.
package main

import "repro/fpva"

func main() { _ = fpva.Answer() }
