package apiboundary

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestApiboundary(t *testing.T) {
	defer func(oldR []string, oldF string, oldE []string) {
		RestrictedPrefixes, ForbiddenPrefix, Exempt = oldR, oldF, oldE
	}(RestrictedPrefixes, ForbiddenPrefix, Exempt)
	RestrictedPrefixes = []string{"repro/cmd/", "repro/examples/"}
	ForbiddenPrefix = "repro/internal"
	Exempt = []string{"repro/cmd/fpvalint"}
	analysistest.Run(t, ".", Analyzer,
		"repro/internal/secret",
		"repro/fpva",
		"repro/cmd/good",
		"repro/cmd/bad",
		"repro/cmd/fpvalint",
		"repro/examples/leaky",
	)
}
