// Package apiboundary enforces the public-API import boundary as a
// positioned analyzer: packages under cmd/ and examples/ are consumers
// of the public repro/fpva surface and must not reach into
// repro/internal. It replaces scripts/check-imports.sh, so the rule
// lives with the other lints and diagnoses the exact import line.
//
// Test files are exempt (they may use repro/internal/testutil-style
// helpers); the loader never feeds them to analyzers. cmd/fpvalint is
// exempt by name: it is the lint driver itself, not an API consumer, and
// necessarily links the analyzers under repro/internal/analysis.
package apiboundary

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// RestrictedPrefixes lists the import-path prefixes whose packages may
// only use the public API.
var RestrictedPrefixes = []string{"repro/cmd/", "repro/examples/"}

// ForbiddenPrefix is the internal tree those packages must not import.
var ForbiddenPrefix = "repro/internal"

// Exempt lists restricted packages excused from the rule.
var Exempt = []string{"repro/cmd/fpvalint"}

var Analyzer = &analysis.Analyzer{
	Name: "apiboundary",
	Doc: "cmd/ and examples/ must import only the public repro/fpva API, " +
		"never repro/internal (test files exempt)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	restricted := false
	for _, p := range RestrictedPrefixes {
		if strings.HasPrefix(path, p) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, e := range Exempt {
		if path == e || strings.HasPrefix(path, e+"/") {
			return nil
		}
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if target == ForbiddenPrefix || strings.HasPrefix(target, ForbiddenPrefix+"/") {
				report(pass, imp, path, target)
			}
		}
	}
	return nil
}

func report(pass *analysis.Pass, imp *ast.ImportSpec, pkg, target string) {
	pass.Reportf(imp.Pos(), "package %s must import only the public repro/fpva API, not %s", pkg, target)
}
