// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// built only on the standard library's go/ast, go/types and go/token.
//
// The repo rests on invariants no compiler checks: bit-identical results
// for any worker count, allocation-free warm paths, context cancellation
// plumbed end to end, and the cmd/+examples/ public-API import boundary.
// The analyzers under internal/analysis/... turn those conventions into
// machine-checked law; cmd/fpvalint is the multichecker driver.
//
// The x/tools module is deliberately not a dependency: the build must work
// with an empty module cache and no network, so this package keeps the
// same API shape (an analyzer written here ports to x/tools by changing
// one import) while implementing only the subset the suite needs:
// single-pass runs, package-ordered facts, and line-based suppression.
//
// # Suppression
//
// A diagnostic is suppressed by a comment on the flagged line or the line
// above it:
//
//	//lint:ignore fpva/<analyzer> <reason>
//
// The reason is mandatory; a bare ignore is itself reported.
//
// # Directives
//
// Analyzers may define function annotations of the form //fpva:<name>
// (for example //fpva:allocfree) placed in the doc comment of a
// declaration. HasDirective recognizes them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only filters and
	// suppression comments (as fpva/<Name>).
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// Disabled, when non-empty, explains why the analyzer is registered
	// but cannot run (for example: it needs SSA from x/tools, which is
	// unavailable offline). The driver lists it and skips it.
	Disabled string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed non-test sources, with comments
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is shared across all packages of a run. Packages are
	// processed in dependency order, so by the time a pass runs, facts
	// exported by its (in-run) dependencies are visible.
	Facts *FactSet

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A FactSet records named facts about package-level objects, keyed by the
// object's full path (pkgpath.Name or pkgpath.(Recv).Name). It is the
// cross-package channel for compositional rules such as allocfree.
type FactSet struct {
	m map[string]bool
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{m: make(map[string]bool)} }

// ObjKey returns the canonical fact key of a package-level function or
// method: "pkg/path.Func" or "pkg/path.(Recv).Method".
func ObjKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fn.Pkg().Path() + ".(" + name + ")." + fn.Name()
}

// Set records fact (key, name).
func (fs *FactSet) Set(key, name string) { fs.m[key+"\x00"+name] = true }

// Has reports whether fact (key, name) was recorded.
func (fs *FactSet) Has(key, name string) bool { return fs.m[key+"\x00"+name] }

// HasDirective reports whether doc contains the //fpva:<name> directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//fpva:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil means malformed (no reason)
	line      int
}

// suppressions maps file -> line -> directive for one package.
type suppressions map[string]map[int]ignoreDirective

const ignorePrefix = "//lint:ignore "

// collectSuppressions parses every //lint:ignore comment in files. A
// directive suppresses matching diagnostics on its own line and the line
// directly below (the usual "comment above the statement" placement).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				d := ignoreDirective{line: pos.Line}
				// First field: comma-separated fpva/<name> (or bare
				// <name>) list; the rest is the mandatory reason.
				if len(fields) >= 2 {
					d.analyzers = make(map[string]bool)
					for _, a := range strings.Split(fields[0], ",") {
						d.analyzers[strings.TrimPrefix(a, "fpva/")] = true
					}
				}
				m := sup[pos.Filename]
				if m == nil {
					m = make(map[int]ignoreDirective)
					sup[pos.Filename] = m
				}
				m[pos.Line] = d
			}
		}
	}
	return sup
}

// A Package is one type-checked unit of a run, as produced by the loader.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Imports   []string
}

// Run applies each enabled analyzer to each package, in the given package
// order (the loader yields dependencies first, which makes facts sound),
// applies //lint:ignore suppression, and returns the surviving
// diagnostics sorted by position. Malformed ignore directives (missing
// reason) are reported as diagnostics of the pseudo-analyzer "ignore".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFactSet()
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for file, lines := range sup {
			for line, d := range lines {
				if d.analyzers == nil {
					all = append(all, Diagnostic{
						Pos:      posOnLine(pkg, file, line),
						Analyzer: "ignore",
						Message:  "//lint:ignore needs an analyzer list and a reason: //lint:ignore fpva/<name> <why>",
					})
				}
			}
		}
		for _, a := range analyzers {
			if a.Disabled != "" {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				if !suppressed(pkg.Fset, sup, d) {
					all = append(all, d)
				}
			}
		}
	}
	if fset != nil {
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return all, nil
}

func suppressed(fset *token.FileSet, sup suppressions, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := sup[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if dir, ok := lines[line]; ok && dir.analyzers != nil && dir.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}

// posOnLine synthesizes a Pos for (file, line) so suppression-syntax
// errors are positioned; falls back to the package's first file.
func posOnLine(pkg *Package, file string, line int) token.Pos {
	var tf *token.File
	pkg.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == file {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || line > tf.LineCount() {
		if len(pkg.Files) > 0 {
			return pkg.Files[0].Pos()
		}
		return token.NoPos
	}
	return tf.LineStart(line)
}
