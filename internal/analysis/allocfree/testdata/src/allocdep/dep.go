// Package allocdep provides cross-package callees for the allocfree
// golden corpus: one annotated (fact-exported), one not.
package allocdep

// Pinned is a warm-path helper other packages may call.
//
//fpva:allocfree
func Pinned(buf []int, n int) []int {
	for i := range buf {
		buf[i] = n
	}
	return buf
}

// Sloppy allocates; calling it from an annotated function is an error.
func Sloppy(n int) []int {
	return make([]int, n)
}
