// Package allocmain is the golden corpus for the fpva/allocfree
// analyzer: annotated warm paths with allocating constructs flagged, the
// steady-state reuse patterns exempt.
package allocmain

import "allocdep"

type ring struct {
	buf  []int
	tmp  []int
	sink any
}

// Flagged constructs inside an annotated function.
//
//fpva:allocfree
func hotAllocs(r *ring, n int) {
	x := make([]int, n) // want `make allocates`
	_ = x
	p := new(int) // want `new allocates`
	_ = p
	s := []int{1, 2, 3} // want `slice/map literal allocates`
	_ = s
	q := &ring{} // want `heap-allocates a composite literal`
	_ = q
	f := func() {}           // want `function literal allocates a closure`
	r.sink = f               // escapes: stored beyond the call
	r.buf = append(r.tmp, n) // want `append outside the x = append\(x\[:k\], \.\.\.\) reuse pattern`
}

// Exempt: closures that stay on the stack — immediately invoked, local
// and only called, or handed to a same-package function. Their bodies are
// still scanned.
//
//fpva:allocfree
func hotClosures(r *ring, n int) {
	total := 0
	add := func(v int) { total += v }
	add(n)
	func() { total *= 2 }()
	each(r, func(v int) {
		total += v
		r.tmp = make([]int, v) // want `make allocates`
	})
	_ = total
}

func each(r *ring, f func(int)) {
	for _, v := range r.buf {
		f(v)
	}
}

// Exempt: self-appends reuse steady-state capacity; value struct
// literals live on the stack; pointer-to-interface fits the iface word.
//
//fpva:allocfree
func hotClean(r *ring, n int) {
	r.buf = append(r.buf, n)
	r.tmp = append(r.tmp[:0], r.buf...)
	type pair struct{ a, b int }
	pr := pair{n, n}
	_ = pr
	r.sink = r // pointer into interface: no allocation
	if n < 0 {
		panic("bad n") // error paths may allocate
	}
}

// Flagged: the guarantee is transitive through same-package callees.
//
//fpva:allocfree
func hotViaHelper(r *ring, n int) {
	helper(r, n)
}

func helper(r *ring, n int) {
	r.tmp = make([]int, n) // want `make allocates \(reachable from //fpva:allocfree hotViaHelper via helper\)`
}

// Cross-package: annotated callees are fine, unannotated ones are not.
//
//fpva:allocfree
func hotCross(r *ring, n int) {
	r.buf = allocdep.Pinned(r.buf, n)
	r.tmp = allocdep.Sloppy(n) // want `calls allocdep.Sloppy, which is not marked //fpva:allocfree`
}

// Flagged: boxing a non-pointer into an interface escapes.
//
//fpva:allocfree
func hotBox(r *ring, n int) {
	store(r, n) // want `passing n to an interface parameter allocates`
}

func store(r *ring, v any) { r.sink = v }

// Suppressed: a buffer growing once to steady size, with a reason.
//
//fpva:allocfree
func hotGrow(r *ring, n int) {
	if cap(r.tmp) < n {
		//lint:ignore fpva/allocfree grows once to steady size, pinned by alloc_test
		r.tmp = make([]int, n)
	}
	r.tmp = r.tmp[:n]
}

// Unannotated functions may allocate freely.
func cold(n int) []int {
	return make([]int, n)
}
