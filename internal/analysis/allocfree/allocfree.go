// Package allocfree statically checks the //fpva:allocfree annotation: a
// function so annotated — and everything it calls inside the module —
// must not contain allocating constructs. It is the static complement to
// the runtime AllocsPerRun pins in lp/alloc_test.go and sim/alloc_test.go,
// catching regressions those benchmarks' fixed problem sizes can miss.
//
// Flagged inside an annotated function and its intra-package callees:
//
//   - make and new;
//   - &composite literals, and slice/map composite literals;
//   - append that is not a self-append (x = append(x, ...) and
//     x = append(x[:k], ...) reuse steady-state capacity and are allowed);
//   - function literals that can escape (closure allocation). A literal
//     that is immediately invoked, assigned to a local used only in call
//     position, or passed as an argument to a same-package function stays
//     on the stack under escape analysis and is exempt — its body is
//     still scanned;
//   - converting a non-pointer concrete value to an interface;
//   - allocating conversions (string <-> []byte/[]rune);
//   - string concatenation;
//   - calls into fmt, sort or errors (allocation by design);
//   - calls to variadic functions (the argument slice), unless spread;
//   - calls to module functions in other packages that are not themselves
//     annotated //fpva:allocfree (annotations are facts, checked in
//     dependency order, so the guarantee composes across packages).
//
// Error paths are excused: arguments of panic(...) may allocate. Buffers
// that grow once to steady size carry a //lint:ignore fpva/allocfree with
// the reason.
package allocfree

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ModulePrefix marks in-module import paths for the cross-package
// annotation check; package-path values are settable for tests.
var ModulePrefix = "repro/"

// deniedStdlib are standard-library packages whose calls allocate by
// design and never belong on a pinned warm path.
var deniedStdlib = map[string]bool{"fmt": true, "sort": true, "errors": true}

var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //fpva:allocfree, including their intra-module callees, " +
		"must not contain allocating constructs (static complement to the AllocsPerRun pins)",
	Run: run,
}

const directive = "allocfree"

func run(pass *analysis.Pass) error {
	// Pass 1: find declarations and annotated roots; export facts so
	// downstream packages can call annotated functions.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if analysis.HasDirective(fd.Doc, directive) {
				roots = append(roots, fd)
				pass.Facts.Set(analysis.ObjKey(fn), directive)
			}
		}
	}
	// Pass 2: walk each root and its same-package callees.
	c := &checker{pass: pass, decls: decls, visited: make(map[*types.Func]bool)}
	for _, root := range roots {
		c.root = root.Name.Name
		fn := pass.TypesInfo.Defs[root.Name].(*types.Func)
		c.walk(fn, root)
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
	root    string
}

func (c *checker) walk(fn *types.Func, fd *ast.FuncDecl) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	here := fd.Name.Name
	suffix := ""
	if here != c.root {
		suffix = " (reachable from //fpva:allocfree " + c.root + " via " + here + ")"
	}
	c.scan(fd.Body, suffix)
}

func (c *checker) scan(body ast.Node, suffix string) {
	info := c.pass.TypesInfo
	selfAppends := c.collectSelfAppends(body)
	benignLits := c.collectBenignFuncLits(body)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(v, selfAppends, suffix)
		case *ast.UnaryExpr:
			if _, ok := v.X.(*ast.CompositeLit); ok {
				c.pass.Reportf(v.Pos(), "heap-allocates a composite literal%s", suffix)
				return false
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[v]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					c.pass.Reportf(v.Pos(), "slice/map literal allocates%s", suffix)
					return false
				}
			}
		case *ast.FuncLit:
			if benignLits[v] {
				return true // stack-allocated; keep scanning its body
			}
			c.pass.Reportf(v.Pos(), "function literal allocates a closure%s", suffix)
			return false
		case *ast.BinaryExpr:
			if tv, ok := info.Types[v]; ok && v.Op.String() == "+" {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.pass.Reportf(v.Pos(), "string concatenation allocates%s", suffix)
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// checkCall vets one call; returns false to skip the subtree.
func (c *checker) checkCall(call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, suffix string) bool {
	info := c.pass.TypesInfo
	pass := c.pass

	// Conversions: only string <-> byte/rune slices allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if convAllocates(tv.Type, info, call) {
			pass.Reportf(call.Pos(), "conversion %s allocates%s", exprString(call.Fun), suffix)
		}
		return true
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates%s", b.Name(), suffix)
			case "append":
				if !selfAppends[call] {
					pass.Reportf(call.Pos(), "append outside the x = append(x[:k], ...) reuse pattern allocates%s", suffix)
				}
			case "panic":
				return false // error paths may allocate
			}
			return true
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		return true // func values, closures, interface fields: invisible
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return true // dynamic dispatch: cannot analyze, assume contract
		}
	}
	c.checkInterfaceArgs(call, sig, suffix)
	if sig != nil && sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "call to variadic %s allocates its argument slice%s", callee.Name(), suffix)
	}

	pkg := callee.Pkg()
	switch {
	case pkg == nil || pkg == pass.Pkg:
		if fd, ok := c.decls[callee]; ok {
			c.walk(callee, fd)
		}
	case strings.HasPrefix(pkg.Path(), ModulePrefix) || pkg.Path() == strings.TrimSuffix(ModulePrefix, "/"):
		if !pass.Facts.Has(analysis.ObjKey(callee), directive) {
			pass.Reportf(call.Pos(), "calls %s.%s, which is not marked //fpva:allocfree%s", pkg.Path(), callee.Name(), suffix)
		}
	default:
		if deniedStdlib[pkg.Path()] {
			pass.Reportf(call.Pos(), "calls %s.%s, which allocates by design%s", pkg.Path(), callee.Name(), suffix)
		}
	}
	return true
}

// checkInterfaceArgs flags concrete non-pointer values passed as
// interface parameters (the value escapes to the heap). Pointers, maps,
// channels and funcs fit in the interface word and do not allocate.
func (c *checker) checkInterfaceArgs(call *ast.CallExpr, sig *types.Signature, suffix string) {
	if sig == nil {
		return
	}
	info := c.pass.TypesInfo
	for i, arg := range call.Args {
		var param types.Type
		if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		} else if sig.Variadic() {
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else {
			break
		}
		if !types.IsInterface(param) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
			continue
		case *types.Basic:
			if tv.Type.Underlying().(*types.Basic).Kind() == types.UntypedNil {
				continue
			}
		}
		c.pass.Reportf(arg.Pos(), "passing %s to an interface parameter allocates%s", exprString(arg), suffix)
	}
}

// collectBenignFuncLits marks function literals that stay on the stack
// under escape analysis: immediately invoked, assigned to a local whose
// every other use is a direct call, or passed to a function declared in
// this package (trusted not to retain it; the runtime AllocsPerRun pins
// back this up). Anything else — returned, stored in a field, sent, or
// handed to another package — is treated as escaping.
func (c *checker) collectBenignFuncLits(body ast.Node) map[*ast.FuncLit]bool {
	info := c.pass.TypesInfo
	benign := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(v.Fun).(*ast.FuncLit); ok {
				benign[lit] = true
			}
			if callee := calleeFunc(info, v); callee != nil && callee.Pkg() == c.pass.Pkg {
				if _, declared := c.decls[callee]; declared {
					for _, arg := range v.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							benign[lit] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				id, ok := v.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && onlyCalled(info, body, obj, id) {
					benign[lit] = true
				}
			}
		}
		return true
	})
	return benign
}

// onlyCalled reports whether every use of obj in body, other than its
// defining identifier, is the operand of a direct call.
func onlyCalled(info *types.Info, body ast.Node, obj types.Object, def *ast.Ident) bool {
	ok := true
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id == def || (info.Uses[id] != obj && info.Defs[id] != obj) {
			return ok
		}
		called := false
		for i := len(stack) - 2; i >= 0; i-- {
			if _, paren := stack[i].(*ast.ParenExpr); paren {
				continue
			}
			call, isCall := stack[i].(*ast.CallExpr)
			called = isCall && ast.Unparen(call.Fun) == id
			break
		}
		if !called {
			ok = false
		}
		return ok
	})
	return ok
}

// collectSelfAppends marks append calls of the reuse shape
// x = append(x, ...) / x = append(x[:k], ...), including through field
// paths (s.buf = append(s.buf[:0], ...)).
func (c *checker) collectSelfAppends(body ast.Node) map[*ast.CallExpr]bool {
	info := c.pass.TypesInfo
	ok := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, okk := n.(*ast.AssignStmt)
		if !okk || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, okk := rhs.(*ast.CallExpr)
			if !okk || !isAppendCall(info, call) || len(call.Args) == 0 {
				continue
			}
			dst := pathString(as.Lhs[i])
			src := call.Args[0]
			if sl, okk := ast.Unparen(src).(*ast.SliceExpr); okk {
				src = sl.X
			}
			if dst != "" && dst == pathString(src) {
				ok[call] = true
			}
		}
		return true
	})
	return ok
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// convAllocates reports whether conversion to typ of the call's single
// argument allocates: string <-> []byte / []rune.
func convAllocates(typ types.Type, info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isString(typ) && isByteOrRuneSlice(argTV.Type)) ||
		(isByteOrRuneSlice(typ) && isString(argTV.Type))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil // func-typed field
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified function
		}
	}
	return nil
}

// pathString renders x, x.f, (*x).f selector paths; "" when the
// expression is not a pure path.
func pathString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := pathString(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.StarExpr:
		base := pathString(v.X)
		if base == "" {
			return ""
		}
		return "*" + base
	default:
		return ""
	}
}

func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.ArrayType:
		return "[]" + exprString(v.Elt)
	default:
		return "value"
	}
}
