package allocfree

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	defer func(old string) { ModulePrefix = old }(ModulePrefix)
	ModulePrefix = "alloc"
	// allocdep first: its //fpva:allocfree facts must be visible when
	// allocmain's cross-package calls are checked.
	analysistest.Run(t, ".", Analyzer, "allocdep", "allocmain")
}
