// Package lp implements a dense bounded-variable simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A_i·x  {<=, =, >=}  b_i      for each row i
//	            lb_j <= x_j <= ub_j          (default [0, +Inf))
//
// The paper solves its test-generation models with a commercial ILP solver;
// this package (together with package ilp, which adds branch-and-bound) is
// the from-scratch, stdlib-only substitute. Instances produced by the
// flow-path and cut-set formulations are small — a few hundred rows and
// columns per 5x5 subblock — which a dense tableau handles comfortably.
//
// Variable bounds are handled natively by the simplex (nonbasic variables
// rest at either bound and can flip without a basis change), so 0-1 models
// need no explicit bound rows. A Solver owns reusable scratch state and
// accepts a warm-start Basis: it refactorizes the tableau for that basis
// under new bounds and repairs feasibility with a bounded dual simplex,
// which is how branch-and-bound children re-solve in a handful of pivots
// instead of a cold two-phase start.
//
// The primal pivot rule is Dantzig's (most negative reduced cost) with an
// automatic switch to Bland's rule after a stall threshold; the dual rule is
// max-violation row selection with a lowest-index tie break on the ratio
// test. All tie breaks are deterministic, so a solve is a pure function of
// (problem, bounds, warm basis).
package lp

import (
	"fmt"
	"math"
)

// Sense is the row comparison operator.
type Sense int8

const (
	// LE is A_i·x <= b_i.
	LE Sense = iota
	// GE is A_i·x >= b_i.
	GE
	// EQ is A_i·x = b_i.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Inf is the bound value meaning "unbounded in that direction".
var Inf = math.Inf(1)

// Problem is a linear program under construction. Create with NewProblem,
// then add rows; the problem may be solved repeatedly. Adding rows after a
// Solver has been constructed on the problem is not supported.
type Problem struct {
	n      int // structural variables
	c      []float64
	lb, ub []float64
	rows   [][]float64
	senses []Sense
	b      []float64
}

// NewProblem creates a problem with n structural variables (all in
// [0, +Inf)) and a zero objective.
func NewProblem(n int) *Problem {
	if n < 1 {
		panic(fmt.Sprintf("lp: variable count %d out of range", n))
	}
	p := &Problem{
		n:  n,
		c:  make([]float64, n),
		lb: make([]float64, n),
		ub: make([]float64, n),
	}
	for j := range p.ub {
		p.ub[j] = Inf
	}
	return p
}

// N returns the structural variable count.
func (p *Problem) N() int { return p.n }

// M returns the row count.
func (p *Problem) M() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j (minimization).
func (p *Problem) SetObj(j int, v float64) {
	p.c[j] = v
}

// SetBounds sets the bounds of variable j. Use -Inf / Inf for unbounded
// directions; lb == ub fixes the variable.
func (p *Problem) SetBounds(j int, lb, ub float64) {
	if lb > ub || math.IsInf(lb, 1) || math.IsInf(ub, -1) {
		panic(fmt.Sprintf("lp: var %d bounds [%v,%v] invalid", j, lb, ub))
	}
	p.lb[j], p.ub[j] = lb, ub
}

// Bounds returns the bounds of variable j.
func (p *Problem) Bounds(j int) (lb, ub float64) { return p.lb[j], p.ub[j] }

// AddRow appends a constraint given as a dense coefficient slice of length
// N(). The slice is copied.
func (p *Problem) AddRow(coef []float64, s Sense, rhs float64) int {
	if len(coef) != p.n {
		panic(fmt.Sprintf("lp: row width %d, want %d", len(coef), p.n))
	}
	p.rows = append(p.rows, append([]float64(nil), coef...))
	p.senses = append(p.senses, s)
	p.b = append(p.b, rhs)
	return len(p.rows) - 1
}

// AddSparseRow appends a constraint given as (index, coefficient) pairs.
func (p *Problem) AddSparseRow(idx []int, coef []float64, s Sense, rhs float64) int {
	if len(idx) != len(coef) {
		panic("lp: sparse row index/coef length mismatch")
	}
	row := make([]float64, p.n)
	for k, j := range idx {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: sparse row index %d out of range", j))
		}
		row[j] += coef[k]
	}
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, s)
	p.b = append(p.b, rhs)
	return len(p.rows) - 1
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	X      []float64 // length N(); valid when Status == Optimal
	Obj    float64
	Iters  int
	// R holds the structural reduced costs at the optimum (length N());
	// valid when Status == Optimal. Nonbasic-at-lower variables have R >= 0,
	// nonbasic-at-upper have R <= 0. Used for reduced-cost bound tightening.
	R []float64
	// Basis is a snapshot of the optimal basis, reusable as a warm start for
	// a re-solve of the same problem shape under different bounds or
	// objective; valid when Status == Optimal.
	Basis *Basis
}

const (
	eps     = 1e-9
	feasEps = 1e-7
)

// Solve runs the simplex cold (phase 1 feasibility repair, then the true
// objective). maxIters <= 0 selects an automatic budget proportional to the
// problem size.
func (p *Problem) Solve(maxIters int) Solution {
	return NewSolver(p).Solve(nil, nil, nil, maxIters)
}
