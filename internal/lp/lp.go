// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A_i·x  {<=, =, >=}  b_i      for each row i
//	            x >= 0
//
// The paper solves its test-generation models with a commercial ILP solver;
// this package (together with package ilp, which adds branch-and-bound and
// variable bounds) is the from-scratch, stdlib-only substitute. Instances
// produced by the flow-path and cut-set formulations are small — a few
// hundred rows and columns per 5x5 subblock — which a dense tableau handles
// comfortably.
//
// The pivot rule is Dantzig's (most negative reduced cost) with an automatic
// switch to Bland's rule after a stall threshold, guaranteeing termination
// on degenerate instances.
package lp

import (
	"fmt"
	"math"
)

// Sense is the row comparison operator.
type Sense int8

const (
	// LE is A_i·x <= b_i.
	LE Sense = iota
	// GE is A_i·x >= b_i.
	GE
	// EQ is A_i·x = b_i.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Problem is a linear program under construction. Create with NewProblem,
// then add rows; the problem may be solved repeatedly.
type Problem struct {
	n      int // structural variables
	c      []float64
	rows   [][]float64
	senses []Sense
	b      []float64
}

// NewProblem creates a problem with n structural variables (all >= 0) and a
// zero objective.
func NewProblem(n int) *Problem {
	if n < 1 {
		panic(fmt.Sprintf("lp: variable count %d out of range", n))
	}
	return &Problem{n: n, c: make([]float64, n)}
}

// N returns the structural variable count.
func (p *Problem) N() int { return p.n }

// M returns the row count.
func (p *Problem) M() int { return len(p.rows) }

// SetObj sets the objective coefficient of variable j (minimization).
func (p *Problem) SetObj(j int, v float64) {
	p.c[j] = v
}

// AddRow appends a constraint given as a dense coefficient slice of length
// N(). The slice is copied.
func (p *Problem) AddRow(coef []float64, s Sense, rhs float64) int {
	if len(coef) != p.n {
		panic(fmt.Sprintf("lp: row width %d, want %d", len(coef), p.n))
	}
	p.rows = append(p.rows, append([]float64(nil), coef...))
	p.senses = append(p.senses, s)
	p.b = append(p.b, rhs)
	return len(p.rows) - 1
}

// AddSparseRow appends a constraint given as (index, coefficient) pairs.
func (p *Problem) AddSparseRow(idx []int, coef []float64, s Sense, rhs float64) int {
	if len(idx) != len(coef) {
		panic("lp: sparse row index/coef length mismatch")
	}
	row := make([]float64, p.n)
	for k, j := range idx {
		if j < 0 || j >= p.n {
			panic(fmt.Sprintf("lp: sparse row index %d out of range", j))
		}
		row[j] += coef[k]
	}
	p.rows = append(p.rows, row)
	p.senses = append(p.senses, s)
	p.b = append(p.b, rhs)
	return len(p.rows) - 1
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	X      []float64 // length N(); valid when Status == Optimal
	Obj    float64
	Iters  int
}

const (
	eps     = 1e-9
	feasEps = 1e-7
)

// Solve runs the two-phase simplex. maxIters <= 0 selects an automatic
// budget proportional to the problem size.
func (p *Problem) Solve(maxIters int) Solution {
	m := len(p.rows)
	if maxIters <= 0 {
		maxIters = 200 * (m + p.n + 10)
	}
	// Column layout: structural | one slack or surplus per inequality row |
	// one artificial per GE/EQ row.
	nSlack := 0
	for _, s := range p.senses {
		if s != EQ {
			nSlack++
		}
	}
	nArt := 0
	for i, s := range p.senses {
		needArt := s == EQ || s == GE
		// Rows with negative rhs flip sense during normalization; decide
		// after normalization instead. Count pessimistically here.
		_ = i
		if needArt {
			nArt++
		} else {
			nArt++ // LE with negative rhs flips to GE; reserve space
		}
	}
	total := p.n + nSlack + nArt
	t := newTableau(m, total)

	slackAt := p.n
	artAt := p.n + nSlack
	artCols := make([]int, 0, nArt)
	for i := 0; i < m; i++ {
		row := t.a[i]
		sign := 1.0
		sense := p.senses[i]
		rhs := p.b[i]
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for j := 0; j < p.n; j++ {
			row[j] = sign * p.rows[i][j]
		}
		t.b[i] = rhs
		switch sense {
		case LE:
			row[slackAt] = 1
			t.basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			// An EQ row on a problem built with an inequality consumed no
			// slack; keep layout consistent by skipping.
			row[artAt] = 1
			t.basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}
	t.cols = artAt // trim unused reserved artificial space
	banned := make([]bool, total)

	iters := 0
	// Phase 1: minimize the sum of artificials.
	if len(artCols) > 0 {
		cost := make([]float64, total)
		for _, j := range artCols {
			cost[j] = 1
		}
		t.setObjective(cost)
		st, used := t.iterate(maxIters, banned)
		iters += used
		if st == IterLimit {
			return Solution{Status: IterLimit, Iters: iters}
		}
		if t.objVal() > feasEps {
			return Solution{Status: Infeasible, Iters: iters}
		}
		// Drive remaining artificials out of the basis where possible and
		// ban them from re-entering.
		isArt := make([]bool, total)
		for _, j := range artCols {
			isArt[j] = true
			banned[j] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < t.cols && !pivoted; j++ {
				if !isArt[j] && math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
				}
			}
			// If no pivot exists the row is redundant; the artificial stays
			// basic at value zero, which is harmless since it is banned.
		}
	}

	// Phase 2: true objective.
	cost := make([]float64, total)
	copy(cost, p.c)
	t.setObjective(cost)
	st, used := t.iterate(maxIters-iters, banned)
	iters += used
	if st != Optimal {
		return Solution{Status: st, Iters: iters}
	}
	x := make([]float64, p.n)
	for i := 0; i < m; i++ {
		if t.basis[i] < p.n {
			x[t.basis[i]] = t.b[i]
		}
	}
	return Solution{Status: Optimal, X: x, Obj: t.objVal(), Iters: iters}
}

// tableau is the dense simplex working state.
type tableau struct {
	m, cols int
	a       [][]float64 // m x cols
	b       []float64   // m
	basis   []int       // m, column basic in each row
	r       []float64   // cols, reduced costs
	z       float64     // negative objective value accumulator
	cost    []float64
}

func newTableau(m, cols int) *tableau {
	t := &tableau{m: m, cols: cols, b: make([]float64, m), basis: make([]int, m)}
	t.a = make([][]float64, m)
	buf := make([]float64, m*cols)
	for i := range t.a {
		t.a[i], buf = buf[:cols:cols], buf[cols:]
	}
	return t
}

func (t *tableau) objVal() float64 { return -t.z }

// setObjective installs cost and prices out the current basis so that the
// reduced-cost row is consistent.
func (t *tableau) setObjective(cost []float64) {
	t.cost = cost
	t.r = make([]float64, t.cols)
	copy(t.r, cost[:t.cols])
	t.z = 0
	for i := 0; i < t.m; i++ {
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			t.r[j] -= cb * row[j]
		}
		t.z -= cb * t.b[i]
	}
}

// iterate runs simplex pivots until optimality, unboundedness, or the
// budget runs out. Banned columns never enter the basis.
func (t *tableau) iterate(budget int, banned []bool) (Status, int) {
	if budget < 0 {
		budget = 0
	}
	stall := 0
	bland := false
	for it := 0; ; it++ {
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < t.cols; j++ {
				if !banned[j] && t.r[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < t.cols; j++ {
				if !banned[j] && t.r[j] < best {
					best = t.r[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return Optimal, it
		}
		if it >= budget {
			return IterLimit, it
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.b[i] / aij
			if leave == -1 || ratio < bestRatio-eps ||
				(math.Abs(ratio-bestRatio) <= eps && bland && t.basis[i] < t.basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave == -1 {
			return Unbounded, it
		}
		if bestRatio <= eps {
			stall++
			if stall > 2*(t.m+t.cols) {
				bland = true
			}
		} else {
			stall = 0
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.a[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		prow[j] *= inv
	}
	t.b[leave] *= inv
	prow[enter] = 1 // fight rounding
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -eps {
			t.b[i] = 0
		}
	}
	f := t.r[enter]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.r[j] -= f * prow[j]
		}
		t.r[enter] = 0
		t.z -= f * t.b[leave]
	}
	t.basis[leave] = enter
}
