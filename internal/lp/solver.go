package lp

import "math"

// Nonbasic/basic column states. A fixed variable (lb == ub) is held
// nonbasic at its lower bound and never enters the basis.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	nbFree              // nonbasic free variable, resting at 0
	inBasis
)

// Basis is a compact snapshot of a simplex basis: one state per column
// (structural variables first, then one slack per row). It is the
// warm-start handle: a Solver can refactorize the tableau for this basis
// under new bounds and repair feasibility with the dual simplex.
type Basis struct {
	status []int8
}

// Clone returns an independent copy.
func (bs *Basis) Clone() *Basis {
	if bs == nil {
		return nil
	}
	return &Basis{status: append([]int8(nil), bs.status...)}
}

// Solver owns the dense simplex scratch state for one Problem shape. It is
// reusable across solves (bounds and objective may differ per call) and is
// not safe for concurrent use; give each worker its own Solver.
type Solver struct {
	p    *Problem
	m    int // rows
	n    int // structural columns
	cols int // n + m (slacks)

	a      [][]float64 // m x cols working tableau, B^-1 [A I]
	abuf   []float64
	xB     []float64 // value of the basic variable of each row
	basis  []int     // column basic in each row
	status []int8    // per-column state
	lb, ub []float64 // per-column bounds for the current solve
	cost   []float64 // per-column objective for the current phase
	r      []float64 // reduced costs
	z      float64   // current objective value
}

// NewSolver creates a solver for the problem's current shape. Rows must not
// be added to the problem afterwards.
func NewSolver(p *Problem) *Solver {
	m := len(p.rows)
	cols := p.n + m
	s := &Solver{
		p: p, m: m, n: p.n, cols: cols,
		abuf:   make([]float64, m*cols),
		xB:     make([]float64, m),
		basis:  make([]int, m),
		status: make([]int8, cols),
		lb:     make([]float64, cols),
		ub:     make([]float64, cols),
		cost:   make([]float64, cols),
		r:      make([]float64, cols),
	}
	s.a = make([][]float64, m)
	buf := s.abuf
	for i := range s.a {
		s.a[i], buf = buf[:cols:cols], buf[cols:]
	}
	return s
}

// val returns the current value of nonbasic column j.
func (s *Solver) val(j int) float64 {
	switch s.status[j] {
	case nbLower:
		return s.lb[j]
	case nbUpper:
		return s.ub[j]
	default:
		return 0
	}
}

func (s *Solver) fixed(j int) bool { return s.lb[j] == s.ub[j] }

// Solve runs the simplex. lb/ub override the problem's structural bounds
// when non-nil (length N()); warm, when non-nil, is refactorized as the
// starting basis. maxIters <= 0 selects an automatic budget. The solve is
// deterministic: a pure function of (problem, bounds, warm, maxIters).
func (s *Solver) Solve(lb, ub []float64, warm *Basis, maxIters int) Solution {
	if maxIters <= 0 {
		maxIters = 200 * (s.m + s.n + 10)
	}
	if s.m != len(s.p.rows) {
		panic("lp: rows added to problem after NewSolver")
	}
	// Install column bounds: structural from the override (or problem), one
	// slack per row from its sense.
	for j := 0; j < s.n; j++ {
		l, u := s.p.lb[j], s.p.ub[j]
		if lb != nil {
			l = lb[j]
		}
		if ub != nil {
			u = ub[j]
		}
		if l > u {
			return Solution{Status: Infeasible}
		}
		s.lb[j], s.ub[j] = l, u
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		switch s.p.senses[i] {
		case LE:
			s.lb[j], s.ub[j] = 0, math.Inf(1)
		case GE:
			s.lb[j], s.ub[j] = math.Inf(-1), 0
		case EQ:
			s.lb[j], s.ub[j] = 0, 0
		}
	}

	iters := 0
	if warm == nil || !s.refactorize(warm) {
		s.coldBasis()
	}

	if !s.primalFeasible() {
		// Repair primal feasibility with the bounded dual simplex. With the
		// true objective this is the warm-start fast path (bound changes
		// preserve dual feasibility); otherwise fall back to a zero
		// objective, which is trivially dual feasible — the bounded
		// equivalent of a phase-1.
		s.setCost(true)
		if !s.dualFeasible() {
			s.setCost(false)
		}
		st, used := s.dualIterate(maxIters - iters)
		iters += used
		if st != Optimal {
			return Solution{Status: st, Iters: iters}
		}
	}

	// Phase 2: the true objective, primal simplex.
	s.setCost(true)
	st, used := s.primalIterate(maxIters - iters)
	iters += used
	if st != Optimal {
		return Solution{Status: st, Iters: iters}
	}
	return s.extract(iters)
}

// coldBasis installs the all-slack basis with nonbasic structural columns
// at their bound nearest a finite value.
func (s *Solver) coldBasis() {
	for i := 0; i < s.m; i++ {
		row := s.a[i]
		clear(row)
		copy(row, s.p.rows[i])
		row[s.n+i] = 1
		s.basis[i] = s.n + i
		s.status[s.n+i] = inBasis
	}
	for j := 0; j < s.n; j++ {
		s.status[j] = s.defaultStatus(j)
	}
	for i := 0; i < s.m; i++ {
		v := s.p.b[i]
		row := s.p.rows[i]
		for j := 0; j < s.n; j++ {
			if row[j] != 0 {
				v -= row[j] * s.val(j)
			}
		}
		s.xB[i] = v
	}
}

func (s *Solver) defaultStatus(j int) int8 {
	switch {
	case !math.IsInf(s.lb[j], -1):
		return nbLower
	case !math.IsInf(s.ub[j], 1):
		return nbUpper
	default:
		return nbFree
	}
}

// refactorize rebuilds the tableau for the warm basis under the current
// bounds via Gauss-Jordan elimination with partial pivoting. Returns false
// (leaving the solver in need of coldBasis) when the snapshot does not
// match the problem shape or the basis matrix is numerically singular.
func (s *Solver) refactorize(warm *Basis) bool {
	if len(warm.status) != s.cols {
		return false
	}
	nb := 0
	for _, st := range warm.status {
		if st == inBasis {
			nb++
		}
	}
	if nb != s.m {
		return false
	}
	copy(s.status, warm.status)
	// Sanitize nonbasic states against the current bounds.
	for j := 0; j < s.cols; j++ {
		switch s.status[j] {
		case nbLower:
			if math.IsInf(s.lb[j], -1) {
				s.status[j] = s.defaultStatus(j)
			}
		case nbUpper:
			if math.IsInf(s.ub[j], 1) {
				s.status[j] = s.defaultStatus(j)
			}
		case nbFree:
			if !math.IsInf(s.lb[j], -1) || !math.IsInf(s.ub[j], 1) {
				s.status[j] = s.defaultStatus(j)
			}
		}
	}
	for i := 0; i < s.m; i++ {
		row := s.a[i]
		clear(row)
		copy(row, s.p.rows[i])
		row[s.n+i] = 1
		v := s.p.b[i]
		for j := 0; j < s.cols; j++ {
			if s.status[j] != inBasis && row[j] != 0 {
				v -= row[j] * s.val(j)
			}
		}
		s.xB[i] = v
	}
	// Pivot each basic column into its own row, ascending column order with
	// max-|pivot| row selection — deterministic.
	done := 0
	for j := 0; j < s.cols; j++ {
		if s.status[j] != inBasis {
			continue
		}
		piv, pv := -1, 1e-9
		for i := done; i < s.m; i++ {
			if av := math.Abs(s.a[i][j]); av > pv {
				piv, pv = i, av
			}
		}
		if piv == -1 {
			return false // singular under this bound set
		}
		s.a[piv], s.a[done] = s.a[done], s.a[piv]
		s.xB[piv], s.xB[done] = s.xB[done], s.xB[piv]
		prow := s.a[done]
		inv := 1 / prow[j]
		for k := 0; k < s.cols; k++ {
			prow[k] *= inv
		}
		prow[j] = 1
		s.xB[done] *= inv
		for i := 0; i < s.m; i++ {
			if i == done {
				continue
			}
			f := s.a[i][j]
			if f == 0 {
				continue
			}
			row := s.a[i]
			for k := 0; k < s.cols; k++ {
				row[k] -= f * prow[k]
			}
			row[j] = 0
			s.xB[i] -= f * s.xB[done]
		}
		s.basis[done] = j
		done++
	}
	return true
}

// setCost installs the phase objective (true problem cost or all-zero) and
// prices out the current basis.
func (s *Solver) setCost(true_ bool) {
	clear(s.cost)
	if true_ {
		copy(s.cost, s.p.c)
	}
	copy(s.r, s.cost)
	s.z = 0
	for i := 0; i < s.m; i++ {
		cb := s.cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.a[i]
		for j := 0; j < s.cols; j++ {
			s.r[j] -= cb * row[j]
		}
	}
	for i := 0; i < s.m; i++ {
		s.r[s.basis[i]] = 0
		s.z += s.cost[s.basis[i]] * s.xB[i]
	}
	for j := 0; j < s.cols; j++ {
		if s.status[j] != inBasis && s.cost[j] != 0 {
			s.z += s.cost[j] * s.val(j)
		}
	}
}

func (s *Solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		k := s.basis[i]
		if s.xB[i] < s.lb[k]-feasEps || s.xB[i] > s.ub[k]+feasEps {
			return false
		}
	}
	return true
}

func (s *Solver) dualFeasible() bool {
	for j := 0; j < s.cols; j++ {
		if s.status[j] == inBasis || s.fixed(j) {
			continue
		}
		switch s.status[j] {
		case nbLower:
			if s.r[j] < -eps {
				return false
			}
		case nbUpper:
			if s.r[j] > eps {
				return false
			}
		default:
			if math.Abs(s.r[j]) > eps {
				return false
			}
		}
	}
	return true
}

// pivot makes column enter basic in row leave, updating the tableau and the
// reduced-cost row (value bookkeeping is done by the callers).
func (s *Solver) pivot(leave, enter int) {
	prow := s.a[leave]
	inv := 1 / prow[enter]
	for j := 0; j < s.cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // fight rounding
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.a[i][enter]
		if f == 0 {
			continue
		}
		row := s.a[i]
		for j := 0; j < s.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
	}
	if f := s.r[enter]; f != 0 {
		for j := 0; j < s.cols; j++ {
			s.r[j] -= f * prow[j]
		}
		s.r[enter] = 0
	}
}

// primalIterate runs the bounded primal simplex until optimality,
// unboundedness, or the budget runs out.
func (s *Solver) primalIterate(budget int) (Status, int) {
	if budget < 0 {
		budget = 0
	}
	stall := 0
	bland := false
	for it := 0; ; it++ {
		// Entering column and movement direction.
		enter, dir := -1, 1.0
		if bland {
			for j := 0; j < s.cols && enter == -1; j++ {
				if s.status[j] == inBasis || s.fixed(j) {
					continue
				}
				switch s.status[j] {
				case nbLower:
					if s.r[j] < -eps {
						enter, dir = j, 1
					}
				case nbUpper:
					if s.r[j] > eps {
						enter, dir = j, -1
					}
				default:
					if s.r[j] < -eps {
						enter, dir = j, 1
					} else if s.r[j] > eps {
						enter, dir = j, -1
					}
				}
			}
		} else {
			best := eps
			for j := 0; j < s.cols; j++ {
				if s.status[j] == inBasis || s.fixed(j) {
					continue
				}
				var viol, d float64
				switch s.status[j] {
				case nbLower:
					viol, d = -s.r[j], 1
				case nbUpper:
					viol, d = s.r[j], -1
				default:
					if s.r[j] < 0 {
						viol, d = -s.r[j], 1
					} else {
						viol, d = s.r[j], -1
					}
				}
				if viol > best {
					best, enter, dir = viol, j, d
				}
			}
		}
		if enter == -1 {
			return Optimal, it
		}
		if it >= budget {
			return IterLimit, it
		}
		// Ratio test: entering moves by dir*t; basic i changes by
		// -dir*t*a[i][enter]; the entering column itself flips at its range.
		tmax := math.Inf(1)
		if !math.IsInf(s.lb[enter], -1) && !math.IsInf(s.ub[enter], 1) {
			tmax = s.ub[enter] - s.lb[enter]
		}
		leave, tmin := -1, tmax
		for i := 0; i < s.m; i++ {
			step := dir * s.a[i][enter]
			k := s.basis[i]
			var t float64
			switch {
			case step > eps: // basic value decreases
				if math.IsInf(s.lb[k], -1) {
					continue
				}
				t = (s.xB[i] - s.lb[k]) / step
			case step < -eps: // basic value increases
				if math.IsInf(s.ub[k], 1) {
					continue
				}
				t = (s.ub[k] - s.xB[i]) / (-step)
			default:
				continue
			}
			if t < 0 {
				t = 0
			}
			if leave == -1 && t < tmin-eps {
				leave, tmin = i, t
			} else if leave != -1 && (t < tmin-eps ||
				(t <= tmin+eps && bland && s.basis[i] < s.basis[leave])) {
				leave, tmin = i, math.Min(t, tmin)
			}
		}
		if math.IsInf(tmin, 1) {
			return Unbounded, it
		}
		if tmin <= eps {
			stall++
			if stall > 2*(s.m+s.cols) {
				bland = true
			}
		} else {
			stall = 0
		}
		s.z += s.r[enter] * dir * tmin
		if leave == -1 {
			// Bound flip: no basis change.
			for i := 0; i < s.m; i++ {
				if a := s.a[i][enter]; a != 0 {
					s.xB[i] -= dir * tmin * a
				}
			}
			if s.status[enter] == nbLower {
				s.status[enter] = nbUpper
			} else {
				s.status[enter] = nbLower
			}
			continue
		}
		newVal := s.val(enter) + dir*tmin
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			if a := s.a[i][enter]; a != 0 {
				s.xB[i] -= dir * tmin * a
			}
		}
		k := s.basis[leave]
		leaveStatus := nbUpper
		if dir*s.a[leave][enter] > 0 { // basic value decreased to its lower bound
			leaveStatus = nbLower
		}
		s.pivot(leave, enter)
		s.xB[leave] = newVal
		s.basis[leave] = enter
		s.status[enter] = inBasis
		s.status[k] = leaveStatus
	}
}

// dualIterate runs the bounded dual simplex until primal feasibility
// ("Optimal" here means feasible for the current cost, which the caller
// re-prices), infeasibility, or the budget runs out. Requires dual
// feasibility on entry, which bound changes preserve.
func (s *Solver) dualIterate(budget int) (Status, int) {
	if budget < 0 {
		budget = 0
	}
	stall := 0
	bland := false
	for it := 0; ; it++ {
		// Leaving row: the worst bound violation (Bland mode: the first).
		leave, below := -1, false
		worst := feasEps
		for i := 0; i < s.m; i++ {
			k := s.basis[i]
			if v := s.lb[k] - s.xB[i]; v > worst {
				leave, below, worst = i, true, v
			} else if v := s.xB[i] - s.ub[k]; v > worst {
				leave, below, worst = i, false, v
			}
			if bland && leave != -1 {
				break
			}
		}
		if leave == -1 {
			return Optimal, it
		}
		if it >= budget {
			return IterLimit, it
		}
		row := s.a[leave]
		// Entering column: among columns whose movement raises (below) or
		// lowers (above) the leaving value, the minimal dual ratio
		// |r_j|/|a_j| preserves dual feasibility; ties break to the lowest
		// index.
		enter := -1
		var bestRatio float64
		for j := 0; j < s.cols; j++ {
			if s.status[j] == inBasis || s.fixed(j) {
				continue
			}
			aj := row[j]
			var ok bool
			switch s.status[j] {
			case nbLower: // can only increase
				ok = (below && aj < -eps) || (!below && aj > eps)
			case nbUpper: // can only decrease
				ok = (below && aj > eps) || (!below && aj < -eps)
			default: // free: either direction
				ok = aj > eps || aj < -eps
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.r[j]) / math.Abs(aj)
			if enter == -1 || ratio < bestRatio-eps {
				enter, bestRatio = j, ratio
			}
		}
		if enter == -1 {
			return Infeasible, it
		}
		k := s.basis[leave]
		target := s.ub[k]
		leaveStatus := nbUpper
		if below {
			target = s.lb[k]
			leaveStatus = nbLower
		}
		// Note: the step is not capped at the entering column's own opposite
		// bound. The entering variable may become basic outside its range,
		// which the next iterations repair — deliberately so: in-place bound
		// flips with degenerate reduced costs can cycle across rows without
		// touching the stall/Bland safeguards (observed under fuzzing), while
		// the uncapped pivot is the plain terminating dual method.
		delta := (s.xB[leave] - target) / row[enter]
		if math.Abs(delta) <= eps {
			stall++
			if stall > 2*(s.m+s.cols) {
				bland = true
			}
		} else {
			stall = 0
		}
		newVal := s.val(enter) + delta
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			if a := s.a[i][enter]; a != 0 {
				s.xB[i] -= a * delta
			}
		}
		s.z += s.r[enter] * delta
		s.pivot(leave, enter)
		s.xB[leave] = newVal
		s.basis[leave] = enter
		s.status[enter] = inBasis
		s.status[k] = leaveStatus
	}
}

// extract assembles the Optimal solution.
func (s *Solver) extract(iters int) Solution {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] != inBasis {
			x[j] = s.val(j)
		}
	}
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.n {
			x[s.basis[i]] = s.xB[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.p.c[j] * x[j]
	}
	return Solution{
		Status: Optimal,
		X:      x,
		Obj:    obj,
		Iters:  iters,
		R:      append([]float64(nil), s.r[:s.n]...),
		Basis:  &Basis{status: append([]int8(nil), s.status...)},
	}
}
