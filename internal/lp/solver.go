package lp

import "math"

// Nonbasic/basic column states. A fixed variable (lb == ub) is held
// nonbasic at its lower bound and never enters the basis.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	nbFree              // nonbasic free variable, resting at 0
	inBasis
)

// Basis is a compact snapshot of a simplex basis: one state per column
// (structural variables first, then one slack per row). It is the
// warm-start handle: a Solver can refactorize for this basis under new
// bounds and repair feasibility with the dual simplex.
type Basis struct {
	status []int8
}

// Clone returns an independent copy.
func (bs *Basis) Clone() *Basis {
	if bs == nil {
		return nil
	}
	return &Basis{status: append([]int8(nil), bs.status...)}
}

// Status exposes the per-column basis states (structural columns first,
// then one slack per row). The slice must not be modified; it is the raw
// form consumed by Solver.SolveView warm starts.
func (bs *Basis) Status() []int8 {
	if bs == nil {
		return nil
	}
	return bs.status
}

// BasisFromStatus wraps a copied status snapshot (as produced by
// View.Basis or Basis.Status) back into a Basis handle.
func BasisFromStatus(status []int8) *Basis {
	if status == nil {
		return nil
	}
	return &Basis{status: append([]int8(nil), status...)}
}

// View is the allocation-free result of Solver.SolveView. Every slice
// aliases solver-owned scratch: the contents are valid only until the next
// call on the same Solver, and must be copied to outlive it. X, R and
// Basis are populated only when Status == Optimal.
type View struct {
	Status Status
	Obj    float64
	Iters  int
	X      []float64 // structural solution (solver-owned)
	R      []float64 // structural reduced costs (solver-owned)
	Basis  []int8    // basis snapshot, warm-start input (solver-owned)
}

// Solver owns the revised-simplex state for one Problem shape: a sparse
// column copy of the constraint matrix, a product-form basis factorization
// (eta file) that is updated per pivot and rebuilt only on drift, and all
// iteration work buffers. After the first few solves of a shape every
// buffer has reached steady size, so repeated SolveView calls perform no
// allocation. A Solver is reusable across solves (bounds and objective may
// differ per call) and is not safe for concurrent use; give each worker
// its own Solver.
type Solver struct {
	p    *Problem
	m    int // rows
	n    int // structural columns
	cols int // n + m (slacks)

	// Sparse column-major copy of A (structural columns; slack column n+i
	// is implicitly the unit vector e_i).
	colPtr []int32
	colIdx []int32
	colVal []float64

	// Current solve state.
	status []int8
	lb, ub []float64 // per-column bounds for the current solve
	cost   []float64 // per-column objective for the current phase
	r      []float64 // reduced costs, maintained across pivots
	basis  []int32   // column basic in each row
	xB     []float64 // value of the basic variable of each row
	z      float64   // current objective value

	// Product-form factorization B^-1 = E_k ∘ ... ∘ E_1 (applied in order
	// by ftran, in reverse by btran). The first facEtas entries come from
	// factorize; the rest are simplex pivot updates.
	etaPivRow []int32
	etaPivVal []float64
	etaPtr    []int32 // len = len(etaPivRow)+1
	etaIdx    []int32
	etaVal    []float64
	facEtas   int
	facNnz    int

	// Snapshot of the latest canonical factorization, keyed by its basic
	// set. factorize is a pure function of the basic set (the matrix is
	// fixed per Solver), so when a warm start requests a set that was just
	// factorized — the sibling of a branch-and-bound node always does —
	// restoring the snapshot is byte-identical to refactorizing and costs a
	// few copies instead of the numeric pass. Bounds and objective do not
	// enter the factorization, so the snapshot never needs invalidation.
	facValid   bool
	facBcols   []int32
	snapPivRow []int32
	snapPivVal []float64
	snapPtr    []int32
	snapIdx    []int32
	snapVal    []float64
	snapBasis  []int32

	// Scratch.
	colBuf  []float64 // m; dense FTRAN result (zeroed outside use)
	colMark []bool    // m; nonzero tracking for colBuf
	colList []int32   // rows touched in colBuf
	rhoBuf  []float64 // m; dense BTRAN result
	alpha   []float64 // cols; pivot row of B^-1 [A I]
	rhsBuf  []float64 // m
	xbuf    []float64 // n; solution view
	rbuf    []float64 // n; reduced-cost view
	// Factorization scratch (triangularity peeling).
	bcols    []int32 // m; basic columns, ascending
	rowCnt   []int32 // m; unassigned-column count per free row
	colLeft  []int32 // m; free-row count per unassigned column
	rowTaken []bool  // m
	colRow   []int32 // m; assigned pivot row per basic column (-1 = open)
	rowPtr   []int32 // m+1; row -> incident basic columns
	rowLst   []int32
	pivK     []int32 // pivot order: indices into bcols
	pivRow   []int32 // matching pivot rows (-1 = numeric choice)
	workQ    []int32
}

// NewSolver creates a solver for the problem's current shape. Rows must not
// be added to the problem afterwards.
func NewSolver(p *Problem) *Solver {
	m := len(p.rows)
	cols := p.n + m
	s := &Solver{
		p: p, m: m, n: p.n, cols: cols,
		status:   make([]int8, cols),
		lb:       make([]float64, cols),
		ub:       make([]float64, cols),
		cost:     make([]float64, cols),
		r:        make([]float64, cols),
		basis:    make([]int32, m),
		xB:       make([]float64, m),
		colBuf:   make([]float64, m),
		colMark:  make([]bool, m),
		colList:  make([]int32, 0, m),
		rhoBuf:   make([]float64, m),
		alpha:    make([]float64, cols),
		rhsBuf:   make([]float64, m),
		xbuf:     make([]float64, p.n),
		rbuf:     make([]float64, p.n),
		bcols:    make([]int32, 0, m),
		rowCnt:   make([]int32, m),
		colLeft:  make([]int32, m),
		rowTaken: make([]bool, m),
		colRow:   make([]int32, m),
		rowPtr:   make([]int32, m+1),
		pivK:     make([]int32, 0, m),
		pivRow:   make([]int32, 0, m),
		etaPtr:   []int32{0},
	}
	// Build the sparse column copy of A from the dense rows.
	nnz := 0
	for i := 0; i < m; i++ {
		for _, v := range p.rows[i] {
			if v != 0 {
				nnz++
			}
		}
	}
	s.colPtr = make([]int32, p.n+1)
	s.colIdx = make([]int32, 0, nnz)
	s.colVal = make([]float64, 0, nnz)
	for j := 0; j < p.n; j++ {
		for i := 0; i < m; i++ {
			if v := p.rows[i][j]; v != 0 {
				s.colIdx = append(s.colIdx, int32(i))
				s.colVal = append(s.colVal, v)
			}
		}
		s.colPtr[j+1] = int32(len(s.colIdx))
	}
	return s
}

// val returns the current value of nonbasic column j.
func (s *Solver) val(j int) float64 {
	switch s.status[j] {
	case nbLower:
		return s.lb[j]
	case nbUpper:
		return s.ub[j]
	default:
		return 0
	}
}

func (s *Solver) fixed(j int) bool { return s.lb[j] == s.ub[j] }

// Solve runs the simplex and returns an independently allocated Solution.
// lb/ub override the problem's structural bounds when non-nil (length N());
// warm, when non-nil, is refactorized as the starting basis. maxIters <= 0
// selects an automatic budget. The solve is deterministic: a pure function
// of (problem, bounds, warm, maxIters).
func (s *Solver) Solve(lb, ub []float64, warm *Basis, maxIters int) Solution {
	v := s.SolveView(lb, ub, warm.Status(), maxIters)
	sol := Solution{Status: v.Status, Obj: v.Obj, Iters: v.Iters}
	if v.Status == Optimal {
		sol.X = append([]float64(nil), v.X...)
		sol.R = append([]float64(nil), v.R...)
		sol.Basis = &Basis{status: append([]int8(nil), v.Basis...)}
	}
	return sol
}

// SolveView is the allocation-free core of Solve: the returned slices alias
// solver scratch and are valid only until the next call. warm, when
// non-nil, is a per-column status snapshot (View.Basis / Basis.Status) of a
// previous same-shape solve.
//
//fpva:allocfree
func (s *Solver) SolveView(lb, ub []float64, warm []int8, maxIters int) View {
	if maxIters <= 0 {
		maxIters = 200 * (s.m + s.n + 10)
	}
	if s.m != len(s.p.rows) {
		panic("lp: rows added to problem after NewSolver")
	}
	// Install column bounds: structural from the override (or problem), one
	// slack per row from its sense.
	for j := 0; j < s.n; j++ {
		l, u := s.p.lb[j], s.p.ub[j]
		if lb != nil {
			l = lb[j]
		}
		if ub != nil {
			u = ub[j]
		}
		if l > u {
			return View{Status: Infeasible}
		}
		s.lb[j], s.ub[j] = l, u
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		switch s.p.senses[i] {
		case LE:
			s.lb[j], s.ub[j] = 0, math.Inf(1)
		case GE:
			s.lb[j], s.ub[j] = math.Inf(-1), 0
		case EQ:
			s.lb[j], s.ub[j] = 0, 0
		}
	}

	iters := 0
	if warm == nil || !s.installWarm(warm) {
		s.coldBasis()
	}

	if !s.primalFeasible() {
		// Repair primal feasibility with the bounded dual simplex. With the
		// true objective this is the warm-start fast path (bound changes
		// preserve dual feasibility); otherwise fall back to a zero
		// objective, which is trivially dual feasible — the bounded
		// equivalent of a phase-1.
		s.setCost(true)
		if !s.dualFeasible() {
			s.setCost(false)
		}
		st, used := s.dualIterate(maxIters - iters)
		iters += used
		if st != Optimal {
			return View{Status: st, Iters: iters}
		}
	}

	// Phase 2: the true objective, primal simplex.
	s.setCost(true)
	st, used := s.primalIterate(maxIters - iters)
	iters += used
	if st != Optimal {
		return View{Status: st, Iters: iters}
	}
	return s.extractView(iters)
}

// resetEtas clears the eta file.
func (s *Solver) resetEtas() {
	s.etaPivRow = s.etaPivRow[:0]
	s.etaPivVal = s.etaPivVal[:0]
	s.etaPtr = s.etaPtr[:1]
	s.etaIdx = s.etaIdx[:0]
	s.etaVal = s.etaVal[:0]
	s.facEtas = 0
	s.facNnz = 0
}

// ftranDense applies B^-1 to the dense vector x in place.
func (s *Solver) ftranDense(x []float64) {
	for k := 0; k < len(s.etaPivRow); k++ {
		r := s.etaPivRow[k]
		xr := x[r]
		if xr == 0 {
			continue
		}
		t := xr / s.etaPivVal[k]
		x[r] = t
		for q := s.etaPtr[k]; q < s.etaPtr[k+1]; q++ {
			x[s.etaIdx[q]] -= s.etaVal[q] * t
		}
	}
}

// btran applies B^-T to the dense vector y in place (equivalently computes
// the row vector y·B^-1).
func (s *Solver) btran(y []float64) {
	for k := len(s.etaPivRow) - 1; k >= 0; k-- {
		r := s.etaPivRow[k]
		t := y[r]
		for q := s.etaPtr[k]; q < s.etaPtr[k+1]; q++ {
			t -= s.etaVal[q] * y[s.etaIdx[q]]
		}
		y[r] = t / s.etaPivVal[k]
	}
}

// scatterColumn writes column j of [A I] into colBuf, tracking nonzeros.
func (s *Solver) scatterColumn(j int) {
	if j >= s.n {
		i := int32(j - s.n)
		if !s.colMark[i] {
			s.colMark[i] = true
			s.colList = append(s.colList, i)
		}
		s.colBuf[i] = 1
		return
	}
	for q := s.colPtr[j]; q < s.colPtr[j+1]; q++ {
		i := s.colIdx[q]
		if !s.colMark[i] {
			s.colMark[i] = true
			s.colList = append(s.colList, i)
		}
		s.colBuf[i] = s.colVal[q]
	}
}

// ftranCol computes colBuf = B^-1 [A I]_j with nonzero tracking in
// colList/colMark. The caller must clearCol when done.
func (s *Solver) ftranCol(j int) {
	s.scatterColumn(j)
	for k := 0; k < len(s.etaPivRow); k++ {
		r := s.etaPivRow[k]
		xr := s.colBuf[r]
		if xr == 0 {
			continue
		}
		t := xr / s.etaPivVal[k]
		s.colBuf[r] = t
		for q := s.etaPtr[k]; q < s.etaPtr[k+1]; q++ {
			i := s.etaIdx[q]
			if !s.colMark[i] {
				s.colMark[i] = true
				s.colList = append(s.colList, i)
			}
			s.colBuf[i] -= s.etaVal[q] * t
		}
	}
}

// clearCol zeroes colBuf via the touched list.
func (s *Solver) clearCol() {
	for _, i := range s.colList {
		s.colBuf[i] = 0
		s.colMark[i] = false
	}
	s.colList = s.colList[:0]
}

// appendEta records the current colBuf (a transformed pivot column) as an
// eta with the given pivot row. Returns false when the pivot element is
// numerically unusable.
func (s *Solver) appendEta(pivRow int32) bool {
	pv := s.colBuf[pivRow]
	if math.Abs(pv) < 1e-11 {
		return false
	}
	s.etaPivRow = append(s.etaPivRow, pivRow)
	s.etaPivVal = append(s.etaPivVal, pv)
	for _, i := range s.colList {
		if i == pivRow {
			continue
		}
		if v := s.colBuf[i]; v != 0 {
			s.etaIdx = append(s.etaIdx, i)
			s.etaVal = append(s.etaVal, v)
		}
	}
	s.etaPtr = append(s.etaPtr, int32(len(s.etaIdx)))
	return true
}

// pattern visits the row indices of basic column k (an index into bcols).
func (s *Solver) pattern(k int32, visit func(i int32)) {
	j := s.bcols[k]
	if int(j) >= s.n {
		visit(j - int32(s.n))
		return
	}
	for q := s.colPtr[j]; q < s.colPtr[j+1]; q++ {
		visit(s.colIdx[q])
	}
}

// factorize rebuilds the eta file for the basic columns recorded in
// s.status. The pivot order comes from triangularity peeling — column and
// row singletons first (initial scan ascending, then discovery order) — so
// the eta file stays near the matrix's own sparsity on the almost-
// triangular bases the flow models produce; whatever remains (the "bump")
// pivots by max magnitude with a lowest-row tie break. It fills s.basis and
// returns false when the basis matrix is numerically singular.
// Deterministic: a pure function of the basic set and the matrix.
func (s *Solver) factorize() bool {
	s.resetEtas()
	m := s.m
	if m == 0 {
		return true
	}
	// Gather basic columns ascending.
	s.bcols = s.bcols[:0]
	for j := 0; j < s.cols; j++ {
		if s.status[j] == inBasis {
			s.bcols = append(s.bcols, int32(j))
		}
	}
	if len(s.bcols) != m {
		return false
	}
	// Row -> incident basic columns (counting sort over the patterns).
	for i := 0; i <= m; i++ {
		s.rowPtr[i] = 0
	}
	for k := int32(0); int(k) < m; k++ {
		s.pattern(k, func(i int32) { s.rowPtr[i+1]++ })
	}
	for i := 0; i < m; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	need := int(s.rowPtr[m])
	if cap(s.rowLst) < need {
		//lint:ignore fpva/allocfree grows once to the basis pattern size, then reused; warm solves are pinned by alloc_test
		s.rowLst = make([]int32, need)
	}
	s.rowLst = s.rowLst[:need]
	fill := s.rowCnt // temporarily reuse as the fill cursor
	for i := 0; i < m; i++ {
		fill[i] = s.rowPtr[i]
	}
	for k := int32(0); int(k) < m; k++ {
		s.pattern(k, func(i int32) {
			s.rowLst[fill[i]] = k
			fill[i]++
		})
	}
	// Peeling state: free rows count unassigned incident columns; open
	// columns count free rows in their pattern.
	for i := 0; i < m; i++ {
		s.rowCnt[i] = s.rowPtr[i+1] - s.rowPtr[i]
		s.rowTaken[i] = false
	}
	for k := int32(0); int(k) < m; k++ {
		cnt := int32(0)
		s.pattern(k, func(int32) { cnt++ })
		s.colLeft[k] = cnt
		s.colRow[k] = -1
	}
	s.pivK = s.pivK[:0]
	s.pivRow = s.pivRow[:0]
	assign := func(k, row int32) {
		s.colRow[k] = row
		s.rowTaken[row] = true
		s.pivK = append(s.pivK, k)
		s.pivRow = append(s.pivRow, row)
		// The row leaves the free set: decrement its other open columns.
		for q := s.rowPtr[row]; q < s.rowPtr[row+1]; q++ {
			if kk := s.rowLst[q]; s.colRow[kk] == -1 {
				s.colLeft[kk]--
				if s.colLeft[kk] == 1 {
					s.workQ = append(s.workQ, kk)
				}
			}
		}
		// The column leaves the open set: decrement its other free rows.
		s.pattern(k, func(i int32) {
			if !s.rowTaken[i] {
				s.rowCnt[i]--
				if s.rowCnt[i] == 1 {
					s.workQ = append(s.workQ, int32(m)+i)
				}
			}
		})
	}
	// Seed queue: entries < m are column indices, >= m are rows+m.
	s.workQ = s.workQ[:0]
	for k := int32(0); int(k) < m; k++ {
		if s.colLeft[k] == 1 {
			s.workQ = append(s.workQ, k)
		}
	}
	for i := int32(0); int(i) < m; i++ {
		if s.rowCnt[i] == 1 {
			s.workQ = append(s.workQ, int32(m)+i)
		}
	}
	for head := 0; head < len(s.workQ); head++ {
		e := s.workQ[head]
		if int(e) < m {
			k := e
			if s.colRow[k] != -1 {
				continue
			}
			// Re-derive the unique free row; skip stale entries.
			var row, cnt int32 = -1, 0
			s.pattern(k, func(i int32) {
				if !s.rowTaken[i] {
					row, cnt = i, cnt+1
				}
			})
			if cnt == 1 {
				assign(k, row)
			}
		} else {
			i := e - int32(m)
			if s.rowTaken[i] {
				continue
			}
			var k, cnt int32 = -1, 0
			for q := s.rowPtr[i]; q < s.rowPtr[i+1]; q++ {
				if kk := s.rowLst[q]; s.colRow[kk] == -1 {
					k, cnt = kk, cnt+1
				}
			}
			if cnt == 1 {
				assign(k, i)
			}
		}
	}
	// Bump: every still-open column pivots numerically, ascending order.
	for k := int32(0); int(k) < m; k++ {
		if s.colRow[k] == -1 {
			s.pivK = append(s.pivK, k)
			s.pivRow = append(s.pivRow, -1)
		}
	}
	// Numeric pass in the chosen order.
	for idx := range s.pivK {
		j := int(s.bcols[s.pivK[idx]])
		s.ftranCol(j)
		row := s.pivRow[idx]
		if row == -1 {
			best := 1e-9
			for i := 0; i < m; i++ {
				if s.rowTaken[i] {
					continue
				}
				if av := math.Abs(s.colBuf[i]); av > best {
					best, row = av, int32(i)
				}
			}
			if row == -1 {
				s.clearCol()
				return false
			}
			s.rowTaken[row] = true
		}
		ok := s.appendEta(row)
		s.clearCol()
		if !ok {
			return false
		}
		s.basis[row] = int32(j)
	}
	s.facEtas = len(s.etaPivRow)
	s.facNnz = len(s.etaIdx)
	s.saveFactorization()
	return true
}

// saveFactorization snapshots the eta file and basis just produced by
// factorize, together with the basic set they belong to.
func (s *Solver) saveFactorization() {
	s.facBcols = append(s.facBcols[:0], s.bcols...)
	s.snapPivRow = append(s.snapPivRow[:0], s.etaPivRow...)
	s.snapPivVal = append(s.snapPivVal[:0], s.etaPivVal...)
	s.snapPtr = append(s.snapPtr[:0], s.etaPtr...)
	s.snapIdx = append(s.snapIdx[:0], s.etaIdx...)
	s.snapVal = append(s.snapVal[:0], s.etaVal...)
	s.snapBasis = append(s.snapBasis[:0], s.basis...)
	s.facValid = true
}

// basicSetMatchesSnapshot reports whether the basic columns currently
// flagged in s.status are exactly the snapshot's set.
func (s *Solver) basicSetMatchesSnapshot() bool {
	if !s.facValid {
		return false
	}
	k := 0
	for j := 0; j < s.cols; j++ {
		if s.status[j] != inBasis {
			continue
		}
		if k >= len(s.facBcols) || s.facBcols[k] != int32(j) {
			return false
		}
		k++
	}
	return k == len(s.facBcols)
}

// restoreFactorization reinstates the snapshot — bit-identical to calling
// factorize on the same basic set.
func (s *Solver) restoreFactorization() {
	s.etaPivRow = append(s.etaPivRow[:0], s.snapPivRow...)
	s.etaPivVal = append(s.etaPivVal[:0], s.snapPivVal...)
	s.etaPtr = append(s.etaPtr[:0], s.snapPtr...)
	s.etaIdx = append(s.etaIdx[:0], s.snapIdx...)
	s.etaVal = append(s.etaVal[:0], s.snapVal...)
	copy(s.basis, s.snapBasis)
	s.facEtas = len(s.etaPivRow)
	s.facNnz = len(s.etaIdx)
}

// computeXB recomputes the basic values from the bounds and nonbasic
// states: xB = B^-1 (b - sum over nonbasic columns of A_j x_j).
func (s *Solver) computeXB() {
	rhs := s.rhsBuf
	for i := 0; i < s.m; i++ {
		rhs[i] = s.p.b[i]
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		v := s.val(j)
		if v == 0 {
			continue
		}
		for q := s.colPtr[j]; q < s.colPtr[j+1]; q++ {
			rhs[s.colIdx[q]] -= s.colVal[q] * v
		}
	}
	for i := 0; i < s.m; i++ {
		j := s.n + i
		if s.status[j] == inBasis {
			continue
		}
		if v := s.val(j); v != 0 {
			rhs[i] -= v
		}
	}
	s.ftranDense(rhs)
	copy(s.xB, rhs)
}

// coldBasis installs the all-slack basis (B = I, empty eta file) with
// nonbasic structural columns at their bound nearest a finite value.
func (s *Solver) coldBasis() {
	s.resetEtas()
	for j := 0; j < s.n; j++ {
		s.status[j] = s.defaultStatus(j)
	}
	for i := 0; i < s.m; i++ {
		s.status[s.n+i] = inBasis
		s.basis[i] = int32(s.n + i)
	}
	s.computeXB()
}

func (s *Solver) defaultStatus(j int) int8 {
	switch {
	case !math.IsInf(s.lb[j], -1):
		return nbLower
	case !math.IsInf(s.ub[j], 1):
		return nbUpper
	default:
		return nbFree
	}
}

// installWarm adopts the warm basis snapshot under the current bounds:
// sanitize nonbasic states, factorize, recompute xB. Returns false (leaving
// the solver in need of coldBasis) when the snapshot does not match the
// problem shape or the basis matrix is numerically singular.
func (s *Solver) installWarm(warm []int8) bool {
	if len(warm) != s.cols {
		return false
	}
	nb := 0
	for _, st := range warm {
		if st == inBasis {
			nb++
		}
	}
	if nb != s.m {
		return false
	}
	copy(s.status, warm)
	// Sanitize nonbasic states against the current bounds.
	for j := 0; j < s.cols; j++ {
		switch s.status[j] {
		case nbLower:
			if math.IsInf(s.lb[j], -1) {
				s.status[j] = s.defaultStatus(j)
			}
		case nbUpper:
			if math.IsInf(s.ub[j], 1) {
				s.status[j] = s.defaultStatus(j)
			}
		case nbFree:
			if !math.IsInf(s.lb[j], -1) || !math.IsInf(s.ub[j], 1) {
				s.status[j] = s.defaultStatus(j)
			}
		}
	}
	if s.basicSetMatchesSnapshot() {
		s.restoreFactorization()
	} else if !s.factorize() {
		return false
	}
	s.computeXB()
	return true
}

// refresh rebuilds the factorization for the current basis and recomputes
// the basic values and reduced costs — the drift control point. Returns
// false on a numerically singular basis (callers treat it as an iteration
// failure).
func (s *Solver) refresh() bool {
	if !s.factorize() {
		return false
	}
	s.computeXB()
	s.repriceCurrent()
	return true
}

// etaOverBudget reports whether the eta file has drifted far enough from
// its factorization to warrant a rebuild. Two triggers: a cap on the
// number of simplex-update etas, and — decisive on large models, where one
// transformed column can be dense — a cap on their total fill, so the
// FTRAN/BTRAN cost per pivot stays proportional to the matrix, not to the
// pivot history.
func (s *Solver) etaOverBudget() bool {
	if len(s.etaPivRow)-s.facEtas > 48 {
		return true
	}
	return len(s.etaIdx)-s.facNnz > 2*(len(s.colIdx)+s.m+64)
}

// setCost installs the phase objective (true problem cost or all-zero) and
// prices the current basis: y = B^-T c_B, r_j = c_j - y·A_j.
func (s *Solver) setCost(true_ bool) {
	clear(s.cost)
	if true_ {
		copy(s.cost, s.p.c)
	}
	s.repriceCurrent()
}

// repriceCurrent recomputes reduced costs and the objective value for the
// current phase cost and basis.
func (s *Solver) repriceCurrent() {
	y := s.rhoBuf
	for i := 0; i < s.m; i++ {
		y[i] = s.cost[s.basis[i]]
	}
	s.btran(y)
	for j := 0; j < s.n; j++ {
		rj := s.cost[j]
		for q := s.colPtr[j]; q < s.colPtr[j+1]; q++ {
			rj -= y[s.colIdx[q]] * s.colVal[q]
		}
		s.r[j] = rj
	}
	for i := 0; i < s.m; i++ {
		s.r[s.n+i] = s.cost[s.n+i] - y[i]
	}
	for i := 0; i < s.m; i++ {
		s.r[s.basis[i]] = 0
	}
	s.z = 0
	for i := 0; i < s.m; i++ {
		if cb := s.cost[s.basis[i]]; cb != 0 {
			s.z += cb * s.xB[i]
		}
	}
	for j := 0; j < s.cols; j++ {
		if s.status[j] != inBasis && s.cost[j] != 0 {
			s.z += s.cost[j] * s.val(j)
		}
	}
}

func (s *Solver) primalFeasible() bool {
	for i := 0; i < s.m; i++ {
		k := s.basis[i]
		if s.xB[i] < s.lb[k]-feasEps || s.xB[i] > s.ub[k]+feasEps {
			return false
		}
	}
	return true
}

func (s *Solver) dualFeasible() bool {
	for j := 0; j < s.cols; j++ {
		if s.status[j] == inBasis || s.fixed(j) {
			continue
		}
		switch s.status[j] {
		case nbLower:
			if s.r[j] < -eps {
				return false
			}
		case nbUpper:
			if s.r[j] > eps {
				return false
			}
		default:
			if math.Abs(s.r[j]) > eps {
				return false
			}
		}
	}
	return true
}

// computeAlpha fills s.alpha with the pivot row of B^-1 [A I]: alpha_j =
// rho·A_j where rho = B^-T e_leave is expected in s.rhoBuf.
func (s *Solver) computeAlpha() {
	rho := s.rhoBuf
	for j := 0; j < s.n; j++ {
		a := 0.0
		for q := s.colPtr[j]; q < s.colPtr[j+1]; q++ {
			a += rho[s.colIdx[q]] * s.colVal[q]
		}
		s.alpha[j] = a
	}
	for i := 0; i < s.m; i++ {
		s.alpha[s.n+i] = rho[i]
	}
}

// btranRow computes rho = B^-T e_row into rhoBuf.
func (s *Solver) btranRow(row int) {
	rho := s.rhoBuf
	for i := range rho {
		rho[i] = 0
	}
	rho[row] = 1
	s.btran(rho)
}

// updateReducedCosts applies the standard pivot update r_j -= theta*alpha_j
// using the alpha row already in s.alpha; enter/leaveCol bookkeeping keeps
// basic entries at exact zero.
func (s *Solver) updateReducedCosts(enter int, leaveCol int32) {
	theta := s.r[enter] / s.alpha[enter]
	if theta != 0 {
		for j := 0; j < s.cols; j++ {
			if a := s.alpha[j]; a != 0 {
				s.r[j] -= theta * a
			}
		}
	}
	s.r[enter] = 0
	// s.basis still holds the pre-pivot basis (leaveCol included), so zero
	// every basic entry first, then install the leaving column's new
	// reduced cost.
	for i := 0; i < s.m; i++ {
		s.r[s.basis[i]] = 0
	}
	s.r[leaveCol] = -theta
}

// primalIterate runs the bounded primal simplex until optimality,
// unboundedness, or the budget runs out.
func (s *Solver) primalIterate(budget int) (Status, int) {
	if budget < 0 {
		budget = 0
	}
	stall := 0
	bland := false
	for it := 0; ; it++ {
		// Entering column and movement direction.
		enter, dir := -1, 1.0
		if bland {
			for j := 0; j < s.cols && enter == -1; j++ {
				if s.status[j] == inBasis || s.fixed(j) {
					continue
				}
				switch s.status[j] {
				case nbLower:
					if s.r[j] < -eps {
						enter, dir = j, 1
					}
				case nbUpper:
					if s.r[j] > eps {
						enter, dir = j, -1
					}
				default:
					if s.r[j] < -eps {
						enter, dir = j, 1
					} else if s.r[j] > eps {
						enter, dir = j, -1
					}
				}
			}
		} else {
			best := eps
			for j := 0; j < s.cols; j++ {
				if s.status[j] == inBasis || s.fixed(j) {
					continue
				}
				var viol, d float64
				switch s.status[j] {
				case nbLower:
					viol, d = -s.r[j], 1
				case nbUpper:
					viol, d = s.r[j], -1
				default:
					if s.r[j] < 0 {
						viol, d = -s.r[j], 1
					} else {
						viol, d = s.r[j], -1
					}
				}
				if viol > best {
					best, enter, dir = viol, j, d
				}
			}
		}
		if enter == -1 {
			return Optimal, it
		}
		if it >= budget {
			return IterLimit, it
		}
		// Transformed entering column.
		s.ftranCol(enter)
		abuf := s.colBuf
		// Ratio test: entering moves by dir*t; basic i changes by
		// -dir*t*abuf[i]; the entering column itself flips at its range.
		tmax := math.Inf(1)
		if !math.IsInf(s.lb[enter], -1) && !math.IsInf(s.ub[enter], 1) {
			tmax = s.ub[enter] - s.lb[enter]
		}
		leave, tmin := -1, tmax
		for i := 0; i < s.m; i++ {
			step := dir * abuf[i]
			k := s.basis[i]
			var t float64
			switch {
			case step > eps: // basic value decreases
				if math.IsInf(s.lb[k], -1) {
					continue
				}
				t = (s.xB[i] - s.lb[k]) / step
			case step < -eps: // basic value increases
				if math.IsInf(s.ub[k], 1) {
					continue
				}
				t = (s.ub[k] - s.xB[i]) / (-step)
			default:
				continue
			}
			if t < 0 {
				t = 0
			}
			if leave == -1 && t < tmin-eps {
				leave, tmin = i, t
			} else if leave != -1 && (t < tmin-eps ||
				(t <= tmin+eps && bland && s.basis[i] < s.basis[leave])) {
				leave, tmin = i, math.Min(t, tmin)
			}
		}
		if math.IsInf(tmin, 1) {
			s.clearCol()
			return Unbounded, it
		}
		if tmin <= eps {
			stall++
			if stall > 2*(s.m+s.cols) {
				bland = true
			}
		} else {
			stall = 0
		}
		s.z += s.r[enter] * dir * tmin
		if leave == -1 {
			// Bound flip: no basis change.
			for _, i := range s.colList {
				if a := abuf[i]; a != 0 {
					s.xB[i] -= dir * tmin * a
				}
			}
			if s.status[enter] == nbLower {
				s.status[enter] = nbUpper
			} else {
				s.status[enter] = nbLower
			}
			s.clearCol()
			continue
		}
		newVal := s.val(enter) + dir*tmin
		for _, i := range s.colList {
			if i == int32(leave) {
				continue
			}
			if a := abuf[i]; a != 0 {
				s.xB[i] -= dir * tmin * a
			}
		}
		k := s.basis[leave]
		leaveStatus := nbUpper
		if dir*abuf[leave] > 0 { // basic value decreased to its lower bound
			leaveStatus = nbLower
		}
		// Reduced-cost update needs the pivot row before the basis changes.
		s.btranRow(leave)
		s.computeAlpha()
		if !s.commitPivot(leave, enter, k, leaveStatus, newVal) {
			return IterLimit, it
		}
	}
}

// commitPivot finalizes a basis change after the pivot column has been
// FTRAN'd into colBuf and the alpha row computed: append the update eta,
// update the reduced costs in place (against the pre-pivot basis), and
// install the new basis/status/value. On eta failure or drift overflow the
// factorization is rebuilt instead; false means the refreshed basis was
// numerically singular and the iteration must stop.
func (s *Solver) commitPivot(leave, enter int, leaveCol int32, leaveStatus int8, newVal float64) bool {
	ok := s.appendEta(int32(leave))
	s.clearCol()
	if ok && !s.etaOverBudget() {
		s.updateReducedCosts(enter, leaveCol)
		s.xB[leave] = newVal
		s.basis[leave] = int32(enter)
		s.status[enter] = inBasis
		s.status[leaveCol] = leaveStatus
		return true
	}
	s.basis[leave] = int32(enter)
	s.status[enter] = inBasis
	s.status[leaveCol] = leaveStatus
	s.xB[leave] = newVal
	return s.refresh()
}

// dualIterate runs the bounded dual simplex until primal feasibility
// ("Optimal" here means feasible for the current cost, which the caller
// re-prices), infeasibility, or the budget runs out. Requires dual
// feasibility on entry, which bound changes preserve.
func (s *Solver) dualIterate(budget int) (Status, int) {
	if budget < 0 {
		budget = 0
	}
	stall := 0
	bland := false
	for it := 0; ; it++ {
		// Leaving row: the worst bound violation (Bland mode: the first).
		leave, below := -1, false
		worst := feasEps
		for i := 0; i < s.m; i++ {
			k := s.basis[i]
			if v := s.lb[k] - s.xB[i]; v > worst {
				leave, below, worst = i, true, v
			} else if v := s.xB[i] - s.ub[k]; v > worst {
				leave, below, worst = i, false, v
			}
			if bland && leave != -1 {
				break
			}
		}
		if leave == -1 {
			return Optimal, it
		}
		if it >= budget {
			return IterLimit, it
		}
		// The pivot row of B^-1 [A I].
		s.btranRow(leave)
		s.computeAlpha()
		// Entering column: among columns whose movement raises (below) or
		// lowers (above) the leaving value, the minimal dual ratio
		// |r_j|/|a_j| preserves dual feasibility; ties break to the lowest
		// index.
		enter := -1
		var bestRatio float64
		for j := 0; j < s.cols; j++ {
			if s.status[j] == inBasis || s.fixed(j) {
				continue
			}
			aj := s.alpha[j]
			var ok bool
			switch s.status[j] {
			case nbLower: // can only increase
				ok = (below && aj < -eps) || (!below && aj > eps)
			case nbUpper: // can only decrease
				ok = (below && aj > eps) || (!below && aj < -eps)
			default: // free: either direction
				ok = aj > eps || aj < -eps
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.r[j]) / math.Abs(aj)
			if enter == -1 || ratio < bestRatio-eps {
				enter, bestRatio = j, ratio
			}
		}
		if enter == -1 {
			return Infeasible, it
		}
		k := s.basis[leave]
		target := s.ub[k]
		leaveStatus := nbUpper
		if below {
			target = s.lb[k]
			leaveStatus = nbLower
		}
		// Note: the step is not capped at the entering column's own opposite
		// bound. The entering variable may become basic outside its range,
		// which the next iterations repair — deliberately so: in-place bound
		// flips with degenerate reduced costs can cycle across rows without
		// touching the stall/Bland safeguards (observed under fuzzing), while
		// the uncapped pivot is the plain terminating dual method.
		delta := (s.xB[leave] - target) / s.alpha[enter]
		if math.Abs(delta) <= eps {
			stall++
			if stall > 2*(s.m+s.cols) {
				bland = true
			}
		} else {
			stall = 0
		}
		s.ftranCol(enter)
		abuf := s.colBuf
		newVal := s.val(enter) + delta
		for _, i := range s.colList {
			if i == int32(leave) {
				continue
			}
			if a := abuf[i]; a != 0 {
				s.xB[i] -= a * delta
			}
		}
		s.z += s.r[enter] * delta
		if !s.commitPivot(leave, enter, k, leaveStatus, newVal) {
			return IterLimit, it
		}
	}
}

// extractView assembles the Optimal result over solver-owned buffers.
func (s *Solver) extractView(iters int) View {
	x := s.xbuf
	for j := 0; j < s.n; j++ {
		if s.status[j] != inBasis {
			x[j] = s.val(j)
		}
	}
	for i := 0; i < s.m; i++ {
		if int(s.basis[i]) < s.n {
			x[s.basis[i]] = s.xB[i]
		}
	}
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.p.c[j] * x[j]
	}
	copy(s.rbuf, s.r[:s.n])
	return View{
		Status: Optimal,
		Obj:    obj,
		Iters:  iters,
		X:      x,
		R:      s.rbuf,
		Basis:  s.status,
	}
}
