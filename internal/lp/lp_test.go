package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 2, y <= 3  ->  x=2 (or 1), y=3 (obj -4... )
	// optimum: x+y=4 with x<=2, y<=3: obj -4.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]float64{1, 1}, LE, 4)
	p.AddRow([]float64{1, 0}, LE, 2)
	p.AddRow([]float64{0, 1}, LE, 3)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, -4) {
		t.Errorf("obj %v, want -4", s.Obj)
	}
	if !approx(s.X[0]+s.X[1], 4) {
		t.Errorf("x=%v", s.X)
	}
}

func TestEquality(t *testing.T) {
	// min x + 2y  s.t. x + y = 3, x - y = 1  ->  x=2, y=1, obj 4.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 2)
	p.AddRow([]float64{1, 1}, EQ, 3)
	p.AddRow([]float64{1, -1}, EQ, 1)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 1) || !approx(s.Obj, 4) {
		t.Errorf("x=%v obj=%v", s.X, s.Obj)
	}
}

func TestGE(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 10, x >= 2  ->  x=10-0... cheapest is x: obj 20 at x=10,y=0? x>=2 satisfied. Yes obj 20.
	p := NewProblem(2)
	p.SetObj(0, 2)
	p.SetObj(1, 3)
	p.AddRow([]float64{1, 1}, GE, 10)
	p.AddRow([]float64{1, 0}, GE, 2)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, 20) {
		t.Errorf("obj %v, want 20", s.Obj)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x  s.t. -x <= -5  (i.e. x >= 5)  ->  x=5.
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.AddRow([]float64{-1}, LE, -5)
	s := p.Solve(0)
	if s.Status != Optimal || !approx(s.X[0], 5) {
		t.Fatalf("status %v x=%v", s.Status, s.X)
	}
	// EQ with negative rhs.
	q := NewProblem(2)
	q.SetObj(0, 1)
	q.AddRow([]float64{1, -1}, EQ, -3) // x - y = -3
	q.AddRow([]float64{0, 1}, LE, 4)
	sq := q.Solve(0)
	if sq.Status != Optimal {
		t.Fatalf("status %v", sq.Status)
	}
	if !approx(sq.X[0]-sq.X[1], -3) {
		t.Errorf("x=%v", sq.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]float64{1}, GE, 5)
	p.AddRow([]float64{1}, LE, 3)
	if s := p.Solve(0); s.Status != Infeasible {
		t.Errorf("status %v, want infeasible", s.Status)
	}
	// Contradictory equalities.
	q := NewProblem(2)
	q.AddRow([]float64{1, 1}, EQ, 1)
	q.AddRow([]float64{1, 1}, EQ, 2)
	if s := q.Solve(0); s.Status != Infeasible {
		t.Errorf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.AddRow([]float64{-1}, LE, 0) // x >= 0, no upper bound
	if s := p.Solve(0); s.Status != Unbounded {
		t.Errorf("status %v, want unbounded", s.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP that cycles under naive Dantzig without
	// safeguards (Beale's example).
	p := NewProblem(4)
	for j, c := range []float64{-0.75, 150, -0.02, 6} {
		p.SetObj(j, c)
	}
	p.AddRow([]float64{0.25, -60, -1.0 / 25, 9}, LE, 0)
	p.AddRow([]float64{0.5, -90, -1.0 / 50, 3}, LE, 0)
	p.AddRow([]float64{0, 0, 1, 0}, LE, 1)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, -0.05) {
		t.Errorf("obj %v, want -0.05", s.Obj)
	}
}

func TestSparseRow(t *testing.T) {
	p := NewProblem(5)
	p.SetObj(4, 1)
	p.AddSparseRow([]int{4, 0}, []float64{1, 1}, GE, 7)
	p.AddSparseRow([]int{0}, []float64{1}, LE, 3)
	s := p.Solve(0)
	if s.Status != Optimal || !approx(s.Obj, 4) {
		t.Fatalf("status %v obj %v, want 4", s.Status, s.Obj)
	}
	// Duplicate indices accumulate.
	q := NewProblem(2)
	q.SetObj(0, 1)
	q.AddSparseRow([]int{0, 0}, []float64{1, 1}, GE, 6) // 2x >= 6
	sq := q.Solve(0)
	if sq.Status != Optimal || !approx(sq.X[0], 3) {
		t.Fatalf("dup sparse: %v %v", sq.Status, sq.X)
	}
}

func TestIterLimit(t *testing.T) {
	p := NewProblem(3)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]float64{1, 2, 1}, LE, 10)
	p.AddRow([]float64{2, 1, 1}, LE, 10)
	if s := p.Solve(1); s.Status != IterLimit && s.Status != Optimal {
		t.Errorf("status %v", s.Status)
	}
}

func TestTransportationLP(t *testing.T) {
	// 2 suppliers (cap 20, 30), 3 customers (demand 10, 25, 15), unit costs:
	//   s0: 2 4 5
	//   s1: 3 1 7
	// Optimum 125: s1 ships 25 to c1 (25) and its spare 5 to c0 (15); s0
	// ships the other 5 to c0 (10) and all 15 to c2 (75).
	p := NewProblem(6) // x[s][c] row-major
	costs := []float64{2, 4, 5, 3, 1, 7}
	for j, c := range costs {
		p.SetObj(j, c)
	}
	p.AddRow([]float64{1, 1, 1, 0, 0, 0}, LE, 20)
	p.AddRow([]float64{0, 0, 0, 1, 1, 1}, LE, 30)
	p.AddRow([]float64{1, 0, 0, 1, 0, 0}, EQ, 10)
	p.AddRow([]float64{0, 1, 0, 0, 1, 0}, EQ, 25)
	p.AddRow([]float64{0, 0, 1, 0, 0, 1}, EQ, 15)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, 125) {
		t.Errorf("obj %v, want 125", s.Obj)
	}
}

// TestRandomFeasibility cross-checks the solver on random LPs: any Optimal
// answer must satisfy every row, and adding the optimal x back as equality
// constraints must stay feasible.
func TestRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(6) + 2
		m := rng.Intn(8) + 1
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, float64(rng.Intn(11)-5))
		}
		rows := make([][]float64, m)
		senses := make([]Sense, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			rows[i] = row
			senses[i] = Sense(rng.Intn(2)) // LE or GE
			rhs[i] = float64(rng.Intn(21) - 5)
			p.AddRow(row, senses[i], rhs[i])
		}
		// Keep it bounded.
		bound := make([]float64, n)
		for j := range bound {
			bound[j] = 1
		}
		p.AddRow(bound, LE, 50)
		s := p.Solve(0)
		if s.Status != Optimal {
			continue // infeasible instances are fine
		}
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += rows[i][j] * s.X[j]
			}
			switch senses[i] {
			case LE:
				if dot > rhs[i]+1e-5 {
					t.Fatalf("trial %d row %d: %v <= %v violated (x=%v)", trial, i, dot, rhs[i], s.X)
				}
			case GE:
				if dot < rhs[i]-1e-5 {
					t.Fatalf("trial %d row %d: %v >= %v violated (x=%v)", trial, i, dot, rhs[i], s.X)
				}
			}
		}
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-6 {
				t.Fatalf("trial %d: negative x[%d]=%v", trial, j, s.X[j])
			}
		}
	}
}

// TestQuickObjectiveNotWorseThanVertex: for random LPs over the unit box,
// the simplex optimum must be <= the objective at any random feasible point
// we can construct.
func TestQuickObjectiveNotWorseThanVertex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		p := NewProblem(n)
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = float64(rng.Intn(9) - 4)
			p.SetObj(j, c[j])
		}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddRow(row, LE, 1) // unit box
		}
		s := p.Solve(0)
		if s.Status != Optimal {
			return false
		}
		// Candidate point: a random 0/1 vertex.
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += c[j] * float64(rng.Intn(2))
		}
		return s.Obj <= obj+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAddRowPanics(t *testing.T) {
	p := NewProblem(2)
	mustPanic(t, func() { p.AddRow([]float64{1}, LE, 0) })
	mustPanic(t, func() { p.AddSparseRow([]int{5}, []float64{1}, LE, 0) })
	mustPanic(t, func() { p.AddSparseRow([]int{0, 1}, []float64{1}, LE, 0) })
	mustPanic(t, func() { NewProblem(0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	f()
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense strings")
	}
	if Optimal.String() == "" || Infeasible.String() == "" ||
		Unbounded.String() == "" || IterLimit.String() == "" {
		t.Error("Status strings")
	}
}
