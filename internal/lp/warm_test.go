package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestNativeBounds(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 3, x in [0,2], y in [0,2]  ->  x=1, y=2.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -2)
	p.SetBounds(0, 0, 2)
	p.SetBounds(1, 0, 2)
	p.AddRow([]float64{1, 1}, LE, 3)
	s := p.Solve(0)
	if s.Status != Optimal || !approx(s.Obj, -5) {
		t.Fatalf("status %v obj %v, want -5", s.Status, s.Obj)
	}
	if !approx(s.X[0], 1) || !approx(s.X[1], 2) {
		t.Errorf("x=%v", s.X)
	}
}

func TestNegativeLowerBound(t *testing.T) {
	// min x  with x in [-4, 7]: rests at the lower bound.
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.SetBounds(0, -4, 7)
	s := p.Solve(0)
	if s.Status != Optimal || !approx(s.X[0], -4) {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestFixedVariableBounds(t *testing.T) {
	// x fixed at 2 via bounds participates in rows but never pivots.
	p := NewProblem(2)
	p.SetObj(1, 1)
	p.SetBounds(0, 2, 2)
	p.AddRow([]float64{1, 1}, GE, 5)
	s := p.Solve(0)
	if s.Status != Optimal || !approx(s.X[0], 2) || !approx(s.X[1], 3) {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 0, 1)
	p.AddRow([]float64{1}, GE, 2)
	if s := p.Solve(0); s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestSetBoundsPanics(t *testing.T) {
	p := NewProblem(1)
	mustPanic(t, func() { p.SetBounds(0, 2, 1) })
	mustPanic(t, func() { p.SetBounds(0, Inf, Inf) })
}

// TestWarmStartAfterBoundChange is the branch-and-bound re-solve pattern:
// tighten one variable's bounds and re-solve from the parent's basis. The
// warm solve must agree with a cold solve and take fewer iterations.
func TestWarmStartAfterBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		mrows := 2 + rng.Intn(5)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, float64(rng.Intn(9)-4))
			p.SetBounds(j, 0, float64(1+rng.Intn(4)))
		}
		for i := 0; i < mrows; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(5) - 2)
			}
			p.AddRow(row, Sense(rng.Intn(3)), float64(rng.Intn(9)-2))
		}
		sv := NewSolver(p)
		root := sv.Solve(nil, nil, nil, 0)
		if root.Status != Optimal {
			continue
		}
		// Tighten a random variable to a sub-range, child-node style.
		lb := make([]float64, n)
		ub := make([]float64, n)
		for j := 0; j < n; j++ {
			lb[j], ub[j] = p.Bounds(j)
		}
		j := rng.Intn(n)
		ub[j] = math.Floor(root.X[j])
		if ub[j] < lb[j] {
			continue
		}
		cold := NewSolver(p).Solve(lb, ub, nil, 0)
		warm := sv.Solve(lb, ub, root.Basis, 0)
		if cold.Status != warm.Status {
			t.Fatalf("trial %d: cold %v vs warm %v", trial, cold.Status, warm.Status)
		}
		if cold.Status == Optimal {
			if !approx(cold.Obj, warm.Obj) {
				t.Fatalf("trial %d: cold obj %v vs warm obj %v", trial, cold.Obj, warm.Obj)
			}
			if warm.Iters > cold.Iters {
				t.Errorf("trial %d: warm start used %d iters, cold %d", trial, warm.Iters, cold.Iters)
			}
		}
	}
}

// TestWarmStartAfterObjectiveChange is the iterative set-cover pattern: the
// same rows and bounds, a new objective, warm-started from the old basis.
func TestWarmStartAfterObjectiveChange(t *testing.T) {
	p := NewProblem(4)
	for j := 0; j < 4; j++ {
		p.SetObj(j, -1)
		p.SetBounds(j, 0, 1)
	}
	p.AddRow([]float64{1, 1, 1, 1}, LE, 2)
	sv := NewSolver(p)
	first := sv.Solve(nil, nil, nil, 0)
	if first.Status != Optimal || !approx(first.Obj, -2) {
		t.Fatalf("first: %v obj %v", first.Status, first.Obj)
	}
	p.SetObj(0, -5)
	p.SetObj(1, 3)
	warm := sv.Solve(nil, nil, first.Basis, 0)
	if warm.Status != Optimal || !approx(warm.Obj, -6) {
		t.Fatalf("warm after objective change: %v obj %v, want -6", warm.Status, warm.Obj)
	}
}

// TestSolveDeterministic: a solve is a pure function of its inputs.
func TestSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, float64(rng.Intn(7)-3))
			p.SetBounds(j, 0, float64(1+rng.Intn(3)))
		}
		for i := 0; i < 3; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(5) - 2)
			}
			p.AddRow(row, Sense(rng.Intn(3)), float64(rng.Intn(7)-2))
		}
		a := p.Solve(0)
		b := NewSolver(p).Solve(nil, nil, nil, 0)
		if a.Status != b.Status || a.Obj != b.Obj || a.Iters != b.Iters {
			t.Fatalf("trial %d: solves differ: %+v vs %+v", trial, a, b)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("trial %d: X[%d] %v vs %v", trial, j, a.X[j], b.X[j])
			}
		}
	}
}

func TestReducedCostsSigns(t *testing.T) {
	// min -x - y over the unit box with x + y <= 1: at the optimum every
	// nonbasic-at-lower column must have R >= 0 and at-upper R <= 0.
	p := NewProblem(3)
	p.SetObj(0, -2)
	p.SetObj(1, -1)
	p.SetObj(2, 5)
	for j := 0; j < 3; j++ {
		p.SetBounds(j, 0, 1)
	}
	p.AddRow([]float64{1, 1, 1}, LE, 1)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if s.R == nil {
		t.Fatal("no reduced costs")
	}
	for j, x := range s.X {
		switch {
		case approx(x, 0) && s.R[j] < -1e-6:
			t.Errorf("var %d at lower with R=%v", j, s.R[j])
		case approx(x, 1) && s.R[j] > 1e-6:
			t.Errorf("var %d at upper with R=%v", j, s.R[j])
		}
	}
}
