package lp

import (
	"math"
	"testing"
)

// decodeFuzzLP turns a byte stream into a small LP: up to 3 variables with
// small integer bounds and objective, up to 4 rows with coefficients in
// [-2, 2]. Returns nil when the stream is too short.
func decodeFuzzLP(data []byte) *Problem {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	b, ok := next()
	if !ok {
		return nil
	}
	n := 1 + int(b)%3
	b, ok = next()
	if !ok {
		return nil
	}
	m := int(b) % 4
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		ob, ok1 := next()
		lbB, ok2 := next()
		wB, ok3 := next()
		if !ok1 || !ok2 || !ok3 {
			return nil
		}
		p.SetObj(j, float64(int(ob)%5-2))
		lb := float64(int(lbB)%4 - 2) // -2..1
		switch int(wB) % 5 {
		case 4:
			p.SetBounds(j, lb, math.Inf(1))
		default:
			p.SetBounds(j, lb, lb+float64(int(wB)%5))
		}
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			cb, ok := next()
			if !ok {
				return nil
			}
			row[j] = float64(int(cb)%5 - 2)
		}
		sB, ok1 := next()
		rB, ok2 := next()
		if !ok1 || !ok2 {
			return nil
		}
		p.AddRow(row, Sense(int(sB)%3), float64(int(rB)%9-4))
	}
	return p
}

// gridPoints enumerates small integer points within the variable bounds —
// a brute-force feasibility and optimality oracle.
func gridPoints(p *Problem, visit func(x []float64)) {
	n := p.N()
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			visit(x)
			return
		}
		lb, ub := p.Bounds(j)
		for v := -2.0; v <= 4; v++ {
			if v < lb || v > ub {
				continue
			}
			x[j] = v
			rec(j + 1)
		}
	}
	rec(0)
}

func feasiblePoint(p *Problem, x []float64) bool {
	for i := 0; i < p.M(); i++ {
		dot := 0.0
		for j := 0; j < p.N(); j++ {
			dot += p.rows[i][j] * x[j]
		}
		switch p.senses[i] {
		case LE:
			if dot > p.b[i]+1e-9 {
				return false
			}
		case GE:
			if dot < p.b[i]-1e-9 {
				return false
			}
		case EQ:
			if math.Abs(dot-p.b[i]) > 1e-9 {
				return false
			}
		}
	}
	return true
}

// FuzzSolve cross-checks the simplex against brute-force enumeration of
// integer grid points: an Optimal answer must be feasible and at least as
// good as every feasible grid point; an Infeasible answer is refuted by any
// feasible grid point. A warm re-solve from the optimal basis must
// reproduce the optimum.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{2, 1, 3, 1, 2, 0, 2, 3, 1, 2, 1, 6})
	f.Add([]byte{1, 2, 4, 0, 1, 3, 1, 0, 2, 7, 4, 1, 0})
	f.Add([]byte{3, 3, 1, 1, 4, 2, 0, 2, 0, 3, 3, 1, 2, 0, 1, 4, 2, 1, 0, 2, 2, 8})
	f.Add([]byte{0, 0, 4, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzLP(data)
		if p == nil {
			return
		}
		sol := p.Solve(0)
		switch sol.Status {
		case Optimal:
			for j := 0; j < p.N(); j++ {
				lb, ub := p.Bounds(j)
				if sol.X[j] < lb-1e-6 || sol.X[j] > ub+1e-6 {
					t.Fatalf("x[%d]=%v outside [%v,%v]", j, sol.X[j], lb, ub)
				}
			}
			if !feasiblePointTol(p, sol.X) {
				t.Fatalf("optimal point infeasible: %v", sol.X)
			}
			gridPoints(p, func(x []float64) {
				if !feasiblePoint(p, x) {
					return
				}
				obj := 0.0
				for j := range x {
					obj += p.c[j] * x[j]
				}
				if obj < sol.Obj-1e-6 {
					t.Fatalf("grid point %v has obj %v < claimed optimum %v", x, obj, sol.Obj)
				}
			})
			warm := NewSolver(p).Solve(nil, nil, sol.Basis, 0)
			if warm.Status != Optimal || math.Abs(warm.Obj-sol.Obj) > 1e-6 {
				t.Fatalf("warm re-solve: %v obj %v, cold optimum %v", warm.Status, warm.Obj, sol.Obj)
			}
		case Infeasible:
			gridPoints(p, func(x []float64) {
				if feasiblePoint(p, x) {
					t.Fatalf("claimed infeasible but %v is feasible", x)
				}
			})
		}
	})
}

// feasiblePointTol is feasiblePoint with simplex-scale tolerances, for
// checking computed (non-integer) solutions.
func feasiblePointTol(p *Problem, x []float64) bool {
	for i := 0; i < p.M(); i++ {
		dot := 0.0
		for j := 0; j < p.N(); j++ {
			dot += p.rows[i][j] * x[j]
		}
		switch p.senses[i] {
		case LE:
			if dot > p.b[i]+1e-5 {
				return false
			}
		case GE:
			if dot < p.b[i]-1e-5 {
				return false
			}
		case EQ:
			if math.Abs(dot-p.b[i]) > 1e-5 {
				return false
			}
		}
	}
	return true
}
