package lp

import (
	"math"
	"testing"
)

// buildAllocLP is a mid-size deterministic LP in the shape the
// branch-and-bound nodes produce: 0-1 bounded structural variables, sparse
// rows, a mix of senses.
func buildAllocLP() *Problem {
	const n = 24
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, float64((j*7)%11-5))
		p.SetBounds(j, 0, 1)
	}
	for i := 0; i < 18; i++ {
		idx := []int{i % n, (i*3 + 1) % n, (i*5 + 2) % n}
		coef := []float64{1, float64(i%3 - 1), 1}
		// x = 0 satisfies every row, so the instance is always feasible.
		if i%2 == 0 {
			p.AddSparseRow(idx, coef, LE, float64(i%3))
		} else {
			p.AddSparseRow(idx, coef, GE, 0)
		}
	}
	return p
}

// TestWarmSolveViewAllocationFree pins the tentpole guarantee of the
// revised simplex: once a Solver's buffers have reached steady size, a
// warm-started re-solve under changed bounds performs zero allocations.
// Branch-and-bound solves millions of these; any regression here shows up
// directly in the campaign benchmarks.
func TestWarmSolveViewAllocationFree(t *testing.T) {
	p := buildAllocLP()
	sv := NewSolver(p)
	root := sv.SolveView(nil, nil, nil, 0)
	if root.Status != Optimal {
		t.Fatalf("root solve: %v", root.Status)
	}
	warm := append([]int8(nil), root.Basis...)
	n := p.N()
	lb := make([]float64, n)
	ub := make([]float64, n)
	for j := 0; j < n; j++ {
		lb[j], ub[j] = p.Bounds(j)
	}
	// A child-node-style bound fix on a variable the optimum uses.
	ub[0] = math.Floor(root.X[0])
	if ub[0] < lb[0] {
		ub[0] = lb[0]
	}
	for i := 0; i < 3; i++ { // warm-up: let eta/scratch capacities settle
		if v := sv.SolveView(lb, ub, warm, 0); v.Status != Optimal {
			t.Fatalf("warm solve: %v", v.Status)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		sv.SolveView(lb, ub, warm, 0)
	})
	if allocs != 0 {
		t.Fatalf("warm SolveView allocates %v objects per solve, want 0", allocs)
	}
	// The cold path over the same solver must also be allocation-free —
	// it is the deterministic retry branch of the branch-and-bound.
	cold := testing.AllocsPerRun(100, func() {
		sv.SolveView(lb, ub, nil, 0)
	})
	if cold != 0 {
		t.Fatalf("cold SolveView allocates %v objects per solve, want 0", cold)
	}
}
