package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestTable1CasesValveCounts(t *testing.T) {
	// The reconstruction invariant: every benchmark array has exactly the
	// paper's nv.
	for _, c := range Table1Cases() {
		a, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got := a.NumNormal(); got != c.PaperNV {
			t.Errorf("%s: nv=%d, paper %d", c.Name, got, c.PaperNV)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestFindCase(t *testing.T) {
	c, err := FindCase("20x20")
	if err != nil || c.Dim != 20 {
		t.Errorf("FindCase: %+v, %v", c, err)
	}
	if _, err := FindCase("7x7"); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestRowSmall(t *testing.T) {
	c, err := FindCase("5x5")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Row(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Stats.NV != 39 {
		t.Errorf("NV=%d", ts.Stats.NV)
	}
	if len(ts.UncoveredPath) > 0 || len(ts.UncoveredCut) > 0 {
		t.Errorf("uncovered: %v / %v", ts.UncoveredPath, ts.UncoveredCut)
	}
	// Full detection on the benchmark array.
	escaped, err := ts.VerifySingleFaults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(escaped) > 0 {
		t.Errorf("undetected single faults: %v", escaped)
	}
}

func TestRowMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium benchmark array")
	}
	c, err := FindCase("10x10")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Row(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.UncoveredPath) > 0 || len(ts.UncoveredCut) > 0 {
		t.Fatalf("uncovered: %v / %v", ts.UncoveredPath, ts.UncoveredCut)
	}
	escaped, err := ts.VerifySingleFaults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(escaped) > 0 {
		t.Errorf("undetected single faults: %v", escaped)
	}
	// Total vector count should scale like ~2*sqrt(nv), far below the
	// baseline's 2*nv.
	if ts.Stats.N >= BaselineCount(ts.Array) {
		t.Errorf("N=%d not better than baseline %d", ts.Stats.N, BaselineCount(ts.Array))
	}
}

func TestBaselineVectors(t *testing.T) {
	c, err := FindCase("5x5")
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	vecs, err := BaselineVectors(a)
	if err != nil {
		t.Fatal(err)
	}
	want := BaselineCount(a)
	if len(vecs) != want {
		t.Errorf("%d baseline vectors, want %d", len(vecs), want)
	}
	// The baseline must detect all single faults too.
	s := sim.MustNew(a)
	for _, f := range sim.AllSingleFaults(a) {
		if !s.Detects(vecs, []sim.Fault{f}) {
			t.Errorf("baseline misses %v", f)
		}
	}
}

func TestCampaignSeries(t *testing.T) {
	c, err := FindCase("5x5")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Row(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	series, err := CampaignSeries(context.Background(), ts, 200, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series entries", len(series))
	}
	for k, r := range series {
		if r.Detected != r.Trials {
			t.Errorf("k=%d: %d/%d detected; escapes %v", k+1, r.Detected, r.Trials, r.Escapes)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all five arrays")
	}
	out, err := Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"5x5", "10x10", "15x15", "20x20", "30x30", "nv"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}
