// Package bench holds the evaluation harness: the five benchmark FPVAs of
// Table I (reconstructed with the paper's exact valve counts), the
// one-valve-at-a-time baseline of Sec. IV, the Table-I row generator, and
// the random fault-injection experiment.
//
// The paper's exact channel/obstacle layouts are not published; the
// reconstructions here remove exactly the same number of valves from the
// full grid (full - nv = 1, 4, 9, 16, 36) using long transportation
// channels and obstacle cells, with the 20x20 array carrying the "three
// channels and two obstacles" that Fig. 9 describes.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Case is one Table I row: the array builder plus the paper's reported
// numbers for comparison.
type Case struct {
	Name    string
	Dim     int
	Top     string // hierarchy top level, e.g. "2x2"
	PaperNV int
	PaperNP int
	PaperNC int
	PaperNL int
	PaperN  int
	Build   func() (*grid.Array, error)
}

// Table1Cases returns the five evaluation arrays.
func Table1Cases() []Case {
	return []Case{
		{
			Name: "5x5", Dim: 5, Top: "1x1",
			PaperNV: 39, PaperNP: 5, PaperNC: 8, PaperNL: 4, PaperN: 17,
			Build: func() (*grid.Array, error) {
				a, err := grid.NewStandard(5, 5)
				if err != nil {
					return nil, err
				}
				// One short channel: full 40 - 1 = 39 valves.
				if _, err := a.SetChannelH(2, 1, 2); err != nil {
					return nil, err
				}
				return a, nil
			},
		},
		{
			Name: "10x10", Dim: 10, Top: "2x2",
			PaperNV: 176, PaperNP: 4, PaperNC: 18, PaperNL: 4, PaperN: 26,
			Build: func() (*grid.Array, error) {
				a, err := grid.NewStandard(10, 10)
				if err != nil {
					return nil, err
				}
				// One transportation channel: 180 - 4 = 176.
				if _, err := a.SetChannelH(4, 2, 6); err != nil {
					return nil, err
				}
				return a, nil
			},
		},
		{
			Name: "15x15", Dim: 15, Top: "3x3",
			PaperNV: 411, PaperNP: 8, PaperNC: 28, PaperNL: 8, PaperN: 44,
			Build: func() (*grid.Array, error) {
				a, err := grid.NewStandard(15, 15)
				if err != nil {
					return nil, err
				}
				// One obstacle (4 valves) + one channel (5): 420 - 9 = 411.
				if _, err := a.SetObstacle(7, 7); err != nil {
					return nil, err
				}
				if _, err := a.SetChannelH(3, 2, 7); err != nil {
					return nil, err
				}
				return a, nil
			},
		},
		{
			Name: "20x20", Dim: 20, Top: "4x4",
			PaperNV: 744, PaperNP: 16, PaperNC: 38, PaperNL: 16, PaperN: 70,
			Build: func() (*grid.Array, error) {
				a, err := grid.NewStandard(20, 20)
				if err != nil {
					return nil, err
				}
				// Fig. 9's three channels and two obstacles:
				// 760 - (4+4) - (3+3+2) = 744.
				for _, f := range []func() (int, error){
					func() (int, error) { return a.SetObstacle(5, 5) },
					func() (int, error) { return a.SetObstacle(14, 14) },
					func() (int, error) { return a.SetChannelH(2, 3, 6) },
					func() (int, error) { return a.SetChannelV(10, 8, 11) },
					func() (int, error) { return a.SetChannelH(16, 10, 12) },
				} {
					if _, err := f(); err != nil {
						return nil, err
					}
				}
				return a, nil
			},
		},
		{
			Name: "30x30", Dim: 30, Top: "6x6",
			PaperNV: 1704, PaperNP: 20, PaperNC: 58, PaperNL: 20, PaperN: 98,
			Build: func() (*grid.Array, error) {
				a, err := grid.NewStandard(30, 30)
				if err != nil {
					return nil, err
				}
				// Two obstacles (8) + three channels (10+10+8):
				// 1740 - 36 = 1704.
				for _, f := range []func() (int, error){
					func() (int, error) { return a.SetObstacle(7, 7) },
					func() (int, error) { return a.SetObstacle(20, 20) },
					func() (int, error) { return a.SetChannelH(10, 2, 12) },
					func() (int, error) { return a.SetChannelV(15, 12, 22) },
					func() (int, error) { return a.SetChannelH(25, 15, 23) },
				} {
					if _, err := f(); err != nil {
						return nil, err
					}
				}
				return a, nil
			},
		},
	}
}

// FindCase returns the Table I case with the given name.
func FindCase(name string) (Case, error) {
	for _, c := range Table1Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("bench: unknown case %q", name)
}

// Row generates the full test set for one case (hierarchical 5x5 blocks, as
// in the paper's evaluation) and returns the test set with timing stats.
func Row(ctx context.Context, c Case) (*core.TestSet, error) {
	a, err := c.Build()
	if err != nil {
		return nil, err
	}
	if got := a.NumNormal(); got != c.PaperNV {
		return nil, fmt.Errorf("bench: %s reconstruction has nv=%d, paper has %d",
			c.Name, got, c.PaperNV)
	}
	return core.Generate(ctx, a, core.Config{Hierarchical: true})
}

// Table1 renders the measured-vs-paper comparison table.
func Table1(ctx context.Context) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %6s %6s | %5s %5s %5s %6s | %5s %5s %5s %6s | %10s\n",
		"Array", "nv", "Top",
		"np", "nc", "nl", "N",
		"np*", "nc*", "nl*", "N*", "T")
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	for _, c := range Table1Cases() {
		ts, err := Row(ctx, c)
		if err != nil {
			return "", err
		}
		s := ts.Stats
		fmt.Fprintf(&b, "%-7s %6d %6s | %5d %5d %5d %6d | %5d %5d %5d %6d | %10v\n",
			c.Name, s.NV, c.Top,
			s.NP, s.NC, s.NL, s.N,
			c.PaperNP, c.PaperNC, c.PaperNL, c.PaperN,
			s.T.Round(time.Millisecond))
	}
	fmt.Fprintln(&b, "(*) columns are the paper's Table I values; measured layouts match nv exactly,")
	fmt.Fprintln(&b, "    channel/obstacle placement is reconstructed (see DESIGN.md).")
	return b.String(), nil
}

// BaselineCount is the Sec. IV baseline cost: one valve switched per test,
// two tests (open + closed) per valve.
func BaselineCount(a *grid.Array) int { return 2 * a.NumNormal() }

// BaselineVectors materializes the baseline test set: for every Normal
// valve one dedicated flow-path vector through it (stuck-at-0 test) and one
// dedicated cut vector containing it (stuck-at-1 test). 2*nv vectors — the
// "squared complexity" the paper compares against.
func BaselineVectors(a *grid.Array) ([]*sim.Vector, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cutThrough, err := cutset.ThroughBuilder(a)
	if err != nil {
		return nil, err
	}
	rt := flowpath.NewRouter(a)
	var out []*sim.Vector
	for _, v := range a.NormalValves() {
		if p := rt.ThroughAvoiding(v, nil); p != nil {
			out = append(out, p.Vector(a, fmt.Sprintf("base-open-%d", v)))
		}
		if c := cutThrough(v); c != nil {
			vec := c.Vector(a, fmt.Sprintf("base-closed-%d", v))
			out = append(out, vec)
		}
	}
	return out, nil
}

// CampaignSeries runs the Sec. IV experiment: for k = 1..maxFaults random
// faults, trials injections each, reporting detection per k. The vector set
// is compiled once and shared by all maxFaults campaigns, each of which
// shards its trials across all CPUs.
func CampaignSeries(ctx context.Context, ts *core.TestSet, trials, maxFaults int, seed int64) ([]sim.CampaignResult, error) {
	cv, err := ts.Compile()
	if err != nil {
		return nil, err
	}
	var out []sim.CampaignResult
	for k := 1; k <= maxFaults; k++ {
		res, err := cv.RunCampaign(ctx, sim.CampaignConfig{
			Trials: trials, NumFaults: k, Seed: seed + int64(k),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
