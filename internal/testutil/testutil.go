// Package testutil holds small helpers shared by tests, in particular the
// stdout-capture harness the examples' smoke tests run main() under.
package testutil

import (
	"io"
	"os"
	"testing"
)

// CaptureMain redirects os.Stdout, runs fn (an example's main), and returns
// everything it printed. os.Stdout is restored even if fn panics.
func CaptureMain(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
