// Package core is the top-level test-generation API: it combines the three
// vector families of the paper — flow paths (stuck-at-0), cut-sets
// (stuck-at-1) and control-leakage vectors — into one compact test set for
// an FPVA, and verifies the paper's detection guarantees against the fault
// simulator.
//
// Typical use:
//
//	a := grid.MustNewStandard(10, 10)
//	ts, err := core.Generate(ctx, a, core.Config{Hierarchical: true})
//	...
//	res, err := ts.Campaign(ctx, sim.CampaignConfig{Trials: 10000, NumFaults: 2, Seed: 1})
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/leakage"
	"repro/internal/sim"
)

// Phase names one stage of the generation pipeline, for progress reporting.
type Phase int

const (
	// PhaseFlowPaths is the stuck-at-0 flow-path family (Sec. III-B).
	PhaseFlowPaths Phase = iota
	// PhaseCutSets is the stuck-at-1 cut-set family (Sec. III-C).
	PhaseCutSets
	// PhaseLeakage is the control-layer leakage family (the nl column).
	PhaseLeakage
)

func (p Phase) String() string {
	switch p {
	case PhaseFlowPaths:
		return "flow-paths"
	case PhaseCutSets:
		return "cut-sets"
	case PhaseLeakage:
		return "leakage"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Config selects generation strategy.
type Config struct {
	// Hierarchical enables the paper's 5x5 subblock decomposition
	// (Sec. III-B-4). BlockSize overrides the block edge (default 5).
	Hierarchical bool
	BlockSize    int
	// FlowPath / CutSet override the engine defaults for ablation studies.
	FlowPath flowpath.Options
	CutSet   cutset.Options
	// SkipLeakage omits the control-layer leakage vectors (the paper's
	// optional nl family).
	SkipLeakage bool
	// Workers sets the branch-and-bound worker pool for the ILP engines
	// (results are bit-identical for any value); it fills in the
	// FlowPath.ILP / CutSet.ILP knobs when those are zero. <= 1 is serial.
	Workers int
	// OnPhase, when non-nil, is called synchronously on the Generate
	// goroutine as each pipeline phase starts (done=false) and finishes
	// (done=true).
	OnPhase func(p Phase, done bool)
}

// Stats summarizes a generated test set in the shape of a Table I row.
type Stats struct {
	NV         int           // valves under test
	NP, NC, NL int           // vector counts per family
	N          int           // total vectors
	TP, TC, TL time.Duration // generation times per family
	T          time.Duration // total generation time
	// PathILPNonOptimal / CutILPNonOptimal count ILP solves that hit the
	// node budget: the accepted paths/cuts are feasible but not proven
	// optimal. Zero when the exact engines finished (or were not used).
	PathILPNonOptimal, CutILPNonOptimal int
	// ILPSolves / ILPNodes / SolverWall aggregate the branch-and-bound
	// accounting across both ILP engines (zero when the combinatorial
	// engines served every family).
	ILPSolves, ILPNodes int
	SolverWall          time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("nv=%d np=%d nc=%d nl=%d N=%d (tp=%v tc=%v tl=%v T=%v)",
		s.NV, s.NP, s.NC, s.NL, s.N, s.TP.Round(time.Microsecond),
		s.TC.Round(time.Microsecond), s.TL.Round(time.Microsecond),
		s.T.Round(time.Microsecond))
}

// TestSet is a complete generated test set for one array.
type TestSet struct {
	Array       *grid.Array
	Paths       []*flowpath.Path
	Cuts        []*cutset.Cut
	LeakPairs   []leakage.Pair
	PathVectors []*sim.Vector
	CutVectors  []*sim.Vector
	LeakVectors []*sim.Vector
	// UncoveredPath / UncoveredCut list valves the respective family could
	// not reach (only possible when obstacles wall a valve in).
	UncoveredPath []grid.ValveID
	UncoveredCut  []grid.ValveID
	Stats         Stats
}

// AllVectors returns the combined vector set in application order: paths,
// cuts, leakage.
func (ts *TestSet) AllVectors() []*sim.Vector {
	out := make([]*sim.Vector, 0, len(ts.PathVectors)+len(ts.CutVectors)+len(ts.LeakVectors))
	out = append(out, ts.PathVectors...)
	out = append(out, ts.CutVectors...)
	out = append(out, ts.LeakVectors...)
	return out
}

// Generate runs the full test-generation flow on the array. Cancelling ctx
// (nil means context.Background()) aborts the active phase promptly and
// returns an error wrapping ctx.Err().
func Generate(ctx context.Context, a *grid.Array, cfg Config) (*TestSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	phase := func(p Phase, done bool) {
		if cfg.OnPhase != nil {
			cfg.OnPhase(p, done)
		}
	}
	fpOpt := cfg.FlowPath
	if cfg.Hierarchical && fpOpt.StripRows == 0 && fpOpt.StripCols == 0 {
		bs := cfg.BlockSize
		if bs <= 0 {
			bs = 5
		}
		fpOpt.StripRows, fpOpt.StripCols = bs, bs
	}
	csOpt := cfg.CutSet
	if cfg.Workers > 1 {
		if fpOpt.ILP.Workers == 0 {
			fpOpt.ILP.Workers = cfg.Workers
		}
		if csOpt.ILP.Workers == 0 {
			csOpt.ILP.Workers = cfg.Workers
		}
	}
	ts := &TestSet{Array: a}
	ts.Stats.NV = a.NumNormal()

	phase(PhaseFlowPaths, false)
	t0 := time.Now()
	fp, err := flowpath.Generate(ctx, a, fpOpt)
	if err != nil {
		return nil, fmt.Errorf("core: flow paths: %w", err)
	}
	ts.Stats.TP = time.Since(t0)
	ts.Paths = fp.Paths
	ts.PathVectors = fp.Vectors(a)
	ts.UncoveredPath = fp.Uncovered
	ts.Stats.PathILPNonOptimal = fp.ILP.NonOptimal
	ts.Stats.ILPSolves += fp.ILP.Solves
	ts.Stats.ILPNodes += fp.ILP.Nodes
	ts.Stats.SolverWall += fp.ILP.Wall
	phase(PhaseFlowPaths, true)

	phase(PhaseCutSets, false)
	t0 = time.Now()
	cs, err := cutset.Generate(ctx, a, csOpt)
	if err != nil {
		return nil, fmt.Errorf("core: cut-sets: %w", err)
	}
	ts.Stats.TC = time.Since(t0)
	ts.Cuts = cs.Cuts
	ts.CutVectors = cs.Vectors(a)
	ts.UncoveredCut = cs.Uncovered
	ts.Stats.CutILPNonOptimal = cs.ILP.NonOptimal
	ts.Stats.ILPSolves += cs.ILP.Solves
	ts.Stats.ILPNodes += cs.ILP.Nodes
	ts.Stats.SolverWall += cs.ILP.Wall
	phase(PhaseCutSets, true)

	if !cfg.SkipLeakage {
		phase(PhaseLeakage, false)
		t0 = time.Now()
		lk, err := leakage.Generate(ctx, a, ts.PathVectors)
		if err != nil {
			return nil, fmt.Errorf("core: leakage: %w", err)
		}
		ts.Stats.TL = time.Since(t0)
		ts.LeakPairs = lk.Pairs
		ts.LeakVectors = lk.Vectors
		phase(PhaseLeakage, true)
	}
	ts.Stats.NP = len(ts.PathVectors)
	ts.Stats.NC = len(ts.CutVectors)
	ts.Stats.NL = len(ts.LeakVectors)
	ts.Stats.N = ts.Stats.NP + ts.Stats.NC + ts.Stats.NL
	ts.Stats.T = ts.Stats.TP + ts.Stats.TC + ts.Stats.TL
	return ts, nil
}

// Compile binds the full vector set to a fresh simulator with its
// fault-free behaviour precomputed. All verification and campaign entry
// points below go through this, so golden readings are computed exactly once
// per vector no matter how many trials or fault pairs are evaluated.
func (ts *TestSet) Compile() (*sim.CompiledVectors, error) {
	s, err := sim.New(ts.Array)
	if err != nil {
		return nil, err
	}
	return s.Compile(ts.AllVectors()), nil
}

// Campaign runs a random fault-injection campaign (the paper's Sec. IV
// study) against the full vector set. Cancelling ctx returns the partial
// result together with ctx.Err().
func (ts *TestSet) Campaign(ctx context.Context, cfg sim.CampaignConfig) (sim.CampaignResult, error) {
	cv, err := ts.Compile()
	if err != nil {
		return sim.CampaignResult{}, err
	}
	return cv.RunCampaign(ctx, cfg)
}

// VerifySingleFaults exhaustively checks every stuck-at fault on every
// Normal valve and returns the undetected ones. On a fully covered array
// the result is empty — the paper's single-fault guarantee.
func (ts *TestSet) VerifySingleFaults(ctx context.Context) ([]sim.Fault, error) {
	cv, err := ts.Compile()
	if err != nil {
		return nil, err
	}
	singles := sim.AllSingleFaults(ts.Array)
	sets := make([][]sim.Fault, len(singles))
	for i := range singles {
		sets[i] = singles[i : i+1]
	}
	// On cancellation DetectsBatch trims its result to the evaluated prefix
	// and returns ctx.Err(); bailing out here means an unevaluated fault can
	// never be misreported as covered.
	det, err := cv.DetectsBatch(ctx, sets, 0)
	if err != nil {
		return nil, err
	}
	var escaped []sim.Fault
	for i, d := range det {
		if !d {
			escaped = append(escaped, singles[i])
		}
	}
	return escaped, nil
}

// VerifyDoubleFaults exhaustively checks every pair of stuck-at faults on
// distinct valves (the paper's two-fault guarantee, Sec. III-A/III-C) and
// returns undetected pairs. The pair sweep is sharded across all CPUs
// against one compiled vector set; cost is O(nv^2) simulations, intended
// for the small arrays. maxPairs > 0 truncates the scan for spot checks.
func (ts *TestSet) VerifyDoubleFaults(ctx context.Context, maxPairs int) ([][2]sim.Fault, error) {
	cv, err := ts.Compile()
	if err != nil {
		return nil, err
	}
	singles := sim.AllSingleFaults(ts.Array)
	// Stream the O(nv^2) pair space through fixed-size windows: each window
	// is evaluated in parallel, but only one window of pairs is ever held in
	// memory, and escape order stays the sequential scan order.
	const window = 4096
	pairs := make([][2]sim.Fault, 0, window)
	sets := make([][]sim.Fault, 0, window)
	var escaped [][2]sim.Fault
	flush := func() error {
		// As in VerifySingleFaults: a cancelled batch returns only the
		// evaluated prefix, and the error path discards the whole window.
		det, err := cv.DetectsBatch(ctx, sets, 0)
		if err != nil {
			return err
		}
		for i, d := range det {
			if !d {
				escaped = append(escaped, pairs[i])
			}
		}
		pairs, sets = pairs[:0], sets[:0]
		return nil
	}
	checked := 0
	for i, f1 := range singles {
		for _, f2 := range singles[i+1:] {
			if f1.A == f2.A {
				continue // contradictory faults on one valve
			}
			if maxPairs > 0 && checked >= maxPairs {
				if err := flush(); err != nil {
					return nil, err
				}
				return escaped, nil
			}
			checked++
			pairs = append(pairs, [2]sim.Fault{f1, f2})
			sets = append(sets, []sim.Fault{f1, f2})
			if len(sets) == window {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return escaped, nil
}
