package core

import (
	"context"
	"testing"

	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/ilp"
)

// TestSolverWorkersBitIdenticalEndToEnd pins the parallel-solver contract
// at the generator level: the exact ILP engines must emit byte-for-byte
// identical paths and cuts for any branch-and-bound worker count, because
// the service cache deliberately shares one entry across worker settings.
func TestSolverWorkersBitIdenticalEndToEnd(t *testing.T) {
	a, err := grid.NewStandard(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelH(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	type run struct {
		paths [][]grid.ValveID
		cuts  [][]grid.ValveID
	}
	generate := func(workers int) run {
		t.Helper()
		fp, err := flowpath.Generate(context.Background(), a, flowpath.Options{
			Engine: flowpath.EngineILPIterative,
			ILP:    ilp.Options{Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d flowpath: %v", workers, err)
		}
		cs, err := cutset.Generate(context.Background(), a, cutset.Options{
			Engine: cutset.EngineILP,
			ILP:    ilp.Options{Workers: workers},
		})
		if err != nil {
			t.Fatalf("workers=%d cutset: %v", workers, err)
		}
		var r run
		for _, p := range fp.Paths {
			r.paths = append(r.paths, append([]grid.ValveID(nil), p.Valves...))
		}
		for _, c := range cs.Cuts {
			r.cuts = append(r.cuts, append([]grid.ValveID(nil), c.Valves...))
		}
		return r
	}
	base := generate(1)
	if len(base.paths) == 0 || len(base.cuts) == 0 {
		t.Fatalf("degenerate baseline: %d paths, %d cuts", len(base.paths), len(base.cuts))
	}
	for _, workers := range []int{2, 4} {
		got := generate(workers)
		if len(got.paths) != len(base.paths) {
			t.Fatalf("workers=%d: %d paths vs %d serial", workers, len(got.paths), len(base.paths))
		}
		for i := range base.paths {
			if len(got.paths[i]) != len(base.paths[i]) {
				t.Fatalf("workers=%d path %d: %v vs %v", workers, i, got.paths[i], base.paths[i])
			}
			for k := range base.paths[i] {
				if got.paths[i][k] != base.paths[i][k] {
					t.Fatalf("workers=%d path %d: %v vs %v", workers, i, got.paths[i], base.paths[i])
				}
			}
		}
		if len(got.cuts) != len(base.cuts) {
			t.Fatalf("workers=%d: %d cuts vs %d serial", workers, len(got.cuts), len(base.cuts))
		}
		for i := range base.cuts {
			if len(got.cuts[i]) != len(base.cuts[i]) {
				t.Fatalf("workers=%d cut %d: %v vs %v", workers, i, got.cuts[i], base.cuts[i])
			}
			for k := range base.cuts[i] {
				if got.cuts[i][k] != base.cuts[i][k] {
					t.Fatalf("workers=%d cut %d: %v vs %v", workers, i, got.cuts[i], base.cuts[i])
				}
			}
		}
	}
}
