package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

// randomTestArray builds a small random array with optional transportation
// channels and obstacle cells, FPVA-style. Returns nil when the random
// layout fails validation (caller retries).
func randomTestArray(rng *rand.Rand) *grid.Array {
	nr := 3 + rng.Intn(2)
	nc := 3 + rng.Intn(2)
	a, err := grid.NewStandard(nr, nc)
	if err != nil {
		return nil
	}
	if rng.Intn(2) == 0 { // a horizontal channel segment
		r := rng.Intn(nr)
		c0 := rng.Intn(nc - 2)
		if _, err := a.SetChannelH(r, c0, c0+1+rng.Intn(nc-2-c0)); err != nil {
			return nil
		}
	}
	if rng.Intn(2) == 0 { // an obstacle cell
		if _, err := a.SetObstacle(rng.Intn(nr), rng.Intn(nc)); err != nil {
			return nil
		}
	}
	if a.Validate() != nil {
		return nil
	}
	return a
}

func coveredSet(a *grid.Array, paths []*flowpath.Path) map[grid.ValveID]bool {
	out := make(map[grid.ValveID]bool)
	for _, p := range paths {
		for _, id := range p.CoveredNormal(a) {
			out[id] = true
		}
	}
	return out
}

// TestDifferentialEngines cross-checks the serpentine and exact ILP
// flow-path engines on randomized arrays: both must produce structurally
// valid path vectors, identical covered-valve sets, and — embedded in a
// full test set — zero single-fault escapes.
func TestDifferentialEngines(t *testing.T) {
	const wantArrays = 50
	rng := rand.New(rand.NewSource(2017))
	tried := 0
	for checked := 0; checked < wantArrays; {
		tried++
		if tried > 40*wantArrays {
			t.Fatalf("could not generate %d coverable arrays (%d checked)", wantArrays, checked)
		}
		a := randomTestArray(rng)
		if a == nil {
			continue
		}
		serp, err := flowpath.Generate(context.Background(), a, flowpath.Options{Engine: flowpath.EngineSerpentine})
		if err != nil {
			t.Fatalf("array %v: serpentine: %v", a, err)
		}
		exact, err := flowpath.Generate(context.Background(), a, flowpath.Options{
			Engine: flowpath.EngineILPIterative,
			ILP:    ilp.Options{Workers: 2},
		})
		if err != nil {
			t.Fatalf("array %v: ILP iterative: %v", a, err)
		}
		if exact.ILP.NonOptimal > 0 {
			t.Fatalf("array %v: %d non-optimal ILP solves", a, exact.ILP.NonOptimal)
		}
		// Identical covered-valve sets: the exact engine must reach exactly
		// the valves the serpentine+patch construction reaches.
		cs, ce := coveredSet(a, serp.Paths), coveredSet(a, exact.Paths)
		if len(cs) != len(ce) {
			t.Fatalf("array %v: serpentine covers %d valves, ILP covers %d", a, len(cs), len(ce))
		}
		for id := range cs {
			if !ce[id] {
				t.Fatalf("array %v: valve %d covered by serpentine only", a, id)
			}
		}
		// Every path from both engines must be a structurally valid vector.
		s := sim.MustNew(a)
		for _, res := range []*flowpath.Result{serp, exact} {
			for i, p := range res.Paths {
				if err := s.VerifyPathVector(p.Vector(a, "diff")); err != nil {
					t.Fatalf("array %v: path %d invalid: %v", a, i, err)
				}
			}
		}
		// Keep only fully coverable arrays for the end-to-end guarantee.
		if len(serp.Uncovered) > 0 || len(exact.Uncovered) > 0 {
			continue
		}
		// Zero single-fault escapes with either engine's test set.
		for _, engine := range []flowpath.Engine{flowpath.EngineSerpentine, flowpath.EngineILPIterative} {
			ts, err := Generate(context.Background(), a, Config{
				FlowPath: flowpath.Options{Engine: engine, ILP: ilp.Options{Workers: 2}},
			})
			if err != nil {
				t.Fatalf("array %v engine %v: %v", a, engine, err)
			}
			if len(ts.UncoveredPath) > 0 || len(ts.UncoveredCut) > 0 {
				continue // cut family may be limited by the layout; not this test's subject
			}
			escapes, err := ts.VerifySingleFaults(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(escapes) > 0 {
				t.Fatalf("array %v engine %v: %d single-fault escapes: %v", a, engine, len(escapes), escapes)
			}
		}
		checked++
	}
}
