package core

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

func gen(t *testing.T, a *grid.Array, cfg Config) *TestSet {
	t.Helper()
	ts, err := Generate(context.Background(), a, cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ts
}

func TestGenerateStats(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	ts := gen(t, a, Config{})
	if ts.Stats.NV != 40 {
		t.Errorf("NV=%d, want 40", ts.Stats.NV)
	}
	if ts.Stats.NP == 0 || ts.Stats.NC == 0 {
		t.Errorf("empty family: %+v", ts.Stats)
	}
	if ts.Stats.N != ts.Stats.NP+ts.Stats.NC+ts.Stats.NL {
		t.Errorf("N mismatch: %+v", ts.Stats)
	}
	if got := len(ts.AllVectors()); got != ts.Stats.N {
		t.Errorf("AllVectors=%d, N=%d", got, ts.Stats.N)
	}
	if ts.Stats.String() == "" {
		t.Error("empty stats string")
	}
	if len(ts.UncoveredPath) > 0 || len(ts.UncoveredCut) > 0 {
		t.Errorf("uncovered on a full array: %v / %v", ts.UncoveredPath, ts.UncoveredCut)
	}
}

func TestSkipLeakage(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	ts := gen(t, a, Config{SkipLeakage: true})
	if ts.Stats.NL != 0 || len(ts.LeakVectors) != 0 {
		t.Error("leakage vectors generated despite SkipLeakage")
	}
}

func TestHierarchicalConfig(t *testing.T) {
	a := grid.MustNewStandard(10, 10)
	direct := gen(t, a, Config{})
	hier := gen(t, a, Config{Hierarchical: true})
	// Fig. 8: hierarchical uses at least as many paths as direct.
	if hier.Stats.NP < direct.Stats.NP {
		t.Errorf("hierarchical NP=%d < direct NP=%d", hier.Stats.NP, direct.Stats.NP)
	}
	if hier.Stats.NP != 4 {
		t.Errorf("hierarchical 10x10 NP=%d, want 4 (Fig. 8b)", hier.Stats.NP)
	}
}

// TestSingleFaultGuarantee: every single stuck-at fault on small arrays
// must be detected.
func TestSingleFaultGuarantee(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		a := grid.MustNewStandard(n, n)
		ts := gen(t, a, Config{})
		escaped, err := ts.VerifySingleFaults(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(escaped) > 0 {
			t.Errorf("%dx%d: undetected single faults: %v", n, n, escaped)
		}
	}
}

// TestTwoFaultGuarantee is the paper's headline guarantee: any two faults
// are detected. Exhaustive on 4x4 (24 valves -> 48 single faults -> ~1104
// pairs).
func TestTwoFaultGuarantee(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	ts := gen(t, a, Config{})
	escaped, err := ts.VerifyDoubleFaults(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(escaped) > 0 {
		t.Errorf("undetected fault pairs: %d, first: %v", len(escaped), escaped[0])
	}
}

// TestTwoFaultGuaranteeWithObstacles repeats the exhaustive pair check on
// an irregular array.
func TestTwoFaultGuaranteeWithObstacles(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	if _, err := a.SetObstacle(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelH(4, 0, 2); err != nil {
		t.Fatal(err)
	}
	ts := gen(t, a, Config{})
	if len(ts.UncoveredPath) > 0 || len(ts.UncoveredCut) > 0 {
		t.Fatalf("uncovered valves: %v / %v", ts.UncoveredPath, ts.UncoveredCut)
	}
	escaped, err := ts.VerifyDoubleFaults(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(escaped) > 0 {
		t.Errorf("undetected fault pairs: %d, first: %v", len(escaped), escaped[0])
	}
}

// TestCampaign mirrors the paper's Sec. IV experiment at reduced scale:
// random 1..5-fault injections must all be detected.
func TestCampaign(t *testing.T) {
	a := grid.MustNewStandard(6, 6)
	ts := gen(t, a, Config{})
	for k := 1; k <= 5; k++ {
		res, err := ts.Campaign(context.Background(), sim.CampaignConfig{Trials: 500, NumFaults: k, Seed: int64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected != res.Trials {
			t.Errorf("k=%d: detected %d/%d; escapes: %v",
				k, res.Detected, res.Trials, res.Escapes)
		}
	}
}

func TestCampaignWithLeakFaults(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	ts := gen(t, a, Config{})
	pairs := make([][2]grid.ValveID, len(ts.LeakPairs))
	for i, p := range ts.LeakPairs {
		pairs[i] = [2]grid.ValveID{p[0], p[1]}
	}
	res, err := ts.Campaign(context.Background(), sim.CampaignConfig{
		Trials: 300, NumFaults: 2, Seed: 7, LeakPairs: pairs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != res.Trials {
		t.Errorf("detected %d/%d; escapes: %v", res.Detected, res.Trials, res.Escapes)
	}
}

func TestGenerateRejectsInvalidArray(t *testing.T) {
	if _, err := Generate(context.Background(), grid.MustNew(3, 3), Config{}); err == nil {
		t.Error("want error")
	}
}

func TestVerifyDoubleFaultsTruncation(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	ts := gen(t, a, Config{})
	if _, err := ts.VerifyDoubleFaults(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
}
