// Package grid models a Fully Programmable Valve Array (FPVA): a regular
// lattice of fluid cells separated by micro-valves, with pressure ports on
// the chip boundary.
//
// Geometry. Cells are indexed (r, c) with 0 <= r < NR and 0 <= c < NC.
// Valves sit on lattice edges:
//
//   - a horizontal-flow valve H(r, c) separates cell (r, c-1) from cell
//     (r, c) for 1 <= c <= NC-1; H(r, 0) and H(r, NC) separate the row's
//     first/last cell from the chip exterior;
//   - a vertical-flow valve V(r, c) separates cell (r-1, c) from cell
//     (r, c) for 1 <= r <= NR-1; V(0, c) and V(NR, c) face the exterior.
//
// Every boundary edge is a Wall (permanently closed) unless a pressure Port
// is attached to it, in which case it is a permanent opening. Interior edges
// are Normal valves by default; they may be declared Channel (no valve is
// built there, fluid always passes — the paper's "fluidic seas" / long
// transportation channels) or become Walls because an adjacent cell is an
// Obstacle. Only Normal valves are units under test.
package grid

import (
	"fmt"
	"sync/atomic"
)

// Orient distinguishes the two valve orientations on the lattice.
type Orient uint8

const (
	// Horizontal marks a valve crossed by horizontal (left-right) flow.
	Horizontal Orient = iota
	// Vertical marks a valve crossed by vertical (top-bottom) flow.
	Vertical
)

func (o Orient) String() string {
	if o == Horizontal {
		return "H"
	}
	return "V"
}

// Kind classifies a lattice edge.
type Kind uint8

const (
	// Normal is a real, controllable valve — a unit under test.
	Normal Kind = iota
	// Channel is an interior edge where no valve is built; fluid always
	// passes. The paper calls these transportation channels.
	Channel
	// Wall is a permanently closed edge: the chip boundary, or an edge
	// adjacent to an obstacle area.
	Wall
	// PortOpen is a boundary edge holding a pressure port; it is a
	// permanent opening between the exterior and the adjacent cell.
	PortOpen
)

func (k Kind) String() string {
	switch k {
	case Normal:
		return "normal"
	case Channel:
		return "channel"
	case Wall:
		return "wall"
	case PortOpen:
		return "port"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ValveID is a dense index over all lattice edges of an Array, including
// boundary edges. IDs are stable for a given array dimension.
type ValveID int

// NoValve is returned by lookups that fall outside the lattice.
const NoValve ValveID = -1

// CellID is a dense index over lattice cells: r*NC + c.
type CellID int

// NoCell marks the chip exterior in edge-endpoint queries.
const NoCell CellID = -1

// Valve describes one lattice edge.
type Valve struct {
	ID     ValveID
	Orient Orient
	// R, C are the lattice coordinates as defined in the package comment.
	R, C int
	Kind Kind
}

// Port is a pressure connection on the chip boundary: either a pressure
// source or a pressure meter (sink).
type Port struct {
	Name   string
	Valve  ValveID // the boundary edge the port occupies
	Source bool    // true: pressure source; false: pressure meter (sink)
}

// Array is an FPVA instance: dimensions, per-edge kinds, obstacle cells and
// boundary ports. The zero value is not usable; construct with New.
type Array struct {
	nr, nc   int
	kinds    []Kind
	obstacle []bool
	ports    []Port

	// normal caches NormalValves; mutators invalidate it. The pointer is
	// atomic so concurrent readers (campaign workers, verify sweeps sharing
	// one array) may trigger the lazy fill without a data race.
	normal atomic.Pointer[[]ValveID]
}

// New returns a full nr x nc array: all interior edges are Normal valves,
// all boundary edges are Walls, and there are no ports yet.
func New(nr, nc int) (*Array, error) {
	if nr < 1 || nc < 1 {
		return nil, fmt.Errorf("grid: dimensions %dx%d out of range", nr, nc)
	}
	a := &Array{
		nr:       nr,
		nc:       nc,
		kinds:    make([]Kind, nr*(nc+1)+(nr+1)*nc),
		obstacle: make([]bool, nr*nc),
	}
	for id := range a.kinds {
		if a.isBoundary(ValveID(id)) {
			a.kinds[id] = Wall
		}
	}
	return a, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(nr, nc int) *Array {
	a, err := New(nr, nc)
	if err != nil {
		panic(err)
	}
	return a
}

// NR returns the number of cell rows.
func (a *Array) NR() int { return a.nr }

// NC returns the number of cell columns.
func (a *Array) NC() int { return a.nc }

// NumCells returns NR*NC, the cell-index space (obstacle cells included).
func (a *Array) NumCells() int { return a.nr * a.nc }

// NumValves returns the number of lattice edges, boundary edges included.
func (a *Array) NumValves() int { return len(a.kinds) }

func (a *Array) numH() int { return a.nr * (a.nc + 1) }

// HValve returns the ID of horizontal-flow valve H(r, c), or NoValve if the
// coordinates fall outside the lattice.
func (a *Array) HValve(r, c int) ValveID {
	if r < 0 || r >= a.nr || c < 0 || c > a.nc {
		return NoValve
	}
	return ValveID(r*(a.nc+1) + c)
}

// VValve returns the ID of vertical-flow valve V(r, c), or NoValve if the
// coordinates fall outside the lattice.
func (a *Array) VValve(r, c int) ValveID {
	if r < 0 || r > a.nr || c < 0 || c >= a.nc {
		return NoValve
	}
	return ValveID(a.numH() + r*a.nc + c)
}

// Valve returns the full description of edge id. It panics if id is out of
// range.
func (a *Array) Valve(id ValveID) Valve {
	o, r, c := a.locate(id)
	return Valve{ID: id, Orient: o, R: r, C: c, Kind: a.kinds[id]}
}

// Kind returns the kind of edge id.
//
//fpva:allocfree
func (a *Array) Kind(id ValveID) Kind { return a.kinds[id] }

func (a *Array) locate(id ValveID) (Orient, int, int) {
	i := int(id)
	if i < 0 || i >= len(a.kinds) {
		panic(fmt.Sprintf("grid: valve id %d out of range [0,%d)", i, len(a.kinds)))
	}
	if i < a.numH() {
		return Horizontal, i / (a.nc + 1), i % (a.nc + 1)
	}
	i -= a.numH()
	return Vertical, i / a.nc, i % a.nc
}

func (a *Array) isBoundary(id ValveID) bool {
	o, r, c := a.locate(id)
	if o == Horizontal {
		return c == 0 || c == a.nc
	}
	return r == 0 || r == a.nr
}

// IsBoundary reports whether edge id lies on the chip boundary.
func (a *Array) IsBoundary(id ValveID) bool { return a.isBoundary(id) }

// CellIndex returns the dense index of cell (r, c), or NoCell if out of
// range.
func (a *Array) CellIndex(r, c int) CellID {
	if r < 0 || r >= a.nr || c < 0 || c >= a.nc {
		return NoCell
	}
	return CellID(r*a.nc + c)
}

// CellCoords is the inverse of CellIndex.
func (a *Array) CellCoords(id CellID) (r, c int) {
	return int(id) / a.nc, int(id) % a.nc
}

// IsObstacle reports whether cell (r, c) is an obstacle area (no fluid).
func (a *Array) IsObstacle(r, c int) bool {
	id := a.CellIndex(r, c)
	return id != NoCell && a.obstacle[id]
}

// EdgeCells returns the two cells an edge separates, in (left,right) or
// (top,bottom) order. The exterior side of a boundary edge is NoCell.
func (a *Array) EdgeCells(id ValveID) (CellID, CellID) {
	o, r, c := a.locate(id)
	if o == Horizontal {
		return a.CellIndex(r, c-1), a.CellIndex(r, c)
	}
	return a.CellIndex(r-1, c), a.CellIndex(r, c)
}

// IncidentValves returns the four edges around cell (r, c) in the order
// left, right, up, down.
func (a *Array) IncidentValves(r, c int) [4]ValveID {
	return [4]ValveID{
		a.HValve(r, c),
		a.HValve(r, c+1),
		a.VValve(r, c),
		a.VValve(r+1, c),
	}
}

// SetChannelH declares the horizontal edges connecting cells
// (r, c0) .. (r, c1) as a transportation channel: the valves H(r, c0+1) ..
// H(r, c1) are removed (kind Channel). It returns the number of edges that
// changed from Normal to Channel.
func (a *Array) SetChannelH(r, c0, c1 int) (int, error) {
	if c0 >= c1 {
		return 0, fmt.Errorf("grid: channel needs c0 < c1, got %d..%d", c0, c1)
	}
	n := 0
	for c := c0 + 1; c <= c1; c++ {
		id := a.HValve(r, c)
		if id == NoValve || a.isBoundary(id) {
			return n, fmt.Errorf("grid: channel edge H(%d,%d) outside interior", r, c)
		}
		if a.kinds[id] == Normal {
			n++
		}
		a.kinds[id] = Channel
	}
	a.normal.Store(nil)
	return n, nil
}

// SetChannelV declares the vertical edges connecting cells (r0, c) ..
// (r1, c) as a transportation channel, analogously to SetChannelH.
func (a *Array) SetChannelV(c, r0, r1 int) (int, error) {
	if r0 >= r1 {
		return 0, fmt.Errorf("grid: channel needs r0 < r1, got %d..%d", r0, r1)
	}
	n := 0
	for r := r0 + 1; r <= r1; r++ {
		id := a.VValve(r, c)
		if id == NoValve || a.isBoundary(id) {
			return n, fmt.Errorf("grid: channel edge V(%d,%d) outside interior", r, c)
		}
		if a.kinds[id] == Normal {
			n++
		}
		a.kinds[id] = Channel
	}
	a.normal.Store(nil)
	return n, nil
}

// SetObstacle marks cell (r, c) as an obstacle area. All four incident
// edges become Walls. It returns the number of edges that changed from
// Normal to Wall.
func (a *Array) SetObstacle(r, c int) (int, error) {
	id := a.CellIndex(r, c)
	if id == NoCell {
		return 0, fmt.Errorf("grid: obstacle cell (%d,%d) out of range", r, c)
	}
	a.obstacle[id] = true
	n := 0
	for _, v := range a.IncidentValves(r, c) {
		if a.kinds[v] == Normal || a.kinds[v] == Channel {
			if a.kinds[v] == Normal {
				n++
			}
			a.kinds[v] = Wall
		}
	}
	a.normal.Store(nil)
	return n, nil
}

// AddSource attaches a pressure source to boundary edge id.
func (a *Array) AddSource(name string, id ValveID) error {
	return a.addPort(name, id, true)
}

// AddSink attaches a pressure meter to boundary edge id.
func (a *Array) AddSink(name string, id ValveID) error {
	return a.addPort(name, id, false)
}

func (a *Array) addPort(name string, id ValveID, source bool) error {
	if int(id) < 0 || int(id) >= len(a.kinds) {
		return fmt.Errorf("grid: port %q: valve id %d out of range", name, id)
	}
	if !a.isBoundary(id) {
		return fmt.Errorf("grid: port %q: valve %d is not on the boundary", name, id)
	}
	if a.kinds[id] == PortOpen {
		return fmt.Errorf("grid: port %q: boundary edge %d already holds a port", name, id)
	}
	in := a.interiorCell(id)
	if in == NoCell || a.obstacle[in] {
		return fmt.Errorf("grid: port %q: interior cell behind edge %d is an obstacle", name, id)
	}
	a.kinds[id] = PortOpen
	a.ports = append(a.ports, Port{Name: name, Valve: id, Source: source})
	return nil
}

// interiorCell returns the non-exterior endpoint of a boundary edge.
func (a *Array) interiorCell(id ValveID) CellID {
	u, w := a.EdgeCells(id)
	if u == NoCell {
		return w
	}
	return u
}

// InteriorCell exposes the interior endpoint of a boundary edge; it returns
// NoCell if the edge is not on the boundary.
func (a *Array) InteriorCell(id ValveID) CellID {
	if !a.isBoundary(id) {
		return NoCell
	}
	return a.interiorCell(id)
}

// Ports returns the attached ports in attachment order. The returned slice
// must not be modified.
func (a *Array) Ports() []Port { return a.ports }

// Sources returns the pressure-source ports.
func (a *Array) Sources() []Port { return a.filterPorts(true) }

// Sinks returns the pressure-meter ports.
func (a *Array) Sinks() []Port { return a.filterPorts(false) }

func (a *Array) filterPorts(source bool) []Port {
	var out []Port
	for _, p := range a.ports {
		if p.Source == source {
			out = append(out, p)
		}
	}
	return out
}

// NormalValves returns the IDs of all Normal valves — the units under test —
// in increasing ID order. The slice is cached (rebuilt after mutations) and
// must not be modified by the caller; coverage bookkeeping all over the
// generators leans on this being allocation-free.
func (a *Array) NormalValves() []ValveID {
	if p := a.normal.Load(); p != nil {
		return *p
	}
	out := make([]ValveID, 0, len(a.kinds))
	for id, k := range a.kinds {
		if k == Normal {
			out = append(out, ValveID(id))
		}
	}
	a.normal.Store(&out)
	return out
}

// NumNormal returns the count of Normal valves (the paper's nv column).
func (a *Array) NumNormal() int {
	n := 0
	for _, k := range a.kinds {
		if k == Normal {
			n++
		}
	}
	return n
}

// Passable reports whether fluid can ever traverse edge id under some valve
// command: true for Normal, Channel and PortOpen edges, false for Walls.
func (a *Array) Passable(id ValveID) bool { return a.kinds[id] != Wall }

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	b := &Array{
		nr:       a.nr,
		nc:       a.nc,
		kinds:    append([]Kind(nil), a.kinds...),
		obstacle: append([]bool(nil), a.obstacle...),
		ports:    append([]Port(nil), a.ports...),
	}
	return b
}

// Validate checks structural invariants: every port sits on a boundary edge,
// obstacle cells have only Wall edges, and at least one source and one sink
// exist. Generators call this before working on an array.
func (a *Array) Validate() error {
	nsrc, nsink := 0, 0
	for _, p := range a.ports {
		if !a.isBoundary(p.Valve) {
			return fmt.Errorf("grid: port %q on non-boundary edge %d", p.Name, p.Valve)
		}
		if a.kinds[p.Valve] != PortOpen {
			return fmt.Errorf("grid: port %q edge %d has kind %v", p.Name, p.Valve, a.kinds[p.Valve])
		}
		if p.Source {
			nsrc++
		} else {
			nsink++
		}
	}
	if nsrc == 0 {
		return fmt.Errorf("grid: array has no pressure source")
	}
	if nsink == 0 {
		return fmt.Errorf("grid: array has no pressure meter")
	}
	for r := 0; r < a.nr; r++ {
		for c := 0; c < a.nc; c++ {
			if !a.obstacle[a.CellIndex(r, c)] {
				continue
			}
			for _, v := range a.IncidentValves(r, c) {
				if a.kinds[v] != Wall {
					return fmt.Errorf("grid: obstacle cell (%d,%d) has non-wall edge %d (%v)",
						r, c, v, a.kinds[v])
				}
			}
		}
	}
	return nil
}

// String renders a compact one-line summary.
func (a *Array) String() string {
	return fmt.Sprintf("FPVA %dx%d (nv=%d, ports=%d)", a.nr, a.nc, a.NumNormal(), len(a.ports))
}
