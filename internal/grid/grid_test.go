package grid

import (
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	for _, tc := range []struct {
		nr, nc       int
		valves, h, v int
	}{
		{1, 1, 4, 2, 2},
		{2, 2, 12, 6, 6},
		{5, 5, 60, 30, 30},
		{3, 7, 52, 24, 28},
	} {
		a := MustNew(tc.nr, tc.nc)
		if got := a.NumValves(); got != tc.valves {
			t.Errorf("%dx%d: NumValves=%d, want %d", tc.nr, tc.nc, got, tc.valves)
		}
		if got := a.numH(); got != tc.h {
			t.Errorf("%dx%d: numH=%d, want %d", tc.nr, tc.nc, got, tc.h)
		}
	}
	if _, err := New(0, 3); err == nil {
		t.Error("New(0,3): want error")
	}
}

func TestInternalNormalCount(t *testing.T) {
	// A full nr x nc array has nr*(nc-1) + nc*(nr-1) interior Normal valves.
	for _, tc := range []struct{ nr, nc, want int }{
		{5, 5, 40}, {10, 10, 180}, {15, 15, 420}, {20, 20, 760}, {30, 30, 1740},
		{2, 3, 7},
	} {
		a := MustNew(tc.nr, tc.nc)
		if got := a.NumNormal(); got != tc.want {
			t.Errorf("%dx%d: NumNormal=%d, want %d", tc.nr, tc.nc, got, tc.want)
		}
	}
}

func TestValveRoundTrip(t *testing.T) {
	a := MustNew(4, 6)
	for id := 0; id < a.NumValves(); id++ {
		v := a.Valve(ValveID(id))
		var back ValveID
		if v.Orient == Horizontal {
			back = a.HValve(v.R, v.C)
		} else {
			back = a.VValve(v.R, v.C)
		}
		if back != v.ID {
			t.Fatalf("valve %d: round-trip gives %d (orient %v r=%d c=%d)", id, back, v.Orient, v.R, v.C)
		}
	}
}

func TestValveLookupOutOfRange(t *testing.T) {
	a := MustNew(3, 3)
	cases := []ValveID{
		a.HValve(-1, 0), a.HValve(3, 0), a.HValve(0, 4),
		a.VValve(0, -1), a.VValve(4, 0), a.VValve(0, 3),
	}
	for i, id := range cases {
		if id != NoValve {
			t.Errorf("case %d: got %d, want NoValve", i, id)
		}
	}
}

func TestEdgeCells(t *testing.T) {
	a := MustNew(3, 3)
	u, w := a.EdgeCells(a.HValve(1, 1))
	if u != a.CellIndex(1, 0) || w != a.CellIndex(1, 1) {
		t.Errorf("H(1,1): cells %d,%d", u, w)
	}
	u, w = a.EdgeCells(a.HValve(1, 0))
	if u != NoCell || w != a.CellIndex(1, 0) {
		t.Errorf("H(1,0): cells %d,%d, want exterior,cell", u, w)
	}
	u, w = a.EdgeCells(a.VValve(3, 2))
	if u != a.CellIndex(2, 2) || w != NoCell {
		t.Errorf("V(3,2): cells %d,%d, want cell,exterior", u, w)
	}
}

func TestIncidentValvesConsistent(t *testing.T) {
	a := MustNew(4, 5)
	for r := 0; r < a.NR(); r++ {
		for c := 0; c < a.NC(); c++ {
			cell := a.CellIndex(r, c)
			for _, v := range a.IncidentValves(r, c) {
				u, w := a.EdgeCells(v)
				if u != cell && w != cell {
					t.Fatalf("cell (%d,%d): incident valve %d has endpoints %d,%d", r, c, v, u, w)
				}
			}
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	a := MustNew(4, 4)
	if got := a.EdgeBetween(1, 1, 1, 2); got != a.HValve(1, 2) {
		t.Errorf("right neighbour: %d", got)
	}
	if got := a.EdgeBetween(1, 2, 1, 1); got != a.HValve(1, 2) {
		t.Errorf("left neighbour: %d", got)
	}
	if got := a.EdgeBetween(2, 3, 3, 3); got != a.VValve(3, 3) {
		t.Errorf("down neighbour: %d", got)
	}
	if got := a.EdgeBetween(0, 0, 2, 0); got != NoValve {
		t.Errorf("non-adjacent: %d, want NoValve", got)
	}
	if got := a.EdgeBetween(0, 0, 1, 1); got != NoValve {
		t.Errorf("diagonal: %d, want NoValve", got)
	}
}

func TestBoundaryWallsByDefault(t *testing.T) {
	a := MustNew(3, 4)
	for id := 0; id < a.NumValves(); id++ {
		v := ValveID(id)
		if a.IsBoundary(v) && a.Kind(v) != Wall {
			t.Errorf("boundary valve %d has kind %v", id, a.Kind(v))
		}
		if !a.IsBoundary(v) && a.Kind(v) != Normal {
			t.Errorf("interior valve %d has kind %v", id, a.Kind(v))
		}
	}
}

func TestChannels(t *testing.T) {
	a := MustNew(5, 5)
	n, err := a.SetChannelH(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("SetChannelH removed %d valves, want 2", n)
	}
	if a.Kind(a.HValve(2, 2)) != Channel || a.Kind(a.HValve(2, 3)) != Channel {
		t.Error("channel edges not marked")
	}
	if a.NumNormal() != 38 {
		t.Errorf("NumNormal=%d, want 38", a.NumNormal())
	}
	// Idempotent: re-declaring removes nothing further.
	n, err = a.SetChannelH(2, 1, 3)
	if err != nil || n != 0 {
		t.Errorf("re-declare: n=%d err=%v", n, err)
	}
	// Vertical channel.
	n, err = a.SetChannelV(4, 0, 2)
	if err != nil || n != 2 {
		t.Fatalf("SetChannelV: n=%d err=%v", n, err)
	}
	// Errors.
	if _, err := a.SetChannelH(2, 3, 3); err == nil {
		t.Error("empty channel: want error")
	}
	if _, err := a.SetChannelH(0, -1, 1); err == nil {
		t.Error("channel through boundary: want error")
	}
}

func TestObstacle(t *testing.T) {
	a := MustNew(5, 5)
	n, err := a.SetObstacle(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("interior obstacle removed %d valves, want 4", n)
	}
	if !a.IsObstacle(2, 2) {
		t.Error("cell not marked obstacle")
	}
	for _, v := range a.IncidentValves(2, 2) {
		if a.Kind(v) != Wall {
			t.Errorf("incident valve %d kind %v, want Wall", v, a.Kind(v))
		}
	}
	// Corner obstacle: two incident edges were already boundary walls.
	b := MustNew(5, 5)
	n, err = b.SetObstacle(0, 0)
	if err != nil || n != 2 {
		t.Errorf("corner obstacle: n=%d err=%v, want 2", n, err)
	}
	if _, err := b.SetObstacle(9, 9); err == nil {
		t.Error("out-of-range obstacle: want error")
	}
}

func TestPorts(t *testing.T) {
	a := MustNew(4, 4)
	if err := a.AddSource("s", a.HValve(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSink("m", a.HValve(3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSink("dup", a.HValve(0, 0)); err == nil {
		t.Error("duplicate port edge: want error")
	}
	if err := a.AddSink("interior", a.HValve(1, 2)); err == nil {
		t.Error("interior port: want error")
	}
	if got := len(a.Sources()); got != 1 {
		t.Errorf("Sources: %d", got)
	}
	if got := len(a.Sinks()); got != 1 {
		t.Errorf("Sinks: %d", got)
	}
	if got := a.InteriorCell(a.HValve(0, 0)); got != a.CellIndex(0, 0) {
		t.Errorf("InteriorCell: %d", got)
	}
	if got := a.InteriorCell(a.HValve(1, 2)); got != NoCell {
		t.Errorf("InteriorCell of interior edge: %d, want NoCell", got)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPortBehindObstacleRejected(t *testing.T) {
	a := MustNew(3, 3)
	if _, err := a.SetObstacle(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSource("s", a.HValve(0, 0)); err == nil {
		t.Error("port behind obstacle: want error")
	}
}

func TestValidateRequiresPorts(t *testing.T) {
	a := MustNew(3, 3)
	if err := a.Validate(); err == nil {
		t.Error("no ports: want error")
	}
	if err := a.AddSource("s", a.HValve(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err == nil {
		t.Error("no sink: want error")
	}
}

func TestStandardPorts(t *testing.T) {
	a := MustNewStandard(5, 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	src := a.Sources()
	if len(src) != 1 || src[0].Valve != a.HValve(0, 0) {
		t.Errorf("source: %+v", src)
	}
	snk := a.Sinks()
	if len(snk) != 1 || snk[0].Valve != a.HValve(4, 5) {
		t.Errorf("sink: %+v", snk)
	}
}

func TestClone(t *testing.T) {
	a := MustNewStandard(4, 4)
	if _, err := a.SetObstacle(1, 1); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	if _, err := b.SetObstacle(2, 2); err != nil {
		t.Fatal(err)
	}
	if a.IsObstacle(2, 2) {
		t.Error("Clone shares obstacle storage")
	}
	if b.NumNormal() == a.NumNormal() {
		t.Error("Clone did not diverge")
	}
}

func TestPartition(t *testing.T) {
	a := MustNew(10, 10)
	blocks, err := a.Partition(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(blocks[0]) != 2 {
		t.Fatalf("blocks: %dx%d", len(blocks), len(blocks[0]))
	}
	if blocks[1][1] != (Region{5, 5, 10, 10}) {
		t.Errorf("block[1][1] = %v", blocks[1][1])
	}
	// Ragged partition.
	b := MustNew(7, 12)
	blocks, err = b.Partition(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(blocks[0]) != 3 {
		t.Fatalf("ragged blocks: %dx%d", len(blocks), len(blocks[0]))
	}
	last := blocks[1][2]
	if last.Rows() != 2 || last.Cols() != 2 {
		t.Errorf("ragged last block %v", last)
	}
	if _, err := b.Partition(0, 5); err == nil {
		t.Error("zero block size: want error")
	}
}

func TestInteriorValves(t *testing.T) {
	a := MustNew(10, 10)
	g := Region{0, 0, 5, 5}
	got := a.InteriorValves(g)
	// A 5x5 block has 5*4 + 4*5 = 40 strictly interior valves.
	if len(got) != 40 {
		t.Errorf("interior valves: %d, want 40", len(got))
	}
	for _, id := range got {
		u, w := a.EdgeCells(id)
		ur, uc := a.CellCoords(u)
		wr, wc := a.CellCoords(w)
		if !g.Contains(ur, uc) || !g.Contains(wr, wc) {
			t.Fatalf("valve %d leaks out of region", id)
		}
	}
}

func TestMixerValves(t *testing.T) {
	a := MustNewStandard(6, 6)
	for _, spec := range []MixerSpec{
		{R: 1, C: 1, Height: 2, Width: 4}, // Fig. 2(c) 2x4 mixer
		{R: 1, C: 1, Height: 4, Width: 2}, // Fig. 2(b) 4x2 mixer
		{R: 1, C: 1, Height: 3, Width: 3},
	} {
		ring, boundary, err := a.MixerValves(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		ncells := 2*spec.Width + 2*(spec.Height-2)
		if len(ring) != ncells {
			t.Errorf("%+v: ring has %d valves, want %d", spec, len(ring), ncells)
		}
		// Ring and boundary must be disjoint.
		seen := make(map[ValveID]bool)
		for _, v := range ring {
			seen[v] = true
		}
		for _, v := range boundary {
			if seen[v] {
				t.Errorf("%+v: valve %d in both ring and boundary", spec, v)
			}
		}
		// The eight pump valves of the paper's 4x2/2x4 mixers are a subset
		// of the ring; just check the ring is a closed cycle of adjacent
		// cells.
		cells := spec.RingCells()
		for i, rc := range cells {
			next := cells[(i+1)%len(cells)]
			if a.EdgeBetween(rc[0], rc[1], next[0], next[1]) != ring[i] {
				t.Fatalf("%+v: ring[%d] mismatch", spec, i)
			}
		}
	}
	if _, _, err := a.MixerValves(MixerSpec{R: 4, C: 4, Height: 4, Width: 4}); err == nil {
		t.Error("mixer off the edge: want error")
	}
	if _, _, err := a.MixerValves(MixerSpec{R: 0, C: 0, Height: 1, Width: 4}); err == nil {
		t.Error("1-high mixer: want error")
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	a := MustNewStandard(5, 6)
	if _, err := a.SetObstacle(2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelH(4, 0, 3); err != nil {
		t.Fatal(err)
	}
	text := Marshal(a)
	b, err := ParseString(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if Marshal(b) != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, Marshal(b))
	}
	if b.NumNormal() != a.NumNormal() {
		t.Errorf("NumNormal %d vs %d", b.NumNormal(), a.NumNormal())
	}
	if len(b.Sources()) != 1 || len(b.Sinks()) != 1 {
		t.Error("ports lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":           "",
		"bad header":      "hello\n",
		"short matrix":    "fpva 2 2\n+X+X+\n",
		"bad cell char":   "fpva 1 1\n+X+\nXqX\n+X+\n",
		"bad edge char":   "fpva 1 1\n+X+\nX.?\n+X+\n",
		"normal on bound": "fpva 1 1\n+X+\no.X\n+X+\n",
	} {
		if _, err := ParseString(text); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestQuickValveIDBijection(t *testing.T) {
	a := MustNew(9, 13)
	f := func(raw uint32) bool {
		id := ValveID(int(raw) % a.NumValves())
		v := a.Valve(id)
		u, w := a.EdgeCells(id)
		// Each edge touches at least one real cell, and its endpoints agree
		// with the incident-valve table of those cells.
		ok := false
		for _, cell := range []CellID{u, w} {
			if cell == NoCell {
				continue
			}
			r, c := a.CellCoords(cell)
			for _, inc := range a.IncidentValves(r, c) {
				if inc == id {
					ok = true
				}
			}
		}
		_ = v
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(nrRaw, ncRaw uint8, obR, obC uint8) bool {
		nr := int(nrRaw)%6 + 3
		nc := int(ncRaw)%6 + 3
		a := MustNewStandard(nr, nc)
		// Obstacle somewhere not under a port's interior cell.
		r, c := int(obR)%nr, int(obC)%nc
		if !(r == 0 && c == 0) && !(r == nr-1 && c == nc-1) {
			if _, err := a.SetObstacle(r, c); err != nil {
				return false
			}
		}
		b, err := ParseString(Marshal(a))
		if err != nil {
			return false
		}
		return Marshal(b) == Marshal(a) && b.NumNormal() == a.NumNormal()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60}
}
