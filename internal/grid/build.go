package grid

import "fmt"

// StandardPorts attaches the canonical test fixture used throughout the
// paper's evaluation: one pressure source at the top-left boundary
// (edge H(0,0)) and one pressure meter at the bottom-right boundary
// (edge H(NR-1, NC)). With the ports at opposite corners, every straight
// row cut and every straight column cut separates source from sink, which
// is what makes the straight-line cut-set family complete (Sec. III-C).
func (a *Array) StandardPorts() error {
	if err := a.AddSource("src", a.HValve(0, 0)); err != nil {
		return err
	}
	return a.AddSink("meter", a.HValve(a.nr-1, a.nc))
}

// NewStandard builds a full nr x nc array with StandardPorts attached.
func NewStandard(nr, nc int) (*Array, error) {
	a, err := New(nr, nc)
	if err != nil {
		return nil, err
	}
	if err := a.StandardPorts(); err != nil {
		return nil, err
	}
	return a, nil
}

// MustNewStandard is NewStandard but panics on error.
func MustNewStandard(nr, nc int) *Array {
	a, err := NewStandard(nr, nc)
	if err != nil {
		panic(err)
	}
	return a
}

// Region is a rectangular cell region [R0,R1) x [C0,C1) of an array, used by
// the hierarchical model to address subblocks.
type Region struct {
	R0, C0, R1, C1 int
}

// Contains reports whether cell (r, c) lies inside the region.
func (g Region) Contains(r, c int) bool {
	return r >= g.R0 && r < g.R1 && c >= g.C0 && c < g.C1
}

// Rows returns R1-R0.
func (g Region) Rows() int { return g.R1 - g.R0 }

// Cols returns C1-C0.
func (g Region) Cols() int { return g.C1 - g.C0 }

func (g Region) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", g.R0, g.R1, g.C0, g.C1)
}

// Whole returns the region covering the full array.
func (a *Array) Whole() Region { return Region{0, 0, a.nr, a.nc} }

// Partition splits the array into blocks of at most blockR x blockC cells,
// row-major. This is the paper's hierarchical decomposition (Sec. III-B-4);
// the evaluation uses 5x5 blocks.
func (a *Array) Partition(blockR, blockC int) ([][]Region, error) {
	if blockR < 1 || blockC < 1 {
		return nil, fmt.Errorf("grid: block size %dx%d out of range", blockR, blockC)
	}
	nbr := (a.nr + blockR - 1) / blockR
	nbc := (a.nc + blockC - 1) / blockC
	out := make([][]Region, nbr)
	for br := 0; br < nbr; br++ {
		out[br] = make([]Region, nbc)
		for bc := 0; bc < nbc; bc++ {
			g := Region{
				R0: br * blockR, C0: bc * blockC,
				R1: (br + 1) * blockR, C1: (bc + 1) * blockC,
			}
			if g.R1 > a.nr {
				g.R1 = a.nr
			}
			if g.C1 > a.nc {
				g.C1 = a.nc
			}
			out[br][bc] = g
		}
	}
	return out, nil
}

// InteriorValves returns the Normal valves strictly inside region g: both
// endpoints of the edge are cells of g.
func (a *Array) InteriorValves(g Region) []ValveID {
	var out []ValveID
	for _, id := range a.NormalValves() {
		u, w := a.EdgeCells(id)
		if u == NoCell || w == NoCell {
			continue
		}
		ur, uc := a.CellCoords(u)
		wr, wc := a.CellCoords(w)
		if g.Contains(ur, uc) && g.Contains(wr, wc) {
			out = append(out, id)
		}
	}
	return out
}

// MixerSpec describes a dynamic mixer footprint on the array (Fig. 2(b)/(c)
// of the paper): a ring of cells of the given height x width whose interior
// channel forms the mixing loop. Height and width are in cells and must be
// at least 2.
type MixerSpec struct {
	R, C          int // top-left cell of the ring
	Height, Width int
}

// RingCells returns the cells of the mixer loop in cycle order: top row
// left-to-right, right column downwards, bottom row right-to-left, left
// column upwards.
func (m MixerSpec) RingCells() [][2]int {
	var out [][2]int
	for c := m.C; c < m.C+m.Width; c++ {
		out = append(out, [2]int{m.R, c})
	}
	for r := m.R + 1; r < m.R+m.Height; r++ {
		out = append(out, [2]int{r, m.C + m.Width - 1})
	}
	if m.Height > 1 {
		for c := m.C + m.Width - 2; c >= m.C; c-- {
			out = append(out, [2]int{m.R + m.Height - 1, c})
		}
	}
	for r := m.R + m.Height - 2; r > m.R; r-- {
		out = append(out, [2]int{r, m.C})
	}
	return out
}

// MixerValves returns the valve sets that realize the mixer: ring holds the
// valves along the mixing loop in cycle order (kept open while mixing; a
// subset acts as pump valves), and boundary holds every other valve incident
// to a loop cell — the valves sealing the loop from the rest of the array
// and the chord valves crossing its interior, all kept closed while mixing
// (the paper's "closed valve/wall" in Fig. 2). An error is returned if the
// footprint leaves the array or touches an obstacle.
func (a *Array) MixerValves(m MixerSpec) (ring, boundary []ValveID, err error) {
	if m.Height < 2 || m.Width < 2 {
		return nil, nil, fmt.Errorf("grid: mixer %dx%d too small", m.Height, m.Width)
	}
	if m.R < 0 || m.C < 0 || m.R+m.Height > a.nr || m.C+m.Width > a.nc {
		return nil, nil, fmt.Errorf("grid: mixer at (%d,%d) size %dx%d leaves the array",
			m.R, m.C, m.Height, m.Width)
	}
	cells := m.RingCells()
	for _, rc := range cells {
		if a.IsObstacle(rc[0], rc[1]) {
			return nil, nil, fmt.Errorf("grid: mixer ring cell (%d,%d) is an obstacle", rc[0], rc[1])
		}
	}
	onRing := make(map[ValveID]bool)
	for i, rc := range cells {
		next := cells[(i+1)%len(cells)]
		v := a.edgeBetween(rc[0], rc[1], next[0], next[1])
		if v == NoValve {
			return nil, nil, fmt.Errorf("grid: ring cells (%v)-(%v) not adjacent", rc, next)
		}
		ring = append(ring, v)
		onRing[v] = true
	}
	seen := make(map[ValveID]bool)
	for _, rc := range cells {
		for _, v := range a.IncidentValves(rc[0], rc[1]) {
			if seen[v] || onRing[v] {
				continue
			}
			seen[v] = true
			boundary = append(boundary, v)
		}
	}
	return ring, boundary, nil
}

// edgeBetween returns the valve separating two adjacent cells, or NoValve.
func (a *Array) edgeBetween(r1, c1, r2, c2 int) ValveID {
	switch {
	case r1 == r2 && c2 == c1+1:
		return a.HValve(r1, c2)
	case r1 == r2 && c1 == c2+1:
		return a.HValve(r1, c1)
	case c1 == c2 && r2 == r1+1:
		return a.VValve(r2, c1)
	case c1 == c2 && r1 == r2+1:
		return a.VValve(r1, c1)
	}
	return NoValve
}

// EdgeBetween returns the valve separating two adjacent cells, or NoValve if
// the cells are not lattice neighbours.
func (a *Array) EdgeBetween(r1, c1, r2, c2 int) ValveID {
	return a.edgeBetween(r1, c1, r2, c2)
}
