package grid

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Text format. An array is written as a header line "fpva NR NC" followed by
// a (2*NR+1) x (2*NC+1) character matrix:
//
//	odd row, odd col   — cell:   '.' fluid cell, '#' obstacle
//	odd row, even col  — H edge: see edge characters below
//	even row, odd col  — V edge: see edge characters below
//	even row, even col — lattice corner, always '+'
//
// Edge characters:
//
//	'o'  Normal valve
//	'='  Channel (always open, no valve built)
//	'X'  Wall (always closed)
//	'S'  PortOpen with a pressure source attached
//	'M'  PortOpen with a pressure meter attached
//
// The format round-trips through Marshal / Parse and is accepted by the
// command-line tools.

const (
	chCell     = '.'
	chObstacle = '#'
	chNormal   = 'o'
	chChannel  = '='
	chWall     = 'X'
	chSource   = 'S'
	chMeter    = 'M'
	chCorner   = '+'
)

// Marshal renders the array in the package text format.
func Marshal(a *Array) string {
	portKind := make(map[ValveID]bool) // true = source
	for _, p := range a.ports {
		portKind[p.Valve] = p.Source
	}
	edgeChar := func(id ValveID) byte {
		switch a.kinds[id] {
		case Normal:
			return chNormal
		case Channel:
			return chChannel
		case PortOpen:
			if portKind[id] {
				return chSource
			}
			return chMeter
		default:
			return chWall
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fpva %d %d\n", a.nr, a.nc)
	for gr := 0; gr <= 2*a.nr; gr++ {
		for gc := 0; gc <= 2*a.nc; gc++ {
			switch {
			case gr%2 == 1 && gc%2 == 1: // cell
				if a.obstacle[a.CellIndex(gr/2, gc/2)] {
					b.WriteByte(chObstacle)
				} else {
					b.WriteByte(chCell)
				}
			case gr%2 == 1 && gc%2 == 0: // H edge
				b.WriteByte(edgeChar(a.HValve(gr/2, gc/2)))
			case gr%2 == 0 && gc%2 == 1: // V edge
				b.WriteByte(edgeChar(a.VValve(gr/2, gc/2)))
			default:
				b.WriteByte(chCorner)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads an array in the package text format. Port names are
// synthesized as src0, src1, ... and meter0, meter1, ... in row-major edge
// order.
func Parse(r io.Reader) (*Array, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("grid: empty input")
	}
	var nr, nc int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "fpva %d %d", &nr, &nc); err != nil {
		return nil, fmt.Errorf("grid: bad header %q: %v", sc.Text(), err)
	}
	a, err := New(nr, nc)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, 2*nr+1)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" && len(rows) == 2*nr+1 {
			break
		}
		rows = append(rows, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) < 2*nr+1 {
		return nil, fmt.Errorf("grid: want %d matrix rows, got %d", 2*nr+1, len(rows))
	}
	nsrc, nsink := 0, 0
	setEdge := func(id ValveID, ch byte, gr, gc int) error {
		onB := a.isBoundary(id)
		switch ch {
		case chNormal:
			if onB {
				return fmt.Errorf("grid: row %d col %d: normal valve on boundary", gr, gc)
			}
			a.kinds[id] = Normal
		case chChannel:
			if onB {
				return fmt.Errorf("grid: row %d col %d: channel on boundary", gr, gc)
			}
			a.kinds[id] = Channel
		case chWall:
			a.kinds[id] = Wall
		case chSource:
			if err := a.AddSource(fmt.Sprintf("src%d", nsrc), id); err != nil {
				return err
			}
			nsrc++
		case chMeter:
			if err := a.AddSink(fmt.Sprintf("meter%d", nsink), id); err != nil {
				return err
			}
			nsink++
		default:
			return fmt.Errorf("grid: row %d col %d: bad edge char %q", gr, gc, ch)
		}
		return nil
	}
	// First pass: cells, so that AddSource can validate interior cells.
	for gr := 1; gr <= 2*nr; gr += 2 {
		row := rows[gr]
		for gc := 1; gc <= 2*nc; gc += 2 {
			if gc >= len(row) {
				return nil, fmt.Errorf("grid: matrix row %d too short", gr)
			}
			switch row[gc] {
			case chObstacle:
				a.obstacle[a.CellIndex(gr/2, gc/2)] = true
			case chCell:
			default:
				return nil, fmt.Errorf("grid: row %d col %d: bad cell char %q", gr, gc, row[gc])
			}
		}
	}
	for gr := 0; gr <= 2*nr; gr++ {
		row := rows[gr]
		for gc := 0; gc <= 2*nc; gc++ {
			if gr%2 == 1 && gc%2 == 1 || gr%2 == 0 && gc%2 == 0 {
				continue
			}
			if gc >= len(row) {
				return nil, fmt.Errorf("grid: matrix row %d too short", gr)
			}
			var id ValveID
			if gr%2 == 1 {
				id = a.HValve(gr/2, gc/2)
			} else {
				id = a.VValve(gr/2, gc/2)
			}
			if err := setEdge(id, row[gc], gr, gc); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Array, error) {
	return Parse(strings.NewReader(s))
}
