// Package render draws FPVAs, flow paths and cut-sets as ASCII diagrams —
// the form in which this reproduction regenerates the paper's Fig. 8 (direct
// vs hierarchical flow paths) and Fig. 9 (the 16 flow paths of the 20x20
// array with channels and obstacles).
package render

import (
	"strings"

	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
)

// matrix is a mutable character canvas of the (2*NR+1) x (2*NC+1) layout
// used by grid.Marshal.
type matrix struct {
	a    *grid.Array
	rows [][]byte
}

func newMatrix(a *grid.Array) *matrix {
	m := &matrix{a: a, rows: make([][]byte, 2*a.NR()+1)}
	for gr := range m.rows {
		m.rows[gr] = []byte(strings.Repeat(" ", 2*a.NC()+1))
	}
	for gr := 0; gr <= 2*a.NR(); gr++ {
		for gc := 0; gc <= 2*a.NC(); gc++ {
			switch {
			case gr%2 == 1 && gc%2 == 1:
				if a.IsObstacle(gr/2, gc/2) {
					m.rows[gr][gc] = '#'
				} else {
					m.rows[gr][gc] = '.'
				}
			case gr%2 == 0 && gc%2 == 0:
				m.rows[gr][gc] = '+'
			default:
				m.setEdgeChar(gr, gc)
			}
		}
	}
	return m
}

func (m *matrix) setEdgeChar(gr, gc int) {
	var id grid.ValveID
	if gr%2 == 1 {
		id = m.a.HValve(gr/2, gc/2)
	} else {
		id = m.a.VValve(gr/2, gc/2)
	}
	var ch byte
	switch m.a.Kind(id) {
	case grid.Normal:
		ch = 'o'
	case grid.Channel:
		ch = '='
	case grid.PortOpen:
		ch = 'S'
		if !m.isSource(id) {
			ch = 'M'
		}
	default:
		ch = ' ' // walls drawn as blank for readability
	}
	m.rows[gr][gc] = ch
}

func (m *matrix) isSource(id grid.ValveID) bool {
	for _, p := range m.a.Ports() {
		if p.Valve == id {
			return p.Source
		}
	}
	return false
}

// markValve overwrites the edge character of a valve.
func (m *matrix) markValve(id grid.ValveID, ch byte) {
	v := m.a.Valve(id)
	if v.Orient == grid.Horizontal {
		m.rows[2*v.R+1][2*v.C] = ch
	} else {
		m.rows[2*v.R][2*v.C+1] = ch
	}
}

func (m *matrix) String() string {
	var b strings.Builder
	for _, row := range m.rows {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// pathMark returns the overlay character for path index i.
func pathMark(i int) byte {
	const marks = "0123456789abcdefghijklmnopqrstuvwxyz"
	return marks[i%len(marks)]
}

// Array renders the bare array. Legend: '.' cell, '#' obstacle, 'o' valve,
// '=' channel, 'S' source, 'M' meter, blank wall.
func Array(a *grid.Array) string {
	return newMatrix(a).String()
}

// Paths renders the array with each path's valves overlaid by its index
// mark (0-9, then a-z; indices wrap).
func Paths(a *grid.Array, paths []*flowpath.Path) string {
	m := newMatrix(a)
	for i, p := range paths {
		for _, id := range p.Valves {
			if a.Kind(id) == grid.Normal || a.Kind(id) == grid.Channel {
				m.markValve(id, pathMark(i))
			}
		}
	}
	return m.String()
}

// Cut renders the array with one cut-set's members overlaid: 'X' for closed
// Normal members, 'x' for wall members the separating curve threads.
func Cut(a *grid.Array, c *cutset.Cut) string {
	m := newMatrix(a)
	for _, id := range c.Walls {
		m.markValve(id, 'x')
	}
	for _, id := range c.Valves {
		m.markValve(id, 'X')
	}
	return m.String()
}

// Legend describes the rendering characters.
func Legend() string {
	return `legend: . cell   # obstacle   o valve   = channel (no valve)
        S pressure source   M pressure meter   (blank) wall
        0-9a-z flow-path marks   X cut valve   x wall on cut curve`
}
