package render

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
)

func TestArrayRendering(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	if _, err := a.SetObstacle(1, 1); err != nil {
		t.Fatal(err)
	}
	out := Array(a)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("%d lines, want 7:\n%s", len(lines), out)
	}
	for i, line := range lines {
		if len(line) != 7 {
			t.Errorf("line %d has %d chars", i, len(line))
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("obstacle not rendered")
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "M") {
		t.Error("ports not rendered")
	}
}

func TestPathsRendering(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	res, err := flowpath.Generate(context.Background(), a, flowpath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Paths(a, res.Paths)
	if !strings.Contains(out, "0") {
		t.Errorf("path 0 marks missing:\n%s", out)
	}
	if len(res.Paths) > 1 && !strings.Contains(out, "1") {
		t.Errorf("path 1 marks missing:\n%s", out)
	}
}

func TestCutRendering(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	res, err := cutset.Generate(context.Background(), a, cutset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cuts) == 0 {
		t.Fatal("no cuts")
	}
	out := Cut(a, res.Cuts[0])
	if strings.Count(out, "X") != len(res.Cuts[0].Valves) {
		t.Errorf("cut marks mismatch:\n%s", out)
	}
}

func TestChannelRendering(t *testing.T) {
	a := grid.MustNewStandard(3, 4)
	if _, err := a.SetChannelH(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Array(a), "=") {
		t.Error("channel not rendered")
	}
}

func TestLegendNonEmpty(t *testing.T) {
	if !strings.Contains(Legend(), "pressure source") {
		t.Error("legend incomplete")
	}
}

func TestPathMarkWraps(t *testing.T) {
	if pathMark(0) != '0' || pathMark(10) != 'a' || pathMark(36) != '0' {
		t.Error("path marks wrong")
	}
}
