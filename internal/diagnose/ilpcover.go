// ILP probe planning: a minimal set of vectors that pairwise separates the
// surviving ambiguity set, solved with the branch-and-bound core.
//
// The model is built once per session and only its bounds change between
// rounds, which is exactly the contract under which ilp warm starts apply
// (same variable/constraint shape). One binary x_v per plan vector (obj 1),
// one continuous slack s_p per distinguishable candidate pair, one row per
// pair:
//
//	sum over v distinguishing the pair of x_v  +  s_p  >=  1
//
// While the pair is alive s_p is fixed at 0 (the cover must separate it);
// when either endpoint is eliminated s_p is fixed at 1 and the row becomes
// vacuous. Probed vectors are fixed at 1 with objective 0 — sunk cost, the
// solver only pays for new probes. Pairs whose endpoints share a signature
// class get no row: no vector can separate them, and they are reported as
// an indistinguishable class instead.
//
// Note the ILP mode allocates (model rows, solver state) and runs a
// search; it is gated to small ambiguity sets (maxILPCandidates) and every
// shortfall — set too large, solve not proven optimal — falls back to the
// greedy rule, deterministically.
package diagnose

import (
	"context"

	"repro/internal/ilp"
	"repro/internal/lp"
)

// maxILPCandidates caps the ambiguity-set size the ILP planner will model:
// pairs grow quadratically, and past this size the greedy planner is both
// faster and nearly as short.
const maxILPCandidates = 64

// ilpMaxNodes bounds the branch-and-bound search per round. Cover models of
// <= ~2k rows prove optimality in far fewer nodes; the bound is a backstop,
// and a solve that exhausts it falls back to the greedy rule.
const ilpMaxNodes = 50_000

// coverPlanner is the per-session ILP state.
type coverPlanner struct {
	m     ilp.Model
	x     []ilp.VarID // per plan vector
	slack []ilp.VarID // per pair
	pairs [][2]int32  // candidate index pairs, endpoints ascending
	dead  []bool      // pair rows already made vacuous
	fixed []bool      // vectors already fixed (probed)
	warm  *ilp.WarmStart
}

// buildCover models the current alive set, or reports ok=false when it is
// too large. Distinguishing vectors of a pair are found by scanning the
// response rows — one bit test per (vector, sink) per pair.
func (s *Session) buildCover() (ok bool) {
	members := Members(s.alive)
	if len(members) > maxILPCandidates {
		return false
	}
	cp := &coverPlanner{}
	nv := s.sg.Vectors()
	cp.x = make([]ilp.VarID, nv)
	cp.fixed = make([]bool, nv)
	for v := 0; v < nv; v++ {
		cp.x[v] = cp.m.AddBinary(1, "")
	}
	var idx []ilp.VarID
	var coef []float64
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			a, b := members[i], members[j]
			if s.sg.classOf[a] == s.sg.classOf[b] {
				continue // provably indistinguishable: no row
			}
			idx = idx[:0]
			coef = coef[:0]
			for v := 0; v < nv; v++ {
				for k := 0; k < s.sg.Sinks(); k++ {
					if s.sg.m.Reading(a, v, k) != s.sg.m.Reading(b, v, k) {
						idx = append(idx, cp.x[v])
						coef = append(coef, 1)
						break
					}
				}
			}
			sl := cp.m.AddVar(0, 0, 0, false, "")
			idx = append(idx, sl)
			coef = append(coef, 1)
			cp.m.AddCons(idx, coef, lp.GE, 1)
			cp.pairs = append(cp.pairs, [2]int32{int32(a), int32(b)})
			cp.slack = append(cp.slack, sl)
			cp.dead = append(cp.dead, false)
		}
	}
	s.cover = cp
	return true
}

// syncCover re-fixes bounds against the current session state: dead pairs'
// slacks to 1, probed vectors to 1 at objective 0. Bounds-only edits keep
// the compiled relaxation and the warm start valid.
func (s *Session) syncCover() {
	cp := s.cover
	for p, pair := range cp.pairs {
		if cp.dead[p] {
			continue
		}
		a, b := pair[0], pair[1]
		if s.alive[a>>6]>>(uint(a)&63)&1 == 0 || s.alive[b>>6]>>(uint(b)&63)&1 == 0 {
			cp.m.FixVar(cp.slack[p], 1)
			cp.dead[p] = true
		}
	}
	for v, fixed := range cp.fixed {
		if !fixed && s.probed[v] {
			cp.m.FixVar(cp.x[v], 1)
			cp.m.SetObj(cp.x[v], 0)
			cp.fixed[v] = true
		}
	}
}

// solveCover runs one warm-started cover solve and returns the chosen
// vectors as a bitset, or ok=false when the planner is unavailable (set too
// large, solve not proven optimal).
func (s *Session) solveCover(ctx context.Context) (cover []uint64, ok bool, err error) {
	if s.cover == nil && !s.buildCover() {
		return nil, false, nil
	}
	s.syncCover()
	cp := s.cover
	opt := ilp.Options{MaxNodes: ilpMaxNodes}
	if cp.warm != nil {
		opt.WarmStart = cp.warm
	}
	sol := cp.m.Solve(ctx, opt)
	if sol.WarmStart != nil {
		cp.warm = sol.WarmStart
	}
	if sol.Status == ilp.Canceled {
		return nil, false, ctx.Err()
	}
	if sol.Status != ilp.Optimal {
		return nil, false, nil // budget ran out or infeasible: greedy takes over
	}
	cover = make([]uint64, (len(cp.x)+63)/64)
	for v, xv := range cp.x {
		if sol.X[xv] > 0.5 {
			cover[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return cover, true, nil
}

// nextProbeILP picks the lowest-indexed unprobed cover vector that actually
// splits the surviving set. ok=false means the greedy rule should decide
// this round.
func (s *Session) nextProbeILP(ctx context.Context) (v int, ok bool, err error) {
	cover, ok, err := s.solveCover(ctx)
	if err != nil || !ok {
		return -1, ok, err
	}
	blocks := [][]uint64{s.alive}
	if v := s.sg.bestSplitAllowed(blocks, s.probed, cover, &s.sp); v >= 0 {
		return v, true, nil
	}
	return -1, false, nil
}

// coverVectors returns the minimal-cover bitset for static planning, or nil
// when the ILP planner is unavailable (the caller then plans greedily).
func (s *Session) coverVectors(ctx context.Context) ([]uint64, error) {
	cover, ok, err := s.solveCover(ctx)
	if err != nil || !ok {
		return nil, err
	}
	return cover, nil
}
