// Package diagnose turns fault detection into fault localization: given the
// sink readings a technician actually observed, which candidate defects are
// still possible, and which test vector should be probed next to tell the
// survivors apart fastest?
//
// The engine is built on one table: the response matrix of the candidate
// universe (sim.CompiledVectors.Responses) — for every candidate fault and
// every plan vector, the expected sink readings, computed bit-parallel with
// the PPSFP word engine. Everything else is bitset arithmetic over that
// table:
//
//   - Narrow intersects an observation with the matrix row, shrinking the
//     ambiguity set by one AND per word;
//   - the greedy planner scores every unprobed vector by how evenly its
//     readings partition the survivors and probes the best one;
//   - the optional ILP planner (see ilpcover.go) asks the branch-and-bound
//     core for a minimal set of probes that pairwise separates the whole
//     surviving set, warm-starting each round from the last.
//
// Candidate 0 is always the fault-free universe, so "the chip is actually
// healthy" and "this fault is undetectable" fall out of the same machinery:
// an undetectable fault simply shares a signature class with candidate 0.
//
// Determinism contract: candidate order, ambiguity sets, and probe choices
// depend only on (compiled vectors, Options, observations) — never on
// worker count, engine, or map iteration order.
package diagnose

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/grid"
	"repro/internal/sim"
)

// Options parameterizes candidate enumeration and signature compilation.
type Options struct {
	// Workers shards the signature build; <= 0 means runtime.NumCPU().
	// The table is bit-identical for any worker count.
	Workers int
	// Engine selects the signature-build engine (word vs scalar); results
	// are bit-identical across engines.
	Engine sim.CampaignEngine
	// LeakPairs, when non-empty, adds a ControlLeak candidate per pair.
	LeakPairs [][2]grid.ValveID
	// MaxDoubles, when > 0, adds up to that many stuck-at double-fault
	// candidates, enumerated lexicographically over the single-fault list
	// (distinct valves only). Doubles blow up quadratically; the cap keeps
	// the table bounded.
	MaxDoubles int
}

// Candidates enumerates the deterministic candidate universe for an array:
// index 0 is the fault-free universe (nil), then every stuck-at single
// fault in sim.AllSingleFaults order, then one ControlLeak per LeakPairs
// entry, then up to MaxDoubles stuck-at pairs.
func Candidates(a *grid.Array, opt Options) [][]sim.Fault {
	singles := sim.AllSingleFaults(a)
	out := make([][]sim.Fault, 0, 1+len(singles)+len(opt.LeakPairs))
	out = append(out, nil)
	for _, f := range singles {
		out = append(out, []sim.Fault{f})
	}
	for _, p := range opt.LeakPairs {
		out = append(out, []sim.Fault{{Kind: sim.ControlLeak, A: p[0], B: p[1]}})
	}
	if opt.MaxDoubles > 0 {
		n := 0
	outer:
		for i := 0; i < len(singles); i++ {
			for j := i + 1; j < len(singles); j++ {
				if singles[i].A == singles[j].A {
					continue // contradictory or duplicate valve
				}
				out = append(out, []sim.Fault{singles[i], singles[j]})
				if n++; n >= opt.MaxDoubles {
					break outer
				}
			}
		}
	}
	return out
}

// Signatures is the compiled diagnosis table: the candidate universe plus
// its full response matrix, with signature-equality classes precomputed.
// Safe for concurrent use; sessions carry the mutable state.
type Signatures struct {
	cv    *sim.CompiledVectors
	cands [][]sim.Fault
	m     *sim.ResponseMatrix
	// classOf[c] is the smallest candidate index with a signature identical
	// to c's. Candidates in one class cannot be told apart by any vector of
	// the plan — they are the "provably indistinguishable" residue.
	classOf []int32
	nWords  int
}

// Compile builds the signature table for the compiled vectors under opt.
// The heavy part — one response matrix over the whole candidate universe —
// runs bit-parallel, 64 candidates per word.
func Compile(ctx context.Context, cv *sim.CompiledVectors, opt Options) (*Signatures, error) {
	cands := Candidates(cv.Simulator().Array(), opt)
	m, err := cv.Responses(ctx, cands, opt.Workers, opt.Engine)
	if err != nil {
		return nil, err
	}
	sg := &Signatures{
		cv:     cv,
		cands:  cands,
		m:      m,
		nWords: (len(cands) + 63) / 64,
	}
	sg.buildClasses()
	return sg, nil
}

// buildClasses groups candidates by their full signature. The key is the
// packed column bits; iteration is in candidate order, so representatives
// are the smallest member and the result never depends on map order.
func (sg *Signatures) buildClasses() {
	nRows := sg.m.Vectors() * sg.m.Sinks()
	keyLen := (nRows + 7) / 8
	sg.classOf = make([]int32, len(sg.cands))
	reps := make(map[string]int32, len(sg.cands))
	key := make([]byte, keyLen)
	for c := range sg.cands {
		for i := range key {
			key[i] = 0
		}
		r := 0
		for v := 0; v < sg.m.Vectors(); v++ {
			for j := 0; j < sg.m.Sinks(); j++ {
				if sg.m.Reading(c, v, j) {
					key[r>>3] |= 1 << (uint(r) & 7)
				}
				r++
			}
		}
		if rep, ok := reps[string(key)]; ok {
			sg.classOf[c] = rep
		} else {
			reps[string(key)] = int32(c)
			sg.classOf[c] = int32(c)
		}
	}
}

// Vectors returns the number of plan vectors in the table.
func (sg *Signatures) Vectors() int { return sg.m.Vectors() }

// Sinks returns the number of sinks per vector.
func (sg *Signatures) Sinks() int { return sg.m.Sinks() }

// NumCandidates returns the size of the candidate universe (including the
// fault-free candidate 0).
func (sg *Signatures) NumCandidates() int { return len(sg.cands) }

// Candidate returns candidate c's fault list (nil for the fault-free
// candidate 0). The slice must not be modified.
func (sg *Signatures) Candidate(c int) []sim.Fault { return sg.cands[c] }

// ClassOf returns the smallest candidate index with a signature identical
// to c's.
func (sg *Signatures) ClassOf(c int) int { return int(sg.classOf[c]) }

// Expected reports candidate c's expected reading of sink j under vector v.
//
//fpva:allocfree
func (sg *Signatures) Expected(c, v, j int) bool { return sg.m.Reading(c, v, j) }

// Golden returns the fault-free sink readings of vector v. The slice must
// not be modified.
func (sg *Signatures) Golden(v int) []bool { return sg.cv.Golden(v) }

// NewSet returns the full ambiguity set: a bitset with every candidate
// alive.
func (sg *Signatures) NewSet() []uint64 {
	set := make([]uint64, sg.nWords)
	for w := range set {
		set[w] = ^uint64(0)
	}
	if n := len(sg.cands) & 63; n != 0 {
		set[sg.nWords-1] = uint64(1)<<n - 1
	}
	return set
}

// Narrow removes from set every candidate whose expected readings under
// vector v differ from the observed ones. One AND (or ANDNOT) per word per
// sink — the whole universe narrows in a few hundred nanoseconds.
//
//fpva:allocfree
func (sg *Signatures) Narrow(set []uint64, v int, readings []bool) {
	for j, r := range readings {
		row := sg.m.Row(v, j)
		if r {
			for w := range set {
				set[w] &= row[w]
			}
		} else {
			for w := range set {
				set[w] &^= row[w]
			}
		}
	}
}

func popcnt(w uint64) int { return bits.OnesCount64(w) }

// Count returns the number of alive candidates in set.
//
//fpva:allocfree
func Count(set []uint64) int {
	n := 0
	for _, w := range set {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the alive candidate indices, ascending.
func Members(set []uint64) []int {
	out := make([]int, 0, Count(set))
	for w, word := range set {
		for t := word; t != 0; t &= t - 1 {
			out = append(out, w*64+bits.TrailingZeros64(t))
		}
	}
	return out
}

// Classes partitions the alive candidates of set into signature-equality
// classes, each sorted ascending, ordered by their smallest member. Two
// alive candidates in different classes can always be separated by some
// not-yet-probed vector (they agree on every probed one — that is how they
// both survived); candidates in one class never can.
func (sg *Signatures) Classes(set []uint64) [][]int {
	members := Members(set)
	var classes [][]int
	idx := make(map[int32]int, 4)
	for _, c := range members {
		rep := sg.classOf[c]
		k, ok := idx[rep]
		if !ok {
			k = len(classes)
			idx[rep] = k
			classes = append(classes, nil)
		}
		classes[k] = append(classes[k], c)
	}
	return classes
}

// Isolated reports whether set is down to at most one signature class —
// no further probe can shrink it.
func (sg *Signatures) Isolated(set []uint64) bool {
	rep := int32(-1)
	for w, word := range set {
		for t := word; t != 0; t &= t - 1 {
			c := w*64 + bits.TrailingZeros64(t)
			if rep < 0 {
				rep = sg.classOf[c]
			} else if sg.classOf[c] != rep {
				return false
			}
		}
	}
	return true
}

// checkObservation validates an observation against the table shape.
func (sg *Signatures) checkObservation(v int, readings []bool) error {
	if v < 0 || v >= sg.m.Vectors() {
		return fmt.Errorf("diagnose: observation names vector %d, plan has %d", v, sg.m.Vectors())
	}
	if len(readings) != sg.m.Sinks() {
		return fmt.Errorf("diagnose: observation for vector %d has %d readings, array has %d sinks", v, len(readings), sg.m.Sinks())
	}
	return nil
}
