// Session: the online Observe -> NextProbe loop, and the static probe-plan
// refinement both the one-shot Diagnose call and the closed-loop harness
// share. The greedy planner lives here; the ILP minimal-cover planner in
// ilpcover.go plugs into the same loop.
package diagnose

import (
	"context"
)

// Planner selects how NextProbe picks the next vector.
type Planner uint8

const (
	// PlannerGreedy picks the unprobed vector that most evenly splits the
	// surviving ambiguity set (smallest largest-class), tie-broken by
	// lowest vector index.
	PlannerGreedy Planner = iota
	// PlannerILP solves a minimal probe set-cover over the surviving set
	// with the branch-and-bound core, warm-starting across rounds, and
	// probes the lowest-indexed informative vector of the cover. Falls
	// back to the greedy rule when the set is too large for the ILP or the
	// solve does not complete — deterministically, since the fallback
	// depends only on the set.
	PlannerILP
)

func (p Planner) String() string {
	if p == PlannerILP {
		return "ilp"
	}
	return "greedy"
}

// Round records one observation: which vector was probed and the ambiguity
// before and after narrowing.
type Round struct {
	Vector        int
	Before, After int
}

// ProbeStep is one entry of a static suggested probe sequence, with the
// worst-case ambiguity guarantee after observing the sequence so far:
// whatever the outcomes, at most WorstCase candidates (in Classes groups)
// remain possible.
type ProbeStep struct {
	Vector    int
	WorstCase int
	Classes   int
}

// Session is one adaptive diagnosis: an ambiguity set narrowed by
// observations as they arrive, re-planning the next probe each round. Not
// safe for concurrent use; the Signatures table it reads is.
type Session struct {
	sg      *Signatures
	planner Planner
	alive   []uint64
	probed  []bool
	rounds  []Round
	sp      splitter
	cover   *coverPlanner
}

// NewSession starts a session with every candidate alive and no vector
// probed.
func NewSession(sg *Signatures, planner Planner) *Session {
	return &Session{
		sg:      sg,
		planner: planner,
		alive:   sg.NewSet(),
		probed:  make([]bool, sg.Vectors()),
		sp:      splitter{nWords: sg.nWords},
	}
}

// Signatures returns the table the session narrows against.
func (s *Session) Signatures() *Signatures { return s.sg }

// Observe narrows the ambiguity set by one observation: vector v was
// applied and readings were seen at the sinks. Observing a vector twice is
// allowed (contradictory readings simply empty the set).
func (s *Session) Observe(v int, readings []bool) error {
	if err := s.sg.checkObservation(v, readings); err != nil {
		return err
	}
	before := Count(s.alive)
	s.sg.Narrow(s.alive, v, readings)
	s.probed[v] = true
	s.rounds = append(s.rounds, Round{Vector: v, Before: before, After: Count(s.alive)})
	return nil
}

// Alive returns the surviving candidate indices, ascending.
func (s *Session) Alive() []int { return Members(s.alive) }

// AliveCount returns the size of the surviving ambiguity set.
func (s *Session) AliveCount() int { return Count(s.alive) }

// AliveSet returns a copy of the ambiguity bitset.
func (s *Session) AliveSet() []uint64 { return append([]uint64(nil), s.alive...) }

// Rounds returns the per-round narrowing stats, in observation order.
func (s *Session) Rounds() []Round { return s.rounds }

// Probed reports whether vector v has been observed.
func (s *Session) Probed(v int) bool { return s.probed[v] }

// Done reports whether probing is over: the set is empty (inconsistent
// observations), a singleton, or one indistinguishable class.
func (s *Session) Done() bool { return s.sg.Isolated(s.alive) }

// NextProbe picks the vector to probe next, or -1 when no unprobed vector
// can shrink the surviving set further (isolated, indistinguishable, or
// inconsistent). The error is non-nil only for context cancellation inside
// the ILP planner.
func (s *Session) NextProbe(ctx context.Context) (int, error) {
	if s.sg.Isolated(s.alive) {
		return -1, nil
	}
	if s.planner == PlannerILP {
		v, ok, err := s.nextProbeILP(ctx)
		if err != nil {
			return -1, err
		}
		if ok {
			return v, nil
		}
	}
	blocks := [][]uint64{s.alive}
	return s.sg.bestSplit(blocks, s.probed, &s.sp), nil
}

// PlanProbes returns a static probe sequence for the current ambiguity set:
// vectors that, once all observed, pin the set down to single signature
// classes whatever the outcomes. The greedy planner orders by best
// worst-case split; the ILP planner first solves for a minimal cover and
// then orders within it. budget > 0 truncates the sequence.
func (s *Session) PlanProbes(ctx context.Context, budget int) ([]ProbeStep, error) {
	allowed := []uint64(nil) // nil: any unprobed vector
	if s.planner == PlannerILP {
		cover, err := s.coverVectors(ctx)
		if err != nil {
			return nil, err
		}
		allowed = cover
	}
	probed := append([]bool(nil), s.probed...)
	blocks := [][]uint64{append([]uint64(nil), s.alive...)}
	var steps []ProbeStep
	for budget <= 0 || len(steps) < budget {
		if err := ctx.Err(); err != nil {
			return steps, err
		}
		v := s.sg.bestSplitAllowed(blocks, probed, allowed, &s.sp)
		if v < 0 && allowed != nil {
			// The cover is exhausted (or stale vs the live set); finish
			// splitting with any unprobed vector.
			allowed = nil
			v = s.sg.bestSplit(blocks, probed, &s.sp)
		}
		if v < 0 {
			break
		}
		probed[v] = true
		blocks = s.sg.refine(blocks, v)
		maxSize, n := 0, 0
		for _, b := range blocks {
			if c := Count(b); c > 0 {
				n++
				if c > maxSize {
					maxSize = c
				}
			}
		}
		steps = append(steps, ProbeStep{Vector: v, WorstCase: maxSize, Classes: n})
	}
	return steps, nil
}

// splitter is the reusable mask scratch of partition refinement.
type splitter struct {
	nWords    int
	cur, next [][]uint64
	free      [][]uint64
}

func (sp *splitter) alloc(src []uint64) []uint64 {
	var m []uint64
	if n := len(sp.free); n > 0 {
		m, sp.free = sp.free[n-1], sp.free[:n-1]
	} else {
		m = make([]uint64, sp.nWords)
	}
	copy(m, src)
	return m
}

func (sp *splitter) release(m []uint64) { sp.free = append(sp.free, m) }

// bestSplit picks the unprobed vector that minimizes the largest block of
// the partition refined by its readings, tie-broken by lowest vector index;
// -1 when no unprobed vector splits any block.
func (sg *Signatures) bestSplit(blocks [][]uint64, probed []bool, sp *splitter) int {
	return sg.bestSplitAllowed(blocks, probed, nil, sp)
}

// bestSplitAllowed is bestSplit restricted to the vectors of the allowed
// bitset (nil allows all).
func (sg *Signatures) bestSplitAllowed(blocks [][]uint64, probed []bool, allowed []uint64, sp *splitter) int {
	best, bestMax := -1, int(^uint(0)>>1)
	for v := 0; v < sg.Vectors(); v++ {
		if probed[v] {
			continue
		}
		if allowed != nil && allowed[v>>6]>>(uint(v)&63)&1 == 0 {
			continue
		}
		maxSize, split := sg.refineScore(blocks, v, sp)
		if split && maxSize < bestMax {
			best, bestMax = v, maxSize
		}
	}
	return best
}

// refineScore computes the largest block of the partition refined by vector
// v's readings, and whether v splits any block at all.
func (sg *Signatures) refineScore(blocks [][]uint64, v int, sp *splitter) (int, bool) {
	maxSize, split := 0, false
	for _, b := range blocks {
		if c := Count(b); c <= 1 {
			if c > maxSize {
				maxSize = c
			}
			continue
		}
		sp.cur = append(sp.cur[:0], sp.alloc(b))
		for j := 0; j < sg.Sinks(); j++ {
			row := sg.m.Row(v, j)
			sp.next = sp.next[:0]
			for _, m := range sp.cur {
				m0 := sp.alloc(m)
				n1, n0 := 0, 0
				for w := range m {
					m[w] &= row[w]
					m0[w] &^= row[w]
					n1 += popcnt(m[w])
					n0 += popcnt(m0[w])
				}
				if n1 > 0 {
					sp.next = append(sp.next, m)
				} else {
					sp.release(m)
				}
				if n0 > 0 {
					sp.next = append(sp.next, m0)
				} else {
					sp.release(m0)
				}
			}
			sp.cur, sp.next = sp.next, sp.cur
		}
		if len(sp.cur) > 1 {
			split = true
		}
		for _, m := range sp.cur {
			if c := Count(m); c > maxSize {
				maxSize = c
			}
			sp.release(m)
		}
		sp.cur = sp.cur[:0]
	}
	return maxSize, split
}

// refine materializes the partition refinement of blocks by vector v.
func (sg *Signatures) refine(blocks [][]uint64, v int) [][]uint64 {
	cur := blocks
	for j := 0; j < sg.Sinks(); j++ {
		row := sg.m.Row(v, j)
		next := make([][]uint64, 0, len(cur)*2)
		for _, b := range cur {
			b1 := make([]uint64, len(b))
			b0 := make([]uint64, len(b))
			n1, n0 := 0, 0
			for w := range b {
				b1[w] = b[w] & row[w]
				b0[w] = b[w] &^ row[w]
				n1 += popcnt(b1[w])
				n0 += popcnt(b0[w])
			}
			if n1 > 0 {
				next = append(next, b1)
			}
			if n0 > 0 {
				next = append(next, b0)
			}
		}
		cur = next
	}
	return cur
}
