package diagnose_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/grid"
	"repro/internal/sim"
)

// testCase compiles the full generated test set of a standard array.
func testCase(t *testing.T, rows, cols int) (*sim.Simulator, []*sim.Vector, *sim.CompiledVectors, diagnose.Options) {
	t.Helper()
	a := grid.MustNewStandard(rows, cols)
	ts, err := core.Generate(context.Background(), a, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := ts.Compile()
	if err != nil {
		t.Fatal(err)
	}
	opt := diagnose.Options{Workers: 2}
	for _, p := range ts.LeakPairs {
		opt.LeakPairs = append(opt.LeakPairs, [2]grid.ValveID(p))
	}
	return sim.MustNew(a), ts.AllVectors(), cv, opt
}

// candidateIndex finds the index of a fault list in the compiled universe.
func candidateIndex(t *testing.T, sg *diagnose.Signatures, faults []sim.Fault) int {
	t.Helper()
	for c := 0; c < sg.NumCandidates(); c++ {
		if reflect.DeepEqual(sg.Candidate(c), faults) {
			return c
		}
	}
	t.Fatalf("candidate %v not in universe", faults)
	return -1
}

// closedLoop drives a session to completion by answering every suggested
// probe with the simulator's readings under the hidden fault, and returns
// the probe sequence.
func closedLoop(t *testing.T, s *sim.Simulator, vecs []*sim.Vector, sess *diagnose.Session, hidden []sim.Fault) []int {
	t.Helper()
	var probes []int
	for {
		v, err := sess.NextProbe(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			return probes
		}
		if err := sess.Observe(v, s.Readings(vecs[v], hidden)); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, v)
		if len(probes) > len(vecs) {
			t.Fatalf("hidden %v: %d probes exceed the %d plan vectors", hidden, len(probes), len(vecs))
		}
	}
}

// TestOracleSingleFaultIsolation is the brute-force oracle of the
// acceptance criteria: on small arrays, every injectable candidate fault —
// fault-free, every stuck-at, every leak pair — must isolate to a singleton
// or a provably indistinguishable class (identical readings under every
// vector, checked against the scalar simulator), within len(vectors)
// probes, with the true fault always inside the final ambiguity set.
func TestOracleSingleFaultIsolation(t *testing.T) {
	for _, dim := range [][2]int{{3, 3}, {4, 4}} {
		s, vecs, cv, opt := testCase(t, dim[0], dim[1])
		sg, err := diagnose.Compile(context.Background(), cv, opt)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < sg.NumCandidates(); c++ {
			hidden := sg.Candidate(c)
			sess := diagnose.NewSession(sg, diagnose.PlannerGreedy)
			closedLoop(t, s, vecs, sess, hidden)
			if !sess.Done() {
				t.Fatalf("%dx%d hidden %v: session not done after probing stopped", dim[0], dim[1], hidden)
			}
			alive := sess.Alive()
			found := false
			for _, m := range alive {
				if m == c {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%dx%d hidden %v: true candidate eliminated; alive=%v", dim[0], dim[1], hidden, alive)
			}
			// Every surviving pair must be indistinguishable under every
			// vector — verified against the scalar simulator, not the table.
			for _, m := range alive {
				for _, n := range alive {
					if m >= n {
						continue
					}
					for vi, vec := range vecs {
						ra := s.Readings(vec, sg.Candidate(m))
						rb := s.Readings(vec, sg.Candidate(n))
						if !reflect.DeepEqual(ra, rb) {
							t.Fatalf("%dx%d hidden %v: survivors %v and %v differ on vector %d",
								dim[0], dim[1], hidden, sg.Candidate(m), sg.Candidate(n), vi)
						}
					}
				}
			}
		}
	}
}

// TestDeterminismAcrossWorkersAndEngines pins the satellite contract:
// ambiguity sets and probe order are bit-identical for workers {1,2,4} and
// for the word vs scalar signature build.
func TestDeterminismAcrossWorkersAndEngines(t *testing.T) {
	s, vecs, cv, opt := testCase(t, 4, 4)
	type outcome struct {
		probes []int
		alive  []int
	}
	var want []outcome
	for _, engine := range []sim.CampaignEngine{sim.EngineScalar, sim.EngineBitParallel} {
		for _, workers := range []int{1, 2, 4} {
			o := opt
			o.Engine = engine
			o.Workers = workers
			sg, err := diagnose.Compile(context.Background(), cv, o)
			if err != nil {
				t.Fatal(err)
			}
			var got []outcome
			for c := 0; c < sg.NumCandidates(); c += 7 {
				sess := diagnose.NewSession(sg, diagnose.PlannerGreedy)
				probes := closedLoop(t, s, vecs, sess, sg.Candidate(c))
				got = append(got, outcome{probes: probes, alive: sess.Alive()})
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("engine=%v workers=%d: probe order or ambiguity sets diverge", engine, workers)
			}
		}
	}
}

// TestILPPlannerIsolates runs the closed loop under the ILP planner for a
// sample of hidden faults: it must isolate like the greedy planner does,
// within the same probe bound, and agree on the final ambiguity set.
func TestILPPlannerIsolates(t *testing.T) {
	s, vecs, cv, opt := testCase(t, 4, 4)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < sg.NumCandidates(); c += 5 {
		hidden := sg.Candidate(c)
		greedy := diagnose.NewSession(sg, diagnose.PlannerGreedy)
		closedLoop(t, s, vecs, greedy, hidden)
		ilpSess := diagnose.NewSession(sg, diagnose.PlannerILP)
		closedLoop(t, s, vecs, ilpSess, hidden)
		if !ilpSess.Done() {
			t.Fatalf("hidden %v: ILP session not done", hidden)
		}
		if !reflect.DeepEqual(greedy.Alive(), ilpSess.Alive()) {
			t.Fatalf("hidden %v: planners disagree on the final ambiguity set: %v vs %v",
				hidden, greedy.Alive(), ilpSess.Alive())
		}
	}
}

// TestILPPlannerDeterministic replays a few ILP closed loops and expects
// identical probe sequences every time (warm starts must not leak
// scheduling into the choice).
func TestILPPlannerDeterministic(t *testing.T) {
	s, vecs, cv, opt := testCase(t, 3, 3)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		t.Fatal(err)
	}
	hidden := sg.Candidate(3)
	var want []int
	for rep := 0; rep < 3; rep++ {
		sess := diagnose.NewSession(sg, diagnose.PlannerILP)
		probes := closedLoop(t, s, vecs, sess, hidden)
		if rep == 0 {
			want = probes
		} else if !reflect.DeepEqual(want, probes) {
			t.Fatalf("rep %d: ILP probe order changed: %v vs %v", rep, want, probes)
		}
	}
}

// TestPlanProbesDistinguishes checks the static probe plan: after observing
// nothing, the suggested sequence must drive the worst-case ambiguity down
// to the size of the largest signature class of the universe (no static
// plan can do better), with non-increasing worst cases along the way.
func TestPlanProbesDistinguishes(t *testing.T) {
	_, _, cv, opt := testCase(t, 4, 4)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Largest signature class of the whole universe.
	classes := sg.Classes(sg.NewSet())
	wantWorst := 0
	for _, cl := range classes {
		if len(cl) > wantWorst {
			wantWorst = len(cl)
		}
	}
	for _, planner := range []diagnose.Planner{diagnose.PlannerGreedy, diagnose.PlannerILP} {
		sess := diagnose.NewSession(sg, planner)
		steps, err := sess.PlanProbes(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) == 0 || len(steps) > sg.Vectors() {
			t.Fatalf("planner %v: %d steps for %d vectors", planner, len(steps), sg.Vectors())
		}
		last := 1 << 30
		for _, st := range steps {
			if st.WorstCase > last {
				t.Fatalf("planner %v: worst case grew: %+v", planner, steps)
			}
			last = st.WorstCase
		}
		if last != wantWorst {
			t.Fatalf("planner %v: final worst case %d, want %d (largest signature class)", planner, last, wantWorst)
		}
	}
}

// TestFaultFreeStaysAlive observes golden readings on every vector: the
// fault-free candidate must survive, and the session must be done.
func TestFaultFreeStaysAlive(t *testing.T) {
	s, vecs, cv, opt := testCase(t, 4, 4)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := diagnose.NewSession(sg, diagnose.PlannerGreedy)
	probes := closedLoop(t, s, vecs, sess, nil)
	if len(probes) == 0 {
		t.Fatal("no probes suggested for an unconstrained universe")
	}
	alive := sess.Alive()
	if len(alive) == 0 || alive[0] != 0 {
		t.Fatalf("fault-free candidate not alive after golden observations: %v", alive)
	}
}

// TestObservationValidation pins the error surface of malformed
// observations.
func TestObservationValidation(t *testing.T) {
	_, _, cv, opt := testCase(t, 3, 3)
	sg, err := diagnose.Compile(context.Background(), cv, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := diagnose.NewSession(sg, diagnose.PlannerGreedy)
	if err := sess.Observe(-1, make([]bool, sg.Sinks())); err == nil {
		t.Fatal("negative vector accepted")
	}
	if err := sess.Observe(sg.Vectors(), make([]bool, sg.Sinks())); err == nil {
		t.Fatal("out-of-range vector accepted")
	}
	if err := sess.Observe(0, make([]bool, sg.Sinks()+1)); err == nil {
		t.Fatal("wrong reading arity accepted")
	}
}

// TestDoubleFaultCandidates bounds and orders the double-fault universe.
func TestDoubleFaultCandidates(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	singles := len(sim.AllSingleFaults(a))
	cands := diagnose.Candidates(a, diagnose.Options{MaxDoubles: 10})
	if len(cands) != 1+singles+10 {
		t.Fatalf("got %d candidates, want %d", len(cands), 1+singles+10)
	}
	for _, c := range cands[1+singles:] {
		if len(c) != 2 || c[0].A == c[1].A {
			t.Fatalf("malformed double candidate %v", c)
		}
	}
}
