package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ladder builds a 2 x k grid graph and returns it with the node indexer.
func ladder(k int) (*Graph, func(r, c int) int) {
	g := New(2 * k)
	at := func(r, c int) int { return r*k + c }
	for r := 0; r < 2; r++ {
		for c := 0; c+1 < k; c++ {
			g.AddEdge(at(r, c), at(r, c+1), -1)
		}
	}
	for c := 0; c < k; c++ {
		g.AddEdge(at(0, c), at(1, c), -1)
	}
	return g, at
}

func TestBFSAndPath(t *testing.T) {
	g, at := ladder(5)
	via := g.BFS(at(0, 0), nil)
	for n := 0; n < g.N(); n++ {
		if via[n] == -1 {
			t.Fatalf("node %d unreachable in connected graph", n)
		}
	}
	p := g.Path(at(0, 0), at(1, 4), nil)
	if len(p) != 6 { // shortest path has 5 edges
		t.Errorf("path len %d, want 6 nodes", len(p))
	}
	if p[0] != at(0, 0) || p[len(p)-1] != at(1, 4) {
		t.Errorf("path endpoints %d..%d", p[0], p[len(p)-1])
	}
	for i := 0; i+1 < len(p); i++ {
		found := false
		for _, a := range g.Adj(p[i]) {
			if a.To == p[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path step %d-%d is not an edge", p[i], p[i+1])
		}
	}
}

func TestPathEdgesMatchesPath(t *testing.T) {
	g, at := ladder(7)
	nodes := g.Path(at(0, 0), at(1, 6), nil)
	edges := g.PathEdges(at(0, 0), at(1, 6), nil)
	if len(edges) != len(nodes)-1 {
		t.Fatalf("edges %d vs nodes %d", len(edges), len(nodes))
	}
	for i, eid := range edges {
		e := g.EdgeAt(eid)
		if !(e.U == nodes[i] && e.V == nodes[i+1] || e.V == nodes[i] && e.U == nodes[i+1]) {
			t.Fatalf("edge %d does not join consecutive path nodes", eid)
		}
	}
}

func TestBFSFiltered(t *testing.T) {
	g, at := ladder(3)
	// Disable all vertical edges: rows become separate components.
	vertical := make(map[int]bool)
	for i, e := range g.Edges() {
		if (e.U < 3) != (e.V < 3) {
			vertical[i] = true
		}
	}
	enabled := func(e int) bool { return !vertical[e] }
	if g.Reachable(at(0, 0), at(1, 0), enabled) {
		t.Error("rows connected despite disabled rungs")
	}
	if !g.Reachable(at(0, 0), at(0, 2), enabled) {
		t.Error("top row should stay connected")
	}
	if g.Path(at(0, 0), at(1, 2), enabled) != nil {
		t.Error("Path across disabled edges should be nil")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, -1)
	g.AddEdge(1, 2, -1)
	g.AddEdge(3, 4, -1)
	comp, n := g.Components(nil)
	if n != 3 {
		t.Fatalf("components: %d, want 3", n)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Errorf("labels: %v", comp)
	}
}

func TestSelfLoopAndParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0, 7)
	g.AddEdge(0, 1, 8)
	g.AddEdge(0, 1, 9)
	if g.M() != 3 {
		t.Fatalf("M=%d", g.M())
	}
	if len(g.Adj(0)) != 3 { // self-loop appears once
		t.Errorf("adj(0)=%d arcs", len(g.Adj(0)))
	}
	if !g.Reachable(0, 1, nil) {
		t.Error("unreachable across parallel edges")
	}
}

func TestDijkstra(t *testing.T) {
	// Weighted triangle plus a shortcut: 0-1 (1), 1-2 (1), 0-2 (5).
	g := New(3)
	e01 := g.AddEdge(0, 1, -1)
	e12 := g.AddEdge(1, 2, -1)
	e02 := g.AddEdge(0, 2, -1)
	w := map[int]float64{e01: 1, e12: 1, e02: 5}
	dist, _ := g.Dijkstra(0, func(e int) float64 { return w[e] })
	if dist[2] != 2 {
		t.Errorf("dist[2]=%v, want 2", dist[2])
	}
	edges := g.DijkstraPathEdges(0, 2, func(e int) float64 { return w[e] })
	if len(edges) != 2 || edges[0] != e01 || edges[1] != e12 {
		t.Errorf("path edges %v", edges)
	}
	// Disabled edge via +Inf.
	w[e12] = math.Inf(1)
	dist, _ = g.Dijkstra(0, func(e int) float64 { return w[e] })
	if dist[2] != 5 {
		t.Errorf("dist[2]=%v with e12 disabled, want 5", dist[2])
	}
	if p := g.DijkstraPathEdges(1, 2, func(e int) float64 { return math.Inf(1) }); p != nil {
		t.Errorf("all-disabled path: %v, want nil", p)
	}
}

func TestDijkstraAgreesWithBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 15
		g := New(n)
		for i := 0; i < 30; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), -1)
		}
		dist, _ := g.Dijkstra(0, func(int) float64 { return 1 })
		via := g.BFS(0, nil)
		for v := 0; v < n; v++ {
			bfsDepth := -1
			if via[v] != -1 {
				bfsDepth = len(g.PathEdges(0, v, nil))
			}
			switch {
			case bfsDepth == -1 && !math.IsInf(dist[v], 1):
				t.Fatalf("trial %d node %d: BFS unreachable, Dijkstra %v", trial, v, dist[v])
			case bfsDepth != -1 && dist[v] != float64(bfsDepth):
				t.Fatalf("trial %d node %d: BFS %d vs Dijkstra %v", trial, v, bfsDepth, dist[v])
			}
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets=%d", u.Sets())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Error("fresh unions should merge")
	}
	if u.Union(0, 2) {
		t.Error("redundant union should report false")
	}
	if u.Sets() != 3 {
		t.Errorf("Sets=%d, want 3", u.Sets())
	}
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		t.Error("connectivity wrong")
	}
}

func TestQuickUnionFindMatchesComponents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		g := New(n)
		u := NewUnionFind(n)
		for i := 0; i < 14; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(a, b, -1)
			u.Union(a, b)
		}
		comp, k := g.Components(nil)
		if k != u.Sets() {
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if (comp[a] == comp[b]) != u.Connected(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Classic 4-node diamond: s=0, t=3; two unit paths.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 1, 1)
	f.AddArc(0, 2, 1, 2)
	f.AddArc(1, 3, 1, 3)
	f.AddArc(2, 3, 1, 4)
	if got := f.MaxFlow(0, 3); got != 2 {
		t.Errorf("max flow %d, want 2", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// s -> a (10), a -> b (3), b -> t (10): bottleneck 3.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 10, 0)
	f.AddArc(1, 2, 3, 1)
	f.AddArc(2, 3, 10, 2)
	if got := f.MaxFlow(0, 3); got != 3 {
		t.Errorf("max flow %d, want 3", got)
	}
	cut := f.MinCutArcs(0)
	if len(cut) != 1 || cut[0] != 1 {
		t.Errorf("min cut labels %v, want [1]", cut)
	}
}

func TestMaxFlowSourceEqualsSink(t *testing.T) {
	f := NewFlowNetwork(2)
	f.AddArc(0, 1, 5, 0)
	if got := f.MaxFlow(0, 0); got != 0 {
		t.Errorf("s==t flow %d", got)
	}
}

func TestMinCutSeparates(t *testing.T) {
	// Grid-ish network; after max flow, the source side must not contain t.
	f := NewFlowNetwork(6)
	f.AddArc(0, 1, 2, 10)
	f.AddArc(0, 2, 2, 11)
	f.AddArc(1, 3, 1, 12)
	f.AddArc(2, 3, 1, 13)
	f.AddArc(1, 4, 1, 14)
	f.AddArc(2, 4, 1, 15)
	f.AddArc(3, 5, 2, 16)
	f.AddArc(4, 5, 2, 17)
	flow := f.MaxFlow(0, 5)
	if flow != 4 {
		t.Fatalf("flow %d, want 4", flow)
	}
	side := f.SourceSide(0)
	if side[5] {
		t.Error("sink on source side after max flow")
	}
	if !side[0] {
		t.Error("source not on source side")
	}
}

func TestMaxFlowMinCutDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 8
		f := NewFlowNetwork(n)
		type arc struct {
			u, v int
			c    int64
		}
		var arcs []arc
		for i := 0; i < 16; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(4) + 1)
			f.AddArc(u, v, c, i)
			arcs = append(arcs, arc{u, v, c})
		}
		flow := f.MaxFlow(0, n-1)
		// Duality: flow equals capacity across the residual cut.
		side := f.SourceSide(0)
		var cutCap int64
		for _, a := range arcs {
			if side[a.u] && !side[a.v] {
				cutCap += a.c
			}
		}
		if flow != cutCap {
			t.Fatalf("trial %d: flow %d != cut capacity %d", trial, flow, cutCap)
		}
	}
}

func TestUndirectedFlow(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddUndirected(0, 1, 1, 0)
	f.AddUndirected(1, 2, 1, 1)
	if got := f.MaxFlow(0, 2); got != 1 {
		t.Errorf("undirected chain flow %d, want 1", got)
	}
}

func TestSplitHelpers(t *testing.T) {
	if SplitIn(3) != 6 || SplitOut(3) != 7 {
		t.Error("split index helpers wrong")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(2).AddEdge(0, 5, -1)
}

func TestBFSIntoMatchesBFS(t *testing.T) {
	g, at := ladder(6)
	enabled := func(e int) bool { return e%3 != 0 }
	want := g.BFS(at(0, 0), enabled)
	via := make([]int, g.N())
	queue := make([]int, 0, g.N())
	got := g.BFSInto(via, queue, []int{at(0, 0)}, enabled)
	for n := range want {
		if (want[n] == -1) != (got[n] == -1) || want[n] == -2 && got[n] != -2 {
			t.Fatalf("node %d: BFS via %d, BFSInto via %d", n, want[n], got[n])
		}
	}
	// Reuse: a second search into the same buffers must fully reset state.
	got = g.BFSInto(via, queue, []int{at(1, 5)}, nil)
	if got[at(1, 5)] != -2 || got[at(0, 0)] == -1 {
		t.Fatalf("reused buffers gave %v", got)
	}
}

func TestBFSIntoMultiSource(t *testing.T) {
	// Two disjoint paths: 0-1-2 and 3-4-5.
	g := New(6)
	g.AddEdge(0, 1, -1)
	g.AddEdge(1, 2, -1)
	g.AddEdge(3, 4, -1)
	g.AddEdge(4, 5, -1)
	via := g.BFSInto(make([]int, g.N()), make([]int, 0, g.N()), []int{0, 3}, nil)
	for n := 0; n < g.N(); n++ {
		if via[n] == -1 {
			t.Errorf("node %d unreachable from source set {0,3}", n)
		}
	}
	if via[0] != -2 || via[3] != -2 {
		t.Errorf("sources not marked: via[0]=%d via[3]=%d", via[0], via[3])
	}
	// Duplicate sources must be harmless.
	via = g.BFSInto(via, make([]int, 0, g.N()), []int{0, 0, 0}, nil)
	if via[2] == -1 || via[3] != -1 {
		t.Errorf("duplicate-source search gave %v", via)
	}
}

func TestBFSIntoEmptySources(t *testing.T) {
	g, _ := ladder(3)
	via := g.BFSInto(make([]int, g.N()), make([]int, 0, g.N()), nil, nil)
	for n, v := range via {
		if v != -1 {
			t.Errorf("node %d reached with no sources (via %d)", n, v)
		}
	}
}

// TestBFSWordsMatchesPerLaneBFS pins the word-parallel BFS against 64
// independent boolean BFS runs on random graphs with random per-edge enable
// masks: bit k of every node's reach word must equal lane k's scalar
// reachability.
func TestBFSWordsMatchesPerLaneBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		g := New(n)
		m := rng.Intn(3 * n)
		for e := 0; e < m; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), e)
		}
		masks := make([]uint64, g.M())
		for e := range masks {
			masks[e] = rng.Uint64()
		}
		srcs := []int{rng.Intn(n)}
		if rng.Intn(2) == 1 {
			srcs = append(srcs, rng.Intn(n))
		}
		seed := rng.Uint64() | 1 // at least one active lane
		reach := g.BFSWordsInto(make([]uint64, n), make([]int, n), make([]bool, n),
			srcs, seed, masks)
		for lane := 0; lane < 64; lane++ {
			bit := uint64(1) << lane
			if seed&bit == 0 {
				// Lanes outside the seed mask must not propagate at all.
				for v := 0; v < n; v++ {
					if reach[v]&bit != 0 {
						t.Fatalf("trial %d lane %d node %d reached outside seed", trial, lane, v)
					}
				}
				continue
			}
			via := g.BFSInto(make([]int, n), make([]int, 0, n), srcs,
				func(e int) bool { return masks[e]&bit != 0 })
			for v := 0; v < n; v++ {
				if (reach[v]&bit != 0) != (via[v] != -1) {
					t.Fatalf("trial %d lane %d node %d: word %v, scalar %v",
						trial, lane, v, reach[v]&bit != 0, via[v] != -1)
				}
			}
		}
	}
}

// TestBFSWordsRequeue forces the fixpoint path: a cycle where each lane
// enables a different prefix of the ring, so nodes are reached by later
// frontiers in additional universes and must re-enter the queue.
func TestBFSWordsRequeue(t *testing.T) {
	const n = 8
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, i)
	}
	// Edge i conducts in lanes i..63: lane k pressurizes nodes 0..? Edge i
	// enabled in lane k iff k >= i, so lane k reaches node v iff all edges
	// 0..v-1 are enabled, i.e. k >= v-1.
	enabled := make([]uint64, g.M())
	for e := range enabled {
		enabled[e] = ^uint64(0) << e
	}
	reach := g.BFSWordsInto(make([]uint64, n), make([]int, n), make([]bool, n),
		[]int{0}, ^uint64(0), enabled)
	for v := 1; v < n; v++ {
		want := ^uint64(0) << (v - 1)
		if reach[v] != want {
			t.Fatalf("node %d reach %#x, want %#x", v, reach[v], want)
		}
	}
}

// TestBFSWordsEmptyAndSources covers the degenerate shapes: no sources, an
// empty seed mask, all-zero enable masks, and duplicate sources.
func TestBFSWordsEmptyAndSources(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	open := []uint64{^uint64(0)}
	reach := g.BFSWordsInto(make([]uint64, 3), make([]int, 3), make([]bool, 3),
		nil, ^uint64(0), open)
	for v, r := range reach {
		if r != 0 {
			t.Fatalf("no sources: node %d reach %#x", v, r)
		}
	}
	reach = g.BFSWordsInto(reach, make([]int, 3), make([]bool, 3),
		[]int{0}, 0, open)
	for v, r := range reach {
		if r != 0 {
			t.Fatalf("zero seed: node %d reach %#x", v, r)
		}
	}
	reach = g.BFSWordsInto(reach, make([]int, 3), make([]bool, 3),
		[]int{2, 2}, ^uint64(0), []uint64{0})
	if reach[2] != ^uint64(0) || reach[0] != 0 || reach[1] != 0 {
		t.Fatalf("isolated source: reach %v", reach)
	}
}
