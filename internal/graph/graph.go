// Package graph provides the graph algorithms the test-generation framework
// relies on: breadth-first reachability with path recovery, connected
// components, union-find, Dijkstra shortest paths, and Dinic max-flow /
// min-cut. Go's standard library has no graph support, so this package is
// the substrate equivalent of the scientific graph libraries the paper's
// C++ implementation could lean on.
package graph

import (
	"fmt"
	"math"
)

// Graph is an undirected multigraph over dense node indices 0..N-1. Each
// edge has a dense edge index and an optional caller-supplied label (for the
// FPVA use case the label is the valve ID the edge represents).
type Graph struct {
	n     int
	adj   [][]Arc
	edges []Edge

	// Flat CSR mirror of adj for the word-parallel relax loop: the arcs out
	// of node u are csrTo/csrEdge[csrHead[u]:csrHead[u+1]]. int32 entries
	// halve the memory traffic of the hottest loop in the repo and drop the
	// per-node slice-header chase. Rebuilt lazily after AddEdge.
	csrOK   bool
	csrHead []int32
	csrTo   []int32
	csrEdge []int32
}

// Edge is one undirected edge.
type Edge struct {
	U, V  int
	Label int
}

// Arc is an edge as seen from one endpoint.
type Arc struct {
	To   int // neighbour node
	Edge int // edge index into Edges()
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts an undirected edge u-v with the given label and returns
// its edge index. Self-loops and parallel edges are allowed.
func (g *Graph) AddEdge(u, v, label int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge %d-%d out of range [0,%d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Label: label})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	if u != v {
		g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	}
	g.csrOK = false
	return id
}

// ensureCSR (re)builds the flat adjacency mirror. Graphs here are built once
// and then queried, so in the steady state this is a cheap flag check and the
// word-parallel hot path stays allocation-free.
func (g *Graph) ensureCSR() {
	if g.csrOK {
		return
	}
	arcs := 0
	for _, a := range g.adj {
		arcs += len(a)
	}
	if g.n > math.MaxInt32 || arcs > math.MaxInt32 {
		panic("graph: node or arc count overflows the CSR index width")
	}
	if cap(g.csrHead) < g.n+1 {
		//lint:ignore fpva/allocfree rebuilt only after graph mutation, then reused
		g.csrHead = make([]int32, g.n+1)
	}
	g.csrHead = g.csrHead[:g.n+1]
	if cap(g.csrTo) < arcs {
		//lint:ignore fpva/allocfree rebuilt only after graph mutation, then reused
		g.csrTo = make([]int32, arcs)
		//lint:ignore fpva/allocfree rebuilt only after graph mutation, then reused
		g.csrEdge = make([]int32, arcs)
	}
	g.csrTo = g.csrTo[:arcs]
	g.csrEdge = g.csrEdge[:arcs]
	pos := 0
	for u, as := range g.adj {
		g.csrHead[u] = int32(pos)
		for _, a := range as {
			g.csrTo[pos] = int32(a.To)
			g.csrEdge[pos] = int32(a.Edge)
			pos++
		}
	}
	g.csrHead[g.n] = int32(pos)
	g.csrOK = true
}

// Adj returns the arcs out of node u. The slice must not be modified.
func (g *Graph) Adj(u int) []Arc { return g.adj[u] }

// EdgeAt returns edge e.
func (g *Graph) EdgeAt(e int) Edge { return g.edges[e] }

// Edges returns all edges. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// BFS runs breadth-first search from src with edges filtered by enabled
// (nil means all edges usable). It returns, for each node, the edge index
// used to first reach it (-1 if unreached, -2 for src itself).
func (g *Graph) BFS(src int, enabled func(e int) bool) []int {
	return g.BFSInto(make([]int, g.n), make([]int, 0, g.n), []int{src}, enabled)
}

// BFSInto is the allocation-free, multi-source variant of BFS. It writes the
// via-edge result into the caller-provided via slice (len(via) must be at
// least N()) and uses queue's backing array as frontier scratch (cap(queue)
// should be at least N() to stay allocation-free). Every node in srcs is
// seeded with via = -2; reachability is therefore computed from the source
// set as a whole. It returns via, resliced to length N().
//
//fpva:allocfree
func (g *Graph) BFSInto(via, queue []int, srcs []int, enabled func(e int) bool) []int {
	via = via[:g.n]
	for i := range via {
		via[i] = -1
	}
	queue = queue[:0]
	for _, s := range srcs {
		if via[s] == -1 {
			via[s] = -2
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range g.adj[u] {
			if via[a.To] != -1 || (enabled != nil && !enabled(a.Edge)) {
				continue
			}
			via[a.To] = a.Edge
			queue = append(queue, a.To)
		}
	}
	return via
}

// BFSWordsInto is the bit-parallel (PPSFP-style) variant of BFSInto: it
// propagates up to 64 independent edge-enable universes at once. reach
// holds one uint64 per node whose bit k means "node reached in universe k";
// enabled holds, per edge index, the mask of universes in which that edge
// conducts. Every source node is seeded with the seed mask, so only lanes
// set in seed propagate at all — callers pass the lanes they care about
// (a hot-path optimization: lanes whose answer is already known are not
// dragged through the traversal) and must mask results by seed.
//
// Unlike the boolean BFS, a node's mask can grow after it has been
// processed (a later frontier may reach it in additional universes), so
// nodes re-enter the frontier until a fixpoint; inq deduplicates queue
// membership, which bounds the queue to N() entries and lets it run as a
// ring buffer over the caller's scratch. len(reach), len(queue) and
// len(inq) must each be at least N(); len(enabled) at least M(). It
// returns reach, resliced to N().
//
//fpva:allocfree
func (g *Graph) BFSWordsInto(reach []uint64, queue []int, inq []bool, srcs []int, seed uint64, enabled []uint64) []uint64 {
	n := g.n
	reach = reach[:n]
	for i := range reach {
		reach[i] = 0
	}
	if n == 0 || seed == 0 {
		return reach
	}
	for _, s := range srcs {
		reach[s] = seed
	}
	return g.RelaxWordsInto(reach, queue, inq, srcs, enabled)
}

// RelaxWordsInto is the incremental core of BFSWordsInto: it runs the
// word-parallel reachability fixpoint from a caller-initialized state.
// reach must already hold, per node, a lane mask that is a lower bound of
// that node's reachability closed under everything except the arcs out of
// the start nodes (e.g. the exact reachability of a subgraph missing some
// of this graph's edges); starts lists the nodes whose outgoing arcs may
// now propagate further — duplicate entries are fine. On return reach is
// the closure of the initial state under all enabled arcs.
//
// This is what makes lanes that only ADD edges relative to a precomputed
// base state cheap: seed reach with the base reachability, list just the
// new edges' endpoints, and the fixpoint touches only the region those
// edges actually unlock instead of re-flooding the whole graph.
//
//fpva:allocfree
func (g *Graph) RelaxWordsInto(reach []uint64, queue []int, inq []bool, starts []int, enabled []uint64) []uint64 {
	n := g.n
	reach = reach[:n]
	if n == 0 {
		return reach
	}
	g.ensureCSR() // no-op unless the graph changed since the last call
	csrHead, csrTo, csrEdge := g.csrHead, g.csrTo, g.csrEdge
	queue = queue[:n]
	inq = inq[:n]
	for i := range inq {
		inq[i] = false
	}
	head, tail, count := 0, 0, 0
	for _, s := range starts {
		if !inq[s] {
			inq[s] = true
			queue[tail] = s
			tail++
			if tail == n {
				tail = 0
			}
			count++
		}
	}
	for count > 0 {
		u := queue[head]
		head++
		if head == n {
			head = 0
		}
		count--
		inq[u] = false
		ru := reach[u]
		for i, end := csrHead[u], csrHead[u+1]; i < end; i++ {
			to := csrTo[i]
			add := ru & enabled[csrEdge[i]] &^ reach[to]
			if add == 0 {
				continue
			}
			reach[to] |= add
			if !inq[to] {
				inq[to] = true
				queue[tail] = int(to)
				tail++
				if tail == n {
					tail = 0
				}
				count++
			}
		}
	}
	return reach
}

// Reachable reports whether dst can be reached from src through enabled
// edges.
func (g *Graph) Reachable(src, dst int, enabled func(e int) bool) bool {
	return g.BFS(src, enabled)[dst] != -1
}

// Path returns the node sequence of a shortest (fewest-edge) path from src
// to dst through enabled edges, or nil if none exists.
func (g *Graph) Path(src, dst int, enabled func(e int) bool) []int {
	via := g.BFS(src, enabled)
	if via[dst] == -1 {
		return nil
	}
	var rev []int
	u := dst
	for u != src {
		rev = append(rev, u)
		e := g.edges[via[u]]
		if e.U == u {
			u = e.V
		} else {
			u = e.U
		}
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathEdges returns the edge indices of a shortest path src->dst through
// enabled edges, or nil if none exists.
func (g *Graph) PathEdges(src, dst int, enabled func(e int) bool) []int {
	via := g.BFS(src, enabled)
	if via[dst] == -1 {
		return nil
	}
	var rev []int
	u := dst
	for u != src {
		eid := via[u]
		rev = append(rev, eid)
		e := g.edges[eid]
		if e.U == u {
			u = e.V
		} else {
			u = e.U
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Components returns a component label per node and the component count,
// considering only enabled edges.
func (g *Graph) Components(enabled func(e int) bool) ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				if comp[a.To] != -1 || (enabled != nil && !enabled(a.Edge)) {
					continue
				}
				comp[a.To] = next
				queue = append(queue, a.To)
			}
		}
		next++
	}
	return comp, next
}

// DijkstraScratch holds the reusable working set of repeated Dijkstra runs
// over one graph: distance/via/done arrays and the binary heap. Routing
// loops that call Dijkstra thousands of times (path patching, leakage
// vector construction) hold one scratch and allocate nothing per query.
type DijkstraScratch struct {
	dist []float64
	via  []int
	done []bool
	h    heapF
}

// NewDijkstraScratch sizes a scratch for this graph.
func (g *Graph) NewDijkstraScratch() *DijkstraScratch {
	return &DijkstraScratch{
		dist: make([]float64, g.n),
		via:  make([]int, g.n),
		done: make([]bool, g.n),
		h:    heapF{node: make([]int, 0, g.n), prio: make([]float64, 0, g.n)},
	}
}

// Dijkstra computes shortest path distances from src with per-edge weights
// given by weight (return math.Inf(1) to disable an edge). It returns the
// distance slice and the via-edge slice in the same convention as BFS.
func (g *Graph) Dijkstra(src int, weight func(e int) float64) ([]float64, []int) {
	dist, via := g.DijkstraInto(g.NewDijkstraScratch(), src, weight)
	return dist, via
}

// DijkstraInto is Dijkstra over caller-owned scratch; the returned slices
// alias the scratch and are valid until its next use.
//
//fpva:allocfree
func (g *Graph) DijkstraInto(sc *DijkstraScratch, src int, weight func(e int) float64) ([]float64, []int) {
	dist, via, done := sc.dist, sc.via, sc.done
	for i := range dist {
		dist[i] = math.Inf(1)
		via[i] = -1
		done[i] = false
	}
	dist[src] = 0
	via[src] = -2
	h := &sc.h
	h.node, h.prio = h.node[:0], h.prio[:0]
	h.push(src, 0)
	for h.len() > 0 {
		u, du := h.pop()
		if done[u] || du > dist[u] {
			continue
		}
		done[u] = true
		for _, a := range g.adj[u] {
			w := weight(a.Edge)
			if math.IsInf(w, 1) || w < 0 {
				if w < 0 {
					panic("graph: negative edge weight in Dijkstra")
				}
				continue
			}
			if nd := du + w; nd < dist[a.To] {
				dist[a.To] = nd
				via[a.To] = a.Edge
				h.push(a.To, nd)
			}
		}
	}
	return dist, via
}

// DijkstraPathEdges returns the edge indices of a minimum-weight path
// src->dst, or nil if unreachable.
func (g *Graph) DijkstraPathEdges(src, dst int, weight func(e int) float64) []int {
	return g.DijkstraPathEdgesInto(g.NewDijkstraScratch(), src, dst, weight, nil)
}

// DijkstraPathEdgesInto is DijkstraPathEdges over caller-owned scratch,
// appending the edge sequence to buf (pass buf[:0] to reuse its backing
// array). It returns nil if dst is unreachable.
func (g *Graph) DijkstraPathEdgesInto(sc *DijkstraScratch, src, dst int, weight func(e int) float64, buf []int) []int {
	dist, via := g.DijkstraInto(sc, src, weight)
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	rev := buf
	u := dst
	for u != src {
		eid := via[u]
		rev = append(rev, eid)
		e := g.edges[eid]
		if e.U == u {
			u = e.V
		} else {
			u = e.U
		}
	}
	// Reverse only the appended suffix, preserving any existing prefix.
	for i, j := len(buf), len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// heapF is a minimal binary min-heap of (node, priority) pairs.
type heapF struct {
	node []int
	prio []float64
}

func (h *heapF) len() int { return len(h.node) }

func (h *heapF) push(n int, p float64) {
	h.node = append(h.node, n)
	h.prio = append(h.prio, p)
	i := len(h.node) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heapF) pop() (int, float64) {
	n, p := h.node[0], h.prio[0]
	last := len(h.node) - 1
	h.swap(0, last)
	h.node = h.node[:last]
	h.prio = h.prio[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.prio[l] < h.prio[small] {
			small = l
		}
		if r < last && h.prio[r] < h.prio[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return n, p
}

func (h *heapF) swap(i, j int) {
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
}

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the set representative of x.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }
