package graph

// Dinic max-flow on a directed flow network, used for minimal cut-set
// construction and for disjoint-path queries during path patching. Arc
// capacities are integers; node capacities can be modelled by the usual
// node-splitting transform (see SplitNodes).

// FlowNetwork is a directed graph with integer capacities prepared for
// Dinic's algorithm.
type FlowNetwork struct {
	n     int
	head  [][]int
	to    []int
	cap   []int64
	label []int
}

// NewFlowNetwork creates an empty network with n nodes.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{n: n, head: make([][]int, n)}
}

// N returns the node count.
func (f *FlowNetwork) N() int { return f.n }

// AddArc adds a directed arc u->v with the given capacity and label, plus
// the implicit residual arc. It returns the arc index (even numbers are
// forward arcs).
func (f *FlowNetwork) AddArc(u, v int, capacity int64, label int) int {
	id := len(f.to)
	f.to = append(f.to, v, u)
	f.cap = append(f.cap, capacity, 0)
	f.label = append(f.label, label, label)
	f.head[u] = append(f.head[u], id)
	f.head[v] = append(f.head[v], id+1)
	return id
}

// AddUndirected adds an undirected unit of capacity between u and v by
// inserting forward arcs both ways.
func (f *FlowNetwork) AddUndirected(u, v int, capacity int64, label int) (int, int) {
	return f.AddArc(u, v, capacity, label), f.AddArc(v, u, capacity, label)
}

// MaxFlow runs Dinic's algorithm and returns the maximum s-t flow value.
// The network retains the residual state afterwards, which MinCut uses.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, f.n)
	iter := make([]int, f.n)
	for f.bfsLevel(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfsAugment(s, t, int64(1)<<62, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (f *FlowNetwork) bfsLevel(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range f.head[u] {
			if f.cap[a] > 0 && level[f.to[a]] == -1 {
				level[f.to[a]] = level[u] + 1
				queue = append(queue, f.to[a])
			}
		}
	}
	return level[t] != -1
}

func (f *FlowNetwork) dfsAugment(u, t int, limit int64, level, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(f.head[u]); iter[u]++ {
		a := f.head[u][iter[u]]
		v := f.to[a]
		if f.cap[a] <= 0 || level[v] != level[u]+1 {
			continue
		}
		d := limit
		if f.cap[a] < d {
			d = f.cap[a]
		}
		pushed := f.dfsAugment(v, t, d, level, iter)
		if pushed > 0 {
			f.cap[a] -= pushed
			f.cap[a^1] += pushed
			return pushed
		}
	}
	return 0
}

// MinCutArcs returns, after MaxFlow(s, t), the saturated forward arcs that
// cross the residual source side — a minimum cut. The result holds the
// labels of those arcs (duplicates removed, order of first appearance).
func (f *FlowNetwork) MinCutArcs(s int) []int {
	side := make([]bool, f.n)
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range f.head[u] {
			if f.cap[a] > 0 && !side[f.to[a]] {
				side[f.to[a]] = true
				queue = append(queue, f.to[a])
			}
		}
	}
	seen := make(map[int]bool)
	var labels []int
	for a := 0; a < len(f.to); a += 2 { // forward arcs only
		u, v := f.to[a^1], f.to[a]
		if side[u] && !side[v] && !seen[f.label[a]] {
			seen[f.label[a]] = true
			labels = append(labels, f.label[a])
		}
	}
	return labels
}

// SourceSide returns, after MaxFlow, whether each node lies on the residual
// source side of the cut.
func (f *FlowNetwork) SourceSide(s int) []bool {
	side := make([]bool, f.n)
	side[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range f.head[u] {
			if f.cap[a] > 0 && !side[f.to[a]] {
				side[f.to[a]] = true
				queue = append(queue, f.to[a])
			}
		}
	}
	return side
}

// SplitIn and SplitOut map an original node index to its in/out copy when
// node capacities are modelled by node splitting: node i becomes in-node 2i
// and out-node 2i+1, joined by an internal arc carrying the node capacity.
func SplitIn(i int) int { return 2 * i }

// SplitOut is the out-copy of node i under the node-splitting transform.
func SplitOut(i int) int { return 2*i + 1 }
