package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// TestWorkersBitIdentical is the determinism contract: for any worker
// count, a completed solve returns exactly the same solution, down to the
// last bit of every coordinate.
func TestWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		var m Model
		n := 6 + rng.Intn(6)
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			vars[j] = m.AddBinary(float64(rng.Intn(11)-5), "x")
		}
		rows := 3 + rng.Intn(4)
		for i := 0; i < rows; i++ {
			var idx []VarID
			var coef []float64
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					idx = append(idx, vars[j])
					coef = append(coef, float64(rng.Intn(5)-2))
				}
			}
			if len(idx) == 0 {
				continue
			}
			m.AddCons(idx, coef, lp.Sense(rng.Intn(3)), float64(rng.Intn(9)-3))
		}
		base := m.Solve(context.Background(), Options{})
		for _, workers := range []int{2, 4, 7} {
			got := m.Solve(context.Background(), Options{Workers: workers})
			if got.Status != base.Status {
				t.Fatalf("trial %d workers %d: status %v vs %v", trial, workers, got.Status, base.Status)
			}
			if got.Obj != base.Obj {
				t.Fatalf("trial %d workers %d: obj %v vs %v", trial, workers, got.Obj, base.Obj)
			}
			for j := range base.X {
				if got.X[j] != base.X[j] {
					t.Fatalf("trial %d workers %d: X[%d]=%v vs %v", trial, workers, j, got.X[j], base.X[j])
				}
			}
		}
	}
}

// TestParallelMatchesSerialOnKnapsack exercises the pool on a model with
// many ties (identical items), where incumbent ordering is most fragile.
func TestParallelMatchesSerialOnKnapsack(t *testing.T) {
	var m Model
	vars := make([]VarID, 12)
	coef := make([]float64, 12)
	for i := range vars {
		vars[i] = m.AddBinary(-3, "x") // all items identical: maximal ties
		coef[i] = 2
	}
	m.AddCons(vars, coef, lp.LE, 11)
	base := m.Solve(context.Background(), Options{})
	if base.Status != Optimal || !approx(base.Obj, -15) {
		t.Fatalf("serial: %v obj %v, want -15", base.Status, base.Obj)
	}
	for _, workers := range []int{2, 5, 16} {
		got := m.Solve(context.Background(), Options{Workers: workers})
		if got.Status != base.Status || got.Obj != base.Obj {
			t.Fatalf("workers %d: (%v, %v) vs (%v, %v)", workers, got.Status, got.Obj, base.Status, base.Obj)
		}
		for j := range base.X {
			if got.X[j] != base.X[j] {
				t.Fatalf("workers %d: X[%d] differs", workers, j)
			}
		}
	}
}

// TestWarmStartAcrossSolves reuses the root basis between same-shape models
// (the iterative set-cover pattern) and verifies it cannot change results.
func TestWarmStartAcrossSolves(t *testing.T) {
	build := func(obj []float64) *Model {
		var m Model
		vars := make([]VarID, len(obj))
		for j, o := range obj {
			vars[j] = m.AddBinary(o, "x")
		}
		m.AddCons(vars, []float64{2, 3, 4, 5}, lp.LE, 8)
		m.AddCons(vars, []float64{1, 1, 1, 1}, lp.GE, 1)
		return &m
	}
	first := build([]float64{-2, -3, -4, -5}).Solve(context.Background(), Options{})
	if first.Status != Optimal {
		t.Fatalf("first solve: %v", first.Status)
	}
	if first.WarmStart == nil {
		t.Fatal("no warm-start handle returned")
	}
	second := build([]float64{-5, -1, -1, -2})
	cold := second.Solve(context.Background(), Options{})
	warm := second.Solve(context.Background(), Options{WarmStart: first.WarmStart})
	if warm.Status != cold.Status || warm.Obj != cold.Obj {
		t.Fatalf("warm (%v, %v) vs cold (%v, %v)", warm.Status, warm.Obj, cold.Status, cold.Obj)
	}
	for j := range cold.X {
		if warm.X[j] != cold.X[j] {
			t.Fatalf("X[%d] differs under warm start", j)
		}
	}
	// A shape mismatch must be ignored, not crash or corrupt.
	var other Model
	other.AddBinary(-1, "y")
	sol := other.Solve(context.Background(), Options{WarmStart: first.WarmStart})
	if sol.Status != Optimal || !approx(sol.Obj, -1) {
		t.Fatalf("shape-mismatched warm start: %v obj %v", sol.Status, sol.Obj)
	}
}

// TestFixVarAndSetVarBounds cover the bounds API used by the model
// builders in place of singleton equality rows.
func TestFixVarAndSetVarBounds(t *testing.T) {
	var m Model
	x := m.AddBinary(-1, "x")
	y := m.AddBinary(-1, "y")
	m.AddCons([]VarID{x, y}, []float64{1, 1}, lp.LE, 1)
	m.FixVar(x, 1)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || !approx(s.X[x], 1) || !approx(s.X[y], 0) {
		t.Fatalf("fix: %v x=%v", s.Status, s.X)
	}
	m.SetVarBounds(x, 0, 1) // un-fix; optimum stays -1 but either var may carry it
	s2 := m.Solve(context.Background(), Options{})
	if s2.Status != Optimal || !approx(s2.Obj, -1) {
		t.Fatalf("unfix: %v obj %v", s2.Status, s2.Obj)
	}
	mustPanic(t, func() { m.SetVarBounds(x, 2, 1) })
}

// TestLPIterLimitNeverClaimsInfeasible: a node dropped on its LP iteration
// budget makes the search non-exhaustive — the solver must degrade to
// Feasible/Limit, not fabricate Infeasible (or Optimal) verdicts.
func TestLPIterLimitNeverClaimsInfeasible(t *testing.T) {
	var m Model
	x := m.AddBinary(-1, "x")
	y := m.AddBinary(-1, "y")
	m.AddCons([]VarID{x, y}, []float64{1, 1}, lp.LE, 1)
	m.AddCons([]VarID{x, y}, []float64{1, -1}, lp.GE, 0)
	s := m.Solve(context.Background(), Options{MaxLPIters: 1})
	if s.Status == Infeasible || s.Status == Optimal {
		t.Fatalf("starved solve claimed %v; want Feasible or Limit", s.Status)
	}
	full := m.Solve(context.Background(), Options{})
	if full.Status != Optimal || !approx(full.Obj, -1) {
		t.Fatalf("full solve: %v obj %v, want optimal -1", full.Status, full.Obj)
	}
}

// TestReducedCostTighteningStaysExact: dense objectives make reduced-cost
// fixing fire; the optimum must still match brute force.
func TestReducedCostTighteningStaysExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		var m Model
		n := 5 + rng.Intn(4)
		vars := make([]VarID, n)
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			vars[j] = m.AddBinary(float64(-1-rng.Intn(9)), "x")
			w[j] = float64(1 + rng.Intn(6))
		}
		m.AddCons(vars, w, lp.LE, float64(3+rng.Intn(12)))
		got := m.Solve(context.Background(), Options{})
		if got.Status != Optimal {
			t.Fatalf("trial %d: %v", trial, got.Status)
		}
		want := bruteForce01(&m)
		if math.Abs(got.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: solver %v, brute force %v", trial, got.Obj, want)
		}
	}
}
