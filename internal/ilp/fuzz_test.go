package ilp

import (
	"context"
	"math"
	"testing"

	"repro/internal/lp"
)

// decodeFuzzModel turns a byte stream into a small 0-1 model with integer
// objective coefficients: up to 4 binaries and 4 constraints.
func decodeFuzzModel(data []byte) *Model {
	next := func() (byte, bool) {
		if len(data) == 0 {
			return 0, false
		}
		b := data[0]
		data = data[1:]
		return b, true
	}
	b, ok := next()
	if !ok {
		return nil
	}
	n := 1 + int(b)%4
	b, ok = next()
	if !ok {
		return nil
	}
	mrows := int(b) % 4
	var m Model
	for j := 0; j < n; j++ {
		ob, ok := next()
		if !ok {
			return nil
		}
		m.AddBinary(float64(int(ob)%7-3), "x")
	}
	idx := make([]VarID, n)
	for j := range idx {
		idx[j] = VarID(j)
	}
	for i := 0; i < mrows; i++ {
		coef := make([]float64, n)
		for j := 0; j < n; j++ {
			cb, ok := next()
			if !ok {
				return nil
			}
			coef[j] = float64(int(cb)%5 - 2)
		}
		sB, ok1 := next()
		rB, ok2 := next()
		if !ok1 || !ok2 {
			return nil
		}
		m.AddCons(idx, coef, lp.Sense(int(sB)%3), float64(int(rB)%7-3))
	}
	return &m
}

// bruteForce01 enumerates all 0-1 assignments and returns the best
// objective, or +Inf when none is feasible.
func bruteForce01(m *Model) float64 {
	n := m.NumVars()
	best := math.Inf(1)
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64(mask >> j & 1)
		}
		if m.Check(x) != nil {
			continue
		}
		if obj := m.Objective(x); obj < best {
			best = obj
		}
	}
	return best
}

// FuzzModelSolve cross-checks branch-and-bound against exhaustive 0-1
// enumeration, and checks that the result is bit-identical for any worker
// count — the determinism contract of Options.Workers.
func FuzzModelSolve(f *testing.F) {
	f.Add([]byte{2, 1, 3, 1, 2, 1, 0, 1, 2, 5})
	f.Add([]byte{3, 2, 6, 0, 2, 4, 1, 0, 2, 1, 0, 3, 2, 1, 1, 6})
	f.Add([]byte{1, 1, 2, 4, 2, 1})
	f.Add([]byte{0, 3, 5, 0, 0, 4, 1, 1, 2, 2, 1, 3, 0, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeFuzzModel(data)
		if m == nil {
			return
		}
		want := bruteForce01(m)
		serial := m.Solve(context.Background(), Options{})
		if math.IsInf(want, 1) {
			if serial.Status != Infeasible {
				t.Fatalf("brute force infeasible, solver says %v", serial.Status)
			}
		} else {
			if serial.Status != Optimal {
				t.Fatalf("brute force optimum %v, solver says %v", want, serial.Status)
			}
			if math.Abs(serial.Obj-want) > 1e-6 {
				t.Fatalf("solver obj %v, brute force %v", serial.Obj, want)
			}
			if err := m.Check(serial.X); err != nil {
				t.Fatalf("solver solution rejected: %v", err)
			}
		}
		for _, workers := range []int{2, 3, 8} {
			par := m.Solve(context.Background(), Options{Workers: workers})
			if par.Status != serial.Status || par.Obj != serial.Obj {
				t.Fatalf("workers=%d: status/obj (%v, %v) differs from serial (%v, %v)",
					workers, par.Status, par.Obj, serial.Status, serial.Obj)
			}
			if len(par.X) != len(serial.X) {
				t.Fatalf("workers=%d: X length %d vs %d", workers, len(par.X), len(serial.X))
			}
			for j := range par.X {
				if par.X[j] != serial.X[j] {
					t.Fatalf("workers=%d: X[%d]=%v differs from serial %v",
						workers, j, par.X[j], serial.X[j])
				}
			}
		}
	})
}
