package ilp

import (
	"bytes"
	"container/heap"
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/lp"
)

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // valid for Optimal and Feasible
	Obj    float64
	Nodes  int
	// Wall is the wall-clock time the solve took (accounting only; it is
	// not part of the deterministic contract).
	Wall time.Duration
	// WarmStart is a reusable handle for solving another model of the same
	// shape (same variable and constraint counts — e.g. the next round of an
	// iterative set-cover with a different objective, or the same cut model
	// with a different target fixed). Pass it back via Options.WarmStart.
	WarmStart *WarmStart
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; <= 0 means 200000.
	MaxNodes int
	// MaxLPIters bounds simplex iterations per node; <= 0 means automatic.
	MaxLPIters int
	// Workers sets the size of the branch-and-bound worker pool; <= 1 means
	// serial. Status, Obj and X are bit-identical for any worker count
	// whenever the search completes (Status Optimal, Infeasible or
	// Unbounded); Nodes is schedule-dependent accounting, and only
	// budget-exhausted (Feasible/Limit) results may depend on scheduling.
	Workers int
	// WarmStart seeds the root relaxation with a basis from a previous
	// solve of a same-shape model; ignored when the shape differs.
	WarmStart *WarmStart
}

// WarmStart carries an optimal root basis between solves of same-shape
// models.
type WarmStart struct {
	nvars, ncons int
	basis        *lp.Basis
}

// Stats accumulates solve-level accounting across a sequence of Solve
// calls; the generator packages embed it in their Results.
type Stats struct {
	Solves     int           // ILP solves performed
	Nodes      int           // branch-and-bound nodes across all solves
	NonOptimal int           // solves that stopped early: feasible, not proven optimal
	Wall       time.Duration // cumulative solver wall-clock time
}

// Observe folds one solve into the stats. Zero-node solutions (error paths
// that never reached the solver) are not counted.
func (s *Stats) Observe(sol Solution) {
	if sol.Nodes == 0 {
		return
	}
	s.Solves++
	s.Nodes += sol.Nodes
	s.Wall += sol.Wall
	if sol.Status == Feasible {
		s.NonOptimal++
	}
}

const objTol = 1e-9

// bbNode is one branch-and-bound node. Its relaxation is a pure function of
// (model, lb, ub, warm): warm is always the parent's optimal basis, so the
// LP result never depends on which worker processes the node or when.
type bbNode struct {
	lb, ub []float64
	warm   *lp.Basis // parent's optimal basis (nil at the root)
	bound  float64   // parent relaxation bound (objective lower bound)
	uChain float64   // best incumbent objective found along the ancestor chain
	path   []byte    // tree position; lexicographic order is the deterministic "seq"
}

// pathLess orders tree positions: the deterministic tie-break for equal
// objectives ("seq-ordered" incumbent selection).
func pathLess(a, b []byte) bool { return bytes.Compare(a, b) < 0 }

type nodePQ []*bbNode

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return pathLess(q[i].path, q[j].path)
}
func (q nodePQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)   { *q = append(*q, x.(*bbNode)) }
func (q *nodePQ) Pop() any {
	old := *q
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return nd
}

type candidate struct {
	x    []float64
	obj  float64
	path []byte
}

type nodeResult struct {
	children  []*bbNode
	leaf      *candidate // integer-feasible LP optimum at this node
	heur      *candidate // rounding-heuristic incumbent (prune bound only)
	rootBasis *lp.Basis
	unbounded bool
	// lpLimited marks a node dropped because its relaxation could not be
	// solved within MaxLPIters: the search is no longer exhaustive, so the
	// final status must not claim Optimal or Infeasible.
	lpLimited bool
}

// searcher is the shared state of one branch-and-bound run.
type searcher struct {
	m      *Model
	ctx    context.Context
	opt    Options
	objInt bool

	mu        sync.Mutex
	cond      *sync.Cond
	pq        nodePQ
	inflight  int
	nodes     int
	maxNodes  int
	exhausted bool
	lpLimited bool
	unbounded bool
	canceled  bool
	// leaf incumbents decide the returned solution: every leaf with an
	// objective within tolerance of the optimum lives in a node whose bound
	// is at most optimum+tol, and such nodes are explored under every
	// schedule (pruning is strict), so the (obj, path)-minimal leaf is the
	// same for any worker count.
	leafX    []float64
	leafObj  float64
	leafPath []byte
	// heuristic incumbents only sharpen the pruning bound (and serve as a
	// fallback when the node budget runs out before any leaf is reached).
	heurX     []float64
	heurObj   float64
	rootBasis *lp.Basis
}

// Solve runs branch-and-bound and returns the best integer solution. The
// exploration order is best-bound; nodes re-solve from their parent's
// simplex basis via the dual simplex instead of a cold start.
//
// Cancelling ctx (nil means context.Background()) stops the search at the
// next node boundary on every worker and returns Status Canceled; callers
// are expected to translate that into ctx.Err().
func (m *Model) Solve(ctx context.Context, opt Options) Solution {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(m.vars) == 0 {
		return Solution{Status: Optimal, X: nil, Obj: 0}
	}
	t0 := time.Now()
	prob := m.compileLP()
	s := &searcher{
		m:        m,
		ctx:      ctx,
		opt:      opt,
		objInt:   m.objectiveIntegral(),
		maxNodes: opt.MaxNodes,
		leafObj:  math.Inf(1),
		heurObj:  math.Inf(1),
	}
	if s.maxNodes <= 0 {
		s.maxNodes = 200000
	}
	s.cond = sync.NewCond(&s.mu)

	root := &bbNode{
		lb:     make([]float64, len(m.vars)),
		ub:     make([]float64, len(m.vars)),
		bound:  math.Inf(-1),
		uChain: math.Inf(1),
		path:   []byte{},
	}
	for j, v := range m.vars {
		root.lb[j], root.ub[j] = v.lb, v.ub
	}
	if ws := opt.WarmStart; ws != nil && ws.nvars == len(m.vars) && ws.ncons == len(m.cons) {
		root.warm = ws.basis
	}
	heap.Push(&s.pq, root)

	workers := opt.Workers
	if workers <= 1 {
		s.work(lp.NewSolver(prob))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.work(lp.NewSolver(prob))
			}()
		}
		wg.Wait()
	}
	sol := s.assemble()
	sol.Wall = time.Since(t0)
	return sol
}

// work is one worker's loop: pop the best node, solve its relaxation, and
// commit incumbents and children under the lock.
func (s *searcher) work(sv *lp.Solver) {
	for {
		// The per-node cancellation probe: each node costs an LP solve, so
		// this bounds cancel latency to one relaxation per worker.
		if s.ctx.Err() != nil {
			s.mu.Lock()
			s.canceled = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		var nd *bbNode
		for {
			if s.canceled || s.unbounded || (len(s.pq) == 0 && s.inflight == 0) {
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			if len(s.pq) > 0 {
				if s.nodes >= s.maxNodes {
					s.exhausted = true
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				nd = heap.Pop(&s.pq).(*bbNode)
				s.nodes++
				s.inflight++
				break
			}
			s.cond.Wait()
		}
		gub := math.Min(s.leafObj, s.heurObj)
		s.mu.Unlock()

		res := s.process(sv, nd, gub)

		s.mu.Lock()
		s.commit(res)
		s.inflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// process solves one node. Everything here is a pure function of the node
// (gub only prunes strictly-worse subtrees, which never contribute to the
// returned solution), so results are schedule-independent.
func (s *searcher) process(sv *lp.Solver, nd *bbNode, gub float64) nodeResult {
	if nd.bound > gub+objTol || nd.bound > nd.uChain+objTol {
		return nodeResult{}
	}
	sol := sv.Solve(nd.lb, nd.ub, nd.warm, s.opt.MaxLPIters)
	if sol.Status == lp.IterLimit && nd.warm != nil {
		// Deterministic cold retry: the warm basis may be a poor start.
		sol = sv.Solve(nd.lb, nd.ub, nil, s.opt.MaxLPIters)
	}
	var res nodeResult
	switch sol.Status {
	case lp.Infeasible:
		return res
	case lp.Unbounded:
		// A non-root unbounded relaxation is numerically impossible (the
		// parent solved to a bounded optimum over a superset region); treat
		// it like an unexplorable node rather than trusting it.
		if len(nd.path) == 0 {
			res.unbounded = true
		} else {
			res.lpLimited = true
		}
		return res
	case lp.IterLimit:
		res.lpLimited = true // unexplorable within MaxLPIters
		return res
	}
	if len(nd.path) == 0 {
		res.rootBasis = sol.Basis
	}
	bound := sol.Obj
	if s.objInt {
		bound = math.Ceil(bound - 1e-7)
	}
	if bound > gub+objTol || bound > nd.uChain+objTol {
		return res
	}
	branch := s.m.pickFractional(sol.X)
	if branch == -1 {
		x := append([]float64(nil), sol.X...)
		s.m.roundInPlace(x)
		res.leaf = &candidate{x: x, obj: s.m.Objective(x), path: nd.path}
		return res
	}
	uChain := nd.uChain
	if x := s.m.tryRound(sol.X); x != nil {
		obj := s.m.Objective(x)
		res.heur = &candidate{x: x, obj: obj}
		if obj < uChain {
			uChain = obj
		}
	}
	childLB := append([]float64(nil), nd.lb...)
	childUB := append([]float64(nil), nd.ub...)
	s.tightenByReducedCost(nd, &sol, uChain, childLB, childUB)
	f := sol.X[branch]
	down := &bbNode{lb: childLB, ub: append([]float64(nil), childUB...),
		warm: sol.Basis, bound: bound, uChain: uChain}
	down.ub[branch] = math.Floor(f)
	up := &bbNode{lb: append([]float64(nil), childLB...), ub: childUB,
		warm: sol.Basis, bound: bound, uChain: uChain}
	up.lb[branch] = math.Ceil(f)
	// The side nearer the fractional value is the preferred child: it gets
	// the smaller tree position (and thus pops first among equal bounds).
	first, second := up, down
	if f-math.Floor(f) < 0.5 {
		first, second = down, up
	}
	first.path = append(append([]byte(nil), nd.path...), 0)
	second.path = append(append([]byte(nil), nd.path...), 1)
	res.children = []*bbNode{first, second}
	return res
}

// tightenByReducedCost shrinks integer bounds in both children: moving a
// nonbasic variable off its bound costs |reduced cost| per unit, and any
// move pushing the node bound past the chain incumbent cannot contain a
// solution worth returning. Only the deterministic chain incumbent uChain
// is used, never the schedule-dependent global one, so the tree shape stays
// identical for any worker count.
func (s *searcher) tightenByReducedCost(nd *bbNode, sol *lp.Solution, uChain float64, lb, ub []float64) {
	if math.IsInf(uChain, 1) || sol.R == nil {
		return
	}
	budget := uChain + objTol - sol.Obj
	if budget < 0 {
		return
	}
	for j, v := range s.m.vars {
		if !v.integer {
			continue
		}
		rj := sol.R[j]
		switch {
		case rj > objTol && sol.X[j] <= nd.lb[j]+intTol:
			if nu := nd.lb[j] + math.Floor(budget/rj+1e-9); nu < ub[j] {
				ub[j] = nu
			}
		case rj < -objTol && sol.X[j] >= nd.ub[j]-intTol:
			if nl := nd.ub[j] - math.Floor(budget/(-rj)+1e-9); nl > lb[j] {
				lb[j] = nl
			}
		}
	}
}

// commit merges one node's results into the shared state. Incumbent
// selection is a commutative minimum over (objective, tree position), so
// arrival order cannot change the outcome.
func (s *searcher) commit(res nodeResult) {
	if res.unbounded {
		s.unbounded = true
	}
	if res.lpLimited {
		s.lpLimited = true
	}
	if res.rootBasis != nil {
		s.rootBasis = res.rootBasis
	}
	// Exact lexicographic (obj, path) comparison: a total order, so this is
	// a commutative minimum — arrival order cannot change the outcome even
	// when distinct objectives differ by less than the pruning tolerance.
	if c := res.leaf; c != nil {
		if s.leafX == nil || c.obj < s.leafObj ||
			(c.obj == s.leafObj && pathLess(c.path, s.leafPath)) {
			s.leafX, s.leafObj, s.leafPath = c.x, c.obj, c.path
		}
	}
	if c := res.heur; c != nil && c.obj < s.heurObj {
		s.heurX, s.heurObj = c.x, c.obj
	}
	for _, child := range res.children {
		heap.Push(&s.pq, child)
	}
}

func (s *searcher) assemble() Solution {
	sol := Solution{Nodes: s.nodes}
	if s.rootBasis != nil {
		sol.WarmStart = &WarmStart{nvars: len(s.m.vars), ncons: len(s.m.cons), basis: s.rootBasis}
	}
	if s.canceled {
		sol.Status = Canceled
		return sol
	}
	if s.unbounded {
		sol.Status = Unbounded
		return sol
	}
	x, obj := s.leafX, s.leafObj
	if x == nil || (s.heurX != nil && s.heurObj < obj) {
		// Only reachable when the search stopped before the best leaf.
		x, obj = s.heurX, s.heurObj
	}
	// A node dropped on its LP iteration budget means the search was not
	// exhaustive: never claim Optimal or Infeasible past one.
	incomplete := s.exhausted || s.lpLimited
	switch {
	case x == nil && incomplete:
		sol.Status = Limit
	case x == nil:
		sol.Status = Infeasible
	case incomplete:
		sol.Status, sol.X, sol.Obj = Feasible, x, obj
	default:
		sol.Status, sol.X, sol.Obj = Optimal, x, obj
	}
	return sol
}
