package ilp

import (
	"bytes"
	"container/heap"
	"context"
	"math"
	"sync"
	"time"

	"repro/internal/lp"
)

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // valid for Optimal and Feasible
	Obj    float64
	Nodes  int
	// Wall is the wall-clock time the solve took (accounting only; it is
	// not part of the deterministic contract).
	Wall time.Duration
	// WarmStart is a reusable handle for solving another model of the same
	// shape (same variable and constraint counts — e.g. the next round of an
	// iterative set-cover with a different objective, or the same cut model
	// with a different target fixed). Pass it back via Options.WarmStart.
	WarmStart *WarmStart
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; <= 0 means 200000.
	MaxNodes int
	// MaxLPIters bounds simplex iterations per node; <= 0 means automatic.
	MaxLPIters int
	// Workers sets the size of the branch-and-bound worker pool; <= 1 means
	// serial. Status, Obj and X are bit-identical for any worker count
	// whenever the search completes (Status Optimal, Infeasible or
	// Unbounded); Nodes is schedule-dependent accounting, and only
	// budget-exhausted (Feasible/Limit) results may depend on scheduling.
	Workers int
	// WarmStart seeds the root relaxation with a basis from a previous
	// solve of a same-shape model; ignored when the shape differs.
	WarmStart *WarmStart
}

// WarmStart carries an optimal root basis between solves of same-shape
// models.
type WarmStart struct {
	nvars, ncons int
	basis        *lp.Basis
}

// Stats accumulates solve-level accounting across a sequence of Solve
// calls; the generator packages embed it in their Results.
type Stats struct {
	Solves     int           // ILP solves performed
	Nodes      int           // branch-and-bound nodes across all solves
	NonOptimal int           // solves that stopped early: feasible, not proven optimal
	Wall       time.Duration // cumulative solver wall-clock time
}

// Observe folds one solve into the stats. Zero-node solutions (error paths
// that never reached the solver) are not counted.
func (s *Stats) Observe(sol Solution) {
	if sol.Nodes == 0 {
		return
	}
	s.Solves++
	s.Nodes += sol.Nodes
	s.Wall += sol.Wall
	if sol.Status == Feasible {
		s.NonOptimal++
	}
}

const objTol = 1e-9

// basisRef is a refcounted basis snapshot shared by the two children of a
// branch-and-bound node. Snapshots live in pooled slabs instead of being
// copied per child, so the steady-state search allocates no basis memory.
type basisRef struct {
	status []int8
	refs   int
}

// bbNode is one branch-and-bound node. Its relaxation is a pure function of
// (model, lb, ub, warm): warm is always the parent's optimal basis, so the
// LP result never depends on which worker processes the node or when.
// Nodes and their slices cycle through the searcher's pools.
type bbNode struct {
	lb, ub []float64
	warm   *basisRef // parent's optimal basis (nil at the root)
	bound  float64   // parent relaxation bound (objective lower bound)
	uChain float64   // best incumbent objective found along the ancestor chain
	path   []byte    // tree position; lexicographic order is the deterministic "seq"
}

// pathLess orders tree positions: the deterministic tie-break for equal
// objectives ("seq-ordered" incumbent selection).
func pathLess(a, b []byte) bool { return bytes.Compare(a, b) < 0 }

type nodePQ []*bbNode

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return pathLess(q[i].path, q[j].path)
}
func (q nodePQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x any)   { *q = append(*q, x.(*bbNode)) }
func (q *nodePQ) Pop() any {
	old := *q
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return nd
}

// candidate carries an incumbent from process to commit. x and path alias
// per-worker scratch; commit copies them only when they win the incumbent
// race, so losing candidates cost nothing.
type candidate struct {
	x    []float64
	obj  float64
	path []byte
}

type nodeResult struct {
	children  [2]*bbNode // nil when not branching
	leaf      *candidate // integer-feasible LP optimum at this node
	heur      *candidate // rounding-heuristic incumbent (prune bound only)
	rootBasis *lp.Basis
	unbounded bool
	// lpLimited marks a node dropped because its relaxation could not be
	// solved within MaxLPIters: the search is no longer exhaustive, so the
	// final status must not claim Optimal or Infeasible.
	lpLimited bool
}

// workScratch is one worker's private buffers: candidate staging plus the
// two candidate structs themselves.
type workScratch struct {
	leafX []float64
	heurX []float64
	leaf  candidate
	heur  candidate
	sv    *lp.Solver
}

// searcher is the shared state of one branch-and-bound run.
type searcher struct {
	m      *Model
	ctx    context.Context
	opt    Options
	objInt bool

	nodePool  sync.Pool // *bbNode with capacity-retaining slices
	basisPool sync.Pool // *basisRef

	mu        sync.Mutex
	cond      *sync.Cond
	pq        nodePQ
	inflight  int
	nodes     int
	maxNodes  int
	exhausted bool
	lpLimited bool
	unbounded bool
	canceled  bool
	// leaf incumbents decide the returned solution: every leaf with an
	// objective within tolerance of the optimum lives in a node whose bound
	// is at most optimum+tol, and such nodes are explored under every
	// schedule (pruning is strict), so the (obj, path)-minimal leaf is the
	// same for any worker count.
	leafX    []float64
	leafObj  float64
	leafPath []byte
	// heuristic incumbents only sharpen the pruning bound (and serve as a
	// fallback when the node budget runs out before any leaf is reached).
	heurX     []float64
	heurObj   float64
	rootBasis *lp.Basis
}

func (s *searcher) newNode() *bbNode {
	nd := s.nodePool.Get().(*bbNode)
	nd.warm = nil
	return nd
}

// freeNode releases the node's basis reference and returns the node (with
// its slices) to the pool. Must not be called while the node is reachable
// from the heap or a worker.
func (s *searcher) freeNode(nd *bbNode) {
	s.releaseBasis(nd.warm)
	nd.warm = nil
	s.nodePool.Put(nd)
}

// newBasisRef copies status into a pooled slab shared by refs readers.
func (s *searcher) newBasisRef(status []int8, refs int) *basisRef {
	b := s.basisPool.Get().(*basisRef)
	b.status = append(b.status[:0], status...)
	b.refs = refs
	return b
}

// releaseBasis drops one reference; the last one returns the slab to the
// pool. Two workers can release the sibling references of one slab
// concurrently, so the refcount is protected by the searcher mutex.
func (s *searcher) releaseBasis(b *basisRef) {
	if b == nil {
		return
	}
	s.mu.Lock()
	b.refs--
	last := b.refs == 0
	s.mu.Unlock()
	if last {
		s.basisPool.Put(b)
	}
}

// Solve runs branch-and-bound and returns the best integer solution. The
// exploration order is best-bound with plunging: after branching, a worker
// keeps the preferred child for itself (maximizing warm-start locality and
// halving heap traffic) and publishes the sibling to the shared best-bound
// heap, where idle workers steal it. Nodes re-solve from their parent's
// simplex basis via the dual simplex instead of a cold start.
//
// Cancelling ctx (nil means context.Background()) stops the search at the
// next node boundary on every worker and returns Status Canceled; callers
// are expected to translate that into ctx.Err().
func (m *Model) Solve(ctx context.Context, opt Options) Solution {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(m.vars) == 0 {
		return Solution{Status: Optimal, X: nil, Obj: 0}
	}
	t0 := time.Now()
	prob := m.compileLP()
	s := &searcher{
		m:        m,
		ctx:      ctx,
		opt:      opt,
		objInt:   m.objectiveIntegral(),
		maxNodes: opt.MaxNodes,
		leafObj:  math.Inf(1),
		heurObj:  math.Inf(1),
	}
	nvars := len(m.vars)
	s.nodePool.New = func() any {
		return &bbNode{lb: make([]float64, nvars), ub: make([]float64, nvars)}
	}
	s.basisPool.New = func() any { return &basisRef{} }
	if s.maxNodes <= 0 {
		s.maxNodes = 200000
	}
	s.cond = sync.NewCond(&s.mu)

	root := s.newNode()
	root.bound = math.Inf(-1)
	root.uChain = math.Inf(1)
	root.path = root.path[:0]
	for j, v := range m.vars {
		root.lb[j], root.ub[j] = v.lb, v.ub
	}
	if ws := opt.WarmStart; ws != nil && ws.nvars == len(m.vars) && ws.ncons == len(m.cons) {
		root.warm = s.newBasisRef(ws.basis.Status(), 1)
	}
	heap.Push(&s.pq, root)

	workers := opt.Workers
	if workers <= 1 {
		sv := m.getSolver(prob)
		s.work(sv)
		m.putSolver(sv)
	} else {
		var wg sync.WaitGroup
		svs := make([]*lp.Solver, workers)
		for w := 0; w < workers; w++ {
			svs[w] = m.getSolver(prob)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sv *lp.Solver) {
				defer wg.Done()
				s.work(sv)
			}(svs[w])
		}
		wg.Wait()
		for _, sv := range svs {
			m.putSolver(sv)
		}
	}
	sol := s.assemble()
	sol.Wall = time.Since(t0)
	return sol
}

// work is one worker's loop: take the locally kept dive child or pop the
// best node from the shared heap, solve its relaxation, and commit
// incumbents and children under the lock.
func (s *searcher) work(sv *lp.Solver) {
	sc := &workScratch{
		leafX: make([]float64, len(s.m.vars)),
		heurX: make([]float64, len(s.m.vars)),
		sv:    sv,
	}
	var local *bbNode
	for {
		// The per-node cancellation probe: each node costs an LP solve, so
		// this bounds cancel latency to one relaxation per worker.
		if s.ctx.Err() != nil {
			s.mu.Lock()
			s.canceled = true
			if local != nil {
				s.inflight--
				local = nil
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		var nd *bbNode
		if local != nil {
			// Diving: the preferred child was claimed at commit time
			// (inflight was kept), only the node budget can stop it.
			if s.canceled || s.unbounded || s.nodes >= s.maxNodes {
				if s.nodes >= s.maxNodes {
					s.exhausted = true
				}
				s.inflight--
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
			nd, local = local, nil
			s.nodes++
		} else {
			for {
				if s.canceled || s.unbounded || (len(s.pq) == 0 && s.inflight == 0) {
					s.cond.Broadcast()
					s.mu.Unlock()
					return
				}
				if len(s.pq) > 0 {
					if s.nodes >= s.maxNodes {
						s.exhausted = true
						s.cond.Broadcast()
						s.mu.Unlock()
						return
					}
					nd = heap.Pop(&s.pq).(*bbNode)
					s.nodes++
					s.inflight++
					break
				}
				s.cond.Wait()
			}
		}
		gub := math.Min(s.leafObj, s.heurObj)
		s.mu.Unlock()

		res := s.process(sc, nd, gub)

		s.mu.Lock()
		s.commit(res)
		if first := res.children[0]; first != nil {
			// Bounded plunging: keep the preferred child for this worker
			// only while it is at least as good as the best node in the
			// shared heap (so exploration stays essentially best-bound and
			// node counts match the pure-heap schedule) and the sharpened
			// incumbent does not already prune it. process re-checks bounds
			// strictly, so this is a scheduling heuristic, not a
			// correctness gate.
			gub = math.Min(s.leafObj, s.heurObj)
			asGood := len(s.pq) == 0 || first.bound <= s.pq[0].bound
			if !s.canceled && !s.unbounded && asGood &&
				first.bound <= gub+objTol && first.bound <= first.uChain+objTol {
				local = first
			} else {
				heap.Push(&s.pq, first)
			}
		}
		if local == nil {
			s.inflight--
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		s.freeNode(nd)
	}
}

// process solves one node. Everything here is a pure function of the node
// (gub only prunes strictly-worse subtrees, which never contribute to the
// returned solution), so results are schedule-independent.
func (s *searcher) process(sc *workScratch, nd *bbNode, gub float64) nodeResult {
	if nd.bound > gub+objTol || nd.bound > nd.uChain+objTol {
		return nodeResult{}
	}
	var warm []int8
	if nd.warm != nil {
		warm = nd.warm.status
	}
	sol := sc.sv.SolveView(nd.lb, nd.ub, warm, s.opt.MaxLPIters)
	if sol.Status == lp.IterLimit && warm != nil {
		// Deterministic cold retry: the warm basis may be a poor start.
		sol = sc.sv.SolveView(nd.lb, nd.ub, nil, s.opt.MaxLPIters)
	}
	var res nodeResult
	switch sol.Status {
	case lp.Infeasible:
		return res
	case lp.Unbounded:
		// A non-root unbounded relaxation is numerically impossible (the
		// parent solved to a bounded optimum over a superset region); treat
		// it like an unexplorable node rather than trusting it.
		if len(nd.path) == 0 {
			res.unbounded = true
		} else {
			res.lpLimited = true
		}
		return res
	case lp.IterLimit:
		res.lpLimited = true // unexplorable within MaxLPIters
		return res
	}
	if len(nd.path) == 0 {
		res.rootBasis = lp.BasisFromStatus(sol.Basis)
	}
	bound := sol.Obj
	if s.objInt {
		bound = math.Ceil(bound - 1e-7)
	}
	if bound > gub+objTol || bound > nd.uChain+objTol {
		return res
	}
	branch := s.m.pickFractional(sol.X)
	if branch == -1 {
		copy(sc.leafX, sol.X)
		s.m.roundInPlace(sc.leafX)
		sc.leaf = candidate{x: sc.leafX, obj: s.m.Objective(sc.leafX), path: nd.path}
		res.leaf = &sc.leaf
		return res
	}
	uChain := nd.uChain
	if s.m.tryRoundInto(sc.heurX, sol.X) {
		obj := s.m.Objective(sc.heurX)
		sc.heur = candidate{x: sc.heurX, obj: obj}
		res.heur = &sc.heur
		if obj < uChain {
			uChain = obj
		}
	}
	f := sol.X[branch]
	warmRef := s.newBasisRef(sol.Basis, 2)
	down := s.newNode()
	up := s.newNode()
	for _, child := range [2]*bbNode{down, up} {
		copy(child.lb, nd.lb)
		copy(child.ub, nd.ub)
		child.warm = warmRef
		child.bound = bound
		child.uChain = uChain
	}
	s.tightenByReducedCost(nd, sol.X, sol.R, sol.Obj, uChain, down.lb, down.ub)
	copy(up.lb, down.lb)
	copy(up.ub, down.ub)
	down.ub[branch] = math.Floor(f)
	up.lb[branch] = math.Ceil(f)
	// The side nearer the fractional value is the preferred child: it gets
	// the smaller tree position (and thus pops first among equal bounds).
	first, second := up, down
	if f-math.Floor(f) < 0.5 {
		first, second = down, up
	}
	first.path = append(append(first.path[:0], nd.path...), 0)
	second.path = append(append(second.path[:0], nd.path...), 1)
	res.children[0], res.children[1] = first, second
	return res
}

// tightenByReducedCost shrinks integer bounds in both children: moving a
// nonbasic variable off its bound costs |reduced cost| per unit, and any
// move pushing the node bound past the chain incumbent cannot contain a
// solution worth returning. Only the deterministic chain incumbent uChain
// is used, never the schedule-dependent global one, so the tree shape stays
// identical for any worker count.
func (s *searcher) tightenByReducedCost(nd *bbNode, x, r []float64, lpObj, uChain float64, lb, ub []float64) {
	if math.IsInf(uChain, 1) || r == nil {
		return
	}
	budget := uChain + objTol - lpObj
	if budget < 0 {
		return
	}
	for j, v := range s.m.vars {
		if !v.integer {
			continue
		}
		rj := r[j]
		switch {
		case rj > objTol && x[j] <= nd.lb[j]+intTol:
			if nu := nd.lb[j] + math.Floor(budget/rj+1e-9); nu < ub[j] {
				ub[j] = nu
			}
		case rj < -objTol && x[j] >= nd.ub[j]-intTol:
			if nl := nd.ub[j] - math.Floor(budget/(-rj)+1e-9); nl > lb[j] {
				lb[j] = nl
			}
		}
	}
}

// commit merges one node's results into the shared state. Incumbent
// selection is a commutative minimum over (objective, tree position), so
// arrival order cannot change the outcome. Candidate payloads alias worker
// scratch and are copied only when they win.
func (s *searcher) commit(res nodeResult) {
	if res.unbounded {
		s.unbounded = true
	}
	if res.lpLimited {
		s.lpLimited = true
	}
	if res.rootBasis != nil {
		s.rootBasis = res.rootBasis
	}
	// Exact lexicographic (obj, path) comparison: a total order, so this is
	// a commutative minimum — arrival order cannot change the outcome even
	// when distinct objectives differ by less than the pruning tolerance.
	if c := res.leaf; c != nil {
		if s.leafX == nil || c.obj < s.leafObj ||
			(c.obj == s.leafObj && pathLess(c.path, s.leafPath)) {
			s.leafX = append(s.leafX[:0], c.x...)
			s.leafObj = c.obj
			s.leafPath = append(s.leafPath[:0], c.path...)
		}
	}
	if c := res.heur; c != nil && c.obj < s.heurObj {
		s.heurX = append(s.heurX[:0], c.x...)
		s.heurObj = c.obj
	}
	if second := res.children[1]; second != nil {
		heap.Push(&s.pq, second)
	}
}

func (s *searcher) assemble() Solution {
	sol := Solution{Nodes: s.nodes}
	if s.rootBasis != nil {
		sol.WarmStart = &WarmStart{nvars: len(s.m.vars), ncons: len(s.m.cons), basis: s.rootBasis}
	}
	if s.canceled {
		sol.Status = Canceled
		return sol
	}
	if s.unbounded {
		sol.Status = Unbounded
		return sol
	}
	x, obj := s.leafX, s.leafObj
	if x == nil || (s.heurX != nil && s.heurObj < obj) {
		// Only reachable when the search stopped before the best leaf.
		x, obj = s.heurX, s.heurObj
	}
	// A node dropped on its LP iteration budget means the search was not
	// exhaustive: never claim Optimal or Infeasible past one.
	incomplete := s.exhausted || s.lpLimited
	switch {
	case x == nil && incomplete:
		sol.Status = Limit
	case x == nil:
		sol.Status = Infeasible
	case incomplete:
		sol.Status, sol.X, sol.Obj = Feasible, x, obj
	default:
		sol.Status, sol.X, sol.Obj = Optimal, x, obj
	}
	return sol
}
