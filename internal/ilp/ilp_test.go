package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, binary.
	// Optimal: a + c (weight 5, value 17)? b + c = 6 weight, value 20. Yes 20.
	var m Model
	a := m.AddBinary(-10, "a")
	b := m.AddBinary(-13, "b")
	c := m.AddBinary(-7, "c")
	m.AddCons([]VarID{a, b, c}, []float64{3, 4, 2}, lp.LE, 6)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.Obj, -20) {
		t.Errorf("obj %v, want -20", s.Obj)
	}
	if err := m.Check(s.X); err != nil {
		t.Error(err)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x  s.t. 2x >= 5, x integer  ->  x = 3 (LP gives 2.5).
	var m Model
	x := m.AddVar(0, Inf, 1, true, "x")
	m.AddCons([]VarID{x}, []float64{2}, lp.GE, 5)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || !approx(s.X[0], 3) {
		t.Fatalf("status %v x %v", s.Status, s.X)
	}
}

func TestMixedInteger(t *testing.T) {
	// min -y - 2x  s.t. x + y <= 3.5, x integer, y continuous <= 2.
	// x=3 forces y<=0.5: obj -6.5; x=2,y=1.5? wait y<=2: x=1,y=2->-4; x=2,y=1.5->-5.5; x=3,y=0.5->-6.5. Optimal -6.5.
	var m Model
	x := m.AddVar(0, Inf, -2, true, "x")
	y := m.AddVar(0, 2, -1, false, "y")
	m.AddCons([]VarID{x, y}, []float64{1, 1}, lp.LE, 3.5)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || !approx(s.Obj, -6.5) {
		t.Fatalf("status %v obj %v", s.Status, s.Obj)
	}
	if !approx(s.X[0], 3) {
		t.Errorf("x=%v", s.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer: LP feasible, ILP infeasible.
	var m Model
	x := m.AddVar(0, 1, 0, true, "x")
	m.AddCons([]VarID{x}, []float64{1}, lp.GE, 0.4)
	m.AddCons([]VarID{x}, []float64{1}, lp.LE, 0.6)
	if s := m.Solve(context.Background(), Options{}); s.Status != Infeasible {
		t.Errorf("status %v, want infeasible", s.Status)
	}
}

func TestUnboundedModel(t *testing.T) {
	var m Model
	m.AddVar(0, Inf, -1, false, "x")
	if s := m.Solve(context.Background(), Options{}); s.Status != Unbounded {
		t.Errorf("status %v, want unbounded", s.Status)
	}
}

func TestNegativeBounds(t *testing.T) {
	// min x  s.t. x >= -3.6, x integer: the integers >= -3.6 start at -3.
	var m Model
	m.AddVar(-3.6, Inf, 1, true, "x")
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || !approx(s.X[0], -3) {
		t.Fatalf("status %v x %v, want -3", s.Status, s.X)
	}
}

func TestFreeVariable(t *testing.T) {
	// min y  s.t. y >= x - 2, y >= 2 - x with x, y free: min of
	// max(x-2, 2-x) is 0 at x=2.
	var m Model
	x := m.AddVar(-Inf, Inf, 0, false, "x")
	y := m.AddVar(-Inf, Inf, 1, false, "y")
	m.AddCons([]VarID{y, x}, []float64{1, -1}, lp.GE, -2) // y >= x - 2
	m.AddCons([]VarID{y, x}, []float64{1, 1}, lp.GE, 2)   // y >= 2 - x
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || s.Obj < -1e-6 {
		t.Fatalf("status %v obj %v", s.Status, s.Obj)
	}
	// min of max(x-2, 2-x) is 0 at x=2.
	if !approx(s.Obj, 0) {
		t.Errorf("obj %v, want 0", s.Obj)
	}
}

func TestFixedVariableFolding(t *testing.T) {
	var m Model
	x := m.AddVar(2, 2, 3, true, "x") // fixed at 2
	y := m.AddVar(0, 10, 1, true, "y")
	m.AddCons([]VarID{x, y}, []float64{1, 1}, lp.GE, 5)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 3) || !approx(s.Obj, 9) {
		t.Errorf("x=%v obj=%v", s.X, s.Obj)
	}
	// All-fixed model.
	var m2 Model
	a := m2.AddVar(1, 1, 1, true, "a")
	m2.AddCons([]VarID{a}, []float64{1}, lp.EQ, 1)
	if s := m2.Solve(context.Background(), Options{}); s.Status != Optimal || !approx(s.Obj, 1) {
		t.Errorf("all-fixed: %v obj %v", s.Status, s.Obj)
	}
	// All-fixed infeasible model.
	var m3 Model
	b := m3.AddVar(1, 1, 0, true, "b")
	m3.AddCons([]VarID{b}, []float64{1}, lp.EQ, 2)
	if s := m3.Solve(context.Background(), Options{}); s.Status != Infeasible {
		t.Errorf("all-fixed infeasible: %v", s.Status)
	}
}

func TestEmptyModel(t *testing.T) {
	var m Model
	if s := m.Solve(context.Background(), Options{}); s.Status != Optimal || s.Obj != 0 {
		t.Errorf("empty model: %v", s.Status)
	}
}

func TestBigMIndicator(t *testing.T) {
	// The pattern used by constraint (3): f <= M*v, f >= -M*v with v binary.
	// Force |f| = 3 somewhere; v must rise to 1.
	var m Model
	const M = 100
	v := m.AddBinary(1, "v") // costs 1, so solver wants v=0
	f := m.AddVar(-Inf, Inf, 0, false, "f")
	m.AddCons([]VarID{f, v}, []float64{1, -M}, lp.LE, 0)
	m.AddCons([]VarID{f, v}, []float64{1, M}, lp.GE, 0)
	m.AddCons([]VarID{f}, []float64{1}, lp.EQ, 3)
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if !approx(s.X[v], 1) || !approx(s.X[f], 3) {
		t.Errorf("v=%v f=%v", s.X[v], s.X[f])
	}
}

func TestSetCoverExact(t *testing.T) {
	// Universe {0..4}; sets: {0,1}, {1,2,3}, {3,4}, {0,4}, {2}.
	// Min cover = 2? {1,2,3}+{0,4} covers all: 2 sets. Optimal 2.
	sets := [][]int{{0, 1}, {1, 2, 3}, {3, 4}, {0, 4}, {2}}
	var m Model
	vars := make([]VarID, len(sets))
	for i := range sets {
		vars[i] = m.AddBinary(1, "s")
	}
	for elem := 0; elem < 5; elem++ {
		var idx []VarID
		var coef []float64
		for i, s := range sets {
			for _, e := range s {
				if e == elem {
					idx = append(idx, vars[i])
					coef = append(coef, 1)
				}
			}
		}
		m.AddCons(idx, coef, lp.GE, 1)
	}
	s := m.Solve(context.Background(), Options{})
	if s.Status != Optimal || !approx(s.Obj, 2) {
		t.Fatalf("status %v obj %v, want 2", s.Status, s.Obj)
	}
}

func TestNodeLimit(t *testing.T) {
	// A model needing branching, throttled to 1 node.
	var m Model
	x := m.AddVar(0, 10, -1, true, "x")
	y := m.AddVar(0, 10, -1, true, "y")
	m.AddCons([]VarID{x, y}, []float64{2, 3}, lp.LE, 12.5)
	s := m.Solve(context.Background(), Options{MaxNodes: 1})
	if s.Status != Feasible && s.Status != Limit && s.Status != Optimal {
		t.Errorf("status %v", s.Status)
	}
	full := m.Solve(context.Background(), Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve %v", full.Status)
	}
	if err := m.Check(full.X); err != nil {
		t.Error(err)
	}
}

func TestCheckRejects(t *testing.T) {
	var m Model
	x := m.AddVar(0, 1, 0, true, "x")
	m.AddCons([]VarID{x}, []float64{1}, lp.LE, 1)
	if err := m.Check([]float64{0.5}); err == nil {
		t.Error("fractional accepted")
	}
	if err := m.Check([]float64{2}); err == nil {
		t.Error("out of bounds accepted")
	}
	if err := m.Check([]float64{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	var m2 Model
	a := m2.AddVar(0, 5, 0, false, "a")
	m2.AddCons([]VarID{a}, []float64{1}, lp.GE, 3)
	m2.AddCons([]VarID{a}, []float64{1}, lp.EQ, 4)
	if err := m2.Check([]float64{2}); err == nil {
		t.Error("GE violation accepted")
	}
	if err := m2.Check([]float64{3.5}); err == nil {
		t.Error("EQ violation accepted")
	}
}

func TestPanics(t *testing.T) {
	var m Model
	mustPanic(t, func() { m.AddVar(2, 1, 0, false, "bad") })
	m.AddBinary(0, "v")
	mustPanic(t, func() { m.AddCons([]VarID{0}, []float64{1, 2}, lp.LE, 0) })
	mustPanic(t, func() { m.AddCons([]VarID{9}, []float64{1}, lp.LE, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	f()
}

// TestRandomKnapsackAgainstBruteForce cross-checks B&B against exhaustive
// enumeration on random 0-1 knapsacks.
func TestRandomKnapsackAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(8) + 2
		w := make([]float64, n)
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			w[i] = float64(rng.Intn(9) + 1)
			v[i] = float64(rng.Intn(9) + 1)
		}
		capW := float64(rng.Intn(20) + 5)
		var m Model
		vars := make([]VarID, n)
		coef := make([]float64, n)
		for i := 0; i < n; i++ {
			vars[i] = m.AddBinary(-v[i], "x")
			coef[i] = w[i]
		}
		m.AddCons(vars, coef, lp.LE, capW)
		s := m.Solve(context.Background(), Options{})
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Brute force.
		bestVal := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			tw, tv := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					tw += w[i]
					tv += v[i]
				}
			}
			if tw <= capW && tv > bestVal {
				bestVal = tv
			}
		}
		if !approx(-s.Obj, bestVal) {
			t.Fatalf("trial %d: ILP %v vs brute force %v", trial, -s.Obj, bestVal)
		}
	}
}

// TestQuickEqualityPartition: random subset-sum instances must agree with
// brute force on feasibility.
func TestQuickEqualityPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(7) + 1)
		}
		target := float64(rng.Intn(20))
		var m Model
		vars := make([]VarID, n)
		for i := range vars {
			vars[i] = m.AddBinary(0, "x")
		}
		m.AddCons(vars, vals, lp.EQ, target)
		s := m.Solve(context.Background(), Options{})
		possible := false
		for mask := 0; mask < 1<<n; mask++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					sum += vals[i]
				}
			}
			if sum == target {
				possible = true
				break
			}
		}
		return possible == (s.Status == Optimal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, Infeasible, Unbounded, Limit} {
		if s.String() == "" {
			t.Errorf("status %d has empty string", s)
		}
	}
}
