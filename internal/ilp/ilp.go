// Package ilp provides a small integer linear programming solver: a model
// layer with named, bounded, optionally-integer variables, compiled per
// branch-and-bound node onto the two-phase simplex in package lp.
//
// The paper formulates flow-path construction, cut-set construction and
// control-leakage coverage as 0-1 ILPs (constraints (1)-(9)) and hands them
// to a commercial solver; this package is the self-contained substitute.
// Instances arising from 5x5 hierarchical subblocks stay in the range of a
// few hundred variables, which this solver handles in milliseconds to
// seconds.
package ilp

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// VarID identifies a model variable.
type VarID int

// Status reports the solve outcome.
type Status int

const (
	// Optimal means a provably optimal integer solution was found.
	Optimal Status = iota
	// Feasible means the node budget ran out but an incumbent exists.
	Feasible
	// Infeasible means no integer solution exists.
	Infeasible
	// Unbounded means the relaxation is unbounded.
	Unbounded
	// Limit means the node budget ran out with no incumbent.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "node-limit"
	}
}

// Inf is the bound value meaning "unbounded in that direction".
var Inf = math.Inf(1)

type varInfo struct {
	lb, ub  float64
	integer bool
	obj     float64
	name    string
}

type constraint struct {
	idx   []VarID
	coef  []float64
	sense lp.Sense
	rhs   float64
}

// Model is an ILP under construction. The zero value is ready to use.
type Model struct {
	vars []varInfo
	cons []constraint
}

// AddVar adds a variable with bounds [lb, ub] (use -Inf / Inf for
// unbounded), objective coefficient obj (minimization) and an optional name
// used in error messages.
func (m *Model) AddVar(lb, ub, obj float64, integer bool, name string) VarID {
	if lb > ub {
		panic(fmt.Sprintf("ilp: var %q has lb %v > ub %v", name, lb, ub))
	}
	m.vars = append(m.vars, varInfo{lb: lb, ub: ub, integer: integer, obj: obj, name: name})
	return VarID(len(m.vars) - 1)
}

// AddBinary adds a 0-1 variable.
func (m *Model) AddBinary(obj float64, name string) VarID {
	return m.AddVar(0, 1, obj, true, name)
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.vars) }

// NumCons returns the constraint count.
func (m *Model) NumCons() int { return len(m.cons) }

// Name returns the name of variable v.
func (m *Model) Name(v VarID) string { return m.vars[v].name }

// AddCons adds the constraint sum(coef[k] * idx[k]) sense rhs. Duplicate
// indices accumulate.
func (m *Model) AddCons(idx []VarID, coef []float64, sense lp.Sense, rhs float64) {
	if len(idx) != len(coef) {
		panic("ilp: constraint index/coef length mismatch")
	}
	for _, v := range idx {
		if int(v) < 0 || int(v) >= len(m.vars) {
			panic(fmt.Sprintf("ilp: constraint references unknown var %d", v))
		}
	}
	m.cons = append(m.cons, constraint{
		idx:   append([]VarID(nil), idx...),
		coef:  append([]float64(nil), coef...),
		sense: sense, rhs: rhs,
	})
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // valid for Optimal and Feasible
	Obj    float64
	Nodes  int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; <= 0 means 200000.
	MaxNodes int
	// MaxLPIters bounds simplex iterations per node; <= 0 means automatic.
	MaxLPIters int
}

const intTol = 1e-6

// Check verifies that x satisfies every constraint, bound, and integrality
// requirement of the model; it returns a descriptive error on the first
// violation. Used by tests and by the rounding heuristic.
func (m *Model) Check(x []float64) error {
	if len(x) != len(m.vars) {
		return fmt.Errorf("ilp: solution length %d, want %d", len(x), len(m.vars))
	}
	for j, v := range m.vars {
		if x[j] < v.lb-1e-6 || x[j] > v.ub+1e-6 {
			return fmt.Errorf("ilp: var %s=%v outside [%v,%v]", v.name, x[j], v.lb, v.ub)
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > intTol {
			return fmt.Errorf("ilp: var %s=%v not integral", v.name, x[j])
		}
	}
	for i, c := range m.cons {
		dot := 0.0
		for k, v := range c.idx {
			dot += c.coef[k] * x[v]
		}
		switch c.sense {
		case lp.LE:
			if dot > c.rhs+1e-5 {
				return fmt.Errorf("ilp: row %d: %v <= %v violated", i, dot, c.rhs)
			}
		case lp.GE:
			if dot < c.rhs-1e-5 {
				return fmt.Errorf("ilp: row %d: %v >= %v violated", i, dot, c.rhs)
			}
		case lp.EQ:
			if math.Abs(dot-c.rhs) > 1e-5 {
				return fmt.Errorf("ilp: row %d: %v = %v violated", i, dot, c.rhs)
			}
		}
	}
	return nil
}

// Objective evaluates the model objective at x.
func (m *Model) Objective(x []float64) float64 {
	obj := 0.0
	for j, v := range m.vars {
		obj += v.obj * x[j]
	}
	return obj
}

// node is one branch-and-bound node: bound overrides relative to the model.
type node struct {
	lb, ub []float64
}

// Solve runs branch-and-bound and returns the best integer solution.
func (m *Model) Solve(opt Options) Solution {
	if len(m.vars) == 0 {
		return Solution{Status: Optimal, X: nil, Obj: 0}
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	objIntegral := m.objectiveIntegral()

	root := node{lb: make([]float64, len(m.vars)), ub: make([]float64, len(m.vars))}
	for j, v := range m.vars {
		root.lb[j], root.ub[j] = v.lb, v.ub
	}
	stack := []node{root}
	var best []float64
	bestObj := math.Inf(1)
	nodes := 0

	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		x, obj, st := m.solveRelaxation(nd, opt.MaxLPIters)
		switch st {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if nodes == 1 {
				return Solution{Status: Unbounded, Nodes: nodes}
			}
			continue
		case lp.IterLimit:
			continue // treat as unexplorable; conservative
		}
		bound := obj
		if objIntegral {
			bound = math.Ceil(obj - 1e-7)
		}
		if bound >= bestObj-1e-9 {
			continue
		}
		branch := m.pickFractional(x)
		if branch == -1 {
			// Integer feasible.
			if obj < bestObj-1e-9 {
				bestObj = obj
				best = append([]float64(nil), x...)
				m.roundInPlace(best)
			}
			continue
		}
		// Rounding heuristic: cheap incumbent attempt at shallow depth.
		if best == nil {
			if cand := m.tryRound(x); cand != nil {
				if o := m.Objective(cand); o < bestObj-1e-9 {
					bestObj = o
					best = cand
				}
			}
		}
		f := x[branch]
		down := nd.clone()
		down.ub[branch] = math.Floor(f)
		up := nd.clone()
		up.lb[branch] = math.Ceil(f)
		// Explore the side nearer the fractional value first (pushed last).
		if f-math.Floor(f) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	switch {
	case best != nil && len(stack) == 0:
		return Solution{Status: Optimal, X: best, Obj: bestObj, Nodes: nodes}
	case best != nil:
		return Solution{Status: Feasible, X: best, Obj: bestObj, Nodes: nodes}
	case len(stack) == 0:
		return Solution{Status: Infeasible, Nodes: nodes}
	default:
		return Solution{Status: Limit, Nodes: nodes}
	}
}

func (n node) clone() node {
	return node{lb: append([]float64(nil), n.lb...), ub: append([]float64(nil), n.ub...)}
}

func (m *Model) objectiveIntegral() bool {
	for _, v := range m.vars {
		if v.obj != math.Trunc(v.obj) {
			return false
		}
		if !v.integer && v.obj != 0 {
			return false
		}
	}
	return true
}

// pickFractional selects the integer variable farthest from integrality
// (most-fractional branching), or -1 if the point is integer feasible.
func (m *Model) pickFractional(x []float64) int {
	best, bestDist := -1, intTol
	for j, v := range m.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if dist := math.Min(f, 1-f); dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

func (m *Model) roundInPlace(x []float64) {
	for j, v := range m.vars {
		if v.integer {
			x[j] = math.Round(x[j])
		}
	}
}

func (m *Model) tryRound(x []float64) []float64 {
	cand := append([]float64(nil), x...)
	m.roundInPlace(cand)
	if m.Check(cand) != nil {
		return nil
	}
	return cand
}

// solveRelaxation compiles the node's LP (bound substitution: fixed vars are
// folded out, lower bounds are shifted, upper bounds become rows, free vars
// are split) and solves it. It returns x in model-variable space.
func (m *Model) solveRelaxation(nd node, maxLPIters int) ([]float64, float64, lp.Status) {
	type mapping struct {
		kind  int // 0 fixed, 1 shifted, 2 split
		col   int // primary LP column (for split: positive part; negative is col+1)
		shift float64
	}
	maps := make([]mapping, len(m.vars))
	ncols := 0
	objConst := 0.0
	for j := range m.vars {
		lb, ub := nd.lb[j], nd.ub[j]
		if lb > ub+1e-12 {
			return nil, 0, lp.Infeasible
		}
		switch {
		case lb == ub || ub-lb < 1e-12:
			maps[j] = mapping{kind: 0, shift: lb}
			objConst += m.vars[j].obj * lb
		case math.IsInf(lb, -1):
			maps[j] = mapping{kind: 2, col: ncols}
			ncols += 2
		default:
			maps[j] = mapping{kind: 1, col: ncols, shift: lb}
			objConst += m.vars[j].obj * lb
			ncols++
		}
	}
	if ncols == 0 {
		// Everything fixed: verify constraints directly.
		x := make([]float64, len(m.vars))
		for j := range x {
			x[j] = maps[j].shift
		}
		if m.Check(x) != nil {
			return nil, 0, lp.Infeasible
		}
		return x, objConst, lp.Optimal
	}
	p := lp.NewProblem(ncols)
	for j, v := range m.vars {
		switch maps[j].kind {
		case 1:
			p.SetObj(maps[j].col, v.obj)
			if !math.IsInf(nd.ub[j], 1) {
				p.AddSparseRow([]int{maps[j].col}, []float64{1}, lp.LE, nd.ub[j]-nd.lb[j])
			}
		case 2:
			p.SetObj(maps[j].col, v.obj)
			p.SetObj(maps[j].col+1, -v.obj)
			if !math.IsInf(nd.ub[j], 1) {
				p.AddSparseRow([]int{maps[j].col, maps[j].col + 1}, []float64{1, -1}, lp.LE, nd.ub[j])
			}
		}
	}
	for _, c := range m.cons {
		var idx []int
		var coef []float64
		rhs := c.rhs
		for k, v := range c.idx {
			mp := maps[v]
			switch mp.kind {
			case 0:
				rhs -= c.coef[k] * mp.shift
			case 1:
				idx = append(idx, mp.col)
				coef = append(coef, c.coef[k])
				rhs -= c.coef[k] * mp.shift
			case 2:
				idx = append(idx, mp.col, mp.col+1)
				coef = append(coef, c.coef[k], -c.coef[k])
			}
		}
		if len(idx) == 0 {
			// Constant row: check satisfaction.
			ok := true
			switch c.sense {
			case lp.LE:
				ok = 0 <= rhs+1e-9
			case lp.GE:
				ok = 0 >= rhs-1e-9
			case lp.EQ:
				ok = math.Abs(rhs) <= 1e-9
			}
			if !ok {
				return nil, 0, lp.Infeasible
			}
			continue
		}
		p.AddSparseRow(idx, coef, c.sense, rhs)
	}
	sol := p.Solve(maxLPIters)
	if sol.Status != lp.Optimal {
		return nil, 0, sol.Status
	}
	x := make([]float64, len(m.vars))
	for j := range m.vars {
		switch maps[j].kind {
		case 0:
			x[j] = maps[j].shift
		case 1:
			x[j] = sol.X[maps[j].col] + maps[j].shift
		case 2:
			x[j] = sol.X[maps[j].col] - sol.X[maps[j].col+1]
		}
	}
	return x, sol.Obj + objConst, lp.Optimal
}
