// Package ilp provides a small integer linear programming solver: a model
// layer with named, bounded, optionally-integer variables, compiled once
// onto the bounded-variable simplex in package lp and explored by a
// warm-started, optionally parallel best-bound branch-and-bound.
//
// The paper formulates flow-path construction, cut-set construction and
// control-leakage coverage as 0-1 ILPs (constraints (1)-(9)) and hands them
// to a commercial solver; this package is the self-contained substitute.
// Instances arising from 5x5 hierarchical subblocks stay in the range of a
// few hundred variables, which this solver handles in milliseconds.
package ilp

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// VarID identifies a model variable.
type VarID int

// Status reports the solve outcome.
type Status int

const (
	// Optimal means a provably optimal integer solution was found.
	Optimal Status = iota
	// Feasible means the node budget ran out but an incumbent exists.
	Feasible
	// Infeasible means no integer solution exists.
	Infeasible
	// Unbounded means the relaxation is unbounded.
	Unbounded
	// Limit means the node budget ran out with no incumbent.
	Limit
	// Canceled means the solve context was cancelled before the search
	// finished; callers should surface ctx.Err().
	Canceled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Canceled:
		return "canceled"
	default:
		return "node-limit"
	}
}

// Inf is the bound value meaning "unbounded in that direction".
var Inf = math.Inf(1)

type varInfo struct {
	lb, ub  float64
	integer bool
	obj     float64
	name    string
}

type constraint struct {
	idx   []VarID
	coef  []float64
	sense lp.Sense
	rhs   float64
}

// Model is an ILP under construction. The zero value is ready to use.
//
// A Model may be re-solved after changing objectives (SetObj) or bounds
// (SetVarBounds / FixVar) without structural cost: the compiled LP
// relaxation and its solver scratch are cached across Solve calls and only
// rebuilt when variables or constraints are added. This is the engine
// behind the iterative generators, which solve hundreds of same-shape
// models that differ only in objective and bound fixes. The flip side of
// that caching: a Model is not safe for concurrent use — Solve calls (and
// mutations) on one Model must be serialized by the caller. Solve's
// internal workers parallelize a single search, not the Model.
type Model struct {
	vars []varInfo
	cons []constraint

	compiled *lp.Problem // cached relaxation; nil after structural changes
	solvers  []*lp.Solver
}

// AddVar adds a variable with bounds [lb, ub] (use -Inf / Inf for
// unbounded), objective coefficient obj (minimization) and an optional name
// used in error messages.
func (m *Model) AddVar(lb, ub, obj float64, integer bool, name string) VarID {
	if lb > ub {
		panic(fmt.Sprintf("ilp: var %q has lb %v > ub %v", name, lb, ub))
	}
	m.vars = append(m.vars, varInfo{lb: lb, ub: ub, integer: integer, obj: obj, name: name})
	m.compiled, m.solvers = nil, nil
	return VarID(len(m.vars) - 1)
}

// AddBinary adds a 0-1 variable.
func (m *Model) AddBinary(obj float64, name string) VarID {
	return m.AddVar(0, 1, obj, true, name)
}

// SetVarBounds replaces the bounds of variable v. Bound changes are handled
// natively by the solver (no constraint rows), so models that differ only
// in bounds share their row structure — the precondition for warm starts.
func (m *Model) SetVarBounds(v VarID, lb, ub float64) {
	if lb > ub {
		panic(fmt.Sprintf("ilp: var %q has lb %v > ub %v", m.vars[v].name, lb, ub))
	}
	m.vars[v].lb, m.vars[v].ub = lb, ub
}

// FixVar pins variable v to val via its bounds. Model builders should
// prefer this over a singleton equality row: the solver folds bound fixes
// into the tableau for free, and the row structure stays identical across
// solves that fix different variables (enabling warm starts).
func (m *Model) FixVar(v VarID, val float64) {
	m.vars[v].lb, m.vars[v].ub = val, val
}

// SetObj replaces the objective coefficient of variable v (minimization).
// Like bound changes, objective changes keep the compiled relaxation and
// its warm-start applicability intact.
func (m *Model) SetObj(v VarID, obj float64) {
	m.vars[v].obj = obj
}

// NumVars returns the variable count.
func (m *Model) NumVars() int { return len(m.vars) }

// NumCons returns the constraint count.
func (m *Model) NumCons() int { return len(m.cons) }

// Name returns the name of variable v.
func (m *Model) Name(v VarID) string { return m.vars[v].name }

// AddCons adds the constraint sum(coef[k] * idx[k]) sense rhs. Duplicate
// indices accumulate.
func (m *Model) AddCons(idx []VarID, coef []float64, sense lp.Sense, rhs float64) {
	if len(idx) != len(coef) {
		panic("ilp: constraint index/coef length mismatch")
	}
	for _, v := range idx {
		if int(v) < 0 || int(v) >= len(m.vars) {
			panic(fmt.Sprintf("ilp: constraint references unknown var %d", v))
		}
	}
	m.cons = append(m.cons, constraint{
		idx:   append([]VarID(nil), idx...),
		coef:  append([]float64(nil), coef...),
		sense: sense, rhs: rhs,
	})
	m.compiled, m.solvers = nil, nil
}

const intTol = 1e-6

// Check verifies that x satisfies every constraint, bound, and integrality
// requirement of the model; it returns a descriptive error on the first
// violation. Used by tests and by the rounding heuristic.
func (m *Model) Check(x []float64) error {
	if len(x) != len(m.vars) {
		return fmt.Errorf("ilp: solution length %d, want %d", len(x), len(m.vars))
	}
	for j, v := range m.vars {
		if x[j] < v.lb-1e-6 || x[j] > v.ub+1e-6 {
			return fmt.Errorf("ilp: var %s=%v outside [%v,%v]", v.name, x[j], v.lb, v.ub)
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > intTol {
			return fmt.Errorf("ilp: var %s=%v not integral", v.name, x[j])
		}
	}
	for i, c := range m.cons {
		dot := 0.0
		for k, v := range c.idx {
			dot += c.coef[k] * x[v]
		}
		switch c.sense {
		case lp.LE:
			if dot > c.rhs+1e-5 {
				return fmt.Errorf("ilp: row %d: %v <= %v violated", i, dot, c.rhs)
			}
		case lp.GE:
			if dot < c.rhs-1e-5 {
				return fmt.Errorf("ilp: row %d: %v >= %v violated", i, dot, c.rhs)
			}
		case lp.EQ:
			if math.Abs(dot-c.rhs) > 1e-5 {
				return fmt.Errorf("ilp: row %d: %v = %v violated", i, dot, c.rhs)
			}
		}
	}
	return nil
}

// Objective evaluates the model objective at x.
func (m *Model) Objective(x []float64) float64 {
	obj := 0.0
	for j, v := range m.vars {
		obj += v.obj * x[j]
	}
	return obj
}

// objectiveIntegral reports whether every attainable objective value is an
// integer, which lets branch-and-bound round node bounds up.
func (m *Model) objectiveIntegral() bool {
	for _, v := range m.vars {
		if v.obj != math.Trunc(v.obj) {
			return false
		}
		if !v.integer && v.obj != 0 {
			return false
		}
	}
	return true
}

// pickFractional selects the integer variable farthest from integrality
// (most-fractional branching), or -1 if the point is integer feasible.
func (m *Model) pickFractional(x []float64) int {
	best, bestDist := -1, intTol
	for j, v := range m.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if dist := math.Min(f, 1-f); dist > bestDist {
			bestDist = dist
			best = j
		}
	}
	return best
}

func (m *Model) roundInPlace(x []float64) {
	for j, v := range m.vars {
		if v.integer {
			x[j] = math.Round(x[j])
		}
	}
}

// tryRoundInto rounds x's integer coordinates into dst and reports whether
// the rounded point satisfies the model — the allocation-free rounding
// heuristic of the branch-and-bound hot path.
func (m *Model) tryRoundInto(dst, x []float64) bool {
	copy(dst, x)
	m.roundInPlace(dst)
	return m.feasible(dst)
}

// feasible mirrors Check without constructing errors.
func (m *Model) feasible(x []float64) bool {
	for j, v := range m.vars {
		if x[j] < v.lb-1e-6 || x[j] > v.ub+1e-6 {
			return false
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > intTol {
			return false
		}
	}
	for _, c := range m.cons {
		dot := 0.0
		for k, v := range c.idx {
			dot += c.coef[k] * x[v]
		}
		switch c.sense {
		case lp.LE:
			if dot > c.rhs+1e-5 {
				return false
			}
		case lp.GE:
			if dot < c.rhs-1e-5 {
				return false
			}
		case lp.EQ:
			if math.Abs(dot-c.rhs) > 1e-5 {
				return false
			}
		}
	}
	return true
}

// compileLP returns the shared LP relaxation: variables map 1:1 onto LP
// columns with native bounds, constraints onto rows. Branch-and-bound nodes
// differ only in the bound vectors they pass to the solver. The compiled
// problem is cached across solves — objective and bound edits are folded
// into the cached copy, and only structural changes force a rebuild.
func (m *Model) compileLP() *lp.Problem {
	if p := m.compiled; p != nil {
		for j, v := range m.vars {
			p.SetObj(j, v.obj)
			p.SetBounds(j, v.lb, v.ub)
		}
		return p
	}
	p := lp.NewProblem(len(m.vars))
	for j, v := range m.vars {
		if v.obj != 0 {
			p.SetObj(j, v.obj)
		}
		p.SetBounds(j, v.lb, v.ub)
	}
	var idx []int
	for _, c := range m.cons {
		idx = idx[:0]
		for _, v := range c.idx {
			idx = append(idx, int(v))
		}
		p.AddSparseRow(idx, c.coef, c.sense, c.rhs)
	}
	m.compiled = p
	return p
}

// getSolver hands out a cached solver for the compiled relaxation (one per
// concurrent worker); putSolver returns it for the next solve. Access is
// confined to Model.Solve, which serializes handout before the workers
// start.
func (m *Model) getSolver(p *lp.Problem) *lp.Solver {
	if n := len(m.solvers); n > 0 {
		sv := m.solvers[n-1]
		m.solvers = m.solvers[:n-1]
		return sv
	}
	return lp.NewSolver(p)
}

func (m *Model) putSolver(sv *lp.Solver) {
	m.solvers = append(m.solvers, sv)
}
