// Package store is an on-disk, content-addressed cache of immutable
// byte payloads — the durable half of the fpva plan cache. Keys are hex
// digests (planKey already hashes the array wire bytes plus every
// vector-shaping option), values are the plan's v1 wire encoding, and
// the store's one promise is crash safety: a process killed at any
// instant — mid-write, mid-evict, mid-compaction — leaves a directory
// the next Open turns back into a consistent cache, quarantining
// anything torn instead of serving it.
//
// Layout under the root directory:
//
//	plans/<key>.plan   one entry: a JSON header line (length + SHA-256
//	                   of the payload), then the payload bytes verbatim
//	tmp/               staging for atomic writes (temp file, fsync,
//	                   rename); leftovers here are crash debris and are
//	                   removed on Open
//	quarantine/        entries that failed verification, moved aside
//	                   with a timestamp suffix for postmortems
//	journal            append-only LRU log: "p <key> <len>" on write,
//	                   "t <key>" on read, "d <key>" on eviction;
//	                   replayed on Open, rewritten compact when it
//	                   outgrows the live index
//
// The store degrades instead of failing: any write-path I/O error
// (disk full, EIO) trips it into memory-only mode — every operation
// becomes a fast no-op — and a doubling-backoff probe re-attempts the
// next writes until one succeeds, at which point the store silently
// resumes. Readers of Stats see the mode, the reason, and every
// counter the daemon exports.
package store

import (
	"io"
	"os"
	"sync"
)

// FS is the slice of the filesystem the store uses, injectable so tests
// can script torn writes, EIO bursts, and disk-full conditions without
// touching a real device. The zero value of Options selects the real
// implementation.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	Open(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// CreateTemp creates a new unique file in dir (os.CreateTemp
	// semantics: pattern's "*" is replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Stat(path string) (os.FileInfo, error)
}

// File is the per-handle surface the store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production FS backed by package os.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) Open(path string) (File, error)               { return os.Open(path) }
func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }

// Op names one FS operation for fault injection.
type Op string

// The injectable operation points. OpRead, OpWrite and OpSync address
// per-handle calls; the rest address the FS-level entry points.
const (
	OpMkdirAll   Op = "mkdirall"
	OpReadDir    Op = "readdir"
	OpOpen       Op = "open"
	OpOpenAppend Op = "append"
	OpCreateTemp Op = "createtemp"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpStat       Op = "stat"
	OpRead       Op = "read"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
)

// FaultFS wraps another FS with a scripted fault hook: before every
// operation the hook is consulted and a non-nil return fails the
// operation with that error (the hook may also block, which tests use
// to hold a read in flight while eviction runs). A nil hook passes
// everything through. FaultFS is safe for concurrent use and exists
// for tests; production code uses OSFS.
type FaultFS struct {
	Base FS

	mu   sync.Mutex
	hook func(op Op, path string) error
}

// SetHook installs (or, with nil, removes) the fault hook.
func (f *FaultFS) SetHook(h func(op Op, path string) error) {
	f.mu.Lock()
	f.hook = h
	f.mu.Unlock()
}

func (f *FaultFS) check(op Op, path string) error {
	f.mu.Lock()
	h := f.hook
	f.mu.Unlock()
	if h == nil {
		return nil
	}
	return h(op, path)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpMkdirAll, path); err != nil {
		return err
	}
	return f.Base.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	if err := f.check(OpReadDir, path); err != nil {
		return nil, err
	}
	return f.Base.ReadDir(path)
}

func (f *FaultFS) Open(path string) (File, error) {
	if err := f.check(OpOpen, path); err != nil {
		return nil, err
	}
	file, err := f.Base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, File: file}, nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	if err := f.check(OpOpenAppend, path); err != nil {
		return nil, err
	}
	file, err := f.Base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, File: file}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	file, err := f.Base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, File: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename, oldpath); err != nil {
		return err
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.Base.Remove(path)
}

func (f *FaultFS) Stat(path string) (os.FileInfo, error) {
	if err := f.check(OpStat, path); err != nil {
		return nil, err
	}
	return f.Base.Stat(path)
}

// faultFile threads the hook through per-handle reads, writes and syncs.
type faultFile struct {
	f *FaultFS
	File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.f.check(OpRead, ff.Name()); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.f.check(OpWrite, ff.Name()); err != nil {
		return 0, err
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.f.check(OpSync, ff.Name()); err != nil {
		return err
	}
	return ff.File.Sync()
}
