package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// key derives a valid store key from a short label.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPutGetRoundTrip(t *testing.T) {
	s := Open(Options{Dir: t.TempDir()})
	defer s.Close()
	k, v := key("a"), []byte("payload-a")
	if _, ok := s.Get(k); ok {
		t.Fatal("Get on empty store returned a value")
	}
	s.Put(k, v)
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, v) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, v)
	}
	st := s.Stats()
	if st.Mode != "ok" || st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != int64(len(v)) {
		t.Errorf("Bytes = %d, want %d", st.Bytes, len(v))
	}
}

func TestReopenServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	vals := map[string][]byte{}
	s := Open(Options{Dir: dir})
	for _, label := range []string{"a", "b", "c"} {
		v := []byte(strings.Repeat(label, 100))
		vals[key(label)] = v
		s.Put(key(label), v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh Open (a restarted daemon) must serve bit-identical bytes.
	s2 := Open(Options{Dir: dir})
	defer s2.Close()
	if st := s2.Stats(); st.Mode != "ok" || st.Entries != 3 {
		t.Fatalf("reopened stats = %+v", st)
	}
	for k, want := range vals {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("key %s: Get = %v, %v", k[:8], ok, bytes.Equal(got, want))
		}
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := Open(Options{Dir: t.TempDir()})
	defer s.Close()
	for _, k := range []string{"", "short", "../../../../etc/passwd", key("x") + "/../y",
		strings.ToUpper(key("x")), strings.Repeat("a", 129)} {
		s.Put(k, []byte("v"))
		if _, ok := s.Get(k); ok {
			t.Errorf("key %q: stored despite being invalid", k)
		}
	}
	if st := s.Stats(); st.Entries != 0 || st.Writes != 0 {
		t.Errorf("stats after invalid keys = %+v", st)
	}
}

func TestOversizePayloadSkipped(t *testing.T) {
	s := Open(Options{Dir: t.TempDir(), CapBytes: 16})
	defer s.Close()
	s.Put(key("big"), bytes.Repeat([]byte("x"), 17))
	if st := s.Stats(); st.Entries != 0 || st.Writes != 0 {
		t.Errorf("oversize payload was stored: %+v", st)
	}
}

func TestBitFlipQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir})
	defer s.Close()
	k := key("flip")
	s.Put(k, []byte("precious payload bytes"))
	// Flip one payload bit behind the store's back.
	path := filepath.Join(dir, "plans", k+".plan")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("Get served a corrupt entry")
	}
	st := s.Stats()
	if st.Mode != "ok" {
		t.Errorf("corruption tripped degraded mode: %+v", st)
	}
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want Quarantined=1 Entries=0", st)
	}
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(qents), err)
	}
	// The key stays usable: a rewrite stores a fresh verified entry.
	s.Put(k, []byte("precious payload bytes"))
	if _, ok := s.Get(k); !ok {
		t.Error("re-Put after quarantine did not store")
	}
}

func TestTruncatedEntryQuarantinedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir})
	k, k2 := key("torn"), key("whole")
	s.Put(k, bytes.Repeat([]byte("t"), 256))
	s.Put(k2, []byte("intact"))
	s.Close()
	// Simulate a torn write that somehow reached the final name (e.g. a
	// crash after a non-atomic filesystem lied about rename durability).
	path := filepath.Join(dir, "plans", k+".plan")
	if err := os.Truncate(path, 64); err != nil {
		t.Fatal(err)
	}
	s2 := Open(Options{Dir: dir})
	defer s2.Close()
	st := s2.Stats()
	if st.Mode != "ok" || st.Quarantined != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want ok/Quarantined=1/Entries=1", st)
	}
	if _, ok := s2.Get(k); ok {
		t.Error("truncated entry served")
	}
	if v, ok := s2.Get(k2); !ok || string(v) != "intact" {
		t.Error("intact entry lost during recovery")
	}
}

func TestTmpDebrisClearedOnOpen(t *testing.T) {
	dir := t.TempDir()
	Open(Options{Dir: dir}).Close()
	debris := filepath.Join(dir, "tmp", key("junk")+".123")
	if err := os.WriteFile(debris, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	Open(Options{Dir: dir}).Close()
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Error("tmp debris survived Open")
	}
}

func TestUnjournaledEntryAdopted(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir})
	k := key("orphan")
	s.Put(k, []byte("renamed but never journaled"))
	s.Close()
	// Crash between rename and journal append: the journal has no record
	// of the entry.
	if err := os.Remove(filepath.Join(dir, "journal")); err != nil {
		t.Fatal(err)
	}
	s2 := Open(Options{Dir: dir})
	defer s2.Close()
	if v, ok := s2.Get(k); !ok || string(v) != "renamed but never journaled" {
		t.Error("unjournaled entry was not adopted")
	}
}

func TestJournalGhostDropped(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir})
	k := key("ghost")
	s.Put(k, []byte("logged then lost"))
	s.Close()
	// Crash between an eviction's journal append and the unlink, replayed
	// here as: the journal says present, the file is gone.
	if err := os.Remove(filepath.Join(dir, "plans", k+".plan")); err != nil {
		t.Fatal(err)
	}
	s2 := Open(Options{Dir: dir})
	defer s2.Close()
	st := s2.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("ghost survived replay: %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir, CapBytes: 300})
	defer s.Close()
	v := bytes.Repeat([]byte("x"), 100)
	s.Put(key("a"), v)
	s.Put(key("b"), v)
	s.Put(key("c"), v)
	// Touch "a": "b" becomes the LRU tail.
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("warm Get missed")
	}
	s.Put(key("d"), v) // over budget: evict exactly "b"
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 300 {
		t.Fatalf("stats = %+v, want Evictions=1 Entries=3 Bytes=300", st)
	}
	if _, ok := s.Get(key("b")); ok {
		t.Error("LRU victim still served")
	}
	for _, label := range []string{"a", "c", "d"} {
		if _, ok := s.Get(key(label)); !ok {
			t.Errorf("entry %q evicted out of LRU order", label)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "plans", key("b")+".plan")); !os.IsNotExist(err) {
		t.Error("victim file not removed")
	}
}

func TestLRUOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir, CapBytes: 300})
	v := bytes.Repeat([]byte("x"), 100)
	s.Put(key("a"), v)
	s.Put(key("b"), v)
	s.Put(key("c"), v)
	s.Get(key("a")) // journal a touch: LRU order is now b, c, a
	s.Close()
	s2 := Open(Options{Dir: dir, CapBytes: 300})
	defer s2.Close()
	s2.Put(key("d"), v) // must evict "b", the replayed LRU tail
	if _, ok := s2.Get(key("b")); ok {
		t.Error("replayed LRU order lost: b survived")
	}
	if _, ok := s2.Get(key("a")); !ok {
		t.Error("replayed LRU order lost: a evicted")
	}
}

func TestPinnedReaderNeverEvicted(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Base: OSFS()}
	s := Open(Options{Dir: dir, CapBytes: 300, FS: ffs})
	defer s.Close()
	v := bytes.Repeat([]byte("p"), 100)
	target := filepath.Join(dir, "plans", key("pinned")+".plan")
	s.Put(key("pinned"), v)
	s.Put(key("other"), v)

	// Hold a Get of "pinned" mid-read while eviction pressure arrives.
	readEntered := make(chan struct{})
	releaseRead := make(chan struct{})
	var once sync.Once
	ffs.SetHook(func(op Op, path string) error {
		if op == OpRead && path == target {
			once.Do(func() { close(readEntered) })
			<-releaseRead
		}
		return nil
	})
	got := make(chan []byte)
	go func() {
		b, _ := s.Get(key("pinned"))
		got <- b
	}()
	<-readEntered
	// "pinned" is the LRU tail (oldest, its MoveToFront happens only
	// after the read completes) but pinned; eviction must pass over it.
	s.Put(key("x1"), v)
	s.Put(key("x2"), v)
	close(releaseRead)
	if b := <-got; !bytes.Equal(b, v) {
		t.Fatal("in-flight read returned wrong bytes under eviction pressure")
	}
	ffs.SetHook(nil)
	if _, err := os.Stat(target); err != nil {
		t.Error("pinned entry's file was removed while being read")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Error("eviction pressure never evicted anything else")
	}
}

func TestEIOTripsDegradedWithDoublingBackoff(t *testing.T) {
	clock := newFakeClock()
	ffs := &FaultFS{Base: OSFS()}
	s := Open(Options{
		Dir: t.TempDir(), FS: ffs, Now: clock.Now,
		BackoffMin: time.Second, BackoffMax: 8 * time.Second,
	})
	defer s.Close()
	eio := errors.New("injected EIO")
	ffs.SetHook(func(op Op, path string) error {
		if op == OpCreateTemp {
			return eio
		}
		return nil
	})

	s.Put(key("w1"), []byte("v1")) // trips
	st := s.Stats()
	if st.Mode != "degraded" || st.Trips != 1 || st.WriteErrors != 1 {
		t.Fatalf("after first failure: %+v", st)
	}
	if !strings.Contains(st.Reason, "injected EIO") {
		t.Errorf("Reason = %q, want the injected error", st.Reason)
	}
	if _, ok := s.Get(key("w1")); ok {
		t.Fatal("degraded store served a value")
	}

	// Inside the backoff window every Put is skipped without disk I/O.
	s.Put(key("w2"), []byte("v2"))
	if st := s.Stats(); st.SkippedWrites != 1 || st.WriteErrors != 1 {
		t.Fatalf("inside backoff window: %+v", st)
	}
	// At the 1s probe point the Put really probes, fails, and the backoff
	// doubles to 2s.
	clock.Advance(time.Second)
	s.Put(key("w3"), []byte("v3"))
	if st := s.Stats(); st.WriteErrors != 2 || st.Trips != 1 {
		t.Fatalf("first probe: %+v", st)
	}
	clock.Advance(time.Second) // 1s into the 2s window: still skipped
	s.Put(key("w4"), []byte("v4"))
	if st := s.Stats(); st.SkippedWrites != 2 || st.WriteErrors != 2 {
		t.Fatalf("inside doubled window: %+v", st)
	}

	// Disk heals; the next probe succeeds and the store resumes.
	ffs.SetHook(nil)
	clock.Advance(time.Second)
	s.Put(key("w5"), []byte("v5"))
	st = s.Stats()
	if st.Mode != "ok" || st.Recoveries != 1 || st.Writes != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if v, ok := s.Get(key("w5")); !ok || string(v) != "v5" {
		t.Error("recovered store did not serve the probe write")
	}
}

func TestOpenDegradedFromBirthThenRecovers(t *testing.T) {
	clock := newFakeClock()
	ffs := &FaultFS{Base: OSFS()}
	fail := errors.New("disk unreachable")
	ffs.SetHook(func(op Op, path string) error {
		if op == OpMkdirAll {
			return fail
		}
		return nil
	})
	s := Open(Options{Dir: filepath.Join(t.TempDir(), "cache"), FS: ffs, Now: clock.Now,
		BackoffMin: time.Second, BackoffMax: time.Minute})
	defer s.Close()
	if st := s.Stats(); st.Mode != "degraded" || st.Trips != 1 {
		t.Fatalf("Open on a sick disk: %+v", st)
	}
	ffs.SetHook(nil)
	clock.Advance(time.Second)
	s.Put(key("first"), []byte("v"))
	st := s.Stats()
	if st.Mode != "ok" || st.Recoveries != 1 || st.Entries != 1 {
		t.Fatalf("after disk reappears: %+v", st)
	}
	if _, ok := s.Get(key("first")); !ok {
		t.Error("recovered store lost the probe write")
	}
}

func TestJournalCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s := Open(Options{Dir: dir})
	k := key("hot")
	s.Put(k, []byte("v"))
	// Hammer one key: touches accumulate until compaction rewrites the
	// journal down to the live set.
	for i := 0; i < 500; i++ {
		s.Get(k)
		s.Put(key(fmt.Sprintf("k%d", i%3)), []byte("v"))
	}
	s.Close()
	b, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(b, []byte("\n")); lines > 4*4+64+100 {
		t.Errorf("journal grew unbounded: %d lines", lines)
	}
	s2 := Open(Options{Dir: dir})
	defer s2.Close()
	if _, ok := s2.Get(k); !ok {
		t.Error("compacted journal lost an entry")
	}
}

func TestConcurrentPutGetEvict(t *testing.T) {
	s := Open(Options{Dir: t.TempDir(), CapBytes: 2000})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				label := fmt.Sprintf("k%d", (g+i)%20)
				v := bytes.Repeat([]byte{byte('a' + (g+i)%20)}, 200)
				s.Put(key(label), v)
				if got, ok := s.Get(key(label)); ok && !bytes.Equal(got, v) {
					t.Errorf("Get returned wrong bytes for %s", label)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Mode != "ok" {
		t.Fatalf("concurrent churn tripped the store: %+v", st)
	}
	if st.Bytes > 2000 {
		t.Errorf("byte budget exceeded after churn: %+v", st)
	}
}

// TestKill9MidWrite is the crash-safety acceptance check: a child
// process writing entries is SIGKILLed at a random instant; the
// reopened store must either serve each entry verbatim or not at all —
// never torn bytes — and come up in ok mode.
func TestKill9MidWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	for round := 0; round < 5; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestKill9Worker$", "-test.v")
		cmd.Env = append(os.Environ(), "STORE_KILL9_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(5+round*7) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		s := Open(Options{Dir: dir})
		if st := s.Stats(); st.Mode != "ok" {
			t.Fatalf("round %d: reopen after kill -9: %+v", round, st)
		}
		// Every surviving entry must verify and decode to its canonical
		// payload (the content is derivable from the key's label).
		for i := 0; i < 64; i++ {
			label := fmt.Sprintf("kill9-%d", i)
			if v, ok := s.Get(key(label)); ok {
				if want := kill9Payload(label); !bytes.Equal(v, want) {
					t.Fatalf("round %d: entry %s served torn bytes", round, label)
				}
			}
		}
		s.Close()
	}
}

// TestKill9Worker is the child side of TestKill9MidWrite: it writes
// entries in a tight loop until killed. Not a real test when run in the
// normal suite.
func TestKill9Worker(t *testing.T) {
	dir := os.Getenv("STORE_KILL9_DIR")
	if dir == "" {
		t.Skip("child-process helper for TestKill9MidWrite")
	}
	s := Open(Options{Dir: dir})
	for i := 0; ; i = (i + 1) % 64 {
		label := fmt.Sprintf("kill9-%d", i)
		s.Put(key(label), kill9Payload(label))
	}
}

// kill9Payload derives a deterministic multi-KB payload from a label, so
// parent and child agree on the expected bytes without a side channel.
func kill9Payload(label string) []byte {
	var out []byte
	seed := label
	for len(out) < 4096 {
		sum := sha256.Sum256([]byte(seed))
		out = append(out, sum[:]...)
		seed = hex.EncodeToString(sum[:8])
	}
	return out
}
