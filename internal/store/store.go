package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// entryFormat / entryVersion stamp every entry header; a future layout
// change bumps the version and old entries are quarantined, not
// misread.
const (
	entryFormat  = "fpva.store"
	entryVersion = 1
)

// Default degraded-mode probe backoff bounds (see Options).
const (
	DefaultBackoffMin = 1 * time.Second
	DefaultBackoffMax = 2 * time.Minute
)

// maxHeaderBytes bounds the JSON header line of an entry file.
const maxHeaderBytes = 4096

// Options configures Open. Dir is required; everything else has a
// default. FS and Now exist for fault-injection and clock-control in
// tests.
type Options struct {
	// Dir is the store's root directory, created if absent.
	Dir string
	// CapBytes is the LRU byte budget over payload bytes (<= 0 means
	// unlimited). A payload larger than the whole budget is not stored.
	CapBytes int64
	// FS overrides the filesystem (default OSFS()).
	FS FS
	// Now overrides the clock used for probe backoff (default time.Now).
	Now func() time.Time
	// BackoffMin / BackoffMax bound the degraded-mode re-probe interval
	// (defaults DefaultBackoffMin / DefaultBackoffMax). The interval
	// starts at the minimum and doubles on every failed probe.
	BackoffMin, BackoffMax time.Duration
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Mode is "ok" or "degraded"; Reason names the error that tripped a
	// degraded store ("" otherwise).
	Mode   string
	Reason string

	// Entries / Bytes / CapBytes describe current occupancy (payload
	// bytes, excluding headers and journal).
	Entries  int
	Bytes    int64
	CapBytes int64

	// Hits / Misses count Get outcomes (a degraded Get is a miss).
	Hits   int
	Misses int

	// Writes counts entries durably stored; WriteErrors counts failed
	// write attempts (each trips degraded mode); SkippedWrites counts
	// Puts dropped while degraded between probes.
	Writes        int
	WriteErrors   int
	SkippedWrites int

	// ReadErrors counts I/O failures reading an entry (these trip
	// degraded mode); Quarantined counts torn or corrupt entries moved
	// aside; Evictions counts LRU byte-budget evictions.
	ReadErrors  int
	Quarantined int
	Evictions   int

	// Trips / Recoveries count transitions into and out of degraded
	// memory-only mode.
	Trips      int
	Recoveries int
}

// entry is one resident key in the LRU index. pins counts in-flight
// readers: a pinned entry is never evicted, so a Get that is streaming
// an entry off disk cannot have the file unlinked under it.
type entry struct {
	key  string
	size int64
	pins int
}

// header is the first line of every entry file.
type header struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Key     string `json:"key"`
	Len     int64  `json:"len"`
	SHA256  string `json:"sha256"`
}

// errCorrupt classifies verification failures (torn write, bit flip,
// wrong key) as distinct from live I/O errors: corruption quarantines
// the entry, an I/O error trips degraded mode.
var errCorrupt = errors.New("store: corrupt entry")

// Store is an on-disk content-addressed byte cache with an LRU byte
// budget. It is safe for concurrent use. See the package comment for
// the layout and crash-safety contract.
type Store struct {
	dir        string
	capBytes   int64
	fs         FS
	now        func() time.Time
	backoffMin time.Duration
	backoffMax time.Duration

	mu           sync.Mutex
	init         bool
	journal      File // open append handle; nil while degraded or before init
	journalLines int
	ll           *list.List // front = most recently used; values are *entry
	index        map[string]*list.Element
	bytes        int64
	qseq         int // quarantine filename suffix, for repeat offenders

	degraded  bool
	reason    string
	backoff   time.Duration
	nextProbe time.Time

	st Stats // counters only; occupancy and mode are filled by Stats()
}

// Open opens (or creates) the store rooted at o.Dir. Open never fails:
// if the directory cannot be prepared — unreachable disk, permission
// trouble — the store comes up in degraded memory-only mode, reports
// why through Stats, and re-probes with backoff as writes arrive, so a
// daemon with a sick cache disk still boots and serves.
func Open(o Options) *Store {
	s := &Store{
		dir:        o.Dir,
		capBytes:   o.CapBytes,
		fs:         o.FS,
		now:        o.Now,
		backoffMin: o.BackoffMin,
		backoffMax: o.BackoffMax,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
	}
	if s.fs == nil {
		s.fs = OSFS()
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.backoffMin <= 0 {
		s.backoffMin = DefaultBackoffMin
	}
	if s.backoffMax < s.backoffMin {
		s.backoffMax = DefaultBackoffMax
	}
	s.mu.Lock()
	if err := s.initLocked(); err != nil {
		s.tripLocked("open", err)
	}
	s.mu.Unlock()
	return s
}

// Get returns the payload stored under key. A missing, degraded,
// corrupt or unreadable entry is a miss — the store never serves bytes
// that fail verification, and a degraded store does no disk I/O at all.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if !s.init || s.degraded {
		s.st.Misses++
		s.mu.Unlock()
		return nil, false
	}
	el, ok := s.index[key]
	if !ok {
		s.st.Misses++
		s.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*entry)
	e.pins++ // hold the file in place while we read it
	s.mu.Unlock()

	payload, err := s.readEntry(key)

	s.mu.Lock()
	e.pins--
	if err != nil {
		if errors.Is(err, errCorrupt) {
			s.quarantineLocked(key)
		} else {
			s.st.ReadErrors++
			s.tripLocked("read "+key, err)
		}
		s.mu.Unlock()
		return nil, false
	}
	s.st.Hits++
	if el2, ok := s.index[key]; ok { // may have been quarantined by a racing reader
		s.ll.MoveToFront(el2)
		s.appendJournalLocked("t " + key)
		s.maybeCompactLocked() // read-heavy workloads journal touches too
	}
	s.mu.Unlock()
	return payload, true
}

// Put stores val under key if absent. The write is atomic (temp file,
// fsync, rename), so a crash at any instant leaves either the complete
// entry or debris in tmp/ that the next Open clears. Errors do not
// surface to the caller: a failed write trips degraded mode and the
// store becomes a fast no-op until a backoff probe succeeds.
func (s *Store) Put(key string, val []byte) {
	if !validKey(key) || len(val) == 0 {
		return
	}
	if s.capBytes > 0 && int64(len(val)) > s.capBytes {
		return
	}
	s.mu.Lock()
	if s.degraded || !s.init {
		if s.now().Before(s.nextProbe) {
			s.st.SkippedWrites++
			s.mu.Unlock()
			return
		}
		// This write is the probe. If the directory never came up (or the
		// disk reappeared), rebuild the on-disk state first.
		if !s.init {
			if err := s.initLocked(); err != nil {
				s.tripLocked("open", err)
				s.mu.Unlock()
				return
			}
		}
	}
	if el, ok := s.index[key]; ok {
		s.ll.MoveToFront(el)
		s.appendJournalLocked("t " + key) // keep the durable LRU order honest
		s.maybeCompactLocked()
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	err := s.writeEntry(key, val)

	s.mu.Lock()
	if err != nil {
		s.st.WriteErrors++
		s.tripLocked("write "+key, err)
		s.mu.Unlock()
		return
	}
	if s.degraded {
		s.recoverLocked()
	}
	if el, ok := s.index[key]; ok {
		// A concurrent Put of the same key beat us; both wrote identical
		// bytes (content addressing), so the second rename was a no-op.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.index[key] = s.ll.PushFront(&entry{key: key, size: int64(len(val))})
	s.bytes += int64(len(val))
	s.st.Writes++
	s.appendJournalLocked("p " + key + " " + strconv.Itoa(len(val)))
	victims := s.evictLocked()
	s.maybeCompactLocked()
	s.mu.Unlock()
	for _, k := range victims {
		s.fs.Remove(s.planPath(k))
	}
}

// Stats returns a snapshot of the store's counters and mode.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	st.CapBytes = s.capBytes
	if s.degraded {
		st.Mode = "degraded"
		st.Reason = s.reason
	} else {
		st.Mode = "ok"
	}
	return st
}

// Close releases the journal handle. The store's durable state needs no
// shutdown step — every mutation was already atomic.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// ---- paths and keys ----

func (s *Store) plansDir() string      { return filepath.Join(s.dir, "plans") }
func (s *Store) tmpDir() string        { return filepath.Join(s.dir, "tmp") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }
func (s *Store) journalPath() string   { return filepath.Join(s.dir, "journal") }
func (s *Store) planPath(key string) string {
	return filepath.Join(s.plansDir(), key+".plan")
}

// validKey accepts lowercase-hex digests (planKey emits 64 hex chars).
// Anything else — in particular anything that could traverse paths —
// is rejected outright.
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ---- degraded mode ----

// tripLocked switches the store into (or keeps it in) degraded
// memory-only mode: reason recorded, probe scheduled with doubling
// backoff, journal handle dropped so a recovered store reopens it
// fresh.
func (s *Store) tripLocked(op string, err error) {
	if s.degraded {
		s.backoff *= 2
		if s.backoff > s.backoffMax {
			s.backoff = s.backoffMax
		}
	} else {
		s.degraded = true
		s.backoff = s.backoffMin
		s.st.Trips++
	}
	s.reason = op + ": " + err.Error()
	s.nextProbe = s.now().Add(s.backoff)
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
}

// recoverLocked leaves degraded mode after a successful probe write.
func (s *Store) recoverLocked() {
	s.degraded = false
	s.reason = ""
	s.backoff = 0
	s.nextProbe = time.Time{}
	s.st.Recoveries++
}

// ---- entry I/O ----

// writeEntry stages header+payload in tmp/, fsyncs, and renames into
// place. Any failure removes the temp file and reports the error; the
// caller decides whether that trips degraded mode.
func (s *Store) writeEntry(key string, val []byte) error {
	f, err := s.fs.CreateTemp(s.tmpDir(), key+".*")
	if err != nil {
		return err
	}
	tmpPath := f.Name()
	sum := sha256.Sum256(val)
	hdr, err := json.Marshal(header{
		Format: entryFormat, Version: entryVersion,
		Key: key, Len: int64(len(val)), SHA256: hex.EncodeToString(sum[:]),
	})
	if err == nil {
		_, err = f.Write(append(hdr, '\n'))
	}
	if err == nil {
		_, err = f.Write(val)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.Rename(tmpPath, s.planPath(key))
	}
	if err != nil {
		s.fs.Remove(tmpPath)
		return err
	}
	return nil
}

// readEntry reads and verifies one entry. Verification failures return
// errCorrupt; everything else is a live I/O error.
func (s *Store) readEntry(key string) ([]byte, error) {
	f, err := s.fs.Open(s.planPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s: file missing", errCorrupt, key)
		}
		return nil, err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	payload, err := verifyEntry(key, b)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// verifyEntry checks the header line, length, and SHA-256 of one
// entry's raw bytes, returning the payload.
func verifyEntry(key string, b []byte) ([]byte, error) {
	idx := bytes.IndexByte(b, '\n')
	if idx < 0 || idx > maxHeaderBytes {
		return nil, fmt.Errorf("%w: %s: no header line", errCorrupt, key)
	}
	var h header
	if err := json.Unmarshal(b[:idx], &h); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", errCorrupt, key, err)
	}
	if h.Format != entryFormat || h.Version != entryVersion || h.Key != key {
		return nil, fmt.Errorf("%w: %s: header mismatch", errCorrupt, key)
	}
	payload := b[idx+1:]
	if int64(len(payload)) != h.Len {
		return nil, fmt.Errorf("%w: %s: truncated: have %d bytes, header says %d",
			errCorrupt, key, len(payload), h.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.SHA256 {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", errCorrupt, key)
	}
	return payload, nil
}

// quarantineLocked moves a torn or corrupt entry out of the live set
// and into quarantine/ for postmortems (falling back to deletion, then
// to simply forgetting it, if the disk won't cooperate).
func (s *Store) quarantineLocked(key string) {
	if el, ok := s.index[key]; ok {
		s.bytes -= el.Value.(*entry).size
		s.ll.Remove(el)
		delete(s.index, key)
		s.appendJournalLocked("d " + key)
	}
	s.st.Quarantined++
	s.qseq++
	dst := filepath.Join(s.quarantineDir(), key+".plan."+strconv.Itoa(s.qseq))
	if err := s.fs.Rename(s.planPath(key), dst); err != nil {
		s.fs.Remove(s.planPath(key))
	}
}

// evictLocked unlinks LRU-tail entries from the index until the byte
// budget holds, skipping pinned entries (an in-flight reader is never
// evicted under). It returns the victims' keys; the caller removes the
// files after releasing the lock.
func (s *Store) evictLocked() []string {
	if s.capBytes <= 0 {
		return nil
	}
	var victims []string
	for el := s.ll.Back(); el != nil && s.bytes > s.capBytes; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.pins == 0 {
			s.ll.Remove(el)
			delete(s.index, e.key)
			s.bytes -= e.size
			s.st.Evictions++
			s.appendJournalLocked("d " + e.key)
			victims = append(victims, e.key)
		}
		el = prev
	}
	return victims
}

// ---- journal ----

// appendJournalLocked appends one op line, opening the handle on first
// use. Journal appends are not fsynced — losing recent LRU ordering to
// a crash is harmless (entries themselves are synced, and unjournaled
// files are adopted on Open) — but an append error still trips
// degraded mode: it is the cheapest early warning of a sick disk.
func (s *Store) appendJournalLocked(line string) {
	if s.journal == nil {
		f, err := s.fs.OpenAppend(s.journalPath())
		if err != nil {
			s.st.WriteErrors++
			s.tripLocked("journal open", err)
			return
		}
		s.journal = f
	}
	if _, err := io.WriteString(s.journal, line+"\n"); err != nil {
		s.st.WriteErrors++
		s.tripLocked("journal append", err)
		return
	}
	s.journalLines++
}

// maybeCompactLocked rewrites the journal as pure "p" lines once it
// outgrows the live index by 4x (plus slack), bounding replay work.
// The rewrite is itself atomic: temp file, sync, rename, reopen.
func (s *Store) maybeCompactLocked() {
	if s.journalLines <= 4*len(s.index)+64 {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.st.WriteErrors++
		s.tripLocked("journal compact", err)
	}
}

// compactLocked writes the index, LRU-oldest first, as a fresh journal.
// Replay pushes each "p" to the front, so oldest-first reproduces the
// exact LRU order.
func (s *Store) compactLocked() error {
	f, err := s.fs.CreateTemp(s.tmpDir(), "journal.*")
	if err != nil {
		return err
	}
	tmpPath := f.Name()
	var buf bytes.Buffer
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		buf.WriteString("p " + e.key + " " + strconv.FormatInt(e.size, 10) + "\n")
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		if s.journal != nil {
			s.journal.Close()
			s.journal = nil
		}
		err = s.fs.Rename(tmpPath, s.journalPath())
	}
	if err != nil {
		s.fs.Remove(tmpPath)
		return err
	}
	s.journalLines = len(s.index)
	// Reopen lazily on the next append.
	return nil
}

// ---- open-time recovery ----

// initLocked rebuilds the in-memory index from disk: directories
// ensured, crash debris in tmp/ cleared, the journal replayed, every
// on-disk entry's header verified (torn entries quarantined,
// unjournaled survivors adopted, journal ghosts dropped), the journal
// rewritten compact, and the byte budget re-enforced.
func (s *Store) initLocked() error {
	for _, d := range []string{s.dir, s.plansDir(), s.tmpDir(), s.quarantineDir()} {
		if err := s.fs.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	// Crash debris: temp files never renamed into place.
	if ents, err := s.fs.ReadDir(s.tmpDir()); err == nil {
		for _, de := range ents {
			s.fs.Remove(filepath.Join(s.tmpDir(), de.Name()))
		}
	}
	s.ll.Init()
	clear(s.index)
	s.bytes = 0

	// Replay the journal for LRU order and sizes. A torn final line
	// (crash mid-append) parses as garbage and is skipped.
	if f, err := s.fs.Open(s.journalPath()); err == nil {
		b, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		for _, line := range strings.Split(string(b), "\n") {
			fields := strings.Fields(line)
			if len(fields) < 2 || !validKey(fields[1]) {
				continue
			}
			key := fields[1]
			switch fields[0] {
			case "p":
				if len(fields) != 3 {
					continue
				}
				size, perr := strconv.ParseInt(fields[2], 10, 64)
				if perr != nil || size <= 0 {
					continue
				}
				if el, ok := s.index[key]; ok {
					s.bytes += size - el.Value.(*entry).size
					el.Value.(*entry).size = size
					s.ll.MoveToFront(el)
				} else {
					s.index[key] = s.ll.PushFront(&entry{key: key, size: size})
					s.bytes += size
				}
			case "t":
				if el, ok := s.index[key]; ok {
					s.ll.MoveToFront(el)
				}
			case "d":
				if el, ok := s.index[key]; ok {
					s.bytes -= el.Value.(*entry).size
					s.ll.Remove(el)
					delete(s.index, key)
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	// Reconcile the replayed index against the directory. ReadDir
	// returns names sorted, so recovery order is deterministic.
	onDisk := make(map[string]bool)
	ents, err := s.fs.ReadDir(s.plansDir())
	if err != nil {
		return err
	}
	for _, de := range ents {
		name := de.Name()
		key, ok := strings.CutSuffix(name, ".plan")
		if !ok || !validKey(key) {
			continue
		}
		size, verr := s.verifyEntryHeader(key)
		if verr != nil {
			// Torn or foreign: out of the live set, into quarantine.
			s.quarantineLocked(key)
			continue
		}
		onDisk[key] = true
		if el, ok := s.index[key]; ok {
			if e := el.Value.(*entry); e.size != size {
				s.bytes += size - e.size
				e.size = size
			}
		} else {
			// Present but unjournaled: the crash hit between rename and
			// journal append. Adopt it at the cold end of the LRU.
			s.index[key] = s.ll.PushBack(&entry{key: key, size: size})
			s.bytes += size
		}
	}
	// Journal ghosts: logged but no file (a crash between eviction's
	// journal append and the unlink — or the reverse order, same cure).
	var ghosts []*list.Element
	for el := s.ll.Front(); el != nil; el = el.Next() {
		if !onDisk[el.Value.(*entry).key] {
			ghosts = append(ghosts, el)
		}
	}
	for _, el := range ghosts {
		e := el.Value.(*entry)
		s.bytes -= e.size
		s.ll.Remove(el)
		delete(s.index, e.key)
	}

	if err := s.compactLocked(); err != nil {
		return err
	}
	victims := s.evictLocked()
	for _, k := range victims {
		s.fs.Remove(s.planPath(k))
	}
	s.init = true
	return nil
}

// verifyEntryHeader checks an entry's header line and on-disk size
// without hashing the payload (the cheap open-time pass; the full
// checksum runs on every Get). It returns the payload length.
func (s *Store) verifyEntryHeader(key string) (int64, error) {
	f, err := s.fs.Open(s.planPath(key))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, maxHeaderBytes)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return 0, err
	}
	head = head[:n]
	idx := bytes.IndexByte(head, '\n')
	if idx < 0 {
		return 0, fmt.Errorf("%w: %s: no header line", errCorrupt, key)
	}
	var h header
	if err := json.Unmarshal(head[:idx], &h); err != nil {
		return 0, fmt.Errorf("%w: %s: bad header: %v", errCorrupt, key, err)
	}
	if h.Format != entryFormat || h.Version != entryVersion || h.Key != key || h.Len <= 0 {
		return 0, fmt.Errorf("%w: %s: header mismatch", errCorrupt, key)
	}
	fi, err := s.fs.Stat(s.planPath(key))
	if err != nil {
		return 0, err
	}
	if fi.Size() != int64(idx+1)+h.Len {
		return 0, fmt.Errorf("%w: %s: truncated: file is %d bytes, want %d",
			errCorrupt, key, fi.Size(), int64(idx+1)+h.Len)
	}
	return h.Len, nil
}
