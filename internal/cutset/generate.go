package cutset

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

// Engine selects the cut-set construction algorithm.
type Engine int

const (
	// EngineAuto uses straight line cuts first (exact on full arrays,
	// matching Table I's 2n-2) and dual-path cuts for whatever they miss.
	EngineAuto Engine = iota
	// EngineDual builds every cut as a forced-through dual path.
	EngineDual
	// EngineILP solves the paper's complementary ILP over the dual graph,
	// one cut at a time, with constraint (9) rows in the model.
	EngineILP
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineDual:
		return "dual"
	case EngineILP:
		return "ilp"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Generate.
type Options struct {
	Engine Engine
	// ILP tunes branch-and-bound for EngineILP.
	ILP ilp.Options
	// NoRepair disables the constraint-(9) repair pass (for ablation).
	NoRepair bool
}

// Generate produces cut-sets such that every Normal valve is a testable
// member of at least one cut: closing the cut leaves the sinks dark, and
// re-opening just that valve pressurizes a sink again (so a stuck-at-1
// there is observable). Cancelling ctx (nil means context.Background())
// aborts between cuts — and, for EngineILP, between solver nodes — and
// returns ctx.Err().
func Generate(ctx context.Context, a *grid.Array, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	s, err := sim.New(a)
	if err != nil {
		return nil, err
	}
	d, err := buildDual(a)
	if err != nil {
		return nil, err
	}
	uncovered := make(map[grid.ValveID]bool)
	for _, id := range a.NormalValves() {
		uncovered[id] = true
	}
	res := &Result{}
	// One reusable command vector and repair scratch serve every candidate:
	// the accept path runs a few hundred testability probes per cut, and
	// rebuilding a full-array vector per probe was a dominant allocation
	// source on the 30x30 row.
	vec := sim.NewVector(a, sim.CutSet, "check")
	rep := newRepairScratch(a)
	var members []grid.ValveID
	accept := func(c *Cut) bool {
		if !opt.NoRepair {
			rep.repair(a, c)
		}
		cutVectorInto(a, c, vec)
		if s.VerifyCutVector(vec) != nil {
			return false
		}
		members = testableMembersVec(s, c, vec, members[:0])
		newCov := 0
		for _, id := range members {
			if uncovered[id] {
				newCov++
			}
		}
		if newCov == 0 {
			return false
		}
		for _, id := range members {
			delete(uncovered, id)
		}
		res.Cuts = append(res.Cuts, c)
		return true
	}

	if opt.Engine == EngineAuto {
		for _, c := range lineCuts(a) {
			accept(c)
		}
	}
	switch opt.Engine {
	case EngineAuto, EngineDual:
		for len(uncovered) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			target := minValve(uncovered)
			if !d.coverOne(a, s, opt, rep, target, uncovered, accept) {
				res.Uncovered = append(res.Uncovered, target)
				delete(uncovered, target)
			}
		}
	case EngineILP:
		ilpOpt := opt.ILP
		for len(uncovered) > 0 {
			target := minValve(uncovered)
			c, sol, err := d.ilpCut(ctx, target, uncovered, ilpOpt)
			res.ILP.Observe(sol)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Every cut model shares one shape; reuse the root basis.
			if sol.WarmStart != nil {
				ilpOpt.WarmStart = sol.WarmStart
			}
			if err != nil || c == nil || !accept(c) {
				// Fall back to the combinatorial construction before
				// declaring the valve uncoverable.
				if c2 := d.cutThrough(target, uncovered); c2 == nil || !accept(c2) {
					res.Uncovered = append(res.Uncovered, target)
					delete(uncovered, target)
				}
			}
		}
	default:
		return nil, fmt.Errorf("cutset: unknown engine %v", opt.Engine)
	}
	return res, nil
}

// coverOne tries to produce an accepted cut testing the target: jittered
// reroutes first, then corner bans steering the curve away from U-turns
// whose constraint-(9) repair would seal the target in.
func (d *dual) coverOne(a *grid.Array, s *sim.Simulator, opt Options, rep *repairScratch,
	target grid.ValveID, uncovered map[grid.ValveID]bool, accept func(*Cut) bool) bool {
	bans := map[int]bool{}
	tc1, tc2 := valveCorners(a, target)
	for attempt := 0; attempt <= 6; attempt++ {
		jitter := attempt
		var c *Cut
		if len(bans) == 0 {
			c = d.cutThroughJittered(target, uncovered, jitter)
		} else {
			c = d.cutThroughBanned(target, uncovered, jitter, bans)
		}
		if c == nil {
			continue
		}
		if stillTests(a, s, opt, rep, c, target, uncovered) {
			return accept(c)
		}
		// Ban the far corners of whatever valves the repair would add.
		probe := &Cut{Valves: append([]grid.ValveID(nil), c.Valves...),
			Walls: append([]grid.ValveID(nil), c.Walls...)}
		before := make(map[grid.ValveID]bool, len(probe.Valves))
		for _, id := range probe.Valves {
			before[id] = true
		}
		rep.repair(a, probe)
		for _, id := range probe.Valves {
			if before[id] {
				continue
			}
			c1, c2 := valveCorners(a, id)
			for _, n := range []int{c1, c2} {
				if n != tc1 && n != tc2 {
					bans[n] = true
				}
			}
		}
	}
	return false
}

// stillTests reports whether the cut, after the constraint-(9) repair it
// will undergo, still exposes a stuck-at-1 on the target valve. Used to
// decide whether a candidate curve is worth accepting or a reroute is
// needed.
func stillTests(a *grid.Array, s *sim.Simulator, opt Options, rep *repairScratch, c *Cut,
	target grid.ValveID, uncovered map[grid.ValveID]bool) bool {
	if !uncovered[target] {
		return true
	}
	probe := &Cut{
		Valves: append([]grid.ValveID(nil), c.Valves...),
		Walls:  append([]grid.ValveID(nil), c.Walls...),
	}
	if !opt.NoRepair {
		rep.repair(a, probe)
	}
	return Validate(a, s, probe) == nil && Testable(a, s, probe, target)
}

func minValve(set map[grid.ValveID]bool) grid.ValveID {
	var best grid.ValveID = -1
	for id := range set {
		if best == -1 || id < best {
			best = id
		}
	}
	return best
}

// lineCuts enumerates straight column and row cuts. Lines crossing a
// Channel edge cannot separate and are skipped.
func lineCuts(a *grid.Array) []*Cut {
	var out []*Cut
	for c := 1; c < a.NC(); c++ {
		cut := &Cut{}
		ok := true
		for r := 0; r < a.NR(); r++ {
			id := a.HValve(r, c)
			switch a.Kind(id) {
			case grid.Normal:
				cut.Valves = append(cut.Valves, id)
			case grid.Wall:
				cut.Walls = append(cut.Walls, id)
			default:
				ok = false
			}
		}
		if ok && len(cut.Valves) > 0 {
			out = append(out, cut)
		}
	}
	for r := 1; r < a.NR(); r++ {
		cut := &Cut{}
		ok := true
		for c := 0; c < a.NC(); c++ {
			id := a.VValve(r, c)
			switch a.Kind(id) {
			case grid.Normal:
				cut.Valves = append(cut.Valves, id)
			case grid.Wall:
				cut.Walls = append(cut.Walls, id)
			default:
				ok = false
			}
		}
		if ok && len(cut.Valves) > 0 {
			out = append(out, cut)
		}
	}
	return out
}

// repairScratch holds the dense marker arrays of repairConstraint9,
// reusable across the many repair probes of one Generate run.
type repairScratch struct {
	visited []bool // corner index space
	member  []bool // valve ID space
	vlist   []int  // touched corners, for O(touched) reset
	mlist   []grid.ValveID
}

func newRepairScratch(a *grid.Array) *repairScratch {
	return &repairScratch{
		visited: make([]bool, (a.NR()+1)*(a.NC()+1)),
		member:  make([]bool, a.NumValves()),
	}
}

// repair applies the paper's constraint (9): if both lattice corners of a
// Normal valve lie on the cut's separating curve, the valve joins the cut.
// This removes the Fig. 5(c)/(d) two-fault masking pattern, where a single
// stuck-at-1 valve bridging the curve could be shielded by a stuck-at-0
// valve elsewhere.
func (rs *repairScratch) repair(a *grid.Array, c *Cut) {
	mark := func(id grid.ValveID) {
		c1, c2 := valveCorners(a, id)
		if !rs.visited[c1] {
			rs.visited[c1] = true
			rs.vlist = append(rs.vlist, c1)
		}
		if !rs.visited[c2] {
			rs.visited[c2] = true
			rs.vlist = append(rs.vlist, c2)
		}
		if !rs.member[id] {
			rs.member[id] = true
			rs.mlist = append(rs.mlist, id)
		}
	}
	for _, id := range c.Valves {
		mark(id)
	}
	for _, id := range c.Walls {
		mark(id)
	}
	// A single pass suffices: an added valve's corners are already visited.
	for _, id := range a.NormalValves() {
		if rs.member[id] {
			continue
		}
		c1, c2 := valveCorners(a, id)
		if rs.visited[c1] && rs.visited[c2] {
			c.Valves = append(c.Valves, id)
			rs.member[id] = true
			rs.mlist = append(rs.mlist, id)
		}
	}
	sort.Slice(c.Valves, func(i, j int) bool { return c.Valves[i] < c.Valves[j] })
	for _, ci := range rs.vlist {
		rs.visited[ci] = false
	}
	for _, id := range rs.mlist {
		rs.member[id] = false
	}
	rs.vlist = rs.vlist[:0]
	rs.mlist = rs.mlist[:0]
}

// repairConstraint9 is the one-shot form of repairScratch.repair.
func repairConstraint9(a *grid.Array, c *Cut) {
	newRepairScratch(a).repair(a, c)
}

// cutVectorInto writes the cut's command vector (members closed, every
// other Normal valve open) into an existing vector, avoiding the per-probe
// vector allocation of Cut.Vector.
func cutVectorInto(a *grid.Array, c *Cut, vec *sim.Vector) {
	for _, id := range a.NormalValves() {
		vec.SetOpen(id, true)
	}
	for _, id := range c.Valves {
		vec.SetOpen(id, false)
	}
}

// Validate checks that closing the cut separates every source from every
// sink (with all other valves open).
func Validate(a *grid.Array, s *sim.Simulator, c *Cut) error {
	return s.VerifyCutVector(c.Vector(a, "check"))
}

// Testable reports whether a stuck-at-1 fault on member x of the cut is
// observable: re-opening x alone must pressurize a sink.
func Testable(a *grid.Array, s *sim.Simulator, c *Cut, x grid.ValveID) bool {
	vec := c.Vector(a, "check")
	vec.SetOpen(x, true)
	return s.SinkPressured(vec)
}

// testableMembersVec appends the cut's testable valves to out, probing over
// a caller-owned vector that already holds the cut's command state (see
// cutVectorInto); the vector is restored between probes.
func testableMembersVec(s *sim.Simulator, c *Cut, vec *sim.Vector, out []grid.ValveID) []grid.ValveID {
	for _, id := range c.Valves {
		vec.SetOpen(id, true)
		if s.SinkPressured(vec) {
			out = append(out, id)
		}
		vec.SetOpen(id, false)
	}
	return out
}

// testableMembers filters the cut's valves down to those whose stuck-at-1
// fault the cut exposes.
func testableMembers(a *grid.Array, s *sim.Simulator, c *Cut) []grid.ValveID {
	vec := c.Vector(a, "check")
	return testableMembersVec(s, c, vec, nil)
}

// CoverageReport maps every Normal valve to the index of a cut that tests
// it (-1 if none) — used by the guarantee verifier and the benchmarks.
func CoverageReport(a *grid.Array, s *sim.Simulator, cuts []*Cut) map[grid.ValveID]int {
	out := make(map[grid.ValveID]int)
	for _, id := range a.NormalValves() {
		out[id] = -1
	}
	for i, c := range cuts {
		for _, id := range testableMembers(a, s, c) {
			if out[id] == -1 {
				out[id] = i
			}
		}
	}
	return out
}
