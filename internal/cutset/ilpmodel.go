package cutset

import (
	"context"
	"fmt"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// The ILP cut model is the paper's Sec. III-C formulation: cut-set
// generation is "a complementary problem of finding a set of flow paths"
// and is solved by the same path machinery — here literally a simple-path
// ILP over the planar dual graph, from boundary arc A to boundary arc B,
// with the anti-masking constraint (9) as model rows.
//
// Variables per dual edge e (one per closable valve): v[e] (on the cut) and
// a signed flow f[e]; per interior dual node n: y[n] (curve passes the
// corner). Degree-2 chaining mirrors constraint (1); the flow system
// mirrors (3)+(4) and bans disjoint dual loops; the objective maximizes
// newly covered valves (coverage flavour of (2)).

// cutILPModel is the dual-path ILP shared by every target of one Generate
// run: the structure (rows, variables) is built exactly once, and each
// target only rewrites the coverage objective and moves the bound fix, so
// the compiled relaxation, its solver scratch, and the warm-start basis all
// carry over from cut to cut.
type cutILPModel struct {
	m           ilp.Model
	v           []ilp.VarID
	edgeByValve map[grid.ValveID]int
	prevFix     int // dual edge currently fixed to 1; -1 when none
}

// ilpCut builds one cut forced through target, maximizing newly covered
// valves, with constraint (9) enforced inside the model. The target is
// forced via a bound fix rather than an equality row, so the row structure
// is identical for every target and the solver can warm-start each cut from
// the previous one's root basis. The solution is returned alongside the cut
// for status accounting and warm-start threading.
func (d *dual) ilpCut(ctx context.Context, target grid.ValveID, uncovered map[grid.ValveID]bool,
	opts ilp.Options) (*Cut, ilp.Solution, error) {
	cm := d.cutModel()
	g := d.g
	te, ok := cm.edgeByValve[target]
	if !ok {
		return nil, ilp.Solution{}, fmt.Errorf("cutset: target valve %d not in dual", target)
	}
	for e := 0; e < g.M(); e++ {
		vid := grid.ValveID(g.EdgeAt(e).Label)
		obj := 0.0 // walls are free members
		if d.a.Kind(vid) == grid.Normal {
			if uncovered[vid] {
				obj = -100
			} else {
				obj = 1
			}
		}
		cm.m.SetObj(cm.v[e], obj)
	}
	if cm.prevFix >= 0 {
		cm.m.SetVarBounds(cm.v[cm.prevFix], 0, 1)
	}
	cm.m.FixVar(cm.v[te], 1)
	cm.prevFix = te

	sol := cm.m.Solve(ctx, opts)
	if sol.Status == ilp.Canceled {
		return nil, sol, ctx.Err()
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, sol, fmt.Errorf("cutset: dual-path ILP %v", sol.Status)
	}
	var edges []int
	for e := 0; e < g.M(); e++ {
		if sol.X[cm.v[e]] > 0.5 {
			edges = append(edges, e)
		}
	}
	return d.cutFromDualEdges(edges), sol, nil
}

// cutModel lazily builds the shared dual-path model structure.
func (d *dual) cutModel() *cutILPModel {
	if d.cutM != nil {
		return d.cutM
	}
	g := d.g
	cm := &cutILPModel{prevFix: -1}
	m := &cm.m
	bigM := float64(g.N() + 1)

	cm.v = make([]ilp.VarID, g.M())
	f := make([]ilp.VarID, g.M())
	cm.edgeByValve = make(map[grid.ValveID]int, g.M())
	v := cm.v
	for e := 0; e < g.M(); e++ {
		vid := grid.ValveID(g.EdgeAt(e).Label)
		v[e] = m.AddBinary(0, fmt.Sprintf("v_%d", e))
		f[e] = m.AddVar(-bigM, bigM, 0, false, fmt.Sprintf("f_%d", e))
		cm.edgeByValve[vid] = e
		// Capacity: -M*v <= f <= M*v.
		m.AddCons([]ilp.VarID{f[e], v[e]}, []float64{1, -bigM}, lp.LE, 0)
		m.AddCons([]ilp.VarID{f[e], v[e]}, []float64{1, bigM}, lp.GE, 0)
	}
	y := make(map[int]ilp.VarID)
	for n := 0; n < g.N(); n++ {
		if n != d.A && n != d.B && len(g.Adj(n)) > 0 {
			y[n] = m.AddBinary(0, fmt.Sprintf("y_%d", n))
		}
	}
	// Degree and flow conservation. Flow orientation: EdgeAt(e).U -> .V;
	// interior nodes consume one unit, arc A supplies, arc B absorbs the
	// rest freely.
	for n := 0; n < g.N(); n++ {
		adj := g.Adj(n)
		if len(adj) == 0 {
			continue
		}
		var degIdx []ilp.VarID
		var degCoef []float64
		var flowIdx []ilp.VarID
		var flowCoef []float64
		for _, arc := range adj {
			degIdx = append(degIdx, v[arc.Edge])
			degCoef = append(degCoef, 1)
			dir := -1.0 // flow leaves n
			if g.EdgeAt(arc.Edge).V == n {
				dir = 1 // flow enters n
			}
			flowIdx = append(flowIdx, f[arc.Edge])
			flowCoef = append(flowCoef, dir)
		}
		switch n {
		case d.A, d.B:
			// Terminal: exactly one cut edge touches each arc.
			m.AddCons(degIdx, degCoef, lp.EQ, 1)
		default:
			degIdx = append(degIdx, y[n])
			degCoef = append(degCoef, -2)
			m.AddCons(degIdx, degCoef, lp.EQ, 0)
			flowIdx = append(flowIdx, y[n])
			flowCoef = append(flowCoef, -1)
			m.AddCons(flowIdx, flowCoef, lp.EQ, 0)
		}
	}
	// Constraint (9): if both corners of a Normal valve are on the curve,
	// the valve must be in the cut. Only interior corners are modelled; the
	// repair pass handles boundary-adjacent instances after extraction.
	// Rows are emitted in dual-edge order (not map order) so the model — and
	// with it the branch-and-bound trajectory — is identical run to run.
	for e := 0; e < g.M(); e++ {
		vid := grid.ValveID(g.EdgeAt(e).Label)
		if d.a.Kind(vid) != grid.Normal {
			continue
		}
		ed := g.EdgeAt(e)
		y1, ok1 := y[ed.U]
		y2, ok2 := y[ed.V]
		if !ok1 || !ok2 {
			continue
		}
		m.AddCons([]ilp.VarID{y1, y2, v[e]}, []float64{1, 1, -1}, lp.LE, 1)
	}
	d.cutM = cm
	return cm
}
