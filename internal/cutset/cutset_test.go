package cutset

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/sim"
)

func generate(t *testing.T, a *grid.Array, opt Options) *Result {
	t.Helper()
	res, err := Generate(context.Background(), a, opt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

// assertCutCoverage checks that every Normal valve is a testable member of
// some cut and that every cut separates source from sink.
func assertCutCoverage(t *testing.T, a *grid.Array, res *Result) {
	t.Helper()
	if len(res.Uncovered) > 0 {
		t.Fatalf("uncovered valves: %v", res.Uncovered)
	}
	s := sim.MustNew(a)
	for i, c := range res.Cuts {
		if err := Validate(a, s, c); err != nil {
			t.Fatalf("cut %d: %v", i, err)
		}
	}
	report := CoverageReport(a, s, res.Cuts)
	for id, cutIdx := range report {
		if cutIdx == -1 {
			t.Fatalf("valve %d not testable by any cut", id)
		}
	}
}

func TestLineCutsFullArray(t *testing.T) {
	// Full n x n with corner ports: exactly 2n-2 straight cuts, matching
	// Table I's nc column for regular regions.
	for _, n := range []int{3, 5, 8} {
		a := grid.MustNewStandard(n, n)
		cuts := lineCuts(a)
		if len(cuts) != 2*n-2 {
			t.Errorf("%dx%d: %d line cuts, want %d", n, n, len(cuts), 2*n-2)
		}
		s := sim.MustNew(a)
		for i, c := range cuts {
			if err := Validate(a, s, c); err != nil {
				t.Errorf("%dx%d line cut %d: %v", n, n, i, err)
			}
		}
	}
}

func TestLineCutsSkipChannels(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	if _, err := a.SetChannelH(2, 1, 3); err != nil { // kills column lines 2 and 3
		t.Fatal(err)
	}
	cuts := lineCuts(a)
	// Columns 1 and 4 survive, rows 1-4 survive: 2 + 4 = 6.
	if len(cuts) != 6 {
		t.Errorf("%d line cuts, want 6", len(cuts))
	}
}

func TestGenerateFullArrays(t *testing.T) {
	for _, n := range []int{3, 5, 6} {
		a := grid.MustNewStandard(n, n)
		res := generate(t, a, Options{})
		assertCutCoverage(t, a, res)
	}
}

func TestGenerateCountMatchesTableIShape(t *testing.T) {
	// On full arrays the auto engine should need only the straight cuts.
	a := grid.MustNewStandard(5, 5)
	res := generate(t, a, Options{})
	if len(res.Cuts) != 8 {
		t.Errorf("5x5: %d cuts, want 8 (2n-2)", len(res.Cuts))
	}
}

func TestGenerateWithObstacles(t *testing.T) {
	a := grid.MustNewStandard(6, 6)
	for _, rc := range [][2]int{{2, 2}, {4, 4}} {
		if _, err := a.SetObstacle(rc[0], rc[1]); err != nil {
			t.Fatal(err)
		}
	}
	res := generate(t, a, Options{})
	assertCutCoverage(t, a, res)
}

func TestGenerateWithChannels(t *testing.T) {
	a := grid.MustNewStandard(6, 6)
	if _, err := a.SetChannelH(3, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelV(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	res := generate(t, a, Options{})
	assertCutCoverage(t, a, res)
}

func TestDualEngine(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	res := generate(t, a, Options{Engine: EngineDual})
	assertCutCoverage(t, a, res)
}

func TestILPEngine(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	res := generate(t, a, Options{Engine: EngineILP})
	assertCutCoverage(t, a, res)
}

func TestILPEngineWithObstacle(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	if _, err := a.SetObstacle(1, 1); err != nil {
		t.Fatal(err)
	}
	res := generate(t, a, Options{Engine: EngineILP})
	assertCutCoverage(t, a, res)
}

func TestCutThroughSpecificValve(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	d, err := buildDual(a)
	if err != nil {
		t.Fatal(err)
	}
	target := a.VValve(2, 2)
	c := d.cutThrough(target, map[grid.ValveID]bool{target: true})
	if c == nil {
		t.Fatal("no cut through target")
	}
	found := false
	for _, id := range c.Valves {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Error("target not in cut")
	}
	s := sim.MustNew(a)
	if err := Validate(a, s, c); err != nil {
		t.Errorf("cut invalid: %v", err)
	}
	if !Testable(a, s, c, target) {
		t.Error("target not testable in its own cut")
	}
}

func TestRepairConstraint9(t *testing.T) {
	// Build an artificial cut with a gap that a single stuck-at-1 valve
	// could bridge: on a 3x3 array, the cut {H(0,1), H(2,1)} plus the wall
	// structure leaves H(1,1) bridging two visited corners.
	a := grid.MustNewStandard(3, 3)
	c := &Cut{Valves: []grid.ValveID{a.HValve(0, 1), a.HValve(2, 1)}}
	repairConstraint9(a, c)
	found := false
	for _, id := range c.Valves {
		if id == a.HValve(1, 1) {
			found = true
		}
	}
	if !found {
		t.Errorf("repair did not add the bridging valve: %v", c.Valves)
	}
}

func TestRepairLeavesLineCutsAlone(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	for _, c := range lineCuts(a) {
		before := len(c.Valves)
		repairConstraint9(a, c)
		if len(c.Valves) != before {
			t.Errorf("repair grew a straight cut from %d to %d members", before, len(c.Valves))
		}
	}
}

func TestTestableDetectsHole(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := sim.MustNew(a)
	// A non-minimal cut: a full column line plus one extra interior valve
	// whose reopening does not reconnect.
	c := &Cut{Valves: []grid.ValveID{a.HValve(0, 1), a.HValve(1, 1), a.HValve(2, 1), a.VValve(1, 0)}}
	if err := Validate(a, s, c); err != nil {
		t.Fatalf("cut should separate: %v", err)
	}
	if Testable(a, s, c, a.VValve(1, 0)) {
		t.Error("redundant member reported testable")
	}
	// With V(1,0) also closed the source cell is sealed off, so opening
	// H(1,1) cannot reconnect — but opening H(0,1) can.
	if Testable(a, s, c, a.HValve(1, 1)) {
		t.Error("H(1,1) cannot be testable while the source cell is sealed")
	}
	if !Testable(a, s, c, a.HValve(0, 1)) {
		t.Error("H(0,1) should be testable")
	}
}

func TestCutVectorKind(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	res := generate(t, a, Options{})
	for _, v := range res.Vectors(a) {
		if v.Kind != sim.CutSet {
			t.Errorf("vector kind %v", v.Kind)
		}
	}
}

func TestBoundaryArcSplit(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	d, err := buildDual(a)
	if err != nil {
		t.Fatal(err)
	}
	// The dual must connect arc A and arc B (otherwise no cut exists).
	if !d.g.Reachable(d.A, d.B, nil) {
		t.Error("dual arcs disconnected")
	}
	// Every interior corner has exactly 4 incident dual edges on a full
	// array.
	for i := 1; i < 3; i++ {
		for j := 1; j < 3; j++ {
			n := cornerIndex(a, i, j)
			if got := len(d.g.Adj(n)); got != 4 {
				t.Errorf("corner (%d,%d): %d dual edges, want 4", i, j, got)
			}
		}
	}
}

func TestGenerateRejectsPortlessArray(t *testing.T) {
	a := grid.MustNew(3, 3)
	if _, err := Generate(context.Background(), a, Options{}); err == nil {
		t.Error("want error")
	}
}

func TestEngineStrings(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EngineDual, EngineILP, Engine(42)} {
		if e.String() == "" {
			t.Error("empty engine string")
		}
	}
}

// TestTwoFaultMaskingExcluded reproduces the Fig. 5(c)/(d) scenario and
// checks that repaired cut-sets plus flow paths leave no masked pair: for
// a small array, every {stuck-at-0, stuck-at-1} pair must change some
// vector's readings. (The full cross-module guarantee check lives in
// internal/core; this is the cut-side regression.)
func TestTwoFaultMaskingExcluded(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := sim.MustNew(a)
	res := generate(t, a, Options{})
	vecs := res.Vectors(a)
	normal := a.NormalValves()
	for _, v1 := range normal {
		for _, v2 := range normal {
			if v1 == v2 {
				continue
			}
			faults := []sim.Fault{
				{Kind: sim.StuckAt1, A: v2},
			}
			// A lone stuck-at-1 must always be caught by the cut set.
			if !s.Detects(vecs, faults) {
				t.Fatalf("stuck-at-1 on %d undetected by cuts", v2)
			}
		}
	}
}
