// Package cutset generates the cut-set test vectors of the paper
// (Sec. III-C): sets of valves that completely separate the pressure source
// from the pressure meters. Closing a cut-set and opening every other valve
// must leave all meters dark; if a meter still sees pressure, some valve in
// the cut is stuck-at-1.
//
// Geometry. In a planar valve array, a minimal source/sink-separating valve
// set is exactly a simple path in the planar dual between the two arcs into
// which the source and sink ports split the chip boundary — this is the
// formal version of the paper's observation that "an end of a cut-set must
// touch an edge of the chip" and of the two-direction boundary search of
// Fig. 7(d). The package builds that dual graph explicitly:
//
//   - dual nodes are the interior lattice corners, plus two terminal nodes
//     for the boundary arcs;
//   - every valve is a dual edge between the corners on its two sides;
//     Walls cost nothing (obstacle perimeters are free cut members, which
//     is how cuts thread through obstacle areas), Channel edges cannot be
//     closed and are excluded.
//
// Generators:
//
//   - line cuts: straight row/column cuts, optimal for (near-)full arrays —
//     an n x n array with corner ports needs exactly 2n-2 of them, which is
//     the nc column of Table I;
//   - dual-path cuts: Dijkstra in the dual, forced through a target valve,
//     biased toward still-uncovered valves — used to patch around channels
//     and obstacles;
//   - an ILP over the dual graph, the paper's "complementary problem of
//     finding a set of flow paths" (Sec. III-C), for small arrays.
//
// Constraint (9) — the two-fault anti-masking rule — is applied as a repair
// pass: whenever both side-faces of a valve lie on a cut's dual path but the
// valve itself is absent, the valve is added to the cut.
package cutset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

// Cut is one cut-set: the Normal valves commanded closed, plus the Wall
// edges the separating curve threads through (free members, already closed
// by construction).
type Cut struct {
	Valves []grid.ValveID
	Walls  []grid.ValveID
}

// Vector converts the cut to a test vector: cut members closed, every other
// Normal valve open.
func (c *Cut) Vector(a *grid.Array, name string) *sim.Vector {
	v := sim.NewVector(a, sim.CutSet, name)
	member := make(map[grid.ValveID]bool, len(c.Valves))
	for _, id := range c.Valves {
		member[id] = true
	}
	for _, id := range a.NormalValves() {
		v.SetOpen(id, !member[id])
	}
	return v
}

// Result is the outcome of cut-set generation.
type Result struct {
	Cuts []*Cut
	// Uncovered lists Normal valves no valid cut could test.
	Uncovered []grid.ValveID
	// ILP summarizes the solver work behind EngineILP (zero otherwise). A
	// non-zero NonOptimal count means some cuts came from early-stopped
	// solves and are feasible but not proven optimal — callers should
	// surface a warning.
	ILP ilp.Stats
}

// Vectors converts all cuts to test vectors named cut0, cut1, ...
func (r *Result) Vectors(a *grid.Array) []*sim.Vector {
	out := make([]*sim.Vector, len(r.Cuts))
	for i, c := range r.Cuts {
		out[i] = c.Vector(a, fmt.Sprintf("cut%d", i))
	}
	return out
}

// dual is the planar dual of the array with the outer face split at the
// source and sink ports.
type dual struct {
	a    *grid.Array
	g    *graph.Graph
	A, B int // terminal nodes (the two boundary arcs)

	cutM *cutILPModel // lazily built shared ILP model (EngineILP)
	sc   *graph.DijkstraScratch
}

// cornerIndex maps lattice corner (i, j), 0<=i<=nr, 0<=j<=nc.
func cornerIndex(a *grid.Array, i, j int) int { return i*(a.NC()+1) + j }

// buildDual constructs the dual graph. It uses the first source and first
// sink port to split the boundary; cuts are validated against all ports
// afterwards.
func buildDual(a *grid.Array) (*dual, error) {
	srcs, sinks := a.Sources(), a.Sinks()
	if len(srcs) == 0 || len(sinks) == 0 {
		return nil, fmt.Errorf("cutset: array needs a source and a sink")
	}
	nr, nc := a.NR(), a.NC()
	// Clockwise corner cycle starting at (0,0).
	type corner struct{ i, j int }
	var cycle []corner
	for j := 0; j <= nc; j++ {
		cycle = append(cycle, corner{0, j})
	}
	for i := 1; i <= nr; i++ {
		cycle = append(cycle, corner{i, nc})
	}
	for j := nc - 1; j >= 0; j-- {
		cycle = append(cycle, corner{nr, j})
	}
	for i := nr - 1; i >= 1; i-- {
		cycle = append(cycle, corner{i, 0})
	}
	// Boundary edges sit between consecutive cycle corners; find the gap
	// index of a port edge (the gap after position k joins cycle[k] and
	// cycle[k+1]).
	gapOf := func(e grid.ValveID) (int, error) {
		c1, c2 := valveCorners(a, e)
		for k := range cycle {
			n1 := cornerIndex(a, cycle[k].i, cycle[k].j)
			n2 := cornerIndex(a, cycle[(k+1)%len(cycle)].i, cycle[(k+1)%len(cycle)].j)
			if (n1 == c1 && n2 == c2) || (n1 == c2 && n2 == c1) {
				return k, nil
			}
		}
		return 0, fmt.Errorf("cutset: port edge %d not on boundary cycle", e)
	}
	gs, err := gapOf(srcs[0].Valve)
	if err != nil {
		return nil, err
	}
	gt, err := gapOf(sinks[0].Valve)
	if err != nil {
		return nil, err
	}
	if gs == gt {
		return nil, fmt.Errorf("cutset: source and sink share a boundary gap")
	}
	// Gap k lies between cycle positions k and k+1. Walking forward from
	// gap gs to gap gt visits the corners of arc A; the remaining boundary
	// corners form arc B.
	arcA := make(map[int]bool)
	for p := (gs + 1) % len(cycle); ; p = (p + 1) % len(cycle) {
		arcA[cornerIndex(a, cycle[p].i, cycle[p].j)] = true
		if p == gt {
			break
		}
	}
	nCorners := (nr + 1) * (nc + 1)
	g := graph.New(nCorners + 2)
	A, B := nCorners, nCorners+1
	mapped := func(ci int) int {
		i, j := ci/(nc+1), ci%(nc+1)
		if i == 0 || i == nr || j == 0 || j == nc {
			if arcA[ci] {
				return A
			}
			return B
		}
		return ci
	}
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		switch a.Kind(vid) {
		case grid.Channel, grid.PortOpen:
			continue // cannot be closed / splits the outer face
		}
		c1, c2 := valveCorners(a, vid)
		u, w := mapped(c1), mapped(c2)
		if u == w {
			continue // boundary wall along a single arc
		}
		g.AddEdge(u, w, id)
	}
	return &dual{a: a, g: g, A: A, B: B}, nil
}

// valveCorners returns the corner indices on the two sides of a valve.
func valveCorners(a *grid.Array, e grid.ValveID) (int, int) {
	v := a.Valve(e)
	if v.Orient == grid.Horizontal {
		return cornerIndex(a, v.R, v.C), cornerIndex(a, v.R+1, v.C)
	}
	return cornerIndex(a, v.R, v.C), cornerIndex(a, v.R, v.C+1)
}

// cutFromDualEdges assembles a Cut from dual edge indices.
func (d *dual) cutFromDualEdges(edges []int) *Cut {
	cut := &Cut{}
	for _, eid := range edges {
		vid := grid.ValveID(d.g.EdgeAt(eid).Label)
		if d.a.Kind(vid) == grid.Normal {
			cut.Valves = append(cut.Valves, vid)
		} else {
			cut.Walls = append(cut.Walls, vid)
		}
	}
	sort.Slice(cut.Valves, func(i, j int) bool { return cut.Valves[i] < cut.Valves[j] })
	sort.Slice(cut.Walls, func(i, j int) bool { return cut.Walls[i] < cut.Walls[j] })
	return cut
}

// dualWeight returns the Dijkstra weight of dual edge e given the coverage
// state: free for walls, cheap for uncovered valves, 1 for covered ones.
// jitter > 0 perturbs the weights deterministically, yielding alternative
// curves when the cheapest one is rejected.
func (d *dual) dualWeight(uncovered map[grid.ValveID]bool, jitter int) func(e int) float64 {
	return func(e int) float64 {
		vid := grid.ValveID(d.g.EdgeAt(e).Label)
		var base float64
		switch d.a.Kind(vid) {
		case grid.Wall:
			base = 0.001
		case grid.Normal:
			base = 1
			if uncovered[vid] {
				base = 0.02 // nearly free: batch many untested valves per cut
			}
		default:
			return math.Inf(1)
		}
		if jitter > 0 {
			base *= 1 + 0.8*float64((e*2654435761+jitter*40503)%97)/97
		}
		return base
	}
}

// cutThrough builds a minimal cut forced through the target valve: two
// node-disjoint dual segments A->side1 and side2->B around the target's
// dual edge. Returns nil if no such cut exists (e.g. the valve is inside a
// channel region that cannot be separated).
func (d *dual) cutThrough(target grid.ValveID, uncovered map[grid.ValveID]bool) *Cut {
	return d.cutThroughJittered(target, uncovered, 0)
}

// cutThroughJittered is cutThrough under a deterministic weight
// perturbation; the generator retries with increasing jitter when the
// cheapest curve is rejected (e.g. the constraint-(9) repair sealed the
// target in).
func (d *dual) cutThroughJittered(target grid.ValveID, uncovered map[grid.ValveID]bool, jitter int) *Cut {
	return d.cutThroughBanned(target, uncovered, jitter, nil)
}

// cutThroughBanned additionally forbids the curve from visiting the given
// dual corners. The generator uses it to steer away from U-turn curves
// whose constraint-(9) repair would seal the target valve in.
func (d *dual) cutThroughBanned(target grid.ValveID, uncovered map[grid.ValveID]bool,
	jitter int, bannedCorners map[int]bool) *Cut {
	var targetEdge = -1
	for i, e := range d.g.Edges() {
		if grid.ValveID(e.Label) == target {
			targetEdge = i
			break
		}
	}
	if targetEdge == -1 {
		return nil
	}
	te := d.g.EdgeAt(targetEdge)
	w := d.dualWeight(uncovered, jitter)
	for _, ends := range [][2]int{{te.U, te.V}, {te.V, te.U}} {
		first, second := ends[0], ends[1]
		// The A-side segment must not thread through terminal B, or the
		// "curve" degenerates into a complete cut plus a dangling loop.
		avoid1 := map[int]bool{}
		for n := range bannedCorners {
			avoid1[n] = true
		}
		if first != d.B {
			avoid1[d.B] = true
		}
		seg1 := d.segment(d.A, first, second, avoid1, w)
		if seg1 == nil {
			continue
		}
		// seg2 must stay clear of every corner the curve already visits,
		// or the curve self-intersects and stops being a minimal cut.
		avoid := nodesOf(d.g, d.A, seg1)
		if avoid[second] {
			continue
		}
		for n := range bannedCorners {
			avoid[n] = true
		}
		seg2 := d.segment(second, d.B, -1, avoid, w)
		if seg2 == nil {
			continue
		}
		edges := append(append(append([]int{}, seg1...), targetEdge), seg2...)
		return d.cutFromDualEdges(edges)
	}
	return nil
}

// segment runs Dijkstra src->dst avoiding the banned node and the avoid
// set; it returns dual edge indices. The Dijkstra scratch is owned by the
// dual and shared across the whole generation run.
func (d *dual) segment(src, dst, banned int, avoid map[int]bool, weight func(int) float64) []int {
	if src == dst {
		return []int{}
	}
	wf := func(e int) float64 {
		ed := d.g.EdgeAt(e)
		for _, n := range []int{ed.U, ed.V} {
			if n == banned && n != dst && n != src {
				return math.Inf(1)
			}
			if avoid != nil && avoid[n] && n != src {
				return math.Inf(1)
			}
		}
		return weight(e)
	}
	if d.sc == nil {
		d.sc = d.g.NewDijkstraScratch()
	}
	return d.g.DijkstraPathEdgesInto(d.sc, src, dst, wf, nil)
}

// nodesOf collects the nodes a dual edge sequence visits, starting at src.
func nodesOf(g *graph.Graph, src int, edges []int) map[int]bool {
	nodes := map[int]bool{src: true}
	cur := src
	for _, eid := range edges {
		e := g.EdgeAt(eid)
		if e.U == cur {
			cur = e.V
		} else {
			cur = e.U
		}
		nodes[cur] = true
	}
	return nodes
}

// ThroughBuilder returns a generator of single-valve cuts sharing one dual
// graph: each call yields a minimal cut containing the given valve (nil if
// none exists). The Sec. IV baseline uses it to build its one-valve-at-a-
// time stuck-at-1 tests.
func ThroughBuilder(a *grid.Array) (func(grid.ValveID) *Cut, error) {
	d, err := buildDual(a)
	if err != nil {
		return nil, err
	}
	return func(target grid.ValveID) *Cut {
		return d.cutThrough(target, map[grid.ValveID]bool{target: true})
	}, nil
}
