package workerpool

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"
)

// Handler executes one job inside a worker process: req is the opaque
// request payload, emit publishes a progress event frame back to the
// supervisor (safe to call from any goroutine until the handler returns),
// and the returned bytes are the job's response payload. ctx is canceled
// when the supervisor sends a cancel frame for this job or the serve loop
// shuts down.
type Handler func(ctx context.Context, req []byte, emit func(event []byte)) ([]byte, error)

// Serve runs the worker side of the protocol over (r, w) — a worker
// binary calls it on (os.Stdin, os.Stdout) and exits with its error. The
// loop answers pings while a job is in flight, so supervision keeps
// working during long solves, and a clean EOF on r (the supervisor
// draining) returns nil once the in-flight job, if any, has finished.
//
// Serve owns w entirely; anything else the process writes there corrupts
// the stream (diagnostics belong on stderr).
func Serve(ctx context.Context, r io.Reader, w io.Writer, h Handler) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	var wmu sync.Mutex
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := send(frameHello, helloPayload); err != nil {
		return err
	}

	br := bufio.NewReaderSize(r, 64<<10)
	var buf []byte

	// One job in flight at a time; the job runs in its own goroutine so
	// this loop keeps answering pings and can deliver a cancel.
	var jobWG sync.WaitGroup
	var jobMu sync.Mutex
	var jobCancel context.CancelFunc // non-nil while a job runs
	cancelJob := func() {
		jobMu.Lock()
		if jobCancel != nil {
			jobCancel()
		}
		jobMu.Unlock()
	}
	defer jobWG.Wait()
	defer cancelJob()

	for {
		typ, payload, nbuf, err := readFrame(br, buf, DefaultMaxFrameBytes)
		buf = nbuf
		if err == io.EOF {
			return nil // supervisor closed our stdin: drain and exit clean
		}
		if err != nil {
			return fmt.Errorf("workerpool: serve: read frame: %w", err)
		}
		switch typ {
		case framePing:
			if err := send(framePong, payload); err != nil {
				return err
			}
		case frameCancel:
			cancelJob()
		case frameJob:
			jobMu.Lock()
			busy := jobCancel != nil
			if !busy {
				var jctx context.Context
				jctx, jobCancel = context.WithCancel(ctx)
				// payload aliases the read buffer; the job outlives this
				// iteration, so it gets its own copy.
				req := append([]byte(nil), payload...)
				jobWG.Add(1)
				go func(jctx context.Context, cancel context.CancelFunc, req []byte) {
					defer jobWG.Done()
					resp, err := h(jctx, req, func(ev []byte) { send(frameEvent, ev) })
					cancel()
					jobMu.Lock()
					jobCancel = nil
					jobMu.Unlock()
					if err != nil {
						send(frameError, []byte(err.Error()))
						return
					}
					send(frameResult, resp)
				}(jctx, jobCancel, req)
			}
			jobMu.Unlock()
			if busy {
				// The supervisor never double-dispatches; a second job frame
				// means the stream is corrupt. Die loudly so the pool
				// restarts this worker into a clean state.
				return fmt.Errorf("workerpool: serve: job frame while a job is in flight")
			}
		default:
			return fmt.Errorf("workerpool: serve: unexpected frame type %d", typ)
		}
	}
}
