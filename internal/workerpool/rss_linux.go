//go:build linux

package workerpool

import (
	"bytes"
	"os"
)

// rssSupported reports whether resident-set polling works on this
// platform.
func rssSupported() bool { return true }

// procRSS returns the process's resident set size in bytes, or 0 when it
// cannot be read (the process is usually already gone).
func procRSS(pid int) int64 {
	// /proc/<pid>/statm: size resident shared ... , in pages.
	buf, err := os.ReadFile("/proc/" + itoa(pid) + "/statm")
	if err != nil {
		return 0
	}
	fields := bytes.Fields(buf)
	if len(fields) < 2 {
		return 0
	}
	var pages int64
	for _, c := range fields[1] {
		if c < '0' || c > '9' {
			return 0
		}
		pages = pages*10 + int64(c-'0')
	}
	return pages * int64(os.Getpagesize())
}

// itoa is a minimal positive-int formatter (strconv is fine too; this
// keeps the poll path allocation-light).
func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
