package workerpool

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	var rb []byte
	for i, want := range payloads {
		typ, payload, nrb, err := readFrame(&buf, rb, 0)
		rb = nrb
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d", i, typ)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %q, want %q", i, payload, want)
		}
	}
	if _, _, _, err := readFrame(&buf, rb, 0); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 1, bytes.Repeat([]byte("a"), 512))
	writeFrame(&buf, 2, []byte("small"))
	_, _, rb, err := readFrame(&buf, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	capBefore := cap(rb)
	_, payload, rb2, err := readFrame(&buf, rb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap(rb2) != capBefore {
		t.Fatalf("buffer reallocated for a smaller frame: %d -> %d", capBefore, cap(rb2))
	}
	if string(payload) != "small" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 7, []byte("full payload"))
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, _, err := readFrame(bytes.NewReader(full[:cut]), nil, 0)
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if err == io.EOF && cut >= 1 && cut != 0 {
			// io.EOF is only legal at a frame boundary (cut 0).
			t.Fatalf("cut at %d: io.EOF mid-frame", cut)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, 1, bytes.Repeat([]byte("a"), 100))
	_, _, _, err := readFrame(&buf, nil, 10)
	if !errors.Is(err, errFrameTooBig) {
		t.Fatalf("err = %v, want errFrameTooBig", err)
	}
}

func TestGarbageHeaderRejected(t *testing.T) {
	// ASCII garbage decodes as an absurd length and trips the limit.
	r := strings.NewReader("this is not a frame at all")
	_, _, _, err := readFrame(r, nil, DefaultMaxFrameBytes)
	if err == nil {
		t.Fatal("garbage parsed as a frame")
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte("v"), 4096)
	var buf bytes.Buffer
	var rb []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, frameJob, payload); err != nil {
			b.Fatal(err)
		}
		_, _, nrb, err := readFrame(&buf, rb, 0)
		rb = nrb
		if err != nil {
			b.Fatal(err)
		}
	}
}
