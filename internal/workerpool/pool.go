package workerpool

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// Config tunes a Pool. Only Command is required.
type Config struct {
	// Command is the worker argv: Command[0] is the binary (resolved via
	// PATH when not absolute), the rest its arguments.
	Command []string
	// Workers is the number of subprocess slots (default 1). Each slot
	// runs at most one job at a time; processes spawn on demand and are
	// kept alive across jobs.
	Workers int
	// JobTimeout bounds one job's wall clock (0 = none); the ctx given to
	// Do can only tighten it. An expired job is first sent a cancel frame
	// and the worker is SIGKILLed only if it does not answer within
	// CancelGrace.
	JobTimeout time.Duration
	// CancelGrace is how long a canceled or expired job may keep its
	// worker before the supervisor kills it (default 2s).
	CancelGrace time.Duration
	// PingInterval spaces liveness pings (default 500ms); a worker that
	// misses PingMisses consecutive pongs (default 4) is killed.
	PingInterval time.Duration
	PingMisses   int
	// RSSLimitBytes kills a worker whose resident set exceeds the limit
	// (0 = disabled; enforced only where /proc is available). This is the
	// hard backstop above the worker's own soft runtime/debug memory
	// limit.
	RSSLimitBytes int64
	// RSSPoll spaces resident-set checks (default 250ms).
	RSSPoll time.Duration
	// SpawnTimeout bounds the handshake: a fresh process must deliver its
	// hello frame within it (default 10s).
	SpawnTimeout time.Duration
	// BackoffMin/BackoffMax shape the restart backoff after a crash or
	// kill (defaults 100ms and 3s, doubling per consecutive failure).
	BackoffMin, BackoffMax time.Duration
	// MaxFrameBytes bounds one response frame (default
	// DefaultMaxFrameBytes); an oversized announcement is a protocol
	// violation and kills the worker.
	MaxFrameBytes int64
	// Stderr receives the workers' stderr (default: discarded).
	Stderr io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.CancelGrace <= 0 {
		c.CancelGrace = 2 * time.Second
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 500 * time.Millisecond
	}
	if c.PingMisses <= 0 {
		c.PingMisses = 4
	}
	if c.RSSPoll <= 0 {
		c.RSSPoll = 250 * time.Millisecond
	}
	if c.SpawnTimeout <= 0 {
		c.SpawnTimeout = 10 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return c
}

// Stats is a point-in-time snapshot of a pool's supervision counters.
type Stats struct {
	// Workers is the configured slot count; Alive and Busy count live
	// processes and slots currently running a job.
	Workers, Alive, Busy int
	// Spawns counts every successful process start; Restarts counts
	// worker deaths (crashes and kills) the pool recovered from; Kills
	// counts the supervisor-initiated subset (deadline escalation,
	// missed pings, RSS limit, protocol violations).
	Spawns, Restarts, Kills int
	// JobsDone / JobsFailed count completed dispatches.
	JobsDone, JobsFailed int
}

// Sentinel errors a Do call can wrap.
var (
	// ErrPoolClosed is returned by Do after Close.
	ErrPoolClosed = errors.New("workerpool: pool closed")
	// ErrWorkerCrashed marks a job that died with its worker process; the
	// pool restarts the worker, and only this one job is affected.
	ErrWorkerCrashed = errors.New("workerpool: worker crashed")
	// ErrWorkerKilled marks a job whose worker the supervisor had to kill
	// (unanswered cancel, missed pings, RSS over limit, protocol
	// violation).
	ErrWorkerKilled = errors.New("workerpool: worker killed")
)

// Pool supervises a fixed set of worker-subprocess slots and dispatches
// jobs to them. It is safe for concurrent use; Do blocks until a slot is
// free.
type Pool struct {
	cfg   Config
	queue chan *poolJob
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  Stats
	pids   map[int]int // slot id -> live pid
}

type poolJob struct {
	ctx     context.Context
	req     []byte
	onEvent func([]byte)
	resp    chan jobResult // buffered: the slot never blocks delivering
}

type jobResult struct {
	payload []byte
	err     error
}

// New builds a pool and starts its supervisor slots. Worker processes
// spawn lazily on first dispatch, so a misconfigured Command surfaces as
// a Do error, not a constructor failure.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:   cfg,
		queue: make(chan *poolJob),
		stop:  make(chan struct{}),
		pids:  make(map[int]int),
	}
	p.stats.Workers = cfg.Workers
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.slot(i)
	}
	return p
}

// Stats returns a snapshot of the supervision counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Alive = len(p.pids)
	return st
}

// Pids returns the live worker process IDs (fault-injection tests kill
// them; operators correlate them with system metrics).
func (p *Pool) Pids() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.pids))
	for i := 0; i < p.cfg.Workers; i++ {
		if pid, ok := p.pids[i]; ok {
			out = append(out, pid)
		}
	}
	return out
}

// Do dispatches one job and blocks until its response, the ctx ends, or
// the pool closes. A worker crash or kill fails exactly this job; later
// dispatches see a restarted worker.
func (p *Pool) Do(ctx context.Context, req []byte, onEvent func(event []byte)) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrPoolClosed
	}
	j := &poolJob{ctx: ctx, req: req, onEvent: onEvent, resp: make(chan jobResult, 1)}
	select {
	case p.queue <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.stop:
		return nil, ErrPoolClosed
	}
	select {
	case r := <-j.resp:
		return r.payload, r.err
	case <-ctx.Done():
		// The slot notices j.ctx and escalates cancel -> kill on its own;
		// the caller gets its context error immediately.
		return nil, ctx.Err()
	}
}

// Close drains the pool: no new dispatches are accepted, in-flight jobs
// run to completion, and every worker is shut down (stdin close first,
// SIGKILL after CancelGrace). It is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	return nil
}

// slot is one supervisor goroutine: it owns at most one worker process at
// a time, spawning on demand with backoff, running jobs, and answering
// for the worker's health between them.
func (p *Pool) slot(id int) {
	defer p.wg.Done()
	var w *proc
	backoff := p.cfg.BackoffMin
	idlePing := time.NewTicker(p.cfg.PingInterval)
	defer idlePing.Stop()
	idleMisses := 0
	defer func() {
		if w != nil {
			p.shutdownProc(id, w)
		}
	}()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.queue:
			if err := j.ctx.Err(); err != nil {
				j.resp <- jobResult{err: err}
				continue
			}
			if w == nil {
				var err error
				w, err = p.spawn(id, &backoff)
				if err != nil {
					// The spawn failure fails this one job; the next
					// dispatch retries (after the grown backoff).
					p.finishJob(j, nil, err)
					continue
				}
			}
			payload, err, dead := p.runJob(id, w, j)
			p.finishJob(j, payload, err)
			if dead {
				// Crash or kill mid-job: the next spawn on this slot backs
				// off, so a worker that dies instantly on every job cannot
				// turn the pool into a fork bomb.
				p.noteDeath(id)
				w = nil
				backoff = min(backoff*2, p.cfg.BackoffMax)
			} else {
				backoff = p.cfg.BackoffMin
			}
			idleMisses = 0
		case <-idlePing.C:
			if w == nil {
				continue
			}
			alive := true
			// Consume anything the idle worker sent (pongs; a closed
			// channel means the process died under us).
		drain:
			for {
				select {
				case m, ok := <-w.msgs:
					if !ok {
						alive = false
						break drain
					}
					if m.typ == framePong {
						idleMisses = 0
					}
				default:
					break drain
				}
			}
			if !alive {
				p.noteDeath(id)
				w = nil
				idleMisses = 0
				continue
			}
			idleMisses++
			if idleMisses > p.cfg.PingMisses {
				p.killProc(id, w, "missed pings while idle")
				p.noteDeath(id)
				w = nil
				idleMisses = 0
				continue
			}
			if err := w.send(framePing, nil); err != nil {
				p.killProc(id, w, "ping write failed")
				p.noteDeath(id)
				w = nil
				idleMisses = 0
			}
		}
	}
}

// finishJob delivers one job's outcome (the response channel is
// buffered, so the slot never blocks) and accounts it.
//
//fpva:allocfree
func (p *Pool) finishJob(j *poolJob, payload []byte, err error) {
	j.resp <- jobResult{payload: payload, err: err}
	p.mu.Lock()
	if err != nil {
		p.stats.JobsFailed++
	} else {
		p.stats.JobsDone++
	}
	p.mu.Unlock()
}

// noteDeath records a worker death the pool will recover from.
func (p *Pool) noteDeath(id int) {
	p.mu.Lock()
	p.stats.Restarts++
	delete(p.pids, id)
	p.mu.Unlock()
}

// runJob drives one dispatched job on a live worker. It returns the
// response payload or error, plus whether the worker died (or had to be
// killed) doing it.
func (p *Pool) runJob(id int, w *proc, j *poolJob) (payload []byte, err error, dead bool) {
	p.mu.Lock()
	p.stats.Busy++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.stats.Busy--
		p.mu.Unlock()
	}()

	if err := w.send(frameJob, j.req); err != nil {
		p.killProc(id, w, "job write failed")
		return nil, fmt.Errorf("%w: %v", ErrWorkerCrashed, err), true
	}

	jctx := j.ctx
	var cancelTimeout context.CancelFunc
	if p.cfg.JobTimeout > 0 {
		jctx, cancelTimeout = context.WithTimeout(jctx, p.cfg.JobTimeout)
		defer cancelTimeout()
	}

	ping := time.NewTicker(p.cfg.PingInterval)
	defer ping.Stop()
	misses := 0

	var rssC <-chan time.Time
	if p.cfg.RSSLimitBytes > 0 && rssSupported() {
		rss := time.NewTicker(p.cfg.RSSPoll)
		defer rss.Stop()
		rssC = rss.C
	}

	ctxDone := jctx.Done()
	var grace <-chan time.Time
	canceled := false

	for {
		select {
		case m, ok := <-w.msgs:
			if !ok {
				werr := w.waitErr()
				return nil, fmt.Errorf("%w: %v", ErrWorkerCrashed, werr), true
			}
			switch m.typ {
			case framePong:
				misses = 0
			case frameEvent:
				if !canceled && j.onEvent != nil {
					j.onEvent(m.payload)
				}
			case frameResult:
				if canceled {
					// The worker raced its result against our cancel; the
					// job is already lost to its caller, but the worker
					// honored the protocol and stays up.
					return nil, jctx.Err(), false
				}
				return m.payload, nil, false
			case frameError:
				if canceled {
					return nil, jctx.Err(), false
				}
				return nil, fmt.Errorf("workerpool: worker: %s", m.payload), false
			default:
				p.killProc(id, w, fmt.Sprintf("protocol violation: frame type %d", m.typ))
				return nil, fmt.Errorf("%w: protocol violation (frame type %d)", ErrWorkerKilled, m.typ), true
			}
		case <-ctxDone:
			// Deadline or caller cancel: ask nicely, then escalate.
			canceled = true
			ctxDone = nil
			w.send(frameCancel, nil)
			t := time.NewTimer(p.cfg.CancelGrace)
			defer t.Stop()
			grace = t.C
		case <-grace:
			p.killProc(id, w, "cancel unanswered")
			return nil, fmt.Errorf("%w: %v (cancel unanswered after %v)", ErrWorkerKilled, jctx.Err(), p.cfg.CancelGrace), true
		case <-ping.C:
			misses++
			if misses > p.cfg.PingMisses {
				p.killProc(id, w, "missed pings")
				return nil, fmt.Errorf("%w: missed %d pings", ErrWorkerKilled, misses), true
			}
			if err := w.send(framePing, nil); err != nil {
				p.killProc(id, w, "ping write failed")
				return nil, fmt.Errorf("%w: %v", ErrWorkerCrashed, err), true
			}
		case <-rssC:
			if rss := procRSS(w.pid); rss > p.cfg.RSSLimitBytes {
				p.killProc(id, w, "RSS over limit")
				return nil, fmt.Errorf("%w: resident set %d bytes exceeds limit %d", ErrWorkerKilled, rss, p.cfg.RSSLimitBytes), true
			}
		}
	}
}

// frameMsg is one worker->pool frame, payload copied out of the read
// buffer.
type frameMsg struct {
	typ     byte
	payload []byte
}

// proc is one live worker process.
type proc struct {
	cmd   *exec.Cmd
	pid   int
	stdin io.WriteCloser
	bw    *bufio.Writer
	wmu   sync.Mutex
	msgs  chan frameMsg // closed when the stdout stream ends
	done  chan struct{} // closed once the process is reaped

	werrMu sync.Mutex
	werr   error // cmd.Wait outcome
}

// send writes one frame to the worker, serialized against concurrent
// senders (job dispatch vs. liveness pings). It is the supervisor side
// of the per-job hot path, so it stays allocation-free: the frame header
// lives on the stack and the payload is written as-is.
//
//fpva:allocfree
func (w *proc) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := writeFrame(w.bw, typ, payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *proc) waitErr() error {
	<-w.done
	w.werrMu.Lock()
	defer w.werrMu.Unlock()
	if w.werr == nil {
		return errors.New("exited")
	}
	return w.werr
}

// spawn starts a worker process and completes the hello handshake,
// applying (and growing) the restart backoff on failure.
func (p *Pool) spawn(id int, backoff *time.Duration) (*proc, error) {
	if *backoff > p.cfg.BackoffMin {
		// A recent failure on this slot: give the machine a beat before
		// the next exec storm.
		select {
		case <-time.After(*backoff):
		case <-p.stop:
			return nil, ErrPoolClosed
		}
	}
	w, err := p.startProc()
	if err == nil {
		err = p.awaitHello(w)
		if err != nil {
			p.killProc(id, w, "handshake failed")
		}
	}
	if err != nil {
		*backoff = min(*backoff*2, p.cfg.BackoffMax)
		return nil, fmt.Errorf("workerpool: spawn worker: %w", err)
	}
	p.mu.Lock()
	p.stats.Spawns++
	p.pids[id] = w.pid
	p.mu.Unlock()
	return w, nil
}

func (p *Pool) startProc() (*proc, error) {
	if len(p.cfg.Command) == 0 {
		return nil, errors.New("no worker command configured")
	}
	cmd := exec.Command(p.cfg.Command[0], p.cfg.Command[1:]...)
	if p.cfg.Stderr != nil {
		cmd.Stderr = p.cfg.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &proc{
		cmd:   cmd,
		pid:   cmd.Process.Pid,
		stdin: stdin,
		bw:    bufio.NewWriterSize(stdin, 64<<10),
		msgs:  make(chan frameMsg, 16),
		done:  make(chan struct{}),
	}
	go p.readProc(w, stdout)
	return w, nil
}

// readProc owns the worker's stdout: it decodes frames into w.msgs
// (payloads copied out of the shared read buffer), closes the channel on
// any stream end or decode error — garbage and truncated frames land
// here — and reaps the process.
func (p *Pool) readProc(w *proc, stdout io.Reader) {
	br := bufio.NewReaderSize(stdout, 64<<10)
	var buf []byte
	for {
		typ, payload, nbuf, err := readFrame(br, buf, p.cfg.MaxFrameBytes)
		buf = nbuf
		if err != nil {
			break
		}
		w.msgs <- frameMsg{typ: typ, payload: append([]byte(nil), payload...)}
	}
	close(w.msgs)
	// A decode error leaves the worker alive and possibly blocked writing
	// into the now-unread pipe; kill it so Wait can reap. When the stream
	// ended because the process exited this is a no-op.
	w.cmd.Process.Kill()
	err := w.cmd.Wait()
	w.werrMu.Lock()
	w.werr = err
	w.werrMu.Unlock()
	close(w.done)
}

// awaitHello completes the handshake: the first frame must be a hello
// with the exact protocol payload, within the spawn timeout.
func (p *Pool) awaitHello(w *proc) error {
	t := time.NewTimer(p.cfg.SpawnTimeout)
	defer t.Stop()
	select {
	case m, ok := <-w.msgs:
		if !ok {
			return fmt.Errorf("worker exited before hello: %v", w.waitErr())
		}
		if m.typ != frameHello || string(m.payload) != string(helloPayload) {
			return fmt.Errorf("bad hello (frame type %d, payload %q): protocol mismatch", m.typ, m.payload)
		}
		return nil
	case <-t.C:
		return fmt.Errorf("no hello within %v", p.cfg.SpawnTimeout)
	}
}

// killProc hard-kills a worker and accounts the kill. The reader
// goroutine observes the stream end and reaps the process; the drain
// keeps it from blocking on buffered frames nobody will read.
func (p *Pool) killProc(id int, w *proc, reason string) {
	w.cmd.Process.Kill()
	w.stdin.Close()
	go drainMsgs(w.msgs)
	p.mu.Lock()
	p.stats.Kills++
	delete(p.pids, id)
	p.mu.Unlock()
	_ = reason // reasons surface in the job errors; kept for call-site readability
}

// drainMsgs discards a dead worker's remaining frames so its reader
// goroutine can finish and reap the process.
func drainMsgs(msgs <-chan frameMsg) {
	for range msgs {
	}
}

// shutdownProc drains one worker on pool close: close its stdin (Serve
// exits cleanly on EOF), give it CancelGrace to go, then kill.
func (p *Pool) shutdownProc(id int, w *proc) {
	w.stdin.Close()
	go drainMsgs(w.msgs)
	t := time.NewTimer(p.cfg.CancelGrace)
	defer t.Stop()
	select {
	case <-w.done:
	case <-t.C:
		w.cmd.Process.Kill()
		<-w.done
	}
	p.mu.Lock()
	delete(p.pids, id)
	p.mu.Unlock()
}
