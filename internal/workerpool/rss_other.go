//go:build !linux

package workerpool

// rssSupported reports whether resident-set polling works on this
// platform. Without /proc the RSS kill switch is disabled; the worker's
// own soft memory limit (runtime/debug.SetMemoryLimit) still applies.
func rssSupported() bool { return false }

func procRSS(pid int) int64 { return 0 }
