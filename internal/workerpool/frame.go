// Package workerpool runs solver jobs in long-lived worker subprocesses,
// speaking a small length-prefixed frame protocol over the workers'
// stdin/stdout. The pool side (Pool) supervises the processes — spawn,
// health-check pings, restart with backoff on crash or protocol violation,
// per-job deadlines with a cancel-then-kill escalation, an RSS kill
// switch, and graceful drain — while the worker side (Serve) is a single
// loop a worker binary runs over its standard streams.
//
// Payloads are opaque bytes: the package knows nothing about the solver
// wire format it carries, so the daemon and the worker agree on content
// (the fpva v1 wire format) one layer up. That keeps the crash-isolation
// machinery reusable and free of codec dependencies.
package workerpool

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layout: a 5-byte header — one type byte, then the payload length
// as a big-endian uint32 — followed by the payload bytes. The protocol is
// strictly request/response from the supervisor's point of view; the only
// unsolicited worker frame is the hello that opens the stream.
const frameHeaderLen = 5

// Frame types. The supervisor sends ping/job/cancel; the worker sends
// hello/pong/event/result/error.
const (
	frameHello  byte = 1 // worker -> pool: protocol handshake, payload = helloPayload
	framePing   byte = 2 // pool -> worker: liveness probe, payload echoed back
	framePong   byte = 3 // worker -> pool: ping echo
	frameJob    byte = 4 // pool -> worker: one job request payload
	frameCancel byte = 5 // pool -> worker: cancel the in-flight job
	frameEvent  byte = 6 // worker -> pool: progress event for the in-flight job
	frameResult byte = 7 // worker -> pool: job response payload (success)
	frameError  byte = 8 // worker -> pool: job failure message (worker stays up)
)

// helloVersion is the protocol version; helloPayload is the exact
// handshake bytes a worker must send first. A version bump changes the
// payload, so a stale worker binary fails the handshake instead of
// misparsing frames.
const helloVersion = 1

var helloPayload = []byte{'f', 'p', 'v', 'a', 'w', '0' + helloVersion}

// DefaultMaxFrameBytes bounds a frame payload (a 30x30 plan is ~1 MiB;
// the ceiling leaves two orders of magnitude of headroom).
const DefaultMaxFrameBytes = 256 << 20

// errFrameTooBig marks a header announcing a payload beyond the limit —
// almost always garbage on the stream, not a real giant frame.
var errFrameTooBig = errors.New("workerpool: frame exceeds size limit")

// writeFrame writes one frame. The caller owns write serialization and
// any buffering/flush policy on w.
//
//fpva:allocfree
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf, growing it only when the payload
// outsizes every previous one, and returns the payload as a sub-slice of
// the returned buffer — valid until the next call. io.EOF is returned
// only for a clean end of stream between frames; a stream that dies
// mid-frame surfaces io.ErrUnexpectedEOF.
func readFrame(r io.Reader, buf []byte, maxBytes int64) (typ byte, payload, nbuf []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, buf, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	typ = hdr[0]
	n := int64(binary.BigEndian.Uint32(hdr[1:]))
	if maxBytes > 0 && n > maxBytes {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes (limit %d)", errFrameTooBig, n, maxBytes)
	}
	if int64(cap(buf)) < n {
		//lint:ignore fpva/allocfree the frame buffer grows once to the steady payload size and is reused across frames
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return typ, buf[:n], buf, nil
}
