package workerpool

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The tests re-exec this test binary as the worker subprocess: TestMain
// checks the mode env var and, when set, runs a worker behavior instead
// of the test suite.
const childEnv = "WORKERPOOL_TEST_CHILD"

func TestMain(m *testing.M) {
	mode := os.Getenv(childEnv)
	if mode == "" {
		os.Exit(m.Run())
	}
	switch mode {
	case "echo":
		// Normal worker: emits two events, then echoes the request.
		err := Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			emit([]byte("e1"))
			emit([]byte("e2"))
			return append([]byte("echo:"), req...), nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "child:", err)
			os.Exit(1)
		}
	case "fail":
		// Healthy worker whose handler reports a job error.
		Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			return nil, errors.New("deliberate job failure")
		})
	case "crash":
		// Dies mid-job without a result (same stream shape as kill -9).
		Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			os.Exit(3)
			return nil, nil
		})
	case "garbage":
		// Speaks hello, then spews non-frame garbage at the supervisor.
		os.Stdout.Write([]byte{frameHello, 0, 0, 0, byte(len(helloPayload))})
		os.Stdout.Write(helloPayload)
		for i := 0; i < 4096; i++ {
			os.Stdout.Write([]byte("this is not a frame "))
		}
		os.Exit(3) // nonzero: see the truncate mode's comment

	case "truncate":
		// Hello, then on the first job answers with a truncated frame:
		// a result header announcing 100 bytes followed by only 3.
		os.Stdout.Write([]byte{frameHello, 0, 0, 0, byte(len(helloPayload))})
		os.Stdout.Write(helloPayload)
		var hdr [frameHeaderLen]byte
		buf := make([]byte, 4096)
		os.Stdin.Read(buf) // wait for the job frame
		hdr[0] = frameResult
		binary.BigEndian.PutUint32(hdr[1:], 100)
		os.Stdout.Write(hdr[:])
		os.Stdout.Write([]byte("abc"))
		// Exit nonzero: under -race an os.Exit(0) runs racefini, which
		// sleeps ~1s before the process (and its pipe ends) actually goes
		// away — long enough for the ping watchdog to fire first and turn
		// this crash into a kill.
		os.Exit(3)
	case "hang":
		// Handler ignores cancellation entirely: the supervisor must
		// escalate cancel -> SIGKILL.
		Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			time.Sleep(time.Hour)
			return nil, nil
		})
	case "slow":
		// Cooperative slow job: finishes in 10s or on cancel.
		Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			select {
			case <-time.After(10 * time.Second):
				return []byte("done"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
	case "bighold":
		// Allocates ~64 MiB, touches it, and holds until canceled: food
		// for the RSS kill switch.
		Serve(context.Background(), os.Stdin, os.Stdout, func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
			hog := make([]byte, 64<<20)
			for i := range hog {
				hog[i] = byte(i)
			}
			select {
			case <-time.After(time.Hour):
			case <-ctx.Done():
			}
			runtime.KeepAlive(hog)
			return nil, errors.New("unreachable")
		})
	case "badhello":
		os.Stdout.Write([]byte{frameHello, 0, 0, 0, 6})
		os.Stdout.Write([]byte("fpvaw9"))
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "unknown child mode", mode)
		os.Exit(2)
	}
	os.Exit(0)
}

// childPool builds a pool whose workers are this test binary in the given
// child mode.
func childPool(t *testing.T, mode string, mut func(*Config)) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Command:      []string{exe},
		Workers:      1,
		PingInterval: 50 * time.Millisecond,
		CancelGrace:  300 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		SpawnTimeout: 5 * time.Second,
		Stderr:       os.Stderr,
	}
	if mut != nil {
		mut(&cfg)
	}
	os.Setenv(childEnv, mode)
	t.Cleanup(func() { os.Unsetenv(childEnv) })
	p := New(cfg)
	t.Cleanup(func() { p.Close() })
	return p
}

func TestDoRoundTrip(t *testing.T) {
	p := childPool(t, "echo", nil)
	var events []string
	resp, err := p.Do(context.Background(), []byte("hello"), func(ev []byte) {
		events = append(events, string(ev))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(resp); got != "echo:hello" {
		t.Fatalf("resp = %q", got)
	}
	if len(events) != 2 || events[0] != "e1" || events[1] != "e2" {
		t.Fatalf("events = %v", events)
	}
	// Second job reuses the same live worker.
	if _, err := p.Do(context.Background(), []byte("again"), nil); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Spawns != 1 || st.Restarts != 0 || st.JobsDone != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentJobsAcrossWorkers(t *testing.T) {
	p := childPool(t, "echo", func(c *Config) { c.Workers = 3 })
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := p.Do(context.Background(), []byte(fmt.Sprintf("r%d", i)), nil)
			if err == nil && string(resp) != fmt.Sprintf("echo:r%d", i) {
				err = fmt.Errorf("bad resp %q", resp)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.JobsDone != 12 || st.Spawns > 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobErrorKeepsWorkerAlive(t *testing.T) {
	p := childPool(t, "fail", nil)
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate job failure") {
		t.Fatalf("err = %v", err)
	}
	if st := p.Stats(); st.Restarts != 0 || st.Alive != 1 {
		t.Fatalf("worker should have survived a handler error: %+v", st)
	}
}

func TestCrashMidJobFailsOnlyThatJob(t *testing.T) {
	p := childPool(t, "crash", nil)
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	// The pool recovers: next job spawns a fresh worker (which crashes
	// again in this mode, but on its own job).
	_, err = p.Do(context.Background(), []byte("y"), nil)
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("second err = %v", err)
	}
	st := p.Stats()
	if st.Spawns != 2 || st.Restarts != 2 || st.JobsFailed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKill9MidSolveFailsOneJobAndRestarts(t *testing.T) {
	p := childPool(t, "slow", nil)
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(context.Background(), []byte("x"), nil)
		done <- err
	}()
	// Wait for the worker to pick the job up, then SIGKILL it.
	var pid int
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pids := p.Pids(); len(pids) == 1 && p.Stats().Busy == 1 {
			pid = pids[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pid == 0 {
		t.Fatal("worker never became busy")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrWorkerCrashed) {
			t.Fatalf("err = %v, want ErrWorkerCrashed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job did not fail after kill -9")
	}
	// The pool is healthy again: a quick job on the respawned worker.
	os.Setenv(childEnv, "echo")
	if _, err := p.Do(context.Background(), []byte("z"), nil); err != nil {
		t.Fatalf("post-kill job: %v", err)
	}
	if st := p.Stats(); st.Restarts != 1 || st.JobsDone != 1 || st.JobsFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGarbageStreamIsASpawnFailure(t *testing.T) {
	// The garbage child completes the handshake then emits non-frame
	// bytes and exits; the job must fail, not hang or panic.
	p := childPool(t, "garbage", nil)
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if err == nil {
		t.Fatal("garbage stream produced a successful job")
	}
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed (stream died on garbage)", err)
	}
}

func TestTruncatedFrameFailsJob(t *testing.T) {
	p := childPool(t, "truncate", nil)
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	if st := p.Stats(); st.JobsFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadlineEscalatesCancelThenKill(t *testing.T) {
	p := childPool(t, "hang", func(c *Config) {
		c.JobTimeout = 100 * time.Millisecond
		c.CancelGrace = 100 * time.Millisecond
	})
	start := time.Now()
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrWorkerKilled) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v to enforce", d)
	}
	if st := p.Stats(); st.Kills != 1 {
		t.Fatalf("stats = %+v, want one kill", st)
	}
}

func TestCooperativeCancel(t *testing.T) {
	p := childPool(t, "slow", nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, []byte("x"), nil)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p.Stats().Busy == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The slow child honors ctx, so the worker must still be alive (no
	// kill): wait for the slot to settle, then check.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p.Stats().Busy != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.Kills != 0 || st.Restarts != 0 {
		t.Fatalf("cooperative cancel should not kill: %+v", st)
	}
}

func TestRSSKillSwitch(t *testing.T) {
	if !rssSupported() {
		t.Skip("no /proc on this platform")
	}
	p := childPool(t, "bighold", func(c *Config) {
		c.RSSLimitBytes = 32 << 20 // the child holds ~64 MiB
		c.RSSPoll = 25 * time.Millisecond
	})
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if !errors.Is(err, ErrWorkerKilled) || !strings.Contains(err.Error(), "resident set") {
		t.Fatalf("err = %v, want RSS kill", err)
	}
}

func TestBadHelloIsASpawnFailure(t *testing.T) {
	p := childPool(t, "badhello", nil)
	_, err := p.Do(context.Background(), []byte("x"), nil)
	if err == nil || !strings.Contains(err.Error(), "hello") {
		t.Fatalf("err = %v, want handshake failure", err)
	}
}

func TestSpawnFailureFailsJobNotPool(t *testing.T) {
	p := New(Config{Command: []string{"/nonexistent/fpvaworker-binary"},
		BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, err := p.Do(context.Background(), []byte("x"), nil); err == nil {
			t.Fatal("spawn of a nonexistent binary succeeded?")
		}
	}
	if st := p.Stats(); st.JobsFailed != 2 || st.Spawns != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCloseDrainsWorkers(t *testing.T) {
	p := childPool(t, "echo", func(c *Config) { c.Workers = 2 })
	if _, err := p.Do(context.Background(), []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(context.Background(), []byte("y"), nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close = %v", err)
	}
	if st := p.Stats(); st.Alive != 0 {
		t.Fatalf("workers alive after Close: %+v", st)
	}
}

func TestPingSurvivesLongJob(t *testing.T) {
	// With a 50ms ping interval and 4 allowed misses, a 1s job would be
	// killed if the worker could not pong mid-job. The slow child's serve
	// loop pongs while the handler runs.
	p := childPool(t, "slow", func(c *Config) { c.JobTimeout = time.Second })
	_, err := p.Do(context.Background(), []byte("x"), nil)
	// The job itself times out (slow = 10s), but via cancel, not pings.
	if err == nil {
		t.Fatal("want deadline error")
	}
	if st := p.Stats(); st.Kills != 0 {
		t.Fatalf("worker was killed despite answering pings: %+v", st)
	}
}
