//go:build !race

package sim

// raceEnabled mirrors the race detector state: sync.Pool deliberately
// drops items under -race, which breaks strict zero-allocation assertions.
const raceEnabled = false
