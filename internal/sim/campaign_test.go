package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
)

// mustCampaign runs a campaign under context.Background and fails the test
// on error.
func mustCampaign(t *testing.T, s *Simulator, vecs []*Vector, cfg CampaignConfig) CampaignResult {
	t.Helper()
	res, err := s.RunCampaign(context.Background(), vecs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCampaignWorkerCountInvariant is the contract the parallel engine must
// keep: for a fixed seed, the full CampaignResult — detected count and
// escape list — is bit-identical no matter how many workers shard the
// trials.
func TestCampaignWorkerCountInvariant(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	s := MustNew(a)
	// A deliberately weak vector set so escapes are non-empty and their
	// deterministic ordering is exercised too.
	vecs := []*Vector{lPath(a), columnCut(a, 2)}
	pairs := [][2]grid.ValveID{{a.HValve(0, 1), a.HValve(1, 1)}, {a.HValve(2, 1), a.VValve(1, 1)}}
	for _, k := range []int{1, 2, 3, 5} {
		base := mustCampaign(t, s, vecs, CampaignConfig{
			Trials: 500, NumFaults: k, Seed: 99, Workers: 1, LeakPairs: pairs,
		})
		for _, workers := range []int{2, 4, 7, 16} {
			got := mustCampaign(t, s, vecs, CampaignConfig{
				Trials: 500, NumFaults: k, Seed: 99, Workers: workers, LeakPairs: pairs,
			})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("k=%d: workers=%d diverges from workers=1:\n%+v\nvs\n%+v",
					k, workers, base, got)
			}
		}
	}
}

func TestCampaignZeroTrials(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	res := mustCampaign(t, s, []*Vector{lPath(a)}, CampaignConfig{Trials: 0, NumFaults: 1, Seed: 1})
	if res.Trials != 0 || res.Detected != 0 || res.DetectionRate() != 0 {
		t.Errorf("zero-trial campaign: %+v", res)
	}
}

// TestRandomFaultsLeakExhaustion reproduces the infinite-retry hazard: more
// faults requested than the leak pairs and free valves can supply. The draw
// must terminate and return as many distinct-valve faults as possible.
func TestRandomFaultsLeakExhaustion(t *testing.T) {
	a := grid.MustNewStandard(2, 2)
	normal := a.NormalValves() // 12 valves on a full 2x2
	if len(normal) < 4 {
		t.Fatalf("unexpected normal count %d", len(normal))
	}
	// Every leak pair shares valve normal[0]: after one leak fires, every
	// remaining pair is blocked and the draw must fall back to stuck-ats.
	var pairs [][2]grid.ValveID
	for _, v := range normal[1:] {
		pairs = append(pairs, [2]grid.ValveID{normal[0], v})
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		fs := randomFaults(rng, normal, CampaignConfig{NumFaults: len(normal), LeakPairs: pairs})
		seen := make(map[grid.ValveID]bool)
		for _, f := range fs {
			if seen[f.A] {
				t.Fatalf("trial %d: duplicate valve %d", trial, f.A)
			}
			seen[f.A] = true
			if f.Kind == ControlLeak {
				if seen[f.B] && f.B != f.A {
					// B was marked by an earlier fault.
					t.Fatalf("trial %d: duplicate leak partner %d", trial, f.B)
				}
				seen[f.B] = true
			}
		}
	}
}

// TestRandomFaultsMoreThanValves asks for more faults than valves exist;
// the draw must cap at the valve count, never spin.
func TestRandomFaultsMoreThanValves(t *testing.T) {
	a := grid.MustNewStandard(2, 2)
	normal := a.NormalValves()
	rng := rand.New(rand.NewSource(8))
	fs := randomFaults(rng, normal, CampaignConfig{NumFaults: 10 * len(normal)})
	if len(fs) != len(normal) {
		t.Errorf("%d faults, want %d", len(fs), len(normal))
	}
}

func TestCompileCachesGolden(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vecs := []*Vector{lPath(a), columnCut(a, 1)}
	cv := s.Compile(vecs)
	if cv.Len() != 2 || cv.Simulator() != s {
		t.Fatalf("compiled shape: len=%d", cv.Len())
	}
	for i, vec := range vecs {
		want := s.Readings(vec, nil)
		got := cv.Golden(i)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("vector %d golden %v, want %v", i, got, want)
		}
	}
	// Compiled and direct detection must agree.
	f := []Fault{{Kind: StuckAt0, A: a.HValve(0, 1)}}
	if cv.Detects(f) != s.Detects(vecs, f) {
		t.Error("compiled Detects disagrees with Simulator.Detects")
	}
	if cv.DetectingVector(f) != s.DetectingVector(vecs, f) {
		t.Error("compiled DetectingVector disagrees")
	}
}

func TestDetectsBatchMatchesSequential(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vecs := []*Vector{lPath(a), columnCut(a, 2)}
	cv := s.Compile(vecs)
	var sets [][]Fault
	for _, f := range AllSingleFaults(a) {
		sets = append(sets, []Fault{f})
	}
	seq, err := cv.DetectsBatch(context.Background(), sets, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cv.DetectsBatch(context.Background(), sets, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("batch detection diverges:\n%v\nvs\n%v", seq, par)
	}
	for i, f := range AllSingleFaults(a) {
		if seq[i] != s.Detects(vecs, []Fault{f}) {
			t.Errorf("fault %v: batch %v, direct %v", f, seq[i], !seq[i])
		}
	}
}

func TestTrialSeedSpread(t *testing.T) {
	// Adjacent trials and adjacent seeds must produce distinct RNG seeds.
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for trial := 0; trial < 256; trial++ {
			v := trialSeed(seed, trial)
			if seen[v] {
				t.Fatalf("collision at seed=%d trial=%d", seed, trial)
			}
			seen[v] = true
		}
	}
}
