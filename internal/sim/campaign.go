// Campaign engine: compiled vector sets with cached fault-free behaviour,
// and the parallel random fault-injection campaign of the paper's Sec. IV.
//
// The two ideas that make campaigns fast:
//
//   - Compile once. A CompiledVectors caches, per vector, the fault-free
//     effective valve state and the golden sink readings, so a campaign of
//     t trials over n vectors runs n BFS passes for the golden side instead
//     of t*n.
//   - Shard trials. Every trial derives its fault draw from an RNG seeded
//     purely by (Seed, trial index), so trials are independent of scheduling
//     and the result is bit-identical for any worker count.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
)

// DefaultMaxEscapes is the CampaignResult.Escapes cap applied when
// CampaignConfig.MaxEscapes is zero.
const DefaultMaxEscapes = 16

// CampaignConfig parameterizes a random fault-injection campaign, mirroring
// the paper's Sec. IV study (1..5 random faults, 10 000 trials per setting).
type CampaignConfig struct {
	Trials    int
	NumFaults int
	Seed      int64
	// Workers shards trials across goroutines; <= 0 means runtime.NumCPU().
	// The result is bit-identical for any worker count: each trial's faults
	// depend only on (Seed, trial index).
	Workers int
	// MaxEscapes caps CampaignResult.Escapes; <= 0 means DefaultMaxEscapes.
	MaxEscapes int
	// LeakPairs, when non-empty, lets the campaign inject ControlLeak
	// faults drawn from these candidate pairs alongside stuck-at faults.
	LeakPairs [][2]grid.ValveID
	// OnTrials, when non-nil, observes campaign progress: it receives
	// strictly increasing completed-trial counts (roughly once per scheduled
	// trial block). A campaign that completes — any engine, any worker
	// count — always ends with a final call at (Trials, Trials); a
	// cancelled campaign reports only the trials actually evaluated. It is
	// invoked from worker goroutines under an internal lock, so it must not
	// call back into the campaign and should return quickly.
	OnTrials func(done, total int)
	// Engine selects the trial-evaluation engine. The zero value
	// (EngineAuto) uses the bit-parallel PPSFP engine; results are
	// bit-identical across engines.
	Engine CampaignEngine
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Trials   int
	Detected int
	// Sims counts vector evaluations performed across all trials (a trial
	// stops at its first detecting vector). For a fixed seed and a completed
	// campaign it is identical for any worker count, like the rest of the
	// result.
	Sims int
	// Escapes holds up to MaxEscapes undetected fault sets (lowest trial
	// indices first) for diagnosis.
	Escapes [][]Fault
}

// DetectionRate returns Detected/Trials.
func (r CampaignResult) DetectionRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Trials)
}

// CompiledVectors is a vector set bound to its simulator with the fault-free
// behaviour precomputed: per-vector effective valve states and golden sink
// readings. Compile once, then query Detects / RunCampaign / DetectsBatch
// any number of times — the golden readings are computed exactly once per
// vector instead of once per (vector, trial). Safe for concurrent use.
type CompiledVectors struct {
	s      *Simulator
	vecs   []*Vector
	base   [][]bool // fault-free effective state per vector
	golden [][]bool // fault-free sink readings per vector
	// baseWords is base broadcast to 64 bit lanes (0 or ^0 per valve), the
	// starting state of every bit-parallel sweep; baseReach is the matching
	// broadcast of the fault-free node reachability, the starting point of
	// incremental propagation for lanes whose faults only open extra valves.
	baseWords [][]uint64
	baseReach [][]uint64
	// edgeWords[i][e] is baseWords[i] read through the edge->valve map: the
	// fault-free conductance of every graph edge, broadcast to 64 lanes.
	// A sweep copies it and patches only the faulted valves' edges instead
	// of re-gathering all of eff per vector.
	edgeWords [][]uint64
	// detClosure[i][v/64] bit v%64: closing valve v alone (leaving every
	// other valve in vector i's fault-free state) changes vector i's
	// readings; detOpen is the mirror table for opening valve v alone.
	// Closing valves only ever removes reachability and opening only ever
	// adds it, so these single-fault tables settle most fault universes
	// without any propagation — see sweepWord for the monotonicity
	// argument. A single-stuck-at universe always resolves by lookup.
	detClosure [][]uint64
	detOpen    [][]uint64
}

// Compile precomputes the fault-free effective states and sink readings of
// the vector set. The vectors must not be mutated afterwards.
func (s *Simulator) Compile(vectors []*Vector) *CompiledVectors {
	cv := &CompiledVectors{
		s:      s,
		vecs:   vectors,
		base:   make([][]bool, len(vectors)),
		golden: make([][]bool, len(vectors)),

		baseWords:  make([][]uint64, len(vectors)),
		baseReach:  make([][]uint64, len(vectors)),
		edgeWords:  make([][]uint64, len(vectors)),
		detClosure: make([][]uint64, len(vectors)),
		detOpen:    make([][]uint64, len(vectors)),
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	for i, vec := range vectors {
		base := make([]bool, s.arr.NumValves())
		s.effIntoBase(base, vec)
		copy(sc.eff, base)
		cv.base[i] = base
		cv.golden[i] = s.readingsInto(sc, make([]bool, len(s.sinkNodes)))
		words := make([]uint64, len(base))
		for id, open := range base {
			if open {
				words[id] = ^uint64(0)
			}
		}
		cv.baseWords[i] = words
		ew := make([]uint64, s.g.M())
		for e, v := range s.edgeValve {
			ew[e] = words[v]
		}
		cv.edgeWords[i] = ew
		// readingsInto leaves the fault-free BFS tree in sc.via.
		reach := make([]uint64, s.g.N())
		for n, v := range sc.via {
			if v != -1 {
				reach[n] = ^uint64(0)
			}
		}
		cv.baseReach[i] = reach
	}
	cv.compileSingleFaultTables()
	return cv
}

// compileSingleFaultTables fills detClosure and detOpen by evaluating, for
// every vector, the single-valve-flip universes bit-parallel: lane j of
// chunk c is the universe in which only valve c*64+j is forced closed
// (resp. open). One word flood per (vector, 64 valves, polarity) answers 64
// "does this single flip matter?" questions.
func (cv *CompiledVectors) compileSingleFaultTables() {
	s := cv.s
	nv := s.arr.NumValves()
	chunks := (nv + 63) / 64
	ws := s.getWordScratch()
	defer s.putWordScratch(ws)
	for i := range cv.vecs {
		detC := make([]uint64, chunks)
		detO := make([]uint64, chunks)
		words := cv.baseWords[i]
		for c := 0; c < chunks; c++ {
			lo := c * 64
			hi := lo + 64
			if hi > nv {
				hi = nv
			}
			// Closure universes: clear lane v-lo on valve v's edges where
			// the valve is base-open (a closed valve's closure is the
			// fault-free universe and its lane diff stays zero).
			copy(ws.edgeEff, cv.edgeWords[i])
			for v := lo; v < hi; v++ {
				if words[v] == 0 {
					continue
				}
				bit := uint64(1) << uint(v-lo)
				for _, e := range s.valveEdges[v] {
					ws.edgeEff[e] &^= bit
				}
			}
			detC[c] = cv.singleFlipDiff(ws, i)
			// Open universes: the mirror image on base-closed valves.
			copy(ws.edgeEff, cv.edgeWords[i])
			for v := lo; v < hi; v++ {
				if words[v] != 0 {
					continue
				}
				bit := uint64(1) << uint(v-lo)
				for _, e := range s.valveEdges[v] {
					ws.edgeEff[e] |= bit
				}
			}
			detO[c] = cv.singleFlipDiff(ws, i)
		}
		cv.detClosure[i] = detC
		cv.detOpen[i] = detO
	}
}

// singleFlipDiff floods ws.edgeEff and returns, per lane, whether the sink
// readings differ from vector i's golden ones.
func (cv *CompiledVectors) singleFlipDiff(ws *wordScratch, i int) uint64 {
	s := cv.s
	reach := s.g.BFSWordsInto(ws.reach, ws.queue, ws.inq, s.srcNodes, ^uint64(0), ws.edgeEff)
	diff := uint64(0)
	golden := cv.golden[i]
	for j, snk := range s.sinkNodes {
		g := uint64(0)
		if golden[j] {
			g = ^uint64(0)
		}
		diff |= reach[snk] ^ g
	}
	return diff
}

// Simulator returns the simulator the vectors were compiled against.
func (cv *CompiledVectors) Simulator() *Simulator { return cv.s }

// Len returns the number of compiled vectors.
func (cv *CompiledVectors) Len() int { return len(cv.vecs) }

// Golden returns the cached fault-free sink readings of vector i. The slice
// must not be modified.
func (cv *CompiledVectors) Golden(i int) []bool { return cv.golden[i] }

// detectingVector is the allocation-free inner loop: it overlays faults on
// the cached fault-free state of each vector and compares readings against
// the cached golden ones, skipping the BFS entirely when the faults do not
// change the vector's physical state.
//
//fpva:allocfree
func (cv *CompiledVectors) detectingVector(sc *scratch, faults []Fault) int {
	s := cv.s
	for i, vec := range cv.vecs {
		copy(sc.eff, cv.base[i])
		if !s.applyFaults(sc.eff, vec, faults) {
			continue
		}
		s.readingsInto(sc, sc.out)
		golden := cv.golden[i]
		for j := range golden {
			if golden[j] != sc.out[j] {
				return i
			}
		}
	}
	return -1
}

// Detects reports whether the compiled vector set distinguishes the faulty
// chip from a fault-free one.
func (cv *CompiledVectors) Detects(faults []Fault) bool {
	return cv.DetectingVector(faults) >= 0
}

// DetectingVector returns the index of the first vector that exposes the
// fault set, or -1.
func (cv *CompiledVectors) DetectingVector(faults []Fault) int {
	sc := cv.s.getScratch()
	defer cv.s.putScratch(sc)
	return cv.detectingVector(sc, faults)
}

// DetectsBatch evaluates many fault sets against the compiled vectors and
// reports per set whether it is detected. Fault sets are packed 64 to a
// word and evaluated bit-parallel (PPSFP); words are sharded across workers
// (<= 0 means runtime.NumCPU()). Results are position-stable regardless of
// worker count. This is the engine behind the exhaustive single- and
// double-fault sweeps.
//
// Cancelling ctx stops the sweep promptly. The returned slice is then
// trimmed to the longest fully-evaluated prefix (possibly empty) and
// returned together with ctx.Err(), so callers can tell evaluated entries
// from never-evaluated ones; on a nil error it always has len(faultSets)
// entries.
func (cv *CompiledVectors) DetectsBatch(ctx context.Context, faultSets [][]Fault, workers int) ([]bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]bool, len(faultSets))
	if len(faultSets) == 0 {
		return out, ctx.Err()
	}
	nWords := (len(faultSets) + 63) / 64
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nWords {
		workers = nWords
	}
	// done is indexed by word; each entry is written by the single worker
	// that claimed the word, and read only after the WaitGroup barrier.
	done := make([]bool, nWords)
	var next atomic.Int64
	run := func() {
		ws := cv.s.getWordScratch()
		defer cv.s.putWordScratch(ws)
		for ctx.Err() == nil {
			w := int(next.Add(1)) - 1
			if w >= nWords {
				return
			}
			start := w * 64
			n := len(faultSets) - start
			if n > 64 {
				n = 64
			}
			cv.sweepWord(ws, faultSets[start:start+n], laneMask(n))
			for lane := 0; lane < n; lane++ {
				out[start+lane] = ws.firstIdx[lane] >= 0
			}
			done[w] = true
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		evaluated := 0
		for w := 0; w < nWords && done[w]; w++ {
			evaluated = (w + 1) * 64
		}
		if evaluated > len(faultSets) {
			evaluated = len(faultSets)
		}
		return out[:evaluated], err
	}
	return out, nil
}

// detectsBatchScalar is the one-universe-at-a-time reference implementation
// of DetectsBatch, kept for differential tests against the word engine.
func (cv *CompiledVectors) detectsBatchScalar(faultSets [][]Fault) []bool {
	sc := cv.s.getScratch()
	defer cv.s.putScratch(sc)
	out := make([]bool, len(faultSets))
	for i, fs := range faultSets {
		out[i] = cv.detectingVector(sc, fs) >= 0
	}
	return out
}

// RunCampaign injects cfg.NumFaults random faults per trial (stuck-at-0 or
// stuck-at-1 on distinct Normal valves, plus control leaks if configured)
// and counts how many trials the vector set detects. Trials are sharded
// across cfg.Workers goroutines; for a fixed Seed the result is identical
// for any worker count.
func (s *Simulator) RunCampaign(ctx context.Context, vectors []*Vector, cfg CampaignConfig) (CampaignResult, error) {
	return s.Compile(vectors).RunCampaign(ctx, cfg)
}

// RunCampaign runs the campaign against the compiled vector set.
//
// Cancelling ctx stops the campaign promptly: all workers drain, and the
// partial result (Trials reflecting only the trials actually evaluated) is
// returned together with ctx.Err(). A completed campaign is bit-identical
// for any worker count and for either engine: every trial's fault draw
// depends only on (Seed, trial index), and the bit-parallel engine
// reproduces the scalar engine's per-trial first-detecting vector exactly.
func (cv *CompiledVectors) RunCampaign(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials <= 0 {
		return CampaignResult{Trials: cfg.Trials}, ctx.Err()
	}
	switch cfg.Engine {
	case EngineAuto, EngineBitParallel:
		return cv.runCampaignWords(ctx, cfg)
	case EngineScalar:
		return cv.runCampaignScalar(ctx, cfg)
	}
	return CampaignResult{}, fmt.Errorf("sim: unknown campaign engine %d", int(cfg.Engine))
}

// escape is one undetected trial, recorded for the Escapes cap.
type escape struct {
	trial  int
	faults []Fault
}

// campaignState is the cross-worker bookkeeping a campaign engine shares:
// atomic tallies, the escape merge lock, and the serialized OnTrials
// progress stream.
type campaignState struct {
	cfg        CampaignConfig
	maxEscapes int
	next       atomic.Int64 // block / word claim counter
	detected   atomic.Int64
	sims       atomic.Int64
	completed  atomic.Int64
	mu         sync.Mutex
	escapes    []escape
	progMu     sync.Mutex
	progLast   int
}

func newCampaignState(cfg CampaignConfig) *campaignState {
	maxEscapes := cfg.MaxEscapes
	if maxEscapes <= 0 {
		maxEscapes = DefaultMaxEscapes
	}
	return &campaignState{cfg: cfg, maxEscapes: maxEscapes}
}

// report delivers a progress callback if the completed count advanced;
// counts are strictly increasing under progMu.
func (st *campaignState) report() {
	if st.cfg.OnTrials == nil {
		return
	}
	done := int(st.completed.Load())
	st.progMu.Lock()
	if done > st.progLast {
		st.progLast = done
		st.cfg.OnTrials(done, st.cfg.Trials)
	}
	st.progMu.Unlock()
}

// merge folds one worker's tallies and escape list into the shared state.
func (st *campaignState) merge(det, sims int64, local []escape) {
	st.detected.Add(det)
	st.sims.Add(sims)
	if len(local) > 0 {
		st.mu.Lock()
		st.escapes = append(st.escapes, local...)
		st.mu.Unlock()
	}
}

// run shards the worker function, then pins the documented final OnTrials
// call at (Trials, Trials): completion does not depend on which worker
// happened to win the progress race. It assembles the deterministic result
// (escapes sorted by trial index, truncated to the cap).
func (st *campaignState) run(ctx context.Context, workers int, worker func()) (CampaignResult, error) {
	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	res := CampaignResult{
		Trials:   st.cfg.Trials,
		Detected: int(st.detected.Load()),
		Sims:     int(st.sims.Load()),
	}
	sort.Slice(st.escapes, func(i, j int) bool { return st.escapes[i].trial < st.escapes[j].trial })
	if len(st.escapes) > st.maxEscapes {
		st.escapes = st.escapes[:st.maxEscapes]
	}
	for _, e := range st.escapes {
		res.Escapes = append(res.Escapes, e.faults)
	}
	if err := ctx.Err(); err != nil {
		res.Trials = int(st.completed.Load())
		return res, err
	}
	st.report() // the guaranteed final (Trials, Trials) call
	return res, nil
}

// campaignWorkerCount resolves cfg.Workers against the number of
// schedulable units (trials or 64-trial words).
func campaignWorkerCount(cfg CampaignConfig, units int) int {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > units {
		workers = units
	}
	return workers
}

// runCampaignScalar evaluates one trial at a time (EngineScalar), the
// differential reference for the bit-parallel engine.
func (cv *CompiledVectors) runCampaignScalar(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	st := newCampaignState(cfg)
	normal := cv.s.arr.NormalValves()
	// Workers claim trial-index blocks from a shared counter. Each block is
	// big enough to amortize the contended add, small enough to balance load
	// at the tail (and to bound cancellation latency to one block).
	const block = 32
	worker := func() {
		sc := cv.s.getScratch()
		defer cv.s.putScratch(sc)
		rng := rand.New(&splitmix64{})
		fs := newFaultScratch(normal, cfg)
		var det, sims int64
		var local []escape
		for ctx.Err() == nil {
			start := int(st.next.Add(block)) - block
			if start >= cfg.Trials {
				break
			}
			end := start + block
			if end > cfg.Trials {
				end = cfg.Trials
			}
			for trial := start; trial < end; trial++ {
				rng.Seed(trialSeed(cfg.Seed, trial))
				faults := randomFaultsInto(rng, normal, cfg, fs)
				if idx := cv.detectingVector(sc, faults); idx >= 0 {
					det++
					sims += int64(idx) + 1
				} else {
					sims += int64(len(cv.vecs))
					if len(local) < st.maxEscapes {
						// A worker's trials ascend, so its first maxEscapes
						// escapes are a superset of its share of the global
						// ones. Escapes outlive the scratch: copy.
						local = append(local, escape{trial, append([]Fault(nil), faults...)})
					}
				}
			}
			st.completed.Add(int64(end - start))
			st.report()
		}
		st.merge(det, sims, local)
	}
	return st.run(ctx, campaignWorkerCount(cfg, cfg.Trials), worker)
}

// runCampaignWords is the bit-parallel (PPSFP) engine: workers claim whole
// 64-trial words, draw the word's fault universes with the same
// (Seed, trial) SplitMix64 seeding as the scalar engine, and evaluate all
// 64 in one sweep per vector. The final partial word is the remainder
// block; its unused lanes are masked out of the sweep.
func (cv *CompiledVectors) runCampaignWords(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	st := newCampaignState(cfg)
	normal := cv.s.arr.NormalValves()
	nWords := (cfg.Trials + 63) / 64
	worker := func() {
		ws := cv.s.getWordScratch()
		defer cv.s.putWordScratch(ws)
		rng := rand.New(&splitmix64{})
		fb := newWordFaultScratch(normal, cfg)
		var det, sims int64
		var local []escape
		for ctx.Err() == nil {
			w := int(st.next.Add(1)) - 1
			if w >= nWords {
				break
			}
			start := w * 64
			n := cfg.Trials - start
			if n > 64 {
				n = 64
			}
			for lane := 0; lane < n; lane++ {
				rng.Seed(trialSeed(cfg.Seed, start+lane))
				drawn := randomFaultsInto(rng, normal, cfg, fb.fs)
				fb.lanes[lane] = append(fb.lanes[lane][:0], drawn...)
			}
			cv.sweepWord(ws, fb.lanes[:n], laneMask(n))
			for lane := 0; lane < n; lane++ {
				if idx := ws.firstIdx[lane]; idx >= 0 {
					det++
					sims += int64(idx) + 1
				} else {
					sims += int64(len(cv.vecs))
					if len(local) < st.maxEscapes {
						// Lanes ascend within a word and a worker's words
						// ascend, so like the scalar engine its first
						// maxEscapes escapes cover its share of the global
						// cap. Escapes outlive the lane scratch: copy.
						local = append(local, escape{start + lane, append([]Fault(nil), fb.lanes[lane]...)})
					}
				}
			}
			st.completed.Add(int64(n))
			st.report()
		}
		st.merge(det, sims, local)
	}
	return st.run(ctx, campaignWorkerCount(cfg, nWords), worker)
}

// trialSeed mixes the campaign seed and a trial index into an RNG seed
// (splitmix64 finalizer), so each trial owns an independent, deterministic
// fault draw no matter which worker executes it.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// splitmix64 is Vigna's SplitMix64 as a rand.Source64. Reseeding is a single
// store — the stdlib rngSource pays ~1800 multiplies per Seed, which would
// dominate a campaign that reseeds once per trial.
type splitmix64 struct{ x uint64 }

func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// faultScratch is one worker's reusable draw state: the shrinking free
// list, the used set (a small linear-scan slice — at most 2*NumFaults
// entries), and the fault output buffer. With it, a trial's fault draw
// performs no allocation.
type faultScratch struct {
	free   []grid.ValveID
	used   []grid.ValveID
	faults []Fault
}

func newFaultScratch(normal []grid.ValveID, cfg CampaignConfig) *faultScratch {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	return &faultScratch{
		free:   make([]grid.ValveID, len(normal)),
		used:   make([]grid.ValveID, 0, 2*n),
		faults: make([]Fault, 0, n),
	}
}

func (fs *faultScratch) isUsed(v grid.ValveID) bool {
	for _, u := range fs.used {
		if u == v {
			return true
		}
	}
	return false
}

// randomFaultsInto draws up to cfg.NumFaults faults on distinct valves into
// the scratch's fault buffer (valid until the next draw). Stuck-at faults
// are drawn without replacement from a shrinking free list, so the draw can
// never spin; when a control-leak draw finds every candidate pair blocked
// by already-used valves it falls back to a stuck-at draw. If leak pairs
// consume so many valves that no free valve remains, the trial proceeds
// with fewer faults rather than retrying forever.
//
//fpva:allocfree
func randomFaultsInto(rng *rand.Rand, normal []grid.ValveID, cfg CampaignConfig, fs *faultScratch) []Fault {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	free := fs.free[:len(normal)]
	copy(free, normal)
	fs.used = fs.used[:0]
	faults := fs.faults[:0]
	remove := func(v grid.ValveID) {
		for i, f := range free {
			if f == v {
				free[i] = free[len(free)-1]
				free = free[:len(free)-1]
				return
			}
		}
	}
	for len(faults) < n && len(free) > 0 {
		if len(cfg.LeakPairs) > 0 && rng.Intn(5) == 0 {
			if p, ok := pickLeakPair(rng, cfg.LeakPairs, fs); ok {
				fs.used = append(fs.used, p[0], p[1])
				remove(p[0])
				remove(p[1])
				faults = append(faults, Fault{Kind: ControlLeak, A: p[0], B: p[1]})
				continue
			}
			// All leak pairs exhausted: fall through to a stuck-at draw.
		}
		i := rng.Intn(len(free))
		v := free[i]
		free[i] = free[len(free)-1]
		free = free[:len(free)-1]
		fs.used = append(fs.used, v)
		kind := StuckAt0
		if rng.Intn(2) == 1 {
			kind = StuckAt1
		}
		faults = append(faults, Fault{Kind: kind, A: v})
	}
	fs.faults = faults
	return faults
}

// randomFaults is the standalone (allocating) form of randomFaultsInto,
// kept for one-off draws and tests.
func randomFaults(rng *rand.Rand, normal []grid.ValveID, cfg CampaignConfig) []Fault {
	fs := newFaultScratch(normal, cfg)
	return append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...)
}

// pickLeakPair returns a uniformly random candidate pair whose valves are
// both unused, or ok=false when no such pair remains. The common case — the
// first probe hits a viable pair — costs one draw; only collisions pay for
// the viability scan.
//
//fpva:allocfree
func pickLeakPair(rng *rand.Rand, pairs [][2]grid.ValveID, fs *faultScratch) ([2]grid.ValveID, bool) {
	p := pairs[rng.Intn(len(pairs))]
	if !fs.isUsed(p[0]) && !fs.isUsed(p[1]) {
		return p, true
	}
	viable := 0
	for _, q := range pairs {
		if !fs.isUsed(q[0]) && !fs.isUsed(q[1]) {
			viable++
		}
	}
	if viable == 0 {
		return [2]grid.ValveID{}, false
	}
	k := rng.Intn(viable)
	for _, q := range pairs {
		if !fs.isUsed(q[0]) && !fs.isUsed(q[1]) {
			if k == 0 {
				return q, true
			}
			k--
		}
	}
	panic("sim: unreachable leak-pair draw")
}
