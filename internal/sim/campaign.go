// Campaign engine: compiled vector sets with cached fault-free behaviour,
// and the parallel random fault-injection campaign of the paper's Sec. IV.
//
// The two ideas that make campaigns fast:
//
//   - Compile once. A CompiledVectors caches, per vector, the fault-free
//     effective valve state and the golden sink readings, so a campaign of
//     t trials over n vectors runs n BFS passes for the golden side instead
//     of t*n.
//   - Shard trials. Every trial derives its fault draw from an RNG seeded
//     purely by (Seed, trial index), so trials are independent of scheduling
//     and the result is bit-identical for any worker count.
package sim

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
)

// DefaultMaxEscapes is the CampaignResult.Escapes cap applied when
// CampaignConfig.MaxEscapes is zero.
const DefaultMaxEscapes = 16

// CampaignConfig parameterizes a random fault-injection campaign, mirroring
// the paper's Sec. IV study (1..5 random faults, 10 000 trials per setting).
type CampaignConfig struct {
	Trials    int
	NumFaults int
	Seed      int64
	// Workers shards trials across goroutines; <= 0 means runtime.NumCPU().
	// The result is bit-identical for any worker count: each trial's faults
	// depend only on (Seed, trial index).
	Workers int
	// MaxEscapes caps CampaignResult.Escapes; <= 0 means DefaultMaxEscapes.
	MaxEscapes int
	// LeakPairs, when non-empty, lets the campaign inject ControlLeak
	// faults drawn from these candidate pairs alongside stuck-at faults.
	LeakPairs [][2]grid.ValveID
	// OnTrials, when non-nil, observes campaign progress: it receives
	// strictly increasing completed-trial counts (roughly once per scheduled
	// trial block) plus a final call at Trials. It is invoked from worker
	// goroutines under an internal lock, so it must not call back into the
	// campaign and should return quickly.
	OnTrials func(done, total int)
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Trials   int
	Detected int
	// Sims counts vector evaluations performed across all trials (a trial
	// stops at its first detecting vector). For a fixed seed and a completed
	// campaign it is identical for any worker count, like the rest of the
	// result.
	Sims int
	// Escapes holds up to MaxEscapes undetected fault sets (lowest trial
	// indices first) for diagnosis.
	Escapes [][]Fault
}

// DetectionRate returns Detected/Trials.
func (r CampaignResult) DetectionRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Trials)
}

// CompiledVectors is a vector set bound to its simulator with the fault-free
// behaviour precomputed: per-vector effective valve states and golden sink
// readings. Compile once, then query Detects / RunCampaign / DetectsBatch
// any number of times — the golden readings are computed exactly once per
// vector instead of once per (vector, trial). Safe for concurrent use.
type CompiledVectors struct {
	s      *Simulator
	vecs   []*Vector
	base   [][]bool // fault-free effective state per vector
	golden [][]bool // fault-free sink readings per vector
}

// Compile precomputes the fault-free effective states and sink readings of
// the vector set. The vectors must not be mutated afterwards.
func (s *Simulator) Compile(vectors []*Vector) *CompiledVectors {
	cv := &CompiledVectors{
		s:      s,
		vecs:   vectors,
		base:   make([][]bool, len(vectors)),
		golden: make([][]bool, len(vectors)),
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	for i, vec := range vectors {
		base := make([]bool, s.arr.NumValves())
		s.effIntoBase(base, vec)
		copy(sc.eff, base)
		cv.base[i] = base
		cv.golden[i] = s.readingsInto(sc, make([]bool, len(s.sinkNodes)))
	}
	return cv
}

// Simulator returns the simulator the vectors were compiled against.
func (cv *CompiledVectors) Simulator() *Simulator { return cv.s }

// Len returns the number of compiled vectors.
func (cv *CompiledVectors) Len() int { return len(cv.vecs) }

// Golden returns the cached fault-free sink readings of vector i. The slice
// must not be modified.
func (cv *CompiledVectors) Golden(i int) []bool { return cv.golden[i] }

// detectingVector is the allocation-free inner loop: it overlays faults on
// the cached fault-free state of each vector and compares readings against
// the cached golden ones, skipping the BFS entirely when the faults do not
// change the vector's physical state.
//
//fpva:allocfree
func (cv *CompiledVectors) detectingVector(sc *scratch, faults []Fault) int {
	s := cv.s
	for i, vec := range cv.vecs {
		copy(sc.eff, cv.base[i])
		if !s.applyFaults(sc.eff, vec, faults) {
			continue
		}
		s.readingsInto(sc, sc.out)
		golden := cv.golden[i]
		for j := range golden {
			if golden[j] != sc.out[j] {
				return i
			}
		}
	}
	return -1
}

// Detects reports whether the compiled vector set distinguishes the faulty
// chip from a fault-free one.
func (cv *CompiledVectors) Detects(faults []Fault) bool {
	return cv.DetectingVector(faults) >= 0
}

// DetectingVector returns the index of the first vector that exposes the
// fault set, or -1.
func (cv *CompiledVectors) DetectingVector(faults []Fault) int {
	sc := cv.s.getScratch()
	defer cv.s.putScratch(sc)
	return cv.detectingVector(sc, faults)
}

// DetectsBatch evaluates many fault sets against the compiled vectors,
// sharded across workers (<= 0 means runtime.NumCPU()), and reports per set
// whether it is detected. Results are position-stable regardless of worker
// count. This is the engine behind the exhaustive double-fault sweep.
//
// Cancelling ctx stops the sweep promptly; the partial output is returned
// together with ctx.Err().
func (cv *CompiledVectors) DetectsBatch(ctx context.Context, faultSets [][]Fault, workers int) ([]bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]bool, len(faultSets))
	if len(faultSets) == 0 {
		return out, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(faultSets) {
		workers = len(faultSets)
	}
	var next atomic.Int64
	run := func() {
		sc := cv.s.getScratch()
		defer cv.s.putScratch(sc)
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= len(faultSets) {
				return
			}
			out[i] = cv.detectingVector(sc, faultSets[i]) >= 0
		}
	}
	if workers == 1 {
		run()
		return out, ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// RunCampaign injects cfg.NumFaults random faults per trial (stuck-at-0 or
// stuck-at-1 on distinct Normal valves, plus control leaks if configured)
// and counts how many trials the vector set detects. Trials are sharded
// across cfg.Workers goroutines; for a fixed Seed the result is identical
// for any worker count.
func (s *Simulator) RunCampaign(ctx context.Context, vectors []*Vector, cfg CampaignConfig) (CampaignResult, error) {
	return s.Compile(vectors).RunCampaign(ctx, cfg)
}

// RunCampaign runs the campaign against the compiled vector set.
//
// Cancelling ctx stops the campaign promptly: all workers drain, and the
// partial result (Trials reflecting only the trials actually evaluated) is
// returned together with ctx.Err(). A completed campaign is bit-identical
// for any worker count.
func (cv *CompiledVectors) RunCampaign(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := CampaignResult{Trials: cfg.Trials}
	if cfg.Trials <= 0 {
		return res, ctx.Err()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	maxEscapes := cfg.MaxEscapes
	if maxEscapes <= 0 {
		maxEscapes = DefaultMaxEscapes
	}
	normal := cv.s.arr.NormalValves()
	type escape struct {
		trial  int
		faults []Fault
	}
	// Workers claim trial-index blocks from a shared counter. Each block is
	// big enough to amortize the contended add, small enough to balance load
	// at the tail (and to bound cancellation latency to one block).
	const block = 32
	var (
		next      atomic.Int64
		detected  atomic.Int64
		sims      atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		escapes   []escape
		progMu    sync.Mutex
		progLast  int
	)
	report := func() {
		if cfg.OnTrials == nil {
			return
		}
		done := int(completed.Load())
		progMu.Lock()
		if done > progLast {
			progLast = done
			cfg.OnTrials(done, cfg.Trials)
		}
		progMu.Unlock()
	}
	worker := func() {
		sc := cv.s.getScratch()
		defer cv.s.putScratch(sc)
		rng := rand.New(&splitmix64{})
		fs := newFaultScratch(normal, cfg)
		var det, sim int64
		var local []escape
		for ctx.Err() == nil {
			start := int(next.Add(block)) - block
			if start >= cfg.Trials {
				break
			}
			end := start + block
			if end > cfg.Trials {
				end = cfg.Trials
			}
			for trial := start; trial < end; trial++ {
				rng.Seed(trialSeed(cfg.Seed, trial))
				faults := randomFaultsInto(rng, normal, cfg, fs)
				if idx := cv.detectingVector(sc, faults); idx >= 0 {
					det++
					sim += int64(idx) + 1
				} else {
					sim += int64(len(cv.vecs))
					if len(local) < maxEscapes {
						// A worker's trials ascend, so its first maxEscapes
						// escapes are a superset of its share of the global
						// ones. Escapes outlive the scratch: copy.
						local = append(local, escape{trial, append([]Fault(nil), faults...)})
					}
				}
			}
			completed.Add(int64(end - start))
			report()
		}
		detected.Add(det)
		sims.Add(sim)
		if len(local) > 0 {
			mu.Lock()
			escapes = append(escapes, local...)
			mu.Unlock()
		}
	}
	if workers == 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	res.Detected = int(detected.Load())
	res.Sims = int(sims.Load())
	sort.Slice(escapes, func(i, j int) bool { return escapes[i].trial < escapes[j].trial })
	if len(escapes) > maxEscapes {
		escapes = escapes[:maxEscapes]
	}
	for _, e := range escapes {
		res.Escapes = append(res.Escapes, e.faults)
	}
	if err := ctx.Err(); err != nil {
		res.Trials = int(completed.Load())
		return res, err
	}
	return res, nil
}

// trialSeed mixes the campaign seed and a trial index into an RNG seed
// (splitmix64 finalizer), so each trial owns an independent, deterministic
// fault draw no matter which worker executes it.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// splitmix64 is Vigna's SplitMix64 as a rand.Source64. Reseeding is a single
// store — the stdlib rngSource pays ~1800 multiplies per Seed, which would
// dominate a campaign that reseeds once per trial.
type splitmix64 struct{ x uint64 }

func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// faultScratch is one worker's reusable draw state: the shrinking free
// list, the used set (a small linear-scan slice — at most 2*NumFaults
// entries), and the fault output buffer. With it, a trial's fault draw
// performs no allocation.
type faultScratch struct {
	free   []grid.ValveID
	used   []grid.ValveID
	faults []Fault
}

func newFaultScratch(normal []grid.ValveID, cfg CampaignConfig) *faultScratch {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	return &faultScratch{
		free:   make([]grid.ValveID, len(normal)),
		used:   make([]grid.ValveID, 0, 2*n),
		faults: make([]Fault, 0, n),
	}
}

func (fs *faultScratch) isUsed(v grid.ValveID) bool {
	for _, u := range fs.used {
		if u == v {
			return true
		}
	}
	return false
}

// randomFaultsInto draws up to cfg.NumFaults faults on distinct valves into
// the scratch's fault buffer (valid until the next draw). Stuck-at faults
// are drawn without replacement from a shrinking free list, so the draw can
// never spin; when a control-leak draw finds every candidate pair blocked
// by already-used valves it falls back to a stuck-at draw. If leak pairs
// consume so many valves that no free valve remains, the trial proceeds
// with fewer faults rather than retrying forever.
//
//fpva:allocfree
func randomFaultsInto(rng *rand.Rand, normal []grid.ValveID, cfg CampaignConfig, fs *faultScratch) []Fault {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	free := fs.free[:len(normal)]
	copy(free, normal)
	fs.used = fs.used[:0]
	faults := fs.faults[:0]
	remove := func(v grid.ValveID) {
		for i, f := range free {
			if f == v {
				free[i] = free[len(free)-1]
				free = free[:len(free)-1]
				return
			}
		}
	}
	for len(faults) < n && len(free) > 0 {
		if len(cfg.LeakPairs) > 0 && rng.Intn(5) == 0 {
			if p, ok := pickLeakPair(rng, cfg.LeakPairs, fs); ok {
				fs.used = append(fs.used, p[0], p[1])
				remove(p[0])
				remove(p[1])
				faults = append(faults, Fault{Kind: ControlLeak, A: p[0], B: p[1]})
				continue
			}
			// All leak pairs exhausted: fall through to a stuck-at draw.
		}
		i := rng.Intn(len(free))
		v := free[i]
		free[i] = free[len(free)-1]
		free = free[:len(free)-1]
		fs.used = append(fs.used, v)
		kind := StuckAt0
		if rng.Intn(2) == 1 {
			kind = StuckAt1
		}
		faults = append(faults, Fault{Kind: kind, A: v})
	}
	fs.faults = faults
	return faults
}

// randomFaults is the standalone (allocating) form of randomFaultsInto,
// kept for one-off draws and tests.
func randomFaults(rng *rand.Rand, normal []grid.ValveID, cfg CampaignConfig) []Fault {
	fs := newFaultScratch(normal, cfg)
	return append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...)
}

// pickLeakPair returns a uniformly random candidate pair whose valves are
// both unused, or ok=false when no such pair remains. The common case — the
// first probe hits a viable pair — costs one draw; only collisions pay for
// the viability scan.
//
//fpva:allocfree
func pickLeakPair(rng *rand.Rand, pairs [][2]grid.ValveID, fs *faultScratch) ([2]grid.ValveID, bool) {
	p := pairs[rng.Intn(len(pairs))]
	if !fs.isUsed(p[0]) && !fs.isUsed(p[1]) {
		return p, true
	}
	viable := 0
	for _, q := range pairs {
		if !fs.isUsed(q[0]) && !fs.isUsed(q[1]) {
			viable++
		}
	}
	if viable == 0 {
		return [2]grid.ValveID{}, false
	}
	k := rng.Intn(viable)
	for _, q := range pairs {
		if !fs.isUsed(q[0]) && !fs.isUsed(q[1]) {
			if k == 0 {
				return q, true
			}
			k--
		}
	}
	panic("sim: unreachable leak-pair draw")
}
