// Response-signature evaluation: the full per-sink readings of many fault
// universes against a compiled vector set, bit-parallel. Where DetectsBatch
// answers "is this universe distinguishable from fault-free at all?" and
// stops at the first detecting vector, Responses keeps going and records
// every (vector, sink) reading — the raw material of fault diagnosis, where
// two faults are told apart exactly by the vectors on which their readings
// differ.
//
// The matrix is laid out row-major by reading index and column-packed by
// fault set: row (vector i, sink j) is a bitset over fault sets. That is the
// transpose of the "signature per candidate" view, and it is deliberate —
// it is both what the word engine produces without any bit transpose and
// what diagnosis narrowing consumes (one AND/ANDNOT per word intersects an
// observation with the whole candidate universe).
package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ResponseMatrix holds the sink readings of a batch of fault sets under
// every compiled vector, bit-packed by fault set.
//
// Row r = vec*Sinks()+sink is a bitset over fault sets: bit k of word w of
// row r (rows[r*WordsPerRow()+w]) is sink `sink`'s reading under vector
// `vec` for fault set w*64+k. Padding bits past Sets() are zero.
type ResponseMatrix struct {
	nVec, nSink, nSets int
	wordsPerRow        int
	rows               []uint64
}

func newResponseMatrix(cv *CompiledVectors, nSets int) *ResponseMatrix {
	nSink := len(cv.s.sinkNodes)
	wpr := (nSets + 63) / 64
	return &ResponseMatrix{
		nVec:        len(cv.vecs),
		nSink:       nSink,
		nSets:       nSets,
		wordsPerRow: wpr,
		rows:        make([]uint64, len(cv.vecs)*nSink*wpr),
	}
}

// Vectors returns the number of vectors (the row-major dimension).
func (m *ResponseMatrix) Vectors() int { return m.nVec }

// Sinks returns the number of sinks per vector.
func (m *ResponseMatrix) Sinks() int { return m.nSink }

// Sets returns the number of fault sets (the bit-packed dimension).
func (m *ResponseMatrix) Sets() int { return m.nSets }

// WordsPerRow returns the number of uint64 words per (vector, sink) row.
func (m *ResponseMatrix) WordsPerRow() int { return m.wordsPerRow }

// Row returns the bitset of readings of (vec, sink) over all fault sets.
// The slice aliases the matrix and must not be modified.
//
//fpva:allocfree
func (m *ResponseMatrix) Row(vec, sink int) []uint64 {
	r := (vec*m.nSink + sink) * m.wordsPerRow
	return m.rows[r : r+m.wordsPerRow]
}

// Reading reports sink `sink`'s reading under vector vec for fault set
// `set`.
//
//fpva:allocfree
func (m *ResponseMatrix) Reading(set, vec, sink int) bool {
	r := (vec*m.nSink + sink) * m.wordsPerRow
	return m.rows[r+set>>6]>>(uint(set)&63)&1 != 0
}

// SameSignature reports whether fault sets a and b have identical readings
// on every (vector, sink) — i.e. no vector in the compiled set can ever
// tell them apart.
//
//fpva:allocfree
func (m *ResponseMatrix) SameSignature(a, b int) bool {
	wa, ba := a>>6, uint(a)&63
	wb, bb := b>>6, uint(b)&63
	for r := 0; r < m.nVec*m.nSink; r++ {
		row := m.rows[r*m.wordsPerRow:]
		if row[wa]>>ba&1 != row[wb]>>bb&1 {
			return false
		}
	}
	return true
}

// Responses evaluates every fault set against every compiled vector and
// returns the full response matrix. Fault sets are packed 64 to a word and
// evaluated bit-parallel; words are sharded across workers (<= 0 means
// runtime.NumCPU()). EngineScalar selects the one-universe-at-a-time
// reference; EngineAuto and EngineBitParallel use the word engine. The
// result is bit-identical across engines and worker counts.
//
// Cancelling ctx stops the sweep promptly; unlike DetectsBatch no partial
// matrix is returned — the result is nil together with ctx.Err().
func (cv *CompiledVectors) Responses(ctx context.Context, faultSets [][]Fault, workers int, engine CampaignEngine) (*ResponseMatrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if engine == EngineScalar {
		return cv.responsesScalar(faultSets), nil
	}
	m := newResponseMatrix(cv, len(faultSets))
	if len(faultSets) == 0 {
		return m, nil
	}
	nWords := m.wordsPerRow
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > nWords {
		workers = nWords
	}
	var next atomic.Int64
	run := func() {
		ws := cv.s.getWordScratch()
		defer cv.s.putWordScratch(ws)
		for ctx.Err() == nil {
			w := int(next.Add(1)) - 1
			if w >= nWords {
				return
			}
			start := w * 64
			n := len(faultSets) - start
			if n > 64 {
				n = 64
			}
			cv.responsesWord(ws, faultSets[start:start+n], laneMask(n), m, w)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// responsesWord evaluates up to 64 fault universes (lane k active when bit k
// of active is set) against every vector and writes their readings into
// column word of the matrix. It shares the sweepWord physics — the same
// overlay, the same monotonicity shortcuts — but never stops early: every
// lane needs its reading under every vector, not just its first detection.
//
// Per (vector, lane) the reading is resolved by the cheapest sufficient
// argument:
//
//   - unchanged physical state  -> golden readings, no propagation;
//   - certainly-missed (the sweepWord sandwich rule) -> golden readings;
//   - certainly-detected with a single sink -> the inverted golden reading
//     (detection says the readings differ, and with one sink "differs"
//     determines the value);
//   - everything else -> one masked word flood (removal lanes from the
//     sources, addition-only lanes incrementally from the cached fault-free
//     reachability).
//
//fpva:allocfree
func (cv *CompiledVectors) responsesWord(ws *wordScratch, faultsPerLane [][]Fault, active uint64, m *ResponseMatrix, word int) {
	s := cv.s
	s.loadWord(ws, faultsPerLane)
	oneSink := len(s.sinkNodes) == 1
	for i, vec := range cv.vecs {
		base := cv.baseWords[i]
		eff := ws.eff
		detC := cv.detClosure[i]
		detO := cv.detOpen[i]
		leaky := len(ws.leaks) > 0
		if leaky {
			for _, v := range ws.touched {
				eff[v] = base[v]
			}
			for _, lk := range ws.leaks {
				if !vec.open[lk.a] || !vec.open[lk.b] {
					eff[lk.a] &^= lk.mask
					eff[lk.b] &^= lk.mask
				}
			}
		}
		var changed, closedAny, closedMulti, addAny, addMulti, sureC, sureA uint64
		for _, v := range ws.touched {
			src := base[v]
			if leaky {
				src = eff[v]
			}
			w := (src &^ ws.sa0[v]) | ws.sa1[v]
			eff[v] = w
			clo := base[v] &^ w
			add := w &^ base[v]
			changed |= clo | add
			closedMulti |= closedAny & clo
			closedAny |= clo
			addMulti |= addAny & add
			addAny |= add
			if clo != 0 && (detC[v>>6]>>(uint(v)&63))&1 != 0 {
				sureC |= clo
			}
			if add != 0 && (detO[v>>6]>>(uint(v)&63))&1 != 0 {
				sureA |= add
			}
		}
		mCh := changed & active
		cOnly := closedAny &^ addAny
		aOnly := addAny &^ closedAny
		singleC := closedAny &^ closedMulti &^ sureC
		singleA := addAny &^ addMulti &^ sureA
		sure := (sureC&cOnly | sureA&aOnly) & mCh
		undet := (singleC&^addAny | singleA&^closedAny | singleC&singleA) & mCh
		// Lanes proven to reproduce the golden readings, lanes whose single
		// sink is proven inverted, and lanes that genuinely propagate.
		mGold := (active &^ mCh) | undet
		var mInv uint64
		mProp := mCh &^ undet
		if oneSink {
			mInv = sure
			mProp &^= sure
		}
		if mProp != 0 {
			mRem := closedAny & mProp
			mAdd := mProp &^ mRem
			reach := ws.reach
			if mAdd != 0 {
				br := cv.baseReach[i]
				for n := range reach {
					reach[n] = br[n] & mAdd
				}
			} else {
				for n := range reach {
					reach[n] = 0
				}
			}
			ws.starts = ws.starts[:0]
			if mRem != 0 {
				for _, sn := range s.srcNodes {
					reach[sn] |= mRem
					ws.starts = append(ws.starts, sn)
				}
			}
			if mAdd != 0 {
				for _, v := range ws.touched {
					if (eff[v]&^base[v])&mAdd != 0 {
						ws.starts = append(ws.starts, s.valveEnds[v]...)
					}
				}
			}
			copy(ws.edgeEff, cv.edgeWords[i])
			for _, v := range ws.touched {
				if ws.laneBits[v]&mProp == 0 {
					continue
				}
				w := eff[v]
				for _, e := range s.valveEdges[v] {
					ws.edgeEff[e] = w
				}
			}
			s.g.RelaxWordsInto(reach, ws.queue, ws.inq, ws.starts, ws.edgeEff)
		}
		golden := cv.golden[i]
		rowBase := (i * m.nSink) * m.wordsPerRow
		for j, snk := range s.sinkNodes {
			var row uint64
			if golden[j] {
				row |= mGold
			} else {
				row |= mInv
			}
			if mProp != 0 {
				row |= ws.reach[snk] & mProp
			}
			m.rows[rowBase+j*m.wordsPerRow+word] = row
		}
	}
}

// responsesScalar is the one-universe-at-a-time reference implementation of
// Responses, kept for differential tests against the word engine (and
// selectable via EngineScalar for the same reason campaigns keep theirs).
func (cv *CompiledVectors) responsesScalar(faultSets [][]Fault) *ResponseMatrix {
	m := newResponseMatrix(cv, len(faultSets))
	sc := cv.s.getScratch()
	defer cv.s.putScratch(sc)
	for set, fs := range faultSets {
		w, bit := set>>6, uint64(1)<<(uint(set)&63)
		for i, vec := range cv.vecs {
			copy(sc.eff, cv.base[i])
			readings := cv.golden[i]
			if cv.s.applyFaults(sc.eff, vec, fs) {
				readings = cv.s.readingsInto(sc, sc.out)
			}
			rowBase := (i * m.nSink) * m.wordsPerRow
			for j, r := range readings {
				if r {
					m.rows[rowBase+j*m.wordsPerRow+w] |= bit
				}
			}
		}
	}
	return m
}
