package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
)

// TestResponsesMatchesReadings pins the response matrix — both engines —
// against the ground truth of Simulator.Readings for every (set, vector,
// sink) cell, over randomized arrays and fault mixes including leaks,
// multi-fault sets, and the empty (fault-free) set.
func TestResponsesMatchesReadings(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 20; i++ {
		s, vecs, cfg := randomCampaignCase(rng)
		cv := s.Compile(vecs)
		normal := s.arr.NormalValves()
		fs := newFaultScratch(normal, cfg)
		sets := [][]Fault{nil} // lane 0: the fault-free universe
		for j, n := 0, 70+rng.Intn(130); j < n; j++ {
			sets = append(sets, append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...))
		}
		for _, engine := range []CampaignEngine{EngineScalar, EngineBitParallel} {
			m, err := cv.Responses(context.Background(), sets, 2, engine)
			if err != nil {
				t.Fatal(err)
			}
			if m.Sets() != len(sets) || m.Vectors() != len(vecs) {
				t.Fatalf("case %d %v: matrix is %dx%d, want %dx%d", i, engine, m.Vectors(), m.Sets(), len(vecs), len(sets))
			}
			for set, faults := range sets {
				for v, vec := range vecs {
					want := s.Readings(vec, faults)
					for j, r := range want {
						if got := m.Reading(set, v, j); got != r {
							t.Fatalf("case %d %v: set %d (%v) vector %d sink %d: got %t want %t",
								i, engine, set, faults, v, j, got, r)
						}
					}
				}
			}
		}
	}
}

// TestResponsesEngineDifferential pins the word engine bit-identical to the
// scalar reference — the full rows slice, not just individual readings — for
// several worker counts, so diagnosis built on top inherits the determinism
// contract.
func TestResponsesEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		s, vecs, cfg := randomCampaignCase(rng)
		cv := s.Compile(vecs)
		normal := s.arr.NormalValves()
		fs := newFaultScratch(normal, cfg)
		var sets [][]Fault
		for j, n := 0, 65+rng.Intn(140); j < n; j++ {
			sets = append(sets, append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...))
		}
		want, err := cv.Responses(context.Background(), sets, 1, EngineScalar)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := cv.Responses(context.Background(), sets, workers, EngineBitParallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d workers=%d: word engine diverges from scalar reference", i, workers)
			}
		}
	}
}

// TestResponsesSameSignature checks the signature-equality view: the
// fault-free set and a fault on a valve no vector ever opens are
// indistinguishable, while a detectable fault is not.
func TestResponsesSameSignature(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	s := MustNew(a)
	path := lPath(a)
	cv := s.Compile([]*Vector{path})
	open := path.OpenValves()
	if len(open) == 0 {
		t.Fatal("lPath opened no valves")
	}
	// A valve the single path vector leaves closed: its StuckAt0 can never
	// show (it is never commanded open), so its signature equals fault-free.
	var closed grid.ValveID = -1
	for _, v := range a.NormalValves() {
		if !path.Open(v) {
			closed = v
			break
		}
	}
	if closed < 0 {
		t.Fatal("no closed Normal valve")
	}
	sets := [][]Fault{
		nil,
		{{Kind: StuckAt0, A: closed}},
		{{Kind: StuckAt0, A: open[0]}}, // breaks the only path: detected
	}
	m, err := cv.Responses(context.Background(), sets, 1, EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SameSignature(0, 1) {
		t.Fatal("stuck-at-0 on a never-opened valve should be indistinguishable from fault-free")
	}
	if m.SameSignature(0, 2) {
		t.Fatal("stuck-at-0 on the path should be distinguishable from fault-free")
	}
}

// TestResponsesCancel pins the cancellation contract: no partial matrix.
func TestResponsesCancel(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	s := MustNew(a)
	cv := s.Compile([]*Vector{lPath(a)})
	var sets [][]Fault
	for _, f := range AllSingleFaults(a) {
		sets = append(sets, []Fault{f})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := cv.Responses(ctx, sets, 2, EngineAuto)
	if err == nil {
		t.Fatal("cancelled Responses returned nil error")
	}
	if m != nil {
		t.Fatal("cancelled Responses returned a partial matrix")
	}
}
