package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
)

// randomVector commands a random subset of Normal valves open. Unlike path
// and cut vectors it has no structure at all, which makes the golden
// readings (and hence the detection surface) as varied as possible.
func randomVector(a *grid.Array, rng *rand.Rand, name string) *Vector {
	v := NewVector(a, Custom, name)
	for _, id := range a.NormalValves() {
		if rng.Intn(2) == 1 {
			v.SetOpen(id, true)
		}
	}
	return v
}

// randomCampaignCase builds a random array, vector set, and campaign config
// for differential testing. The trial count deliberately straddles a word
// boundary (so the remainder block's masked lanes are exercised) and
// MaxEscapes is small enough that the sort-and-truncate path runs.
func randomCampaignCase(rng *rand.Rand) (*Simulator, []*Vector, CampaignConfig) {
	rows := 2 + rng.Intn(4)
	cols := 2 + rng.Intn(4)
	a := grid.MustNewStandard(rows, cols)
	s := MustNew(a)
	vecs := []*Vector{lPath(a)}
	for i, extra := 0, rng.Intn(3); i < extra; i++ {
		vecs = append(vecs, randomVector(a, rng, "rand"))
	}
	normal := a.NormalValves()
	var pairs [][2]grid.ValveID
	for i, n := 0, rng.Intn(4); i < n && len(normal) >= 2; i++ {
		x := normal[rng.Intn(len(normal))]
		y := normal[rng.Intn(len(normal))]
		if x != y {
			pairs = append(pairs, [2]grid.ValveID{x, y})
		}
	}
	cfg := CampaignConfig{
		Trials:     65 + rng.Intn(140),
		NumFaults:  1 + rng.Intn(5),
		Seed:       rng.Int63(),
		LeakPairs:  pairs,
		MaxEscapes: 1 + rng.Intn(4),
	}
	return s, vecs, cfg
}

// TestCampaignEngineDifferential is the acceptance test for the PPSFP
// engine: over many randomized arrays, vector sets, and fault mixes, the
// bit-parallel campaign must produce a CampaignResult — Detected, Sims, and
// the escape list — bit-identical to the scalar engine, for several worker
// counts each.
func TestCampaignEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 60; i++ {
		s, vecs, cfg := randomCampaignCase(rng)
		cfg.Trials = 65 + rng.Intn(140) // straddle word boundaries, vary remainder
		scalarCfg := cfg
		scalarCfg.Engine = EngineScalar
		scalarCfg.Workers = 1
		want := mustCampaign(t, s, vecs, scalarCfg)
		for _, workers := range []int{1, 2, 4} {
			wordCfg := cfg
			wordCfg.Engine = EngineBitParallel
			wordCfg.Workers = workers
			got := mustCampaign(t, s, vecs, wordCfg)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d (trials=%d faults=%d workers=%d): engines diverge:\nscalar: %+v\nwords:  %+v",
					i, cfg.Trials, cfg.NumFaults, workers, want, got)
			}
			// EngineAuto must be the bit-parallel engine, not a third thing.
			autoCfg := wordCfg
			autoCfg.Engine = EngineAuto
			if auto := mustCampaign(t, s, vecs, autoCfg); !reflect.DeepEqual(want, auto) {
				t.Fatalf("case %d: EngineAuto diverges from scalar: %+v vs %+v", i, want, auto)
			}
		}
	}
}

// TestDetectsBatchMatchesScalarRandomized pins the word-parallel
// DetectsBatch against the one-at-a-time reference over random fault sets,
// including multi-fault sets with leaks.
func TestDetectsBatchMatchesScalarRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		s, vecs, cfg := randomCampaignCase(rng)
		cv := s.Compile(vecs)
		normal := s.arr.NormalValves()
		fs := newFaultScratch(normal, cfg)
		var sets [][]Fault
		for j, n := 0, 70+rng.Intn(130); j < n; j++ {
			sets = append(sets, append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...))
		}
		want := cv.detectsBatchScalar(sets)
		for _, workers := range []int{1, 3} {
			got, err := cv.DetectsBatch(context.Background(), sets, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("case %d workers=%d: batch diverges from scalar reference", i, workers)
			}
		}
	}
}

// TestDetectsBatchCancelTrim pins the cancellation contract: the returned
// slice covers only fault sets that were actually evaluated, so a caller
// can never misread an unevaluated entry as "not detected".
func TestDetectsBatchCancelTrim(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	s := MustNew(a)
	cv := s.Compile([]*Vector{lPath(a), columnCut(a, 2)})
	var sets [][]Fault
	for _, f := range AllSingleFaults(a) {
		sets = append(sets, []Fault{f})
	}

	// A context cancelled before any work: nothing was evaluated, so the
	// result must be empty, not a zero-filled slice.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := cv.DetectsBatch(ctx, sets, 2)
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if len(out) != 0 {
		t.Fatalf("cancelled-before-start batch returned %d entries, want 0", len(out))
	}

	// A context cancelled mid-run: whatever prefix is returned must match
	// the scalar reference entry for entry.
	want := cv.detectsBatchScalar(sets)
	ctx, cancel = context.WithCancel(context.Background())
	go cancel()
	out, err = cv.DetectsBatch(ctx, sets, 2)
	if err != nil && len(out)%64 != 0 && len(out) != len(sets) {
		t.Fatalf("trimmed length %d is not a whole-word prefix of %d", len(out), len(sets))
	}
	if err == nil && len(out) != len(sets) {
		t.Fatalf("uncancelled batch returned %d entries, want %d", len(out), len(sets))
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("entry %d of returned prefix diverges from scalar reference", i)
		}
	}
}

// TestCampaignOnTrialsFinalCall pins the progress contract on both engines:
// reported counts are strictly increasing and a completed campaign always
// ends with a call at exactly (Trials, Trials), regardless of worker count.
func TestCampaignOnTrialsFinalCall(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	s := MustNew(a)
	vecs := []*Vector{lPath(a), columnCut(a, 2)}
	const trials = 333 // not a multiple of the word or block size
	for _, engine := range []CampaignEngine{EngineScalar, EngineBitParallel} {
		for _, workers := range []int{1, 4} {
			var calls [][2]int
			cfg := CampaignConfig{
				Trials: trials, NumFaults: 2, Seed: 5, Workers: workers, Engine: engine,
				// OnTrials calls are serialized by the engine; no lock needed.
				OnTrials: func(done, total int) { calls = append(calls, [2]int{done, total}) },
			}
			if _, err := s.RunCampaign(context.Background(), vecs, cfg); err != nil {
				t.Fatal(err)
			}
			if len(calls) == 0 {
				t.Fatalf("engine=%v workers=%d: OnTrials never called", engine, workers)
			}
			prev := 0
			for _, c := range calls {
				if c[0] <= prev || c[1] != trials {
					t.Fatalf("engine=%v workers=%d: non-monotonic or mis-totaled call %v after %d", engine, workers, c, prev)
				}
				prev = c[0]
			}
			if last := calls[len(calls)-1]; last != [2]int{trials, trials} {
				t.Fatalf("engine=%v workers=%d: final call %v, want (%d, %d)", engine, workers, last, trials, trials)
			}
		}
	}
}

// TestCampaignUnknownEngine ensures an out-of-range engine value is an
// error, not silently the default.
func TestCampaignUnknownEngine(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	_, err := s.RunCampaign(context.Background(), []*Vector{lPath(a)},
		CampaignConfig{Trials: 10, NumFaults: 1, Engine: CampaignEngine(99)})
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestSweepWordMatchesScalarPerLane drives sweepWord directly with fewer
// than 64 lanes and checks each lane's first-detecting index against the
// scalar detectingVector, including the masked-out inactive lanes.
func TestSweepWordMatchesScalarPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		s, vecs, cfg := randomCampaignCase(rng)
		cv := s.Compile(vecs)
		normal := s.arr.NormalValves()
		fs := newFaultScratch(normal, cfg)
		n := 1 + rng.Intn(64)
		lanes := make([][]Fault, n)
		for k := range lanes {
			lanes[k] = append([]Fault(nil), randomFaultsInto(rng, normal, cfg, fs)...)
		}
		ws := s.getWordScratch()
		cv.sweepWord(ws, lanes, laneMask(n))
		sc := s.getScratch()
		for k := 0; k < n; k++ {
			if want := cv.detectingVector(sc, lanes[k]); int32(want) != ws.firstIdx[k] {
				t.Fatalf("case %d lane %d/%d: sweepWord %d, scalar %d", i, k, n, ws.firstIdx[k], want)
			}
		}
		s.putScratch(sc)
		s.putWordScratch(ws)
	}
}
