// Bit-parallel (PPSFP) fault evaluation: the classic parallel-pattern
// single-fault-propagation trick from the ATPG literature, adapted to the
// FPVA pressure model. Valve open/closed state for 64 independent fault
// universes is packed into one uint64 per valve (bit k = universe k), and a
// masked multi-source BFS (graph.BFSWordsInto) propagates pressure for all
// 64 universes in a single pass. A campaign or batch sweep therefore pays
// one graph traversal per (vector, 64 universes) instead of per
// (vector, universe).
//
// Determinism: the word engine evaluates exactly the same per-universe
// physics as the scalar engine — loadWord precomputes, per lane, the same
// kind-guarded leak-then-stuck-at overlay applyFaults performs, and lane k
// of the BFS word fixpoint equals the boolean BFS under lane k's edge set —
// so first-detecting vector indices, and with them Detected, Sims and the
// escape list, are bit-identical to the scalar engine. Trials map to
// (word, lane) as trial = word*64 + lane; the final partial word is the
// remainder block, its unused lanes masked out.
package sim

import (
	"math/bits"

	"repro/internal/grid"
)

// CampaignEngine selects how RunCampaign evaluates trials.
type CampaignEngine uint8

const (
	// EngineAuto picks the best engine (currently the bit-parallel one).
	EngineAuto CampaignEngine = iota
	// EngineBitParallel packs 64 trials' fault universes into uint64 lanes
	// and propagates pressure for all of them per BFS pass (PPSFP).
	EngineBitParallel
	// EngineScalar evaluates one fault universe at a time; kept as the
	// differential reference for the bit-parallel engine.
	EngineScalar
)

func (e CampaignEngine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBitParallel:
		return "bit-parallel"
	case EngineScalar:
		return "scalar"
	}
	return "unknown"
}

// laneMask returns the mask of the first n lanes (n in [0, 64]).
//
//fpva:allocfree
func laneMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// wordScratch is the per-goroutine working set of bit-parallel evaluation:
// the word-packed effective valve state, BFS reach/ring-queue buffers, the
// per-lane first-detecting-vector result, and the word's precomputed fault
// overlay (loadWord). Scratches cycle through Simulator.wordScratches so
// the steady state allocates nothing.
type wordScratch struct {
	eff      []uint64 // per valve: mask of universes in which it is open
	edgeEff  []uint64 // per graph edge: eff of its valve, fed to the BFS
	reach    []uint64 // per graph node: mask of universes with pressure
	queue    []int
	inq      []bool
	starts   []int // propagation start nodes for the reachability fixpoint
	firstIdx [64]int32

	// The word's fault overlay, rebuilt once per 64-universe word: per
	// valve, the lanes in which it is stuck at 0 / stuck at 1, the lanes
	// in which it is faulted at all (laneBits — lets the sweep skip valves
	// whose lanes have all detected), plus the lane-tagged leak couplings.
	// touched lists the valves with any overlay bits (mark deduplicates it)
	// so resets touch only what was used.
	sa0, sa1 []uint64
	laneBits []uint64
	mark     []bool
	touched  []int32
	leaks    []wordLeak
	// alive is the subset of touched with at least one still-pending faulty
	// lane; the sweep compacts it after each detection so the per-vector
	// overlay work shrinks as lanes resolve.
	alive []int32
}

// wordLeak is one ControlLeak fault of one lane: actuating either valve
// closes both in that lane.
type wordLeak struct {
	a, b grid.ValveID
	mask uint64
}

func (s *Simulator) newWordScratch() *wordScratch {
	nv := s.arr.NumValves()
	return &wordScratch{
		eff:      make([]uint64, nv),
		edgeEff:  make([]uint64, s.g.M()),
		reach:    make([]uint64, s.g.N()),
		queue:    make([]int, s.g.N()),
		inq:      make([]bool, s.g.N()),
		sa0:      make([]uint64, nv),
		sa1:      make([]uint64, nv),
		laneBits: make([]uint64, nv),
		mark:     make([]bool, nv),
	}
}

func (s *Simulator) getWordScratch() *wordScratch   { return s.wordScratches.Get().(*wordScratch) }
func (s *Simulator) putWordScratch(ws *wordScratch) { s.wordScratches.Put(ws) }

// touch records valve v in the overlay reset list exactly once.
//
//fpva:allocfree
func (ws *wordScratch) touch(v grid.ValveID) {
	if !ws.mark[v] {
		ws.mark[v] = true
		ws.touched = append(ws.touched, int32(v))
	}
}

// loadWord precomputes the word's fault overlay from up to 64 per-lane
// fault lists. The per-fault kind guards run here once per word instead of
// once per (vector, lane, fault); the per-vector application in sweepWord
// is then pure word arithmetic. The overlay encodes the scalar applyFaults
// semantics — leakage first, stuck-at overriding leakage — keep the two in
// lockstep. (For the contradictory input of stuck-at-0 and stuck-at-1 on
// one valve in one set, which no generator produces, stuck-at-1 wins.)
//
//fpva:allocfree
func (s *Simulator) loadWord(ws *wordScratch, faultsPerLane [][]Fault) {
	for _, v := range ws.touched {
		ws.sa0[v], ws.sa1[v], ws.laneBits[v] = 0, 0, 0
		ws.mark[v] = false
	}
	ws.touched = ws.touched[:0]
	ws.leaks = ws.leaks[:0]
	for k, faults := range faultsPerLane {
		bit := uint64(1) << k
		for _, f := range faults {
			switch f.Kind {
			case StuckAt0:
				if s.isNormal[f.A] {
					ws.sa0[f.A] |= bit
					ws.laneBits[f.A] |= bit
					ws.touch(f.A)
				}
			case StuckAt1:
				if s.isNormal[f.A] {
					ws.sa1[f.A] |= bit
					ws.laneBits[f.A] |= bit
					ws.touch(f.A)
				}
			case ControlLeak:
				// Channel and PortOpen edges have no control channel to
				// couple; the scalar branch skips them identically.
				if s.isNormal[f.A] && s.isNormal[f.B] {
					ws.leaks = append(ws.leaks, wordLeak{f.A, f.B, bit})
					ws.laneBits[f.A] |= bit
					ws.laneBits[f.B] |= bit
					ws.touch(f.A)
					ws.touch(f.B)
				}
			}
		}
	}
}

// sweepWord evaluates up to 64 fault universes (one per lane of
// faultsPerLane, lane k active when bit k of active is set) against the
// compiled vectors and writes, per lane, the index of the first detecting
// vector into ws.firstIdx (-1 when no vector detects). The sweep stops as
// soon as every active lane has detected, so per-lane work matches the
// scalar engine's first-detection early exit.
//
//fpva:allocfree
func (cv *CompiledVectors) sweepWord(ws *wordScratch, faultsPerLane [][]Fault, active uint64) {
	s := cv.s
	s.loadWord(ws, faultsPerLane)
	for k := range ws.firstIdx {
		ws.firstIdx[k] = -1
	}
	pending := active
	ws.alive = append(ws.alive[:0], ws.touched...)
	for i, vec := range cv.vecs {
		if pending == 0 {
			return
		}
		// Overlay the word's fault masks on the faulty valves of vector i's
		// cached fault-free state. Only valves on the alive list — those
		// with a pending faulty lane — participate (a valve's effect is
		// confined to its laneBits), so the per-vector work shrinks as
		// lanes detect. Without leak couplings the overlay is computed
		// straight from the cached base words; leak faults first restore
		// and adjust eff per valve, never wholesale — stale words on dead
		// valves are not read for pending lanes.
		base := cv.baseWords[i]
		eff := ws.eff
		detC := cv.detClosure[i]
		detO := cv.detOpen[i]
		leaky := len(ws.leaks) > 0
		if leaky {
			for _, v := range ws.alive {
				eff[v] = base[v]
			}
			for _, lk := range ws.leaks {
				if lk.mask&pending != 0 && (!vec.open[lk.a] || !vec.open[lk.b]) {
					eff[lk.a] &^= lk.mask
					eff[lk.b] &^= lk.mask
				}
			}
		}
		var changed, closedAny, closedMulti, addAny, addMulti, sureC, sureA uint64
		for _, v := range ws.alive {
			src := base[v]
			if leaky {
				src = eff[v]
			}
			w := (src &^ ws.sa0[v]) | ws.sa1[v]
			eff[v] = w
			clo := base[v] &^ w
			add := w &^ base[v]
			changed |= clo | add
			closedMulti |= closedAny & clo
			closedAny |= clo
			addMulti |= addAny & add
			addAny |= add
			if clo != 0 && (detC[v>>6]>>(uint(v)&63))&1 != 0 {
				sureC |= clo
			}
			if add != 0 && (detO[v>>6]>>(uint(v)&63))&1 != 0 {
				sureA |= add
			}
		}
		// Lanes whose physical state equals the fault-free one reproduce
		// the golden readings by construction, and lanes that already
		// detected need no answer.
		m := changed & pending
		if m == 0 {
			continue
		}
		// Closing a valve only ever removes reachability and opening one
		// only ever adds it, so the single-flip tables settle most lanes
		// without propagation: a lane that only closes valves is certainly
		// detected if any one of its closures alone changes the readings
		// (closing more can only lose further pressure), and certainly
		// missed if its single closure is unmarked; the same holds,
		// mirrored, for lanes that only open valves. A lane that closes
		// one unmarked valve AND opens one unmarked valve is also certainly
		// missed: its sink readings are sandwiched between the closure-only
		// and open-only universes, both of which equal the golden ones.
		// Only the remaining lanes genuinely need pressure propagation.
		cOnly := closedAny &^ addAny
		aOnly := addAny &^ closedAny
		singleC := closedAny &^ closedMulti &^ sureC
		singleA := addAny &^ addMulti &^ sureA
		sure := (sureC&cOnly | sureA&aOnly) & m
		undet := (singleC&^addAny | singleA&^closedAny | singleC&singleA) & m
		diff := sure
		mProp := m &^ sure &^ undet
		if mProp != 0 {
			// Split the residual lanes by how their network differs from
			// the fault-free one. Lanes that only OPEN extra valves (mAdd)
			// start from the exact base reachability and grow incrementally
			// from the newly opened edges — usually the fixpoint doesn't
			// spread at all. Lanes that close any open valve (mRem) can
			// lose reachability and recompute from the sources.
			mRem := closedAny & mProp
			mAdd := mProp &^ mRem
			reach := ws.reach
			if mAdd != 0 {
				br := cv.baseReach[i]
				for n := range reach {
					reach[n] = br[n] & mAdd
				}
			} else {
				for n := range reach {
					reach[n] = 0
				}
			}
			ws.starts = ws.starts[:0]
			if mRem != 0 {
				for _, sn := range s.srcNodes {
					reach[sn] |= mRem
					ws.starts = append(ws.starts, sn)
				}
			}
			if mAdd != 0 {
				for _, v := range ws.alive {
					if (eff[v]&^base[v])&mAdd != 0 {
						ws.starts = append(ws.starts, s.valveEnds[v]...)
					}
				}
			}
			// Patch only the faulted valves with a propagating lane over the
			// cached fault-free edge words: a dead valve is fault-free in
			// every mProp lane, and lanes outside mProp never propagate
			// (their reach seeds are zero), so stale bits there are harmless.
			copy(ws.edgeEff, cv.edgeWords[i])
			for _, v := range ws.alive {
				if ws.laneBits[v]&mProp == 0 {
					continue
				}
				w := eff[v]
				for _, e := range s.valveEdges[v] {
					ws.edgeEff[e] = w
				}
			}
			reach = s.g.RelaxWordsInto(reach, ws.queue, ws.inq, ws.starts, ws.edgeEff)
			golden := cv.golden[i]
			for j, snk := range s.sinkNodes {
				g := uint64(0)
				if golden[j] {
					g = ^uint64(0)
				}
				diff |= (reach[snk] ^ g) & mProp
			}
		}
		if diff != 0 {
			for t := diff; t != 0; t &= t - 1 {
				ws.firstIdx[bits.TrailingZeros64(t)] = int32(i)
			}
			pending &^= diff
			na := ws.alive[:0]
			for _, v := range ws.alive {
				if ws.laneBits[v]&pending != 0 {
					na = append(na, v)
				}
			}
			ws.alive = na
		}
	}
}

// wordFaultScratch holds one worker's 64 per-lane fault draws, backed by a
// single slab so a word's draws perform no allocation after construction.
type wordFaultScratch struct {
	fs    *faultScratch
	lanes [64][]Fault
}

func newWordFaultScratch(normal []grid.ValveID, cfg CampaignConfig) *wordFaultScratch {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	if n < 0 {
		n = 0
	}
	w := &wordFaultScratch{fs: newFaultScratch(normal, cfg)}
	backing := make([]Fault, 64*n)
	for k := range w.lanes {
		w.lanes[k] = backing[k*n : k*n : (k+1)*n]
	}
	return w
}
