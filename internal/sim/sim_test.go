package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// lPath builds the canonical L-shaped flow path on a standard array: east
// along row 0, then south along the last column to the sink.
func lPath(a *grid.Array) *Vector {
	v := NewVector(a, FlowPath, "L")
	for c := 1; c < a.NC(); c++ {
		v.SetOpen(a.HValve(0, c), true)
	}
	for r := 1; r < a.NR(); r++ {
		v.SetOpen(a.VValve(r, a.NC()-1), true)
	}
	return v
}

// columnCut closes the vertical line of H valves at column boundary c and
// opens every other Normal valve.
func columnCut(a *grid.Array, c int) *Vector {
	v := NewVector(a, CutSet, "col-cut")
	for _, id := range a.NormalValves() {
		v.SetOpen(id, true)
	}
	for r := 0; r < a.NR(); r++ {
		if id := a.HValve(r, c); a.Kind(id) == grid.Normal {
			v.SetOpen(id, false)
		}
	}
	return v
}

func TestFaultFreeReadings(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	if got := s.Readings(lPath(a), nil); len(got) != 1 || !got[0] {
		t.Errorf("L path readings %v, want [true]", got)
	}
	closed := NewVector(a, Custom, "all-closed")
	if got := s.Readings(closed, nil); got[0] {
		t.Error("all-closed vector must not pressurize the sink")
	}
}

func TestStuckAt0OnPath(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vec := lPath(a)
	f := []Fault{{Kind: StuckAt0, A: a.HValve(0, 1)}}
	if got := s.Readings(vec, f); got[0] {
		t.Error("stuck-at-0 on the path should kill sink pressure")
	}
	if !s.Detects([]*Vector{vec}, f) {
		t.Error("Detects should report the on-path stuck-at-0")
	}
}

func TestStuckAt0OffPathUndetectedByPath(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vec := lPath(a)
	f := []Fault{{Kind: StuckAt0, A: a.VValve(1, 0)}} // far from the L path
	if s.Detects([]*Vector{vec}, f) {
		t.Error("off-path stuck-at-0 must not change this vector's readings")
	}
}

func TestStuckAt1DetectedByCut(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	cut := columnCut(a, 2)
	if err := s.VerifyCutVector(cut); err != nil {
		t.Fatalf("cut invalid: %v", err)
	}
	for r := 0; r < 3; r++ {
		f := []Fault{{Kind: StuckAt1, A: a.HValve(r, 2)}}
		if got := s.Readings(cut, f); !got[0] {
			t.Errorf("stuck-at-1 on cut valve H(%d,2) should leak pressure to the sink", r)
		}
	}
	// Stuck-at-1 elsewhere must not break the cut.
	f := []Fault{{Kind: StuckAt1, A: a.HValve(0, 1)}}
	if got := s.Readings(cut, f); got[0] {
		t.Error("stuck-at-1 off the cut must stay blocked")
	}
}

func TestControlLeak(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vec := lPath(a)
	onPath := a.HValve(0, 1)
	offPath := a.VValve(1, 0) // commanded closed in the path vector
	// Leak couples the off-path (closed) valve with the on-path valve:
	// commanding offPath closed also closes onPath, killing the pressure.
	f := []Fault{{Kind: ControlLeak, A: offPath, B: onPath}}
	if got := s.Readings(vec, f); got[0] {
		t.Error("control leak should close the on-path partner")
	}
	// If both partners are commanded open, the leak is dormant.
	both := vec.Clone()
	both.SetOpen(offPath, true)
	if got := s.Readings(both, f); !got[0] {
		t.Error("leak with both partners open must be dormant")
	}
}

func TestStuckAt1BeatsControlLeak(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vec := lPath(a)
	onPath := a.HValve(0, 1)
	offPath := a.VValve(1, 0)
	f := []Fault{
		{Kind: ControlLeak, A: offPath, B: onPath},
		{Kind: StuckAt1, A: onPath}, // physically cannot close
	}
	if got := s.Readings(vec, f); !got[0] {
		t.Error("stuck-at-1 valve must stay open despite the leak")
	}
}

func TestChannelAlwaysOpen(t *testing.T) {
	a := grid.MustNewStandard(1, 4)
	if _, err := a.SetChannelH(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	s := MustNew(a)
	vec := NewVector(a, FlowPath, "via-channel")
	vec.SetOpen(a.HValve(0, 1), true) // the only remaining Normal valve
	if got := s.Readings(vec, nil); !got[0] {
		t.Error("channel edges must pass pressure without being commanded")
	}
}

func TestObstacleBlocks(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	if _, err := a.SetObstacle(1, 1); err != nil {
		t.Fatal(err)
	}
	s := MustNew(a)
	all := NewVector(a, Custom, "all-open")
	for _, id := range a.NormalValves() {
		all.SetOpen(id, true)
	}
	// Pressure everywhere except the obstacle cell: sink still reachable
	// around the obstacle.
	if got := s.Readings(all, nil); !got[0] {
		t.Error("sink should be reachable around the obstacle")
	}
}

func TestMultipleSinks(t *testing.T) {
	a := grid.MustNew(2, 2)
	if err := a.AddSource("s", a.HValve(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSink("m1", a.HValve(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSink("m2", a.HValve(1, 2)); err != nil {
		t.Fatal(err)
	}
	s := MustNew(a)
	if got := s.SinkNames(); len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Fatalf("sink names %v", got)
	}
	vec := NewVector(a, Custom, "top-row")
	vec.SetOpen(a.HValve(0, 1), true)
	got := s.Readings(vec, nil)
	if !got[0] || got[1] {
		t.Errorf("readings %v, want [true false]", got)
	}
}

func TestDetectingVector(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	vecs := []*Vector{columnCut(a, 1), lPath(a)}
	f := []Fault{{Kind: StuckAt0, A: a.HValve(0, 1)}}
	// The cut vector cannot see a stuck-at-0; the path vector can.
	if got := s.DetectingVector(vecs, f); got != 1 {
		t.Errorf("DetectingVector = %d, want 1", got)
	}
	if got := s.DetectingVector(vecs[:1], f); got != -1 {
		t.Errorf("cut-only DetectingVector = %d, want -1", got)
	}
}

func TestVerifyPathVector(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	if err := s.VerifyPathVector(lPath(a)); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	empty := NewVector(a, FlowPath, "empty")
	if err := s.VerifyPathVector(empty); err == nil {
		t.Error("empty path accepted")
	}
	// A path that never reaches the sink.
	dangling := NewVector(a, FlowPath, "dangling")
	dangling.SetOpen(a.HValve(0, 1), true)
	if err := s.VerifyPathVector(dangling); err == nil {
		t.Error("dangling path accepted")
	}
}

func TestVerifyPathVectorRejectsBranch(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	branchy := lPath(a)
	// A third open valve at cell (0,1) makes it touch 3 open valves.
	branchy.SetOpen(a.VValve(1, 1), true)
	if err := s.VerifyPathVector(branchy); err == nil {
		t.Error("branching path accepted")
	}
}

func TestVerifyPathVectorRejectsDetachedLoop(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	loopy := lPath(a)
	// A 2x1-cell loop away from the path: cells (1,0),(2,0),(1,1),(2,1).
	loopy.SetOpen(a.HValve(1, 1), true) // (1,0)-(1,1)
	loopy.SetOpen(a.HValve(2, 1), true) // (2,0)-(2,1)
	loopy.SetOpen(a.VValve(2, 0), true) // (1,0)-(2,0)
	loopy.SetOpen(a.VValve(2, 1), true) // (1,1)-(2,1)
	if err := s.VerifyPathVector(loopy); err == nil {
		t.Error("path plus detached loop accepted")
	}
}

func TestVerifyPathVectorRejectsDanglingSpur(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	// Two disjoint segments: the valid L path plus one stray interior valve
	// whose segment ends away from any port or channel.
	spur := lPath(a)
	spur.SetOpen(a.VValve(2, 0), true) // (1,0)-(2,0), both interior, deg 1
	if err := s.VerifyPathVector(spur); err == nil {
		t.Error("path with dangling spur accepted")
	}
}

func TestVerifyCutVector(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	if err := s.VerifyCutVector(columnCut(a, 2)); err != nil {
		t.Errorf("valid cut rejected: %v", err)
	}
	leaky := columnCut(a, 2)
	leaky.SetOpen(a.HValve(1, 2), true) // hole in the cut
	if err := s.VerifyCutVector(leaky); err == nil {
		t.Error("leaky cut accepted")
	}
}

func TestCampaignDetectsWithGoodVectors(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	// A small complete-ish set: the L path plus one path covering the rest,
	// plus all column and row cuts. Rather than hand-build completeness,
	// just assert the campaign runs deterministically and detection is
	// counted consistently.
	vecs := []*Vector{lPath(a), columnCut(a, 1), columnCut(a, 2)}
	r1 := mustCampaign(t, s, vecs, CampaignConfig{Trials: 200, NumFaults: 1, Seed: 5})
	r2 := mustCampaign(t, s, vecs, CampaignConfig{Trials: 200, NumFaults: 1, Seed: 5})
	if r1.Detected != r2.Detected {
		t.Errorf("campaign not deterministic: %d vs %d", r1.Detected, r2.Detected)
	}
	if r1.Trials != 200 {
		t.Errorf("trials %d", r1.Trials)
	}
	if r1.DetectionRate() < 0 || r1.DetectionRate() > 1 {
		t.Errorf("rate %v", r1.DetectionRate())
	}
	// Escapes recorded when not detected.
	if r1.Detected < r1.Trials && len(r1.Escapes) == 0 {
		t.Error("escapes not recorded")
	}
}

func TestCampaignWithLeakPairs(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	s := MustNew(a)
	pairs := [][2]grid.ValveID{{a.HValve(0, 1), a.HValve(1, 1)}}
	res := mustCampaign(t, s, []*Vector{lPath(a)}, CampaignConfig{
		Trials: 100, NumFaults: 2, Seed: 9, LeakPairs: pairs,
	})
	if res.Trials != 100 {
		t.Errorf("trials %d", res.Trials)
	}
}

func TestAllSingleFaults(t *testing.T) {
	a := grid.MustNewStandard(2, 2)
	fs := AllSingleFaults(a)
	if len(fs) != 2*a.NumNormal() {
		t.Errorf("%d faults, want %d", len(fs), 2*a.NumNormal())
	}
}

func TestSortFaults(t *testing.T) {
	fs := []Fault{
		{Kind: StuckAt1, A: 3},
		{Kind: StuckAt0, A: 9},
		{Kind: StuckAt0, A: 2},
		{Kind: ControlLeak, A: 2, B: 5},
		{Kind: ControlLeak, A: 2, B: 1},
	}
	SortFaults(fs)
	want := []Fault{
		{Kind: StuckAt0, A: 2},
		{Kind: StuckAt0, A: 9},
		{Kind: StuckAt1, A: 3},
		{Kind: ControlLeak, A: 2, B: 1},
		{Kind: ControlLeak, A: 2, B: 5},
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("order %v", fs)
		}
	}
}

func TestRandomFaultsDistinctValves(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		fs := randomFaults(rng, a.NormalValves(), CampaignConfig{NumFaults: 5})
		seen := make(map[grid.ValveID]bool)
		for _, f := range fs {
			if seen[f.A] {
				t.Fatalf("trial %d: duplicate valve %d", trial, f.A)
			}
			seen[f.A] = true
		}
		if len(fs) != 5 {
			t.Fatalf("trial %d: %d faults", trial, len(fs))
		}
	}
}

// TestQuickMaskedPairStillMaskedBothWays encodes the Fig. 5(c)/(d) masking
// scenario: a stuck-at-0 on the open path plus a stuck-at-1 elsewhere can
// mask; detection must at least be monotone in the sense that removing all
// faults always yields fault-free readings.
func TestQuickFaultFreeIsBaseline(t *testing.T) {
	a := grid.MustNewStandard(3, 4)
	s := MustNew(a)
	normal := a.NormalValves()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := NewVector(a, Custom, "rand")
		for _, id := range normal {
			vec.SetOpen(id, rng.Intn(2) == 1)
		}
		base := s.Readings(vec, nil)
		again := s.Readings(vec, []Fault{})
		for i := range base {
			if base[i] != again[i] {
				return false
			}
		}
		return !s.Detects([]*Vector{vec}, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickStuckAt1NeverReducesReach: opening extra valves can only extend
// reachability — a stuck-at-1 fault must never turn a pressurized sink dark.
func TestQuickStuckAt1NeverReducesReach(t *testing.T) {
	a := grid.MustNewStandard(3, 4)
	s := MustNew(a)
	normal := a.NormalValves()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := NewVector(a, Custom, "rand")
		for _, id := range normal {
			vec.SetOpen(id, rng.Intn(2) == 1)
		}
		fault := []Fault{{Kind: StuckAt1, A: normal[rng.Intn(len(normal))]}}
		base := s.Readings(vec, nil)
		faulty := s.Readings(vec, fault)
		for i := range base {
			if base[i] && !faulty[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	if FlowPath.String() == "" || CutSet.String() == "" || Leakage.String() == "" || Custom.String() == "" {
		t.Error("VectorKind strings")
	}
	if StuckAt0.String() != "stuck-at-0" || StuckAt1.String() != "stuck-at-1" {
		t.Error("FaultKind strings")
	}
	f := Fault{Kind: ControlLeak, A: 1, B: 2}
	if f.String() != "control-leak(1,2)" {
		t.Errorf("fault string %q", f.String())
	}
}

// TestControlLeakIgnoresNonNormalValves pins the fault-model guard: a
// ControlLeak naming a Channel or PortOpen valve on either side is
// physically meaningless (those edges have no control channel) and must not
// force an always-open edge closed through the public Readings/Detects
// surface.
func TestControlLeakIgnoresNonNormalValves(t *testing.T) {
	a := grid.MustNewStandard(1, 4)
	if _, err := a.SetChannelH(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	s := MustNew(a)
	normal := a.HValve(0, 1)  // the only remaining Normal valve
	channel := a.HValve(0, 2) // transportation channel, always open
	port := a.HValve(0, 0)    // source port edge, always open
	vec := NewVector(a, FlowPath, "via-channel")
	vec.SetOpen(normal, true)
	base := s.Readings(vec, nil)
	if len(base) != 1 || !base[0] {
		t.Fatalf("fault-free readings %v, want [true]", base)
	}
	for _, faults := range [][]Fault{
		{{Kind: ControlLeak, A: channel, B: normal}},
		{{Kind: ControlLeak, A: normal, B: channel}},
		{{Kind: ControlLeak, A: port, B: normal}},
		{{Kind: ControlLeak, A: channel, B: port}},
	} {
		if got := s.Readings(vec, faults); !got[0] {
			t.Errorf("leak %v force-closed a non-Normal valve: readings %v", faults[0], got)
		}
		if s.Detects([]*Vector{vec}, faults) {
			t.Errorf("leak %v on a non-Normal valve must be undetectable", faults[0])
		}
	}
	// The guard must not weaken real leaks: both partners Normal still trips.
	a2 := grid.MustNewStandard(3, 3)
	s2 := MustNew(a2)
	vec2 := lPath(a2)
	real := []Fault{{Kind: ControlLeak, A: a2.VValve(1, 0), B: a2.HValve(0, 1)}}
	if got := s2.Readings(vec2, real); got[0] {
		t.Error("Normal-Normal leak no longer closes its partner")
	}
}

// TestVerifyPathVectorSplitSegmentBothEndpoints exercises the loop/split
// error through the endpoint-pressurization scan: a degree-valid segment
// whose both termini are channel cells, disconnected from every source,
// must be rejected even though the degree and terminus checks pass.
func TestVerifyPathVectorSplitSegmentBothEndpoints(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	// Channel along row 3, cells (3,0)..(3,2): term cells away from the path.
	if _, err := a.SetChannelH(3, 0, 2); err != nil {
		t.Fatal(err)
	}
	s := MustNew(a)
	split := lPath(a)
	// Detached U: (3,0)-(2,0)-(2,1)-(3,1). Interior cells have degree 2 and
	// both degree-1 ends sit on channel cells, so only the pressurization
	// scan can catch it.
	split.SetOpen(a.VValve(3, 0), true)
	split.SetOpen(a.HValve(2, 1), true)
	split.SetOpen(a.VValve(3, 1), true)
	err := s.VerifyPathVector(split)
	if err == nil {
		t.Fatal("split segment accepted")
	}
	if want := "loops or is split"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
	// The valid L path alone still verifies on the channel-bearing array.
	if err := s.VerifyPathVector(lPath(a)); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
}
