package sim

import (
	"context"
	"testing"

	"repro/internal/grid"
)

// TestCampaignInnerLoopAllocationFree pins the campaign-engine guarantee:
// the per-trial work (fault draw, state overlay, BFS, golden compare) runs
// entirely on reusable scratch. The campaign's total allocation count is a
// small constant — independent of the trial count — and a single compiled
// detection probe allocates nothing at all.
func TestCampaignInnerLoopAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	a := grid.MustNewStandard(5, 5)
	s := MustNew(a)
	vecs := []*Vector{lPath(a), columnCut(a, 2), columnCut(a, 4)}
	cv := s.Compile(vecs)

	faults := []Fault{{Kind: StuckAt0, A: a.HValve(0, 1)}}
	cv.Detects(faults) // warm the scratch pool
	if allocs := testing.AllocsPerRun(200, func() { cv.Detects(faults) }); allocs != 0 {
		t.Fatalf("compiled Detects allocates %v objects per probe, want 0", allocs)
	}

	run := func(trials int) float64 {
		cfg := CampaignConfig{Trials: trials, NumFaults: 3, Seed: 7, Workers: 1}
		if _, err := cv.RunCampaign(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := cv.RunCampaign(context.Background(), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(64), run(2048)
	// The fixed overhead (RNG, scratch struct, result assembly) is allowed;
	// anything proportional to trials is a regression of the inner loop.
	if large > small+8 {
		t.Fatalf("campaign allocations scale with trials: %v at 64 trials, %v at 2048", small, large)
	}
	// ~44 today: RNG + scratch + the closures and boxed counters of the
	// worker machinery, all per campaign, none per trial.
	if large > 64 {
		t.Fatalf("campaign fixed allocation overhead too high: %v objects", large)
	}
}
