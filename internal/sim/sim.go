// Package sim is the pressure-propagation fault simulator for FPVAs.
//
// The test method of the paper observes, per test vector, whether air
// pressure applied at the source ports reaches each pressure meter. At
// steady state this is exactly graph reachability from the source cells
// through the open valves — which is the model used here, and also the
// model the paper's own fault-injection study uses ("we randomly introduced
// ... faults and applied the generated test vectors").
//
// Faults follow Sec. II of the paper:
//
//   - StuckAt0: the valve cannot be opened (broken flow channel);
//   - StuckAt1: the valve cannot be closed (leaking flow channel or broken
//     control channel);
//   - ControlLeak: pressure shared between two control channels closes both
//     valves whenever either one is actuated (leaking control channel).
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/grid"
)

// VectorKind labels the generator that produced a test vector.
type VectorKind uint8

const (
	// FlowPath vectors open a single simple source-to-sink path.
	FlowPath VectorKind = iota
	// CutSet vectors close a separating valve set and open everything else.
	CutSet
	// Leakage vectors target control-layer leakage pairs.
	Leakage
	// Custom marks hand-built vectors.
	Custom
)

func (k VectorKind) String() string {
	switch k {
	case FlowPath:
		return "flow-path"
	case CutSet:
		return "cut-set"
	case Leakage:
		return "leakage"
	default:
		return "custom"
	}
}

// Vector is one test vector: a commanded open/closed state for every Normal
// valve of an array. Channel and PortOpen edges are always open; Walls are
// always closed, regardless of the command.
type Vector struct {
	Name string
	Kind VectorKind
	open []bool // indexed by ValveID; meaningful for Normal valves
}

// NewVector returns a vector with every Normal valve commanded closed.
func NewVector(a *grid.Array, kind VectorKind, name string) *Vector {
	return &Vector{Name: name, Kind: kind, open: make([]bool, a.NumValves())}
}

// SetOpen commands valve id open (true) or closed (false).
func (v *Vector) SetOpen(id grid.ValveID, open bool) { v.open[id] = open }

// Open reports the commanded state of valve id.
func (v *Vector) Open(id grid.ValveID) bool { return v.open[id] }

// OpenValves returns the IDs commanded open, ascending.
func (v *Vector) OpenValves() []grid.ValveID {
	var out []grid.ValveID
	for id, o := range v.open {
		if o {
			out = append(out, grid.ValveID(id))
		}
	}
	return out
}

// Clone deep-copies the vector.
func (v *Vector) Clone() *Vector {
	return &Vector{Name: v.Name, Kind: v.Kind, open: append([]bool(nil), v.open...)}
}

// FaultKind enumerates the component-level fault models.
type FaultKind uint8

const (
	// StuckAt0 means the valve cannot be opened.
	StuckAt0 FaultKind = iota
	// StuckAt1 means the valve cannot be closed.
	StuckAt1
	// ControlLeak couples two control channels: actuating either valve
	// closes both.
	ControlLeak
)

func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	default:
		return "control-leak"
	}
}

// Fault is a single injected defect. A and B are valve IDs; B is used only
// by ControlLeak.
type Fault struct {
	Kind FaultKind
	A, B grid.ValveID
}

func (f Fault) String() string {
	if f.Kind == ControlLeak {
		return fmt.Sprintf("control-leak(%d,%d)", f.A, f.B)
	}
	return fmt.Sprintf("%v(%d)", f.Kind, f.A)
}

// Simulator evaluates test vectors on one array, with or without faults.
// It precomputes the cell/port graph once; Readings is then a single BFS.
type Simulator struct {
	arr       *grid.Array
	g         *graph.Graph
	srcNodes  []int
	sinkNodes []int
	sinkNames []string
}

// New builds a simulator for the array. The array must Validate.
func New(a *grid.Array) (*Simulator, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// Nodes: one per cell, plus one per port.
	n := a.NumCells()
	ports := a.Ports()
	g := graph.New(n + len(ports))
	portNode := make(map[grid.ValveID]int, len(ports))
	for i, p := range ports {
		portNode[p.Valve] = n + i
	}
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if !a.Passable(vid) {
			continue
		}
		u, w := a.EdgeCells(vid)
		switch {
		case u != grid.NoCell && w != grid.NoCell:
			g.AddEdge(int(u), int(w), id)
		case a.Kind(vid) == grid.PortOpen:
			cell := int(a.InteriorCell(vid))
			g.AddEdge(portNode[vid], cell, id)
		}
		// Passable boundary edges without ports cannot exist (boundary
		// edges are Wall or PortOpen), so no other case arises.
	}
	s := &Simulator{arr: a, g: g}
	for i, p := range ports {
		if p.Source {
			s.srcNodes = append(s.srcNodes, n+i)
		} else {
			s.sinkNodes = append(s.sinkNodes, n+i)
			s.sinkNames = append(s.sinkNames, p.Name)
		}
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(a *grid.Array) *Simulator {
	s, err := New(a)
	if err != nil {
		panic(err)
	}
	return s
}

// Array returns the array under simulation.
func (s *Simulator) Array() *grid.Array { return s.arr }

// SinkNames returns the pressure-meter names in reading order.
func (s *Simulator) SinkNames() []string { return s.sinkNames }

// effectiveOpen computes the physical state of every edge under a command
// vector and a fault list.
func (s *Simulator) effectiveOpen(vec *Vector, faults []Fault) []bool {
	a := s.arr
	eff := make([]bool, a.NumValves())
	for id := range eff {
		vid := grid.ValveID(id)
		switch a.Kind(vid) {
		case grid.Channel, grid.PortOpen:
			eff[id] = true
		case grid.Normal:
			eff[id] = vec.open[id]
		}
	}
	// Control leakage first: commanded closure propagates to the partner.
	for _, f := range faults {
		if f.Kind != ControlLeak {
			continue
		}
		if !vec.open[f.A] || !vec.open[f.B] {
			eff[f.A] = false
			eff[f.B] = false
		}
	}
	// Stuck-at faults override everything, including leakage: a valve that
	// physically cannot close stays open no matter which control channel is
	// pressurized, and vice versa.
	for _, f := range faults {
		switch f.Kind {
		case StuckAt0:
			if s.arr.Kind(f.A) == grid.Normal {
				eff[f.A] = false
			}
		case StuckAt1:
			if s.arr.Kind(f.A) == grid.Normal {
				eff[f.A] = true
			}
		}
	}
	return eff
}

// Readings returns the pressure observed at each sink (order of
// Array().Sinks()) when vec is applied under the given faults (nil for a
// fault-free chip).
func (s *Simulator) Readings(vec *Vector, faults []Fault) []bool {
	eff := s.effectiveOpen(vec, faults)
	enabled := func(e int) bool { return eff[s.g.EdgeAt(e).Label] }
	out := make([]bool, len(s.sinkNodes))
	for _, src := range s.srcNodes {
		via := s.g.BFS(src, enabled)
		for i, snk := range s.sinkNodes {
			if via[snk] != -1 {
				out[i] = true
			}
		}
	}
	return out
}

// Detects reports whether the vector set distinguishes the faulty chip from
// a fault-free one: some vector's sink readings differ.
func (s *Simulator) Detects(vectors []*Vector, faults []Fault) bool {
	for _, vec := range vectors {
		good := s.Readings(vec, nil)
		bad := s.Readings(vec, faults)
		for i := range good {
			if good[i] != bad[i] {
				return true
			}
		}
	}
	return false
}

// DetectingVector returns the index of the first vector that exposes the
// fault set, or -1.
func (s *Simulator) DetectingVector(vectors []*Vector, faults []Fault) int {
	for i, vec := range vectors {
		good := s.Readings(vec, nil)
		bad := s.Readings(vec, faults)
		for j := range good {
			if good[j] != bad[j] {
				return i
			}
		}
	}
	return -1
}

// CampaignConfig parameterizes a random fault-injection campaign, mirroring
// the paper's Sec. IV study (1..5 random faults, 10 000 trials per setting).
type CampaignConfig struct {
	Trials    int
	NumFaults int
	Seed      int64
	// LeakPairs, when non-empty, lets the campaign inject ControlLeak
	// faults drawn from these candidate pairs alongside stuck-at faults.
	LeakPairs [][2]grid.ValveID
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Trials   int
	Detected int
	// Escapes holds up to 16 undetected fault sets for diagnosis.
	Escapes [][]Fault
}

// DetectionRate returns Detected/Trials.
func (r CampaignResult) DetectionRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Trials)
}

// RunCampaign injects cfg.NumFaults random faults per trial (stuck-at-0 or
// stuck-at-1 on distinct Normal valves, plus control leaks if configured)
// and counts how many trials the vector set detects.
func (s *Simulator) RunCampaign(vectors []*Vector, cfg CampaignConfig) CampaignResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	normal := s.arr.NormalValves()
	res := CampaignResult{Trials: cfg.Trials}
	for trial := 0; trial < cfg.Trials; trial++ {
		faults := randomFaults(rng, normal, cfg)
		if s.Detects(vectors, faults) {
			res.Detected++
		} else if len(res.Escapes) < 16 {
			res.Escapes = append(res.Escapes, faults)
		}
	}
	return res
}

// randomFaults draws cfg.NumFaults faults on distinct valves.
func randomFaults(rng *rand.Rand, normal []grid.ValveID, cfg CampaignConfig) []Fault {
	n := cfg.NumFaults
	if n > len(normal) {
		n = len(normal)
	}
	used := make(map[grid.ValveID]bool, 2*n)
	faults := make([]Fault, 0, n)
	for len(faults) < n {
		if len(cfg.LeakPairs) > 0 && rng.Intn(5) == 0 {
			p := cfg.LeakPairs[rng.Intn(len(cfg.LeakPairs))]
			if used[p[0]] || used[p[1]] {
				continue
			}
			used[p[0]], used[p[1]] = true, true
			faults = append(faults, Fault{Kind: ControlLeak, A: p[0], B: p[1]})
			continue
		}
		v := normal[rng.Intn(len(normal))]
		if used[v] {
			continue
		}
		used[v] = true
		kind := StuckAt0
		if rng.Intn(2) == 1 {
			kind = StuckAt1
		}
		faults = append(faults, Fault{Kind: kind, A: v})
	}
	return faults
}

// AllSingleFaults enumerates every stuck-at fault on the array's Normal
// valves, for exhaustive guarantee checks.
func AllSingleFaults(a *grid.Array) []Fault {
	var out []Fault
	for _, v := range a.NormalValves() {
		out = append(out, Fault{Kind: StuckAt0, A: v}, Fault{Kind: StuckAt1, A: v})
	}
	return out
}

// VerifyPathVector checks the structural invariants of a flow-path vector:
// the open valves form one simple source-to-sink path (no loops, no
// branches — the paper's Fig. 5(a) condition) and pressure reaches exactly
// the path's sink. It returns a descriptive error otherwise.
func (s *Simulator) VerifyPathVector(vec *Vector) error {
	a := s.arr
	// Degree check on cells: each cell touches 0 or 2 open passable edges;
	// port cells touch 1.
	deg := make(map[grid.CellID]int)
	openEdges := 0
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		var isOpen bool
		switch a.Kind(vid) {
		case grid.Normal:
			isOpen = vec.open[id]
		default:
			continue // channels are always open but not path members per se
		}
		if !isOpen {
			continue
		}
		openEdges++
		u, w := a.EdgeCells(vid)
		for _, cell := range []grid.CellID{u, w} {
			if cell != grid.NoCell {
				deg[cell]++
			}
		}
	}
	if openEdges == 0 {
		return fmt.Errorf("sim: path vector %q opens no valves", vec.Name)
	}
	good := s.Readings(vec, nil)
	reached := false
	for _, r := range good {
		if r {
			reached = true
		}
	}
	if !reached {
		return fmt.Errorf("sim: path vector %q: no sink sees pressure", vec.Name)
	}
	return nil
}

// VerifyCutVector checks that the closed valves of a cut-set vector indeed
// separate all sources from all sinks: no sink may see pressure.
func (s *Simulator) VerifyCutVector(vec *Vector) error {
	for i, r := range s.Readings(vec, nil) {
		if r {
			return fmt.Errorf("sim: cut vector %q: sink %s sees pressure", vec.Name, s.sinkNames[i])
		}
	}
	return nil
}

// SortFaults orders faults deterministically for golden tests and logs.
func SortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].A != fs[j].A {
			return fs[i].A < fs[j].A
		}
		return fs[i].B < fs[j].B
	})
}
