// Package sim is the pressure-propagation fault simulator for FPVAs.
//
// The test method of the paper observes, per test vector, whether air
// pressure applied at the source ports reaches each pressure meter. At
// steady state this is exactly graph reachability from the source cells
// through the open valves — which is the model used here, and also the
// model the paper's own fault-injection study uses ("we randomly introduced
// ... faults and applied the generated test vectors").
//
// Faults follow Sec. II of the paper:
//
//   - StuckAt0: the valve cannot be opened (broken flow channel);
//   - StuckAt1: the valve cannot be closed (leaking flow channel or broken
//     control channel);
//   - ControlLeak: pressure shared between two control channels closes both
//     valves whenever either one is actuated (leaking control channel).
package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/grid"
)

// VectorKind labels the generator that produced a test vector.
type VectorKind uint8

const (
	// FlowPath vectors open a single simple source-to-sink path.
	FlowPath VectorKind = iota
	// CutSet vectors close a separating valve set and open everything else.
	CutSet
	// Leakage vectors target control-layer leakage pairs.
	Leakage
	// Custom marks hand-built vectors.
	Custom
)

func (k VectorKind) String() string {
	switch k {
	case FlowPath:
		return "flow-path"
	case CutSet:
		return "cut-set"
	case Leakage:
		return "leakage"
	default:
		return "custom"
	}
}

// Vector is one test vector: a commanded open/closed state for every Normal
// valve of an array. Channel and PortOpen edges are always open; Walls are
// always closed, regardless of the command.
type Vector struct {
	Name string
	Kind VectorKind
	open []bool // indexed by ValveID; meaningful for Normal valves
}

// NewVector returns a vector with every Normal valve commanded closed.
func NewVector(a *grid.Array, kind VectorKind, name string) *Vector {
	return &Vector{Name: name, Kind: kind, open: make([]bool, a.NumValves())}
}

// SetOpen commands valve id open (true) or closed (false).
func (v *Vector) SetOpen(id grid.ValveID, open bool) { v.open[id] = open }

// Open reports the commanded state of valve id.
func (v *Vector) Open(id grid.ValveID) bool { return v.open[id] }

// OpenValves returns the IDs commanded open, ascending.
func (v *Vector) OpenValves() []grid.ValveID {
	var out []grid.ValveID
	for id, o := range v.open {
		if o {
			out = append(out, grid.ValveID(id))
		}
	}
	return out
}

// Clone deep-copies the vector.
func (v *Vector) Clone() *Vector {
	return &Vector{Name: v.Name, Kind: v.Kind, open: append([]bool(nil), v.open...)}
}

// FaultKind enumerates the component-level fault models.
type FaultKind uint8

const (
	// StuckAt0 means the valve cannot be opened.
	StuckAt0 FaultKind = iota
	// StuckAt1 means the valve cannot be closed.
	StuckAt1
	// ControlLeak couples two control channels: actuating either valve
	// closes both.
	ControlLeak
)

func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	default:
		return "control-leak"
	}
}

// Fault is a single injected defect. A and B are valve IDs; B is used only
// by ControlLeak.
type Fault struct {
	Kind FaultKind
	A, B grid.ValveID
}

func (f Fault) String() string {
	if f.Kind == ControlLeak {
		return fmt.Sprintf("control-leak(%d,%d)", f.A, f.B)
	}
	return fmt.Sprintf("%v(%d)", f.Kind, f.A)
}

// Simulator evaluates test vectors on one array, with or without faults.
// It precomputes the cell/port graph once; Readings is then a single
// multi-source BFS. Steady-state evaluation reuses pooled scratch buffers,
// so the inner loop of a campaign allocates nothing; all methods are safe
// for concurrent use.
type Simulator struct {
	arr           *grid.Array
	g             *graph.Graph
	srcNodes      []int
	sinkNodes     []int
	sinkNames     []string
	edgeValve     []int   // graph edge index -> valve ID
	valveEdges    [][]int // valve ID -> graph edge indices (word-engine seeding)
	valveEnds     [][]int // valve ID -> its edges' endpoint nodes, flattened
	effBase       []bool
	normalIDs     []int
	isNormal      []bool // valve ID -> Kind == Normal (hot-path kind guard)
	scratches     sync.Pool
	wordScratches sync.Pool
}

// New builds a simulator for the array. The array must Validate.
func New(a *grid.Array) (*Simulator, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	// Nodes: one per cell, plus one per port.
	n := a.NumCells()
	ports := a.Ports()
	g := graph.New(n + len(ports))
	portNode := make(map[grid.ValveID]int, len(ports))
	for i, p := range ports {
		portNode[p.Valve] = n + i
	}
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if !a.Passable(vid) {
			continue
		}
		u, w := a.EdgeCells(vid)
		switch {
		case u != grid.NoCell && w != grid.NoCell:
			g.AddEdge(int(u), int(w), id)
		case a.Kind(vid) == grid.PortOpen:
			cell := int(a.InteriorCell(vid))
			g.AddEdge(portNode[vid], cell, id)
		}
		// Passable boundary edges without ports cannot exist (boundary
		// edges are Wall or PortOpen), so no other case arises.
	}
	s := &Simulator{arr: a, g: g}
	for i, p := range ports {
		if p.Source {
			s.srcNodes = append(s.srcNodes, n+i)
		} else {
			s.sinkNodes = append(s.sinkNodes, n+i)
			s.sinkNames = append(s.sinkNames, p.Name)
		}
	}
	s.edgeValve = make([]int, g.M())
	s.valveEdges = make([][]int, a.NumValves())
	s.valveEnds = make([][]int, a.NumValves())
	for e, ed := range g.Edges() {
		s.edgeValve[e] = ed.Label
		s.valveEdges[ed.Label] = append(s.valveEdges[ed.Label], e)
		s.valveEnds[ed.Label] = append(s.valveEnds[ed.Label], ed.U, ed.V)
	}
	// Template for effIntoBase: the physical state with every Normal valve
	// commanded closed. Overlaying a command vector is then one copy plus a
	// sweep over the Normal IDs, instead of a per-valve kind switch.
	s.effBase = make([]bool, a.NumValves())
	for id := range s.effBase {
		switch a.Kind(grid.ValveID(id)) {
		case grid.Channel, grid.PortOpen:
			s.effBase[id] = true
		}
	}
	s.normalIDs = make([]int, 0, a.NumNormal())
	s.isNormal = make([]bool, a.NumValves())
	for _, v := range a.NormalValves() {
		s.normalIDs = append(s.normalIDs, int(v))
		s.isNormal[v] = true
	}
	s.scratches.New = func() any { return s.newScratch() }
	s.wordScratches.New = func() any { return s.newWordScratch() }
	return s, nil
}

// scratch holds the per-evaluation working set of one goroutine: effective
// valve states, BFS via/queue buffers, and a sink-reading buffer. Scratches
// cycle through Simulator.scratches so steady-state evaluation is
// allocation-free.
type scratch struct {
	eff     []bool
	via     []int
	queue   []int
	out     []bool
	enabled func(e int) bool
}

func (s *Simulator) newScratch() *scratch {
	sc := &scratch{
		eff:   make([]bool, s.arr.NumValves()),
		via:   make([]int, s.g.N()),
		queue: make([]int, 0, s.g.N()),
		out:   make([]bool, len(s.sinkNodes)),
	}
	sc.enabled = func(e int) bool { return sc.eff[s.edgeValve[e]] }
	return sc
}

func (s *Simulator) getScratch() *scratch   { return s.scratches.Get().(*scratch) }
func (s *Simulator) putScratch(sc *scratch) { s.scratches.Put(sc) }

// MustNew is New but panics on error.
func MustNew(a *grid.Array) *Simulator {
	s, err := New(a)
	if err != nil {
		panic(err)
	}
	return s
}

// Array returns the array under simulation.
func (s *Simulator) Array() *grid.Array { return s.arr }

// SinkNames returns the pressure-meter names in reading order.
func (s *Simulator) SinkNames() []string { return s.sinkNames }

// effIntoBase writes the fault-free physical state of every edge under a
// command vector into eff (len = NumValves).
//
//fpva:allocfree
func (s *Simulator) effIntoBase(eff []bool, vec *Vector) {
	copy(eff, s.effBase)
	for _, id := range s.normalIDs {
		if vec.open[id] {
			eff[id] = true
		}
	}
}

// applyFaults overlays a fault list on a fault-free effective state and
// reports whether any edge actually changed — when it didn't, the readings
// are guaranteed to equal the fault-free ones and the BFS can be skipped.
//
//fpva:allocfree
func (s *Simulator) applyFaults(eff []bool, vec *Vector, faults []Fault) bool {
	changed := false
	// Control leakage first: commanded closure propagates to the partner.
	// Like the stuck-at branches below, the fault is meaningful only on
	// Normal valves: Channel/PortOpen edges have no control channel to leak
	// (and Walls no flow), so a malformed fault naming one must not force an
	// always-open edge closed.
	for _, f := range faults {
		if f.Kind != ControlLeak {
			continue
		}
		if s.arr.Kind(f.A) != grid.Normal || s.arr.Kind(f.B) != grid.Normal {
			continue
		}
		if !vec.open[f.A] || !vec.open[f.B] {
			if eff[f.A] || eff[f.B] {
				changed = true
			}
			eff[f.A] = false
			eff[f.B] = false
		}
	}
	// Stuck-at faults override everything, including leakage: a valve that
	// physically cannot close stays open no matter which control channel is
	// pressurized, and vice versa.
	for _, f := range faults {
		switch f.Kind {
		case StuckAt0:
			if s.arr.Kind(f.A) == grid.Normal && eff[f.A] {
				eff[f.A] = false
				changed = true
			}
		case StuckAt1:
			if s.arr.Kind(f.A) == grid.Normal && !eff[f.A] {
				eff[f.A] = true
				changed = true
			}
		}
	}
	return changed
}

// readingsInto runs one multi-source BFS over the effective state held in
// sc.eff and writes per-sink pressure into out (len = number of sinks).
//
//fpva:allocfree
func (s *Simulator) readingsInto(sc *scratch, out []bool) []bool {
	via := s.g.BFSInto(sc.via, sc.queue, s.srcNodes, sc.enabled)
	for i, snk := range s.sinkNodes {
		out[i] = via[snk] != -1
	}
	return out
}

// SinkPressured reports whether any sink sees pressure under vec on a
// fault-free chip. Unlike Readings it allocates nothing, which makes it the
// inner loop of cut-set testability scans.
//
//fpva:allocfree
func (s *Simulator) SinkPressured(vec *Vector) bool {
	sc := s.getScratch()
	defer s.putScratch(sc)
	s.effIntoBase(sc.eff, vec)
	s.readingsInto(sc, sc.out)
	for _, r := range sc.out {
		if r {
			return true
		}
	}
	return false
}

// Readings returns the pressure observed at each sink (order of
// Array().Sinks()) when vec is applied under the given faults (nil for a
// fault-free chip).
func (s *Simulator) Readings(vec *Vector, faults []Fault) []bool {
	sc := s.getScratch()
	defer s.putScratch(sc)
	s.effIntoBase(sc.eff, vec)
	s.applyFaults(sc.eff, vec, faults)
	return s.readingsInto(sc, make([]bool, len(s.sinkNodes)))
}

// Detects reports whether the vector set distinguishes the faulty chip from
// a fault-free one: some vector's sink readings differ. For repeated queries
// against one vector set, Compile once and use CompiledVectors.Detects.
func (s *Simulator) Detects(vectors []*Vector, faults []Fault) bool {
	return s.DetectingVector(vectors, faults) >= 0
}

// DetectingVector returns the index of the first vector that exposes the
// fault set, or -1.
func (s *Simulator) DetectingVector(vectors []*Vector, faults []Fault) int {
	sc := s.getScratch()
	defer s.putScratch(sc)
	golden := make([]bool, len(s.sinkNodes))
	for i, vec := range vectors {
		s.effIntoBase(sc.eff, vec)
		s.readingsInto(sc, golden)
		if !s.applyFaults(sc.eff, vec, faults) {
			continue // faults do not change this vector's physical state
		}
		s.readingsInto(sc, sc.out)
		for j := range golden {
			if golden[j] != sc.out[j] {
				return i
			}
		}
	}
	return -1
}

// AllSingleFaults enumerates every stuck-at fault on the array's Normal
// valves, for exhaustive guarantee checks.
func AllSingleFaults(a *grid.Array) []Fault {
	var out []Fault
	for _, v := range a.NormalValves() {
		out = append(out, Fault{Kind: StuckAt0, A: v}, Fault{Kind: StuckAt1, A: v})
	}
	return out
}

// VerifyPathVector checks the structural invariants of a flow-path vector:
// the open valves form one simple source-to-sink path (no loops, no
// branches — the paper's Fig. 5(a) condition) and pressure reaches the
// path's sink. It returns a descriptive error otherwise.
//
// Degree invariant: every cell touches 0 or 2 commanded-open valves. A cell
// touching exactly 1 must be a path terminus — a port cell, or a cell of an
// always-open transportation channel the path continues through. Anything
// above 2 is a branch. Open valves unreachable from every source reveal a
// detached loop or a second disjoint segment.
func (s *Simulator) VerifyPathVector(vec *Vector) error {
	a := s.arr
	deg := make(map[grid.CellID]int)
	openEdges := 0
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if a.Kind(vid) != grid.Normal || !vec.open[id] {
			continue // channels are always open but not path members per se
		}
		openEdges++
		u, w := a.EdgeCells(vid)
		for _, cell := range []grid.CellID{u, w} {
			if cell != grid.NoCell {
				deg[cell]++
			}
		}
	}
	if openEdges == 0 {
		return fmt.Errorf("sim: path vector %q opens no valves", vec.Name)
	}
	// Cells where a path segment may legally end with degree 1.
	term := make(map[grid.CellID]bool)
	for _, p := range a.Ports() {
		term[a.InteriorCell(p.Valve)] = true
	}
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if a.Kind(vid) != grid.Channel {
			continue
		}
		u, w := a.EdgeCells(vid)
		for _, cell := range []grid.CellID{u, w} {
			if cell != grid.NoCell {
				term[cell] = true
			}
		}
	}
	// Check cells in sorted order so a vector with several defects always
	// reports the same one (errors here reach goldens and user logs).
	cells := make([]grid.CellID, 0, len(deg))
	for cell := range deg {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, cell := range cells {
		d := deg[cell]
		r, c := a.CellCoords(cell)
		if d > 2 {
			return fmt.Errorf("sim: path vector %q branches: cell (%d,%d) touches %d open valves", vec.Name, r, c, d)
		}
		if d == 1 && !term[cell] {
			return fmt.Errorf("sim: path vector %q dangles: cell (%d,%d) ends a segment away from any port or channel", vec.Name, r, c)
		}
	}
	// One BFS answers both remaining checks: every open valve must be
	// pressurized (no detached loops or disjoint segments), and some sink
	// must see pressure.
	sc := s.getScratch()
	defer s.putScratch(sc)
	s.effIntoBase(sc.eff, vec)
	via := s.g.BFSInto(sc.via, sc.queue, s.srcNodes, sc.enabled)
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if a.Kind(vid) != grid.Normal || !vec.open[id] {
			continue
		}
		// An open valve conducts, so its two endpoints are pressurized
		// together; check whichever cells exist (NoCell marks the chip
		// exterior on boundary-adjacent edges) so the scan stays safe if a
		// boundary Normal valve ever appears.
		u, w := a.EdgeCells(vid)
		pressurized := u == grid.NoCell && w == grid.NoCell
		if u != grid.NoCell && via[int(u)] != -1 {
			pressurized = true
		}
		if w != grid.NoCell && via[int(w)] != -1 {
			pressurized = true
		}
		if !pressurized {
			return fmt.Errorf("sim: path vector %q loops or is split: open valve %d is not pressurized from any source", vec.Name, id)
		}
	}
	for _, snk := range s.sinkNodes {
		if via[snk] != -1 {
			return nil
		}
	}
	return fmt.Errorf("sim: path vector %q: no sink sees pressure", vec.Name)
}

// VerifyCutVector checks that the closed valves of a cut-set vector indeed
// separate all sources from all sinks: no sink may see pressure.
func (s *Simulator) VerifyCutVector(vec *Vector) error {
	for i, r := range s.Readings(vec, nil) {
		if r {
			return fmt.Errorf("sim: cut vector %q: sink %s sees pressure", vec.Name, s.sinkNames[i])
		}
	}
	return nil
}

// SortFaults orders faults deterministically for golden tests and logs.
func SortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].A != fs[j].A {
			return fs[i].A < fs[j].A
		}
		return fs[i].B < fs[j].B
	})
}
