package flowpath

import (
	"context"
	"fmt"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

// Engine selects the flow-path construction algorithm.
type Engine int

const (
	// EngineAuto picks Serpentine — exact on regular arrays, patched on
	// irregular ones, and fast at every size in Table I.
	EngineAuto Engine = iota
	// EngineSerpentine is the strip-decomposition generator.
	EngineSerpentine
	// EngineILPIterative solves the paper's per-path ILP model repeatedly,
	// maximizing newly covered valves each round.
	EngineILPIterative
	// EngineILPMonolithic solves the paper's full model (7)-(8); intended
	// for small arrays.
	EngineILPMonolithic
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSerpentine:
		return "serpentine"
	case EngineILPIterative:
		return "ilp-iterative"
	case EngineILPMonolithic:
		return "ilp-monolithic"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Generate.
type Options struct {
	Engine Engine
	// StripRows / StripCols bound the strip sizes of the serpentine engine.
	// Zero means direct mode (coarsest strips). The paper's hierarchical
	// evaluation corresponds to StripRows = StripCols = 5.
	StripRows, StripCols int
	// MonolithicMaxPaths caps np for the monolithic engine (default 8).
	MonolithicMaxPaths int
	// ILP tunes the branch-and-bound solver for the ILP engines.
	ILP ilp.Options
	// NoPatch disables the patching pass (exposes raw engine coverage).
	NoPatch bool
}

// Generate produces a flow-path set covering all Normal valves of the
// array. Valves that no source-to-sink path can reach (walled in by
// obstacles) are reported in Result.Uncovered. Cancelling ctx (nil means
// context.Background()) aborts the ILP engines between solver nodes and
// returns ctx.Err().
func Generate(ctx context.Context, a *grid.Array, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var paths []*Path
	var stats ilp.Stats
	var err error
	switch opt.Engine {
	case EngineAuto, EngineSerpentine:
		paths, err = serpentinePaths(a, opt.StripRows, opt.StripCols)
	case EngineILPIterative:
		paths, stats, err = ilpIterativePaths(ctx, a, opt.ILP)
	case EngineILPMonolithic:
		maxPaths := opt.MonolithicMaxPaths
		if maxPaths <= 0 {
			maxPaths = 8
		}
		paths, stats, err = ilpMonolithicPaths(ctx, a, 1, maxPaths, opt.ILP)
	default:
		return nil, fmt.Errorf("flowpath: unknown engine %v", opt.Engine)
	}
	if err != nil {
		return nil, err
	}
	s, err := sim.New(a)
	if err != nil {
		return nil, err
	}
	res := &Result{Paths: paths, ILP: stats}
	missing := uncoveredAfter(a, paths, s)
	if len(missing) > 0 && !opt.NoPatch {
		srcs, sinks := a.Sources(), a.Sinks()
		extra, impossible := patchPaths(a, s, srcs[0].Valve, sinks[0].Valve, missing)
		res.Paths = append(res.Paths, extra...)
		res.Uncovered = impossible
	} else {
		res.Uncovered = missing
	}
	return res, nil
}
