package flowpath

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

func generate(t *testing.T, a *grid.Array, opt Options) *Result {
	t.Helper()
	res, err := Generate(context.Background(), a, opt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return res
}

// assertFullCover checks that the result covers every Normal valve, that
// every path is a valid simple source-to-sink path, and that each path's
// vector pressurizes a sink on a fault-free chip.
func assertFullCover(t *testing.T, a *grid.Array, res *Result) {
	t.Helper()
	if len(res.Uncovered) > 0 {
		t.Fatalf("uncovered valves: %v", res.Uncovered)
	}
	covered := coverageSet(a, res.Paths)
	for _, id := range a.NormalValves() {
		if !covered[id] {
			t.Fatalf("valve %d not covered", id)
		}
	}
	s := sim.MustNew(a)
	for i, p := range res.Paths {
		if _, err := Build(a, p.Valves[0], p.Valves[len(p.Valves)-1], p.Cells); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		if err := s.VerifyPathVector(p.Vector(a, "t")); err != nil {
			t.Fatalf("path %d vector: %v", i, err)
		}
	}
}

func TestOddSplits(t *testing.T) {
	for _, tc := range []struct {
		n, max int
		want   []int
	}{
		{5, 0, []int{5}},
		{10, 0, []int{9, 1}},
		{10, 5, []int{5, 5}},
		{15, 5, []int{5, 5, 5}},
		{30, 5, []int{5, 5, 5, 5, 5, 5}},
		{12, 5, []int{5, 5, 1, 1}},
		{13, 5, []int{5, 5, 3}},
		{7, 4, []int{3, 3, 1}},
		{1, 0, []int{1}},
		{2, 0, []int{1, 1}},
		{0, 5, nil},
	} {
		got := oddSplits(tc.n, tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("oddSplits(%d,%d)=%v, want %v", tc.n, tc.max, got, tc.want)
			continue
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("oddSplits(%d,%d)=%v, want %v", tc.n, tc.max, got, tc.want)
			}
			if got[i]%2 == 0 {
				t.Errorf("oddSplits(%d,%d): even strip %d", tc.n, tc.max, got[i])
			}
			sum += got[i]
		}
		if sum != tc.n {
			t.Errorf("oddSplits(%d,%d) sums to %d", tc.n, tc.max, sum)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	src, snk := a.HValve(0, 0), a.HValve(2, 3)
	ok := []grid.CellID{
		a.CellIndex(0, 0), a.CellIndex(0, 1), a.CellIndex(0, 2),
		a.CellIndex(1, 2), a.CellIndex(2, 2),
	}
	p, err := Build(a, src, snk, ok)
	if err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if p.Len() != 5 || len(p.Valves) != 6 {
		t.Errorf("Len=%d valves=%d", p.Len(), len(p.Valves))
	}
	cases := map[string][]grid.CellID{
		"empty":        {},
		"wrong start":  {a.CellIndex(1, 1), a.CellIndex(2, 1), a.CellIndex(2, 2)},
		"wrong end":    {a.CellIndex(0, 0), a.CellIndex(0, 1)},
		"not adjacent": {a.CellIndex(0, 0), a.CellIndex(2, 2)},
		"revisit":      {a.CellIndex(0, 0), a.CellIndex(0, 1), a.CellIndex(0, 0), a.CellIndex(1, 0)},
	}
	for name, cells := range cases {
		if _, err := Build(a, src, snk, cells); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Non-port endpoints.
	if _, err := Build(a, a.HValve(1, 1), snk, ok); err == nil {
		t.Error("interior source edge accepted")
	}
}

func TestSerpentineFullOdd(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	res := generate(t, a, Options{Engine: EngineSerpentine})
	assertFullCover(t, a, res)
	// Direct mode on an odd square: one row sweep + one column sweep.
	if len(res.Paths) != 2 {
		t.Errorf("5x5 direct: %d paths, want 2", len(res.Paths))
	}
}

func TestSerpentineFullEven(t *testing.T) {
	a := grid.MustNewStandard(10, 10)
	res := generate(t, a, Options{Engine: EngineSerpentine})
	assertFullCover(t, a, res)
	if len(res.Paths) > 4 {
		t.Errorf("10x10 direct: %d paths, want <= 4", len(res.Paths))
	}
}

func TestSerpentineHierarchical(t *testing.T) {
	// The paper's Fig. 8(b): 10x10 with 5x5 blocks -> 4 paths.
	a := grid.MustNewStandard(10, 10)
	res := generate(t, a, Options{Engine: EngineSerpentine, StripRows: 5, StripCols: 5})
	assertFullCover(t, a, res)
	if len(res.Paths) != 4 {
		t.Errorf("10x10 hierarchical: %d paths, want 4 (Fig. 8b)", len(res.Paths))
	}
}

func TestSerpentineRectangular(t *testing.T) {
	for _, dims := range [][2]int{{3, 7}, {7, 3}, {4, 6}, {1, 5}, {5, 1}, {2, 2}} {
		a := grid.MustNewStandard(dims[0], dims[1])
		res := generate(t, a, Options{Engine: EngineSerpentine})
		assertFullCover(t, a, res)
	}
}

func TestSerpentineWithObstacles(t *testing.T) {
	a := grid.MustNewStandard(8, 8)
	for _, rc := range [][2]int{{2, 2}, {5, 5}, {2, 5}} {
		if _, err := a.SetObstacle(rc[0], rc[1]); err != nil {
			t.Fatal(err)
		}
	}
	res := generate(t, a, Options{Engine: EngineSerpentine, StripRows: 5, StripCols: 5})
	assertFullCover(t, a, res)
}

func TestSerpentineWithChannels(t *testing.T) {
	a := grid.MustNewStandard(6, 6)
	if _, err := a.SetChannelH(3, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetChannelV(2, 1, 4); err != nil {
		t.Fatal(err)
	}
	res := generate(t, a, Options{Engine: EngineSerpentine})
	assertFullCover(t, a, res)
}

func TestPatchingDisabled(t *testing.T) {
	a := grid.MustNewStandard(8, 8)
	if _, err := a.SetObstacle(3, 3); err != nil {
		t.Fatal(err)
	}
	res := generate(t, a, Options{Engine: EngineSerpentine, NoPatch: true})
	// With patching off, coverage may or may not be complete, but all paths
	// must still be valid; and re-running with patching must fix coverage.
	full := generate(t, a, Options{Engine: EngineSerpentine})
	assertFullCover(t, a, full)
	if len(full.Paths) < len(res.Paths) {
		t.Error("patched run has fewer paths than unpatched")
	}
}

func TestPathThroughSpecificValve(t *testing.T) {
	a := grid.MustNewStandard(5, 5)
	rt := NewRouter(a)
	target := a.VValve(2, 2)
	p := rt.pathThrough(a.HValve(0, 0), a.HValve(4, 5), target, nil)
	if p == nil {
		t.Fatal("no path through target")
	}
	found := false
	for _, id := range p.Valves {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Error("target valve not on path")
	}
	if _, err := Build(a, p.Valves[0], p.Valves[len(p.Valves)-1], p.Cells); err != nil {
		t.Errorf("patch path invalid: %v", err)
	}
}

func TestPatchPathsCoverEverything(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	missing := a.NormalValves() // pretend nothing is covered
	paths, impossible := patchPaths(a, sim.MustNew(a), a.HValve(0, 0), a.HValve(3, 4), missing)
	if len(impossible) > 0 {
		t.Fatalf("impossible valves on a full array: %v", impossible)
	}
	res := &Result{Paths: paths}
	assertFullCover(t, a, res)
}

func TestILPIterativeSmall(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	res := generate(t, a, Options{Engine: EngineILPIterative})
	assertFullCover(t, a, res)
	// 3x3 has 12 valves; a path covers at most 9+... cells=9 so <=8 internal
	// edges + no more. Expect 2-3 paths.
	if len(res.Paths) > 3 {
		t.Errorf("ILP iterative used %d paths", len(res.Paths))
	}
}

func TestILPIterativeMatchesSerpentineOn4x4(t *testing.T) {
	a := grid.MustNewStandard(4, 4)
	ilpRes := generate(t, a, Options{Engine: EngineILPIterative})
	serpRes := generate(t, a, Options{Engine: EngineSerpentine})
	assertFullCover(t, a, ilpRes)
	assertFullCover(t, a, serpRes)
	// The ILP should never be (much) worse than the combinatorial engine.
	if len(ilpRes.Paths) > len(serpRes.Paths)+1 {
		t.Errorf("ILP %d paths vs serpentine %d", len(ilpRes.Paths), len(serpRes.Paths))
	}
}

func TestILPMonolithicTiny(t *testing.T) {
	a := grid.MustNewStandard(2, 2)
	res := generate(t, a, Options{Engine: EngineILPMonolithic})
	assertFullCover(t, a, res)
	// 2x2 full array: 4 valves, one path covers at most 3 internal edges
	// (4 cells): needs exactly 2 paths.
	if len(res.Paths) != 2 {
		t.Errorf("2x2 monolithic: %d paths, want 2", len(res.Paths))
	}
}

func TestILPSinglePathForced(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	uncovered := map[grid.ValveID]bool{}
	target := a.VValve(1, 0)
	p, _, _, err := ilpSinglePath(context.Background(), a, uncovered, target, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range p.Valves {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Error("forced valve not on ILP path")
	}
}

func TestVectorsNamedAndTyped(t *testing.T) {
	a := grid.MustNewStandard(3, 3)
	res := generate(t, a, Options{})
	vecs := res.Vectors(a)
	if len(vecs) != len(res.Paths) {
		t.Fatalf("%d vectors for %d paths", len(vecs), len(res.Paths))
	}
	for i, v := range vecs {
		if v.Kind != sim.FlowPath {
			t.Errorf("vector %d kind %v", i, v.Kind)
		}
		if v.Name == "" {
			t.Errorf("vector %d unnamed", i)
		}
	}
}

func TestGenerateRejectsInvalidArray(t *testing.T) {
	a := grid.MustNew(3, 3) // no ports
	if _, err := Generate(context.Background(), a, Options{}); err == nil {
		t.Error("want error for array without ports")
	}
}

func TestEngineStrings(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EngineSerpentine, EngineILPIterative, EngineILPMonolithic, Engine(99)} {
		if e.String() == "" {
			t.Errorf("engine %d has empty string", int(e))
		}
	}
}
