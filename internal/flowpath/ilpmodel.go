package flowpath

import (
	"context"
	"fmt"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// This file implements the paper's ILP formulation of flow-path
// construction (Sec. III-B):
//
//   - constraint (1): a path entering a cell leaves it through exactly one
//     other valve — sum of the cell's valve variables equals 2*c[cell];
//   - constraints (3)+(4): a signed pressure-flow variable per valve,
//     bounded by M*v (big-M), with each path cell consuming one flow unit;
//     this excludes the disjoint loops of Fig. 6(c)/(d), because a loop has
//     no flow source yet would have to consume;
//   - port terminals: one source-port and one sink-port edge carry the path
//     ends (degree-1 contributions);
//   - constraint (2) (coverage) appears in two flavours: the iterative
//     engine maximizes newly covered valves per path and loops (set-cover
//     column generation), while the monolithic engine carries all np paths
//     with used-path indicators and minimizes their count — constraints
//     (6)-(8) — exactly as written in the paper.

// pathModel is the per-path variable block over one array. Variables and
// constraint rows are always emitted in the deterministic edge/port/cell
// orders below (never map order), so two builds of the same model are
// identical and the whole generation pipeline is reproducible run to run.
type pathModel struct {
	a     *grid.Array
	m     *ilp.Model
	edges []grid.ValveID             // interior passable edges, ascending
	v     map[grid.ValveID]ilp.VarID // interior passable edges
	c     map[grid.CellID]ilp.VarID
	entry map[grid.ValveID]ilp.VarID // source port edges
	exit  map[grid.ValveID]ilp.VarID // sink port edges
	bigM  float64
}

// entryVars / exitVars list the terminal indicator variables in port order.
func (pm *pathModel) entryVars() []ilp.VarID {
	out := make([]ilp.VarID, 0, len(pm.entry))
	for _, p := range pm.a.Sources() {
		out = append(out, pm.entry[p.Valve])
	}
	return out
}

func (pm *pathModel) exitVars() []ilp.VarID {
	out := make([]ilp.VarID, 0, len(pm.exit))
	for _, p := range pm.a.Sinks() {
		out = append(out, pm.exit[p.Valve])
	}
	return out
}

// interiorPassable lists interior edges fluid can traverse (Normal or
// Channel) whose both endpoint cells are real and non-obstacle.
func interiorPassable(a *grid.Array) []grid.ValveID {
	var out []grid.ValveID
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if !a.Passable(vid) || a.Kind(vid) == grid.PortOpen {
			continue
		}
		u, w := a.EdgeCells(vid)
		if u == grid.NoCell || w == grid.NoCell {
			continue
		}
		ur, uc := a.CellCoords(u)
		wr, wc := a.CellCoords(w)
		if a.IsObstacle(ur, uc) || a.IsObstacle(wr, wc) {
			continue
		}
		out = append(out, vid)
	}
	return out
}

// fluidCells lists non-obstacle cells.
func fluidCells(a *grid.Array) []grid.CellID {
	var out []grid.CellID
	for r := 0; r < a.NR(); r++ {
		for c := 0; c < a.NC(); c++ {
			if !a.IsObstacle(r, c) {
				out = append(out, a.CellIndex(r, c))
			}
		}
	}
	return out
}

// addPathBlock installs one path's variables and structural constraints
// into model m. tag distinguishes variable names between path blocks;
// edgeObj gives the objective coefficient of each edge variable.
func addPathBlock(m *ilp.Model, a *grid.Array, tag string, edgeObj func(grid.ValveID) float64) *pathModel {
	pm := &pathModel{
		a: a, m: m,
		edges: interiorPassable(a),
		v:     make(map[grid.ValveID]ilp.VarID),
		c:     make(map[grid.CellID]ilp.VarID),
		entry: make(map[grid.ValveID]ilp.VarID),
		exit:  make(map[grid.ValveID]ilp.VarID),
		bigM:  float64(a.NumCells() + 1),
	}
	edges := pm.edges
	cells := fluidCells(a)
	f := make(map[grid.ValveID]ilp.VarID, len(edges))
	for _, e := range edges {
		pm.v[e] = m.AddBinary(edgeObj(e), fmt.Sprintf("v%s_%d", tag, e))
		f[e] = m.AddVar(-pm.bigM, pm.bigM, 0, false, fmt.Sprintf("f%s_%d", tag, e))
	}
	fin := make(map[grid.ValveID]ilp.VarID)
	for _, p := range a.Sources() {
		pm.entry[p.Valve] = m.AddBinary(0, fmt.Sprintf("in%s_%d", tag, p.Valve))
		fin[p.Valve] = m.AddVar(0, pm.bigM, 0, false, fmt.Sprintf("fin%s_%d", tag, p.Valve))
	}
	for _, p := range a.Sinks() {
		pm.exit[p.Valve] = m.AddBinary(0, fmt.Sprintf("out%s_%d", tag, p.Valve))
	}
	for _, cell := range cells {
		pm.c[cell] = m.AddBinary(0, fmt.Sprintf("c%s_%d", tag, cell))
	}

	// Big-M flow capacity (constraint (3)): -M*v <= f <= M*v.
	for _, e := range edges {
		m.AddCons([]ilp.VarID{f[e], pm.v[e]}, []float64{1, -pm.bigM}, lp.LE, 0)
		m.AddCons([]ilp.VarID{f[e], pm.v[e]}, []float64{1, pm.bigM}, lp.GE, 0)
	}
	for _, p := range a.Sources() {
		m.AddCons([]ilp.VarID{fin[p.Valve], pm.entry[p.Valve]}, []float64{1, -pm.bigM}, lp.LE, 0)
	}

	// Per-cell degree (constraint (1)) and flow conservation (constraint
	// (4)). Canonical flow orientation: west->east for H edges,
	// north->south for V edges; dir is +1 for flow into the cell.
	for _, cell := range cells {
		r, c := a.CellCoords(cell)
		var degIdx []ilp.VarID
		var degCoef []float64
		var flowIdx []ilp.VarID
		var flowCoef []float64
		for _, e := range a.IncidentValves(r, c) {
			if vVar, ok := pm.v[e]; ok {
				degIdx = append(degIdx, vVar)
				degCoef = append(degCoef, 1)
				flowIdx = append(flowIdx, f[e])
				flowCoef = append(flowCoef, dirInto(a, e, cell))
			}
			if entryVar, ok := pm.entry[e]; ok {
				degIdx = append(degIdx, entryVar)
				degCoef = append(degCoef, 1)
				flowIdx = append(flowIdx, fin[e])
				flowCoef = append(flowCoef, 1)
			}
			if exitVar, ok := pm.exit[e]; ok {
				degIdx = append(degIdx, exitVar)
				degCoef = append(degCoef, 1)
				// The exit edge carries no modelled flow; all supply is
				// consumed on the path cells.
			}
		}
		// Degree: sum = 2*c.
		degIdx = append(degIdx, pm.c[cell])
		degCoef = append(degCoef, -2)
		m.AddCons(degIdx, degCoef, lp.EQ, 0)
		// Conservation: inflow - outflow = c (one unit consumed per cell).
		flowIdx = append(flowIdx, pm.c[cell])
		flowCoef = append(flowCoef, -1)
		m.AddCons(flowIdx, flowCoef, lp.EQ, 0)
	}
	return pm
}

// dirInto returns +1 if edge e's canonical flow orientation points into
// cell, -1 otherwise.
func dirInto(a *grid.Array, e grid.ValveID, cell grid.CellID) float64 {
	_, w := a.EdgeCells(e)
	if w == cell {
		return 1
	}
	return -1
}

// sumEquals adds the constraint sum(vars) = rhs.
func sumEquals(m *ilp.Model, vars []ilp.VarID, rhs float64) {
	coef := make([]float64, len(vars))
	for i := range coef {
		coef[i] = 1
	}
	m.AddCons(vars, coef, lp.EQ, rhs)
}

// extract reads one path block out of an ILP solution.
func (pm *pathModel) extract(x []float64) (*Path, error) {
	a := pm.a
	var srcPort, sinkPort grid.ValveID = grid.NoValve, grid.NoValve
	for pv, id := range pm.entry {
		if x[id] > 0.5 {
			srcPort = pv
		}
	}
	for pv, id := range pm.exit {
		if x[id] > 0.5 {
			sinkPort = pv
		}
	}
	if srcPort == grid.NoValve || sinkPort == grid.NoValve {
		return nil, fmt.Errorf("flowpath: ILP solution has no active ports")
	}
	open := make(map[grid.ValveID]bool)
	for e, id := range pm.v {
		if x[id] > 0.5 {
			open[e] = true
		}
	}
	// Walk from the entry cell.
	cells := []grid.CellID{a.InteriorCell(srcPort)}
	visited := map[grid.CellID]bool{cells[0]: true}
	for {
		cur := cells[len(cells)-1]
		r, c := a.CellCoords(cur)
		moved := false
		for _, e := range a.IncidentValves(r, c) {
			if !open[e] {
				continue
			}
			u, w := a.EdgeCells(e)
			next := u
			if next == cur {
				next = w
			}
			if next == grid.NoCell || visited[next] {
				continue
			}
			visited[next] = true
			cells = append(cells, next)
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	if cells[len(cells)-1] != a.InteriorCell(sinkPort) {
		return nil, fmt.Errorf("flowpath: ILP walk ended at %d, sink cell is %d",
			cells[len(cells)-1], a.InteriorCell(sinkPort))
	}
	if len(visited) != len(open)+1 {
		return nil, fmt.Errorf("flowpath: ILP solution contains a disjoint component (%d cells, %d open edges)",
			len(visited), len(open))
	}
	return Build(a, srcPort, sinkPort, cells)
}

// ilpSinglePath solves one standalone path model maximizing newly covered
// valves; forced (when not NoValve) must lie on the path, via a bound fix.
// The iterative engine below does not use this — it keeps one persistent
// model across rounds — but one-off forced-path queries and tests do.
func ilpSinglePath(ctx context.Context, a *grid.Array, uncovered map[grid.ValveID]bool,
	forced grid.ValveID, opts ilp.Options) (*Path, int, ilp.Solution, error) {
	var m ilp.Model
	// Objective: -100 per newly covered valve, +1 per edge (shorter ties).
	pm := addPathBlock(&m, a, "", func(e grid.ValveID) float64 {
		if a.Kind(e) == grid.Normal && uncovered[e] {
			return -100
		}
		return 1
	})
	sumEquals(&m, pm.entryVars(), 1)
	sumEquals(&m, pm.exitVars(), 1)

	if forced != grid.NoValve {
		id, ok := pm.v[forced]
		if !ok {
			return nil, 0, ilp.Solution{}, fmt.Errorf("flowpath: forced valve %d not modelled", forced)
		}
		// A bound fix, not an equality row: the row structure stays
		// identical across solves, which keeps warm starts applicable.
		m.FixVar(id, 1)
	}
	sol := m.Solve(ctx, opts)
	if sol.Status == ilp.Canceled {
		return nil, 0, sol, ctx.Err()
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, 0, sol, fmt.Errorf("flowpath: single-path ILP %v", sol.Status)
	}
	p, err := pm.extract(sol.X)
	if err != nil {
		return nil, 0, sol, err
	}
	newCov := 0
	for _, e := range p.CoveredNormal(a) {
		if uncovered[e] {
			newCov++
		}
	}
	return p, newCov, sol, nil
}

// ilpIterativePaths covers all Normal valves path by path. The model is
// built once; each round only rewrites the coverage objective (-100 per
// newly covered valve, +1 per edge as a shorter-path tie break) on the same
// compiled relaxation and warm-starts from the previous root basis, so the
// per-round cost is the branch-and-bound search alone, not a model rebuild.
func ilpIterativePaths(ctx context.Context, a *grid.Array, opts ilp.Options) ([]*Path, ilp.Stats, error) {
	var m ilp.Model
	pm := addPathBlock(&m, a, "", func(grid.ValveID) float64 { return 1 })
	sumEquals(&m, pm.entryVars(), 1)
	sumEquals(&m, pm.exitVars(), 1)

	uncovered := make(map[grid.ValveID]bool)
	for _, e := range a.NormalValves() {
		uncovered[e] = true
	}
	var paths []*Path
	var stats ilp.Stats
	for len(uncovered) > 0 {
		for _, e := range pm.edges {
			if a.Kind(e) == grid.Normal && uncovered[e] {
				m.SetObj(pm.v[e], -100)
			} else {
				m.SetObj(pm.v[e], 1)
			}
		}
		sol := m.Solve(ctx, opts)
		stats.Observe(sol)
		if sol.Status == ilp.Canceled {
			return paths, stats, ctx.Err()
		}
		if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
			return paths, stats, fmt.Errorf("flowpath: single-path ILP %v", sol.Status)
		}
		p, err := pm.extract(sol.X)
		if err != nil {
			return paths, stats, err
		}
		opts.WarmStart = sol.WarmStart
		newCov := 0
		for _, e := range p.CoveredNormal(a) {
			if uncovered[e] {
				newCov++
			}
		}
		if newCov == 0 {
			break // remaining valves unreachable by any path
		}
		paths = append(paths, p)
		for _, e := range p.CoveredNormal(a) {
			delete(uncovered, e)
		}
	}
	return paths, stats, nil
}

// ilpMonolithicPaths implements the paper's objective (7) subject to (8):
// all np path blocks at once, coverage constraint (2), used-path indicators
// (6), minimizing the number of used paths. It increases np until feasible,
// exactly as Sec. III-B-3 prescribes, starting from lower and stopping at
// upper.
func ilpMonolithicPaths(ctx context.Context, a *grid.Array, lower, upper int, opts ilp.Options) ([]*Path, ilp.Stats, error) {
	if lower < 1 {
		lower = 1
	}
	var stats ilp.Stats
	for np := lower; np <= upper; np++ {
		paths, sol, err := tryMonolithic(ctx, a, np, opts)
		stats.Observe(sol)
		if err == nil {
			return paths, stats, nil
		}
		if ctx.Err() != nil {
			return nil, stats, ctx.Err()
		}
	}
	return nil, stats, fmt.Errorf("flowpath: no covering set with at most %d paths", upper)
}

func tryMonolithic(ctx context.Context, a *grid.Array, np int, opts ilp.Options) ([]*Path, ilp.Solution, error) {
	var m ilp.Model
	blocks := make([]*pathModel, np)
	used := make([]ilp.VarID, np)
	for i := 0; i < np; i++ {
		// Each edge costs 1 as a short-path tie-break under the dominant
		// 1000-per-used-path term of objective (7).
		blocks[i] = addPathBlock(&m, a, fmt.Sprintf("p%d", i),
			func(grid.ValveID) float64 { return 1 })
		used[i] = m.AddBinary(1000, fmt.Sprintf("used%d", i)) // objective (7)
		entries, exits := blocks[i].entryVars(), blocks[i].exitVars()
		// An unused path has no terminals and, via constraint (1)'s
		// chaining, no cells or edges.
		coef := make([]float64, len(entries))
		for k := range coef {
			coef[k] = 1
		}
		m.AddCons(append(entries, used[i]), append(coef, -1), lp.EQ, 0)
		coef2 := make([]float64, len(exits))
		for k := range coef2 {
			coef2[k] = 1
		}
		m.AddCons(append(exits, used[i]), append(coef2, -1), lp.EQ, 0)
		// Constraint (6) in tight per-edge form: v <= used.
		for _, e := range blocks[i].edges {
			m.AddCons([]ilp.VarID{blocks[i].v[e], used[i]}, []float64{1, -1}, lp.LE, 0)
		}
	}
	// Symmetry breaking: used paths first.
	for i := 0; i+1 < np; i++ {
		m.AddCons([]ilp.VarID{used[i], used[i+1]}, []float64{1, -1}, lp.GE, 0)
	}
	// Coverage (constraint (2)): every Normal valve on some path.
	for _, e := range a.NormalValves() {
		var idx []ilp.VarID
		for i := 0; i < np; i++ {
			if id, ok := blocks[i].v[e]; ok {
				idx = append(idx, id)
			}
		}
		if len(idx) == 0 {
			return nil, ilp.Solution{}, fmt.Errorf("flowpath: valve %d unreachable by any path", e)
		}
		coef := make([]float64, len(idx))
		for k := range coef {
			coef[k] = 1
		}
		m.AddCons(idx, coef, lp.GE, 1)
	}
	sol := m.Solve(ctx, opts)
	if sol.Status == ilp.Canceled {
		return nil, sol, ctx.Err()
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return nil, sol, fmt.Errorf("flowpath: monolithic ILP with np=%d: %v", np, sol.Status)
	}
	var paths []*Path
	for i := 0; i < np; i++ {
		if sol.X[used[i]] < 0.5 {
			continue
		}
		p, err := blocks[i].extract(sol.X)
		if err != nil {
			return nil, sol, err
		}
		paths = append(paths, p)
	}
	if len(uncoveredAfter(a, paths, nil)) > 0 {
		return nil, sol, fmt.Errorf("flowpath: monolithic solution leaves valves uncovered")
	}
	return paths, sol, nil
}
