// Package flowpath generates the flow-path test vectors of the paper
// (Sec. III-B): simple source-to-sink paths, without loops or branches,
// whose union covers every Normal valve of the array. Each path yields one
// test vector (path valves open, everything else closed) that detects
// stuck-at-0 faults on the path.
//
// Three engines are provided:
//
//   - Serpentine: a combinatorial strip-decomposition generator. It is the
//     "vector-based path generation model" the paper's Sec. IV sketches as
//     the scalable alternative to the ILP, and it is exact on obstacle-free
//     arrays. With obstacles, strips detour around them and a patching pass
//     (Dijkstra-guided forced-through paths) covers whatever the strips
//     missed.
//   - ILPIterative: the paper's ILP model (constraints (1), (3), (4) plus
//     port-terminal handling), solved one path at a time maximizing newly
//     covered valves — a set-cover column generation over the exact
//     per-path feasibility model.
//   - ILPMonolithic: the literal multi-path model (1)-(8) minimizing the
//     number of used paths; exponential in practice, intended for small
//     arrays and for validating the other engines.
package flowpath

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/sim"
)

// Path is a simple flow path: an ordered cell sequence from the cell behind
// a source port to the cell behind a sink port, together with the traversed
// edges (including the two port edges).
type Path struct {
	// Cells is the visited cell sequence, all distinct.
	Cells []grid.CellID
	// Valves holds the traversed edges: source port edge, the internal
	// edges between consecutive cells, then the sink port edge.
	Valves []grid.ValveID
}

// Build assembles a Path from a cell sequence plus the port edges at both
// ends, validating simplicity and adjacency.
func Build(a *grid.Array, srcPort, sinkPort grid.ValveID, cells []grid.CellID) (*Path, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("flowpath: empty cell sequence")
	}
	if a.Kind(srcPort) != grid.PortOpen || a.Kind(sinkPort) != grid.PortOpen {
		return nil, fmt.Errorf("flowpath: endpoints must be port edges")
	}
	if a.InteriorCell(srcPort) != cells[0] {
		return nil, fmt.Errorf("flowpath: path starts at cell %d, source port opens into %d",
			cells[0], a.InteriorCell(srcPort))
	}
	if a.InteriorCell(sinkPort) != cells[len(cells)-1] {
		return nil, fmt.Errorf("flowpath: path ends at cell %d, sink port opens into %d",
			cells[len(cells)-1], a.InteriorCell(sinkPort))
	}
	seen := make(map[grid.CellID]bool, len(cells))
	valves := make([]grid.ValveID, 0, len(cells)+1)
	valves = append(valves, srcPort)
	for i, cell := range cells {
		if seen[cell] {
			return nil, fmt.Errorf("flowpath: cell %d visited twice", cell)
		}
		seen[cell] = true
		r, c := a.CellCoords(cell)
		if a.IsObstacle(r, c) {
			return nil, fmt.Errorf("flowpath: path crosses obstacle cell (%d,%d)", r, c)
		}
		if i == 0 {
			continue
		}
		pr, pc := a.CellCoords(cells[i-1])
		e := a.EdgeBetween(pr, pc, r, c)
		if e == grid.NoValve {
			return nil, fmt.Errorf("flowpath: cells (%d,%d) and (%d,%d) not adjacent", pr, pc, r, c)
		}
		if !a.Passable(e) {
			return nil, fmt.Errorf("flowpath: edge %d between (%d,%d)-(%d,%d) is a wall", e, pr, pc, r, c)
		}
		valves = append(valves, e)
	}
	valves = append(valves, sinkPort)
	return &Path{Cells: cells, Valves: valves}, nil
}

// Vector converts the path to a test vector: every Normal valve on the path
// is commanded open, everything else closed.
func (p *Path) Vector(a *grid.Array, name string) *sim.Vector {
	v := sim.NewVector(a, sim.FlowPath, name)
	for _, id := range p.Valves {
		if a.Kind(id) == grid.Normal {
			v.SetOpen(id, true)
		}
	}
	return v
}

// CoveredNormal returns the Normal valves the path covers (tests for
// stuck-at-0), in traversal order.
func (p *Path) CoveredNormal(a *grid.Array) []grid.ValveID {
	var out []grid.ValveID
	for _, id := range p.Valves {
		if a.Kind(id) == grid.Normal {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of cells on the path.
func (p *Path) Len() int { return len(p.Cells) }

// TestedNormal returns the path's Normal valves whose stuck-at-0 fault the
// path's vector actually exposes. Membership alone is not enough: an
// always-open Channel edge touching the path in two places can carry
// pressure around a broken valve — the paper's Fig. 5(a) interference — so
// each valve is checked against the fault simulator.
func (p *Path) TestedNormal(a *grid.Array, s *sim.Simulator) []grid.ValveID {
	vec := p.Vector(a, "probe")
	good := s.Readings(vec, nil)
	var out []grid.ValveID
	for _, id := range p.CoveredNormal(a) {
		bad := s.Readings(vec, []sim.Fault{{Kind: sim.StuckAt0, A: id}})
		for i := range good {
			if good[i] != bad[i] {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// Result is the outcome of flow-path generation.
type Result struct {
	Paths []*Path
	// Uncovered lists Normal valves no generated path covers. Empty on the
	// benchmark arrays; may be non-empty if obstacles isolate a valve.
	Uncovered []grid.ValveID
	// ILP summarizes the solver work behind the ILP engines (zero for the
	// serpentine engine). A non-zero NonOptimal count means some paths were
	// accepted from early-stopped solves and are feasible but not proven
	// optimal — callers should surface a warning.
	ILP ilp.Stats
}

// Vectors converts all paths to test vectors named path0, path1, ...
func (r *Result) Vectors(a *grid.Array) []*sim.Vector {
	out := make([]*sim.Vector, len(r.Paths))
	for i, p := range r.Paths {
		out[i] = p.Vector(a, fmt.Sprintf("path%d", i))
	}
	return out
}

// coverageSet computes the union of covered Normal valves of a path list.
func coverageSet(a *grid.Array, paths []*Path) map[grid.ValveID]bool {
	covered := make(map[grid.ValveID]bool)
	for _, p := range paths {
		for _, id := range p.CoveredNormal(a) {
			covered[id] = true
		}
	}
	return covered
}

// testedSet computes the union of simulator-verified tested valves.
func testedSet(a *grid.Array, s *sim.Simulator, paths []*Path) map[grid.ValveID]bool {
	tested := make(map[grid.ValveID]bool)
	for _, p := range paths {
		for _, id := range p.TestedNormal(a, s) {
			tested[id] = true
		}
	}
	return tested
}

// uncoveredAfter lists Normal valves whose stuck-at-0 fault no path vector
// exposes, ascending. With a nil simulator it falls back to membership
// coverage (used by the monolithic engine's structural check).
func uncoveredAfter(a *grid.Array, paths []*Path, s *sim.Simulator) []grid.ValveID {
	var tested map[grid.ValveID]bool
	if s != nil {
		tested = testedSet(a, s, paths)
	} else {
		tested = coverageSet(a, paths)
	}
	var out []grid.ValveID
	for _, id := range a.NormalValves() {
		if !tested[id] {
			out = append(out, id)
		}
	}
	return out
}
