package flowpath

import (
	"fmt"

	"repro/internal/grid"
)

// The serpentine engine decomposes the array into horizontal strips (covering
// all horizontal-flow valves) and vertical strips (covering all vertical-flow
// valves). Each strip yields one source-to-sink path:
//
//	source cell -> lead-in along column 0 -> boustrophedon sweep of the
//	strip (odd height, so it exits on the far side) -> lead-out along the
//	last column -> sink cell
//
// and symmetrically for column strips. On a full array the union of the two
// strip families covers every interior valve; with obstacles the sweep
// detours around them and the patching pass (patch.go) covers the rest.
//
// Strip heights/widths are kept odd so a sweep entering on the west side
// leaves on the east side (and north/south for column strips).

// oddSplits partitions n into strip sizes of at most maxSize, all odd.
// maxSize <= 0 requests the coarsest split: [n] for odd n, [n-1, 1] for even.
func oddSplits(n, maxSize int) []int {
	if n <= 0 {
		return nil
	}
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	if maxSize%2 == 0 {
		maxSize--
	}
	if maxSize < 1 {
		maxSize = 1
	}
	var out []int
	rem := n
	for rem >= maxSize+2 || rem == maxSize {
		out = append(out, maxSize)
		rem -= maxSize
	}
	switch {
	case rem == 0:
	case rem%2 == 1:
		out = append(out, rem)
	default:
		out = append(out, rem-1, 1)
	}
	return out
}

// walker incrementally builds a simple path over non-obstacle cells.
type walker struct {
	a       *grid.Array
	visited []bool
	cells   []grid.CellID
}

func newWalker(a *grid.Array, start grid.CellID) *walker {
	w := &walker{a: a, visited: make([]bool, a.NumCells())}
	w.visited[start] = true
	w.cells = []grid.CellID{start}
	return w
}

func (w *walker) current() grid.CellID { return w.cells[len(w.cells)-1] }

// passableNeighbors yields (neighbor cell, edge) pairs of a cell.
func passableNeighbors(a *grid.Array, cell grid.CellID) []grid.CellID {
	r, c := a.CellCoords(cell)
	var out []grid.CellID
	for _, e := range a.IncidentValves(r, c) {
		if !a.Passable(e) {
			continue
		}
		u, v := a.EdgeCells(e)
		other := u
		if other == cell {
			other = v
		}
		if other == grid.NoCell {
			continue
		}
		or, oc := a.CellCoords(other)
		if !a.IsObstacle(or, oc) {
			out = append(out, other)
		}
	}
	return out
}

// advance extends the path to the target cell: directly if adjacent, or via
// a BFS detour through unvisited cells. It reports success; on failure the
// path is unchanged. Visited targets report success without moving (the
// sweep simply continues).
func (w *walker) advance(target grid.CellID) bool {
	if target == grid.NoCell {
		return false
	}
	tr, tc := w.a.CellCoords(target)
	if w.a.IsObstacle(tr, tc) {
		return true // skip obstacle waypoints silently
	}
	if w.visited[target] {
		return true
	}
	cur := w.current()
	cr, cc := w.a.CellCoords(cur)
	if e := w.a.EdgeBetween(cr, cc, tr, tc); e != grid.NoValve && w.a.Passable(e) {
		w.visited[target] = true
		w.cells = append(w.cells, target)
		return true
	}
	// BFS through unvisited cells.
	detour := w.bfs(cur, target)
	if detour == nil {
		return false
	}
	for _, cell := range detour[1:] {
		w.visited[cell] = true
		w.cells = append(w.cells, cell)
	}
	return true
}

// bfs finds a path from src to dst through unvisited, non-obstacle cells
// (src excepted); returns the cell sequence including both endpoints.
func (w *walker) bfs(src, dst grid.CellID) []grid.CellID {
	prev := make(map[grid.CellID]grid.CellID)
	prev[src] = src
	queue := []grid.CellID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			var rev []grid.CellID
			for c := dst; ; c = prev[c] {
				rev = append(rev, c)
				if c == src {
					break
				}
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		for _, nb := range passableNeighbors(w.a, cur) {
			if _, seen := prev[nb]; seen || (w.visited[nb] && nb != dst) {
				continue
			}
			prev[nb] = cur
			queue = append(queue, nb)
		}
	}
	return nil
}

// stripSpec describes one sweep.
type stripSpec struct {
	horizontal bool
	lo, hi     int // [lo, hi) rows (horizontal) or columns (vertical)
}

// waypoints enumerates the ideal cell itinerary of the strip, from the
// source cell to the sink cell.
func (s stripSpec) waypoints(a *grid.Array, srcCell, sinkCell grid.CellID) []grid.CellID {
	nr, nc := a.NR(), a.NC()
	var pts []grid.CellID
	add := func(r, c int) {
		if id := a.CellIndex(r, c); id != grid.NoCell {
			pts = append(pts, id)
		}
	}
	sr, sc := a.CellCoords(srcCell)
	tr, tc := a.CellCoords(sinkCell)
	if s.horizontal {
		// Lead-in: from the source down its column to the strip.
		for r := sr; r < s.lo; r++ {
			add(r, sc)
		}
		for i := 0; i < s.hi-s.lo; i++ {
			r := s.lo + i
			if i%2 == 0 {
				for c := 0; c < nc; c++ {
					add(r, c)
				}
			} else {
				for c := nc - 1; c >= 0; c-- {
					add(r, c)
				}
			}
		}
		// Lead-out: down the sink's column to the sink cell.
		for r := s.hi; r <= tr; r++ {
			add(r, tc)
		}
	} else {
		for c := sc; c < s.lo; c++ {
			add(sr, c)
		}
		for j := 0; j < s.hi-s.lo; j++ {
			c := s.lo + j
			if j%2 == 0 {
				for r := 0; r < nr; r++ {
					add(r, c)
				}
			} else {
				for r := nr - 1; r >= 0; r-- {
					add(r, c)
				}
			}
		}
		for c := s.hi; c <= tc; c++ {
			add(tr, c)
		}
	}
	pts = append(pts, sinkCell)
	return pts
}

// serpentinePaths runs the strip engine. stripR/stripC bound the strip
// sizes (0 = direct mode, coarsest odd strips). It returns the strip paths;
// coverage holes are the patch engine's job.
func serpentinePaths(a *grid.Array, stripR, stripC int) ([]*Path, error) {
	srcs, sinks := a.Sources(), a.Sinks()
	if len(srcs) == 0 || len(sinks) == 0 {
		return nil, fmt.Errorf("flowpath: array needs at least one source and one sink")
	}
	srcPort, sinkPort := srcs[0], sinks[0]
	srcCell := a.InteriorCell(srcPort.Valve)
	sinkCell := a.InteriorCell(sinkPort.Valve)

	var specs []stripSpec
	lo := 0
	for _, h := range oddSplits(a.NR(), stripR) {
		specs = append(specs, stripSpec{horizontal: true, lo: lo, hi: lo + h})
		lo += h
	}
	lo = 0
	for _, w := range oddSplits(a.NC(), stripC) {
		specs = append(specs, stripSpec{horizontal: false, lo: lo, hi: lo + w})
		lo += w
	}

	var paths []*Path
	for _, spec := range specs {
		w := newWalker(a, srcCell)
		for _, pt := range spec.waypoints(a, srcCell, sinkCell) {
			w.advance(pt) // failures skip the waypoint; patching recovers
		}
		// Terminate at the sink: obstacle detours may have passed through
		// the sink cell mid-sweep, in which case the path is truncated at
		// that first visit (a simple path cannot revisit it).
		if idx := indexOf(w.cells, sinkCell); idx >= 0 {
			w.cells = w.cells[:idx+1]
		} else if !w.advance(sinkCell) || w.current() != sinkCell {
			continue // path cannot terminate; drop it
		}
		p, err := Build(a, srcPort.Valve, sinkPort.Valve, w.cells)
		if err != nil {
			return nil, fmt.Errorf("flowpath: strip %+v produced invalid path: %v", spec, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// indexOf returns the first position of target in cells, or -1.
func indexOf(cells []grid.CellID, target grid.CellID) int {
	for i, c := range cells {
		if c == target {
			return i
		}
	}
	return -1
}
