package flowpath

import (
	"math"

	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/sim"
)

// The patching engine builds one flow path through a specific valve: a
// source-to-valve segment and a valve-to-sink segment, vertex-disjoint so
// the result is a simple path (the paper's no-loops, no-branches condition,
// Fig. 5(a)). Segment routing is Dijkstra with uncovered valves made cheap,
// so each patch path opportunistically covers as many remaining valves as
// possible — this keeps the patch path count low.

// Router answers forced-through path queries over one array. It owns the
// cell-adjacency graph and the Dijkstra scratch, so a loop issuing many
// queries (leakage vectors, baseline vectors, patch passes) builds the
// graph once instead of once per query — on a 30x30 array that alone was
// half the allocation volume of a full Table I row.
type Router struct {
	a  *grid.Array
	g  *graph.Graph
	sc *graph.DijkstraScratch
	eb []int // edge-path buffer reused across queries
}

// NewRouter builds the routing state for the array.
func NewRouter(a *grid.Array) *Router {
	g := cellGraph(a)
	return &Router{a: a, g: g, sc: g.NewDijkstraScratch()}
}

// cellGraph builds the cell-adjacency graph over passable interior edges;
// edge labels are valve IDs.
func cellGraph(a *grid.Array) *graph.Graph {
	g := graph.New(a.NumCells())
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if !a.Passable(vid) {
			continue
		}
		u, w := a.EdgeCells(vid)
		if u == grid.NoCell || w == grid.NoCell {
			continue
		}
		ur, uc := a.CellCoords(u)
		wr, wc := a.CellCoords(w)
		if a.IsObstacle(ur, uc) || a.IsObstacle(wr, wc) {
			continue
		}
		g.AddEdge(int(u), int(w), id)
	}
	return g
}

// segment finds a cheap simple path src->dst avoiding the given cells and
// banned valves, preferring edges whose valves are still uncovered. It
// returns the cell sequence (nil if unreachable).
func (rt *Router) segment(src, dst grid.CellID,
	uncovered map[grid.ValveID]bool, avoid map[grid.CellID]bool,
	banned map[grid.ValveID]bool, jitter int) []grid.CellID {
	if src == dst {
		if avoid[src] {
			return nil
		}
		return []grid.CellID{src}
	}
	if avoid[src] || avoid[dst] {
		return nil
	}
	g := rt.g
	weight := func(e int) float64 {
		ed := g.EdgeAt(e)
		if avoid[grid.CellID(ed.U)] || avoid[grid.CellID(ed.V)] || banned[grid.ValveID(ed.Label)] {
			return math.Inf(1)
		}
		base := 1.0
		if uncovered[grid.ValveID(ed.Label)] {
			base = 0.05
		}
		if jitter > 0 {
			base *= 1 + 0.8*float64((e*2654435761+jitter*40503)%97)/97
		}
		return base
	}
	edges := g.DijkstraPathEdgesInto(rt.sc, int(src), int(dst), weight, rt.eb[:0])
	if edges == nil {
		return nil
	}
	rt.eb = edges
	cells := []grid.CellID{src}
	cur := int(src)
	for _, eid := range edges {
		e := g.EdgeAt(eid)
		if e.U == cur {
			cur = e.V
		} else {
			cur = e.U
		}
		cells = append(cells, grid.CellID(cur))
	}
	return cells
}

// pathThrough builds a simple source->sink path forced through valve target.
func (rt *Router) pathThrough(srcPort, sinkPort grid.ValveID,
	target grid.ValveID, uncovered map[grid.ValveID]bool) *Path {
	return rt.pathThroughJittered(srcPort, sinkPort, target, uncovered, nil, 0)
}

func (rt *Router) pathThroughAvoiding(srcPort, sinkPort grid.ValveID,
	target grid.ValveID, uncovered map[grid.ValveID]bool,
	banned map[grid.ValveID]bool) *Path {
	return rt.pathThroughJittered(srcPort, sinkPort, target, uncovered, banned, 0)
}

// pathThroughJittered is pathThroughAvoiding with a deterministic weight
// perturbation (jitter > 0), used to explore alternative routes when the
// shortest one is shunted by a channel.
func (rt *Router) pathThroughJittered(srcPort, sinkPort grid.ValveID,
	target grid.ValveID, uncovered map[grid.ValveID]bool,
	banned map[grid.ValveID]bool, jitter int) *Path {
	if banned[target] {
		return nil
	}
	a := rt.a
	u, w := a.EdgeCells(target)
	if u == grid.NoCell || w == grid.NoCell {
		return nil
	}
	srcCell := a.InteriorCell(srcPort)
	sinkCell := a.InteriorCell(sinkPort)
	for _, ends := range [][2]grid.CellID{{u, w}, {w, u}} {
		first, second := ends[0], ends[1]
		// Source segment must stay clear of the far endpoint (so the target
		// valve itself is the crossing) and of the sink cell (so the second
		// segment can terminate there).
		avoid1 := map[grid.CellID]bool{second: true}
		if first != sinkCell {
			avoid1[sinkCell] = true
		}
		seg1 := rt.segment(srcCell, first, uncovered, avoid1, banned, jitter)
		if seg1 == nil {
			continue
		}
		avoid := make(map[grid.CellID]bool, len(seg1))
		for _, c := range seg1 {
			avoid[c] = true
		}
		seg2 := rt.segment(second, sinkCell, uncovered, avoid, banned, jitter)
		if seg2 == nil {
			continue
		}
		cells := append(append([]grid.CellID{}, seg1...), seg2...)
		p, err := Build(a, srcPort, sinkPort, cells)
		if err != nil {
			continue
		}
		return p
	}
	return nil
}

// ThroughAvoiding builds a simple source-to-sink path through target that
// never traverses the banned valves. The leakage-vector generator uses it
// to observe one valve of a control-channel pair while the other stays
// commanded closed. Returns nil if no such path exists.
func (rt *Router) ThroughAvoiding(target grid.ValveID, banned map[grid.ValveID]bool) *Path {
	return rt.ThroughAvoidingJitter(target, banned, 0)
}

// ThroughAvoidingJitter is ThroughAvoiding with a deterministic weight
// perturbation: jitter > 0 yields wiggly routes that alternate orientation
// often, which lets one leakage vector split many control-lane pairs.
func (rt *Router) ThroughAvoidingJitter(target grid.ValveID, banned map[grid.ValveID]bool, jitter int) *Path {
	a := rt.a
	srcs, sinks := a.Sources(), a.Sinks()
	if len(srcs) == 0 || len(sinks) == 0 {
		return nil
	}
	return rt.pathThroughJittered(srcs[0].Valve, sinks[0].Valve, target, nil, banned, jitter)
}

// patchPaths covers the listed valves with forced-through paths, greedily
// recomputing simulator-verified coverage after each path. It returns the
// new paths and any valves that could not be covered (valves walled in by
// obstacles, or valves physically shunted by a parallel channel).
func patchPaths(a *grid.Array, s *sim.Simulator, srcPort, sinkPort grid.ValveID,
	missing []grid.ValveID) ([]*Path, []grid.ValveID) {
	rt := NewRouter(a)
	uncovered := make(map[grid.ValveID]bool, len(missing))
	for _, id := range missing {
		uncovered[id] = true
	}
	var strict map[grid.ValveID]bool // lazily built channel-avoidance ban set
	var paths []*Path
	var impossible []grid.ValveID
	tests := func(p *Path, target grid.ValveID) bool {
		for _, id := range p.TestedNormal(a, s) {
			if id == target {
				return true
			}
		}
		return false
	}
	for len(uncovered) > 0 {
		// Deterministic order: smallest remaining valve ID.
		var target grid.ValveID = -1
		for id := range uncovered {
			if target == -1 || id < target {
				target = id
			}
		}
		// Retry ladder: coverage-weighted, plain shortest, three jittered
		// reroutes, then a channel-avoiding route (a path touching channel
		// regions only next to the target cannot be bypassed through them —
		// Fig. 5(a) with always-open edges).
		var p *Path
		for attempt := 0; attempt <= 5; attempt++ {
			var cand *Path
			switch attempt {
			case 0:
				cand = rt.pathThrough(srcPort, sinkPort, target, uncovered)
			case 1:
				cand = rt.pathThrough(srcPort, sinkPort, target, nil)
			case 2, 3, 4:
				cand = rt.pathThroughJittered(srcPort, sinkPort, target, nil, nil, attempt)
			default:
				if strict == nil {
					strict = channelAdjacentBans(a, rt.g)
				}
				cand = rt.pathThroughAvoiding(srcPort, sinkPort, target, uncovered,
					relaxAroundTarget(a, strict, target))
			}
			if cand != nil && tests(cand, target) {
				p = cand
				break
			}
		}
		if p == nil {
			impossible = append(impossible, target)
			delete(uncovered, target)
			continue
		}
		paths = append(paths, p)
		for _, id := range p.TestedNormal(a, s) {
			delete(uncovered, id)
		}
	}
	return paths, impossible
}

// channelAdjacentBans returns the edges a channel-avoiding path must not
// use: every Channel edge and every edge incident to a cell that belongs to
// a channel-connected component.
func channelAdjacentBans(a *grid.Array, g *graph.Graph) map[grid.ValveID]bool {
	chCell := make(map[grid.CellID]bool)
	for id := 0; id < a.NumValves(); id++ {
		vid := grid.ValveID(id)
		if a.Kind(vid) != grid.Channel {
			continue
		}
		u, w := a.EdgeCells(vid)
		chCell[u] = true
		chCell[w] = true
	}
	banned := make(map[grid.ValveID]bool)
	for _, e := range g.Edges() {
		vid := grid.ValveID(e.Label)
		if a.Kind(vid) == grid.Channel ||
			chCell[grid.CellID(e.U)] || chCell[grid.CellID(e.V)] {
			banned[vid] = true
		}
	}
	return banned
}

// relaxAroundTarget copies the ban set but re-allows the target valve and
// the other edges of its two endpoint cells, so targets that themselves sit
// next to a channel stay reachable (a single touch point cannot bypass).
func relaxAroundTarget(a *grid.Array, banned map[grid.ValveID]bool, target grid.ValveID) map[grid.ValveID]bool {
	out := make(map[grid.ValveID]bool, len(banned))
	for id := range banned {
		out[id] = true
	}
	allow := func(cell grid.CellID) {
		if cell == grid.NoCell {
			return
		}
		r, c := a.CellCoords(cell)
		for _, e := range a.IncidentValves(r, c) {
			if a.Kind(e) == grid.Normal {
				delete(out, e)
			}
		}
	}
	u, w := a.EdgeCells(target)
	allow(u)
	allow(w)
	delete(out, target)
	return out
}
