// Package repro is a from-scratch Go reproduction of "Testing Microfluidic
// Fully Programmable Valve Arrays (FPVAs)" (Liu, Li, Bhattacharya,
// Chakrabarty, Ho, Schlichtmann — DATE 2017, arXiv:1705.04996).
//
// The library lives under internal/: the FPVA array model (grid), a graph
// library (graph), an LP/ILP solver stack (lp, ilp), the flow-path, cut-set
// and control-leakage test generators (flowpath, cutset, leakage), the
// pressure-propagation fault simulator (sim), the top-level API (core), the
// benchmark harness (bench) and ASCII figure rendering (render). See
// README.md, DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section.
package repro
