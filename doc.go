// Package repro is a from-scratch Go reproduction of "Testing Microfluidic
// Fully Programmable Valve Arrays (FPVAs)" (Liu, Li, Bhattacharya,
// Chakrabarty, Ho, Schlichtmann — DATE 2017, arXiv:1705.04996).
//
// The public API is the top-level fpva package (repro/fpva): array
// modelling with functional options, context-aware test-set generation
// returning a Plan, fault-injection campaigns and exhaustive guarantee
// verification with progress callbacks, and a versioned JSON wire format
// that decouples generation from simulation. The commands (cmd/fpvatest,
// cmd/fpvasim, cmd/fpvafig) and all examples/ programs consume only that
// surface.
//
// The implementation lives under internal/ and may change without notice:
// the FPVA array model (grid), a graph library (graph), an LP/ILP solver
// stack (lp, ilp), the flow-path, cut-set and control-leakage test
// generators (flowpath, cutset, leakage), the pressure-propagation fault
// simulator (sim), the pipeline orchestration (core), the benchmark
// harness (bench) and ASCII figure rendering (render). See README.md,
// DESIGN.md and EXPERIMENTS.md.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section.
package repro
