package fpva

import (
	"bytes"
	"context"
	"testing"
)

// TestPlanBytesBitIdenticalToEncodePlan pins the served-from-cache
// contract: the bytes a generate job hands out (and fpvad writes to the
// network) are exactly EncodePlan of the job's plan — for the cold solve,
// for a cache hit, and for a service with caching disabled (the on-demand
// fallback).
func TestPlanBytesBitIdenticalToEncodePlan(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, svc *Service, wantHit bool) {
		t.Helper()
		j, err := svc.SubmitGenerate(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if j.CacheHit() != wantHit {
			t.Fatalf("cacheHit = %v, want %v", j.CacheHit(), wantHit)
		}
		plan, err := j.Plan()
		if err != nil {
			t.Fatal(err)
		}
		wire, err := j.PlanBytes()
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := EncodePlan(&want, plan); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, want.Bytes()) {
			t.Fatalf("PlanBytes differs from EncodePlan: %d vs %d bytes", len(wire), want.Len())
		}
		// The cached encoding must decode to an equivalent plan.
		if _, err := DecodePlan(bytes.NewReader(wire)); err != nil {
			t.Fatalf("cached wire bytes do not decode: %v", err)
		}
	}
	svc := NewService(WithServiceWorkers(1))
	defer svc.Close()
	check(t, svc, false) // cold solve
	check(t, svc, true)  // cache hit serves the same stored bytes

	nocache := NewService(WithServiceWorkers(1), WithCacheBytes(0))
	defer nocache.Close()
	check(t, nocache, false) // on-demand fallback
}
