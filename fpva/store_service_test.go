package fpva

// Service-level tests of the durable plan store (WithCacheDir) and the
// admission controls (WithMaxPending, WithJobTimeout). These are
// in-package: the store fault-injection seam (withStoreHooks) is
// deliberately unexported.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestCacheDirRestartServesIdenticalBytes is the restart-persistence
// acceptance check: a new service over the same cache directory serves
// bit-identical plan bytes without re-solving.
func TestCacheDirRestartServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArray(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := NewService(WithCacheDir(dir))
	first, err := generateOn(t, svc1, a).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if st := svc1.Stats(); st.Store.Mode != "ok" || st.Store.Writes != 1 {
		t.Fatalf("after first solve: store = %+v", st.Store)
	}
	svc1.Close()

	// "Restart": a fresh service, same directory, cold memory cache.
	svc2 := NewService(WithCacheDir(dir))
	defer svc2.Close()
	b, err := NewArray(5, 5) // content-identical, distinct instance
	if err != nil {
		t.Fatal(err)
	}
	j := generateOn(t, svc2, b)
	if !j.CacheHit() {
		t.Error("restarted service missed its disk cache")
	}
	second, err := j.PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("restarted service served different plan bytes")
	}
	st := svc2.Stats()
	if st.Solves != 0 {
		t.Errorf("restarted service re-solved: %d solves", st.Solves)
	}
	if st.Store.Hits != 1 {
		t.Errorf("store hits = %d, want 1", st.Store.Hits)
	}
}

// TestCacheDirConcurrentIdenticalSubmissions: after a restart, N
// concurrent identical submissions coalesce onto one disk read (the
// read-back happens inside the singleflight).
func TestCacheDirConcurrentIdenticalSubmissions(t *testing.T) {
	dir := t.TempDir()
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := NewService(WithCacheDir(dir))
	want, err := generateOn(t, svc1, a).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2 := NewService(WithCacheDir(dir))
	defer svc2.Close()
	const n = 8
	var wg sync.WaitGroup
	wires := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ai, err := NewArray(4, 4)
			if err != nil {
				t.Error(err)
				return
			}
			j, err := svc2.SubmitGenerate(context.Background(), ai)
			if err != nil {
				t.Error(err)
				return
			}
			if err := j.Wait(context.Background()); err != nil {
				t.Error(err)
				return
			}
			wires[i], _ = j.PlanBytes()
		}(i)
	}
	wg.Wait()
	for i, w := range wires {
		if !bytes.Equal(w, want) {
			t.Errorf("submission %d served different bytes", i)
		}
	}
	st := svc2.Stats()
	if st.Solves != 0 {
		t.Errorf("re-solved despite disk cache: %d solves", st.Solves)
	}
	if st.Store.Hits > 1 {
		t.Errorf("store hits = %d, want <= 1 (singleflight should coalesce)", st.Store.Hits)
	}
}

// TestCacheDirEvictionUnderConcurrentLoad: a tiny disk budget under
// concurrent distinct submissions evicts without corrupting, racing, or
// tripping the store.
func TestCacheDirEvictionUnderConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	shapes := [][2]int{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {2, 4}, {4, 2}, {3, 4}, {4, 3}}
	// Budget sized off one real plan so the full set cannot fit.
	probe := NewService(WithCacheDir(t.TempDir()))
	a0, err := NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	wire0, err := generateOn(t, probe, a0).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	cap := int64(len(wire0)) * 3

	svc := NewService(WithCacheDir(dir), WithDiskCacheBytes(cap))
	defer svc.Close()
	var wg sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for round := 0; round < 2; round++ {
		for _, sh := range shapes {
			wg.Add(1)
			go func(r, c int) {
				defer wg.Done()
				a, err := NewArray(r, c)
				if err != nil {
					t.Error(err)
					return
				}
				j, err := svc.SubmitGenerate(context.Background(), a)
				if err != nil {
					t.Error(err)
					return
				}
				if err := j.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
				if w, err := j.PlanBytes(); err == nil {
					mu.Lock()
					total += int64(len(w))
					mu.Unlock()
				}
			}(sh[0], sh[1])
		}
		wg.Wait()
	}
	st := svc.Stats()
	if st.Store.Mode != "ok" {
		t.Fatalf("store tripped under eviction load: %+v", st.Store)
	}
	if st.Store.Bytes > cap {
		t.Errorf("store over budget: %d > %d", st.Store.Bytes, cap)
	}
	if total/2 > cap && st.Store.Evictions == 0 {
		t.Errorf("wrote %d bytes into a %d budget with no evictions", total/2, cap)
	}
}

// TestStoreDegradedTripAndRecover: a write-path EIO flips the service's
// store to degraded (visible in Stats), jobs keep succeeding, and once
// the disk heals the next post-backoff write recovers it.
func TestStoreDegradedTripAndRecover(t *testing.T) {
	clock := newTestClock()
	ffs := &store.FaultFS{Base: store.OSFS()}
	svc := NewService(
		WithCacheDir(t.TempDir()),
		withStoreHooks(ffs, clock.Now, time.Second, time.Minute),
	)
	defer svc.Close()

	eio := errors.New("injected EIO")
	ffs.SetHook(func(op store.Op, path string) error {
		if op == store.OpCreateTemp {
			return eio
		}
		return nil
	})
	a, err := NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	j := generateOn(t, svc, a) // solve succeeds; the write-through fails
	if _, err := j.Plan(); err != nil {
		t.Fatalf("job failed because of a store error: %v", err)
	}
	st := svc.Stats()
	if st.Store.Mode != "degraded" || st.Store.Trips != 1 {
		t.Fatalf("store after EIO: %+v", st.Store)
	}

	ffs.SetHook(nil)
	clock.Advance(2 * time.Second)
	b, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	generateOn(t, svc, b) // this write is the probe
	st = svc.Stats()
	if st.Store.Mode != "ok" || st.Store.Recoveries != 1 {
		t.Fatalf("store after heal: %+v", st.Store)
	}
}

// TestMaxPendingShedsQueueFull: with the admission bound at 1, a second
// submission while the first is still running fails fast with
// ErrQueueFull, and the shed is counted.
func TestMaxPendingShedsQueueFull(t *testing.T) {
	svc := NewService(WithServiceWorkers(1), WithMaxPending(1))
	defer svc.Close()
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	j1, err := svc.SubmitGenerate(context.Background(), a,
		WithProgress(func(Event) {
			once.Do(func() { close(started) })
			<-release
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	b, err := NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitGenerate(context.Background(), b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submission: err = %v, want ErrQueueFull", err)
	}
	if st := svc.Stats(); st.JobsShed != 1 {
		t.Errorf("JobsShed = %d, want 1", st.JobsShed)
	}

	close(release)
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The slot freed: the same submission is admitted now.
	j2, err := svc.SubmitGenerate(context.Background(), b)
	if err != nil {
		t.Fatalf("post-drain submission still shed: %v", err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobTimeoutCancelsQueuedJob: WithJobTimeout covers queue wait, so
// a job stuck behind a hog is canceled at its deadline without ever
// holding a worker slot.
func TestJobTimeoutCancelsQueuedJob(t *testing.T) {
	svc := NewService(WithServiceWorkers(1), WithJobTimeout(100*time.Millisecond))
	defer svc.Close()
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hog, err := svc.SubmitGenerate(context.Background(), a,
		WithProgress(func(Event) {
			once.Do(func() { close(started) })
			<-release
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	b, err := NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := svc.SubmitGenerate(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if err := queued.Wait(context.Background()); err == nil {
		t.Fatal("queued job finished despite the hogged worker")
	}
	if got := queued.State(); got != JobCanceled {
		t.Errorf("queued job state = %v, want canceled", got)
	}
	close(release)
	hog.Wait(context.Background())
}
