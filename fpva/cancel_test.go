package fpva_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/fpva"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test after the deadline. Campaign and solver workers
// must not outlive a cancelled call.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d still running, want <= %d", runtime.NumGoroutine(), want)
}

// TestCancelMidBranchAndBound cancels a context while the ILP engines are
// deep in the branch-and-bound node loop. Generate must return
// context.Canceled well before the solve could have finished, with no
// worker goroutines left behind.
func TestCancelMidBranchAndBound(t *testing.T) {
	a, err := fpva.NewArray(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = fpva.Generate(ctx, a,
		fpva.WithDirectModel(),
		fpva.WithPathEngine(fpva.PathEngineILPIterative),
		fpva.WithSolverWorkers(4))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (after %v), want context.Canceled", err, elapsed)
	}
	// Prompt: node-level granularity, far below a full 10x10 direct solve.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	waitGoroutines(t, before)
	cancel()
}

// TestCancelMidCampaign cancels a context while campaign workers are
// churning through a deliberately huge trial budget.
func TestCancelMidCampaign(t *testing.T) {
	a, err := fpva.BenchmarkArray("10x10")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := plan.Campaign(ctx,
		fpva.WithTrials(50_000_000), fpva.WithNumFaults(5), fpva.WithSeed(1))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (after %v), want context.Canceled", err, elapsed)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if res.Trials >= 50_000_000 {
		t.Errorf("partial result claims all %d trials ran", res.Trials)
	}
	waitGoroutines(t, before)
	cancel()
}

// TestCancelBeforeStart: an already-cancelled context fails fast on every
// entry point.
func TestCancelBeforeStart(t *testing.T) {
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fpva.Generate(ctx, a); !errors.Is(err, context.Canceled) {
		t.Errorf("Generate: %v", err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Campaign(ctx, fpva.WithTrials(100)); !errors.Is(err, context.Canceled) {
		t.Errorf("Campaign: %v", err)
	}
	if _, err := plan.VerifySingleFaults(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("VerifySingleFaults: %v", err)
	}
	if _, err := plan.VerifyDoubleFaults(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("VerifyDoubleFaults: %v", err)
	}
}
