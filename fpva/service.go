package fpva

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/store"
	"repro/internal/workerpool"
)

// Service is the long-lived, concurrent entry point of the pipeline: one
// Service per process owns a plan cache, a bounded worker pool, and the
// lifecycle of every submitted job.
//
//	svc := fpva.NewService()
//	defer svc.Close()
//	job, _ := svc.SubmitGenerate(ctx, array)
//	if err := job.Wait(ctx); err != nil { ... }
//	plan, _ := job.Plan()
//
// Identical generate submissions are deduplicated twice over: completed
// plans are served from a content-addressed LRU cache (the key hashes the
// array's v1 wire encoding plus every option that can change the vectors),
// and N concurrent requests for the same key trigger exactly one solve —
// followers attach to the in-flight computation and observe its progress
// events. The package-level Generate function is a thin wrapper over a
// shared default service, so plain library callers get the same behaviour.
//
// A Service is safe for concurrent use and holds no goroutines while idle.
type Service struct {
	workers int
	sem     chan struct{} // worker-pool slots

	// Subprocess executor state (nil pool means in-process solves).
	executor      SolverExecutor
	pool          *workerpool.Pool
	solverTimeout time.Duration
	jobTTL        time.Duration
	jobTimeout    time.Duration

	// Admission control: with maxActive > 0, at most that many jobs may
	// be pending or running at once — further submissions are shed with
	// ErrQueueFull instead of growing the pending queue without bound.
	maxActive int

	// store, when non-nil, is the durable half of the plan cache
	// (WithCacheDir): completed plans are written through to disk and a
	// restarted service reads them back bit-identically.
	store *store.Store

	mu       sync.Mutex
	cache    *planCache // nil when caching is disabled
	sigs     *sigCache  // compiled diagnosis signature tables
	flights  map[string]*flight
	jobs     map[string]*Job
	order    []*Job // submission order, for Jobs()
	seq      int
	terminal int // terminal jobs currently retained
	closed   bool

	retain int // terminal-job retention cap; <= 0 keeps all

	// counters (guarded by mu)
	active                  int // non-terminal jobs, for admission control
	shed                    int // submissions rejected with ErrQueueFull
	submitted               int
	hits, misses, coalesced int
	solves                  int
	solverWall              time.Duration
	campaigns               int
	campaignWall            time.Duration
	verifies                int
	diagnoses               int
	diagnoseWall            time.Duration
	sigHits, sigMisses      int
	byKind                  map[JobKind]*JobKindStats

	wg sync.WaitGroup
}

// ServiceOption customizes NewService.
type ServiceOption func(*serviceConfig)

type serviceConfig struct {
	workers    int
	cacheBytes int64
	retain     int

	executor      SolverExecutor
	workerCmd     []string
	poolSize      int
	solverTimeout time.Duration
	workerMemMB   int
	jobTTL        time.Duration
	jobTimeout    time.Duration

	maxActive int

	cacheDir   string
	diskBytes  int64
	storeFS    store.FS         // test hook: injectable filesystem faults
	storeNow   func() time.Time // test hook: injectable clock for probe backoff
	storeBkMin time.Duration
	storeBkMax time.Duration
}

// DefaultJobRetention is the terminal-job retention cap of a service built
// without WithJobRetention.
const DefaultJobRetention = 4096

// WithServiceWorkers bounds how many jobs execute concurrently (default:
// runtime.NumCPU()). Queued jobs stay JobPending until a slot frees up.
func WithServiceWorkers(n int) ServiceOption { return func(c *serviceConfig) { c.workers = n } }

// WithCacheBytes sets the plan-cache byte budget (default DefaultCacheBytes;
// <= 0 disables caching). An entry's cost is the length of its v1 wire
// encoding.
func WithCacheBytes(n int64) ServiceOption { return func(c *serviceConfig) { c.cacheBytes = n } }

// WithJobRetention caps how many terminal jobs the service keeps for later
// lookup (default DefaultJobRetention; <= 0 keeps all). When a job turns
// terminal beyond the cap, the oldest terminal jobs are dropped from Job /
// Jobs tracking — their handles keep working for whoever holds them.
func WithJobRetention(n int) ServiceOption { return func(c *serviceConfig) { c.retain = n } }

// WithSolverExecutor selects where generate solves run (default
// ExecInProcess). With ExecSubprocess the service owns a pool of worker
// subprocesses (see WithWorkerCommand, WithSolverPoolSize): a solver
// crash, hang, or memory blow-up fails only the job that hit it, the pool
// restarts the worker, and the service keeps serving. Cache keys, the
// singleflight path, and the plan wire bytes are identical across
// executors — a subprocess solve produces the same vectors, cached
// verbatim from the worker's response.
func WithSolverExecutor(e SolverExecutor) ServiceOption {
	return func(c *serviceConfig) { c.executor = e }
}

// WithWorkerCommand sets the worker subprocess argv for ExecSubprocess
// (default: an fpvaworker binary next to the current executable, then
// PATH). The command must speak the solver-worker protocol —
// ServeSolverWorker on stdin/stdout.
func WithWorkerCommand(argv ...string) ServiceOption {
	return func(c *serviceConfig) { c.workerCmd = append([]string(nil), argv...) }
}

// WithSolverPoolSize bounds how many worker subprocesses ExecSubprocess
// keeps (default: the service worker count). Processes spawn lazily and
// stay alive across jobs.
func WithSolverPoolSize(n int) ServiceOption { return func(c *serviceConfig) { c.poolSize = n } }

// WithSolverTimeout bounds one generate solve's wall clock (default: none).
// It applies to both executors; under ExecSubprocess an expired solve is
// first asked to cancel and its worker killed only if it does not comply.
func WithSolverTimeout(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.solverTimeout = d }
}

// WithWorkerMemLimitMB caps a worker subprocess's memory (default: none;
// ExecSubprocess only). The limit is handed to the worker as its soft Go
// runtime memory limit, and the supervisor hard-kills any worker whose
// resident set exceeds twice it — the killed solve fails, the pool
// restarts the worker.
func WithWorkerMemLimitMB(mb int) ServiceOption {
	return func(c *serviceConfig) { c.workerMemMB = mb }
}

// DefaultDiskCacheBytes is the on-disk plan-store byte budget of a
// service built with WithCacheDir but without WithDiskCacheBytes.
const DefaultDiskCacheBytes = 256 << 20

// WithCacheDir makes the plan cache durable: completed plans are
// written through to an on-disk content-addressed store under dir
// (atomic temp-file+rename writes, checksums verified on every read),
// and a cache miss reads back from disk before solving — so a
// restarted service serves bit-identical plan bytes for everything it
// solved before. The store degrades instead of failing: on disk
// trouble (ENOSPC, EIO) it trips into memory-only mode, re-probes with
// doubling backoff, and recovers on its own; Stats().Store reports the
// mode and every counter. Two services may share a dir only if at most
// one writes to it.
func WithCacheDir(dir string) ServiceOption { return func(c *serviceConfig) { c.cacheDir = dir } }

// WithDiskCacheBytes sets the on-disk store's LRU byte budget (default
// DefaultDiskCacheBytes; meaningful only with WithCacheDir). An
// entry's cost is its v1 wire length; eviction never removes an entry
// with an in-flight reader.
func WithDiskCacheBytes(n int64) ServiceOption { return func(c *serviceConfig) { c.diskBytes = n } }

// withStoreHooks injects the store's filesystem, clock, and probe
// backoff bounds — the fault-injection seam used by tests; production
// callers never need it.
func withStoreHooks(fs store.FS, now func() time.Time, bkMin, bkMax time.Duration) ServiceOption {
	return func(c *serviceConfig) {
		c.storeFS, c.storeNow = fs, now
		c.storeBkMin, c.storeBkMax = bkMin, bkMax
	}
}

// WithMaxPending bounds the admission queue: at most n submitted jobs
// may be pending or running at once, and further Submit* calls fail
// fast with ErrQueueFull (deterministic load shedding) instead of
// queueing without bound (default: unbounded). Terminal jobs do not
// count against the bound.
func WithMaxPending(n int) ServiceOption { return func(c *serviceConfig) { c.maxActive = n } }

// WithJobTimeout bounds every submitted job's total lifetime — queue
// wait included — by deriving each job's context with this deadline
// (default: none). A job that overruns is canceled exactly as if its
// submitter had canceled it.
func WithJobTimeout(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.jobTimeout = d }
}

// WithJobTTL expires terminal jobs: once a job has been done, failed, or
// canceled for longer than the TTL it is dropped from Job / Jobs / Stats
// tracking, exactly as if Forget had been called (default: none — jobs are
// retained until the WithJobRetention cap reaps them). Held handles keep
// working.
func WithJobTTL(d time.Duration) ServiceOption { return func(c *serviceConfig) { c.jobTTL = d } }

// NewService builds a Service. Close it when done to cancel outstanding
// jobs and wait for their workers to drain.
func NewService(opts ...ServiceOption) *Service {
	cfg := serviceConfig{
		workers:    runtime.NumCPU(),
		cacheBytes: DefaultCacheBytes,
		retain:     DefaultJobRetention,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	s := &Service{
		workers:       cfg.workers,
		sem:           make(chan struct{}, cfg.workers),
		sigs:          newSigCache(defaultSigCacheEntries),
		flights:       make(map[string]*flight),
		jobs:          make(map[string]*Job),
		byKind:        make(map[JobKind]*JobKindStats),
		retain:        cfg.retain,
		executor:      cfg.executor,
		solverTimeout: cfg.solverTimeout,
		jobTTL:        cfg.jobTTL,
		jobTimeout:    cfg.jobTimeout,
		maxActive:     cfg.maxActive,
	}
	if cfg.cacheBytes > 0 {
		s.cache = newPlanCache(cfg.cacheBytes)
	}
	if cfg.cacheDir != "" {
		if cfg.diskBytes == 0 {
			cfg.diskBytes = DefaultDiskCacheBytes
		}
		s.store = store.Open(store.Options{
			Dir: cfg.cacheDir, CapBytes: cfg.diskBytes,
			FS: cfg.storeFS, Now: cfg.storeNow,
			BackoffMin: cfg.storeBkMin, BackoffMax: cfg.storeBkMax,
		})
	}
	if cfg.executor == ExecSubprocess {
		s.pool = newSolverPool(cfg)
	}
	return s
}

var defaultService struct {
	once sync.Once
	s    *Service
}

// DefaultService returns the process-wide service backing the package-level
// Generate wrapper, creating it on first use with default options.
func DefaultService() *Service {
	defaultService.once.Do(func() { defaultService.s = NewService() })
	return defaultService.s
}

// ServiceStats is a point-in-time snapshot of a service's counters.
type ServiceStats struct {
	// JobsSubmitted counts every accepted submission over the service's
	// lifetime; the per-state fields partition the currently retained jobs
	// (see WithJobRetention) by state.
	JobsSubmitted int
	JobsPending   int
	JobsRunning   int
	JobsDone      int
	JobsFailed    int
	JobsCanceled  int

	// CacheHits / CacheMisses count completed-plan lookups; CacheCoalesced
	// counts generate jobs that attached to an in-flight identical solve
	// (the singleflight path). CacheEntries/CacheBytes describe current
	// occupancy against CacheCapBytes.
	CacheHits      int
	CacheMisses    int
	CacheCoalesced int
	CacheEntries   int
	CacheBytes     int64
	CacheCapBytes  int64

	// Solves counts generation pipelines actually executed (cache misses
	// that ran to completion); SolverWall is their cumulative wall time.
	Solves     int
	SolverWall time.Duration

	// Campaigns / CampaignWall account completed campaign jobs; Verifies
	// counts completed verification jobs.
	Campaigns    int
	CampaignWall time.Duration
	Verifies     int

	// Diagnoses / DiagnoseWall account completed diagnosis jobs.
	// SigCacheHits / SigCacheMisses count signature-table lookups: a hit
	// skips recompiling the candidate response matrix.
	Diagnoses      int
	DiagnoseWall   time.Duration
	SigCacheHits   int
	SigCacheMisses int

	// JobsShed counts submissions rejected with ErrQueueFull by the
	// WithMaxPending admission bound.
	JobsShed int

	// Store describes the durable plan store (WithCacheDir); its Mode is
	// "" when no cache directory is configured.
	Store StoreStats

	// Kinds partitions lifetime job counts by kind name ("generate",
	// "campaign", "verify", "diagnose"). Submitted counts acceptances;
	// Done / Failed / Canceled count terminal transitions, so their sum can
	// trail Submitted by the jobs still in flight.
	Kinds map[string]JobKindStats

	// SolverExecutor names where generate solves run ("in-process" or
	// "subprocess"). The Worker* fields describe the subprocess pool and
	// are zero in-process: WorkerSlots / WorkersAlive / WorkersBusy are
	// point-in-time occupancy, WorkerSpawns counts process starts,
	// WorkerRestarts counts crashes and kills recovered from, and
	// WorkerKills the supervisor-initiated subset (deadline escalation,
	// missed pings, memory limit, protocol violations).
	SolverExecutor string
	WorkerSlots    int
	WorkersAlive   int
	WorkersBusy    int
	WorkerSpawns   int
	WorkerRestarts int
	WorkerKills    int
}

// StoreStats is the public snapshot of the durable plan store behind
// WithCacheDir. Mode is "" when the service has no disk store, "ok"
// when the store is healthy, and "degraded" (with Reason set) while it
// runs memory-only after disk trouble.
type StoreStats struct {
	Mode   string
	Reason string

	Entries  int
	Bytes    int64
	CapBytes int64

	// Hits / Misses count disk lookups on memory-cache misses: a hit
	// served a restarted (or memory-evicted) plan without re-solving.
	Hits   int
	Misses int

	Writes        int
	WriteErrors   int
	SkippedWrites int

	ReadErrors  int
	Quarantined int
	Evictions   int

	// Trips / Recoveries count transitions into and out of degraded
	// memory-only mode.
	Trips      int
	Recoveries int
}

// JobKindStats is the lifetime job accounting of one JobKind.
type JobKindStats struct {
	Submitted int
	Done      int
	Failed    int
	Canceled  int
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	st := ServiceStats{
		JobsSubmitted: s.submitted,
		JobsShed:      s.shed,
		CacheHits:     s.hits, CacheMisses: s.misses, CacheCoalesced: s.coalesced,
		Solves: s.solves, SolverWall: s.solverWall,
		Campaigns: s.campaigns, CampaignWall: s.campaignWall,
		Verifies:  s.verifies,
		Diagnoses: s.diagnoses, DiagnoseWall: s.diagnoseWall,
		SigCacheHits: s.sigHits, SigCacheMisses: s.sigMisses,
		Kinds: make(map[string]JobKindStats, len(jobKinds)),
	}
	for _, k := range jobKinds {
		if ks := s.byKind[k]; ks != nil {
			st.Kinds[k.String()] = *ks
		}
	}
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
		st.CacheBytes = s.cache.bytes
		st.CacheCapBytes = s.cache.capBytes
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = StoreStats{
			Mode: ss.Mode, Reason: ss.Reason,
			Entries: ss.Entries, Bytes: ss.Bytes, CapBytes: ss.CapBytes,
			Hits: ss.Hits, Misses: ss.Misses,
			Writes: ss.Writes, WriteErrors: ss.WriteErrors, SkippedWrites: ss.SkippedWrites,
			ReadErrors: ss.ReadErrors, Quarantined: ss.Quarantined, Evictions: ss.Evictions,
			Trips: ss.Trips, Recoveries: ss.Recoveries,
		}
	}
	st.SolverExecutor = s.executor.String()
	if s.pool != nil {
		ps := s.pool.Stats()
		st.WorkerSlots = ps.Workers
		st.WorkersAlive = ps.Alive
		st.WorkersBusy = ps.Busy
		st.WorkerSpawns = ps.Spawns
		st.WorkerRestarts = ps.Restarts
		st.WorkerKills = ps.Kills
	}
	for _, j := range s.jobs {
		//lint:ignore fpva/detorder tallying states into counters is order-independent
		switch j.State() {
		case JobPending:
			st.JobsPending++
		case JobRunning:
			st.JobsRunning++
		case JobDone:
			st.JobsDone++
		case JobFailed:
			st.JobsFailed++
		case JobCanceled:
			st.JobsCanceled++
		}
	}
	return st
}

// Workers returns the size of the worker pool.
func (s *Service) Workers() int { return s.workers }

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// sweepExpiredLocked drops terminal jobs older than the WithJobTTL bound
// from tracking. The caller holds s.mu; expiry is lazy — checked on every
// lookup, registration, and terminal transition — so an idle service holds
// no timer goroutines.
func (s *Service) sweepExpiredLocked() {
	if s.jobTTL <= 0 || s.terminal == 0 {
		return
	}
	cutoff := time.Now().Add(-s.jobTTL)
	kept := s.order[:0]
	for _, j := range s.order {
		if j.expiredBefore(cutoff) {
			delete(s.jobs, j.id)
			s.terminal--
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// Close cancels every outstanding job, waits for their workers to drain,
// and rejects further submissions with ErrServiceClosed. It is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.wg.Wait()
	if s.pool != nil {
		// After the job goroutines drain no new dispatches can arrive, so
		// this is a clean stop: idle workers get EOF on stdin and exit.
		s.pool.Close()
	}
	if s.store != nil {
		s.store.Close()
	}
	return nil
}

// register installs a new job under the service lock (inPlan, for
// campaign/verify jobs, is set before the job becomes visible to lookups).
// It fails once the service is closed.
func (s *Service) register(kind JobKind, ctx context.Context, progress Progress, inPlan *Plan) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("fpva: %w", ErrServiceClosed)
	}
	s.sweepExpiredLocked()
	if s.maxActive > 0 && s.active >= s.maxActive {
		s.shed++
		return nil, fmt.Errorf("fpva: %d jobs already queued or running: %w", s.active, ErrQueueFull)
	}
	s.active++
	s.seq++
	j := newJob(s, fmt.Sprintf("j%06d", s.seq), kind, ctx, progress)
	j.inPlan = inPlan
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.submitted++
	s.kindStats(kind).Submitted++
	s.wg.Add(1)
	return j, nil
}

// kindStats returns the mutable per-kind counter, creating it on first
// use. The caller holds s.mu.
func (s *Service) kindStats(k JobKind) *JobKindStats {
	ks := s.byKind[k]
	if ks == nil {
		ks = &JobKindStats{}
		s.byKind[k] = ks
	}
	return ks
}

// noteTerminal is called exactly once per job as it turns terminal; it
// tallies the per-kind outcome, and beyond the retention cap the oldest
// terminal jobs are dropped from tracking.
func (s *Service) noteTerminal(kind JobKind, state JobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.kindStats(kind)
	switch state {
	case JobDone:
		ks.Done++
	case JobFailed:
		ks.Failed++
	case JobCanceled:
		ks.Canceled++
	}
	s.active--
	s.terminal++
	s.sweepExpiredLocked()
	if s.retain <= 0 || s.terminal <= s.retain {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if s.terminal > s.retain && j.State().Terminal() {
			delete(s.jobs, j.id)
			s.terminal--
			continue
		}
		kept = append(kept, j)
	}
	// Let the dropped tail be collected.
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil
	}
	s.order = kept
}

// Forget drops a terminal job from the service's tracking (Job / Jobs /
// per-state stats); the handle itself keeps working. It reports whether
// the job was known and terminal.
func (s *Service) Forget(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || !j.State().Terminal() {
		return false
	}
	delete(s.jobs, id)
	for i, job := range s.order {
		if job == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.terminal--
	return true
}

// acquireSlot blocks until a worker-pool slot is free or ctx is canceled.
func (s *Service) acquireSlot(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) releaseSlot() { <-s.sem }

// SubmitGenerate queues a test-generation job for the array. Options are
// those of Generate; invalid engine selections fail synchronously. The
// returned handle resolves to a *Plan via Job.Plan after Job.Wait.
//
// Submissions are deduplicated by content: a plan already in the cache
// completes the job immediately (replaying the phase events), and a
// submission identical to an in-flight one attaches to that solve instead
// of starting its own.
func (s *Service) SubmitGenerate(ctx context.Context, a *Array, opts ...GenOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := genConfig{blockSize: 5}
	for _, opt := range opts {
		opt(&cfg)
	}
	if _, err := cfg.coreConfig(); err != nil {
		return nil, err
	}
	key, err := planKey(a, cfg)
	if err != nil {
		return nil, err
	}
	j, err := s.register(JobGenerate, ctx, cfg.progress, nil)
	if err != nil {
		return nil, err
	}
	go s.runGenerate(j, a, cfg, key)
	return j, nil
}

// SubmitCampaign queues a fault-injection campaign job against the plan.
// Options are those of Plan.Campaign.
func (s *Service) SubmitCampaign(ctx context.Context, p *Plan, opts ...CampaignOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg campaignConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	j, err := s.register(JobCampaign, ctx, cfg.progress, p)
	if err != nil {
		return nil, err
	}
	go s.runCampaign(j, p, opts)
	return j, nil
}

// SubmitVerify queues an exhaustive verification job: every single
// stuck-at fault, then every distinct pair (maxPairs > 0 truncates the
// O(nv^2) pair scan).
func (s *Service) SubmitVerify(ctx context.Context, p *Plan, maxPairs int) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j, err := s.register(JobVerify, ctx, nil, p)
	if err != nil {
		return nil, err
	}
	go s.runVerify(j, p, maxPairs)
	return j, nil
}

// SubmitDiagnose queues an adaptive fault-diagnosis job against the plan.
// Options are those of Plan.Diagnose; invalid engine or planner selections
// fail synchronously. The returned handle resolves to a *Diagnosis via
// Job.Diagnosis after Job.Wait, and emits one DiagnoseTick event per
// observation round.
//
// Compiled signature tables are cached by content (plan wire encoding plus
// the options that shape the candidate universe), so repeated diagnoses of
// the same plan — the common case as observations trickle in — skip the
// expensive response-matrix build; Job.CacheHit reports whether the table
// was reused.
func (s *Service) SubmitDiagnose(ctx context.Context, p *Plan, obs []Observation, opts ...DiagnoseOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg diagnoseConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if _, err := cfg.internalOptions(p); err != nil {
		return nil, err
	}
	if _, err := cfg.internalPlanner(); err != nil {
		return nil, err
	}
	// Deep-copy the observations: the job goroutine reads them after
	// SubmitDiagnose returns, and the caller may reuse its buffers.
	obsCopy := make([]Observation, len(obs))
	for i, o := range obs {
		obsCopy[i] = Observation{Vector: o.Vector, Readings: append([]bool(nil), o.Readings...)}
	}
	j, err := s.register(JobDiagnose, ctx, cfg.progress, p)
	if err != nil {
		return nil, err
	}
	go s.runDiagnose(j, p, obsCopy, cfg)
	return j, nil
}

// signaturesFor returns the compiled signature table for (plan, cfg),
// serving it from the service's content-addressed cache when possible.
func (s *Service) signaturesFor(ctx context.Context, p *Plan, cfg diagnoseConfig) (sg *diagnose.Signatures, hit bool, err error) {
	key, err := sigKey(p, cfg)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if sg, ok := s.sigs.get(key); ok {
		s.sigHits++
		s.mu.Unlock()
		return sg, true, nil
	}
	s.sigMisses++
	s.mu.Unlock()
	sg, err = p.compileSignatures(ctx, cfg)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.sigs.put(key, sg)
	s.mu.Unlock()
	return sg, false, nil
}

// runDiagnose is a diagnosis job's goroutine.
func (s *Service) runDiagnose(j *Job, p *Plan, obs []Observation, cfg diagnoseConfig) {
	defer s.wg.Done()
	if err := s.acquireSlot(j.ctx); err != nil {
		j.finish(JobCanceled, fmt.Errorf("fpva: diagnose: %w", err))
		return
	}
	defer s.releaseSlot()
	j.setRunning()
	t0 := time.Now()
	sg, hit, err := s.signaturesFor(j.ctx, p, cfg)
	if err != nil {
		j.finish(j.classifyTerminal(), err)
		return
	}
	j.mu.Lock()
	j.cacheHit = hit
	j.mu.Unlock()
	// Route round ticks through the job (j.emit already invokes the
	// submitter's callback synchronously).
	cfg.progress = func(e Event) { j.emit(e) }
	d, err := runDiagnosis(j.ctx, p, sg, cfg, obs)
	wall := time.Since(t0)
	if err != nil {
		j.finish(j.classifyTerminal(), err)
		return
	}
	j.mu.Lock()
	j.diag = d
	j.mu.Unlock()
	s.mu.Lock()
	s.diagnoses++
	s.diagnoseWall += wall
	s.mu.Unlock()
	j.finish(JobDone, nil)
}

// flight is one in-flight generation shared by every job that asked for
// the same cache key (singleflight). Its context is canceled only when all
// attached jobs have canceled, so one impatient caller cannot abort a
// solve others still want.
type flight struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc

	// refs / subs / events / running are guarded by the service mutex.
	// events lets a job that attaches mid-solve replay the phases it
	// missed.
	refs    int
	subs    []*Job
	events  []Event
	running bool

	done   chan struct{}
	plan   *Plan
	wire   []byte // v1 wire encoding of plan (caching services only)
	cached bool   // served from the disk store, not a fresh solve
	err    error
}

// runGenerate is a generate job's goroutine: cache lookup, flight
// join-or-create, then wait for the shared result or the job's own
// cancellation.
func (s *Service) runGenerate(j *Job, a *Array, cfg genConfig, key string) {
	defer s.wg.Done()
	if err := j.ctx.Err(); err != nil {
		j.finish(JobCanceled, fmt.Errorf("fpva: generate: %w", err))
		return
	}
	s.mu.Lock()
	if s.cache != nil {
		if plan, wire, events, ok := s.cache.get(key); ok {
			s.hits++
			s.mu.Unlock()
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			j.setRunning()
			// Replay the events the original solve recorded, so cached and
			// cold callers observe the same progress sequence.
			for _, e := range events {
				j.emit(e)
			}
			j.finishPlan(plan, wire)
			return
		}
	}
	fl, ok := s.flights[key]
	if ok {
		s.coalesced++
		fl.refs++
		// Catch-up handoff: replay recorded events outside the lock, then
		// join the live subscriber list only once caught up — the flight
		// never delivers to a job that is still replaying, so each follower
		// observes the phase events in emission order.
		replayed := 0
		for {
			pending := append([]Event(nil), fl.events[replayed:]...)
			if len(pending) == 0 {
				fl.subs = append(fl.subs, j)
				if fl.running {
					s.mu.Unlock()
					j.setRunning()
				} else {
					s.mu.Unlock()
				}
				break
			}
			replayed += len(pending)
			s.mu.Unlock()
			for _, e := range pending {
				j.emit(e)
			}
			s.mu.Lock()
		}
	} else {
		s.misses++
		fl = &flight{key: key, refs: 1, subs: []*Job{j}, done: make(chan struct{})}
		//lint:ignore fpva/ctxflow a flight is shared by every coalesced submitter, so its lifetime must detach from any one caller's ctx; Close cancels it
		fl.ctx, fl.cancel = context.WithCancel(context.Background())
		s.flights[key] = fl
		s.wg.Add(1)
		go s.runFlight(fl, a, cfg, key)
		s.mu.Unlock()
	}
	select {
	case <-fl.done:
		if fl.err != nil {
			j.finish(j.classifyTerminal(), fl.err)
		} else {
			if fl.cached {
				j.mu.Lock()
				j.cacheHit = true
				j.mu.Unlock()
			}
			j.finishPlan(fl.plan, fl.wire)
		}
	case <-j.ctx.Done():
		s.detach(fl, j)
		j.finish(JobCanceled, fmt.Errorf("fpva: generate: %w", j.ctx.Err()))
	}
}

// detach removes a canceled job from its flight; the last one out cancels
// the solve and unpublishes the flight, so a later identical submission
// starts fresh instead of joining a doomed solve.
func (s *Service) detach(fl *flight, j *Job) {
	s.mu.Lock()
	for i, sub := range fl.subs {
		if sub == j {
			fl.subs = append(fl.subs[:i], fl.subs[i+1:]...)
			fl.refs--
			break
		}
	}
	last := fl.refs == 0
	if last && s.flights[fl.key] == fl {
		delete(s.flights, fl.key)
	}
	s.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// runFlight executes one deduplicated generation: acquire a worker slot,
// run the pipeline with progress fanned out to every attached job, store
// the plan in the cache, and publish the result.
func (s *Service) runFlight(fl *flight, a *Array, cfg genConfig, key string) {
	defer s.wg.Done()
	defer fl.cancel()
	finish := func(plan *Plan, err error) {
		s.mu.Lock()
		// Guard against unpublishing a successor: detach may already have
		// removed this flight and a new submission registered a fresh one
		// under the same key.
		if s.flights[key] == fl {
			delete(s.flights, key)
		}
		s.mu.Unlock()
		fl.plan, fl.err = plan, err
		close(fl.done)
	}
	// Durable cache read-back: a plan solved before the last restart (or
	// evicted from memory under pressure) is served from disk —
	// checksum-verified, bit-identical wire bytes, no solver slot
	// consumed. Concurrent identical submissions coalesce onto this
	// flight first, so the disk sees one read however many clients ask.
	if s.store != nil {
		if wire, ok := s.store.Get(key); ok {
			if plan, derr := DecodePlan(bytes.NewReader(wire)); derr == nil {
				s.mu.Lock()
				if s.cache != nil {
					s.cache.put(key, plan, wire, nil)
				}
				s.mu.Unlock()
				fl.wire = wire
				fl.cached = true
				finish(plan, nil)
				return
			}
			// Verified bytes that fail to decode mean codec drift, not disk
			// corruption; solve fresh and overwrite the entry.
		}
	}
	if err := s.acquireSlot(fl.ctx); err != nil {
		finish(nil, fmt.Errorf("fpva: generate: %w", err))
		return
	}
	defer s.releaseSlot()
	s.mu.Lock()
	fl.running = true
	subs := append([]*Job(nil), fl.subs...)
	s.mu.Unlock()
	for _, j := range subs {
		j.setRunning()
	}
	coreCfg, err := cfg.coreConfig()
	if err != nil {
		finish(nil, err)
		return
	}
	sctx := fl.ctx
	if s.solverTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(fl.ctx, s.solverTimeout)
		defer cancel()
	}
	t0 := time.Now()
	var plan *Plan
	if s.pool != nil {
		// Subprocess executor: the solve runs in a supervised worker; its
		// response IS the plan's wire encoding, kept verbatim in fl.wire.
		plan, err = s.solveSubprocess(sctx, fl, a, cfg)
		if err != nil {
			finish(nil, err)
			return
		}
	} else {
		coreCfg.OnPhase = func(ph core.Phase, done bool) {
			kind := PhaseStarted
			if done {
				kind = PhaseFinished
			}
			fl.emit(s, Event{Kind: kind, Phase: Phase(ph)})
		}
		ts, genErr := core.Generate(sctx, a.g, coreCfg)
		if genErr != nil {
			finish(nil, genErr)
			return
		}
		plan = &Plan{a: a, ts: ts, geometry: true}
		// Materialize the wire bytes once, outside the service lock — a large
		// plan must not stall unrelated submissions and stats. These exact
		// bytes back every later fetch: the cache entry, the disk store,
		// Job.PlanBytes, and fpvad's /plan handler all serve them without
		// re-encoding.
		if s.cache != nil || s.store != nil {
			var buf bytes.Buffer
			if encErr := EncodePlan(&buf, plan); encErr == nil {
				fl.wire = buf.Bytes()
			}
		}
	}
	wall := time.Since(t0)
	s.mu.Lock()
	s.solves++
	s.solverWall += wall
	if s.cache != nil && fl.wire != nil {
		s.cache.put(key, plan, fl.wire, append([]Event(nil), fl.events...))
	}
	s.mu.Unlock()
	// Write-through outside the service lock: disk latency (or a store
	// stuck probing a sick disk) must not stall submissions and stats.
	if s.store != nil && fl.wire != nil {
		s.store.Put(key, fl.wire)
	}
	finish(plan, nil)
}

// emit records a flight event and fans it out to the currently attached
// jobs (delivery happens outside the service lock: Progress callbacks are
// user code).
func (fl *flight) emit(s *Service, e Event) {
	s.mu.Lock()
	fl.events = append(fl.events, e)
	subs := append([]*Job(nil), fl.subs...)
	s.mu.Unlock()
	for _, j := range subs {
		j.emit(e)
	}
}

// runCampaign is a campaign job's goroutine.
func (s *Service) runCampaign(j *Job, p *Plan, opts []CampaignOption) {
	defer s.wg.Done()
	if err := s.acquireSlot(j.ctx); err != nil {
		j.finish(JobCanceled, fmt.Errorf("fpva: campaign: %w", err))
		return
	}
	defer s.releaseSlot()
	j.setRunning()
	all := append(append([]CampaignOption(nil), opts...),
		WithCampaignProgress(func(e Event) { j.emit(e) }))
	t0 := time.Now()
	res, err := p.Campaign(j.ctx, all...)
	wall := time.Since(t0)
	j.mu.Lock()
	j.camp = res
	j.mu.Unlock()
	if err != nil {
		j.finish(j.classifyTerminal(), err)
		return
	}
	s.mu.Lock()
	s.campaigns++
	s.campaignWall += wall
	s.mu.Unlock()
	j.finish(JobDone, nil)
}

// runVerify is a verification job's goroutine.
func (s *Service) runVerify(j *Job, p *Plan, maxPairs int) {
	defer s.wg.Done()
	if err := s.acquireSlot(j.ctx); err != nil {
		j.finish(JobCanceled, fmt.Errorf("fpva: verify: %w", err))
		return
	}
	defer s.releaseSlot()
	j.setRunning()
	singles, err := p.VerifySingleFaults(j.ctx)
	if err != nil {
		j.finish(j.classifyTerminal(), err)
		return
	}
	pairs, err := p.VerifyDoubleFaults(j.ctx, maxPairs)
	if err != nil {
		j.finish(j.classifyTerminal(), err)
		return
	}
	j.mu.Lock()
	j.verify = VerifyResult{SingleEscapes: singles, DoubleEscapes: pairs}
	j.mu.Unlock()
	s.mu.Lock()
	s.verifies++
	s.mu.Unlock()
	j.finish(JobDone, nil)
}
