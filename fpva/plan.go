package fpva

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
)

// Plan is a complete generated test set for one array: the three vector
// families plus generation statistics. Plans come from Generate,
// BaselinePlan or DecodePlan; they are immutable and safe for concurrent
// use once built.
//
// A plan decoded from JSON carries the vectors and statistics but not the
// path/cut geometry, so rendering methods report an error on it; campaigns
// and verification are bit-identical to the in-process plan.
type Plan struct {
	a  *Array
	ts *core.TestSet
	// geometry is true when ts carries Paths/Cuts (in-process generation),
	// false for decoded and baseline plans.
	geometry bool

	// sigMu guards sigMemo, the plan's last compiled diagnosis signature
	// table (see compileSignatures). Tables are immutable once built, so
	// concurrent sessions share one safely.
	sigMu   sync.Mutex
	sigMemo *sigMemoEntry
}

// Array returns the array the plan was generated for.
func (p *Plan) Array() *Array { return p.a }

// Stats returns the generation statistics (Table I row shape).
func (p *Plan) Stats() Stats {
	s := p.ts.Stats
	return Stats{
		NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
		TP: s.TP, TC: s.TC, TL: s.TL, T: s.T,
		PathILPNonOptimal: s.PathILPNonOptimal, CutILPNonOptimal: s.CutILPNonOptimal,
		ILPSolves: s.ILPSolves, ILPNodes: s.ILPNodes, SolverWall: s.SolverWall,
	}
}

// NumVectors returns the total vector count.
func (p *Plan) NumVectors() int { return len(p.ts.AllVectors()) }

// VectorInfo describes one generated test vector.
type VectorInfo struct {
	Name string
	// Kind is "flow-path", "cut-set", "leakage" or "custom".
	Kind string
	// Open lists the valves commanded open, ascending.
	Open []Edge
}

// Vectors lists the plan's vectors in application order: flow paths, cuts,
// leakage.
func (p *Plan) Vectors() []VectorInfo {
	vecs := p.ts.AllVectors()
	out := make([]VectorInfo, len(vecs))
	for i, v := range vecs {
		out[i] = VectorInfo{
			Name: v.Name,
			Kind: v.Kind.String(),
			Open: edgesOf(p.a.g, v.OpenValves()),
		}
	}
	return out
}

// UncoveredPath lists valves the flow-path family could not reach (only
// possible when obstacles wall a valve in); a stuck-at-0 there is
// untestable.
func (p *Plan) UncoveredPath() []Edge { return edgesOf(p.a.g, p.ts.UncoveredPath) }

// UncoveredCut lists valves no valid cut could test; a stuck-at-1 there is
// untestable.
func (p *Plan) UncoveredCut() []Edge { return edgesOf(p.a.g, p.ts.UncoveredCut) }

// LeakPairs lists the control-leakage candidate pairs of the array under
// the raster routing model.
func (p *Plan) LeakPairs() [][2]Edge {
	out := make([][2]Edge, len(p.ts.LeakPairs))
	for i, lp := range p.ts.LeakPairs {
		out[i] = [2]Edge{edgeOf(p.a.g, lp[0]), edgeOf(p.a.g, lp[1])}
	}
	return out
}

// RenderPaths draws the flow paths over the array as an ASCII diagram. It
// errors on a plan without path geometry (decoded from JSON or baseline).
func (p *Plan) RenderPaths() (string, error) {
	if !p.geometry {
		return "", fmt.Errorf("fpva: plan has no path geometry (decoded or baseline plan)")
	}
	return render.Paths(p.a.g, p.ts.Paths), nil
}

// NumCuts returns the number of generated cut-sets (0 on decoded plans).
func (p *Plan) NumCuts() int { return len(p.ts.Cuts) }

// Cut returns the valve members of cut i.
func (p *Plan) Cut(i int) []Edge { return edgesOf(p.a.g, p.ts.Cuts[i].Valves) }

// RenderCut draws cut i over the array as an ASCII diagram. It errors on a
// plan without cut geometry.
func (p *Plan) RenderCut(i int) (string, error) {
	if !p.geometry || i < 0 || i >= len(p.ts.Cuts) {
		return "", fmt.Errorf("fpva: no cut geometry for cut %d", i)
	}
	return render.Cut(p.a.g, p.ts.Cuts[i]), nil
}

// CampaignEngine selects how a fault-injection campaign evaluates trials.
type CampaignEngine int

const (
	// CampaignEngineAuto picks the best engine (currently bit-parallel).
	CampaignEngineAuto CampaignEngine = iota
	// CampaignEngineBitParallel packs 64 trials' fault universes into
	// uint64 bit lanes and propagates pressure for all of them per graph
	// traversal (PPSFP).
	CampaignEngineBitParallel
	// CampaignEngineScalar evaluates one fault universe at a time; kept as
	// the differential reference for the bit-parallel engine.
	CampaignEngineScalar
)

// ParseCampaignEngine maps the command-line engine names ("auto",
// "bit-parallel", "scalar") to a CampaignEngine.
func ParseCampaignEngine(s string) (CampaignEngine, error) {
	switch s {
	case "auto":
		return CampaignEngineAuto, nil
	case "bit-parallel":
		return CampaignEngineBitParallel, nil
	case "scalar":
		return CampaignEngineScalar, nil
	}
	return 0, fmt.Errorf("fpva: unknown campaign engine %q", s)
}

// CampaignOption customizes Plan.Campaign.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	trials     int
	numFaults  int
	seed       int64
	workers    int
	maxEscapes int
	leaks      bool
	progress   Progress
	engine     CampaignEngine
}

// WithTrials sets the number of random fault injections (default 10000, the
// paper's setting).
func WithTrials(n int) CampaignOption { return func(c *campaignConfig) { c.trials = n } }

// WithNumFaults sets how many simultaneous faults each trial injects
// (default 2).
func WithNumFaults(k int) CampaignOption { return func(c *campaignConfig) { c.numFaults = k } }

// WithSeed sets the campaign RNG seed. For a fixed seed the result is
// bit-identical for any worker count.
func WithSeed(s int64) CampaignOption { return func(c *campaignConfig) { c.seed = s } }

// WithCampaignWorkers shards trials across n goroutines (default: all
// CPUs). The result does not depend on the worker count.
func WithCampaignWorkers(n int) CampaignOption { return func(c *campaignConfig) { c.workers = n } }

// WithMaxEscapes caps how many undetected fault sets the result records for
// diagnosis (default 16).
func WithMaxEscapes(n int) CampaignOption { return func(c *campaignConfig) { c.maxEscapes = n } }

// WithLeakFaults lets trials draw control-leakage faults from the plan's
// candidate pairs alongside stuck-at faults.
func WithLeakFaults() CampaignOption { return func(c *campaignConfig) { c.leaks = true } }

// WithCampaignProgress registers a callback receiving CampaignTick events
// with strictly increasing completed-trial counts; a completed campaign
// always ends with a tick at (TrialsTotal, TrialsTotal).
func WithCampaignProgress(p Progress) CampaignOption {
	return func(c *campaignConfig) { c.progress = p }
}

// WithCampaignEngine selects the trial-evaluation engine (default
// CampaignEngineAuto). Results are bit-identical across engines; the choice
// only affects speed.
func WithCampaignEngine(e CampaignEngine) CampaignOption {
	return func(c *campaignConfig) { c.engine = e }
}

// CampaignResult summarizes a fault-injection campaign.
type CampaignResult struct {
	Trials   int
	Detected int
	// Sims counts vector evaluations performed across all trials (a trial
	// stops at its first detecting vector). Like the rest of the result it
	// is bit-identical for any worker count.
	Sims int
	// Escapes holds up to MaxEscapes undetected fault sets (lowest trial
	// indices first).
	Escapes [][]Fault
}

// DetectionRate returns Detected/Trials.
func (r CampaignResult) DetectionRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Trials)
}

// Campaign runs a random fault-injection campaign (the paper's Sec. IV
// study) against the plan's full vector set: each trial injects random
// faults and counts as detected when some vector's meter readings differ
// from the fault-free chip. For a fixed seed the result is bit-identical
// for any worker count, in-process or reloaded from JSON.
//
// Cancelling ctx drains the trial workers promptly and returns the partial
// result together with ctx.Err().
func (p *Plan) Campaign(ctx context.Context, opts ...CampaignOption) (CampaignResult, error) {
	cfg := campaignConfig{trials: 10000, numFaults: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	simCfg := sim.CampaignConfig{
		Trials:     cfg.trials,
		NumFaults:  cfg.numFaults,
		Seed:       cfg.seed,
		Workers:    cfg.workers,
		MaxEscapes: cfg.maxEscapes,
	}
	switch cfg.engine {
	case CampaignEngineAuto:
		simCfg.Engine = sim.EngineAuto
	case CampaignEngineBitParallel:
		simCfg.Engine = sim.EngineBitParallel
	case CampaignEngineScalar:
		simCfg.Engine = sim.EngineScalar
	default:
		return CampaignResult{}, fmt.Errorf("fpva: unknown campaign engine %d", int(cfg.engine))
	}
	if cfg.leaks {
		for _, lp := range p.ts.LeakPairs {
			simCfg.LeakPairs = append(simCfg.LeakPairs, [2]grid.ValveID{lp[0], lp[1]})
		}
	}
	if cfg.progress != nil {
		prog := cfg.progress
		simCfg.OnTrials = func(done, total int) {
			prog(Event{Kind: CampaignTick, TrialsDone: done, TrialsTotal: total})
		}
	}
	res, err := p.ts.Campaign(ctx, simCfg)
	out := CampaignResult{Trials: res.Trials, Detected: res.Detected, Sims: res.Sims}
	for _, esc := range res.Escapes {
		fs := make([]Fault, len(esc))
		for i, f := range esc {
			fs[i] = p.a.fromSimFault(f)
		}
		out.Escapes = append(out.Escapes, fs)
	}
	return out, err
}

// Detects reports whether the plan's vector set distinguishes a chip with
// the given faults from a fault-free one.
func (p *Plan) Detects(faults []Fault) (bool, error) {
	fs, err := p.a.toSimFaults(faults)
	if err != nil {
		return false, err
	}
	cv, err := p.ts.Compile()
	if err != nil {
		return false, err
	}
	return cv.Detects(fs), nil
}

// VerifySingleFaults exhaustively checks every stuck-at fault on every
// Normal valve and returns the undetected ones. On a fully covered array
// the result is empty — the paper's single-fault guarantee.
func (p *Plan) VerifySingleFaults(ctx context.Context) ([]Fault, error) {
	escaped, err := p.ts.VerifySingleFaults(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Fault, len(escaped))
	for i, f := range escaped {
		out[i] = p.a.fromSimFault(f)
	}
	return out, nil
}

// VerifyDoubleFaults exhaustively checks every pair of stuck-at faults on
// distinct valves (the paper's two-fault guarantee) and returns undetected
// pairs. Cost is O(nv^2) simulations; maxPairs > 0 truncates the scan for
// spot checks.
func (p *Plan) VerifyDoubleFaults(ctx context.Context, maxPairs int) ([][2]Fault, error) {
	escaped, err := p.ts.VerifyDoubleFaults(ctx, maxPairs)
	if err != nil {
		return nil, err
	}
	out := make([][2]Fault, len(escaped))
	for i, pair := range escaped {
		out[i] = [2]Fault{p.a.fromSimFault(pair[0]), p.a.fromSimFault(pair[1])}
	}
	return out, nil
}

// Table1 reproduces the paper's Table I: it generates test sets for all
// five benchmark arrays and renders the measured-vs-paper comparison.
func Table1(ctx context.Context) (string, error) {
	return bench.Table1(ctx)
}
