package fpva_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/fpva"
)

// diagnosePlan generates the 3x3 plan shared by the diagnosis tests.
func diagnosePlan(t *testing.T) (*fpva.Array, *fpva.Plan) {
	t.Helper()
	a, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	return a, plan
}

// planVectors materializes the plan's vectors as applicable Vector values,
// so a test can play the technician and measure readings under a hidden
// fault.
func planVectors(t *testing.T, a *fpva.Array, plan *fpva.Plan) []*fpva.Vector {
	t.Helper()
	infos := plan.Vectors()
	out := make([]*fpva.Vector, len(infos))
	for i, vi := range infos {
		v := a.NewVector(vi.Name)
		for _, e := range vi.Open {
			if err := v.SetOpen(e, true); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = v
	}
	return out
}

// containsFaultSet reports whether the ambiguity set includes the given
// candidate fault set.
func containsFaultSet(amb [][]fpva.Fault, want []fpva.Fault) bool {
	for _, fs := range amb {
		if reflect.DeepEqual(fs, want) {
			return true
		}
	}
	return false
}

// TestDiagnoseFaultFree: with no observations, the diagnosis describes the
// whole candidate universe (fault-free alive) and suggests a probe plan;
// after observing golden readings on every suggested probe, the chip is
// diagnosed healthy-or-indistinguishable.
func TestDiagnoseFaultFree(t *testing.T) {
	a, plan := diagnosePlan(t)
	d, err := plan.Diagnose(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Consistent || !d.FaultFree {
		t.Fatalf("empty observations: Consistent=%t FaultFree=%t, want true/true", d.Consistent, d.FaultFree)
	}
	if len(d.Probes) == 0 {
		t.Fatal("no probes suggested for the unconstrained universe")
	}
	if len(d.Ambiguity) < 2*a.NumValves()+1 {
		t.Fatalf("universe has %d candidates, want at least %d", len(d.Ambiguity), 2*a.NumValves()+1)
	}

	// Answer every suggested probe with golden (fault-free) readings.
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	vecs := planVectors(t, a, plan)
	var obs []fpva.Observation
	for _, p := range d.Probes {
		r, err := sim.Readings(vecs[p.Vector], nil)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, fpva.Observation{Vector: p.Vector, Readings: r})
	}
	d2, err := plan.Diagnose(context.Background(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Isolated || !d2.FaultFree || !d2.Consistent {
		t.Fatalf("after golden probes: Isolated=%t FaultFree=%t Consistent=%t", d2.Isolated, d2.FaultFree, d2.Consistent)
	}
	if len(d2.Rounds) != len(obs) {
		t.Fatalf("%d rounds recorded for %d observations", len(d2.Rounds), len(obs))
	}
	if !containsFaultSet(d2.Ambiguity, []fpva.Fault{}) {
		t.Fatalf("fault-free candidate missing from %v", d2.Ambiguity)
	}
}

// TestDiagnoseSessionClosedLoop drives the interactive loop for every
// stuck-at single fault on the array: the session must isolate the true
// fault (up to signature equivalence) within the plan's vector budget.
func TestDiagnoseSessionClosedLoop(t *testing.T) {
	a, plan := diagnosePlan(t)
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	vecs := planVectors(t, a, plan)
	for _, kind := range []fpva.FaultKind{fpva.StuckAt0, fpva.StuckAt1} {
		for _, e := range a.Valves() {
			hidden := []fpva.Fault{{Kind: kind, A: e}}
			sess, err := plan.NewDiagnoseSession(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			probes := 0
			for {
				v, err := sess.NextProbe(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if v < 0 {
					break
				}
				r, err := sim.Readings(vecs[v], hidden)
				if err != nil {
					t.Fatal(err)
				}
				if err := sess.Observe(fpva.Observation{Vector: v, Readings: r}); err != nil {
					t.Fatal(err)
				}
				if probes++; probes > len(vecs) {
					t.Fatalf("hidden %v: more probes than plan vectors", hidden)
				}
			}
			if !sess.Done() {
				t.Fatalf("hidden %v: session stopped but not done", hidden)
			}
			d, err := sess.Diagnosis(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !d.Consistent || !d.Isolated {
				t.Fatalf("hidden %v: Consistent=%t Isolated=%t", hidden, d.Consistent, d.Isolated)
			}
			if !containsFaultSet(d.Ambiguity, hidden) {
				t.Fatalf("hidden %v eliminated; ambiguity %v", hidden, d.Ambiguity)
			}
			if len(d.Classes) != 1 {
				t.Fatalf("hidden %v: isolated diagnosis has %d classes", hidden, len(d.Classes))
			}
		}
	}
}

// TestDiagnosePlannersAgree: greedy and ILP planners must end in the same
// ambiguity set (the probe routes may differ, the destination must not).
func TestDiagnosePlannersAgree(t *testing.T) {
	a, plan := diagnosePlan(t)
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	vecs := planVectors(t, a, plan)
	hidden := []fpva.Fault{{Kind: fpva.StuckAt0, A: a.Valves()[2]}}
	var final [][][]fpva.Fault
	for _, planner := range []fpva.ProbePlanner{fpva.ProbePlannerGreedy, fpva.ProbePlannerILP} {
		sess, err := plan.NewDiagnoseSession(context.Background(), fpva.WithProbePlanner(planner))
		if err != nil {
			t.Fatal(err)
		}
		for {
			v, err := sess.NextProbe(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 {
				break
			}
			r, err := sim.Readings(vecs[v], hidden)
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.Observe(fpva.Observation{Vector: v, Readings: r}); err != nil {
				t.Fatal(err)
			}
		}
		d, err := sess.Diagnosis(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		final = append(final, d.Ambiguity)
	}
	if !reflect.DeepEqual(final[0], final[1]) {
		t.Fatalf("planners end in different ambiguity sets:\n%v\nvs\n%v", final[0], final[1])
	}
}

// TestDiagnoseOptionValidation pins the synchronous error surface.
func TestDiagnoseOptionValidation(t *testing.T) {
	_, plan := diagnosePlan(t)
	if _, err := plan.Diagnose(context.Background(), nil,
		fpva.WithDiagnoseEngine(fpva.CampaignEngine(99))); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := plan.Diagnose(context.Background(), nil,
		fpva.WithProbePlanner(fpva.ProbePlanner(99))); err == nil {
		t.Error("unknown planner accepted")
	}
	if _, err := plan.Diagnose(context.Background(),
		[]fpva.Observation{{Vector: 9999}}); err == nil {
		t.Error("out-of-range observation vector accepted")
	}
	if _, err := fpva.ParseProbePlanner("nope"); err == nil {
		t.Error("unknown planner name accepted")
	}
	for _, name := range []string{"greedy", "ilp"} {
		if p, err := fpva.ParseProbePlanner(name); err != nil || p.String() != name {
			t.Errorf("ParseProbePlanner(%q) = %v, %v", name, p, err)
		}
	}
}

// TestSubmitDiagnose covers the job vertical: events, result, signature
// cache reuse, and the per-kind service stats.
func TestSubmitDiagnose(t *testing.T) {
	a, plan := diagnosePlan(t)
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	vecs := planVectors(t, a, plan)
	r0, err := sim.Readings(vecs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := []fpva.Observation{{Vector: 0, Readings: r0}}

	svc := fpva.NewService()
	defer svc.Close()
	run := func() *fpva.Job {
		t.Helper()
		job, err := svc.SubmitDiagnose(context.Background(), plan, obs)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}
	j1 := run()
	if j1.Kind() != fpva.JobDiagnose || j1.Kind().String() != "diagnose" {
		t.Fatalf("job kind %v", j1.Kind())
	}
	d, err := j1.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Consistent || !d.FaultFree || len(d.Rounds) != 1 {
		t.Fatalf("diagnosis %+v", d)
	}
	var ticks int
	for _, e := range j1.Events() {
		if e.Kind == fpva.DiagnoseTick {
			ticks++
			if e.Round != 1 || e.Ambiguity != d.Rounds[0].After {
				t.Fatalf("tick %+v does not match round %+v", e, d.Rounds[0])
			}
		}
	}
	if ticks != 1 {
		t.Fatalf("%d diagnose ticks, want 1", ticks)
	}
	if j1.CacheHit() {
		t.Error("first diagnose reports a signature-cache hit")
	}
	j2 := run()
	if !j2.CacheHit() {
		t.Error("second identical diagnose did not reuse the signature table")
	}
	d2, err := j2.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, d2) {
		t.Error("cached signature table changed the diagnosis")
	}
	// Wrong-kind accessors keep their contract.
	if _, err := j1.Campaign(); !errors.Is(err, fpva.ErrWrongJobKind) {
		t.Errorf("Campaign on diagnose job: %v", err)
	}

	st := svc.Stats()
	if st.Diagnoses != 2 || st.SigCacheMisses != 1 || st.SigCacheHits != 1 {
		t.Errorf("stats: Diagnoses=%d SigCacheMisses=%d SigCacheHits=%d",
			st.Diagnoses, st.SigCacheMisses, st.SigCacheHits)
	}
	ks, ok := st.Kinds["diagnose"]
	if !ok || ks.Submitted != 2 || ks.Done != 2 || ks.Failed != 0 || ks.Canceled != 0 {
		t.Errorf("per-kind stats: %+v (present=%t)", ks, ok)
	}
}

// TestDiagnosisJSONRoundTrip: encode -> decode -> encode is a fixed point
// and preserves every field.
func TestDiagnosisJSONRoundTrip(t *testing.T) {
	a, plan := diagnosePlan(t)
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	vecs := planVectors(t, a, plan)
	hidden := []fpva.Fault{{Kind: fpva.StuckAt1, A: a.Valves()[0]}}
	r0, err := sim.Readings(vecs[0], hidden)
	if err != nil {
		t.Fatal(err)
	}
	d, err := plan.Diagnose(context.Background(),
		[]fpva.Observation{{Vector: 0, Readings: r0}},
		fpva.WithDoubleFaultCandidates(5))
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := fpva.EncodeDiagnosis(&first, d); err != nil {
		t.Fatal(err)
	}
	got, err := fpva.DecodeDiagnosis(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Consistent != d.Consistent || got.FaultFree != d.FaultFree || got.Isolated != d.Isolated {
		t.Fatal("flags changed over the wire")
	}
	if !reflect.DeepEqual(got.Ambiguity, d.Ambiguity) || !reflect.DeepEqual(got.Classes, d.Classes) ||
		!reflect.DeepEqual(got.Probes, d.Probes) || !reflect.DeepEqual(got.Rounds, d.Rounds) {
		t.Fatal("diagnosis content changed over the wire")
	}
	if got.Array().Text() != a.Text() {
		t.Fatal("array changed over the wire")
	}
	var second bytes.Buffer
	if err := fpva.EncodeDiagnosis(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("diagnosis encoding is not a fixed point after one round trip")
	}
}

// TestGoldenDiagnosis decodes the committed diagnosis file: the v1 format
// on disk must keep decoding exactly as it does today.
func TestGoldenDiagnosis(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "diagnosis_v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := fpva.DecodeDiagnosis(f)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Consistent || !d.FaultFree {
		t.Fatalf("golden diagnosis: Consistent=%t FaultFree=%t", d.Consistent, d.FaultFree)
	}
	if len(d.Ambiguity) == 0 || len(d.Probes) == 0 || len(d.Rounds) != 1 {
		t.Fatalf("golden diagnosis shape: %d candidates, %d probes, %d rounds",
			len(d.Ambiguity), len(d.Probes), len(d.Rounds))
	}
	// The fault-free candidate is the empty set by convention.
	if !containsFaultSet(d.Ambiguity, []fpva.Fault{}) {
		t.Fatal("golden diagnosis lost the fault-free candidate")
	}
}

// TestDiagnosisCodecErrors pins the sentinel classification of
// diagnosis-specific payload failures.
func TestDiagnosisCodecErrors(t *testing.T) {
	a, err := fpva.NewArray(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	arrText, err := json.Marshal(a.Text())
	if err != nil {
		t.Fatal(err)
	}
	head := `{"format":"fpva.diagnosis","version":1,"array":` + string(arrText)
	golden, err := os.ReadFile(filepath.Join("testdata", "diagnosis_v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		in   string
		want error
	}{
		{"empty", ``, fpva.ErrWireSyntax},
		{"truncated", `{"format":"fpva.diag`, fpva.ErrWireSyntax},
		{"wrong format", `{"format":"fpva.plan","version":1}`, fpva.ErrWireFormat},
		{"future version", `{"format":"fpva.diagnosis","version":99}`, fpva.ErrWireVersion},
		{"bad array", `{"format":"fpva.diagnosis","version":1,"array":"bogus"}`, fpva.ErrWirePayload},
		{"unknown fault kind", head + `,"ambiguity":[[{"kind":"mystery","a":0}]]}`, fpva.ErrWirePayload},
		{"fault valve out of range", head + `,"ambiguity":[[{"kind":"stuck-at-0","a":999}]]}`, fpva.ErrWirePayload},
		{"leak missing b", head + `,"ambiguity":[[{"kind":"control-leak","a":0}]]}`, fpva.ErrWirePayload},
		{"leak b out of range", head + `,"ambiguity":[[{"kind":"control-leak","a":0,"b":999}]]}`, fpva.ErrWirePayload},
		{"class member out of range", head + `,"ambiguity":[[]],"classes":[[1]]}`, fpva.ErrWirePayload},
		{"negative probe vector", head + `,"ambiguity":[[]],"probes":[{"vector":-1}]}`, fpva.ErrWirePayload},
		{"negative round vector", head + `,"ambiguity":[[]],"rounds":[{"vector":-2}]}`, fpva.ErrWirePayload},
		{"trailing garbage", string(golden) + `{"x":1}`, fpva.ErrWireSyntax},
	} {
		_, err := fpva.DecodeDiagnosis(strings.NewReader(tc.in))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}
