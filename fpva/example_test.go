package fpva_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/fpva"
)

// The three-stage pipeline end to end: model an array, generate the
// compact test set, run a fault-injection campaign.
func Example() {
	a, err := fpva.NewArray(5, 5)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		log.Fatal(err)
	}
	escapes, err := plan.VerifySingleFaults(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.Campaign(context.Background(),
		fpva.WithTrials(1000), fpva.WithNumFaults(3), fpva.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valves under test: %d\n", plan.Stats().NV)
	fmt.Printf("single-fault escapes: %d\n", len(escapes))
	fmt.Printf("3-fault campaign: %d/%d detected\n", res.Detected, res.Trials)
	// Output:
	// valves under test: 40
	// single-fault escapes: 0
	// 3-fault campaign: 1000/1000 detected
}

// Irregular layouts: transportation channels, obstacles and custom port
// placement via functional options.
func ExampleNewArray() {
	a, err := fpva.NewArray(5, 5,
		fpva.WithChannelH(2, 1, 3),
		fpva.WithObstacle(0, 4),
		fpva.WithSource("in", fpva.H(0, 0)),
		fpva.WithSink("out", fpva.H(4, 5)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)
	// Output:
	// FPVA 5x5 (nv=36, ports=2)
}

// Decoupling generation from simulation through the JSON wire format: what
// fpvatest -o writes, fpvasim -plan reads back.
func ExampleEncodePlan() {
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if err := fpva.EncodePlan(&wire, plan); err != nil {
		log.Fatal(err)
	}
	loaded, err := fpva.DecodePlan(&wire)
	if err != nil {
		log.Fatal(err)
	}
	run := func(p *fpva.Plan) int {
		res, err := p.Campaign(context.Background(),
			fpva.WithTrials(500), fpva.WithNumFaults(2), fpva.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		return res.Detected
	}
	fmt.Println("bit-identical after reload:", run(plan) == run(loaded))
	// Output:
	// bit-identical after reload: true
}

// Observing a long-running campaign and cancelling it from another
// goroutine.
func ExamplePlan_Campaign_progress() {
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		log.Fatal(err)
	}
	ticks := 0
	_, err = plan.Campaign(context.Background(),
		fpva.WithTrials(2000), fpva.WithNumFaults(2), fpva.WithSeed(1),
		fpva.WithCampaignProgress(func(e fpva.Event) {
			if e.Kind == fpva.CampaignTick {
				ticks++
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("saw progress:", ticks > 0)
	// Output:
	// saw progress: true
}
