package fpva_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/fpva"
)

// isWireError reports whether err wraps one of the codec sentinels — the
// decoder contract: every failure is classified, never a panic or a bare
// json error.
func isWireError(err error) bool {
	return errors.Is(err, fpva.ErrWireSyntax) || errors.Is(err, fpva.ErrWireFormat) ||
		errors.Is(err, fpva.ErrWireVersion) || errors.Is(err, fpva.ErrWirePayload)
}

func goldenSeed(t interface{ Fatal(...any) }, name string) string {
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// FuzzDecodePlan: an arbitrary byte string either decodes to a plan whose
// re-encoding is stable, or fails with a classified wire error.
func FuzzDecodePlan(f *testing.F) {
	f.Add(goldenSeed(f, "plan_v1.golden.json"))
	f.Add(`{"format":"fpva.plan","version":1,"array":"fpva 2 2\n","pathVectors":[],"cutVectors":[],"leakVectors":[],"stats":{}}`)
	f.Add(`{"format":"fpva.plan","version":1,"array":"fpva 2 2\n","pathVectors":[{"name":"p","kind":"flow-path","open":[999]}]}`)
	f.Add(`{"format":"fpva.plan","version":2}`)
	f.Add(`{"format":"fpva.array","version":1}`)
	f.Add(`{"format":"fpva.plan","version":1,"array":"garbage`)
	f.Add(`{"format":"fpva.plan","version":1,"array":"fpva 2 2\n"}{"trailing":true}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		p, err := fpva.DecodePlan(strings.NewReader(data))
		if err != nil {
			if !isWireError(err) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var first, second bytes.Buffer
		if err := fpva.EncodePlan(&first, p); err != nil {
			t.Fatalf("re-encode of decoded plan: %v", err)
		}
		q, err := fpva.DecodePlan(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded plan: %v", err)
		}
		if err := fpva.EncodePlan(&second, q); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("plan encoding is not a fixed point after one round trip")
		}
	})
}

// FuzzDecodeDiagnosis: an arbitrary byte string either decodes to a
// diagnosis whose re-encoding is stable, or fails with a classified wire
// error.
func FuzzDecodeDiagnosis(f *testing.F) {
	f.Add(goldenSeed(f, "diagnosis_v1.golden.json"))
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","consistent":true,"faultFree":true,"isolated":true,"ambiguity":[[]]}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","ambiguity":[[{"kind":"stuck-at-0","a":0}],[{"kind":"control-leak","a":0,"b":1}]],"classes":[[0],[1]]}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","ambiguity":[[{"kind":"mystery","a":0}]]}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","ambiguity":[[{"kind":"control-leak","a":0}]]}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","ambiguity":[[]],"classes":[[7]]}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"fpva 2 2\n","ambiguity":[[]],"probes":[{"vector":-1}]}`)
	f.Add(`{"format":"fpva.diagnosis","version":2}`)
	f.Add(`{"format":"fpva.plan","version":1}`)
	f.Add(`{"format":"fpva.diagnosis","version":1,"array":"garbage`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		d, err := fpva.DecodeDiagnosis(strings.NewReader(data))
		if err != nil {
			if !isWireError(err) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var first, second bytes.Buffer
		if err := fpva.EncodeDiagnosis(&first, d); err != nil {
			t.Fatalf("re-encode of decoded diagnosis: %v", err)
		}
		q, err := fpva.DecodeDiagnosis(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded diagnosis: %v", err)
		}
		if err := fpva.EncodeDiagnosis(&second, q); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("diagnosis encoding is not a fixed point after one round trip")
		}
	})
}

// FuzzDecodeArray: same contract for the array envelope.
func FuzzDecodeArray(f *testing.F) {
	f.Add(goldenSeed(f, "array_v1.golden.json"))
	f.Add(`{"format":"fpva.array","version":1,"text":"fpva 2 2\n"}`)
	f.Add(`{"format":"fpva.array","version":7,"text":""}`)
	f.Add(`{"format":"nope","version":1,"text":""}`)
	f.Add(`{"format":"fpva.array","version":1,"text":"not an array"}`)
	f.Add(`[1,2`)
	f.Fuzz(func(t *testing.T, data string) {
		a, err := fpva.DecodeArray(strings.NewReader(data))
		if err != nil {
			if !isWireError(err) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := fpva.EncodeArray(&buf, a); err != nil {
			t.Fatalf("re-encode of decoded array: %v", err)
		}
		b, err := fpva.DecodeArray(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded array: %v", err)
		}
		if a.Text() != b.Text() {
			t.Fatal("array text changed over a round trip")
		}
	})
}
