package fpva

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/workerpool"
)

// The subprocess-executor tests re-exec this test binary as the worker:
// TestMain checks the mode env var and, when set, serves the solver-worker
// protocol on stdin/stdout instead of running the test suite.
const workerEnv = "FPVA_TEST_WORKER"

func TestMain(m *testing.M) {
	switch os.Getenv(workerEnv) {
	case "":
		os.Exit(m.Run())
	case "solve":
		// The real worker, exactly as cmd/fpvaworker runs it.
		if err := ServeSolverWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
	case "failsolve":
		// Healthy worker whose every solve reports an error.
		workerpool.Serve(context.Background(), os.Stdin, os.Stdout,
			func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
				return nil, errors.New("synthetic solver failure")
			})
	case "hangsolve":
		// Cooperative hang: the solve never finishes on its own but honors
		// cancellation (deadline tests stay fast; the SIGKILL escalation
		// path is covered by the workerpool package's own tests).
		workerpool.Serve(context.Background(), os.Stdin, os.Stdout,
			func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			})
	default:
		os.Exit(2)
	}
	os.Exit(0)
}

// workerPids exposes the live worker process IDs to the fault-injection
// tests.
func (s *Service) workerPids() []int {
	if s.pool == nil {
		return nil
	}
	return s.pool.Pids()
}

// newSubprocessService builds a subprocess-executor service whose workers
// are this test binary in the given mode.
func newSubprocessService(t *testing.T, mode string, opts ...ServiceOption) *Service {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	os.Setenv(workerEnv, mode)
	t.Cleanup(func() { os.Unsetenv(workerEnv) })
	all := append([]ServiceOption{
		WithSolverExecutor(ExecSubprocess),
		WithWorkerCommand(exe),
	}, opts...)
	svc := NewService(all...)
	t.Cleanup(func() { svc.Close() })
	return svc
}

// normalizePlanWire re-marshals a plan's wire bytes with the timing
// statistics zeroed. Timings are measurements, not content — they are the
// only fields allowed to differ between an in-process and a subprocess
// solve of the same request.
func normalizePlanWire(t *testing.T, wire []byte) string {
	t.Helper()
	var env planEnvelope
	if err := json.Unmarshal(wire, &env); err != nil {
		t.Fatalf("plan wire does not parse: %v", err)
	}
	env.Stats.TPNanos = 0
	env.Stats.TCNanos = 0
	env.Stats.TLNanos = 0
	env.Stats.TNanos = 0
	env.Stats.SolverWallNanos = 0
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func generateOn(t *testing.T, svc *Service, a *Array, opts ...GenOption) *Job {
	t.Helper()
	j, err := svc.SubmitGenerate(context.Background(), a, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("generate failed: %v", err)
	}
	return j
}

// TestSubprocessBitIdentical is the tentpole acceptance check: a
// subprocess-mode solve must return plan wire bytes bit-identical to the
// in-process solve of the same request (timing statistics normalized),
// with the same phase-event sequence.
func TestSubprocessBitIdentical(t *testing.T) {
	a, err := NewArray(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	inproc := NewService()
	defer inproc.Close()
	sub := newSubprocessService(t, "solve")

	var inEvents, subEvents []Event
	jIn := generateOn(t, inproc, a, WithProgress(func(e Event) { inEvents = append(inEvents, e) }))
	jSub := generateOn(t, sub, a, WithProgress(func(e Event) { subEvents = append(subEvents, e) }))

	wireIn, err := jIn.PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	wireSub, err := jSub.PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizePlanWire(t, wireSub), normalizePlanWire(t, wireIn); got != want {
		t.Errorf("subprocess plan wire differs from in-process:\n got %s\nwant %s", got, want)
	}
	if len(subEvents) == 0 {
		t.Fatal("subprocess solve emitted no phase events")
	}
	if len(subEvents) != len(inEvents) {
		t.Fatalf("event count mismatch: subprocess %d, in-process %d", len(subEvents), len(inEvents))
	}
	for i := range subEvents {
		if subEvents[i] != inEvents[i] {
			t.Errorf("event %d: subprocess %+v, in-process %+v", i, subEvents[i], inEvents[i])
		}
	}
	st := sub.Stats()
	if st.SolverExecutor != "subprocess" || st.WorkerSpawns != 1 || st.WorkersAlive != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSubprocessEngineOptionsTravel exercises the non-default knobs over
// the wire: direct model, no leakage, explicit engines, block size.
func TestSubprocessEngineOptionsTravel(t *testing.T) {
	a, err := NewArray(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	inproc := NewService()
	defer inproc.Close()
	sub := newSubprocessService(t, "solve")
	opts := []GenOption{
		WithDirectModel(),
		WithoutLeakage(),
		WithPathEngine(PathEngineSerpentine),
		WithCutEngine(CutEngineDual),
	}
	wireIn, err := generateOn(t, inproc, a, opts...).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	wireSub, err := generateOn(t, sub, a, opts...).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizePlanWire(t, wireSub), normalizePlanWire(t, wireIn); got != want {
		t.Errorf("subprocess plan wire differs from in-process:\n got %s\nwant %s", got, want)
	}
	plan, err := generateOn(t, sub, a, opts...).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if n := plan.Stats().NL; n != 0 {
		t.Errorf("WithoutLeakage did not travel: %d leakage vectors", n)
	}
}

// TestSubprocessCacheAndSingleflight: identical submissions hit the plan
// cache (no second solve), and the cached bytes are the worker's response
// verbatim.
func TestSubprocessCacheAndSingleflight(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := newSubprocessService(t, "solve")
	first, err := generateOn(t, sub, a).PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArray(4, 4) // content-identical, distinct instance
	if err != nil {
		t.Fatal(err)
	}
	j2 := generateOn(t, sub, b)
	if !j2.CacheHit() {
		t.Error("second identical submission missed the cache")
	}
	second, err := j2.PlanBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("cache returned different bytes than the worker produced")
	}
	if st := sub.Stats(); st.Solves != 1 {
		t.Errorf("expected exactly one subprocess solve, got %d", st.Solves)
	}
}

// TestSubprocessKill9FailsExactlyOneJob is the crash-isolation acceptance
// check: SIGKILLing the worker mid-solve fails that job and only that
// job; the service keeps serving and the next solve runs on a restarted
// worker.
func TestSubprocessKill9FailsExactlyOneJob(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := newSubprocessService(t, "hangsolve")
	j, err := sub.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the solve up, then SIGKILL it.
	var pid int
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pids := sub.workerPids(); len(pids) == 1 && sub.Stats().WorkersBusy == 1 {
			pid = pids[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pid == 0 {
		t.Fatal("worker never became busy")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err == nil {
		t.Fatal("job survived its worker being SIGKILLed")
	} else if !errors.Is(err, workerpool.ErrWorkerCrashed) {
		t.Fatalf("err = %v, want ErrWorkerCrashed", err)
	}
	if st := j.State(); st != JobFailed {
		t.Fatalf("job state = %v, want failed", st)
	}
	// Exactly one job was hurt: a fresh solve succeeds on a respawned
	// worker (same array — the failed solve must not have poisoned the
	// cache or the flight table).
	os.Setenv(workerEnv, "solve")
	if _, err := generateOn(t, sub, a).Plan(); err != nil {
		t.Fatalf("post-kill solve: %v", err)
	}
	st := sub.Stats()
	if st.WorkerRestarts != 1 {
		t.Errorf("restarts = %d, want 1", st.WorkerRestarts)
	}
	ks := st.Kinds["generate"]
	if ks.Failed != 1 || ks.Done != 1 {
		t.Errorf("generate kind stats = %+v, want 1 failed / 1 done", ks)
	}
}

// TestSubprocessWorkerErrorFailsJob: a worker-side solve error travels
// back as the job's error; the worker survives.
func TestSubprocessWorkerErrorFailsJob(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := newSubprocessService(t, "failsolve")
	j, err := sub.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "synthetic solver failure") {
		t.Fatalf("err = %v, want the worker's failure message", err)
	}
	if st := sub.Stats(); st.WorkerRestarts != 0 || st.WorkersAlive != 1 {
		t.Errorf("worker should have survived a solve error: %+v", st)
	}
}

// TestSubprocessSolverTimeout: WithSolverTimeout bounds a subprocess
// solve; the job fails with a deadline error and the (cooperative) worker
// survives.
func TestSubprocessSolverTimeout(t *testing.T) {
	a, err := NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := newSubprocessService(t, "hangsolve", WithSolverTimeout(150*time.Millisecond))
	j, err := sub.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if st := sub.Stats(); st.WorkerKills != 0 {
		t.Errorf("cooperative cancel should not kill the worker: %+v", st)
	}
}

// TestSolveWorkerJobRejectsGarbage covers the worker-side request
// validation: non-JSON, wrong format, bad version, bad array, bad engine.
func TestSolveWorkerJobRejectsGarbage(t *testing.T) {
	noEvents := func([]byte) {}
	a, err := NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	badEngine, err := json.Marshal(solveEnvelope{
		Format: SolveFormat, Version: CodecVersion, Array: a.Text(), PathEngine: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  string
	}{
		{"not json", "not json at all"},
		{"wrong format", `{"format":"fpva.plan","version":1,"array":""}`},
		{"wrong version", `{"format":"fpva.solve","version":99,"array":""}`},
		{"bad array", `{"format":"fpva.solve","version":1,"array":"not an array"}`},
		{"bad engine", string(badEngine)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := solveWorkerJob(context.Background(), []byte(tc.req), noEvents); err == nil {
				t.Error("invalid solve request was accepted")
			}
		})
	}
}

func TestParseSolverExecutor(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SolverExecutor
		ok   bool
	}{
		{"in-process", ExecInProcess, true},
		{"subprocess", ExecSubprocess, true},
		{"threads", 0, false},
	} {
		got, err := ParseSolverExecutor(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSolverExecutor(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ExecInProcess.String() != "in-process" || ExecSubprocess.String() != "subprocess" {
		t.Error("executor names changed; fpvad -solver-exec documents these")
	}
}
