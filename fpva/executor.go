package fpva

// This file is the out-of-process solver executor: a Service configured
// with WithSolverExecutor(ExecSubprocess) routes every generate solve
// through a pool of crash-isolated worker subprocesses instead of calling
// the pipeline in-process. The workers speak a length-prefixed frame
// protocol (internal/workerpool) whose payloads are defined here: the
// request is a versioned JSON solve envelope carrying the array text and
// the generation options, events are phase transitions, and the response
// is the plan's v1 wire encoding — the exact bytes the service caches and
// serves, so a subprocess solve is bit-identical to an in-process one
// everywhere vectors are concerned (timing statistics are measurements,
// not content, and naturally differ run to run).
//
// cmd/fpvaworker is the stock worker binary: ServeSolverWorker on
// stdin/stdout. Any binary speaking the same protocol can be substituted
// via WithWorkerCommand.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/workerpool"
)

// SolverExecutor selects where a Service runs its generate solves.
type SolverExecutor int

const (
	// ExecInProcess runs solves in the service's own process (the default).
	ExecInProcess SolverExecutor = iota
	// ExecSubprocess runs each solve in a supervised worker subprocess: a
	// crashing or runaway solver fails only its own job, and the pool
	// restarts the worker for the next one.
	ExecSubprocess
)

func (e SolverExecutor) String() string {
	switch e {
	case ExecInProcess:
		return "in-process"
	case ExecSubprocess:
		return "subprocess"
	}
	return fmt.Sprintf("SolverExecutor(%d)", int(e))
}

// ParseSolverExecutor maps the command-line executor names ("in-process",
// "subprocess") to a SolverExecutor.
func ParseSolverExecutor(s string) (SolverExecutor, error) {
	switch s {
	case "in-process":
		return ExecInProcess, nil
	case "subprocess":
		return ExecSubprocess, nil
	}
	return 0, fmt.Errorf("fpva: unknown solver executor %q", s)
}

const (
	// SolveFormat names the solver-worker request envelope.
	SolveFormat = "fpva.solve"
)

// solveEnvelope is one solve request on the worker wire: the array in its
// canonical text format plus every generation option that shapes the
// vectors. It follows the same versioning policy as the other envelopes
// (codec.go): same format name + version across supervisor and worker, or
// the worker rejects the job.
type solveEnvelope struct {
	Format     string `json:"format"`
	Version    int    `json:"version"`
	Array      string `json:"array"`
	Direct     bool   `json:"direct,omitempty"`
	BlockSize  int    `json:"blockSize"`
	Workers    int    `json:"workers,omitempty"`
	SkipLeak   bool   `json:"skipLeak,omitempty"`
	PathEngine int    `json:"pathEngine"`
	CutEngine  int    `json:"cutEngine"`
}

// solveEvent is one progress event on the worker wire (a generation phase
// transition, forwarded to the flight's subscribers as it happens).
type solveEvent struct {
	Kind  int `json:"kind"`
	Phase int `json:"phase"`
}

// marshalSolveRequest renders the (array, options) pair as a solve
// envelope.
func marshalSolveRequest(a *Array, cfg genConfig) ([]byte, error) {
	return json.Marshal(solveEnvelope{
		Format:     SolveFormat,
		Version:    CodecVersion,
		Array:      a.Text(),
		Direct:     cfg.direct,
		BlockSize:  cfg.blockSize,
		Workers:    cfg.workers,
		SkipLeak:   cfg.skipLeak,
		PathEngine: int(cfg.pathEngine),
		CutEngine:  int(cfg.cutEngine),
	})
}

// solveSubprocess runs one deduplicated solve on the worker pool: request
// out, phase events fanned to the flight as they stream in, plan wire
// bytes back. The returned plan is decoded from those bytes, and fl.wire
// keeps them verbatim — the cache entry and every later PlanBytes fetch
// serve exactly what the worker produced.
func (s *Service) solveSubprocess(ctx context.Context, fl *flight, a *Array, cfg genConfig) (*Plan, error) {
	req, err := marshalSolveRequest(a, cfg)
	if err != nil {
		return nil, fmt.Errorf("fpva: generate: encode solve request: %w", err)
	}
	resp, err := s.pool.Do(ctx, req, func(ev []byte) {
		var e solveEvent
		if json.Unmarshal(ev, &e) != nil {
			return // an unknown event shape is not worth killing the solve over
		}
		fl.emit(s, Event{Kind: EventKind(e.Kind), Phase: Phase(e.Phase)})
	})
	if err != nil {
		return nil, fmt.Errorf("fpva: generate: %w", err)
	}
	plan, err := DecodePlan(bytes.NewReader(resp))
	if err != nil {
		return nil, fmt.Errorf("fpva: generate: worker returned an invalid plan: %w", err)
	}
	fl.wire = resp
	return plan, nil
}

// ServeSolverWorker runs the solver-worker side of the subprocess
// executor protocol over (r, w) until r reaches EOF (the supervisor
// closing the worker's stdin is the graceful-drain signal) or ctx is
// canceled. cmd/fpvaworker calls it on stdin/stdout; embedding callers
// can serve the same protocol over any stream pair.
//
// Each job decodes a solve envelope, runs the generation pipeline with
// phase events streamed back as they happen, and answers with the plan's
// v1 wire encoding. Vectors are deterministic, so the response bytes are
// bit-identical to an in-process solve of the same request up to the
// timing statistics.
func ServeSolverWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return workerpool.Serve(ctx, r, w, solveWorkerJob)
}

// solveWorkerJob handles one solve inside the worker process.
func solveWorkerJob(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
	var env solveEnvelope
	if err := json.Unmarshal(req, &env); err != nil {
		return nil, fmt.Errorf("fpva: decode solve request: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, SolveFormat, env.Version); err != nil {
		return nil, err
	}
	g, err := grid.Parse(strings.NewReader(env.Array))
	if err != nil {
		return nil, fmt.Errorf("fpva: decode solve request: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("fpva: decode solve request: %w: %v", ErrWirePayload, err)
	}
	cfg := genConfig{
		direct:     env.Direct,
		blockSize:  env.BlockSize,
		workers:    env.Workers,
		skipLeak:   env.SkipLeak,
		pathEngine: PathEngine(env.PathEngine),
		cutEngine:  CutEngine(env.CutEngine),
	}
	coreCfg, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	coreCfg.OnPhase = func(ph core.Phase, done bool) {
		kind := PhaseStarted
		if done {
			kind = PhaseFinished
		}
		ev, err := json.Marshal(solveEvent{Kind: int(kind), Phase: int(ph)})
		if err == nil {
			emit(ev)
		}
	}
	ts, err := core.Generate(ctx, g, coreCfg)
	if err != nil {
		return nil, err
	}
	plan := &Plan{a: &Array{g: g}, ts: ts, geometry: true}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, plan); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// defaultWorkerCommand locates the stock fpvaworker binary: next to the
// current executable first (the install layout of `go build ./...`), then
// whatever PATH resolves.
func defaultWorkerCommand() []string {
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "fpvaworker")
		if st, err := os.Stat(cand); err == nil && !st.IsDir() {
			return []string{cand}
		}
	}
	return []string{"fpvaworker"}
}

// newSolverPool builds the worker pool of a subprocess-executor service.
func newSolverPool(cfg serviceConfig) *workerpool.Pool {
	command := cfg.workerCmd
	if len(command) == 0 {
		command = defaultWorkerCommand()
	}
	if cfg.workerMemMB > 0 {
		command = append(append([]string(nil), command...),
			"-mem-limit-mb", fmt.Sprint(cfg.workerMemMB))
	}
	poolWorkers := cfg.poolSize
	if poolWorkers <= 0 {
		poolWorkers = cfg.workers
	}
	var rssLimit int64
	if cfg.workerMemMB > 0 {
		// The worker's runtime/debug.SetMemoryLimit is the soft ceiling; the
		// supervisor kills at twice that — headroom for the Go runtime to
		// shed memory before the hard backstop fires.
		rssLimit = int64(cfg.workerMemMB) << 20 * 2
	}
	return workerpool.New(workerpool.Config{
		Command:       command,
		Workers:       poolWorkers,
		JobTimeout:    cfg.solverTimeout,
		RSSLimitBytes: rssLimit,
		Stderr:        os.Stderr,
	})
}
