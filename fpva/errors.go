package fpva

import "errors"

// Sentinel errors of the wire codec. Every decode failure wraps exactly one
// of these, so callers (and the fpvad daemon, which maps them to HTTP
// status codes) can classify failures with errors.Is without string
// matching.
var (
	// ErrWireSyntax marks malformed JSON: truncated input, type mismatches,
	// or trailing garbage.
	ErrWireSyntax = errors.New("malformed wire JSON")
	// ErrWireFormat marks an envelope whose "format" field names a
	// different payload kind (or none at all).
	ErrWireFormat = errors.New("wrong wire format")
	// ErrWireVersion marks an envelope version this decoder does not speak
	// (e.g. a file written by a future release).
	ErrWireVersion = errors.New("unsupported wire version")
	// ErrWirePayload marks a structurally valid envelope whose payload is
	// inconsistent: unparsable array text, out-of-range valve IDs, unknown
	// vector kinds, or an invalid array layout.
	ErrWirePayload = errors.New("invalid wire payload")
)

// Sentinel errors of the Service job API.
var (
	// ErrServiceClosed is returned by Submit* after Close.
	ErrServiceClosed = errors.New("service closed")
	// ErrQueueFull is returned by Submit* when the admission queue
	// (WithMaxPending) is at capacity: the service sheds the submission
	// deterministically instead of growing without bound. The fpvad
	// daemon maps it to 503.
	ErrQueueFull = errors.New("job queue full")
	// ErrJobRunning is returned by result accessors before the job reached
	// a terminal state.
	ErrJobRunning = errors.New("job not finished")
	// ErrWrongJobKind is returned by result accessors that do not match the
	// job's kind.
	ErrWrongJobKind = errors.New("wrong job kind")
)
