package fpva_test

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/fpva"
)

// TestServiceSingleflight is the tentpole acceptance check: N concurrent
// SubmitGenerate calls for content-identical arrays (distinct *Array
// instances) must perform exactly one generation, with every job receiving
// a plan and the full phase-event sequence.
func TestServiceSingleflight(t *testing.T) {
	svc := fpva.NewService(fpva.WithServiceWorkers(4))
	defer svc.Close()
	const n = 8
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		plans  []*fpva.Plan
		events [n]int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := fpva.NewArray(6, 6)
			if err != nil {
				t.Error(err)
				return
			}
			job, err := svc.SubmitGenerate(context.Background(), a,
				fpva.WithProgress(func(fpva.Event) {
					mu.Lock()
					events[i]++
					mu.Unlock()
				}))
			if err != nil {
				t.Error(err)
				return
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Error(err)
				return
			}
			p, err := job.Plan()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			plans = append(plans, p)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(plans) != n {
		t.Fatalf("%d/%d jobs returned a plan", len(plans), n)
	}
	for i, p := range plans {
		if p.NumVectors() != plans[0].NumVectors() {
			t.Errorf("plan %d has %d vectors, plan 0 has %d", i, p.NumVectors(), plans[0].NumVectors())
		}
	}
	for i, got := range events {
		if got != 6 {
			t.Errorf("job %d saw %d progress events, want 6 (3 phases x start/finish)", i, got)
		}
	}
	st := svc.Stats()
	if st.Solves != 1 {
		t.Errorf("Solves = %d, want exactly 1 (singleflight + cache)", st.Solves)
	}
	if st.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1", st.CacheMisses)
	}
	if st.CacheHits+st.CacheCoalesced != n-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d",
			st.CacheHits, st.CacheCoalesced, st.CacheHits+st.CacheCoalesced, n-1)
	}
	if st.JobsDone != n || st.JobsSubmitted != n {
		t.Errorf("jobs done=%d submitted=%d, want %d/%d", st.JobsDone, st.JobsSubmitted, n, n)
	}
	if st.SolverWall <= 0 {
		t.Errorf("SolverWall = %v, want > 0 after a real solve", st.SolverWall)
	}
}

// TestServiceCacheHitSequential: a repeat submission after completion is a
// pure cache hit — no second solve — and is flagged on the job handle.
func TestServiceCacheHitSequential(t *testing.T) {
	svc := fpva.NewService()
	defer svc.Close()
	submit := func() *fpva.Job {
		a, err := fpva.NewArray(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		job, err := svc.SubmitGenerate(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}
	first, second := submit(), submit()
	if first.CacheHit() {
		t.Error("first submission flagged as cache hit")
	}
	if !second.CacheHit() {
		t.Error("second submission not served from cache")
	}
	st := svc.Stats()
	if st.Solves != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("solves=%d hits=%d misses=%d, want 1/1/1", st.Solves, st.CacheHits, st.CacheMisses)
	}
	if st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Errorf("cache entries=%d bytes=%d, want 1 entry with positive size", st.CacheEntries, st.CacheBytes)
	}
}

// TestServiceCacheKeyedByOptions: engine/decomposition options that change
// the vectors must not share a cache entry.
func TestServiceCacheKeyedByOptions(t *testing.T) {
	svc := fpva.NewService()
	defer svc.Close()
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]fpva.GenOption{
		nil,
		{fpva.WithDirectModel()},
		{fpva.WithoutLeakage()},
	} {
		job, err := svc.SubmitGenerate(context.Background(), a, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc.Stats(); st.Solves != 3 || st.CacheMisses != 3 {
		t.Errorf("solves=%d misses=%d, want 3/3 (distinct option fingerprints)", st.Solves, st.CacheMisses)
	}
}

// TestServiceCacheEviction: a byte budget that fits either plan alone but
// not both holds one entry, and the evicted plan is a miss again.
func TestServiceCacheEviction(t *testing.T) {
	planSize := func(rows, cols int) int64 {
		a, err := fpva.NewArray(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		p, err := fpva.Generate(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fpva.EncodePlan(&buf, p); err != nil {
			t.Fatal(err)
		}
		return int64(buf.Len())
	}
	n1, n2 := planSize(4, 4), planSize(5, 4)
	budget := max(n1, n2) + 64 // either plan fits alone; the pair does not
	svc := fpva.NewService(fpva.WithCacheBytes(budget))
	defer svc.Close()
	gen := func(rows, cols int) {
		a, err := fpva.NewArray(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		job, err := svc.SubmitGenerate(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	gen(4, 4)
	gen(5, 4) // evicts the 4x4 entry
	gen(4, 4) // miss again
	st := svc.Stats()
	if st.CacheBytes > st.CacheCapBytes {
		t.Errorf("cache bytes %d exceed budget %d", st.CacheBytes, st.CacheCapBytes)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache entries=%d, want 1 under a one-plan budget", st.CacheEntries)
	}
	if st.Solves != 3 {
		t.Errorf("solves=%d, want 3 (eviction forced a re-solve)", st.Solves)
	}
}

// TestServiceCancelMidJobNoLeak cancels a generate job stuck in a heavy
// ILP solve and checks that the worker goroutines drain (the -race CI run
// makes this the satellite race test).
func TestServiceCancelMidJobNoLeak(t *testing.T) {
	svc := fpva.NewService()
	before := runtime.NumGoroutine()
	a, err := fpva.NewArray(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	job, err := svc.SubmitGenerate(ctx, a,
		fpva.WithDirectModel(),
		fpva.WithPathEngine(fpva.PathEngineILPIterative),
		fpva.WithSolverWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", err)
	}
	if got := job.State(); got != fpva.JobCanceled {
		t.Errorf("state = %v, want canceled", got)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked after cancel+close: %d, started with %d", now, before)
	}
	if st := svc.Stats(); st.JobsCanceled != 1 {
		t.Errorf("JobsCanceled = %d, want 1", st.JobsCanceled)
	}
}

// TestServiceCancelOneFollowerKeepsFlight: with two jobs coalesced onto
// one flight, canceling one must not abort the solve the other is waiting
// for. The single worker slot is held by a cancelable campaign job so the
// shared flight stays queued while we cancel the first submitter.
func TestServiceCancelOneFollowerKeepsFlight(t *testing.T) {
	svc := fpva.NewService(fpva.WithServiceWorkers(1))
	defer svc.Close()
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	genJob, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := genJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	plan, err := genJob.Plan()
	if err != nil {
		t.Fatal(err)
	}
	blockCtx, unblock := context.WithCancel(context.Background())
	defer unblock()
	blocker, err := svc.SubmitCampaign(blockCtx, plan,
		fpva.WithTrials(1_000_000_000), fpva.WithNumFaults(2), fpva.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, fpva.JobRunning)

	build := func() *fpva.Array {
		a, err := fpva.NewArray(6, 5)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	j1, err := svc.SubmitGenerate(ctx1, build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := svc.SubmitGenerate(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, svc, func(st fpva.ServiceStats) bool { return st.CacheCoalesced == 1 })

	cancel1()
	if err := j1.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled job: %v", err)
	}
	if got := j2.State(); got.Terminal() {
		t.Fatalf("surviving job already terminal (%v) while the slot is blocked", got)
	}
	unblock() // free the worker slot; the surviving flight runs now
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("surviving job failed: %v", err)
	}
	if p, err := j2.Plan(); err != nil || p.NumVectors() == 0 {
		t.Errorf("surviving job plan: %v (err %v)", p, err)
	}
	if err := blocker.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("blocker: %v", err)
	}
	if st := svc.Stats(); st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (setup plan + shared flight)", st.Solves)
	}
}

// TestServiceResubmitAfterFullCancel: once every subscriber of a flight
// has canceled, the flight is unpublished — a later identical submission
// must start a fresh solve instead of inheriting the doomed one's error.
func TestServiceResubmitAfterFullCancel(t *testing.T) {
	svc := fpva.NewService(fpva.WithServiceWorkers(1))
	defer svc.Close()
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	genJob, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := genJob.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	plan, err := genJob.Plan()
	if err != nil {
		t.Fatal(err)
	}
	blockCtx, unblock := context.WithCancel(context.Background())
	defer unblock()
	blocker, err := svc.SubmitCampaign(blockCtx, plan,
		fpva.WithTrials(1_000_000_000), fpva.WithNumFaults(2), fpva.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, fpva.JobRunning)

	build := func() *fpva.Array {
		a, err := fpva.NewArray(5, 7)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	j1, err := svc.SubmitGenerate(ctx1, build())
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, svc, func(st fpva.ServiceStats) bool { return st.CacheMisses >= 1 })
	cancel1()
	if err := j1.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job: %v", err)
	}
	// The doomed flight is gone; an identical resubmission starts fresh.
	j2, err := svc.SubmitGenerate(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	unblock()
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("resubmission inherited the canceled flight: %v", err)
	}
	if p, err := j2.Plan(); err != nil || p.NumVectors() == 0 {
		t.Errorf("resubmitted plan: %v (err %v)", p, err)
	}
}

// waitState polls until the job reaches the state (or fails the test).
func waitState(t *testing.T, j *fpva.Job, want fpva.JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %v, want %v", j.ID(), j.State(), want)
}

// waitStats polls the service counters until cond holds.
func waitStats(t *testing.T, svc *fpva.Service, cond func(fpva.ServiceStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(svc.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("service stats never converged: %+v", svc.Stats())
}

// TestServiceCampaignAndVerifyJobs drives the two non-generate job kinds
// end to end, including the event stream and result accessors.
func TestServiceCampaignAndVerifyJobs(t *testing.T) {
	svc := fpva.NewService()
	defer svc.Close()
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	plan, err := gen.Plan()
	if err != nil {
		t.Fatal(err)
	}

	camp, err := svc.SubmitCampaign(context.Background(), plan,
		fpva.WithTrials(500), fpva.WithNumFaults(2), fpva.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	for e := range camp.Stream(context.Background()) {
		if e.Kind != fpva.CampaignTick {
			t.Errorf("campaign job emitted %v", e)
		}
		ticks++
	}
	if ticks == 0 {
		t.Error("no campaign ticks streamed")
	}
	res, err := camp.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 500 || res.Detected != 500 || res.Sims <= 0 {
		t.Errorf("campaign result %+v", res)
	}
	if _, err := camp.Plan(); err != nil {
		t.Errorf("campaign job must expose its input plan: %v", err)
	}
	if _, err := camp.Verify(); !errors.Is(err, fpva.ErrWrongJobKind) {
		t.Errorf("Verify on campaign job: %v, want ErrWrongJobKind", err)
	}

	ver, err := svc.SubmitVerify(context.Background(), plan, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	vres, err := ver.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(vres.SingleEscapes) != 0 || len(vres.DoubleEscapes) != 0 {
		t.Errorf("verify escapes: %+v", vres)
	}
	st := svc.Stats()
	if st.Campaigns != 1 || st.Verifies != 1 {
		t.Errorf("campaigns=%d verifies=%d, want 1/1", st.Campaigns, st.Verifies)
	}
}

// TestServiceClosedRejectsSubmissions: Close is terminal for the submit
// surface and cancels queued jobs.
func TestServiceClosedRejectsSubmissions(t *testing.T) {
	svc := fpva.NewService()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitGenerate(context.Background(), a); !errors.Is(err, fpva.ErrServiceClosed) {
		t.Errorf("submit after close: %v, want ErrServiceClosed", err)
	}
}

// TestServiceJobLookup: handles are retrievable by ID in submission order.
func TestServiceJobLookup(t *testing.T) {
	svc := fpva.NewService()
	defer svc.Close()
	a, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := svc.Job(j.ID())
	if !ok || got != j {
		t.Errorf("Job(%q) = %v, %v", j.ID(), got, ok)
	}
	if _, ok := svc.Job("nope"); ok {
		t.Error("unknown job ID resolved")
	}
	if jobs := svc.Jobs(); len(jobs) != 1 || jobs[0] != j {
		t.Errorf("Jobs() = %v", jobs)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServiceJobRetention: beyond the retention cap, the oldest terminal
// jobs drop out of tracking while the lifetime counters keep counting.
func TestServiceJobRetention(t *testing.T) {
	svc := fpva.NewService(fpva.WithJobRetention(2))
	defer svc.Close()
	var last *fpva.Job
	for i := 0; i < 5; i++ {
		a, err := fpva.NewArray(3, 3+i) // distinct content: no cache reuse
		if err != nil {
			t.Fatal(err)
		}
		j, err := svc.SubmitGenerate(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	if got := len(svc.Jobs()); got > 2 {
		t.Errorf("retained %d jobs, cap is 2", got)
	}
	st := svc.Stats()
	if st.JobsSubmitted != 5 {
		t.Errorf("JobsSubmitted = %d, want the lifetime count 5", st.JobsSubmitted)
	}
	if st.JobsDone > 2 {
		t.Errorf("JobsDone = %d over retained jobs, cap is 2", st.JobsDone)
	}
	// The newest job is still tracked and Forget drops it.
	if _, ok := svc.Job(last.ID()); !ok {
		t.Fatalf("newest job %s not retained", last.ID())
	}
	if !svc.Forget(last.ID()) {
		t.Errorf("Forget(%s) = false", last.ID())
	}
	if _, ok := svc.Job(last.ID()); ok {
		t.Errorf("job %s still tracked after Forget", last.ID())
	}
	if svc.Forget("nope") {
		t.Error("Forget accepted an unknown id")
	}
	// Handles keep working after eviction.
	if p, err := last.Plan(); err != nil || p == nil {
		t.Errorf("forgotten job handle broke: %v", err)
	}
}

// TestGenerateWrapperLeavesNoJobs: the one-shot wrapper must not
// accumulate job state in the default service.
func TestGenerateWrapperLeavesNoJobs(t *testing.T) {
	a, err := fpva.NewArray(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := len(fpva.DefaultService().Jobs())
	if _, err := fpva.Generate(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if after := len(fpva.DefaultService().Jobs()); after != before {
		t.Errorf("Generate grew the default service's job list: %d -> %d", before, after)
	}
}

// TestGenerateWrapperUsesDefaultService: the package-level Generate is a
// thin wrapper over the default service — a repeat call replays the full
// phase-event sequence even when the plan comes from the cache.
func TestGenerateWrapperUsesDefaultService(t *testing.T) {
	build := func() *fpva.Array {
		a, err := fpva.NewArray(7, 3)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if _, err := fpva.Generate(context.Background(), build()); err != nil {
		t.Fatal(err)
	}
	before := fpva.DefaultService().Stats()
	var events []fpva.Event
	if _, err := fpva.Generate(context.Background(), build(),
		fpva.WithProgress(func(e fpva.Event) { events = append(events, e) })); err != nil {
		t.Fatal(err)
	}
	after := fpva.DefaultService().Stats()
	if after.Solves != before.Solves {
		t.Errorf("repeat Generate ran %d extra solve(s)", after.Solves-before.Solves)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", before.CacheHits, after.CacheHits)
	}
	if len(events) != 6 {
		t.Errorf("cache-hit Generate delivered %d events, want the replayed 6", len(events))
	}
}
