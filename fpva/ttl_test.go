package fpva_test

import (
	"context"
	"testing"
	"time"

	"repro/fpva"
)

// TestJobTTLExpiresTerminalJobs: a terminal job older than the TTL drops
// out of Job / Jobs / Stats tracking; held handles keep working; running
// jobs are never expired.
func TestJobTTLExpiresTerminalJobs(t *testing.T) {
	svc := fpva.NewService(fpva.WithJobTTL(50 * time.Millisecond))
	defer svc.Close()
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Job(j.ID()); !ok {
		t.Fatal("freshly finished job already expired")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := svc.Job(j.ID()); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never expired past its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := len(svc.Jobs()); n != 0 {
		t.Errorf("Jobs() still tracks %d jobs after expiry", n)
	}
	st := svc.Stats()
	if st.JobsDone != 0 {
		t.Errorf("stats still count the expired job: %+v", st)
	}
	if st.JobsSubmitted != 1 || st.Kinds["generate"].Done != 1 {
		t.Errorf("lifetime counters must survive expiry: %+v", st)
	}
	// The held handle still works.
	if _, err := j.Plan(); err != nil {
		t.Errorf("expired job's handle broke: %v", err)
	}
}

// TestJobTTLZeroKeepsJobs: without WithJobTTL terminal jobs stay tracked
// (the retention cap is the only reaper).
func TestJobTTLZeroKeepsJobs(t *testing.T) {
	svc := fpva.NewService()
	defer svc.Close()
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := svc.Job(j.ID()); !ok {
		t.Error("job expired with no TTL configured")
	}
}
