package fpva

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cutset"
	"repro/internal/flowpath"
)

// Phase names one stage of the generation pipeline.
type Phase int

const (
	// PhaseFlowPaths generates the stuck-at-0 flow-path vectors.
	PhaseFlowPaths Phase = iota
	// PhaseCutSets generates the stuck-at-1 cut-set vectors.
	PhaseCutSets
	// PhaseLeakage generates the control-layer leakage vectors.
	PhaseLeakage
)

func (p Phase) String() string { return core.Phase(p).String() }

// EventKind labels a Progress event.
type EventKind int

const (
	// PhaseStarted fires when a generation phase begins.
	PhaseStarted EventKind = iota
	// PhaseFinished fires when a generation phase completes.
	PhaseFinished
	// CampaignTick fires while a campaign runs, carrying completed and
	// total trial counts.
	CampaignTick
	// DiagnoseTick fires once per diagnosis observation round, carrying the
	// round number and the surviving ambiguity count.
	DiagnoseTick
)

func (k EventKind) String() string {
	switch k {
	case PhaseStarted:
		return "phase-started"
	case PhaseFinished:
		return "phase-finished"
	case CampaignTick:
		return "campaign-tick"
	case DiagnoseTick:
		return "diagnose-tick"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one observation delivered to a Progress callback: a generation
// phase transition (PhaseStarted / PhaseFinished, Phase set), a campaign
// trial tick (CampaignTick, TrialsDone / TrialsTotal set), or a diagnosis
// narrowing round (DiagnoseTick, Round / Ambiguity set).
type Event struct {
	Kind        EventKind
	Phase       Phase
	TrialsDone  int
	TrialsTotal int
	Round       int
	Ambiguity   int
}

func (e Event) String() string {
	switch e.Kind {
	case PhaseStarted:
		return fmt.Sprintf("phase %v started", e.Phase)
	case PhaseFinished:
		return fmt.Sprintf("phase %v finished", e.Phase)
	case DiagnoseTick:
		return fmt.Sprintf("diagnose round %d: %d candidates", e.Round, e.Ambiguity)
	default:
		return fmt.Sprintf("campaign %d/%d trials", e.TrialsDone, e.TrialsTotal)
	}
}

// Progress observes pipeline activity. Callbacks must be fast and must not
// call back into the object that is reporting; campaign ticks may arrive
// from worker goroutines (serialized by an internal lock).
type Progress func(Event)

// PathEngine selects the flow-path construction algorithm.
type PathEngine int

const (
	// PathEngineAuto picks the serpentine strip decomposition — exact on
	// regular arrays, patched on irregular ones, fast at every Table I size.
	PathEngineAuto PathEngine = iota
	// PathEngineSerpentine forces the strip-decomposition generator.
	PathEngineSerpentine
	// PathEngineILPIterative solves the paper's per-path ILP model
	// repeatedly, maximizing newly covered valves each round.
	PathEngineILPIterative
	// PathEngineILPMonolithic solves the paper's full model (7)-(8).
	PathEngineILPMonolithic
)

// CutEngine selects the cut-set construction algorithm.
type CutEngine int

const (
	// CutEngineAuto uses straight-line cuts first and dual-path cuts for
	// whatever they miss.
	CutEngineAuto CutEngine = iota
	// CutEngineDual builds every cut as a forced-through dual path.
	CutEngineDual
	// CutEngineILP solves the paper's complementary ILP over the dual
	// graph, one cut at a time.
	CutEngineILP
)

// GenOption customizes Generate.
type GenOption func(*genConfig)

type genConfig struct {
	direct     bool
	blockSize  int
	workers    int
	skipLeak   bool
	pathEngine PathEngine
	cutEngine  CutEngine
	progress   Progress
}

// WithBlockSize overrides the hierarchical block edge length (default 5,
// the paper's evaluation setting).
func WithBlockSize(n int) GenOption { return func(c *genConfig) { c.blockSize = n } }

// WithDirectModel disables the hierarchical subblock decomposition and
// generates over the whole array at once.
func WithDirectModel() GenOption { return func(c *genConfig) { c.direct = true } }

// WithSolverWorkers sets the branch-and-bound worker pool for the ILP
// engines. Results are bit-identical for any worker count; <= 1 is serial.
func WithSolverWorkers(n int) GenOption { return func(c *genConfig) { c.workers = n } }

// WithPathEngine selects the flow-path construction algorithm.
func WithPathEngine(e PathEngine) GenOption { return func(c *genConfig) { c.pathEngine = e } }

// WithCutEngine selects the cut-set construction algorithm.
func WithCutEngine(e CutEngine) GenOption { return func(c *genConfig) { c.cutEngine = e } }

// WithoutLeakage omits the control-layer leakage vectors (the paper's
// optional nl family).
func WithoutLeakage() GenOption { return func(c *genConfig) { c.skipLeak = true } }

// WithProgress registers a callback observing generation phase transitions.
func WithProgress(p Progress) GenOption { return func(c *genConfig) { c.progress = p } }

// Stats summarizes a generated test set in the shape of a Table I row.
type Stats struct {
	NV         int           // valves under test
	NP, NC, NL int           // vector counts per family
	N          int           // total vectors
	TP, TC, TL time.Duration // generation times per family
	T          time.Duration // total generation time
	// PathILPNonOptimal / CutILPNonOptimal count ILP solves that hit the
	// node budget: the accepted paths/cuts are feasible but not proven
	// optimal. Zero when the exact engines finished (or were not used).
	PathILPNonOptimal, CutILPNonOptimal int
	// ILPSolves / ILPNodes / SolverWall aggregate the branch-and-bound
	// accounting across both ILP engines (zero when the combinatorial
	// engines served every family).
	ILPSolves, ILPNodes int
	SolverWall          time.Duration
}

func (s Stats) String() string {
	return core.Stats{
		NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
		TP: s.TP, TC: s.TC, TL: s.TL, T: s.T,
		PathILPNonOptimal: s.PathILPNonOptimal, CutILPNonOptimal: s.CutILPNonOptimal,
	}.String()
}

// coreConfig maps the public generation options onto the internal pipeline
// configuration, rejecting unknown engine selections. The progress callback
// is wired separately by the service (it fans events out per job).
func (c genConfig) coreConfig() (core.Config, error) {
	coreCfg := core.Config{
		Hierarchical: !c.direct,
		BlockSize:    c.blockSize,
		SkipLeakage:  c.skipLeak,
		Workers:      c.workers,
	}
	switch c.pathEngine {
	case PathEngineAuto:
		coreCfg.FlowPath.Engine = flowpath.EngineAuto
	case PathEngineSerpentine:
		coreCfg.FlowPath.Engine = flowpath.EngineSerpentine
	case PathEngineILPIterative:
		coreCfg.FlowPath.Engine = flowpath.EngineILPIterative
	case PathEngineILPMonolithic:
		coreCfg.FlowPath.Engine = flowpath.EngineILPMonolithic
	default:
		return core.Config{}, fmt.Errorf("fpva: unknown path engine %d", int(c.pathEngine))
	}
	switch c.cutEngine {
	case CutEngineAuto:
		coreCfg.CutSet.Engine = cutset.EngineAuto
	case CutEngineDual:
		coreCfg.CutSet.Engine = cutset.EngineDual
	case CutEngineILP:
		coreCfg.CutSet.Engine = cutset.EngineILP
	default:
		return core.Config{}, fmt.Errorf("fpva: unknown cut engine %d", int(c.cutEngine))
	}
	return coreCfg, nil
}

// ParsePathEngine maps the command-line engine names ("auto", "serpentine",
// "ilp-iterative", "ilp-monolithic") to a PathEngine.
func ParsePathEngine(s string) (PathEngine, error) {
	switch s {
	case "auto":
		return PathEngineAuto, nil
	case "serpentine":
		return PathEngineSerpentine, nil
	case "ilp-iterative":
		return PathEngineILPIterative, nil
	case "ilp-monolithic":
		return PathEngineILPMonolithic, nil
	}
	return 0, fmt.Errorf("fpva: unknown path engine %q", s)
}

// ParseCutEngine maps the command-line engine names ("auto", "dual", "ilp")
// to a CutEngine.
func ParseCutEngine(s string) (CutEngine, error) {
	switch s {
	case "auto":
		return CutEngineAuto, nil
	case "dual":
		return CutEngineDual, nil
	case "ilp":
		return CutEngineILP, nil
	}
	return 0, fmt.Errorf("fpva: unknown cut engine %q", s)
}

// Generate runs the full test-generation flow — flow paths (stuck-at-0),
// cut-sets (stuck-at-1) and control-leakage vectors — and returns the
// resulting Plan. The default configuration matches the paper's evaluation:
// hierarchical 5x5 decomposition with the automatic engines.
//
// Generate is a thin wrapper over the process-wide DefaultService: a repeat
// call for a content-identical array and configuration is served from the
// plan cache (phase events replay instantly), and concurrent identical
// calls share one solve. Construct a private Service to opt out or to tune
// the cache and worker pool.
//
// Cancelling ctx aborts generation promptly (between ILP solver nodes for
// the exact engines) and returns an error wrapping ctx.Err().
func Generate(ctx context.Context, a *Array, opts ...GenOption) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	svc := DefaultService()
	job, err := svc.SubmitGenerate(ctx, a, opts...)
	if err != nil {
		return nil, err
	}
	// The one-shot wrapper keeps no handle: drop the job from the service's
	// tracking so library callers do not accumulate state in the default
	// service. (If the job is not terminal yet — ctx canceled below — the
	// retention cap reaps it instead.)
	defer svc.Forget(job.ID())
	if err := job.Wait(ctx); err != nil {
		return nil, err
	}
	return job.Plan()
}

// BaselinePlan materializes the paper's Sec. IV comparison baseline: one
// dedicated flow-path vector (stuck-at-0 test) and one dedicated cut vector
// (stuck-at-1 test) per Normal valve — 2*nv vectors in total. The returned
// plan supports campaigns and serialization like a generated one.
func BaselinePlan(a *Array) (*Plan, error) {
	vecs, err := bench.BaselineVectors(a.g)
	if err != nil {
		return nil, err
	}
	ts := &core.TestSet{Array: a.g, PathVectors: vecs}
	ts.Stats.NV = a.g.NumNormal()
	ts.Stats.NP = len(vecs)
	ts.Stats.N = len(vecs)
	return &Plan{a: a, ts: ts}, nil
}
