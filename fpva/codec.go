package fpva

// This file is the versioned JSON wire format. Arrays and plans serialize
// to self-describing envelopes ({"format": ..., "version": ...}) so
// generation and simulation can run as separate processes and a stored plan
// keeps working across releases.
//
// Versioning policy (see DESIGN.md): decoders accept exactly the versions
// they know; any incompatible change to the payload bumps the version and
// keeps the old decoder path alive for at least one release. Unknown JSON
// fields are ignored on decode, so additive changes do not need a bump.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/leakage"
	"repro/internal/sim"
)

// duration converts wire nanoseconds back to a time.Duration.
func duration(ns int64) time.Duration { return time.Duration(ns) }

const (
	// ArrayFormat names the array envelope.
	ArrayFormat = "fpva.array"
	// PlanFormat names the plan envelope.
	PlanFormat = "fpva.plan"
	// DiagnosisFormat names the diagnosis envelope.
	DiagnosisFormat = "fpva.diagnosis"
	// CodecVersion is the current wire-format version written by the
	// encoders.
	CodecVersion = 1
)

// arrayEnvelope is the array wire format: the canonical text format wrapped
// in a versioned JSON envelope. Reusing the text format keeps one source of
// truth for array geometry and makes the JSON human-auditable.
type arrayEnvelope struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Text    string `json:"text"`
}

// MarshalJSON renders the array in the versioned JSON wire format.
func (a *Array) MarshalJSON() ([]byte, error) {
	return json.Marshal(arrayEnvelope{Format: ArrayFormat, Version: CodecVersion, Text: a.Text()})
}

// UnmarshalJSON decodes an array from the versioned JSON wire format.
func (a *Array) UnmarshalJSON(data []byte) error {
	var env arrayEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, ArrayFormat, env.Version); err != nil {
		return err
	}
	g, err := grid.Parse(strings.NewReader(env.Text))
	if err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWirePayload, err)
	}
	a.g = g
	return nil
}

// EncodeArray writes the array to w in the versioned JSON wire format.
func EncodeArray(w io.Writer, a *Array) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DecodeArray reads an array in the versioned JSON wire format.
func DecodeArray(r io.Reader) (*Array, error) {
	var a Array
	if err := decodeOne(r, &a, "decode array"); err != nil {
		return nil, err
	}
	return &a, nil
}

// decodeOne decodes exactly one JSON value from r; anything but
// whitespace after it is a syntax failure (a concatenated or corrupted
// file must not pass as its first envelope).
func decodeOne(r io.Reader, v any, op string) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return wireErr(op, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("fpva: %s: %w: trailing data after the envelope", op, ErrWireSyntax)
	}
	return nil
}

// wireErr classifies a decoder error: failures already wrapping one of the
// wire sentinels pass through; anything else (truncated input, JSON type
// mismatches) is a syntax failure.
func wireErr(op string, err error) error {
	if errors.Is(err, ErrWireSyntax) || errors.Is(err, ErrWireFormat) ||
		errors.Is(err, ErrWireVersion) || errors.Is(err, ErrWirePayload) {
		return err
	}
	return fmt.Errorf("fpva: %s: %w: %v", op, ErrWireSyntax, err)
}

func checkEnvelope(format, want string, version int) error {
	if format != want {
		return fmt.Errorf("fpva: %w: %q, want %q", ErrWireFormat, format, want)
	}
	if version != CodecVersion {
		return fmt.Errorf("fpva: %s: %w: version %d (decoder speaks version %d)",
			want, ErrWireVersion, version, CodecVersion)
	}
	return nil
}

// vectorJSON is one test vector on the wire: its name, family, and the
// ascending dense IDs of the valves commanded open. Dense IDs are stable
// for a given array dimension, and the enclosing envelope always carries
// the array, so the pairing is unambiguous.
type vectorJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Open []int  `json:"open"`
}

// statsJSON carries generation statistics; durations are nanoseconds.
type statsJSON struct {
	NV                int   `json:"nv"`
	NP                int   `json:"np"`
	NC                int   `json:"nc"`
	NL                int   `json:"nl"`
	N                 int   `json:"n"`
	TPNanos           int64 `json:"tp_ns"`
	TCNanos           int64 `json:"tc_ns"`
	TLNanos           int64 `json:"tl_ns"`
	TNanos            int64 `json:"t_ns"`
	PathILPNonOptimal int   `json:"path_ilp_non_optimal,omitempty"`
	CutILPNonOptimal  int   `json:"cut_ilp_non_optimal,omitempty"`
	ILPSolves         int   `json:"ilp_solves,omitempty"`
	ILPNodes          int   `json:"ilp_nodes,omitempty"`
	SolverWallNanos   int64 `json:"solver_wall_ns,omitempty"`
}

// planEnvelope is the plan wire format: the array (text format), the three
// vector families, leakage candidate pairs, coverage gaps and statistics.
// Path/cut geometry is deliberately not serialized — vectors are the
// contract; geometry is a generation-time artifact used only for figures.
type planEnvelope struct {
	Format        string       `json:"format"`
	Version       int          `json:"version"`
	Array         string       `json:"array"`
	PathVectors   []vectorJSON `json:"pathVectors"`
	CutVectors    []vectorJSON `json:"cutVectors"`
	LeakVectors   []vectorJSON `json:"leakVectors"`
	LeakPairs     [][2]int     `json:"leakPairs,omitempty"`
	UncoveredPath []int        `json:"uncoveredPath,omitempty"`
	UncoveredCut  []int        `json:"uncoveredCut,omitempty"`
	Stats         statsJSON    `json:"stats"`
}

func vectorsToJSON(vecs []*sim.Vector) []vectorJSON {
	out := make([]vectorJSON, len(vecs))
	for i, v := range vecs {
		vj := vectorJSON{Name: v.Name, Kind: v.Kind.String(), Open: []int{}}
		for _, id := range v.OpenValves() {
			vj.Open = append(vj.Open, int(id))
		}
		out[i] = vj
	}
	return out
}

func vectorsFromJSON(g *grid.Array, vjs []vectorJSON) ([]*sim.Vector, error) {
	kinds := map[string]sim.VectorKind{
		sim.FlowPath.String(): sim.FlowPath,
		sim.CutSet.String():   sim.CutSet,
		sim.Leakage.String():  sim.Leakage,
		"custom":              sim.Custom,
	}
	out := make([]*sim.Vector, len(vjs))
	for i, vj := range vjs {
		kind, ok := kinds[vj.Kind]
		if !ok {
			return nil, fmt.Errorf("fpva: %w: vector %q has unknown kind %q",
				ErrWirePayload, vj.Name, vj.Kind)
		}
		v := sim.NewVector(g, kind, vj.Name)
		for _, id := range vj.Open {
			if id < 0 || id >= g.NumValves() {
				return nil, fmt.Errorf("fpva: %w: vector %q opens valve %d outside [0,%d)",
					ErrWirePayload, vj.Name, id, g.NumValves())
			}
			v.SetOpen(grid.ValveID(id), true)
		}
		out[i] = v
	}
	return out, nil
}

func idsToInts(ids []grid.ValveID) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func intsToIDs(g *grid.Array, ints []int) ([]grid.ValveID, error) {
	if len(ints) == 0 {
		return nil, nil
	}
	out := make([]grid.ValveID, len(ints))
	for i, id := range ints {
		if id < 0 || id >= g.NumValves() {
			return nil, fmt.Errorf("fpva: %w: valve id %d outside [0,%d)",
				ErrWirePayload, id, g.NumValves())
		}
		out[i] = grid.ValveID(id)
	}
	return out, nil
}

// MarshalJSON renders the plan in the versioned JSON wire format.
func (p *Plan) MarshalJSON() ([]byte, error) {
	s := p.ts.Stats
	env := planEnvelope{
		Format:        PlanFormat,
		Version:       CodecVersion,
		Array:         grid.Marshal(p.a.g),
		PathVectors:   vectorsToJSON(p.ts.PathVectors),
		CutVectors:    vectorsToJSON(p.ts.CutVectors),
		LeakVectors:   vectorsToJSON(p.ts.LeakVectors),
		UncoveredPath: idsToInts(p.ts.UncoveredPath),
		UncoveredCut:  idsToInts(p.ts.UncoveredCut),
		Stats: statsJSON{
			NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
			TPNanos: s.TP.Nanoseconds(), TCNanos: s.TC.Nanoseconds(),
			TLNanos: s.TL.Nanoseconds(), TNanos: s.T.Nanoseconds(),
			PathILPNonOptimal: s.PathILPNonOptimal,
			CutILPNonOptimal:  s.CutILPNonOptimal,
			ILPSolves:         s.ILPSolves,
			ILPNodes:          s.ILPNodes,
			SolverWallNanos:   s.SolverWall.Nanoseconds(),
		},
	}
	for _, lp := range p.ts.LeakPairs {
		env.LeakPairs = append(env.LeakPairs, [2]int{int(lp[0]), int(lp[1])})
	}
	return json.Marshal(env)
}

// UnmarshalJSON decodes a plan from the versioned JSON wire format. The
// decoded plan supports campaigns, verification and re-encoding; it does
// not carry path/cut geometry, so rendering methods report an error.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var env planEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, PlanFormat, env.Version); err != nil {
		return err
	}
	g, err := grid.Parse(strings.NewReader(env.Array))
	if err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWirePayload, err)
	}
	ts := &core.TestSet{Array: g}
	if ts.PathVectors, err = vectorsFromJSON(g, env.PathVectors); err != nil {
		return err
	}
	if ts.CutVectors, err = vectorsFromJSON(g, env.CutVectors); err != nil {
		return err
	}
	if ts.LeakVectors, err = vectorsFromJSON(g, env.LeakVectors); err != nil {
		return err
	}
	for _, lp := range env.LeakPairs {
		ids, err := intsToIDs(g, []int{lp[0], lp[1]})
		if err != nil {
			return err
		}
		ts.LeakPairs = append(ts.LeakPairs, leakage.Pair{ids[0], ids[1]})
	}
	if ts.UncoveredPath, err = intsToIDs(g, env.UncoveredPath); err != nil {
		return err
	}
	if ts.UncoveredCut, err = intsToIDs(g, env.UncoveredCut); err != nil {
		return err
	}
	s := env.Stats
	ts.Stats = core.Stats{
		NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
		TP: duration(s.TPNanos), TC: duration(s.TCNanos),
		TL: duration(s.TLNanos), T: duration(s.TNanos),
		PathILPNonOptimal: s.PathILPNonOptimal,
		CutILPNonOptimal:  s.CutILPNonOptimal,
		ILPSolves:         s.ILPSolves,
		ILPNodes:          s.ILPNodes,
		SolverWall:        duration(s.SolverWallNanos),
	}
	p.a = &Array{g: g}
	p.ts = ts
	p.geometry = false
	return nil
}

// faultJSON is one fault on the wire: the kind name and the dense valve
// IDs it touches. B is present only for control-leak faults (a pointer, so
// valve 0 is representable).
type faultJSON struct {
	Kind string `json:"kind"`
	A    int    `json:"a"`
	B    *int   `json:"b,omitempty"`
}

func faultsToJSON(g *grid.Array, fs []Fault) ([]faultJSON, error) {
	out := make([]faultJSON, 0, len(fs))
	for _, f := range fs {
		ida, err := valveID(g, f.A)
		if err != nil {
			return nil, err
		}
		fj := faultJSON{Kind: f.Kind.String(), A: int(ida)}
		if f.Kind == ControlLeak {
			idb, err := valveID(g, f.B)
			if err != nil {
				return nil, err
			}
			b := int(idb)
			fj.B = &b
		}
		out = append(out, fj)
	}
	return out, nil
}

func faultsFromJSON(g *grid.Array, fjs []faultJSON) ([]Fault, error) {
	kinds := map[string]FaultKind{
		StuckAt0.String():    StuckAt0,
		StuckAt1.String():    StuckAt1,
		ControlLeak.String(): ControlLeak,
	}
	out := make([]Fault, 0, len(fjs))
	for _, fj := range fjs {
		kind, ok := kinds[fj.Kind]
		if !ok {
			return nil, fmt.Errorf("fpva: %w: unknown fault kind %q", ErrWirePayload, fj.Kind)
		}
		ids, err := intsToIDs(g, []int{fj.A})
		if err != nil {
			return nil, err
		}
		f := Fault{Kind: kind, A: edgeOf(g, ids[0])}
		if kind == ControlLeak {
			if fj.B == nil {
				return nil, fmt.Errorf("fpva: %w: control-leak fault missing valve b", ErrWirePayload)
			}
			ids, err := intsToIDs(g, []int{*fj.B})
			if err != nil {
				return nil, err
			}
			f.B = edgeOf(g, ids[0])
		}
		out = append(out, f)
	}
	return out, nil
}

// probeJSON / roundJSON carry the probe plan and the narrowing history.
type probeJSON struct {
	Vector    int `json:"vector"`
	WorstCase int `json:"worstCase"`
	Classes   int `json:"classes"`
}

type roundJSON struct {
	Vector int `json:"vector"`
	Before int `json:"before"`
	After  int `json:"after"`
}

// diagnosisEnvelope is the diagnosis wire format: the array (text format),
// the surviving candidate fault sets, their signature classes, the probe
// plan and the per-round narrowing stats.
type diagnosisEnvelope struct {
	Format     string        `json:"format"`
	Version    int           `json:"version"`
	Array      string        `json:"array"`
	Consistent bool          `json:"consistent"`
	FaultFree  bool          `json:"faultFree"`
	Isolated   bool          `json:"isolated"`
	Ambiguity  [][]faultJSON `json:"ambiguity"`
	Classes    [][]int       `json:"classes,omitempty"`
	Probes     []probeJSON   `json:"probes,omitempty"`
	Rounds     []roundJSON   `json:"rounds,omitempty"`
}

// MarshalJSON renders the diagnosis in the versioned JSON wire format.
func (d *Diagnosis) MarshalJSON() ([]byte, error) {
	env := diagnosisEnvelope{
		Format:     DiagnosisFormat,
		Version:    CodecVersion,
		Array:      grid.Marshal(d.a.g),
		Consistent: d.Consistent,
		FaultFree:  d.FaultFree,
		Isolated:   d.Isolated,
		Ambiguity:  make([][]faultJSON, len(d.Ambiguity)),
		Classes:    d.Classes,
	}
	for i, fs := range d.Ambiguity {
		fjs, err := faultsToJSON(d.a.g, fs)
		if err != nil {
			return nil, err
		}
		env.Ambiguity[i] = fjs
	}
	for _, p := range d.Probes {
		env.Probes = append(env.Probes, probeJSON{Vector: p.Vector, WorstCase: p.WorstCase, Classes: p.Classes})
	}
	for _, r := range d.Rounds {
		env.Rounds = append(env.Rounds, roundJSON{Vector: r.Vector, Before: r.Before, After: r.After})
	}
	return json.Marshal(env)
}

// UnmarshalJSON decodes a diagnosis from the versioned JSON wire format.
func (d *Diagnosis) UnmarshalJSON(data []byte) error {
	var env diagnosisEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("fpva: decode diagnosis: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, DiagnosisFormat, env.Version); err != nil {
		return err
	}
	g, err := grid.Parse(strings.NewReader(env.Array))
	if err != nil {
		return fmt.Errorf("fpva: decode diagnosis: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("fpva: decode diagnosis: %w: %v", ErrWirePayload, err)
	}
	amb := make([][]Fault, len(env.Ambiguity))
	for i, fjs := range env.Ambiguity {
		if amb[i], err = faultsFromJSON(g, fjs); err != nil {
			return err
		}
	}
	for _, class := range env.Classes {
		for _, idx := range class {
			if idx < 0 || idx >= len(amb) {
				return fmt.Errorf("fpva: %w: class member %d outside the %d-candidate ambiguity set",
					ErrWirePayload, idx, len(amb))
			}
		}
	}
	for _, p := range env.Probes {
		if p.Vector < 0 {
			return fmt.Errorf("fpva: %w: probe names negative vector %d", ErrWirePayload, p.Vector)
		}
	}
	for _, r := range env.Rounds {
		if r.Vector < 0 {
			return fmt.Errorf("fpva: %w: round names negative vector %d", ErrWirePayload, r.Vector)
		}
	}
	d.a = &Array{g: g}
	d.Consistent = env.Consistent
	d.FaultFree = env.FaultFree
	d.Isolated = env.Isolated
	d.Ambiguity = amb
	d.Classes = env.Classes
	d.Probes = nil
	for _, p := range env.Probes {
		d.Probes = append(d.Probes, ProbeStep{Vector: p.Vector, WorstCase: p.WorstCase, Classes: p.Classes})
	}
	d.Rounds = nil
	for _, r := range env.Rounds {
		d.Rounds = append(d.Rounds, DiagnoseRound{Vector: r.Vector, Before: r.Before, After: r.After})
	}
	return nil
}

// EncodeDiagnosis writes the diagnosis to w in the versioned JSON wire
// format.
func EncodeDiagnosis(w io.Writer, d *Diagnosis) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeDiagnosis reads a diagnosis in the versioned JSON wire format.
func DecodeDiagnosis(r io.Reader) (*Diagnosis, error) {
	var d Diagnosis
	if err := decodeOne(r, &d, "decode diagnosis"); err != nil {
		return nil, err
	}
	return &d, nil
}

// EncodePlan writes the plan to w in the versioned JSON wire format.
func EncodePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodePlan reads a plan in the versioned JSON wire format.
func DecodePlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := decodeOne(r, &p, "decode plan"); err != nil {
		return nil, err
	}
	return &p, nil
}
