package fpva

// This file is the versioned JSON wire format. Arrays and plans serialize
// to self-describing envelopes ({"format": ..., "version": ...}) so
// generation and simulation can run as separate processes and a stored plan
// keeps working across releases.
//
// Versioning policy (see DESIGN.md): decoders accept exactly the versions
// they know; any incompatible change to the payload bumps the version and
// keeps the old decoder path alive for at least one release. Unknown JSON
// fields are ignored on decode, so additive changes do not need a bump.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/leakage"
	"repro/internal/sim"
)

// duration converts wire nanoseconds back to a time.Duration.
func duration(ns int64) time.Duration { return time.Duration(ns) }

const (
	// ArrayFormat names the array envelope.
	ArrayFormat = "fpva.array"
	// PlanFormat names the plan envelope.
	PlanFormat = "fpva.plan"
	// CodecVersion is the current wire-format version written by the
	// encoders.
	CodecVersion = 1
)

// arrayEnvelope is the array wire format: the canonical text format wrapped
// in a versioned JSON envelope. Reusing the text format keeps one source of
// truth for array geometry and makes the JSON human-auditable.
type arrayEnvelope struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Text    string `json:"text"`
}

// MarshalJSON renders the array in the versioned JSON wire format.
func (a *Array) MarshalJSON() ([]byte, error) {
	return json.Marshal(arrayEnvelope{Format: ArrayFormat, Version: CodecVersion, Text: a.Text()})
}

// UnmarshalJSON decodes an array from the versioned JSON wire format.
func (a *Array) UnmarshalJSON(data []byte) error {
	var env arrayEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, ArrayFormat, env.Version); err != nil {
		return err
	}
	g, err := grid.Parse(strings.NewReader(env.Text))
	if err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("fpva: decode array: %w: %v", ErrWirePayload, err)
	}
	a.g = g
	return nil
}

// EncodeArray writes the array to w in the versioned JSON wire format.
func EncodeArray(w io.Writer, a *Array) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DecodeArray reads an array in the versioned JSON wire format.
func DecodeArray(r io.Reader) (*Array, error) {
	var a Array
	if err := decodeOne(r, &a, "decode array"); err != nil {
		return nil, err
	}
	return &a, nil
}

// decodeOne decodes exactly one JSON value from r; anything but
// whitespace after it is a syntax failure (a concatenated or corrupted
// file must not pass as its first envelope).
func decodeOne(r io.Reader, v any, op string) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return wireErr(op, err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("fpva: %s: %w: trailing data after the envelope", op, ErrWireSyntax)
	}
	return nil
}

// wireErr classifies a decoder error: failures already wrapping one of the
// wire sentinels pass through; anything else (truncated input, JSON type
// mismatches) is a syntax failure.
func wireErr(op string, err error) error {
	if errors.Is(err, ErrWireSyntax) || errors.Is(err, ErrWireFormat) ||
		errors.Is(err, ErrWireVersion) || errors.Is(err, ErrWirePayload) {
		return err
	}
	return fmt.Errorf("fpva: %s: %w: %v", op, ErrWireSyntax, err)
}

func checkEnvelope(format, want string, version int) error {
	if format != want {
		return fmt.Errorf("fpva: %w: %q, want %q", ErrWireFormat, format, want)
	}
	if version != CodecVersion {
		return fmt.Errorf("fpva: %s: %w: version %d (decoder speaks version %d)",
			want, ErrWireVersion, version, CodecVersion)
	}
	return nil
}

// vectorJSON is one test vector on the wire: its name, family, and the
// ascending dense IDs of the valves commanded open. Dense IDs are stable
// for a given array dimension, and the enclosing envelope always carries
// the array, so the pairing is unambiguous.
type vectorJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Open []int  `json:"open"`
}

// statsJSON carries generation statistics; durations are nanoseconds.
type statsJSON struct {
	NV                int   `json:"nv"`
	NP                int   `json:"np"`
	NC                int   `json:"nc"`
	NL                int   `json:"nl"`
	N                 int   `json:"n"`
	TPNanos           int64 `json:"tp_ns"`
	TCNanos           int64 `json:"tc_ns"`
	TLNanos           int64 `json:"tl_ns"`
	TNanos            int64 `json:"t_ns"`
	PathILPNonOptimal int   `json:"path_ilp_non_optimal,omitempty"`
	CutILPNonOptimal  int   `json:"cut_ilp_non_optimal,omitempty"`
	ILPSolves         int   `json:"ilp_solves,omitempty"`
	ILPNodes          int   `json:"ilp_nodes,omitempty"`
	SolverWallNanos   int64 `json:"solver_wall_ns,omitempty"`
}

// planEnvelope is the plan wire format: the array (text format), the three
// vector families, leakage candidate pairs, coverage gaps and statistics.
// Path/cut geometry is deliberately not serialized — vectors are the
// contract; geometry is a generation-time artifact used only for figures.
type planEnvelope struct {
	Format        string       `json:"format"`
	Version       int          `json:"version"`
	Array         string       `json:"array"`
	PathVectors   []vectorJSON `json:"pathVectors"`
	CutVectors    []vectorJSON `json:"cutVectors"`
	LeakVectors   []vectorJSON `json:"leakVectors"`
	LeakPairs     [][2]int     `json:"leakPairs,omitempty"`
	UncoveredPath []int        `json:"uncoveredPath,omitempty"`
	UncoveredCut  []int        `json:"uncoveredCut,omitempty"`
	Stats         statsJSON    `json:"stats"`
}

func vectorsToJSON(vecs []*sim.Vector) []vectorJSON {
	out := make([]vectorJSON, len(vecs))
	for i, v := range vecs {
		vj := vectorJSON{Name: v.Name, Kind: v.Kind.String(), Open: []int{}}
		for _, id := range v.OpenValves() {
			vj.Open = append(vj.Open, int(id))
		}
		out[i] = vj
	}
	return out
}

func vectorsFromJSON(g *grid.Array, vjs []vectorJSON) ([]*sim.Vector, error) {
	kinds := map[string]sim.VectorKind{
		sim.FlowPath.String(): sim.FlowPath,
		sim.CutSet.String():   sim.CutSet,
		sim.Leakage.String():  sim.Leakage,
		"custom":              sim.Custom,
	}
	out := make([]*sim.Vector, len(vjs))
	for i, vj := range vjs {
		kind, ok := kinds[vj.Kind]
		if !ok {
			return nil, fmt.Errorf("fpva: %w: vector %q has unknown kind %q",
				ErrWirePayload, vj.Name, vj.Kind)
		}
		v := sim.NewVector(g, kind, vj.Name)
		for _, id := range vj.Open {
			if id < 0 || id >= g.NumValves() {
				return nil, fmt.Errorf("fpva: %w: vector %q opens valve %d outside [0,%d)",
					ErrWirePayload, vj.Name, id, g.NumValves())
			}
			v.SetOpen(grid.ValveID(id), true)
		}
		out[i] = v
	}
	return out, nil
}

func idsToInts(ids []grid.ValveID) []int {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func intsToIDs(g *grid.Array, ints []int) ([]grid.ValveID, error) {
	if len(ints) == 0 {
		return nil, nil
	}
	out := make([]grid.ValveID, len(ints))
	for i, id := range ints {
		if id < 0 || id >= g.NumValves() {
			return nil, fmt.Errorf("fpva: %w: valve id %d outside [0,%d)",
				ErrWirePayload, id, g.NumValves())
		}
		out[i] = grid.ValveID(id)
	}
	return out, nil
}

// MarshalJSON renders the plan in the versioned JSON wire format.
func (p *Plan) MarshalJSON() ([]byte, error) {
	s := p.ts.Stats
	env := planEnvelope{
		Format:        PlanFormat,
		Version:       CodecVersion,
		Array:         grid.Marshal(p.a.g),
		PathVectors:   vectorsToJSON(p.ts.PathVectors),
		CutVectors:    vectorsToJSON(p.ts.CutVectors),
		LeakVectors:   vectorsToJSON(p.ts.LeakVectors),
		UncoveredPath: idsToInts(p.ts.UncoveredPath),
		UncoveredCut:  idsToInts(p.ts.UncoveredCut),
		Stats: statsJSON{
			NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
			TPNanos: s.TP.Nanoseconds(), TCNanos: s.TC.Nanoseconds(),
			TLNanos: s.TL.Nanoseconds(), TNanos: s.T.Nanoseconds(),
			PathILPNonOptimal: s.PathILPNonOptimal,
			CutILPNonOptimal:  s.CutILPNonOptimal,
			ILPSolves:         s.ILPSolves,
			ILPNodes:          s.ILPNodes,
			SolverWallNanos:   s.SolverWall.Nanoseconds(),
		},
	}
	for _, lp := range p.ts.LeakPairs {
		env.LeakPairs = append(env.LeakPairs, [2]int{int(lp[0]), int(lp[1])})
	}
	return json.Marshal(env)
}

// UnmarshalJSON decodes a plan from the versioned JSON wire format. The
// decoded plan supports campaigns, verification and re-encoding; it does
// not carry path/cut geometry, so rendering methods report an error.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var env planEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWireSyntax, err)
	}
	if err := checkEnvelope(env.Format, PlanFormat, env.Version); err != nil {
		return err
	}
	g, err := grid.Parse(strings.NewReader(env.Array))
	if err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWirePayload, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("fpva: decode plan: %w: %v", ErrWirePayload, err)
	}
	ts := &core.TestSet{Array: g}
	if ts.PathVectors, err = vectorsFromJSON(g, env.PathVectors); err != nil {
		return err
	}
	if ts.CutVectors, err = vectorsFromJSON(g, env.CutVectors); err != nil {
		return err
	}
	if ts.LeakVectors, err = vectorsFromJSON(g, env.LeakVectors); err != nil {
		return err
	}
	for _, lp := range env.LeakPairs {
		ids, err := intsToIDs(g, []int{lp[0], lp[1]})
		if err != nil {
			return err
		}
		ts.LeakPairs = append(ts.LeakPairs, leakage.Pair{ids[0], ids[1]})
	}
	if ts.UncoveredPath, err = intsToIDs(g, env.UncoveredPath); err != nil {
		return err
	}
	if ts.UncoveredCut, err = intsToIDs(g, env.UncoveredCut); err != nil {
		return err
	}
	s := env.Stats
	ts.Stats = core.Stats{
		NV: s.NV, NP: s.NP, NC: s.NC, NL: s.NL, N: s.N,
		TP: duration(s.TPNanos), TC: duration(s.TCNanos),
		TL: duration(s.TLNanos), T: duration(s.TNanos),
		PathILPNonOptimal: s.PathILPNonOptimal,
		CutILPNonOptimal:  s.CutILPNonOptimal,
		ILPSolves:         s.ILPSolves,
		ILPNodes:          s.ILPNodes,
		SolverWall:        duration(s.SolverWallNanos),
	}
	p.a = &Array{g: g}
	p.ts = ts
	p.geometry = false
	return nil
}

// EncodePlan writes the plan to w in the versioned JSON wire format.
func EncodePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodePlan reads a plan in the versioned JSON wire format.
func DecodePlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := decodeOne(r, &p, "decode plan"); err != nil {
		return nil, err
	}
	return &p, nil
}
