package fpva

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"
)

// JobKind names the pipeline stage a Job runs.
type JobKind int

const (
	// JobGenerate is a test-generation job (SubmitGenerate).
	JobGenerate JobKind = iota
	// JobCampaign is a fault-injection campaign job (SubmitCampaign).
	JobCampaign
	// JobVerify is an exhaustive 1-/2-fault verification job (SubmitVerify).
	JobVerify
	// JobDiagnose is an adaptive fault-diagnosis job (SubmitDiagnose).
	JobDiagnose
)

// jobKinds lists every kind in declaration order, for deterministic
// per-kind reporting.
var jobKinds = []JobKind{JobGenerate, JobCampaign, JobVerify, JobDiagnose}

func (k JobKind) String() string {
	switch k {
	case JobGenerate:
		return "generate"
	case JobCampaign:
		return "campaign"
	case JobVerify:
		return "verify"
	case JobDiagnose:
		return "diagnose"
	}
	return fmt.Sprintf("JobKind(%d)", int(k))
}

// JobState is one node of the job state machine:
//
//	pending -> running -> done | failed | canceled
//
// Pending jobs are queued for a worker slot (or coalesced onto an in-flight
// identical solve); the three right-hand states are terminal.
type JobState int

const (
	// JobPending means the job is queued or waiting on a shared solve.
	JobPending JobState = iota
	// JobRunning means the job holds a worker slot (or its shared solve is
	// executing).
	JobRunning
	// JobDone means the job finished and its result is available.
	JobDone
	// JobFailed means the job finished with an error other than its own
	// cancellation.
	JobFailed
	// JobCanceled means the job's context was canceled before it finished.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether the state is done, failed or canceled.
func (s JobState) Terminal() bool { return s >= JobDone }

// VerifyResult is the outcome of a JobVerify: the single faults and fault
// pairs the plan's vector set failed to detect (both empty on a fully
// covered array).
type VerifyResult struct {
	SingleEscapes []Fault
	DoubleEscapes [][2]Fault
}

// Job is a handle to one submitted unit of work. Handles are safe for
// concurrent use: any number of goroutines may Wait, Stream, poll State or
// Cancel the same job.
type Job struct {
	id   string
	kind JobKind
	svc  *Service

	// ctx governs the job; cancel is invoked by Cancel, by service Close,
	// and when the submitting context is canceled.
	ctx    context.Context
	cancel context.CancelFunc

	// progress is the submitter's callback (from WithProgress /
	// WithCampaignProgress), invoked synchronously after each event is
	// recorded.
	progress Progress

	// inPlan is the input plan of campaign/verify jobs, available from the
	// moment of submission.
	inPlan *Plan

	mu       sync.Mutex
	state    JobState
	doneAt   time.Time // terminal-transition instant, for WithJobTTL expiry
	cacheHit bool
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	err      error
	plan     *Plan  // generate result
	wire     []byte // v1 wire encoding of plan, when the service had one
	camp     CampaignResult
	verify   VerifyResult
	diag     *Diagnosis
	done     chan struct{}
}

func newJob(svc *Service, id string, kind JobKind, ctx context.Context, progress Progress) *Job {
	var jctx context.Context
	var cancel context.CancelFunc
	if svc.jobTimeout > 0 {
		// WithJobTimeout: the deadline covers the job's whole lifetime,
		// queue wait included. finish always calls cancel, releasing the
		// timer.
		jctx, cancel = context.WithTimeout(ctx, svc.jobTimeout)
	} else {
		jctx, cancel = context.WithCancel(ctx)
	}
	return &Job{
		id: id, kind: kind, svc: svc,
		ctx: jctx, cancel: cancel,
		progress: progress,
		notify:   make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// ID returns the service-unique job identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the job's kind.
func (j *Job) Kind() JobKind { return j.kind }

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CacheHit reports whether a generate job was served from the plan cache,
// or a diagnose job reused a cached signature table (meaningful once the
// job is done).
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Err returns the job's terminal error (nil while running or when done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Cancel requests cancellation. It is a no-op on a terminal job; otherwise
// the job moves to JobCanceled as soon as its workers drain.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes (returning its terminal error, nil
// for success) or ctx is canceled (returning ctx.Err()).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Events returns a snapshot of the progress events observed so far, in
// emission order.
func (j *Job) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// Stream returns a channel that replays every event from the start of the
// job and then follows live ones; it is closed once the job is terminal
// and all events have been delivered. Cancel ctx to stop early — the
// stream goroutine blocks on an unread channel otherwise.
func (j *Job) Stream(ctx context.Context) <-chan Event {
	out := make(chan Event)
	go func() {
		defer close(out)
		next := 0
		for {
			j.mu.Lock()
			events := j.events[next:]
			notify := j.notify
			terminal := j.state.Terminal()
			j.mu.Unlock()
			for _, e := range events {
				select {
				case out <- e:
				case <-ctx.Done():
					return
				}
			}
			next += len(events)
			if terminal {
				return
			}
			select {
			case <-notify:
			case <-j.done:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Plan returns the job's plan: the generated plan of a finished
// JobGenerate, or the input plan of a campaign/verify job (available
// immediately). It fails with ErrJobRunning on an unfinished generate job
// and with the job's error on a failed one.
func (j *Job) Plan() (*Plan, error) {
	if j.kind != JobGenerate {
		return j.inPlan, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return nil, fmt.Errorf("fpva: job %s: %w", j.id, ErrJobRunning)
	case j.err != nil:
		return nil, j.err
	}
	return j.plan, nil
}

// PlanBytes returns the job's plan in the v1 wire format. For generate
// jobs on a caching service these are the exact bytes encoded once when
// the solve finished (or retrieved from the cache), so serving them — as
// fpvad's /plan handler does — performs no re-encoding; they are
// bit-identical to EncodePlan of the same plan. The returned slice is
// shared and must not be modified. When no cached encoding exists
// (caching disabled, or a campaign/verify input plan) the plan is encoded
// on demand.
func (j *Job) PlanBytes() ([]byte, error) {
	plan, err := j.Plan()
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	wire := j.wire
	j.mu.Unlock()
	if wire != nil {
		return wire, nil
	}
	var buf bytes.Buffer
	if err := EncodePlan(&buf, plan); err != nil {
		return nil, err
	}
	// Memoize the fallback encoding: the plan is immutable, so later
	// fetches (fpvad /plan, /result) reuse these bytes too.
	j.mu.Lock()
	if j.wire == nil {
		j.wire = buf.Bytes()
	}
	wire = j.wire
	j.mu.Unlock()
	return wire, nil
}

// Campaign returns the result of a finished JobCampaign.
func (j *Job) Campaign() (CampaignResult, error) {
	if j.kind != JobCampaign {
		return CampaignResult{}, fmt.Errorf("fpva: job %s is a %v job: %w", j.id, j.kind, ErrWrongJobKind)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return CampaignResult{}, fmt.Errorf("fpva: job %s: %w", j.id, ErrJobRunning)
	case j.err != nil:
		return j.camp, j.err
	}
	return j.camp, nil
}

// Verify returns the result of a finished JobVerify.
func (j *Job) Verify() (VerifyResult, error) {
	if j.kind != JobVerify {
		return VerifyResult{}, fmt.Errorf("fpva: job %s is a %v job: %w", j.id, j.kind, ErrWrongJobKind)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return VerifyResult{}, fmt.Errorf("fpva: job %s: %w", j.id, ErrJobRunning)
	case j.err != nil:
		return VerifyResult{}, j.err
	}
	return j.verify, nil
}

// Diagnosis returns the result of a finished JobDiagnose.
func (j *Job) Diagnosis() (*Diagnosis, error) {
	if j.kind != JobDiagnose {
		return nil, fmt.Errorf("fpva: job %s is a %v job: %w", j.id, j.kind, ErrWrongJobKind)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return nil, fmt.Errorf("fpva: job %s: %w", j.id, ErrJobRunning)
	case j.err != nil:
		return nil, j.err
	}
	return j.diag, nil
}

// emit records one progress event, wakes streamers, and invokes the
// submitter's callback synchronously (matching the direct-call API: the
// callback has returned for every event before the job turns terminal).
func (j *Job) emit(e Event) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	if j.progress != nil {
		j.progress(e)
	}
}

// setRunning moves a pending job to JobRunning.
func (j *Job) setRunning() {
	j.mu.Lock()
	if j.state == JobPending {
		j.state = JobRunning
	}
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = err
	j.doneAt = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context watcher; no-op if already canceled
	close(j.done)
	j.svc.noteTerminal(j.kind, state)
}

// finishPlan completes a generate job successfully. wire, when non-nil,
// is the plan's v1 encoding (from the solve or the cache), retained so
// PlanBytes can serve it without re-encoding.
func (j *Job) finishPlan(p *Plan, wire []byte) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.plan = p
	j.wire = wire
	j.mu.Unlock()
	j.finish(JobDone, nil)
}

// expiredBefore reports whether the job turned terminal before the cutoff
// (the WithJobTTL expiry test).
func (j *Job) expiredBefore(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && j.doneAt.Before(cutoff)
}

// classifyTerminal maps a worker failure to the terminal state: if the
// job's own context was canceled the failure is JobCanceled, everything
// else is JobFailed.
func (j *Job) classifyTerminal() JobState {
	if j.ctx.Err() != nil {
		return JobCanceled
	}
	return JobFailed
}
