package fpva

// Adaptive fault diagnosis: the public face of internal/diagnose. A
// Diagnosis answers "given the sink readings a technician observed, which
// defects are still possible, and what should be probed next"; a
// DiagnoseSession runs the same question as a closed loop, re-planning
// after every observation.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/diagnose"
	"repro/internal/grid"
	"repro/internal/sim"
)

// ProbePlanner selects how diagnosis picks the next probe vector.
type ProbePlanner int

const (
	// ProbePlannerGreedy probes the vector that most evenly splits the
	// surviving ambiguity set (smallest largest block), tie-broken by lowest
	// vector index. Fast, and within one probe of optimal in practice.
	ProbePlannerGreedy ProbePlanner = iota
	// ProbePlannerILP solves a minimal probe set-cover over the surviving
	// set with the branch-and-bound core, warm-starting across rounds. It
	// falls back to the greedy rule — deterministically — whenever the set
	// is too large to model or a solve is not proven optimal.
	ProbePlannerILP
)

func (p ProbePlanner) String() string {
	if p == ProbePlannerILP {
		return "ilp"
	}
	return "greedy"
}

// ParseProbePlanner maps the command-line planner names ("greedy", "ilp")
// to a ProbePlanner.
func ParseProbePlanner(s string) (ProbePlanner, error) {
	switch s {
	case "greedy":
		return ProbePlannerGreedy, nil
	case "ilp":
		return ProbePlannerILP, nil
	}
	return 0, fmt.Errorf("fpva: unknown probe planner %q", s)
}

// Observation is one applied test vector together with the pressure
// readings seen at the sinks (in port attachment order, like
// Simulator.Readings). Vector indexes the plan's Vectors() order.
type Observation struct {
	Vector   int
	Readings []bool
}

// DiagnoseRound records how one observation narrowed the ambiguity set.
type DiagnoseRound struct {
	Vector        int
	Before, After int
}

// ProbeStep is one entry of a suggested probe sequence: after observing
// the sequence up to and including Vector, at most WorstCase candidates (in
// Classes signature groups) remain possible, whatever the outcomes.
type ProbeStep struct {
	Vector    int
	WorstCase int
	Classes   int
}

// Diagnosis is the outcome of Plan.Diagnose: the surviving candidate fault
// sets, their indistinguishability structure, and the suggested probes to
// narrow further. Values built by Diagnose or DecodeDiagnosis round-trip
// through the versioned JSON wire format.
type Diagnosis struct {
	a *Array

	// Consistent is false when the observations rule out every candidate —
	// the chip's defect is outside the modeled universe (or the readings
	// are wrong).
	Consistent bool
	// FaultFree reports whether the fault-free candidate survives: the
	// observations so far are consistent with a healthy chip.
	FaultFree bool
	// Isolated reports whether the surviving candidates are down to one
	// signature class — no further probe can distinguish them.
	Isolated bool
	// Ambiguity lists the surviving candidate fault sets in deterministic
	// candidate order. An empty entry is the fault-free candidate.
	Ambiguity [][]Fault
	// Classes partitions Ambiguity indices into signature-equality classes:
	// candidates in one class produce identical readings under every plan
	// vector and can never be told apart.
	Classes [][]int
	// Probes is the suggested probe sequence for the current ambiguity.
	Probes []ProbeStep
	// Rounds records the narrowing effect of each observation, in order.
	Rounds []DiagnoseRound
}

// Array returns the array the diagnosis was computed for.
func (d *Diagnosis) Array() *Array { return d.a }

// DiagnoseOption customizes Plan.Diagnose and NewDiagnoseSession.
type DiagnoseOption func(*diagnoseConfig)

type diagnoseConfig struct {
	workers    int
	engine     CampaignEngine
	planner    ProbePlanner
	budget     int
	maxDoubles int
	noLeaks    bool
	progress   Progress
}

// WithDiagnoseWorkers shards the signature-table build across n goroutines
// (default: all CPUs). The table — and everything computed from it — is
// bit-identical for any worker count.
func WithDiagnoseWorkers(n int) DiagnoseOption { return func(c *diagnoseConfig) { c.workers = n } }

// WithDiagnoseEngine selects the signature-build engine (default
// CampaignEngineAuto). Results are bit-identical across engines; the choice
// only affects speed.
func WithDiagnoseEngine(e CampaignEngine) DiagnoseOption {
	return func(c *diagnoseConfig) { c.engine = e }
}

// WithProbePlanner selects the probe-planning strategy (default greedy).
func WithProbePlanner(p ProbePlanner) DiagnoseOption {
	return func(c *diagnoseConfig) { c.planner = p }
}

// WithProbeBudget truncates the suggested probe sequence of a Diagnosis to
// at most n entries (<= 0, the default, plans until no probe helps).
func WithProbeBudget(n int) DiagnoseOption { return func(c *diagnoseConfig) { c.budget = n } }

// WithDoubleFaultCandidates adds up to n stuck-at double-fault candidates
// to the universe (default 0: singles and leaks only). Doubles grow the
// signature table linearly but the pair universe quadratically; the cap
// keeps compilation bounded.
func WithDoubleFaultCandidates(n int) DiagnoseOption {
	return func(c *diagnoseConfig) { c.maxDoubles = n }
}

// WithoutLeakCandidates drops the control-leakage pairs from the candidate
// universe (stuck-at faults only).
func WithoutLeakCandidates() DiagnoseOption { return func(c *diagnoseConfig) { c.noLeaks = true } }

// WithDiagnoseProgress registers a callback receiving one DiagnoseTick
// event per observation round, carrying the surviving ambiguity count.
func WithDiagnoseProgress(p Progress) DiagnoseOption {
	return func(c *diagnoseConfig) { c.progress = p }
}

// internalOptions maps the public diagnosis options onto the internal
// engine configuration, rejecting unknown engine selections.
func (c diagnoseConfig) internalOptions(p *Plan) (diagnose.Options, error) {
	opt := diagnose.Options{Workers: c.workers, MaxDoubles: c.maxDoubles}
	switch c.engine {
	case CampaignEngineAuto:
		opt.Engine = sim.EngineAuto
	case CampaignEngineBitParallel:
		opt.Engine = sim.EngineBitParallel
	case CampaignEngineScalar:
		opt.Engine = sim.EngineScalar
	default:
		return diagnose.Options{}, fmt.Errorf("fpva: unknown campaign engine %d", int(c.engine))
	}
	if !c.noLeaks {
		for _, lp := range p.ts.LeakPairs {
			opt.LeakPairs = append(opt.LeakPairs, [2]grid.ValveID{lp[0], lp[1]})
		}
	}
	return opt, nil
}

// internalPlanner maps the public planner selection onto the internal one.
func (c diagnoseConfig) internalPlanner() (diagnose.Planner, error) {
	switch c.planner {
	case ProbePlannerGreedy:
		return diagnose.PlannerGreedy, nil
	case ProbePlannerILP:
		return diagnose.PlannerILP, nil
	}
	return 0, fmt.Errorf("fpva: unknown probe planner %d", int(c.planner))
}

// sigMemoEntry is the plan's one-slot signature memo: the last table
// compiled, keyed by the options that shape the candidate universe
// (workers and engine never change the table).
type sigMemoEntry struct {
	noLeaks    bool
	maxDoubles int
	sg         *diagnose.Signatures
}

// compileSignatures builds the signature table of the plan's full vector
// set under cfg. The plan memoizes the last table it compiled, so a
// closed-loop study opening one session per hidden fault — fpvasim
// -diagnose — pays for the compile once.
func (p *Plan) compileSignatures(ctx context.Context, cfg diagnoseConfig) (*diagnose.Signatures, error) {
	// Validate the options before the memo lookup: a cache hit must not
	// let a bad engine selection through.
	opt, err := cfg.internalOptions(p)
	if err != nil {
		return nil, err
	}
	p.sigMu.Lock()
	if m := p.sigMemo; m != nil && m.noLeaks == cfg.noLeaks && m.maxDoubles == cfg.maxDoubles {
		sg := m.sg
		p.sigMu.Unlock()
		return sg, nil
	}
	p.sigMu.Unlock()
	cv, err := p.ts.Compile()
	if err != nil {
		return nil, err
	}
	sg, err := diagnose.Compile(ctx, cv, opt)
	if err != nil {
		return nil, err
	}
	p.sigMu.Lock()
	p.sigMemo = &sigMemoEntry{noLeaks: cfg.noLeaks, maxDoubles: cfg.maxDoubles, sg: sg}
	p.sigMu.Unlock()
	return sg, nil
}

// runDiagnosis replays the observations into a fresh session and snapshots
// the result. It is shared by Plan.Diagnose and the service job runner.
func runDiagnosis(ctx context.Context, p *Plan, sg *diagnose.Signatures, cfg diagnoseConfig, obs []Observation) (*Diagnosis, error) {
	planner, err := cfg.internalPlanner()
	if err != nil {
		return nil, err
	}
	sess := diagnose.NewSession(sg, planner)
	for i, o := range obs {
		if err := sess.Observe(o.Vector, o.Readings); err != nil {
			return nil, err
		}
		if cfg.progress != nil {
			cfg.progress(Event{Kind: DiagnoseTick, Round: i + 1, Ambiguity: sess.AliveCount()})
		}
	}
	steps, err := sess.PlanProbes(ctx, cfg.budget)
	if err != nil {
		return nil, err
	}
	return newDiagnosis(p, sg, sess, steps), nil
}

// newDiagnosis converts the internal session state into the public result.
func newDiagnosis(p *Plan, sg *diagnose.Signatures, sess *diagnose.Session, steps []diagnose.ProbeStep) *Diagnosis {
	alive := sess.AliveSet()
	members := diagnose.Members(alive)
	d := &Diagnosis{
		a:          p.a,
		Consistent: len(members) > 0,
		Isolated:   sg.Isolated(alive),
		Ambiguity:  make([][]Fault, len(members)),
	}
	pos := make(map[int]int, len(members))
	for i, c := range members {
		pos[c] = i
		if c == 0 {
			d.FaultFree = true
		}
		fs := sg.Candidate(c)
		pub := make([]Fault, len(fs))
		for k, f := range fs {
			pub[k] = p.a.fromSimFault(f)
		}
		d.Ambiguity[i] = pub
	}
	for _, class := range sg.Classes(alive) {
		idx := make([]int, len(class))
		for k, c := range class {
			idx[k] = pos[c]
		}
		d.Classes = append(d.Classes, idx)
	}
	for _, st := range steps {
		d.Probes = append(d.Probes, ProbeStep{Vector: st.Vector, WorstCase: st.WorstCase, Classes: st.Classes})
	}
	for _, r := range sess.Rounds() {
		d.Rounds = append(d.Rounds, DiagnoseRound{Vector: r.Vector, Before: r.Before, After: r.After})
	}
	return d
}

// Diagnose localizes a fault from observed sink readings: it compiles the
// expected response of every candidate defect (fault-free, every stuck-at
// single fault, the array's control-leakage pairs, optionally bounded
// double faults) under every plan vector, narrows the candidate universe by
// the observations, and plans the probe sequence that distinguishes the
// survivors fastest. obs may be empty — the result then describes the whole
// universe and a from-scratch probe plan.
//
// The result is deterministic: it depends only on the plan, the options and
// the observations — never on worker count or engine. Cancelling ctx aborts
// the signature build promptly and returns an error wrapping ctx.Err().
//
// Diagnose reuses the plan's memoized signature table when the candidate
// universe is unchanged; interactive probing should use
// NewDiagnoseSession, and one-shot calls across many plans should go
// through Service.SubmitDiagnose, which keeps an LRU of compiled tables.
func (p *Plan) Diagnose(ctx context.Context, obs []Observation, opts ...DiagnoseOption) (*Diagnosis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg diagnoseConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sg, err := p.compileSignatures(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return runDiagnosis(ctx, p, sg, cfg, obs)
}

// DiagnoseSession is an interactive diagnosis: feed observations as the
// technician takes them, ask which vector to probe next, stop when Done.
// Not safe for concurrent use.
type DiagnoseSession struct {
	p    *Plan
	cfg  diagnoseConfig
	sg   *diagnose.Signatures
	sess *diagnose.Session
}

// NewDiagnoseSession compiles the signature table (the expensive part, once
// per session) and starts a session with every candidate alive.
func (p *Plan) NewDiagnoseSession(ctx context.Context, opts ...DiagnoseOption) (*DiagnoseSession, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg diagnoseConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	planner, err := cfg.internalPlanner()
	if err != nil {
		return nil, err
	}
	sg, err := p.compileSignatures(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &DiagnoseSession{p: p, cfg: cfg, sg: sg, sess: diagnose.NewSession(sg, planner)}, nil
}

// Observe narrows the ambiguity set by one observation.
func (s *DiagnoseSession) Observe(o Observation) error {
	if err := s.sess.Observe(o.Vector, o.Readings); err != nil {
		return err
	}
	if s.cfg.progress != nil {
		s.cfg.progress(Event{Kind: DiagnoseTick, Round: len(s.sess.Rounds()), Ambiguity: s.sess.AliveCount()})
	}
	return nil
}

// NextProbe returns the vector to probe next, or -1 when no unprobed
// vector can shrink the ambiguity set further.
func (s *DiagnoseSession) NextProbe(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.sess.NextProbe(ctx)
}

// Done reports whether probing is over: the surviving candidates are down
// to one signature class (or the set is empty).
func (s *DiagnoseSession) Done() bool { return s.sess.Done() }

// AmbiguityCount returns the size of the surviving ambiguity set.
func (s *DiagnoseSession) AmbiguityCount() int { return s.sess.AliveCount() }

// Diagnosis snapshots the session state as a Diagnosis, including a
// suggested probe sequence for whatever ambiguity remains.
func (s *DiagnoseSession) Diagnosis(ctx context.Context) (*Diagnosis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	steps, err := s.sess.PlanProbes(ctx, s.cfg.budget)
	if err != nil {
		return nil, err
	}
	return newDiagnosis(s.p, s.sg, s.sess, steps), nil
}

// sigKey derives the cache key of a compiled signature table: the SHA-256
// of the plan's v1 wire encoding plus the fingerprint of every option that
// can change the table. Worker counts and engines are deliberately excluded
// — tables are bit-identical across both, so they must share an entry.
func sigKey(p *Plan, cfg diagnoseConfig) (string, error) {
	h := sha256.New()
	if err := EncodePlan(h, p); err != nil {
		return "", err
	}
	fmt.Fprintf(h, "\x00noLeaks=%t doubles=%d v=%d", cfg.noLeaks, cfg.maxDoubles, CodecVersion)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// defaultSigCacheEntries bounds the service's signature-table cache. A
// table is a few hundred KB for the Table I arrays; entries, not bytes, are
// the natural unit because the dominant cost is the compile, not the RAM.
const defaultSigCacheEntries = 8

// sigCacheEntry is one cached signature table.
type sigCacheEntry struct {
	key string
	sg  *diagnose.Signatures
}

// sigCache is an entry-capped LRU of compiled signature tables. It is not
// goroutine-safe; the owning Service serializes access under its mutex.
type sigCache struct {
	capEntries int
	ll         *list.List // front = most recently used; values are *sigCacheEntry
	index      map[string]*list.Element
}

func newSigCache(capEntries int) *sigCache {
	return &sigCache{capEntries: capEntries, ll: list.New(), index: make(map[string]*list.Element)}
}

func (c *sigCache) get(key string) (*diagnose.Signatures, bool) {
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*sigCacheEntry).sg, true
}

func (c *sigCache) put(key string, sg *diagnose.Signatures) {
	if el, ok := c.index[key]; ok {
		el.Value.(*sigCacheEntry).sg = sg
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(&sigCacheEntry{key: key, sg: sg})
	for c.ll.Len() > c.capEntries {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.ll.Remove(back)
		delete(c.index, back.Value.(*sigCacheEntry).key)
	}
}
