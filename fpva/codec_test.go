package fpva_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/fpva"
)

// TestArrayJSONRoundTrip: text-format array -> JSON -> array is identical,
// on the most irregular benchmark layout (channels, obstacles, ports).
func TestArrayJSONRoundTrip(t *testing.T) {
	for _, name := range fpva.BenchmarkNames() {
		a, err := fpva.BenchmarkArray(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fpva.EncodeArray(&buf, a); err != nil {
			t.Fatal(err)
		}
		b, err := fpva.DecodeArray(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if a.Text() != b.Text() {
			t.Errorf("%s: array JSON round trip changed the layout", name)
		}
	}
}

// TestPlanJSONRoundTrip: a generated Plan re-loaded from JSON produces
// bit-identical campaign results for the same seed, including escapes, and
// survives a second encode.
func TestPlanJSONRoundTrip(t *testing.T) {
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fpva.EncodePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	loaded, err := fpva.DecodePlan(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Stats(), loaded.Stats()) {
		t.Errorf("stats changed over the wire:\n%+v\nvs\n%+v", plan.Stats(), loaded.Stats())
	}
	if !reflect.DeepEqual(plan.Vectors(), loaded.Vectors()) {
		t.Error("vectors changed over the wire")
	}
	campaign := func(p *fpva.Plan) fpva.CampaignResult {
		res, err := p.Campaign(context.Background(),
			fpva.WithTrials(2000), fpva.WithNumFaults(4), fpva.WithSeed(2017),
			fpva.WithLeakFaults())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := campaign(loaded), campaign(plan); !reflect.DeepEqual(got, want) {
		t.Errorf("campaign diverges after reload:\n%+v\nvs\n%+v", got, want)
	}
	// Re-encoding the decoded plan is stable.
	var buf2 bytes.Buffer
	if err := fpva.EncodePlan(&buf2, loaded); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("re-encoding a decoded plan changed the bytes")
	}
}

// TestBaselinePlanRoundTrip covers the escape-recording path: baseline sets
// miss multi-fault combinations, so Escapes must survive the wire too.
func TestBaselinePlanRoundTrip(t *testing.T) {
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.BaselinePlan(a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fpva.EncodePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	loaded, err := fpva.DecodePlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	campaign := func(p *fpva.Plan) fpva.CampaignResult {
		res, err := p.Campaign(context.Background(),
			fpva.WithTrials(3000), fpva.WithNumFaults(5), fpva.WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := campaign(loaded), campaign(plan); !reflect.DeepEqual(got, want) {
		t.Errorf("baseline campaign diverges after reload:\n%+v\nvs\n%+v", got, want)
	}
}

// TestGoldenArray decodes the committed wire-format file: the format on
// disk must keep decoding exactly as it does today.
func TestGoldenArray(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "array_v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := fpva.DecodeArray(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text() != want.Text() {
		t.Errorf("golden array decodes to:\n%s\nwant:\n%s", a.Text(), want.Text())
	}
}

// TestGoldenPlan decodes the committed plan file and replays a campaign;
// the detection count is part of the format contract (same vectors + same
// seed must keep producing the same result forever).
func TestGoldenPlan(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "plan_v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := fpva.DecodePlan(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Campaign(context.Background(),
		fpva.WithTrials(1000), fpva.WithNumFaults(3), fpva.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1000 || res.Detected != goldenPlanDetected {
		t.Errorf("golden campaign: %d/%d detected, want %d/1000",
			res.Detected, res.Trials, goldenPlanDetected)
	}
}

// TestCodecVersionGate: unknown versions and formats are rejected with a
// clear error instead of silently misreading the payload.
func TestCodecVersionGate(t *testing.T) {
	if _, err := fpva.DecodeArray(strings.NewReader(
		`{"format":"fpva.array","version":99,"text":""}`)); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := fpva.DecodeArray(strings.NewReader(
		`{"format":"something.else","version":1,"text":""}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := fpva.DecodePlan(strings.NewReader(
		`{"format":"fpva.array","version":1}`)); err == nil {
		t.Error("array envelope accepted as plan")
	}
	if _, err := fpva.DecodePlan(strings.NewReader(
		`{"format":"fpva.plan","version":1,"array":"fpva 2 2\n","pathVectors":[{"name":"p","kind":"flow-path","open":[999]}]}`)); err == nil {
		t.Error("out-of-range valve id accepted")
	}
}

// goldenPlanDetected is the recorded outcome of the golden plan's campaign
// (1000 trials, 3 faults, seed 42), part of the wire-format contract.
const goldenPlanDetected = 1000

// TestCodecErrorClassification pins the sentinel-error contract: every
// decode failure wraps exactly one of ErrWireSyntax / ErrWireFormat /
// ErrWireVersion / ErrWirePayload, and none of these inputs panics.
func TestCodecErrorClassification(t *testing.T) {
	const planHead = `{"format":"fpva.plan","version":1,"array":"fpva 2 2\n"`
	a, err := fpva.NewArray(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var validArr bytes.Buffer
	if err := fpva.EncodeArray(&validArr, a); err != nil {
		t.Fatal(err)
	}
	basePlan, err := fpva.BaselinePlan(a)
	if err != nil {
		t.Fatal(err)
	}
	var validPlan bytes.Buffer
	if err := fpva.EncodePlan(&validPlan, basePlan); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		in   string
		plan bool // decode as plan (true) or array (false)
		want error
	}{
		{"plan empty", ``, true, fpva.ErrWireSyntax},
		{"plan truncated", `{"format":"fpva.plan","ver`, true, fpva.ErrWireSyntax},
		{"plan type mismatch", `{"format":7}`, true, fpva.ErrWireSyntax},
		{"plan json array", `[1,2,3]`, true, fpva.ErrWireSyntax},
		{"plan wrong format", `{"format":"fpva.array","version":1}`, true, fpva.ErrWireFormat},
		{"plan missing format", `{"version":1}`, true, fpva.ErrWireFormat},
		{"plan future version", `{"format":"fpva.plan","version":99}`, true, fpva.ErrWireVersion},
		{"plan bad array text", `{"format":"fpva.plan","version":1,"array":"bogus"}`, true, fpva.ErrWirePayload},
		{"plan vector valve out of range",
			planHead + `,"pathVectors":[{"name":"p","kind":"flow-path","open":[999]}]}`,
			true, fpva.ErrWirePayload},
		{"plan vector negative valve",
			planHead + `,"cutVectors":[{"name":"c","kind":"cut-set","open":[-1]}]}`,
			true, fpva.ErrWirePayload},
		{"plan unknown vector kind",
			planHead + `,"pathVectors":[{"name":"p","kind":"mystery","open":[]}]}`,
			true, fpva.ErrWirePayload},
		{"plan leak pair out of range", planHead + `,"leakPairs":[[0,999]]}`, true, fpva.ErrWirePayload},
		{"plan uncovered out of range", planHead + `,"uncoveredPath":[999]}`, true, fpva.ErrWirePayload},
		{"plan trailing garbage", validPlan.String() + `{"x":1}`, true, fpva.ErrWireSyntax},
		{"array trailing garbage", validArr.String() + `[]`, false, fpva.ErrWireSyntax},
		{"array empty", ``, false, fpva.ErrWireSyntax},
		{"array truncated", `{"format":"fpva.arr`, false, fpva.ErrWireSyntax},
		{"array wrong format", `{"format":"fpva.plan","version":1,"text":""}`, false, fpva.ErrWireFormat},
		{"array future version", `{"format":"fpva.array","version":99,"text":""}`, false, fpva.ErrWireVersion},
		{"array bad text", `{"format":"fpva.array","version":1,"text":"nope"}`, false, fpva.ErrWirePayload},
	} {
		var err error
		if tc.plan {
			_, err = fpva.DecodePlan(strings.NewReader(tc.in))
		} else {
			_, err = fpva.DecodeArray(strings.NewReader(tc.in))
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}
