package fpva

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// DefaultCacheBytes is the plan-cache byte budget of a service built
// without WithCacheBytes.
const DefaultCacheBytes = 64 << 20

// planKey derives the canonical cache key of a (array, generation config)
// pair: the SHA-256 of the array's v1 wire encoding plus the fingerprint of
// every option that can change the generated vectors. Worker counts and
// progress callbacks are deliberately excluded — results are bit-identical
// across worker counts, so they must share a cache entry.
func planKey(a *Array, cfg genConfig) (string, error) {
	var buf bytes.Buffer
	if err := EncodeArray(&buf, a); err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	fmt.Fprintf(h, "\x00direct=%t block=%d skipLeak=%t path=%d cut=%d v=%d",
		cfg.direct, cfg.blockSize, cfg.skipLeak,
		int(cfg.pathEngine), int(cfg.cutEngine), CodecVersion)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is one cached plan together with its v1 wire encoding — the
// exact bytes fpvad serves from /plan, encoded once when the solve
// finished — and the progress events the solve emitted, replayed on every
// hit so cached and cold callers observe the same sequence. The byte
// budget is charged the wire length, so it measures real payload, not Go
// object overhead.
type cacheEntry struct {
	key    string
	plan   *Plan
	wire   []byte
	events []Event
}

// planCache is an LRU keyed by planKey with a byte budget. It is not
// goroutine-safe; the owning Service serializes access under its mutex.
type planCache struct {
	capBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *cacheEntry
	index    map[string]*list.Element
}

func newPlanCache(capBytes int64) *planCache {
	return &planCache{capBytes: capBytes, ll: list.New(), index: make(map[string]*list.Element)}
}

// get returns the cached plan, its wire bytes, and its recorded solve
// events for key, bumping the entry to most recently used.
func (c *planCache) get(key string) (*Plan, []byte, []Event, bool) {
	el, ok := c.index[key]
	if !ok {
		return nil, nil, nil, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return ent.plan, ent.wire, ent.events, true
}

// put inserts (or refreshes) a plan and evicts from the LRU tail until the
// byte budget holds. A plan bigger than the whole budget is not cached.
func (c *planCache) put(key string, plan *Plan, wire []byte, events []Event) {
	size := int64(len(wire))
	if c.capBytes <= 0 || size == 0 || size > c.capBytes {
		return
	}
	if el, ok := c.index[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - int64(len(ent.wire))
		ent.plan, ent.wire, ent.events = plan, wire, events
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, plan: plan, wire: wire, events: events})
		c.bytes += size
	}
	for c.bytes > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.index, ent.key)
		c.bytes -= int64(len(ent.wire))
	}
}

// len returns the number of cached plans.
func (c *planCache) len() int { return c.ll.Len() }
