// Package fpva is the public API of the FPVA test-generation system — a Go
// reproduction of "Testing Microfluidic Fully Programmable Valve Arrays
// (FPVAs)" (Liu, Li, Bhattacharya, Chakrabarty, Ho, Schlichtmann — DATE
// 2017, arXiv:1705.04996).
//
// The pipeline has three stages, each a first-class citizen here:
//
//  1. Model an array:    a, err := fpva.NewArray(10, 10)
//  2. Generate vectors:  plan, err := fpva.Generate(ctx, a)
//  3. Evaluate faults:   res, err := plan.Campaign(ctx, fpva.WithTrials(10000))
//
// Every long-running entry point takes a context.Context and honours
// cancellation promptly — deep inside the ILP branch-and-bound node loop
// and the parallel campaign trial workers. Generation progress (phase
// transitions) and campaign progress (trial ticks) are observable through
// the Progress callback options.
//
// Plans and arrays serialize to a versioned JSON wire format (EncodePlan /
// DecodePlan, EncodeArray / DecodeArray), so generation and simulation can
// run as separate processes: `fpvatest -case 10x10 -o plan.json`, then
// `fpvasim -plan plan.json -trials 100000`. A decoded plan reproduces
// campaign results bit-identically for the same seed.
//
// Concurrent and long-lived callers use a Service: jobs submitted with
// SubmitGenerate / SubmitCampaign / SubmitVerify return handles with a
// state machine, streamed progress, cancellation and typed results, backed
// by a content-addressed plan cache (singleflight-deduplicated) and a
// bounded worker pool. Generate is a thin wrapper over a shared default
// service, and cmd/fpvad serves a Service over HTTP.
//
// This package is the only supported import surface; everything under
// repro/internal is implementation detail and may change without notice.
package fpva

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
)

// Orient distinguishes the two valve orientations on the lattice.
type Orient uint8

const (
	// Horizontal marks a valve crossed by horizontal (left-right) flow.
	Horizontal Orient = iota
	// Vertical marks a valve crossed by vertical (top-bottom) flow.
	Vertical
)

func (o Orient) String() string {
	if o == Horizontal {
		return "H"
	}
	return "V"
}

// Edge addresses one lattice edge (a valve site) by orientation and
// coordinates, in the geometry of the paper: a horizontal-flow valve H(r, c)
// separates cell (r, c-1) from cell (r, c); a vertical-flow valve V(r, c)
// separates cell (r-1, c) from cell (r, c). Boundary edges (c == 0 or cols
// for H, r == 0 or rows for V) are where ports attach.
type Edge struct {
	Orient Orient
	R, C   int
}

// H addresses the horizontal-flow valve H(r, c).
func H(r, c int) Edge { return Edge{Orient: Horizontal, R: r, C: c} }

// V addresses the vertical-flow valve V(r, c).
func V(r, c int) Edge { return Edge{Orient: Vertical, R: r, C: c} }

func (e Edge) String() string { return fmt.Sprintf("%v(%d,%d)", e.Orient, e.R, e.C) }

// Array is an FPVA instance: a rows x cols lattice of fluid cells separated
// by micro-valves, with pressure ports on the chip boundary. Build one with
// NewArray, DecodeArray, ParseArrayText or BenchmarkArray.
type Array struct {
	g *grid.Array
}

// ArrayOption customizes NewArray. Options are applied in order.
type ArrayOption func(*arrayBuilder) error

type arrayBuilder struct {
	a        *grid.Array
	hasPorts bool
}

// WithChannelH declares the horizontal edges connecting cells
// (r, c0) .. (r, c1) a transportation channel: no valves are built there and
// fluid always passes (the paper's "fluidic seas").
func WithChannelH(r, c0, c1 int) ArrayOption {
	return func(b *arrayBuilder) error {
		_, err := b.a.SetChannelH(r, c0, c1)
		return err
	}
}

// WithChannelV declares the vertical edges connecting cells (r0, c) ..
// (r1, c) a transportation channel.
func WithChannelV(c, r0, r1 int) ArrayOption {
	return func(b *arrayBuilder) error {
		_, err := b.a.SetChannelV(c, r0, r1)
		return err
	}
}

// WithObstacle marks cell (r, c) as an obstacle area: no fluid, and all four
// incident edges become permanent walls.
func WithObstacle(r, c int) ArrayOption {
	return func(b *arrayBuilder) error {
		_, err := b.a.SetObstacle(r, c)
		return err
	}
}

// WithSource attaches a named pressure source to the boundary edge e.
func WithSource(name string, e Edge) ArrayOption {
	return func(b *arrayBuilder) error {
		id, err := valveID(b.a, e)
		if err != nil {
			return err
		}
		b.hasPorts = true
		return b.a.AddSource(name, id)
	}
}

// WithSink attaches a named pressure meter to the boundary edge e.
func WithSink(name string, e Edge) ArrayOption {
	return func(b *arrayBuilder) error {
		id, err := valveID(b.a, e)
		if err != nil {
			return err
		}
		b.hasPorts = true
		return b.a.AddSink(name, id)
	}
}

// WithStandardPorts attaches the paper's canonical fixture: a pressure
// source at the top-left boundary edge H(0,0) and a pressure meter at the
// bottom-right boundary edge H(rows-1, cols). This is the default when no
// port option is given.
func WithStandardPorts() ArrayOption {
	return func(b *arrayBuilder) error {
		b.hasPorts = true
		return b.a.StandardPorts()
	}
}

// NewArray builds a rows x cols valve array. Channel, obstacle and port
// options are applied in the order given; obstacles should come before
// ports that sit next to them. When no port option is present the standard
// corner ports are attached (WithStandardPorts).
func NewArray(rows, cols int, opts ...ArrayOption) (*Array, error) {
	g, err := grid.New(rows, cols)
	if err != nil {
		return nil, err
	}
	b := &arrayBuilder{a: g}
	for _, opt := range opts {
		if err := opt(b); err != nil {
			return nil, err
		}
	}
	if !b.hasPorts {
		if err := g.StandardPorts(); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Array{g: g}, nil
}

// valveID resolves an Edge to the internal dense valve ID.
func valveID(g *grid.Array, e Edge) (grid.ValveID, error) {
	var id grid.ValveID
	if e.Orient == Horizontal {
		id = g.HValve(e.R, e.C)
	} else {
		id = g.VValve(e.R, e.C)
	}
	if id == grid.NoValve {
		return grid.NoValve, fmt.Errorf("fpva: edge %v outside the %dx%d lattice", e, g.NR(), g.NC())
	}
	return id, nil
}

// edgeOf converts an internal valve ID back to its public address.
func edgeOf(g *grid.Array, id grid.ValveID) Edge {
	v := g.Valve(id)
	o := Horizontal
	if v.Orient == grid.Vertical {
		o = Vertical
	}
	return Edge{Orient: o, R: v.R, C: v.C}
}

func edgesOf(g *grid.Array, ids []grid.ValveID) []Edge {
	if len(ids) == 0 {
		return nil
	}
	out := make([]Edge, len(ids))
	for i, id := range ids {
		out[i] = edgeOf(g, id)
	}
	return out
}

// Rows returns the number of cell rows.
func (a *Array) Rows() int { return a.g.NR() }

// Cols returns the number of cell columns.
func (a *Array) Cols() int { return a.g.NC() }

// NumValves returns the count of Normal valves — the units under test (the
// paper's nv column).
func (a *Array) NumValves() int { return a.g.NumNormal() }

// Valves returns the addresses of all Normal valves in a stable order.
func (a *Array) Valves() []Edge { return edgesOf(a.g, a.g.NormalValves()) }

// BaselineCount is the cost of the one-valve-at-a-time baseline the paper
// compares against: two vectors (open + closed) per valve under test.
func (a *Array) BaselineCount() int { return 2 * a.g.NumNormal() }

// String renders a compact one-line summary.
func (a *Array) String() string { return a.g.String() }

// Text renders the array in the line-based text format accepted by
// ParseArrayText and the command-line tools (see the format notes in
// DESIGN.md).
func (a *Array) Text() string { return grid.Marshal(a.g) }

// ParseArrayText reads an array in the text format.
func ParseArrayText(r io.Reader) (*Array, error) {
	g, err := grid.Parse(r)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Array{g: g}, nil
}

// Render draws the array as an ASCII diagram.
func (a *Array) Render() string { return render.Array(a.g) }

// RenderLegend explains the characters used by the ASCII diagrams.
func RenderLegend() string { return render.Legend() }

// MixerSpec describes a dynamic mixer footprint (Fig. 2(b)/(c) of the
// paper): a Height x Width ring of cells whose interior channel forms the
// mixing loop. Height and Width are in cells and must be at least 2.
type MixerSpec struct {
	R, C          int // top-left cell of the ring
	Height, Width int
}

// MixerValves returns the valve sets that realize the mixer on this array:
// ring holds the valves along the mixing loop in cycle order (kept open
// while mixing), and seal holds every other valve incident to a loop cell —
// kept closed to isolate the loop. An error is returned if the footprint
// leaves the array or touches an obstacle.
func (a *Array) MixerValves(m MixerSpec) (ring, seal []Edge, err error) {
	ringIDs, sealIDs, err := a.g.MixerValves(grid.MixerSpec{R: m.R, C: m.C, Height: m.Height, Width: m.Width})
	if err != nil {
		return nil, nil, err
	}
	return edgesOf(a.g, ringIDs), edgesOf(a.g, sealIDs), nil
}

// BenchmarkNames lists the Table I evaluation arrays, smallest first.
func BenchmarkNames() []string {
	cases := bench.Table1Cases()
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.Name
	}
	return out
}

// BenchmarkCase carries the paper's reported Table I numbers for one
// evaluation array, for measured-vs-paper comparisons.
type BenchmarkCase struct {
	Name string
	// Top is the hierarchy top level, e.g. "2x2".
	Top string
	// PaperNV..PaperN are the counts printed in the paper's Table I.
	PaperNV, PaperNP, PaperNC, PaperNL, PaperN int
}

// BenchmarkCases returns the paper's Table I rows.
func BenchmarkCases() []BenchmarkCase {
	cases := bench.Table1Cases()
	out := make([]BenchmarkCase, len(cases))
	for i, c := range cases {
		out[i] = BenchmarkCase{
			Name: c.Name, Top: c.Top,
			PaperNV: c.PaperNV, PaperNP: c.PaperNP, PaperNC: c.PaperNC,
			PaperNL: c.PaperNL, PaperN: c.PaperN,
		}
	}
	return out
}

// BenchmarkArray builds one of the paper's Table I evaluation arrays by
// name (see BenchmarkNames).
func BenchmarkArray(name string) (*Array, error) {
	c, err := bench.FindCase(name)
	if err != nil {
		return nil, err
	}
	g, err := c.Build()
	if err != nil {
		return nil, err
	}
	return &Array{g: g}, nil
}

// FaultKind enumerates the component-level fault models of Sec. II.
type FaultKind uint8

const (
	// StuckAt0 means the valve cannot be opened (broken flow channel).
	StuckAt0 FaultKind = iota
	// StuckAt1 means the valve cannot be closed (leaking flow channel or
	// broken control channel).
	StuckAt1
	// ControlLeak couples two control channels: actuating either valve
	// closes both.
	ControlLeak
)

func (k FaultKind) String() string {
	switch k {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	default:
		return "control-leak"
	}
}

// Fault is a single injected defect. A and B are valve addresses; B is used
// only by ControlLeak.
type Fault struct {
	Kind FaultKind
	A, B Edge
}

func (f Fault) String() string {
	if f.Kind == ControlLeak {
		return fmt.Sprintf("control-leak(%v,%v)", f.A, f.B)
	}
	return fmt.Sprintf("%v(%v)", f.Kind, f.A)
}

// toSimFault converts a public fault to the internal representation.
func (a *Array) toSimFault(f Fault) (sim.Fault, error) {
	ida, err := valveID(a.g, f.A)
	if err != nil {
		return sim.Fault{}, err
	}
	out := sim.Fault{Kind: sim.FaultKind(f.Kind), A: ida}
	if f.Kind == ControlLeak {
		idb, err := valveID(a.g, f.B)
		if err != nil {
			return sim.Fault{}, err
		}
		out.B = idb
	}
	return out, nil
}

func (a *Array) toSimFaults(fs []Fault) ([]sim.Fault, error) {
	out := make([]sim.Fault, len(fs))
	for i, f := range fs {
		var err error
		if out[i], err = a.toSimFault(f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (a *Array) fromSimFault(f sim.Fault) Fault {
	out := Fault{Kind: FaultKind(f.Kind), A: edgeOf(a.g, f.A)}
	if f.Kind == sim.ControlLeak {
		out.B = edgeOf(a.g, f.B)
	}
	return out
}

// Vector is a commanded open/closed state for every Normal valve of an
// array, for hand-built experiments (e.g. configuring a mixer). Generated
// test vectors live inside a Plan.
type Vector struct {
	a *Array
	v *sim.Vector
}

// NewVector returns a vector with every Normal valve commanded closed.
func (a *Array) NewVector(name string) *Vector {
	return &Vector{a: a, v: sim.NewVector(a.g, sim.Custom, name)}
}

// SetOpen commands valve e open (true) or closed (false).
func (v *Vector) SetOpen(e Edge, open bool) error {
	id, err := valveID(v.a.g, e)
	if err != nil {
		return err
	}
	v.v.SetOpen(id, open)
	return nil
}

// Open reports the commanded state of valve e.
func (v *Vector) Open(e Edge) (bool, error) {
	id, err := valveID(v.a.g, e)
	if err != nil {
		return false, err
	}
	return v.v.Open(id), nil
}

// Simulator evaluates vectors on one array, with or without injected
// faults. It is safe for concurrent use.
type Simulator struct {
	a *Array
	s *sim.Simulator
}

// NewSimulator builds a pressure-propagation fault simulator for the array.
func (a *Array) NewSimulator() (*Simulator, error) {
	s, err := sim.New(a.g)
	if err != nil {
		return nil, err
	}
	return &Simulator{a: a, s: s}, nil
}

// Readings returns the pressure observed at each meter (in port attachment
// order) when vec is applied under the given faults (nil for a fault-free
// chip).
func (s *Simulator) Readings(vec *Vector, faults []Fault) ([]bool, error) {
	if vec.a != s.a {
		return nil, fmt.Errorf("fpva: vector belongs to a different array")
	}
	fs, err := s.a.toSimFaults(faults)
	if err != nil {
		return nil, err
	}
	return s.s.Readings(vec.v, fs), nil
}
