package fpva_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/fpva"
)

func mustArray(t *testing.T, rows, cols int, opts ...fpva.ArrayOption) *fpva.Array {
	t.Helper()
	a, err := fpva.NewArray(rows, cols, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustGenerate(t *testing.T, a *fpva.Array, opts ...fpva.GenOption) *fpva.Plan {
	t.Helper()
	p, err := fpva.Generate(context.Background(), a, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewArrayDefaults(t *testing.T) {
	a := mustArray(t, 4, 6)
	if a.Rows() != 4 || a.Cols() != 6 {
		t.Errorf("dims %dx%d", a.Rows(), a.Cols())
	}
	// Full 4x6: 4*5 interior H + 3*6 interior V = 38 normal valves.
	if got := a.NumValves(); got != 38 {
		t.Errorf("nv=%d, want 38", got)
	}
	if got := a.BaselineCount(); got != 76 {
		t.Errorf("baseline=%d, want 76", got)
	}
	if len(a.Valves()) != a.NumValves() {
		t.Error("Valves() length disagrees with NumValves()")
	}
}

func TestNewArrayOptions(t *testing.T) {
	a := mustArray(t, 5, 5,
		fpva.WithChannelH(2, 1, 2),
		fpva.WithObstacle(0, 2),
		fpva.WithSource("in", fpva.H(0, 0)),
		fpva.WithSink("out", fpva.H(4, 5)),
	)
	// 40 full - 1 channel edge - 3 obstacle walls (the fourth incident edge
	// of cell (0,2) is already a boundary wall) = 36.
	if got := a.NumValves(); got != 36 {
		t.Errorf("nv=%d, want 36", got)
	}
}

func TestNewArrayErrors(t *testing.T) {
	if _, err := fpva.NewArray(0, 3); err == nil {
		t.Error("0 rows accepted")
	}
	if _, err := fpva.NewArray(3, 3, fpva.WithObstacle(9, 9)); err == nil {
		t.Error("out-of-range obstacle accepted")
	}
	if _, err := fpva.NewArray(3, 3, fpva.WithSource("s", fpva.H(1, 1))); err == nil {
		t.Error("interior source accepted")
	}
	if _, err := fpva.NewArray(3, 3, fpva.WithSource("s", fpva.H(0, 0))); err == nil {
		t.Error("source-only array accepted (no sink)")
	}
}

func TestGenerateAndVerify(t *testing.T) {
	a := mustArray(t, 5, 5)
	var events []fpva.Event
	p := mustGenerate(t, a, fpva.WithProgress(func(e fpva.Event) { events = append(events, e) }))
	s := p.Stats()
	if s.NV != a.NumValves() || s.N != s.NP+s.NC+s.NL || s.N == 0 {
		t.Errorf("stats inconsistent: %+v", s)
	}
	if p.NumVectors() != s.N {
		t.Errorf("NumVectors=%d, stats N=%d", p.NumVectors(), s.N)
	}
	// Progress saw all three phases start and finish, in order.
	wantPhases := []fpva.Phase{fpva.PhaseFlowPaths, fpva.PhaseCutSets, fpva.PhaseLeakage}
	if len(events) != 6 {
		t.Fatalf("got %d progress events, want 6: %v", len(events), events)
	}
	for i, ph := range wantPhases {
		if events[2*i].Kind != fpva.PhaseStarted || events[2*i].Phase != ph {
			t.Errorf("event %d = %v, want %v started", 2*i, events[2*i], ph)
		}
		if events[2*i+1].Kind != fpva.PhaseFinished || events[2*i+1].Phase != ph {
			t.Errorf("event %d = %v, want %v finished", 2*i+1, events[2*i+1], ph)
		}
	}
	escapes, err := p.VerifySingleFaults(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(escapes) != 0 {
		t.Errorf("single-fault escapes: %v", escapes)
	}
	pairs, err := p.VerifyDoubleFaults(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("double-fault escapes: %v", pairs)
	}
}

func TestCampaignDeterministicAndTicks(t *testing.T) {
	a := mustArray(t, 5, 5)
	p := mustGenerate(t, a)
	var ticks []fpva.Event
	run := func(workers int) fpva.CampaignResult {
		res, err := p.Campaign(context.Background(),
			fpva.WithTrials(500), fpva.WithNumFaults(3), fpva.WithSeed(7),
			fpva.WithCampaignWorkers(workers),
			fpva.WithCampaignProgress(func(e fpva.Event) { ticks = append(ticks, e) }))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if seq.Detected != par.Detected || seq.Trials != par.Trials {
		t.Errorf("worker counts disagree: %+v vs %+v", seq, par)
	}
	if seq.Trials != 500 {
		t.Errorf("trials=%d", seq.Trials)
	}
	if len(ticks) == 0 {
		t.Fatal("no campaign ticks observed")
	}
	last := 0
	for _, e := range ticks {
		if e.Kind != fpva.CampaignTick || e.TrialsTotal != 500 {
			t.Fatalf("unexpected tick %v", e)
		}
		if e.TrialsDone <= last && e.TrialsDone != 500 {
			// Counts are strictly increasing within one campaign; the
			// second run restarts at a smaller value, which is fine.
			if e.TrialsDone > 500 {
				t.Fatalf("tick overshoots: %v", e)
			}
		}
		last = e.TrialsDone
	}
}

func TestCampaignMaxEscapes(t *testing.T) {
	// The baseline set on a benchmark array misses plenty of multi-fault
	// combinations, so escapes are plentiful; the cap must hold.
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	p, err := fpva.BaselinePlan(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Campaign(context.Background(),
		fpva.WithTrials(2000), fpva.WithNumFaults(5), fpva.WithSeed(3),
		fpva.WithMaxEscapes(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == res.Trials {
		t.Skip("baseline detected everything; escapes not exercised")
	}
	if len(res.Escapes) > 2 {
		t.Errorf("escape cap ignored: %d escapes", len(res.Escapes))
	}
}

func TestMixerAndSimulator(t *testing.T) {
	a := mustArray(t, 8, 8)
	ring, seal, err := a.MixerValves(fpva.MixerSpec{R: 1, C: 1, Height: 4, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ring) == 0 || len(seal) == 0 {
		t.Fatalf("mixer ring=%d seal=%d", len(ring), len(seal))
	}
	vec := a.NewVector("mixer")
	for _, e := range ring {
		if err := vec.SetOpen(e, true); err != nil {
			t.Fatal(err)
		}
	}
	s, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Readings(vec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] {
		t.Errorf("sealed mixer loop leaks to the meter: %v", got)
	}
}

func TestPlanDetects(t *testing.T) {
	a := mustArray(t, 5, 5)
	p := mustGenerate(t, a)
	det, err := p.Detects([]fpva.Fault{{Kind: fpva.StuckAt1, A: fpva.V(1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("stuck-at-1 on an interior valve not detected")
	}
	if _, err := p.Detects([]fpva.Fault{{Kind: fpva.StuckAt0, A: fpva.H(99, 99)}}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestBenchmarksAndTable1Shape(t *testing.T) {
	names := fpva.BenchmarkNames()
	if len(names) != 5 || names[0] != "5x5" {
		t.Fatalf("benchmark names: %v", names)
	}
	cases := fpva.BenchmarkCases()
	for i, c := range cases {
		if c.Name != names[i] {
			t.Errorf("case %d name %q vs %q", i, c.Name, names[i])
		}
		a, err := fpva.BenchmarkArray(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumValves() != c.PaperNV {
			t.Errorf("%s: nv=%d, paper %d", c.Name, a.NumValves(), c.PaperNV)
		}
	}
	if _, err := fpva.BenchmarkArray("9x9"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRenderOnGeneratedPlan(t *testing.T) {
	a := mustArray(t, 4, 4)
	p := mustGenerate(t, a)
	out, err := p.RenderPaths()
	if err != nil || !strings.Contains(out, "+") {
		t.Errorf("RenderPaths: %v, %q", err, out)
	}
	if p.NumCuts() == 0 {
		t.Fatal("no cuts")
	}
	if _, err := p.RenderCut(0); err != nil {
		t.Errorf("RenderCut: %v", err)
	}
	if len(p.Cut(0)) == 0 {
		t.Error("cut 0 has no members")
	}
	if !strings.Contains(a.Render(), "+") || fpva.RenderLegend() == "" {
		t.Error("array render or legend empty")
	}
}

func TestTextRoundTrip(t *testing.T) {
	a, err := fpva.BenchmarkArray("20x20")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fpva.ParseArrayText(strings.NewReader(a.Text()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Text() != b.Text() {
		t.Error("text format does not round-trip")
	}
}

func TestCampaignEngineOption(t *testing.T) {
	a := mustArray(t, 5, 5)
	p := mustGenerate(t, a)
	run := func(e fpva.CampaignEngine) fpva.CampaignResult {
		res, err := p.Campaign(context.Background(),
			fpva.WithTrials(300), fpva.WithNumFaults(3), fpva.WithSeed(11),
			fpva.WithLeakFaults(), fpva.WithCampaignEngine(e))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scalar := run(fpva.CampaignEngineScalar)
	words := run(fpva.CampaignEngineBitParallel)
	auto := run(fpva.CampaignEngineAuto)
	if !reflect.DeepEqual(scalar, words) || !reflect.DeepEqual(scalar, auto) {
		t.Errorf("engines disagree:\nscalar: %+v\nwords:  %+v\nauto:   %+v", scalar, words, auto)
	}
	if _, err := p.Campaign(context.Background(),
		fpva.WithTrials(10), fpva.WithCampaignEngine(fpva.CampaignEngine(42))); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestParseCampaignEngine(t *testing.T) {
	for name, want := range map[string]fpva.CampaignEngine{
		"auto": fpva.CampaignEngineAuto, "bit-parallel": fpva.CampaignEngineBitParallel,
		"scalar": fpva.CampaignEngineScalar,
	} {
		got, err := fpva.ParseCampaignEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseCampaignEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := fpva.ParseCampaignEngine("simd"); err == nil {
		t.Error("bogus engine name accepted")
	}
}
