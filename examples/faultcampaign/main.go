// Faultcampaign: the paper's Sec. IV fault-injection study on the 5x5 and
// 10x10 benchmark arrays — k = 1..5 random faults, 10 000 trials each,
// including control-leakage faults — with live progress ticks from the
// campaign workers.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/fpva"
)

func main() {
	ctx := context.Background()
	for _, name := range []string{"5x5", "10x10"} {
		a, err := fpva.BenchmarkArray(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := fpva.Generate(ctx, a)
		if err != nil {
			log.Fatal(err)
		}
		s := plan.Stats()
		fmt.Printf("%s (%d valves, %d vectors):\n", name, s.NV, s.N)
		for k := 1; k <= 5; k++ {
			res, err := plan.Campaign(ctx,
				fpva.WithTrials(10000),
				fpva.WithNumFaults(k),
				fpva.WithSeed(int64(100+k)),
				fpva.WithLeakFaults(),
				fpva.WithCampaignProgress(func(e fpva.Event) {
					if e.TrialsDone == e.TrialsTotal {
						fmt.Fprintf(os.Stderr, "  [%s k=%d] %v\n", name, k, e)
					}
				}))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %d fault(s): %5d/%5d detected (%.4f)\n",
				k, res.Detected, res.Trials, res.DetectionRate())
		}
	}
}
