// Faultcampaign: the paper's Sec. IV fault-injection study on the 5x5 and
// 10x10 benchmark arrays — k = 1..5 random faults, 10 000 trials each,
// including control-leakage faults.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/sim"
)

func main() {
	for _, name := range []string{"5x5", "10x10"} {
		c, err := bench.FindCase(name)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := bench.Row(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d valves, %d vectors):\n", name, ts.Stats.NV, ts.Stats.N)
		var pairs [][2]grid.ValveID
		for _, p := range ts.LeakPairs {
			pairs = append(pairs, [2]grid.ValveID{p[0], p[1]})
		}
		s := sim.MustNew(ts.Array)
		for k := 1; k <= 5; k++ {
			res := s.RunCampaign(ts.AllVectors(), sim.CampaignConfig{
				Trials: 10000, NumFaults: k, Seed: int64(100 + k), LeakPairs: pairs,
			})
			fmt.Printf("  %d fault(s): %5d/%5d detected (%.4f)\n",
				k, res.Detected, res.Trials, res.DetectionRate())
		}
	}
}
