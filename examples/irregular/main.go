// Irregular: test generation for the paper's hardest layout — the 20x20
// array of Table I / Fig. 9 with three transportation channels and two
// obstacle areas — and a comparison against the one-valve-at-a-time
// baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flowpath"
	"repro/internal/render"
)

func main() {
	c, err := bench.FindCase("20x20")
	if err != nil {
		log.Fatal(err)
	}
	a, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)

	ts, err := core.Generate(a, core.Config{Hierarchical: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proposed:", ts.Stats)
	fmt.Printf("baseline: %d vectors (one valve at a time)\n", bench.BaselineCount(a))

	// Fig. 9: the flow paths drawn over the irregular array.
	fp, err := flowpath.Generate(a, flowpath.Options{StripRows: 5, StripCols: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d flow paths over the irregular 20x20:\n\n", len(fp.Paths))
	fmt.Println(render.Paths(a, fp.Paths))
	fmt.Println(render.Legend())
}
