// Irregular: test generation for the paper's hardest layout — the 20x20
// array of Table I / Fig. 9 with three transportation channels and two
// obstacle areas — plus a comparison against the one-valve-at-a-time
// baseline and a round trip through the JSON wire format.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/fpva"
)

func main() {
	ctx := context.Background()
	a, err := fpva.BenchmarkArray("20x20")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)

	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proposed:", plan.Stats())
	fmt.Printf("baseline: %d vectors (one valve at a time)\n", a.BaselineCount())

	// Fig. 9: the flow paths drawn over the irregular array.
	paths, err := plan.RenderPaths()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d flow paths over the irregular 20x20:\n\n", plan.Stats().NP)
	fmt.Println(paths)
	fmt.Println(fpva.RenderLegend())

	// The same plan survives the wire: a serialized and reloaded plan
	// reproduces the campaign bit for bit.
	var wire bytes.Buffer
	if err := fpva.EncodePlan(&wire, plan); err != nil {
		log.Fatal(err)
	}
	loaded, err := fpva.DecodePlan(&wire)
	if err != nil {
		log.Fatal(err)
	}
	run := func(p *fpva.Plan) int {
		res, err := p.Campaign(ctx,
			fpva.WithTrials(1000), fpva.WithNumFaults(2), fpva.WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		return res.Detected
	}
	inproc := run(plan)
	fmt.Printf("campaign detected %d in-process; reloaded plan agrees: %v\n",
		inproc, inproc == run(loaded))
}
