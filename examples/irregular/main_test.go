package main

import (
	"testing"

	"repro/internal/testutil"
)

// TestMainSmoke builds and runs the example in-process and asserts it
// produces output (the examples log.Fatal on any internal error).
func TestMainSmoke(t *testing.T) {
	if out := testutil.CaptureMain(t, main); len(out) == 0 {
		t.Fatal("example produced no output")
	}
}
