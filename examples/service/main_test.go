package main

import (
	"strings"
	"testing"

	"repro/internal/testutil"
)

// TestMainSmoke builds and runs the example in-process and asserts the
// service deduplicated the three identical submissions.
func TestMainSmoke(t *testing.T) {
	out := testutil.CaptureMain(t, main)
	if len(out) == 0 {
		t.Fatal("example produced no output")
	}
	if !strings.Contains(string(out), "1 solve(s)") {
		t.Errorf("service did not dedup identical submissions:\n%s", out)
	}
}
