// Service: run the pipeline through a long-lived fpva.Service — the
// concurrent entry point behind fpvad. Three clients ask for the same
// array at once; the service runs one solve (singleflight), serves the
// rest from its plan cache, then fans a campaign and a verification job
// out over the shared worker pool.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro/fpva"
)

func main() {
	ctx := context.Background()
	svc := fpva.NewService(fpva.WithServiceWorkers(4))
	defer svc.Close()

	// Three concurrent clients, one 8x8 array each. Content-identical
	// submissions share a single generation.
	var wg sync.WaitGroup
	plans := make([]*fpva.Plan, 3)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := fpva.NewArray(8, 8)
			if err != nil {
				log.Fatal(err)
			}
			job, err := svc.SubmitGenerate(ctx, a)
			if err != nil {
				log.Fatal(err)
			}
			if err := job.Wait(ctx); err != nil {
				log.Fatal(err)
			}
			if plans[i], err = job.Plan(); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("3 clients, %d vectors each\n", plans[0].NumVectors())

	// A campaign job with streamed progress ticks.
	camp, err := svc.SubmitCampaign(ctx, plans[0],
		fpva.WithTrials(2000), fpva.WithNumFaults(3), fpva.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	ticks := 0
	for range camp.Stream(ctx) {
		ticks++
	}
	res, err := camp.Campaign()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d/%d detected over %d progress ticks\n",
		res.Detected, res.Trials, ticks)

	// An exhaustive verification job (single faults + a pair spot check).
	ver, err := svc.SubmitVerify(ctx, plans[0], 500)
	if err != nil {
		log.Fatal(err)
	}
	if err := ver.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	vres, err := ver.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verify: %d single escapes, %d pair escapes\n",
		len(vres.SingleEscapes), len(vres.DoubleEscapes))

	// The observable core of the redesign: one solve served every client.
	st := svc.Stats()
	fmt.Printf("stats: %d jobs, %d solve(s), %d cache hit(s), %d coalesced\n",
		st.JobsSubmitted, st.Solves, st.CacheHits, st.CacheCoalesced)
}
