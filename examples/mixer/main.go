// Mixer: program the paper's Fig. 2 dynamic mixers onto an FPVA, verify
// that the mixing loops hold pressure, and then screen the same chip for
// manufacturing defects before use — the workflow the paper's introduction
// motivates (configure devices dynamically, but test the chip first).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
)

func main() {
	a := grid.MustNewStandard(8, 8)
	s := sim.MustNew(a)

	// The 4x2 and 2x4 dynamic mixers of Fig. 2(b)/(c), sharing chip area as
	// in Fig. 2(d) — they can occupy overlapping cells because only one is
	// configured at a time.
	for _, spec := range []grid.MixerSpec{
		{R: 1, C: 1, Height: 4, Width: 2},
		{R: 1, C: 1, Height: 2, Width: 4},
	} {
		ring, boundary, err := a.MixerValves(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dx%d mixer at (%d,%d): %d loop valves (8 act as pump valves), %d sealing valves\n",
			spec.Height, spec.Width, spec.R, spec.C, len(ring), len(boundary))

		// Configure the mixer: loop open, seal closed, rest closed.
		vec := sim.NewVector(a, sim.Custom, "mixer")
		for _, v := range ring {
			if a.Kind(v) == grid.Normal {
				vec.SetOpen(v, true)
			}
		}
		// A sealed mixing loop must not leak pressure to the meter.
		if got := s.Readings(vec, nil); got[0] {
			log.Fatal("mixer loop leaks to the chip meter")
		}
	}

	// Before running an assay, screen the chip. A stuck-at-1 on a sealing
	// valve would contaminate the mix; the generated test set catches it.
	ts, err := core.Generate(a, core.Config{Hierarchical: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("screening test set:", ts.Stats)

	bad := []sim.Fault{{Kind: sim.StuckAt1, A: a.VValve(1, 2)}}
	fmt.Println("stuck-open sealing valve detected:",
		sim.MustNew(a).Detects(ts.AllVectors(), bad))

	fmt.Println()
	fmt.Println(render.Array(a))
}
