// Mixer: program the paper's Fig. 2 dynamic mixers onto an FPVA, verify
// that the mixing loops hold pressure, and then screen the same chip for
// manufacturing defects before use — the workflow the paper's introduction
// motivates (configure devices dynamically, but test the chip first).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fpva"
)

func main() {
	ctx := context.Background()
	a, err := fpva.NewArray(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	s, err := a.NewSimulator()
	if err != nil {
		log.Fatal(err)
	}

	// The 4x2 and 2x4 dynamic mixers of Fig. 2(b)/(c), sharing chip area as
	// in Fig. 2(d) — they can occupy overlapping cells because only one is
	// configured at a time.
	for _, spec := range []fpva.MixerSpec{
		{R: 1, C: 1, Height: 4, Width: 2},
		{R: 1, C: 1, Height: 2, Width: 4},
	} {
		ring, seal, err := a.MixerValves(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dx%d mixer at (%d,%d): %d loop valves (8 act as pump valves), %d sealing valves\n",
			spec.Height, spec.Width, spec.R, spec.C, len(ring), len(seal))

		// Configure the mixer: loop open, seal closed, rest closed.
		vec := a.NewVector("mixer")
		for _, e := range ring {
			if err := vec.SetOpen(e, true); err != nil {
				log.Fatal(err)
			}
		}
		// A sealed mixing loop must not leak pressure to the meter.
		got, err := s.Readings(vec, nil)
		if err != nil {
			log.Fatal(err)
		}
		if got[0] {
			log.Fatal("mixer loop leaks to the chip meter")
		}
	}

	// Before running an assay, screen the chip. A stuck-at-1 on a sealing
	// valve would contaminate the mix; the generated test set catches it.
	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("screening test set:", plan.Stats())

	detected, err := plan.Detects([]fpva.Fault{{Kind: fpva.StuckAt1, A: fpva.V(1, 2)}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stuck-open sealing valve detected:", detected)

	fmt.Println()
	fmt.Println(a.Render())
}
