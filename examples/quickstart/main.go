// Quickstart: generate a compact test set for a 10x10 FPVA, verify the
// single-fault guarantee, and run a small fault-injection campaign.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
)

func main() {
	// A full 10x10 valve array with the standard corner ports: pressure
	// source top-left, pressure meter bottom-right.
	a := grid.MustNewStandard(10, 10)

	// Generate flow paths (stuck-at-0), cut-sets (stuck-at-1) and
	// control-leakage vectors using the paper's hierarchical 5x5 flow.
	ts, err := core.Generate(a, core.Config{Hierarchical: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)
	fmt.Println(ts.Stats)

	// Every single stuck-at fault must be detected.
	escaped, err := ts.VerifySingleFaults()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-fault escapes: %d\n", len(escaped))

	// The paper's Sec. IV experiment in miniature: 1000 random 3-fault
	// injections.
	res, err := ts.Campaign(sim.CampaignConfig{Trials: 1000, NumFaults: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-fault campaign: %d/%d detected (%.2f%%)\n",
		res.Detected, res.Trials, 100*res.DetectionRate())
}
