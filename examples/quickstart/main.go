// Quickstart: generate a compact test set for a 10x10 FPVA, verify the
// single-fault guarantee, and run a small fault-injection campaign — all
// through the public fpva package.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/fpva"
)

func main() {
	ctx := context.Background()

	// A full 10x10 valve array with the standard corner ports: pressure
	// source top-left, pressure meter bottom-right.
	a, err := fpva.NewArray(10, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Generate flow paths (stuck-at-0), cut-sets (stuck-at-1) and
	// control-leakage vectors using the paper's hierarchical 5x5 flow.
	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a)
	fmt.Println(plan.Stats())

	// Every single stuck-at fault must be detected.
	escaped, err := plan.VerifySingleFaults(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-fault escapes: %d\n", len(escaped))

	// The paper's Sec. IV experiment in miniature: 1000 random 3-fault
	// injections.
	res, err := plan.Campaign(ctx,
		fpva.WithTrials(1000), fpva.WithNumFaults(3), fpva.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-fault campaign: %d/%d detected (%.2f%%)\n",
		res.Detected, res.Trials, 100*res.DetectionRate())
}
