// Config-file mode: `fpvad -config fpvad.json` reads the same settings
// the flags carry from a JSON document, so a multi-tenant deployment is
// one reviewable file instead of a shell line. Precedence is simple and
// explicit: built-in defaults, then the config file, then any flag
// given on the command line. `-validate` parses and checks everything
// (config syntax, flag ranges, the token file) and exits without
// binding a socket.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// jsonDuration accepts Go duration strings ("5m", "1h30m") and bare
// numbers (nanoseconds) in config files.
type jsonDuration time.Duration

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = jsonDuration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = jsonDuration(n)
	return nil
}

// fileConfig is the JSON shape of a fpvad config file. Every field
// maps 1:1 onto a flag; a zero or absent field keeps the default, and
// unknown fields are an error so typos fail -validate instead of
// silently deploying defaults.
type fileConfig struct {
	Addr            string       `json:"addr"`
	Workers         int          `json:"workers"`
	CacheMB         int          `json:"cacheMB"`
	CacheDir        string       `json:"cacheDir"`
	CacheDirMB      int          `json:"cacheDirMB"`
	PprofAddr       string       `json:"pprofAddr"`
	SolverExec      string       `json:"solverExec"`
	SolverWorkers   int          `json:"solverWorkers"`
	SolverWorkerBin string       `json:"solverWorkerBin"`
	WorkerMemMB     int          `json:"workerMemMB"`
	SolverTimeout   jsonDuration `json:"solverTimeout"`
	JobTTL          jsonDuration `json:"jobTTL"`
	JobTimeout      jsonDuration `json:"jobTimeout"`
	TokenFile       string       `json:"tokenFile"`
	RatePerSec      float64      `json:"ratePerSec"`
	RateBurst       int          `json:"rateBurst"`
	MaxPending      int          `json:"maxPending"`
}

// scanConfigArg finds -config/--config in args before the flag set is
// built, so the file's values can become the flags' defaults (which is
// what makes "flags override file" fall out of flag.Parse itself).
func scanConfigArg(args []string) (string, error) {
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if arg == "--" {
			return "", nil
		}
		name, val, eq := strings.Cut(arg, "=")
		if name != "-config" && name != "--config" {
			continue
		}
		if eq {
			return val, nil
		}
		if i+1 >= len(args) {
			return "", fmt.Errorf("flag needs an argument: -config")
		}
		return args[i+1], nil
	}
	return "", nil
}

// applyConfigFile overlays the file's non-zero settings onto opt.
func applyConfigFile(path string, opt *options) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var fc fileConfig
	if err := dec.Decode(&fc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if dec.More() {
		return fmt.Errorf("%s: trailing data after the config object", path)
	}
	if fc.Addr != "" {
		opt.addr = fc.Addr
	}
	if fc.Workers != 0 {
		opt.workers = fc.Workers
	}
	if fc.CacheMB != 0 {
		opt.cacheMB = fc.CacheMB
	}
	if fc.CacheDir != "" {
		opt.cacheDir = fc.CacheDir
	}
	if fc.CacheDirMB != 0 {
		opt.cacheDirMB = fc.CacheDirMB
	}
	if fc.PprofAddr != "" {
		opt.pprofAddr = fc.PprofAddr
	}
	if fc.SolverExec != "" {
		opt.solverExecName = fc.SolverExec
	}
	if fc.SolverWorkers != 0 {
		opt.solverWorkers = fc.SolverWorkers
	}
	if fc.SolverWorkerBin != "" {
		opt.workerBin = fc.SolverWorkerBin
	}
	if fc.WorkerMemMB != 0 {
		opt.workerMemMB = fc.WorkerMemMB
	}
	if fc.SolverTimeout != 0 {
		opt.solverTimeout = time.Duration(fc.SolverTimeout)
	}
	if fc.JobTTL != 0 {
		opt.jobTTL = time.Duration(fc.JobTTL)
	}
	if fc.JobTimeout != 0 {
		opt.jobTimeout = time.Duration(fc.JobTimeout)
	}
	if fc.TokenFile != "" {
		opt.tokenFile = fc.TokenFile
	}
	if fc.RatePerSec != 0 {
		opt.ratePerSec = fc.RatePerSec
	}
	if fc.RateBurst != 0 {
		opt.rateBurst = fc.RateBurst
	}
	if fc.MaxPending != 0 {
		opt.maxPending = fc.MaxPending
	}
	return nil
}
