// Admission control for fpvad's front door: static bearer-token auth
// and per-client token-bucket rate limits. Both sit in front of the
// job API as ordinary middleware; /healthz stays open so load
// balancers can probe an instance they have no credentials for.
package main

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// admission is fpvad's auth + rate-limit state. A nil *admission (no
// -token-file, no -rate) disables the middleware entirely.
type admission struct {
	tokens map[string]string // token -> client name; nil disables auth
	rate   float64           // sustained requests/second per client; <= 0 disables
	burst  float64           // bucket capacity
	now    func() time.Time

	mu           sync.Mutex
	buckets      map[string]*bucket
	authFailures int
	rateLimited  int
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmission builds the middleware state; it returns nil when
// neither auth nor rate limiting is configured.
func newAdmission(tokens map[string]string, rate float64, burst int) *admission {
	if tokens == nil && rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &admission{
		tokens:  tokens,
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// counters snapshots the admission counters for /v1/stats.
func (a *admission) counters() (authFailures, rateLimited int) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.authFailures, a.rateLimited
}

// wrap guards next with auth and rate limiting. /healthz passes
// through untouched.
func (a *admission) wrap(next http.Handler) http.Handler {
	if a == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		client, ok := a.authenticate(r)
		if !ok {
			a.mu.Lock()
			a.authFailures++
			a.mu.Unlock()
			w.Header().Set("WWW-Authenticate", `Bearer realm="fpvad"`)
			httpError(w, http.StatusUnauthorized, errors.New("missing or unknown bearer token"))
			return
		}
		if retry, limited := a.limit(client); limited {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			httpError(w, http.StatusTooManyRequests,
				fmt.Errorf("client %q over its request rate; retry after %v", client, retry.Round(time.Millisecond)))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// authenticate resolves the request to a client identity. With auth
// enabled the bearer token must match a configured credential
// (constant-time compare); without it, rate limits key on the remote
// host so one busy peer cannot starve the rest.
func (a *admission) authenticate(r *http.Request) (string, bool) {
	if a.tokens == nil {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		return host, true
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || tok == "" {
		return "", false
	}
	// Constant-time scan: compare against every credential so response
	// timing leaks neither token prefixes nor membership.
	var name string
	found := 0
	for cand, n := range a.tokens {
		if len(cand) == len(tok) && subtle.ConstantTimeCompare([]byte(cand), []byte(tok)) == 1 {
			name = n
			found = 1
		}
	}
	return name, found == 1
}

// limit charges one request to the client's token bucket, reporting
// how long to wait when the bucket is dry.
func (a *admission) limit(client string) (retry time.Duration, limited bool) {
	if a.rate <= 0 {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	now := a.now()
	if b == nil {
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	} else {
		b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, false
	}
	a.rateLimited++
	return time.Duration((1 - b.tokens) / a.rate * float64(time.Second)), true
}

// retryAfterSeconds rounds a wait up to whole seconds (the Retry-After
// header's unit), never below 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// loadTokenFile parses the static credential file: one credential per
// line, either "name:token" or a bare token (whose client name is
// derived from the token's SHA-256, so logs and stats never echo the
// secret). Blank lines and '#' comments are ignored. Tokens must be
// unique and at least 8 characters.
func loadTokenFile(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tokens := make(map[string]string)
	names := make(map[string]bool)
	for i, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, tok, ok := strings.Cut(line, ":")
		if !ok {
			tok, name = line, ""
		}
		tok = strings.TrimSpace(tok)
		name = strings.TrimSpace(name)
		if len(tok) < 8 {
			return nil, fmt.Errorf("%s:%d: token shorter than 8 characters", path, i+1)
		}
		if name == "" {
			sum := sha256.Sum256([]byte(tok))
			name = "client-" + hex.EncodeToString(sum[:4])
		}
		if _, dup := tokens[tok]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate token", path, i+1)
		}
		if names[name] {
			return nil, fmt.Errorf("%s:%d: duplicate client name %q", path, i+1, name)
		}
		tokens[tok] = name
		names[name] = true
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("%s: no credentials (want one \"name:token\" per line)", path)
	}
	return tokens, nil
}
